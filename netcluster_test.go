package semdisco

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"semdisco/internal/netcluster"
)

const (
	netTestSets     = 2
	netTestReplicas = 2
)

// netShardMux is a replica server: the internal wire endpoints over the
// shard engine's encoded backend, plus the write routes the coordinator's
// replication fan-out targets — the same surface cmd/semdisco-serve mounts,
// minus the rest of the public API this test never calls.
func netShardMux(eng *Engine) http.Handler {
	mux := http.NewServeMux()
	sh := netcluster.NewShardHandler(eng.EncodedBackend(), nil, eng.Dim())
	mux.Handle(netcluster.PathEncodedSearch, sh)
	mux.Handle(netcluster.PathEncodedSearchBatch, sh)
	writeErr := func(w http.ResponseWriter, status int, msg string) {
		w.WriteHeader(status)
		_ = json.NewEncoder(w).Encode(netcluster.ErrorBody{Error: msg})
	}
	decode := func(w http.ResponseWriter, r *http.Request) (*Relation, bool) {
		var wr netcluster.Relation
		if err := json.NewDecoder(r.Body).Decode(&wr); err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return nil, false
		}
		return &Relation{ID: wr.ID, Source: wr.Source, PageTitle: wr.PageTitle,
			SectionTitle: wr.SectionTitle, Caption: wr.Caption,
			Columns: wr.Columns, Rows: wr.Rows}, true
	}
	mux.HandleFunc("POST /v1/relations", func(w http.ResponseWriter, r *http.Request) {
		rel, ok := decode(w, r)
		if !ok {
			return
		}
		if err := eng.Add(rel); err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
		w.WriteHeader(http.StatusCreated)
	})
	mux.HandleFunc("PUT /v1/relations/{id}", func(w http.ResponseWriter, r *http.Request) {
		rel, ok := decode(w, r)
		if !ok {
			return
		}
		if err := eng.Update(rel); err != nil {
			writeErr(w, http.StatusNotFound, err.Error())
		}
	})
	mux.HandleFunc("DELETE /v1/relations/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := eng.Delete(r.PathValue("id")); err != nil {
			writeErr(w, http.StatusNotFound, err.Error())
		}
	})
	return mux
}

type netFixture struct {
	nc      *NetCoordinator
	single  *Engine
	inj     *netcluster.FaultInjector
	servers [][]*httptest.Server
	engines [][]*Engine
}

// newNetFixture stands up the networked deployment in-process: per
// replica its own shard engine (so writes replicate for real) behind a
// loopback server, a fault-injecting transport, a coordinator over the
// replica sets, and a single monolithic engine as the equivalence oracle.
func newNetFixture(t *testing.T, n int) *netFixture {
	t.Helper()
	fed := synthFederation(t, n)
	cfg := Config{Method: ExS, Dim: 64, Seed: 1}
	single, err := Open(fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fx := &netFixture{single: single, inj: netcluster.NewFaultInjector(nil)}
	replicaSets := make([][]string, netTestSets)
	for s := 0; s < netTestSets; s++ {
		var row []*httptest.Server
		var engs []*Engine
		for r := 0; r < netTestReplicas; r++ {
			eng, err := NewNetShard(fed, NetShardConfig{Config: cfg, Sets: netTestSets, Set: s})
			if err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(netShardMux(eng))
			t.Cleanup(srv.Close)
			row = append(row, srv)
			engs = append(engs, eng)
			replicaSets[s] = append(replicaSets[s], srv.URL)
		}
		fx.servers = append(fx.servers, row)
		fx.engines = append(fx.engines, engs)
	}
	nc, err := NewNetCoordinator(fed, replicaSets, NetCoordinatorConfig{
		Config:         cfg,
		AttemptTimeout: 2 * time.Second,
		Transport:      fx.inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	fx.nc = nc
	return fx
}

// assertNetEquivalence runs the cluster acceptance matrix over the wire:
// the networked coordinator must return the same relation IDs, order and
// scores as the single engine, with no degradation.
func assertNetEquivalence(t *testing.T, fx *netFixture, label string) {
	t.Helper()
	for _, q := range []string{"abc", "bfd", "abc def", "xyz qrs", "mno"} {
		for _, k := range []int{1, 5, 10, 32} {
			want, err := fx.single.Search(q, k)
			if err != nil {
				t.Fatalf("%s: engine search: %v", label, err)
			}
			res, err := fx.nc.Search(q, k)
			if err != nil {
				t.Fatalf("%s: networked search q=%q k=%d: %v", label, q, k, err)
			}
			if res.Degraded {
				t.Fatalf("%s: unexpected degradation q=%q k=%d: %v", label, q, k, res.ShardErrors)
			}
			if len(res.Matches) != len(want) {
				t.Fatalf("%s q=%q k=%d: %d matches, engine returned %d",
					label, q, k, len(res.Matches), len(want))
			}
			for i := range want {
				if res.Matches[i] != want[i] {
					t.Fatalf("%s q=%q k=%d match %d: networked %+v, engine %+v",
						label, q, k, i, res.Matches[i], want[i])
				}
			}
		}
	}
}

// TestNetShardPartitioning: every replica of a set builds the identical
// partition, partitions are disjoint, and together they cover the
// federation.
func TestNetShardPartitioning(t *testing.T) {
	fx := newNetFixture(t, 48)
	total := 0
	for s, engs := range fx.engines {
		n := engs[0].NumRelations()
		if n == 0 {
			t.Fatalf("set %d is empty", s)
		}
		for r, eng := range engs {
			if eng.NumRelations() != n {
				t.Fatalf("set %d replica %d holds %d relations, replica 0 holds %d",
					s, r, eng.NumRelations(), n)
			}
		}
		total += n
	}
	if total != 48 {
		t.Fatalf("partitions cover %d relations, want 48", total)
	}
	if fx.nc.NumSets() != netTestSets || fx.nc.NumRelations() != 48 {
		t.Fatalf("coordinator sees %d sets / %d relations", fx.nc.NumSets(), fx.nc.NumRelations())
	}
}

// TestNetClusterExSEquivalence is the wire-level acceptance criterion: the
// networked deployment — coordinator, HTTP fan-out, replica failover, JSON
// round-trip — must be bit-identical to a single ExS engine.
func TestNetClusterExSEquivalence(t *testing.T) {
	fx := newNetFixture(t, 48)
	assertNetEquivalence(t, fx, "healthy")
}

// TestNetClusterReplicaKill: with one replica of a set killed mid-run the
// coordinator must keep answering every query, bit-identically and without
// degradation — the set is still up via its survivor.
func TestNetClusterReplicaKill(t *testing.T) {
	fx := newNetFixture(t, 48)
	assertNetEquivalence(t, fx, "before kill")
	fx.servers[0][0].Close()
	assertNetEquivalence(t, fx, "after kill")
	// The failover is visible in the stats: the killed replica accumulated
	// errors, and the set recorded no full outage.
	st := fx.nc.Stats()
	if st.Groups[0].SetDown != 0 {
		t.Errorf("set 0 recorded %d full outages with a live survivor", st.Groups[0].SetDown)
	}
}

// TestNetClusterSetDownDegrades: a whole replica set unreachable degrades
// the answer to exactly the single-engine ranking filtered to the
// surviving partition — still correct, just partial.
func TestNetClusterSetDownDegrades(t *testing.T) {
	fx := newNetFixture(t, 48)
	for _, srv := range fx.servers[1] {
		srv.Close()
	}
	ring, err := netcluster.NewRing(netTestSets, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"abc", "xyz qrs"} {
		const k = 10
		res, err := fx.nc.Search(q, k)
		if err != nil {
			t.Fatalf("degraded search must not error: %v", err)
		}
		if !res.Degraded {
			t.Fatal("want Degraded with set 1 down")
		}
		if len(res.ShardErrors) == 0 {
			t.Error("degraded result carries no shard errors")
		}
		full, err := fx.single.Search(q, 48)
		if err != nil {
			t.Fatal(err)
		}
		var want []Match
		for _, m := range full {
			if ring.Owner(m.RelationID) == 0 {
				want = append(want, m)
			}
			if len(want) == k {
				break
			}
		}
		if len(res.Matches) != len(want) {
			t.Fatalf("q=%q: %d degraded matches, want %d", q, len(res.Matches), len(want))
		}
		for i := range want {
			if res.Matches[i] != want[i] {
				t.Fatalf("q=%q match %d: degraded %+v, want %+v", q, i, res.Matches[i], want[i])
			}
		}
	}
}

// TestNetClusterWritePath: Add, Update and Delete through the coordinator
// replicate to every replica of the owning set and keep the networked
// ranking bit-identical to a single engine receiving the same mutations.
func TestNetClusterWritePath(t *testing.T) {
	fx := newNetFixture(t, 48)
	ctx := context.Background()
	rel := &Relation{
		ID: "rel-new", Source: "src-9",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"abc", "def"}, {"mno", "xyz"}},
	}
	if err := fx.nc.Add(ctx, rel); err != nil {
		t.Fatalf("networked add: %v", err)
	}
	if err := fx.single.Add(rel); err != nil {
		t.Fatalf("engine add: %v", err)
	}
	if fx.nc.NumRelations() != 49 {
		t.Fatalf("coordinator sees %d relations after add, want 49", fx.nc.NumRelations())
	}
	assertNetEquivalence(t, fx, "after add")

	// A duplicate add fails on every replica of the owning set: a plain
	// error, not a partial write.
	if err := fx.nc.Add(ctx, rel); err == nil {
		t.Fatal("duplicate add must error")
	}

	upd := &Relation{
		ID: "rel-new", Source: "src-9",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"qrs", "bfd"}, {"abc", "mno"}},
	}
	if err := fx.nc.Update(ctx, upd); err != nil {
		t.Fatalf("networked update: %v", err)
	}
	if err := fx.single.Update(upd); err != nil {
		t.Fatalf("engine update: %v", err)
	}
	assertNetEquivalence(t, fx, "after update")

	if err := fx.nc.Delete(ctx, "rel-new"); err != nil {
		t.Fatalf("networked delete: %v", err)
	}
	if err := fx.single.Delete("rel-new"); err != nil {
		t.Fatalf("engine delete: %v", err)
	}
	if fx.nc.NumRelations() != 48 {
		t.Fatalf("coordinator sees %d relations after delete, want 48", fx.nc.NumRelations())
	}
	assertNetEquivalence(t, fx, "after delete")

	if err := fx.nc.Delete(ctx, "rel-new"); err == nil {
		t.Fatal("deleting an unknown relation must error")
	}
}
