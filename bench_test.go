package semdisco

// This file is the benchmark harness deliverable: one benchmark per table
// and figure in the paper's evaluation, plus ablation benchmarks for the
// design decisions called out in DESIGN.md §5.
//
// Run everything:      go test -bench=. -benchmem
// One table:           go test -bench=BenchmarkTable1 -benchtime=1x
//
// Quality benchmarks render the regenerated table to the benchmark log on
// their first iteration and report headline metrics (MAP·1000) as custom
// benchmark metrics; latency benchmarks report milliseconds per query.
// The corpus is a scaled-down WikiTables-like profile so a full run stays
// in laptop territory; use cmd/semdisco-bench for full-scale runs.

import (
	"fmt"
	"sync"
	"testing"

	"semdisco/internal/core"
	"semdisco/internal/corpus"
	"semdisco/internal/eval"
	"semdisco/internal/experiments"
	"semdisco/internal/vec"
)

var (
	benchOnce  sync.Once
	benchState *experiments.Bench
	benchErr   error
)

// benchSetup builds the shared experiment state once per test binary.
func benchSetup(b *testing.B) *experiments.Bench {
	b.Helper()
	benchOnce.Do(func() {
		p := corpus.WikiTables().Scaled(0.25) // 150 relations at LD
		benchState, benchErr = experiments.NewBench(experiments.Setup{
			Profile:        p,
			Dim:            192,
			Seed:           7,
			TrainBaselines: true,
		})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchState
}

// qualityBenchmark regenerates one of the paper's quality tables.
func qualityBenchmark(b *testing.B, tableNo int) {
	bench := benchSetup(b)
	var rendered string
	for i := 0; i < b.N; i++ {
		out, err := bench.RunQualityTable(tableNo)
		if err != nil {
			b.Fatal(err)
		}
		rendered = out
	}
	b.Log("\n" + rendered)
	class := map[int]corpus.QueryClass{1: corpus.Long, 2: corpus.Moderate, 3: corpus.Short}[tableNo]
	for _, m := range []string{"CTS", "ANNS", "ExS"} {
		cell, err := bench.Quality(m, "LD", class, 20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cell.Report.MAP*1000, m+"-MAP‰")
	}
}

// BenchmarkTable1 regenerates Table 1: quality of long-query results.
func BenchmarkTable1(b *testing.B) { qualityBenchmark(b, 1) }

// BenchmarkTable2 regenerates Table 2: quality of moderate-query results.
func BenchmarkTable2(b *testing.B) { qualityBenchmark(b, 2) }

// BenchmarkTable3 regenerates Table 3: quality of short-query results.
func BenchmarkTable3(b *testing.B) { qualityBenchmark(b, 3) }

// BenchmarkTable4 regenerates Table 4: query time for CTS vs ANNS across
// partition sizes and query lengths.
func BenchmarkTable4(b *testing.B) {
	bench := benchSetup(b)
	var rendered string
	for i := 0; i < b.N; i++ {
		out, err := bench.RunTable4()
		if err != nil {
			b.Fatal(err)
		}
		rendered = out
	}
	b.Log("\n" + rendered)
	for _, m := range []string{"CTS", "ANNS"} {
		cell, err := bench.Latency(m, "LD", corpus.Long, 20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cell.MeanMS, m+"-ms")
	}
}

// BenchmarkFigure3 regenerates Figure 3: query response time of all eight
// methods per partition size and query length.
func BenchmarkFigure3(b *testing.B) {
	bench := benchSetup(b)
	var rendered string
	for i := 0; i < b.N; i++ {
		out, err := bench.RunFigure3()
		if err != nil {
			b.Fatal(err)
		}
		rendered = out
	}
	b.Log("\n" + rendered)
	for _, m := range experiments.Methods {
		cell, err := bench.Latency(m, "LD", corpus.Long, 20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cell.MeanMS, m+"-ms")
	}
}

// BenchmarkCaseStudy53 regenerates the §5.3 qualitative comparison.
func BenchmarkCaseStudy53(b *testing.B) {
	bench := benchSetup(b)
	q := bench.Corpus.QueriesOf(corpus.Moderate)[0]
	var rendered string
	for i := 0; i < b.N; i++ {
		out, err := bench.CaseStudy(q.Text, 5)
		if err != nil {
			b.Fatal(err)
		}
		rendered = out
	}
	b.Log("\n" + rendered)
}

// mapOf evaluates a searcher's MAP over one query class on the LD split.
func mapOf(b *testing.B, bench *experiments.Bench, s core.Searcher, class corpus.QueryClass) float64 {
	b.Helper()
	sb := bench.PerSize["LD"]
	run := eval.Run{}
	qrels := eval.Qrels{}
	for _, q := range bench.Corpus.QueriesOf(class) {
		judged, ok := sb.TestQrels[q.ID]
		if !ok {
			continue
		}
		for rel, g := range judged {
			qrels.Add(q.ID, rel, g)
		}
		ms, err := s.Search(q.Text, 20)
		if err != nil {
			b.Fatal(err)
		}
		ids := make([]string, len(ms))
		for i, m := range ms {
			ids[i] = m.RelationID
		}
		run[q.ID] = ids
	}
	return eval.Evaluate(qrels, run).MAP
}

// tableLevelSearcher embeds whole tables as single vectors — the
// granularity the paper's contribution (ii) argues against.
type tableLevelSearcher struct {
	ids  []string
	embs [][]float32
	enc  interface{ Encode(string) []float32 }
}

func (t *tableLevelSearcher) Name() string { return "TableLevel" }

func (t *tableLevelSearcher) Search(query string, k int) ([]core.Match, error) {
	q := t.enc.Encode(query)
	top := vec.NewTopK(k)
	for i, e := range t.embs {
		top.Push(i, vec.Dot(q, e))
	}
	ranked := top.Sorted()
	out := make([]core.Match, len(ranked))
	for i, r := range ranked {
		out[i] = core.Match{RelationID: t.ids[r.ID], Score: r.Score}
	}
	return out, nil
}

// BenchmarkAblationGranularity compares value-level embedding (the paper's
// contribution) against table-level embedding on retrieval quality.
func BenchmarkAblationGranularity(b *testing.B) {
	bench := benchSetup(b)
	sb := bench.PerSize["LD"]
	tl := &tableLevelSearcher{enc: sb.Model}
	for _, r := range sb.Fed.Relations() {
		tl.ids = append(tl.ids, r.ID)
		tl.embs = append(tl.embs, sb.Model.Encode(r.Text()))
	}
	var valueMAP, tableMAP float64
	for i := 0; i < b.N; i++ {
		valueMAP = mapOf(b, bench, sb.Searchers["ExS"], corpus.Moderate)
		tableMAP = mapOf(b, bench, tl, corpus.Moderate)
	}
	b.ReportMetric(valueMAP*1000, "value-MAP‰")
	b.ReportMetric(tableMAP*1000, "table-MAP‰")
	b.Logf("value-level MAP=%.3f table-level MAP=%.3f", valueMAP, tableMAP)
}

// BenchmarkAblationUMAP compares CTS built with UMAP, PCA and no reduction.
func BenchmarkAblationUMAP(b *testing.B) {
	bench := benchSetup(b)
	sb := bench.PerSize["LD"]
	variants := map[string]core.Reduction{
		"umap": core.ReduceUMAP,
		"pca":  core.ReducePCA,
		"none": core.ReduceNone,
	}
	for name, red := range variants {
		cts, err := core.NewCTS(sb.Emb, core.CTSOptions{Seed: 7, Reduction: red})
		if err != nil {
			b.Fatal(err)
		}
		var m float64
		for i := 0; i < b.N; i++ {
			m = mapOf(b, bench, cts, corpus.Moderate)
		}
		b.ReportMetric(m*1000, name+"-MAP‰")
		b.Logf("CTS reduction=%s clusters=%d MAP=%.3f", name, cts.NumClusters(), m)
	}
}

// BenchmarkAblationPQ compares ANNS with and without Product Quantization
// on quality and storage.
func BenchmarkAblationPQ(b *testing.B) {
	bench := benchSetup(b)
	sb := bench.PerSize["LD"]
	withPQ, err := core.NewANNS(sb.Emb, core.ANNSOptions{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	withoutPQ, err := core.NewANNS(sb.Emb, core.ANNSOptions{Seed: 7, DisablePQ: true})
	if err != nil {
		b.Fatal(err)
	}
	var mPQ, mRaw float64
	for i := 0; i < b.N; i++ {
		mPQ = mapOf(b, bench, withPQ, corpus.Moderate)
		mRaw = mapOf(b, bench, withoutPQ, corpus.Moderate)
	}
	b.ReportMetric(mPQ*1000, "pq-MAP‰")
	b.ReportMetric(mRaw*1000, "raw-MAP‰")
	b.ReportMetric(float64(withPQ.Stats().VectorBytes), "pq-bytes")
	b.ReportMetric(float64(withoutPQ.Stats().VectorBytes), "raw-bytes")
	b.Logf("PQ: MAP=%.3f %dB; raw: MAP=%.3f %dB",
		mPQ, withPQ.Stats().VectorBytes, mRaw, withoutPQ.Stats().VectorBytes)
}

// BenchmarkAblationEfSearch sweeps the ANNS beam width.
func BenchmarkAblationEfSearch(b *testing.B) {
	bench := benchSetup(b)
	sb := bench.PerSize["LD"]
	queries := bench.Corpus.QueriesOf(corpus.Moderate)
	for _, ef := range []int{16, 64, 256} {
		anns, err := core.NewANNS(sb.Emb, core.ANNSOptions{Seed: 7, DisablePQ: true, EfSearch: ef})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("ef=%d", ef), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := anns.Search(queries[i%len(queries)].Text, 20); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(mapOf(b, bench, anns, corpus.Moderate)*1000, "MAP‰")
		})
	}
}

// BenchmarkAblationAggregation compares the §5.3 aggregation variants:
// mean (the paper's), max, and top-m.
func BenchmarkAblationAggregation(b *testing.B) {
	bench := benchSetup(b)
	sb := bench.PerSize["LD"]
	variants := map[string]core.ExSOptions{
		"mean": {Aggregator: core.AggMean},
		"max":  {Aggregator: core.AggMax},
		"topM": {Aggregator: core.AggTopM, TopM: 5},
	}
	for name, opt := range variants {
		s := core.NewExS(sb.Emb, opt)
		var m float64
		for i := 0; i < b.N; i++ {
			m = mapOf(b, bench, s, corpus.Moderate)
		}
		b.ReportMetric(m*1000, name+"-MAP‰")
		b.Logf("ExS agg=%s MAP=%.3f", name, m)
	}
}

// BenchmarkEngineOpen measures full index build time per method.
func BenchmarkEngineOpen(b *testing.B) {
	bench := benchSetup(b)
	fed := bench.PerSize["SD"].Fed
	for _, m := range []Method{ExS, ANNS, CTS} {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Open(fed, Config{Method: m, Dim: 128, Seed: 7,
					Lexicon: bench.Corpus.Lexicon}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineSearch measures steady-state query latency per method on
// the public API.
func BenchmarkEngineSearch(b *testing.B) {
	bench := benchSetup(b)
	fed := bench.PerSize["LD"].Fed
	queries := bench.Corpus.QueriesOf(corpus.Short)
	for _, m := range []Method{ExS, ANNS, CTS} {
		eng, err := Open(fed, Config{Method: m, Dim: 192, Seed: 7, Lexicon: bench.Corpus.Lexicon})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(m.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Search(queries[i%len(queries)].Text, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
