package semdisco

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestEngineAdd(t *testing.T) {
	for _, m := range []Method{ExS, ANNS, CTS} {
		eng, err := Open(vaccineFederation(t), Config{
			Method: m, Dim: 256, Seed: 5, Lexicon: vaccineLexicon(),
			CTS: CTSOptions{MinClusterSize: 4, UMAPEpochs: 40},
		})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		err = eng.Add(&Relation{
			ID: "flu", Source: "WHO",
			Columns: []string{"Region", "Season", "Strain"},
			Rows: [][]string{
				{"Europe", "2023", "influenza H1N1"},
				{"Asia", "2023", "influenza H3N2"},
			},
		})
		if err != nil {
			t.Fatalf("%v: Add: %v", m, err)
		}
		got, err := eng.Search("influenza strains", 2)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(got) == 0 || got[0].RelationID != "flu" {
			t.Fatalf("%v: added relation not retrievable: %v", m, got)
		}
	}
}

func TestEngineSearchDatasets(t *testing.T) {
	eng, err := Open(vaccineFederation(t), Config{
		Method: ExS, Dim: 96, Seed: 6, Lexicon: vaccineLexicon(),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.SearchDatasets("COVID vaccines", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("datasets=%d: %+v", len(got), got)
	}
	// Best datasets for a vaccine query are the health sources.
	for _, d := range got {
		if d.Source == "USGS" {
			t.Fatalf("minerals source ranked top-2: %+v", got)
		}
		if len(d.Relations) == 0 {
			t.Fatalf("dataset %s has no member relations", d.Source)
		}
	}
	if got[0].Score < got[1].Score {
		t.Fatal("datasets not sorted by score")
	}
	if r, err := eng.SearchDatasets("x", 0); err != nil || r != nil {
		t.Fatal("k=0 should return nothing")
	}
}

func TestEngineSaveLoad(t *testing.T) {
	for _, m := range []Method{ExS, ANNS, CTS} {
		eng, err := Open(vaccineFederation(t), Config{
			Method: m, Dim: 96, Seed: 7, Lexicon: vaccineLexicon(),
			CTS: CTSOptions{MinClusterSize: 4, UMAPEpochs: 40},
		})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		var buf bytes.Buffer
		if err := eng.Save(&buf); err != nil {
			t.Fatalf("%v: Save: %v", m, err)
		}
		loaded, err := LoadEngine(&buf)
		if err != nil {
			t.Fatalf("%v: LoadEngine: %v", m, err)
		}
		if loaded.Method() != m {
			t.Fatalf("%v: method lost", m)
		}
		// Same query: same ranked relations (scores bit-identical for ExS;
		// index rebuilds are seeded so ANNS/CTS agree too).
		a, err := eng.Search("COVID", 3)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Search("COVID", 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%v: result counts differ: %v vs %v", m, a, b)
		}
		for i := range a {
			if a[i].RelationID != b[i].RelationID {
				t.Fatalf("%v: rankings differ: %v vs %v", m, a, b)
			}
		}
		// Loaded engines keep dataset grouping.
		ds, err := loaded.SearchDatasets("COVID", 2)
		if err != nil || len(ds) == 0 {
			t.Fatalf("%v: SearchDatasets after load: %v %v", m, ds, err)
		}
	}
}

func TestEngineSaveRejectsCustomIDF(t *testing.T) {
	eng, err := Open(vaccineFederation(t), Config{
		Method: ExS, Dim: 64, Seed: 8,
		IDF: func(string) float64 { return 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Save(&bytes.Buffer{}); err == nil {
		t.Fatal("custom-IDF engine must refuse to save")
	}
}

func TestLoadEngineRejectsGarbage(t *testing.T) {
	if _, err := LoadEngine(strings.NewReader("not an engine")); err == nil {
		t.Fatal("garbage must not load")
	}
}

func TestEngineSearchSources(t *testing.T) {
	for _, m := range []Method{ExS, ANNS, CTS} {
		eng, err := Open(vaccineFederation(t), Config{
			Method: m, Dim: 128, Seed: 9, Lexicon: vaccineLexicon(),
			CTS: CTSOptions{MinClusterSize: 4, UMAPEpochs: 40},
		})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		got, err := eng.SearchSources("COVID", 5, "WHO", "CDC")
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(got) == 0 {
			t.Fatalf("%v: filtered search empty", m)
		}
		for _, match := range got {
			if match.RelationID != "who" && match.RelationID != "cdc" {
				t.Fatalf("%v: filter leaked relation %s", m, match.RelationID)
			}
		}
		// Unknown source: nothing.
		none, err := eng.SearchSources("COVID", 5, "NOPE")
		if err != nil || len(none) != 0 {
			t.Fatalf("%v: unknown source gave %v, %v", m, none, err)
		}
	}
}

func TestEngineSearchWithFeedback(t *testing.T) {
	eng, err := Open(vaccineFederation(t), Config{
		Method: ExS, Dim: 128, Seed: 12, Lexicon: vaccineLexicon(),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.SearchWithFeedback("COVID", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("feedback search returned nothing")
	}
	for _, m := range got {
		if m.RelationID == "minerals" {
			t.Fatalf("feedback drifted to minerals: %v", got)
		}
	}
}

func TestOpenColumnsPublicAPI(t *testing.T) {
	ci, err := OpenColumns(vaccineFederation(t), Config{Dim: 128, Seed: 13, Lexicon: vaccineLexicon()})
	if err != nil {
		t.Fatal(err)
	}
	if ci.NumColumns() == 0 {
		t.Fatal("no columns profiled")
	}
	if _, err := ci.Unionable("who", "Vaccine", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := ci.Joinable("nope", "Vaccine", 2); err == nil {
		t.Fatal("unknown column must error")
	}
	if _, err := OpenColumns(NewFederation(), Config{}); err == nil {
		t.Fatal("empty federation must error")
	}
	adhoc, err := ci.UnionableValues("shots", []string{"Comirnaty"}, 2)
	if err != nil || len(adhoc) == 0 {
		t.Fatalf("ad-hoc unionable: %v %v", adhoc, err)
	}
}

func TestEngineExplain(t *testing.T) {
	eng, err := Open(vaccineFederation(t), Config{
		Method: ExS, Dim: 128, Seed: 14, Lexicon: vaccineLexicon(),
	})
	if err != nil {
		t.Fatal(err)
	}
	exp, err := eng.Explain("COVID", "ecdc", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Top) == 0 || exp.Top[0].Value == "" {
		t.Fatalf("explanation=%+v", exp)
	}
}

func TestEngineConcurrentSearch(t *testing.T) {
	eng, err := Open(vaccineFederation(t), Config{
		Method: ANNS, Dim: 96, Seed: 15, Lexicon: vaccineLexicon(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			queries := []string{"COVID", "vaccine europe", "minerals", "football stadium"}
			for i := 0; i < 25; i++ {
				if _, err := eng.Search(queries[(w+i)%len(queries)], 3); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
