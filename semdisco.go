// Package semdisco discovers datasets in a federation of tabular relations
// by semantic matching, implementing "Dataset Discovery using Semantic
// Matching" (EDBT 2025).
//
// Every attribute value of every relation is embedded into a
// high-dimensional vector space; a keyword query is embedded the same way
// and relations are ranked by the aggregate similarity of their values to
// the query — so a query for "COVID" finds a table listing "Comirnaty" and
// "Vaxzevria" even though the string COVID appears nowhere in it. Because
// only embeddings are indexed, and embeddings are not reversible, member
// datasets become searchable without their contents leaving the premises.
//
// Three search strategies are available: exhaustive scan (ExS), vector-
// database approximate search (ANNS: HNSW index + Product Quantization),
// and clustered targeted search (CTS: UMAP reduction + HDBSCAN clustering
// + per-cluster indexes), the paper's headline method.
//
// Quickstart:
//
//	fed := semdisco.NewFederation()
//	fed.Add(&semdisco.Relation{ID: "who", Columns: ..., Rows: ...})
//	eng, err := semdisco.Open(fed, semdisco.Config{Method: semdisco.CTS})
//	matches, err := eng.Search("COVID vaccines in Europe", 10)
package semdisco

import (
	"context"
	"fmt"
	"sync"
	"time"

	"semdisco/internal/core"
	"semdisco/internal/embed"
	"semdisco/internal/obs"
	"semdisco/internal/text"
)

// Method selects the search strategy.
type Method int

const (
	// CTS is Clustered Targeted Search, the paper's best method: fastest
	// queries and the highest retrieval quality, at the price of the most
	// expensive index build (reduction + clustering).
	CTS Method = iota
	// ANNS indexes value vectors in an embedded vector database with HNSW
	// and Product Quantization: near-ExS quality, far faster queries.
	ANNS
	// ExS scans every value vector exhaustively: exact, no index build,
	// query cost linear in the corpus' total value count.
	ExS
)

func (m Method) String() string {
	switch m {
	case CTS:
		return "CTS"
	case ANNS:
		return "ANNS"
	case ExS:
		return "ExS"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Match is one discovery result.
type Match = core.Match

// Config parameterizes an Engine. The zero value selects CTS with the
// paper's defaults (768-dimensional embeddings, cosine similarity).
type Config struct {
	// Method selects the search strategy; default CTS.
	Method Method
	// Dim is the embedding dimensionality; default 768 (all-mpnet-base-v2's
	// output size, per the paper). Smaller dims trade quality for speed.
	Dim int
	// Seed makes embedding and index construction deterministic.
	Seed int64
	// Lexicon optionally injects domain synonym knowledge into the
	// encoder (see NewLexicon). Without one the encoder is purely lexical:
	// robust to inflection and misspelling but blind to synonymy.
	Lexicon *Lexicon
	// IDF optionally weights query/value tokens by informativeness
	// (higher = more important). Built automatically from the federation
	// when nil.
	IDF func(token string) float64
	// Threshold is the paper's h: matches scoring below it are dropped.
	Threshold float32
	// DisableMetrics turns off the engine's always-on observability
	// (atomic counters and latency histograms, see Engine.Stats and
	// Engine.MetricsRegistry). The default keeps metrics on: the cost is a
	// few atomic adds per query, cheap enough for production. Diagnostics
	// (slow-query log, trace sampling — see Diagnostics) are independent of
	// this switch: SearchTraced and the slow log work even without a
	// registry.
	DisableMetrics bool
	// Diagnostics tunes the slow-query log, trace sampling and event
	// journal; the zero value enables them with defaults. See
	// DiagnosticsConfig.
	Diagnostics DiagnosticsConfig
	// Tracing tunes the span-tree tracing subsystem: every search runs
	// under a 128-bit trace ID, and the tail-based trace store retains the
	// traces whose outcome is interesting (slow, degraded, hedged, failed)
	// plus a 1-in-M head sample. The zero value enables tracing with
	// defaults. See TracingConfig.
	Tracing TracingConfig
	// SLO tunes the service-level-objective burn-rate engine (availability
	// and latency objectives over rolling 5m/1h/6h windows). The zero value
	// enables it with defaults. See SLOConfig.
	SLO SLOConfig
	// Segments tunes the mutable segment store: when the in-memory write
	// segment seals, when background compaction triggers, and whether
	// maintenance runs automatically. The zero value enables automatic
	// maintenance with defaults. See SegmentsConfig.
	Segments SegmentsConfig

	// ExS tuning.
	ExS ExSOptions
	// ANNS tuning.
	ANNS ANNSOptions
	// CTS tuning.
	CTS CTSOptions
}

// Engine is a built discovery index over one federation, backed by a
// segment store: a mutable in-memory segment absorbs Add/Update, Delete
// tombstones in place, and background compaction merges segments and
// re-trains index structures when churn warrants it. Search, Add, Delete
// and Update are all safe for concurrent use — searches run against an
// atomically swapped segment snapshot and never block on writers.
type Engine struct {
	cfg      Config
	model    *embed.Model
	store    *core.SegmentStore
	obs      *obs.Registry     // nil when Config.DisableMetrics
	diag     *diagnostics      // nil when Config.Diagnostics.Disable
	traces   *obs.TraceStore   // nil when Config.Tracing.Disable
	workload *obs.Workload     // heavy hitters, costliest queries
	slo      *obs.SLOEngine    // nil when Config.SLO.Disable
	stats    *text.CorpusStats // nil when Config.IDF was supplied
	// relMu guards relSource: mutations write it, filtered searches and
	// dataset grouping read it.
	relMu     sync.RWMutex
	relSource map[string]string // relation ID -> source (dataset)
}

// Open embeds the federation and builds the index for the configured
// method. For CTS this is the expensive phase (dimensionality reduction and
// clustering run here); queries afterwards are fast.
func Open(fed *Federation, cfg Config) (*Engine, error) {
	if fed == nil || fed.Len() == 0 {
		return nil, fmt.Errorf("semdisco: empty federation")
	}
	idf := cfg.IDF
	var stats *text.CorpusStats
	if idf == nil {
		stats = federationStats(fed)
		idf = statsIDF(stats)
	}
	model := embed.New(embed.Config{
		Dim:     cfg.Dim,
		Seed:    cfg.Seed,
		Lexicon: cfg.Lexicon,
		IDF:     idf,
	})
	var reg *obs.Registry
	if !cfg.DisableMetrics {
		reg = obs.NewRegistry()
	}
	reg.SetHelps(core.MetricHelp)
	model.SetObserver(reg)
	embedStart := time.Now()
	emb := core.EmbedFederation(fed, model)
	reg.Gauge(obs.L(core.MetricBuildSeconds, "phase", "embed")).Set(time.Since(embedStart).Seconds())
	emb.Obs = reg

	s, err := buildSearcher(cfg, emb)
	if err != nil {
		return nil, err
	}
	store := core.NewSegmentStore(emb, s, segmentStoreOptions(cfg))
	relSource := make(map[string]string, fed.Len())
	for _, r := range fed.Relations() {
		relSource[r.ID] = r.Source
	}
	return &Engine{cfg: cfg, model: model, store: store, obs: reg,
		diag:     newDiagnostics(cfg.Diagnostics, reg),
		traces:   newTraceStore(cfg.Tracing),
		workload: newWorkload(1, reg),
		slo:      newSLOEngine(cfg.SLO, reg),
		stats:    stats, relSource: relSource}, nil
}

// buildSearcher constructs the configured method's index over an embedded
// federation. It is also the segment store's SegmentBuilder: sealing a
// mutable segment and compacting both rebuild through here, so a merged
// segment gets a freshly trained PQ codebook / fresh clustering.
func buildSearcher(cfg Config, emb *core.Embedded) (core.EncodedSearcher, error) {
	var (
		s   core.EncodedSearcher
		err error
	)
	switch cfg.Method {
	case ExS:
		opt := cfg.ExS
		if opt.Threshold == 0 {
			opt.Threshold = cfg.Threshold
		}
		s = core.NewExS(emb, opt)
	case ANNS:
		opt := cfg.ANNS
		if opt.Threshold == 0 {
			opt.Threshold = cfg.Threshold
		}
		if opt.Seed == 0 {
			opt.Seed = cfg.Seed
		}
		s, err = core.NewANNS(emb, opt)
	case CTS:
		opt := cfg.CTS
		if opt.Threshold == 0 {
			opt.Threshold = cfg.Threshold
		}
		if opt.Seed == 0 {
			opt.Seed = cfg.Seed
		}
		s, err = core.NewCTS(emb, opt)
	default:
		return nil, fmt.Errorf("semdisco: unknown method %v", cfg.Method)
	}
	if err != nil {
		return nil, fmt.Errorf("semdisco: building %v index: %w", cfg.Method, err)
	}
	return s, nil
}

// Search ranks the federation's relations for a keyword query and returns
// at most k matches, best first, all scoring at least the configured
// threshold. With diagnostics enabled (the default) every query runs
// traced and feeds the slow-query log; the overhead is a few timestamps
// and map writes per query.
func (e *Engine) Search(query string, k int) ([]Match, error) {
	return e.SearchContext(context.Background(), query, k)
}

// SearchContext is Search with cooperative cancellation: the context is
// threaded into the method's inner loops (between ExS scan chunks, between
// CTS clusters, between HNSW hops), so an expired deadline or a cancelled
// request interrupts the query mid-index and returns the context's error.
// This is what lets a cluster deadline actually stop shard work rather
// than merely abandoning its result.
func (e *Engine) SearchContext(ctx context.Context, query string, k int) ([]Match, error) {
	if e.diag == nil && e.traces == nil {
		return e.store.SearchTracedContext(ctx, query, k, nil)
	}
	matches, _, _, err := e.searchWithTrace(ctx, query, k)
	return matches, err
}

// Method reports the engine's search strategy.
func (e *Engine) Method() Method { return e.cfg.Method }

// NumValues reports how many distinct attribute values are live (indexed
// and not tombstoned).
func (e *Engine) NumValues() int { return e.store.NumLiveValues() }

// NumRelations reports how many relations are live.
func (e *Engine) NumRelations() int { return e.store.NumLiveRelations() }

// Embed exposes the engine's encoder: the unit-norm embedding of any text,
// in the same space the index lives in. Useful for building custom
// similarity logic on top of the engine.
func (e *Engine) Embed(text string) []float32 { return e.model.Encode(text) }
