package semdisco

import (
	"context"
	"time"

	"semdisco/internal/core"
	"semdisco/internal/obs"
)

// TraceStage is one step of a traced search: its name, wall-clock duration
// and the key/value annotations the stage recorded (vectors scanned,
// clusters selected, …).
type TraceStage struct {
	Name        string            `json:"name"`
	DurationMS  float64           `json:"duration_ms"`
	Annotations map[string]string `json:"annotations,omitempty"`
}

// SearchTraced runs Search and additionally returns the per-stage
// breakdown of the query (encode → index walk → rank, with per-method
// stage names). Tracing costs a few timestamps and map writes per query;
// with diagnostics disabled, plain Search skips even that. Traces are
// independent of the metrics registry: the full stage breakdown is
// returned even under Config.DisableMetrics.
func (e *Engine) SearchTraced(query string, k int) ([]Match, []TraceStage, error) {
	return e.SearchTracedContext(context.Background(), query, k)
}

// SearchTracedContext is SearchTraced under a caller-controlled context:
// cancellation is threaded into the index walk, a propagated span context
// (see obs.ContextWithSpan) is continued instead of minting a fresh trace
// ID, and the request correlation ID rides into the diagnostics records.
func (e *Engine) SearchTracedContext(ctx context.Context, query string, k int) ([]Match, []TraceStage, error) {
	matches, tr, _, err := e.searchWithTrace(ctx, query, k)
	if err != nil {
		return nil, nil, err
	}
	return matches, toTraceStages(tr.Stages()), nil
}

// searchWithTrace is the shared traced-search path behind Search and
// SearchTraced: it runs the query under a root span — continuing a
// propagated trace when ctx carries one — with a cost accumulator in the
// context so the index layers account their work, and feeds the outcome to
// the diagnostics layer (slow-query log, sampler, journal), the workload
// analyzer, the SLO engine and the tail-based trace store, linking the
// latency histogram to the trace via an exemplar when it is retained. All
// these layers are nil-safe no-ops when disabled.
func (e *Engine) searchWithTrace(ctx context.Context, query string, k int) ([]Match, *obs.Trace, obs.CostReport, error) {
	cost := obs.CostFrom(ctx)
	if cost == nil {
		cost = &obs.Cost{}
		ctx = obs.ContextWithCost(ctx, cost)
	}
	tr := obs.NewTraceFrom(ctx)
	root := tr.StartRoot("search")
	var (
		matches []Match
		err     error
	)
	matches, err = e.store.SearchTracedContext(ctx, query, k, tr)
	rep := cost.Report()
	root.AnnotateInt("matches", len(matches)).
		AnnotateInt("distance_comps", int(rep.DistanceComps)).
		AnnotateInt("hnsw_hops", int(rep.HNSWHops)).
		AnnotateInt("pq_lookups", int(rep.PQLookups))
	dur := root.End()
	method := e.Method().String()
	requestID := obs.RequestIDFrom(ctx)
	e.diag.observe(method, query, k, matches, dur, tr, requestID, err)
	e.workload.Record(query, method, tr.ID().String(), rep, dur, time.Now())
	e.workload.RecordShard(0)
	e.slo.Record(dur, err != nil)
	if e.traces != nil {
		o := obs.TraceOutcome{
			Duration:  dur,
			Query:     query,
			Method:    method,
			K:         k,
			Matches:   len(matches),
			RequestID: requestID,
		}
		if err != nil {
			o.Err = err.Error()
		}
		offerTrace(e.traces, e.obs, obs.L(core.MetricSearchSeconds, "method", method), tr, o)
	}
	return matches, tr, rep, err
}

// toTraceStages converts internal trace stages to the public form.
func toTraceStages(stages []obs.Stage) []TraceStage {
	out := make([]TraceStage, len(stages))
	for i, s := range stages {
		out[i] = TraceStage{
			Name:        s.Name,
			DurationMS:  float64(s.Duration) / float64(time.Millisecond),
			Annotations: s.Annotations,
		}
	}
	return out
}

// MetricsRegistry exposes the engine's metrics registry for in-process
// surfaces such as internal/httpapi's /metrics endpoint. Nil when the
// engine was opened with Config.DisableMetrics — and a nil *obs.Registry
// is a valid value everywhere in this codebase: every method on it is a
// no-op, so callers may hand it to exporters or record against it without
// a nil check. Tracing (SearchTraced) and diagnostics (SlowQueries,
// Journal) do not depend on the registry and keep working without one.
func (e *Engine) MetricsRegistry() *obs.Registry { return e.obs }

// LatencySummary is the quantile snapshot of one latency histogram.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// EngineStats is a point-in-time snapshot of the engine's observability
// state: corpus shape, per-method query counters and latency quantiles,
// per-stage latency, encoder cache effectiveness and index-build phase
// durations.
type EngineStats struct {
	Method       string `json:"method"`
	NumRelations int    `json:"num_relations"`
	NumValues    int    `json:"num_values"`
	// NumClusters is 0 unless the method is CTS.
	NumClusters int `json:"num_clusters,omitempty"`
	// Segments describes the segment store: segment counts, tombstoned
	// volume, seal/compaction counters.
	Segments SegmentStats `json:"segments"`
	// Searches counts completed queries by method name.
	Searches map[string]int64 `json:"searches,omitempty"`
	// SearchLatency maps method name to end-to-end query latency.
	SearchLatency map[string]LatencySummary `json:"search_latency,omitempty"`
	// StageLatency maps "method/stage" to that stage's latency.
	StageLatency map[string]LatencySummary `json:"stage_latency,omitempty"`
	// Encoder token-cache effectiveness.
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// BuildSeconds maps index-build phase ("embed", "umap", "hdbscan",
	// "pq_train", "hnsw_insert") to its wall-clock seconds.
	BuildSeconds map[string]float64 `json:"build_seconds,omitempty"`
}

// Stats snapshots the engine's metrics. With Config.DisableMetrics only
// the corpus-shape fields are populated.
func (e *Engine) Stats() EngineStats {
	st := EngineStats{
		Method:       e.Method().String(),
		NumRelations: e.store.NumLiveRelations(),
		NumValues:    e.store.NumLiveValues(),
		Segments:     e.store.Stats(),
	}
	if base, _ := e.store.Base(); base != nil {
		if cts, ok := base.(*core.CTS); ok {
			st.NumClusters = cts.NumClusters()
		}
	}
	if e.obs == nil {
		return st
	}
	snap := e.obs.Snapshot()
	for series, v := range snap.Counters {
		base, labels := obs.ParseName(series)
		switch base {
		case core.MetricSearches:
			if st.Searches == nil {
				st.Searches = make(map[string]int64)
			}
			st.Searches[labels["method"]] = v
		case "semdisco_embed_cache_hits_total":
			st.CacheHits = v
		case "semdisco_embed_cache_misses_total":
			st.CacheMisses = v
		}
	}
	if total := st.CacheHits + st.CacheMisses; total > 0 {
		st.CacheHitRate = float64(st.CacheHits) / float64(total)
	}
	for series, v := range snap.Gauges {
		base, labels := obs.ParseName(series)
		if base == core.MetricBuildSeconds {
			if st.BuildSeconds == nil {
				st.BuildSeconds = make(map[string]float64)
			}
			st.BuildSeconds[labels["phase"]] = v
		}
	}
	for series, h := range snap.Histograms {
		base, labels := obs.ParseName(series)
		switch base {
		case core.MetricSearchSeconds:
			if st.SearchLatency == nil {
				st.SearchLatency = make(map[string]LatencySummary)
			}
			st.SearchLatency[labels["method"]] = summarize(h)
		case core.MetricStageSeconds:
			if st.StageLatency == nil {
				st.StageLatency = make(map[string]LatencySummary)
			}
			st.StageLatency[labels["method"]+"/"+labels["stage"]] = summarize(h)
		}
	}
	return st
}

func summarize(h obs.HistSnapshot) LatencySummary {
	s := LatencySummary{
		Count: h.Count,
		P50MS: float64(h.Quantile(0.50)) / float64(time.Millisecond),
		P95MS: float64(h.Quantile(0.95)) / float64(time.Millisecond),
		P99MS: float64(h.Quantile(0.99)) / float64(time.Millisecond),
	}
	if h.Count > 0 {
		s.MeanMS = float64(h.Sum) / float64(h.Count) / float64(time.Millisecond)
	}
	return s
}
