package semdisco

import (
	"fmt"

	"semdisco/internal/columns"
	"semdisco/internal/embed"
)

// ColumnRef identifies a column within a federation.
type ColumnRef = columns.ColumnRef

// ColumnMatch is one column-discovery result: the candidate column, its
// relatedness score, and (for joinability) the exact value containment.
type ColumnMatch = columns.Match

// ColumnIndex finds unionable and joinable columns across a federation —
// the column-level counterpart of Engine's table-level discovery. Build it
// once per federation; searches are cheap.
type ColumnIndex struct {
	ix *columns.Index
}

// OpenColumns profiles every column of the federation. The Config's Dim,
// Seed, Lexicon and IDF are honored the same way Open honors them;
// Method/threshold fields are ignored.
func OpenColumns(fed *Federation, cfg Config) (*ColumnIndex, error) {
	if fed == nil || fed.Len() == 0 {
		return nil, fmt.Errorf("semdisco: empty federation")
	}
	idf := cfg.IDF
	if idf == nil {
		idf = statsIDF(federationStats(fed))
	}
	model := embed.New(embed.Config{
		Dim:     cfg.Dim,
		Seed:    cfg.Seed,
		Lexicon: cfg.Lexicon,
		IDF:     idf,
	})
	ix, err := columns.BuildIndex(fed, model, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &ColumnIndex{ix: ix}, nil
}

// NumColumns reports how many columns are profiled.
func (ci *ColumnIndex) NumColumns() int { return ci.ix.NumColumns() }

// Unionable returns the k columns most unionable with the named column:
// columns holding values of the same semantic type in other relations.
func (ci *ColumnIndex) Unionable(relationID, column string, k int) ([]ColumnMatch, error) {
	p, ok := ci.ix.Profile(ColumnRef{RelationID: relationID, Column: column})
	if !ok {
		return nil, fmt.Errorf("semdisco: column %s.%s not indexed", relationID, column)
	}
	return ci.ix.Unionable(p, k)
}

// Joinable returns the k best join candidates for the named column,
// ranked by a blend of exact value containment and semantic similarity.
func (ci *ColumnIndex) Joinable(relationID, column string, k int) ([]ColumnMatch, error) {
	p, ok := ci.ix.Profile(ColumnRef{RelationID: relationID, Column: column})
	if !ok {
		return nil, fmt.Errorf("semdisco: column %s.%s not indexed", relationID, column)
	}
	return ci.ix.Joinable(p, k)
}

// JoinableValues finds join candidates for an ad-hoc column that is not
// part of the federation (e.g. from the user's own seed table).
func (ci *ColumnIndex) JoinableValues(name string, values []string, k int) ([]ColumnMatch, error) {
	p := ci.ix.ProfileColumn("", name, values)
	return ci.ix.Joinable(p, k)
}

// UnionableValues finds unionable candidates for an ad-hoc column.
func (ci *ColumnIndex) UnionableValues(name string, values []string, k int) ([]ColumnMatch, error) {
	p := ci.ix.ProfileColumn("", name, values)
	return ci.ix.Unionable(p, k)
}
