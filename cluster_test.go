package semdisco

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
)

// synthFederation builds n deterministic relations with overlapping
// vocabulary, enough for shard partitions to stay non-empty and score ties
// to occur.
func synthFederation(t testing.TB, n int) *Federation {
	t.Helper()
	fed := NewFederation()
	letters := "abcdefghijklmnopqrstuvwxyz"
	word := func(i, j int) string {
		return string(letters[(i+j)%26]) + string(letters[(i*3+j)%26]) + string(letters[(i*7+j*5)%26])
	}
	for i := 0; i < n; i++ {
		r := &Relation{
			ID:      fmt.Sprintf("rel-%03d", i),
			Source:  fmt.Sprintf("src-%d", i%3),
			Columns: []string{"a", "b"},
			Rows: [][]string{
				{word(i, 0), word(i, 1)},
				{word(i, 2), word(i, 3)},
			},
		}
		if err := fed.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	return fed
}

func clusterCfg(shards int) ClusterConfig {
	return ClusterConfig{
		Config: Config{Method: ExS, Dim: 64, Seed: 1},
		Shards: shards,
	}
}

// TestClusterExSEquivalence is the acceptance criterion: a 4-shard ExS
// cluster must return the same relation IDs in the same order as a single
// ExS engine over the same federation — the merge's tie-breaking on global
// insertion order makes the rankings bit-identical.
func TestClusterExSEquivalence(t *testing.T) {
	fed := synthFederation(t, 32)
	eng, err := Open(fed, Config{Method: ExS, Dim: 64, Seed: 1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for _, policy := range []ShardPolicy{ShardByHash, ShardRoundRobin} {
		cfg := clusterCfg(4)
		cfg.Policy = policy
		cl, err := NewCluster(fed, cfg)
		if err != nil {
			t.Fatalf("%v: new cluster: %v", policy, err)
		}
		for _, q := range []string{"abc", "bfd", "abc def", "xyz qrs", "mno"} {
			for _, k := range []int{1, 5, 10, 32} {
				want, err := eng.Search(q, k)
				if err != nil {
					t.Fatalf("engine search: %v", err)
				}
				res, err := cl.Search(q, k)
				if err != nil {
					t.Fatalf("%v: cluster search: %v", policy, err)
				}
				if res.Degraded {
					t.Fatalf("%v: unexpected degradation", policy)
				}
				if len(res.Matches) != len(want) {
					t.Fatalf("%v q=%q k=%d: %d matches, engine returned %d",
						policy, q, k, len(res.Matches), len(want))
				}
				for i := range want {
					if res.Matches[i] != want[i] {
						t.Errorf("%v q=%q k=%d match %d: cluster %+v, engine %+v",
							policy, q, k, i, res.Matches[i], want[i])
					}
				}
			}
		}
	}
}

// TestClusterPersistRoundTrip is satellite 3: Save/Load must restore shard
// assignment and produce identical search results.
func TestClusterPersistRoundTrip(t *testing.T) {
	fed := synthFederation(t, 24)
	cfg := clusterCfg(3)
	cfg.CacheSize = 8
	cl, err := NewCluster(fed, cfg)
	if err != nil {
		t.Fatalf("new cluster: %v", err)
	}
	var buf bytes.Buffer
	if err := cl.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	restored, err := LoadCluster(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if restored.NumShards() != cl.NumShards() {
		t.Fatalf("shards: %d vs %d", restored.NumShards(), cl.NumShards())
	}
	if restored.NumRelations() != cl.NumRelations() {
		t.Fatalf("relations: %d vs %d", restored.NumRelations(), cl.NumRelations())
	}
	// Shard assignment survives: per-shard relation counts match.
	before, after := cl.Stats(), restored.Stats()
	for i := range before.Shards {
		if before.Shards[i].Relations != after.Shards[i].Relations {
			t.Errorf("shard %d relations: %d vs %d",
				i, before.Shards[i].Relations, after.Shards[i].Relations)
		}
	}
	for _, q := range []string{"abc", "def ghi", "mno"} {
		want, err := cl.Search(q, 10)
		if err != nil {
			t.Fatalf("search: %v", err)
		}
		got, err := restored.Search(q, 10)
		if err != nil {
			t.Fatalf("restored search: %v", err)
		}
		if len(got.Matches) != len(want.Matches) {
			t.Fatalf("q=%q: %d vs %d matches", q, len(got.Matches), len(want.Matches))
		}
		for i := range want.Matches {
			if got.Matches[i] != want.Matches[i] {
				t.Errorf("q=%q match %d: %+v vs %+v", q, i, got.Matches[i], want.Matches[i])
			}
		}
	}
}

// TestClusterAddEquivalence verifies incremental adds keep the federated
// ranking aligned with a single engine receiving the same adds.
func TestClusterAddEquivalence(t *testing.T) {
	fed := synthFederation(t, 16)
	eng, err := Open(fed, Config{Method: ExS, Dim: 64, Seed: 1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	cl, err := NewCluster(fed, clusterCfg(4))
	if err != nil {
		t.Fatalf("new cluster: %v", err)
	}
	extra := &Relation{
		ID:      "rel-new",
		Source:  "src-x",
		Columns: []string{"a"},
		Rows:    [][]string{{"abc"}, {"def"}},
	}
	if err := eng.Add(extra); err != nil {
		t.Fatalf("engine add: %v", err)
	}
	if err := cl.Add(extra); err != nil {
		t.Fatalf("cluster add: %v", err)
	}
	if err := cl.Add(extra); err == nil {
		t.Fatal("duplicate add must fail")
	}
	want, err := eng.Search("abc def", 10)
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	res, err := cl.Search("abc def", 10)
	if err != nil {
		t.Fatalf("cluster search: %v", err)
	}
	if len(res.Matches) != len(want) {
		t.Fatalf("%d vs %d matches", len(res.Matches), len(want))
	}
	for i := range want {
		if res.Matches[i] != want[i] {
			t.Errorf("match %d: %+v vs %+v", i, res.Matches[i], want[i])
		}
	}
}

func TestClusterCacheAndStats(t *testing.T) {
	fed := synthFederation(t, 12)
	cfg := clusterCfg(2)
	cfg.CacheSize = 8
	cl, err := NewCluster(fed, cfg)
	if err != nil {
		t.Fatalf("new cluster: %v", err)
	}
	if res, err := cl.Search("abc", 5); err != nil || res.CacheHit {
		t.Fatalf("first search: hit=%v err=%v", res != nil && res.CacheHit, err)
	}
	if res, err := cl.Search("abc", 5); err != nil || !res.CacheHit {
		t.Fatalf("second search should hit cache: err=%v", err)
	}
	st := cl.Stats()
	if st.CacheHits != 1 || st.Searches != 2 {
		t.Errorf("stats: hits=%d searches=%d, want 1, 2", st.CacheHits, st.Searches)
	}
	if len(st.Shards) != 2 {
		t.Fatalf("shard stats: %d entries", len(st.Shards))
	}
	if st.Shards[0].Searches == 0 && st.Shards[1].Searches == 0 {
		t.Error("no shard recorded a search")
	}
}

func TestClusterTracedStages(t *testing.T) {
	fed := synthFederation(t, 12)
	cl, err := NewCluster(fed, clusterCfg(2))
	if err != nil {
		t.Fatalf("new cluster: %v", err)
	}
	_, stages, err := cl.SearchTraced("abc", 5)
	if err != nil {
		t.Fatalf("traced: %v", err)
	}
	names := make(map[string]bool)
	for _, s := range stages {
		names[s.Name] = true
	}
	for _, want := range []string{"encode", "scatter", "merge"} {
		if !names[want] {
			t.Errorf("missing stage %q in %v", want, stages)
		}
	}
}

func TestClusterSearchContextCancelled(t *testing.T) {
	fed := synthFederation(t, 12)
	cl, err := NewCluster(fed, clusterCfg(2))
	if err != nil {
		t.Fatalf("new cluster: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cl.SearchContext(ctx, "abc", 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(nil, clusterCfg(2)); err == nil {
		t.Error("nil federation must fail")
	}
	fed := synthFederation(t, 3)
	if _, err := NewCluster(fed, clusterCfg(8)); err == nil {
		t.Error("more shards than relations must fail")
	}
	// CTS and ANNS shards build too.
	big := synthFederation(t, 24)
	for _, m := range []Method{ANNS, CTS} {
		cfg := ClusterConfig{Config: Config{Method: m, Dim: 32, Seed: 1}, Shards: 2, Policy: ShardRoundRobin}
		cl, err := NewCluster(big, cfg)
		if err != nil {
			t.Fatalf("%v cluster: %v", m, err)
		}
		res, err := cl.Search("abc def", 5)
		if err != nil {
			t.Fatalf("%v search: %v", m, err)
		}
		if len(res.Matches) == 0 {
			t.Errorf("%v returned no matches", m)
		}
	}
}
