package semdisco

import (
	"io"

	"semdisco/internal/core"
	"semdisco/internal/embed"
	"semdisco/internal/table"
	"semdisco/internal/text"
)

// The data-model and encoder-configuration types are defined in internal
// packages and re-exported here as aliases, so the public surface of the
// module is exactly this package.

// Relation is a table: header, rows, and contextual fields (page title,
// section title, caption).
type Relation = table.Relation

// Attribute is one named cell value.
type Attribute = table.Attribute

// Tuple is one row as a sequence of attributes.
type Tuple = table.Tuple

// Federation is a collection of relations from multiple sources.
type Federation = table.Federation

// Lexicon maps terms to concepts (synonym sets) and is the way domain
// knowledge enters the encoder: terms registered under one concept embed
// near each other regardless of surface form.
type Lexicon = embed.Lexicon

// ExSOptions tunes the exhaustive searcher (threshold, aggregation).
type ExSOptions = core.ExSOptions

// ANNSOptions tunes the vector-database searcher (HNSW beam widths, PQ
// compression).
type ANNSOptions = core.ANNSOptions

// CTSOptions tunes the clustered searcher (reduction, cluster granularity,
// clusters visited per query).
type CTSOptions = core.CTSOptions

// Aggregators for ExSOptions.Aggregator: the paper averages value scores;
// max and top-m are the ablation variants discussed in §5.3.
const (
	AggMean = core.AggMean
	AggMax  = core.AggMax
	AggTopM = core.AggTopM
)

// NewFederation returns an empty federation.
func NewFederation() *Federation { return table.NewFederation() }

// NewLexicon returns an empty lexicon. Populate it with AddSynonyms:
//
//	lex := semdisco.NewLexicon()
//	lex.AddSynonyms("COVID", "coronavirus", "SARS-CoV-2")
func NewLexicon() *Lexicon { return embed.NewLexicon() }

// ReadCSV parses one relation from CSV (first record is the header).
func ReadCSV(r io.Reader, id, source string) (*Relation, error) {
	return table.ReadCSV(r, id, source)
}

// LoadDir loads every *.csv file in dir as one relation each.
func LoadDir(dir string) (*Federation, error) { return table.LoadDir(dir) }

// federationStats builds inverse-document-frequency statistics over the
// federation's relations, treating each relation's consolidated text as a
// document.
func federationStats(fed *Federation) *text.CorpusStats {
	stats := &text.CorpusStats{}
	for _, r := range fed.Relations() {
		toks := text.Tokenize(r.Text())
		stemmed := make([]string, len(toks))
		for i, t := range toks {
			stemmed[i] = text.Stem(t)
		}
		stats.AddDocument(stemmed)
	}
	return stats
}

// statsIDF adapts corpus statistics into the encoder's IDF callback.
func statsIDF(stats *text.CorpusStats) func(string) float64 {
	return func(token string) float64 { return stats.IDF(text.Stem(token)) }
}
