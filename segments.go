package semdisco

import (
	"time"

	"semdisco/internal/core"
	"semdisco/internal/segment"
)

// SegmentsConfig tunes the engine's segment store — the LSM-like layout
// that makes the corpus mutable: Adds land in a small in-memory mutable
// segment (no index build on the write path), Deletes tombstone in place,
// and a background compactor merges segments and re-trains the method's
// index structures when churn warrants it. The zero value enables
// automatic maintenance with defaults.
type SegmentsConfig struct {
	// MaxMutableValues seals the mutable segment once it holds this many
	// value vectors; the sealed segment gets the method's full index built
	// in the background. Default 4096. Negative disables size-based seals.
	MaxMutableValues int
	// MaxSegments triggers compaction when the store exceeds this many
	// immutable segments. Default 4. Negative disables.
	MaxSegments int
	// MaxDeadFraction triggers compaction when tombstoned relations exceed
	// this fraction of the corpus. Default 0.2. Negative disables.
	MaxDeadFraction float64
	// MaxMedoidDrift triggers a re-clustering compaction when a sealed CTS
	// segment's mean medoid drift grows this far beyond its build-time
	// baseline. Default 0.15. Negative disables.
	MaxMedoidDrift float64
	// MaxPQDistortion triggers a PQ re-train compaction when a sealed ANNS
	// segment's sampled distortion grows this far beyond its build-time
	// baseline. Default 0.25. Negative disables.
	MaxPQDistortion float64
	// DriftCheckEvery evaluates the drift triggers every Nth mutation
	// (they walk the index, so per-mutation checks would be wasteful).
	// Default 64. Negative disables periodic checks.
	DriftCheckEvery int
	// CompactionInterval additionally runs a maintenance pass on a timer
	// when StartCompactor is used. 0 leaves it mutation-driven only.
	CompactionInterval time.Duration
	// Manual disables automatic background maintenance: segments seal and
	// compact only via explicit Compact/CompactionCheck calls (or a
	// StartCompactor ticker). Deterministic tests want this.
	Manual bool
}

// segmentPolicy translates the public config into the store's policy.
func (sc SegmentsConfig) segmentPolicy() segment.Policy {
	return segment.Policy{
		MaxMutableValues: sc.MaxMutableValues,
		MaxSegments:      sc.MaxSegments,
		MaxDeadFraction:  sc.MaxDeadFraction,
		MaxMedoidDrift:   sc.MaxMedoidDrift,
		MaxPQDistortion:  sc.MaxPQDistortion,
		DriftCheckEvery:  sc.DriftCheckEvery,
		Interval:         sc.CompactionInterval,
	}.WithDefaults()
}

// segmentStoreOptions assembles the store options for one engine or shard:
// the method builder, the mutable-segment scan matched to the method's
// effective threshold, and the compaction policy.
func segmentStoreOptions(cfg Config) core.SegmentStoreOptions {
	return core.SegmentStoreOptions{
		Build:        func(emb *core.Embedded) (core.EncodedSearcher, error) { return buildSearcher(cfg, emb) },
		ExS:          mutableExSOptions(cfg),
		Policy:       cfg.Segments.segmentPolicy(),
		Method:       cfg.Method.String(),
		AutoMaintain: !cfg.Segments.Manual,
	}
}

// mutableExSOptions derives the exhaustive-scan options for the mutable
// segment (and for frozen segments awaiting their background build) from
// the method's own effective threshold, so per-segment result prefixes
// merge under one consistent cutoff.
func mutableExSOptions(cfg Config) ExSOptions {
	opt := cfg.ExS
	switch cfg.Method {
	case ANNS:
		opt = ExSOptions{Threshold: cfg.ANNS.Threshold}
	case CTS:
		opt = ExSOptions{Threshold: cfg.CTS.Threshold}
	}
	if opt.Threshold == 0 {
		opt.Threshold = cfg.Threshold
	}
	return opt
}

// SegmentStats describes the engine's segment store: segment counts, live
// and tombstoned volumes, seal/compaction counters and the last
// compaction's trigger and duration.
type SegmentStats = core.SegmentStats

// SegmentStats snapshots the engine's segment store.
func (e *Engine) SegmentStats() SegmentStats { return e.store.Stats() }

// Delete removes a relation from the engine by tombstoning it: the
// relation stops appearing in every search method's results immediately,
// and its vectors are physically reclaimed by the next compaction. Safe
// for concurrent use with Search. Returns an error for unknown IDs.
func (e *Engine) Delete(relationName string) error {
	if err := e.store.Delete(relationName); err != nil {
		return err
	}
	e.relMu.Lock()
	delete(e.relSource, relationName)
	e.relMu.Unlock()
	return nil
}

// Update replaces a relation's contents: the old copy is tombstoned and
// the new one lands in the mutable segment, atomically with respect to
// other mutations. Returns an error for unknown IDs (use Add for new
// relations).
func (e *Engine) Update(r *Relation) error {
	if err := e.store.Update(r); err != nil {
		return err
	}
	e.relMu.Lock()
	e.relSource[r.ID] = r.Source
	e.relMu.Unlock()
	return nil
}

// Compact forces a full compaction now: every segment's surviving
// relations merge into one fresh base segment and the method's index is
// rebuilt over them (re-trained PQ, re-run clustering). Searches proceed
// during the rebuild against the old segments and switch atomically to
// the new one. Compactions serialize among themselves.
func (e *Engine) Compact() error { return e.store.Compact() }

// CompactionCheck runs one maintenance pass synchronously: seal the
// mutable segment if it is over threshold, build indexes for any sealed-
// but-unindexed segments, then compact if a policy trigger (segment
// count, dead fraction, medoid drift, PQ distortion) fires. This is the
// same pass automatic maintenance runs in the background.
func (e *Engine) CompactionCheck() error { return e.store.Maintain() }

// StartCompactor launches a background maintenance ticker on top of the
// mutation-driven passes (interval from SegmentsConfig.CompactionInterval,
// disabled when 0). The returned stop function terminates it and waits
// for any in-flight pass.
func (e *Engine) StartCompactor() (stop func()) { return e.store.StartMaintenance() }

// LiveRelations returns the IDs of every live (non-tombstoned) relation
// in global insertion order — the order in which a fresh engine built
// from the surviving corpus would index them.
func (e *Engine) LiveRelations() []string { return e.store.LiveRelations() }

// Has reports whether a relation is live in the engine.
func (e *Engine) Has(relationName string) bool { return e.store.Has(relationName) }
