package semdisco

import (
	"strconv"
	"time"

	"semdisco/internal/core"
	"semdisco/internal/obs"
)

// DiagnosticsConfig tunes the engine's deep-diagnostics layer: the
// slow-query log, head-based trace sampling and the structured event
// journal. The zero value enables diagnostics with sane defaults (128-deep
// slow ring retaining every query, 256-event journal, sampling off).
type DiagnosticsConfig struct {
	// Disable turns the whole layer off; Search then skips per-query
	// tracing entirely, as before.
	Disable bool
	// SlowLogSize is the slow-query ring capacity; default 128.
	SlowLogSize int
	// SlowLogThreshold is the minimum latency for a query to be retained
	// in the ring and journaled as "slow". Zero retains every query (the
	// ring then holds the most recent ones and SlowQueries ranks them) and
	// journals none as slow.
	SlowLogThreshold time.Duration
	// TraceSampleEvery journals the full exemplar trace of 1 in every M
	// queries (head-based). Zero disables sampling.
	TraceSampleEvery int
	// JournalSize is the event journal capacity; default 256.
	JournalSize int
}

// diagnostics is the per-engine instance: ring buffers and the sampler,
// plus the registry hooks that count slow/sampled queries. All methods are
// nil-receiver-safe so the Search hot path never branches on enablement.
type diagnostics struct {
	slowlog *obs.SlowLog
	sampler *obs.Sampler
	journal *obs.Journal
	recent  *obs.RecentQueries
	reg     *obs.Registry // nil when metrics are disabled; diagnostics still work
}

func newDiagnostics(dc DiagnosticsConfig, reg *obs.Registry) *diagnostics {
	if dc.Disable {
		return nil
	}
	return &diagnostics{
		slowlog: obs.NewSlowLog(dc.SlowLogSize, dc.SlowLogThreshold),
		sampler: obs.NewSampler(dc.TraceSampleEvery),
		journal: obs.NewJournal(dc.JournalSize),
		recent:  obs.NewRecentQueries(0),
		reg:     reg,
	}
}

// observe records one completed (or failed) query: always into the
// recent-query ring and — threshold permitting — the slow ring; slow or
// sampled queries additionally journal their exemplar trace.
func (d *diagnostics) observe(method, query string, k int, matches []Match, dur time.Duration, tr *obs.Trace, requestID string, err error) {
	if d == nil {
		return
	}
	d.recent.Add(query)
	rec := obs.QueryRecord{
		Time:      time.Now(),
		Query:     query,
		Method:    method,
		K:         k,
		Matches:   len(matches),
		Duration:  dur,
		Stages:    tr.Stages(),
		RequestID: requestID,
	}
	if id := tr.ID(); !id.IsZero() {
		rec.TraceID = id.String()
	}
	if len(matches) > 0 {
		rec.TopScore = matches[0].Score
	}
	if err != nil {
		rec.Err = err.Error()
	}
	d.slowlog.Record(rec)
	slow := d.slowlog.Threshold() > 0 && dur >= d.slowlog.Threshold()
	sampled := d.sampler.Sample() // counts every query, slow or not
	switch {
	case slow:
		d.reg.Counter(obs.L(core.MetricSlowQueries, "method", method)).Inc()
		d.journal.Append(obs.EventFromRecord("slow", rec))
	case sampled:
		d.reg.Counter(obs.L(core.MetricSampledTraces, "method", method)).Inc()
		d.journal.Append(obs.EventFromRecord("sampled", rec))
	}
}

// ConfigureDiagnostics replaces the engine's diagnostics layer, e.g. to
// apply a latency threshold to an engine restored with LoadEngine. Call it
// before serving traffic; it must not race with Search.
func (e *Engine) ConfigureDiagnostics(dc DiagnosticsConfig) {
	e.diag = newDiagnostics(dc, e.obs)
}

// SlowQuery is one retained slow-query record with its stage trace.
type SlowQuery struct {
	Time       time.Time    `json:"time"`
	Query      string       `json:"query"`
	Method     string       `json:"method"`
	K          int          `json:"k"`
	Matches    int          `json:"matches"`
	TopScore   float32      `json:"top_score"`
	DurationMS float64      `json:"duration_ms"`
	Stages     []TraceStage `json:"stages,omitempty"`
	TraceID    string       `json:"trace_id,omitempty"`
	RequestID  string       `json:"request_id,omitempty"`
	Err        string       `json:"error,omitempty"`
}

// SlowQueries returns up to n retained queries, slowest first, each with
// its full stage trace. With the default zero threshold the ring holds the
// most recent queries, so this answers "what were the slowest recent
// queries"; with a threshold it holds only genuine offenders. n ≤ 0
// returns every retained record. Nil when diagnostics are disabled.
func (e *Engine) SlowQueries(n int) []SlowQuery {
	if e.diag == nil {
		return nil
	}
	recs := e.diag.slowlog.Slowest(n)
	out := make([]SlowQuery, len(recs))
	for i, r := range recs {
		out[i] = SlowQuery{
			Time:       r.Time,
			Query:      r.Query,
			Method:     r.Method,
			K:          r.K,
			Matches:    r.Matches,
			TopScore:   r.TopScore,
			DurationMS: float64(r.Duration) / float64(time.Millisecond),
			Stages:     toTraceStages(r.Stages),
			TraceID:    r.TraceID,
			RequestID:  r.RequestID,
			Err:        r.Err,
		}
	}
	return out
}

// SlowLogStats reports the slow-log's configuration and volume.
type SlowLogStats struct {
	ThresholdMS float64 `json:"threshold_ms"`
	Retained    int     `json:"retained"`
	Recorded    int64   `json:"recorded"`
}

// SlowLogStats snapshots the slow log's threshold and counts.
func (e *Engine) SlowLogStats() SlowLogStats {
	if e.diag == nil {
		return SlowLogStats{}
	}
	l := e.diag.slowlog
	return SlowLogStats{
		ThresholdMS: float64(l.Threshold()) / float64(time.Millisecond),
		Retained:    l.Len(),
		Recorded:    l.Recorded(),
	}
}

// Journal exposes the engine's structured event journal of slow and
// sampled query traces, exportable as JSON lines via its WriteJSONL. Nil
// when diagnostics are disabled.
func (e *Engine) Journal() *obs.Journal {
	if e.diag == nil {
		return nil
	}
	return e.diag.journal
}

// IndexHealth is the engine's index self-diagnosis; see core.IndexHealth
// for the per-method sections.
type IndexHealth = core.IndexHealth

// IndexHealth introspects the built index: HNSW graph shape and
// reachability, PQ distortion, CTS cluster balance and medoid drift. The
// walk is O(nodes+edges) plus a bounded distortion sample — call it at
// diagnostic cadence, not per query. The headline figures are also
// exported as gauges on the metrics registry. Must not race with Add.
func (e *Engine) IndexHealth() IndexHealth {
	h := e.store.IndexHealth()
	if h.Graph != nil {
		e.obs.Gauge(core.MetricReachableFraction).Set(h.Graph.ReachableFraction)
	}
	if h.Graphs != nil {
		e.obs.Gauge(core.MetricReachableFraction).Set(h.Graphs.MeanReachable)
	}
	if h.PQ != nil && h.PQ.Trained {
		e.obs.Gauge(core.MetricPQDistortion).Set(h.PQ.Distortion.Mean)
	}
	if h.Clusters != nil {
		e.obs.Gauge(core.MetricClusterSizeCV).Set(h.Clusters.SizeCV)
		e.obs.Gauge(core.MetricMedoidDrift).Set(h.Clusters.MeanMedoidDrift)
	}
	return h
}

// RecallResult is an online recall probe report; see core.RecallResult.
type RecallResult = core.RecallResult

// recallProbeQueries bounds how many queries one probe replays.
const recallProbeQueries = 16

// RecallProbe replays a sample of recent real queries through both the
// engine's (approximate) index and an exhaustive scan of the same
// embeddings, and reports recall@k in [0,1] — the measured answer to
// "is ANNS/CTS still finding what ExS would". Engines that have not served
// traffic yet (or run with diagnostics disabled) probe with a stride
// sample of stored value texts instead. The result is exported as the
// semdisco_recall_at_k gauge. Cost is ~2·recallProbeQueries searches, one
// of them exhaustive; probe at diagnostic cadence. Must not race with Add.
//
// Probe queries bypass the diagnostics layer, so probing never pollutes
// the slow-query log or the recent-query ring it samples from.
func (e *Engine) RecallProbe(k int) (RecallResult, error) {
	if k <= 0 {
		k = 10
	}
	source := "recent_queries"
	var queries []string
	if e.diag != nil {
		queries = e.diag.recent.Items(recallProbeQueries)
	}
	baseSearcher, baseEmb := e.store.Base()
	if len(queries) == 0 {
		queries = baseEmb.SampleValueTexts(recallProbeQueries)
		source = "value_sample"
	}
	// The probe pits the base segment's (approximate) index against an
	// exhaustive scan of the same embeddings — the structure whose recall
	// can silently rot. Younger segments are exhaustively scanned anyway,
	// so they have nothing to probe.
	res, err := core.ProbeRecall(baseSearcher, baseEmb, queries, k, e.cfg.Threshold)
	if err != nil {
		return res, err
	}
	res.Source = source
	e.obs.Gauge(obs.L(core.MetricRecallAtK,
		"method", res.Method, "k", strconv.Itoa(k))).Set(res.Recall)
	return res, nil
}
