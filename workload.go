package semdisco

import (
	"context"
	"time"

	"semdisco/internal/obs"
)

// CostReport is the per-query work accounting attached to search results:
// distance computations, HNSW hops, PQ table lookups, values and bytes
// scanned, candidates generated and pruned, cache hits. See
// obs.CostReport.
type CostReport = obs.CostReport

// WorkloadSnapshot is the workload analyzer's point-in-time view: heavy-
// hitter queries, per-shard load and skew, costliest queries. See
// obs.WorkloadSnapshot.
type WorkloadSnapshot = obs.WorkloadSnapshot

// SLOSnapshot is the SLO engine's point-in-time view: per-objective
// multi-window burn rates and alert states. See obs.SLOSnapshot.
type SLOSnapshot = obs.SLOSnapshot

// SLOConfig tunes the service-level-objective engine: availability and
// latency objectives evaluated over rolling 5m/1h/6h windows with
// fast/slow burn-rate alert states (the Google SRE multiwindow policy).
// The zero value enables the engine with defaults: 99.9% availability,
// 99% of requests under 500ms.
type SLOConfig struct {
	// Disable turns the SLO engine off; /v1/debug/slo answers 404 and no
	// burn-rate gauges are exported.
	Disable bool
	// Availability is the target fraction of non-failing (and, in cluster
	// mode, non-degraded) requests, e.g. 0.999. Zero selects 0.999.
	Availability float64
	// LatencyObjective is the target fraction of requests completing under
	// LatencyThreshold, e.g. 0.99. Zero selects 0.99.
	LatencyObjective float64
	// LatencyThreshold is the latency objective's cutoff. Zero selects
	// 500ms.
	LatencyThreshold time.Duration
}

// newSLOEngine builds the engine for a config; nil when disabled.
func newSLOEngine(sc SLOConfig, reg *obs.Registry) *obs.SLOEngine {
	if sc.Disable {
		return nil
	}
	reg.SetHelp(obs.MetricSLOBurnRate,
		"Error-budget burn rate per objective and window; 1.0 burns the budget exactly at the sustainable rate.")
	return obs.NewSLOEngine(obs.SLOEngineConfig{
		AvailabilityObjective: sc.Availability,
		LatencyObjective:      sc.LatencyObjective,
		LatencyThreshold:      sc.LatencyThreshold,
	}, reg)
}

// newWorkload builds the workload analyzer over the given shard count.
func newWorkload(shards int, reg *obs.Registry) *obs.Workload {
	reg.SetHelps(map[string]string{
		obs.MetricWorkloadQueries: "Queries seen by the workload analyzer.",
		obs.MetricWorkloadGini:    "Gini coefficient of per-shard query load; 0 balanced, 1 maximally skewed.",
	})
	return obs.NewWorkload(obs.WorkloadConfig{Shards: shards}, reg)
}

// Workload exposes the engine's workload analyzer: heavy-hitter queries,
// load counters and the costliest-queries board. Nil when the engine was
// opened with Config.DisableMetrics — and a nil *obs.Workload is a valid
// no-op everywhere.
func (e *Engine) Workload() *obs.Workload { return e.workload }

// SLO exposes the engine's SLO burn-rate engine; nil when disabled.
func (e *Engine) SLO() *obs.SLOEngine { return e.slo }

// ConfigureSLO replaces the engine's SLO subsystem, e.g. to set objectives
// on an engine restored with LoadEngine. Call it before serving traffic;
// it must not race with Search.
func (e *Engine) ConfigureSLO(sc SLOConfig) {
	e.slo = newSLOEngine(sc, e.obs)
}

// SearchCost is SearchContext returning the query's cost accounting
// alongside its matches: the distance computations, graph hops, PQ
// lookups and candidate counts the query actually performed. This is the
// hardware-independent complement to latency — DESSERT-style cost-model
// numbers measured on the live index.
func (e *Engine) SearchCost(ctx context.Context, query string, k int) ([]Match, CostReport, error) {
	matches, _, rep, err := e.searchWithTrace(ctx, query, k)
	return matches, rep, err
}

// Workload exposes the cluster's workload analyzer: heavy hitters, the
// per-shard load-skew gauge and the costliest-queries board.
func (c *Cluster) Workload() *obs.Workload { return c.workload }

// SLO exposes the cluster's SLO burn-rate engine; nil when disabled.
func (c *Cluster) SLO() *obs.SLOEngine { return c.slo }

// ConfigureSLO replaces the cluster's SLO subsystem, e.g. to set
// objectives on a cluster restored with LoadCluster. Call it before
// serving traffic; it must not race with Search.
func (c *Cluster) ConfigureSLO(sc SLOConfig) {
	c.slo = newSLOEngine(sc, c.reg)
}
