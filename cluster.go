package semdisco

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"sync"
	"time"

	"semdisco/internal/cluster"
	"semdisco/internal/core"
	"semdisco/internal/embed"
	"semdisco/internal/obs"
	"semdisco/internal/text"
)

// ShardPolicy selects how relations are partitioned across shards.
type ShardPolicy = cluster.Policy

const (
	// ShardByHash assigns relations by a stable hash of their ID.
	ShardByHash = cluster.PolicyHash
	// ShardRoundRobin deals relations out evenly and routes later Adds to
	// the smallest shard.
	ShardRoundRobin = cluster.PolicyRoundRobin
)

// ClusterResult is a federated query answer: the merged top-k plus the
// degradation metadata (which shards failed, whether hedges launched,
// whether the answer came from cache).
type ClusterResult = cluster.Result

// ClusterStats is a Cluster's health snapshot: per-shard counters and
// latency quantiles, cache effectiveness, degradation counts.
type ClusterStats = cluster.Stats

// ShardStats is one shard's slice of ClusterStats.
type ShardStats = cluster.ShardStats

// ClusterConfig parameterizes NewCluster. The embedded Config applies to
// every shard's engine; all shards share one encoder whose IDF statistics
// come from the full federation, so a query vector is identical no matter
// which shard scores it.
type ClusterConfig struct {
	Config
	// Shards is the partition count; default 4.
	Shards int
	// Policy selects the partitioning scheme; default ShardByHash.
	Policy ShardPolicy
	// Slack widens each shard's fetch to k+Slack before the merge;
	// default 8.
	Slack int
	// ShardTimeout bounds each shard's search; an expired shard is cut off
	// mid-scan and the query degrades to the remaining shards. 0 disables.
	ShardTimeout time.Duration
	// Hedge races a second attempt against a shard running past its
	// observed p95 latency.
	Hedge bool
	// MinHedgeDelay floors the hedge trigger; default 1ms.
	MinHedgeDelay time.Duration
	// HedgeAfter is the per-shard sample count before hedging arms;
	// default 16.
	HedgeAfter int
	// CacheSize bounds the query-result LRU (entries); 0 disables caching.
	CacheSize int
}

// clusterShard is one partition's segment store.
type clusterShard struct {
	store *core.SegmentStore
}

// Cluster is a sharded federation index: N per-partition segment stores
// behind a scatter-gather router with per-shard deadlines, hedged retries
// and partial-result degradation. Search, Add, Delete and Update are all
// safe for concurrent use: mutations land in the owning shard's mutable
// segment (or tombstone in place) and fence the router's result cache and
// coalescer.
type Cluster struct {
	cfg      ClusterConfig
	model    *embed.Model
	stats    *text.CorpusStats
	shards   []clusterShard
	router   *cluster.Router
	reg      *obs.Registry
	traces   *obs.TraceStore // nil when Config.Tracing.Disable
	workload *obs.Workload   // heavy hitters, shard load skew, costliest queries
	slo      *obs.SLOEngine  // nil when Config.SLO.Disable
	// orderMu guards order/owner/nextOrder: mutations write them, the
	// router's merge tie-break reads order on every query.
	orderMu sync.RWMutex
	// order maps relation ID to its global insertion rank; the router's
	// merge tie-breaks on it so the federated ranking matches the
	// single-engine ranking exactly for exact methods.
	order map[string]int
	// owner maps a live relation ID to the shard holding it — required for
	// Delete/Update, whose ID may not route to its build-time shard under
	// round-robin.
	owner     map[string]int
	nextOrder int
}

// NewCluster partitions the federation into cfg.Shards slices, builds one
// engine per slice (sharing a single encoder fit to the full federation),
// and wires them behind a scatter-gather router. For ExS the cluster's
// ranking is bit-identical to a single engine's; approximate methods
// (ANNS, CTS) trade exactness per shard the same way they do monolithic.
func NewCluster(fed *Federation, cfg ClusterConfig) (*Cluster, error) {
	if fed == nil || fed.Len() == 0 {
		return nil, fmt.Errorf("semdisco: empty federation")
	}
	if cfg.Shards == 0 {
		cfg.Shards = 4
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("semdisco: invalid shard count %d", cfg.Shards)
	}
	if cfg.Shards > fed.Len() {
		return nil, fmt.Errorf("semdisco: %d shards for %d relations; shards must not exceed relations", cfg.Shards, fed.Len())
	}

	idf := cfg.IDF
	var stats *text.CorpusStats
	if idf == nil {
		stats = federationStats(fed)
		idf = statsIDF(stats)
	}
	model := embed.New(embed.Config{
		Dim:     cfg.Dim,
		Seed:    cfg.Seed,
		Lexicon: cfg.Lexicon,
		IDF:     idf,
	})
	var reg *obs.Registry
	if !cfg.DisableMetrics {
		reg = obs.NewRegistry()
	}
	reg.SetHelps(core.MetricHelp)
	model.SetObserver(reg)

	// Partition in federation insertion order so each shard preserves the
	// relative order of its relations — the invariant the merge's
	// tie-breaking relies on.
	parts := make([]*Federation, cfg.Shards)
	for i := range parts {
		parts[i] = NewFederation()
	}
	order := make(map[string]int, fed.Len())
	owner := make(map[string]int, fed.Len())
	for i, r := range fed.Relations() {
		var shard int
		switch cfg.Policy {
		case ShardRoundRobin:
			shard = i % cfg.Shards
		default:
			shard = cluster.HashShard(r.ID, cfg.Shards)
		}
		if err := parts[shard].Add(r); err != nil {
			return nil, fmt.Errorf("semdisco: partitioning: %w", err)
		}
		order[r.ID] = i
		owner[r.ID] = shard
	}
	for i, p := range parts {
		if p.Len() == 0 {
			return nil, fmt.Errorf("semdisco: shard %d would be empty under the %v policy; use fewer shards or ShardRoundRobin", i, cfg.Policy)
		}
	}

	c := &Cluster{
		cfg:       cfg,
		model:     model,
		stats:     stats,
		reg:       reg,
		traces:    newTraceStore(cfg.Tracing),
		workload:  newWorkload(cfg.Shards, reg),
		slo:       newSLOEngine(cfg.SLO, reg),
		order:     order,
		owner:     owner,
		nextOrder: fed.Len(),
	}
	relCounts := make([]int, cfg.Shards)
	routerShards := make([]cluster.Shard, cfg.Shards)
	for i, p := range parts {
		sh, err := buildClusterShard(cfg.Config, p, model, reg)
		if err != nil {
			return nil, fmt.Errorf("semdisco: building shard %d: %w", i, err)
		}
		c.shards = append(c.shards, sh)
		relCounts[i] = p.Len()
		routerShards[i] = sh.store
	}
	router, err := cluster.NewRouter(routerShards, relCounts, c.routerOptions())
	if err != nil {
		return nil, fmt.Errorf("semdisco: %w", err)
	}
	c.router = router
	return c, nil
}

// buildClusterShard embeds one partition with the shared model and wraps
// it in a segment store, so every shard supports mutation and background
// compaction independently.
func buildClusterShard(cfg Config, part *Federation, model *embed.Model, reg *obs.Registry) (clusterShard, error) {
	emb := core.EmbedFederation(part, model)
	emb.Obs = reg
	s, err := buildSearcher(cfg, emb)
	if err != nil {
		return clusterShard{}, err
	}
	return clusterShard{store: core.NewSegmentStore(emb, s, segmentStoreOptions(cfg))}, nil
}

// routerOptions translates the public config into the router's options.
func (c *Cluster) routerOptions() cluster.Options {
	return cluster.Options{
		Policy:        c.cfg.Policy,
		Slack:         c.cfg.Slack,
		ShardTimeout:  c.cfg.ShardTimeout,
		Hedge:         c.cfg.Hedge,
		MinHedgeDelay: c.cfg.MinHedgeDelay,
		HedgeAfter:    c.cfg.HedgeAfter,
		Method:        c.cfg.Method.String(),
		Encode:        c.model.Encode,
		Order: func(relID string) int {
			c.orderMu.RLock()
			o, ok := c.order[relID]
			c.orderMu.RUnlock()
			if ok {
				return o
			}
			return int(^uint(0) >> 1) // unknown IDs tie-break last
		},
		CacheSize: c.cfg.CacheSize,
		Registry:  c.reg,
		Workload:  c.workload,
		SegmentInfo: func(shard int) (int, int) {
			st := c.shards[shard].store.Stats()
			return st.Segments, st.DeadRelations
		},
	}
}

// Search answers a query by scatter-gather over all shards: the query is
// encoded once, every shard ranks its partition concurrently, and the
// per-shard top-(k+Slack) lists merge into the global top-k. A failed or
// timed-out shard degrades the result (Result.Degraded, Result.ShardErrors)
// instead of failing the query; only all shards failing — or the caller's
// own context expiring — returns an error.
func (c *Cluster) Search(query string, k int) (*ClusterResult, error) {
	return c.SearchContext(context.Background(), query, k)
}

// SearchContext is Search under a caller-controlled deadline; the context
// is threaded into every shard's inner scan loops. With tracing enabled
// (the default) the query runs under a root span — continuing a propagated
// trace when ctx carries one — and interesting outcomes (degraded, hedged,
// errored, slow) land in the trace store under Result.TraceID.
func (c *Cluster) SearchContext(ctx context.Context, query string, k int) (*ClusterResult, error) {
	if c.traces == nil {
		return c.router.Search(ctx, query, k)
	}
	res, _, err := c.searchTraced(ctx, query, k)
	return res, err
}

// SearchTraced is Search with the per-stage breakdown of the federated
// query: encode, scatter (annotated with shard count, failures and
// hedges, one child span per shard attempt), merge.
func (c *Cluster) SearchTraced(query string, k int) (*ClusterResult, []TraceStage, error) {
	return c.SearchTracedContext(context.Background(), query, k)
}

// SearchTracedContext is SearchTraced under a caller-controlled context; a
// propagated span context (see obs.ContextWithSpan) is continued instead
// of minting a fresh trace ID.
func (c *Cluster) SearchTracedContext(ctx context.Context, query string, k int) (*ClusterResult, []TraceStage, error) {
	res, tr, err := c.searchTraced(ctx, query, k)
	if err != nil {
		return nil, nil, err
	}
	return res, toTraceStages(tr.Stages()), nil
}

// searchTraced is the shared traced path behind SearchContext and
// SearchTraced: the federated query runs under a root span, the finished
// span tree is offered to the tail-based trace store with the scatter-
// gather outcome (degradation, hedges, per-shard errors), and a retained
// trace is linked from the cluster latency histogram via an exemplar.
func (c *Cluster) searchTraced(ctx context.Context, query string, k int) (*ClusterResult, *obs.Trace, error) {
	tr := obs.NewTraceFrom(ctx)
	root := tr.StartRoot("cluster_search")
	res, err := c.router.SearchTraced(ctx, query, k, tr)
	if res != nil {
		root.AnnotateInt("matches", len(res.Matches)).
			AnnotateInt("distance_comps", int(res.Cost.DistanceComps)).
			AnnotateInt("pq_lookups", int(res.Cost.PQLookups))
		res.TraceID = tr.ID().String()
	}
	dur := root.End()
	failed := err != nil || (res != nil && res.Degraded)
	c.slo.Record(dur, failed)
	if res != nil {
		c.workload.Record(query, c.cfg.Method.String(), res.TraceID, res.Cost, dur, time.Now())
	}
	o := obs.TraceOutcome{
		Duration:  dur,
		Query:     query,
		Method:    c.cfg.Method.String(),
		K:         k,
		RequestID: obs.RequestIDFrom(ctx),
	}
	if err != nil {
		o.Err = err.Error()
	}
	if res != nil {
		o.Matches = len(res.Matches)
		o.Degraded = res.Degraded
		o.Hedged = res.Hedged
		for _, se := range res.ShardErrors {
			o.ShardErrors = append(o.ShardErrors, se.Error())
		}
	}
	offerTrace(c.traces, c.reg, cluster.MetricSearchSeconds, tr, o)
	return res, tr, err
}

// Traces exposes the cluster's tail-sampling trace store: retained span
// trees (root → encode/scatter/merge, per-shard attempt children)
// listable, fetchable by trace ID and exportable as JSON lines. Nil when
// tracing is disabled.
func (c *Cluster) Traces() *obs.TraceStore { return c.traces }

// ConfigureTracing replaces the cluster's tracing subsystem, e.g. to apply
// a retention threshold to a cluster restored with LoadCluster. Call it
// before serving traffic; it must not race with Search.
func (c *Cluster) ConfigureTracing(tc TracingConfig) {
	c.traces = newTraceStore(tc)
}

// Add routes one new relation to a shard — its hash bucket under
// ShardByHash, the currently smallest shard under ShardRoundRobin — where
// it lands in the shard store's mutable segment. The router's result cache
// and coalescer are fenced. Safe for concurrent use with Search.
func (c *Cluster) Add(r *Relation) error {
	c.orderMu.Lock()
	if _, dup := c.owner[r.ID]; dup {
		c.orderMu.Unlock()
		return fmt.Errorf("semdisco: relation %q already indexed", r.ID)
	}
	shard := c.router.Route(r.ID)
	if err := c.shards[shard].store.Add(r); err != nil {
		c.orderMu.Unlock()
		return err
	}
	c.order[r.ID] = c.nextOrder
	c.owner[r.ID] = shard
	c.nextOrder++
	c.orderMu.Unlock()
	c.router.NoteAdd(shard)
	return nil
}

// Delete tombstones a relation on its owning shard: it stops appearing in
// federated results immediately, the router's result cache and coalescer
// are fenced, and the shard's next compaction reclaims the space. Safe
// for concurrent use with Search.
func (c *Cluster) Delete(relationName string) error {
	c.orderMu.Lock()
	shard, ok := c.owner[relationName]
	if !ok {
		c.orderMu.Unlock()
		return fmt.Errorf("semdisco: relation %q not found", relationName)
	}
	if err := c.shards[shard].store.Delete(relationName); err != nil {
		c.orderMu.Unlock()
		return err
	}
	delete(c.owner, relationName)
	delete(c.order, relationName)
	c.orderMu.Unlock()
	c.router.NoteDelete(shard)
	return nil
}

// Update replaces a relation's contents on its owning shard (the relation
// does not migrate shards) and moves it to the end of the global merge
// order, matching single-engine Update semantics. Safe for concurrent use
// with Search.
func (c *Cluster) Update(r *Relation) error {
	c.orderMu.Lock()
	shard, ok := c.owner[r.ID]
	if !ok {
		c.orderMu.Unlock()
		return fmt.Errorf("semdisco: relation %q not found", r.ID)
	}
	if err := c.shards[shard].store.Update(r); err != nil {
		c.orderMu.Unlock()
		return err
	}
	c.order[r.ID] = c.nextOrder
	c.nextOrder++
	c.orderMu.Unlock()
	c.router.NoteUpdate(shard)
	return nil
}

// Compact forces a full compaction on every shard, sequentially.
func (c *Cluster) Compact() error {
	for i := range c.shards {
		if err := c.shards[i].store.Compact(); err != nil {
			return fmt.Errorf("semdisco: compacting shard %d: %w", i, err)
		}
	}
	return nil
}

// CompactionCheck runs one maintenance pass on every shard: seal
// over-threshold mutable segments, build pending indexes, compact where a
// policy trigger fires.
func (c *Cluster) CompactionCheck() error {
	for i := range c.shards {
		if err := c.shards[i].store.Maintain(); err != nil {
			return fmt.Errorf("semdisco: maintaining shard %d: %w", i, err)
		}
	}
	return nil
}

// NumShards reports the cluster's shard count.
func (c *Cluster) NumShards() int { return len(c.shards) }

// NumRelations reports the total live relation count across shards.
func (c *Cluster) NumRelations() int {
	n := 0
	for _, sh := range c.shards {
		n += sh.store.NumLiveRelations()
	}
	return n
}

// Method reports the per-shard search strategy.
func (c *Cluster) Method() Method { return c.cfg.Method }

// Stats snapshots per-shard health: searches, errors, timeouts, hedges and
// latency quantiles per shard, plus cache and degradation counters.
func (c *Cluster) Stats() ClusterStats { return c.router.Stats() }

// MetricsRegistry exposes the cluster's metrics registry (nil under
// Config.DisableMetrics; a nil registry is valid everywhere).
func (c *Cluster) MetricsRegistry() *obs.Registry { return c.reg }

// clusterPersist is the gob envelope of a saved cluster: the shared
// engine configuration, the full-federation IDF statistics, the global
// order map the merge tie-breaks on, and one embedded-corpus blob per
// shard. Index structures are rebuilt deterministically on load.
type clusterPersist struct {
	Version       int
	Method        Method
	Dim           int
	Seed          int64
	Threshold     float32
	ExS           ExSOptions
	ANNS          ANNSOptions
	CTS           CTSOptions
	Lexicon       *Lexicon
	Stats         *text.CorpusStats
	Policy        int
	Slack         int
	ShardTimeout  time.Duration
	Hedge         bool
	MinHedgeDelay time.Duration
	HedgeAfter    int
	CacheSize     int
	Order         map[string]int
	NextOrder     int
	// EmbBlobs carries one monolithic embedding per shard; version 1 only.
	EmbBlobs [][]byte
	// StoreBlobs carries one segment-store image per shard (version 2),
	// and Owner the live relation → shard map.
	StoreBlobs [][]byte
	Owner      map[string]int
	Segments   SegmentsConfig
}

// Save writes the cluster so LoadCluster can restore it without
// re-encoding any value: shard assignment, global merge order and every
// shard's vectors persist; the per-shard index structures are rebuilt
// deterministically from the stored vectors and the original seed.
// Clusters configured with a custom IDF function cannot be saved.
func (c *Cluster) Save(w io.Writer) error {
	if c.cfg.IDF != nil {
		return fmt.Errorf("semdisco: clusters with a custom IDF function cannot be saved")
	}
	blobs := make([][]byte, len(c.shards))
	for i, sh := range c.shards {
		var buf bytes.Buffer
		if err := sh.store.Persist(&buf); err != nil {
			return fmt.Errorf("semdisco: save shard %d: %w", i, err)
		}
		blobs[i] = buf.Bytes()
	}
	c.orderMu.RLock()
	order := make(map[string]int, len(c.order))
	for k, v := range c.order {
		order[k] = v
	}
	owner := make(map[string]int, len(c.owner))
	for k, v := range c.owner {
		owner[k] = v
	}
	nextOrder := c.nextOrder
	c.orderMu.RUnlock()
	return gob.NewEncoder(w).Encode(clusterPersist{
		Version:       2,
		Method:        c.cfg.Method,
		Dim:           c.cfg.Dim,
		Seed:          c.cfg.Seed,
		Threshold:     c.cfg.Threshold,
		ExS:           c.cfg.ExS,
		ANNS:          c.cfg.ANNS,
		CTS:           c.cfg.CTS,
		Lexicon:       c.cfg.Lexicon,
		Stats:         c.stats,
		Policy:        int(c.cfg.Policy),
		Slack:         c.cfg.Slack,
		ShardTimeout:  c.cfg.ShardTimeout,
		Hedge:         c.cfg.Hedge,
		MinHedgeDelay: c.cfg.MinHedgeDelay,
		HedgeAfter:    c.cfg.HedgeAfter,
		CacheSize:     c.cfg.CacheSize,
		Order:         order,
		NextOrder:     nextOrder,
		StoreBlobs:    blobs,
		Owner:         owner,
		Segments:      c.cfg.Segments,
	})
}

// LoadCluster restores a cluster written by Save: same shard assignment,
// same merge order, identical search results.
func LoadCluster(r io.Reader) (*Cluster, error) {
	var p clusterPersist
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("semdisco: load cluster: %w", err)
	}
	if p.Version != 1 && p.Version != 2 {
		return nil, fmt.Errorf("semdisco: unsupported cluster version %d", p.Version)
	}
	blobs := p.StoreBlobs
	if p.Version == 1 {
		blobs = p.EmbBlobs
	}
	cfg := ClusterConfig{
		Config: Config{
			Method:    p.Method,
			Dim:       p.Dim,
			Seed:      p.Seed,
			Threshold: p.Threshold,
			ExS:       p.ExS,
			ANNS:      p.ANNS,
			CTS:       p.CTS,
			Lexicon:   p.Lexicon,
			Segments:  p.Segments,
		},
		Shards:        len(blobs),
		Policy:        ShardPolicy(p.Policy),
		Slack:         p.Slack,
		ShardTimeout:  p.ShardTimeout,
		Hedge:         p.Hedge,
		MinHedgeDelay: p.MinHedgeDelay,
		HedgeAfter:    p.HedgeAfter,
		CacheSize:     p.CacheSize,
	}
	var idf func(string) float64
	if p.Stats != nil {
		idf = statsIDF(p.Stats)
	}
	model := embed.New(embed.Config{
		Dim:     cfg.Dim,
		Seed:    cfg.Seed,
		Lexicon: cfg.Lexicon,
		IDF:     idf,
	})
	reg := obs.NewRegistry()
	reg.SetHelps(core.MetricHelp)
	model.SetObserver(reg)
	if p.Order == nil {
		p.Order = make(map[string]int)
	}
	if p.Owner == nil {
		p.Owner = make(map[string]int)
	}
	c := &Cluster{
		cfg:       cfg,
		model:     model,
		stats:     p.Stats,
		reg:       reg,
		traces:    newTraceStore(TracingConfig{}),
		workload:  newWorkload(len(blobs), reg),
		slo:       newSLOEngine(SLOConfig{}, reg),
		order:     p.Order,
		owner:     p.Owner,
		nextOrder: p.NextOrder,
	}
	relCounts := make([]int, len(blobs))
	routerShards := make([]cluster.Shard, len(blobs))
	for i, blob := range blobs {
		var store *core.SegmentStore
		if p.Version == 1 {
			emb, err := core.RestoreEmbedded(bytes.NewReader(blob), model)
			if err != nil {
				return nil, fmt.Errorf("semdisco: restore shard %d: %w", i, err)
			}
			emb.Obs = reg
			s, err := buildSearcher(cfg.Config, emb)
			if err != nil {
				return nil, fmt.Errorf("semdisco: rebuild shard %d: %w", i, err)
			}
			store = core.NewSegmentStore(emb, s, segmentStoreOptions(cfg.Config))
		} else {
			var err error
			store, err = core.RestoreSegmentStore(bytes.NewReader(blob), model, reg, segmentStoreOptions(cfg.Config))
			if err != nil {
				return nil, fmt.Errorf("semdisco: restore shard %d: %w", i, err)
			}
		}
		// v1 images predate the owner map; rebuild it from the shard's
		// live relations.
		if p.Version == 1 {
			for _, id := range store.LiveRelations() {
				c.owner[id] = i
			}
		}
		c.shards = append(c.shards, clusterShard{store: store})
		relCounts[i] = store.NumLiveRelations()
		routerShards[i] = store
	}
	router, err := cluster.NewRouter(routerShards, relCounts, c.routerOptions())
	if err != nil {
		return nil, fmt.Errorf("semdisco: %w", err)
	}
	c.router = router
	return c, nil
}
