// The paper's Figure 1 motivating example: Sarah searches "COVID" across
// the WHO, CDC and ECDC platforms. A syntactic search finds only ECDC (the
// only table containing the literal string); semantic matching finds all
// three, because the encoder knows "Comirnaty", "mRNA" and
// "Pfizer-BioNTech" are COVID-vaccine vocabulary. Run with:
//
//	go run ./examples/covid
package main

import (
	"fmt"
	"log"
	"strings"

	"semdisco"
)

func main() {
	fed := semdisco.NewFederation()
	add := func(r *semdisco.Relation) {
		if err := fed.Add(r); err != nil {
			log.Fatal(err)
		}
	}
	add(&semdisco.Relation{
		ID: "WHO", Source: "WHO",
		Columns: []string{"Region", "Date", "Vaccine", "Dosage"},
		Rows: [][]string{
			{"North America", "2021-01-01", "Comirnaty", "First"},
			{"Europe", "2021-02-01", "Vaxzevria", "Second"},
			{"Asia", "2021-03-01", "CoronaVac", "First"},
			{"Africa", "2021-04-01", "Covaxin", "Second"},
		},
	})
	add(&semdisco.Relation{
		ID: "CDC", Source: "CDC",
		Columns: []string{"State", "Date", "Immunogen", "Manufacturer"},
		Rows: [][]string{
			{"California", "2021-01-01", "mRNA", "Moderna"},
			{"Texas", "2021-02-01", "Vector Virus", "Janssen"},
			{"Florida", "2021-03-01", "mRNA", "Pfizer"},
			{"New York", "2021-04-01", "Protein Subunit", "Novavax"},
		},
	})
	add(&semdisco.Relation{
		ID: "ECDC", Source: "ECDC",
		Columns: []string{"Country", "Date", "Trade Name", "Disease"},
		Rows: [][]string{
			{"Germany", "2021-01-01", "Pfizer-BioNTech", "COVID-19"},
			{"France", "2021-02-01", "AstraZeneca", "COVID-19"},
			{"Spain", "2021-03-01", "Moderna", "COVID-19"},
			{"Italy", "2021-04-01", "Pfizer-BioNTech", "COVID-19"},
		},
	})
	// Distractors Sarah is not interested in.
	add(&semdisco.Relation{
		ID: "STADIUMS", Source: "UEFA",
		Columns: []string{"Club", "Stadium", "Capacity"},
		Rows: [][]string{
			{"Ajax", "Johan Cruyff Arena", "54990"},
			{"Bayern", "Allianz Arena", "75000"},
		},
	})

	const query = "COVID"

	// 1. What Sarah's keyword search does today: literal substring match.
	fmt.Printf("keyword search for %q finds:", query)
	for _, r := range fed.Relations() {
		if strings.Contains(strings.ToLower(r.Text()), strings.ToLower(query)) {
			fmt.Printf(" %s", r.ID)
		}
	}
	fmt.Println("  ← misses WHO and CDC")

	// 2. Semantic matching with vaccine-domain knowledge in the lexicon
	// (the role S-BERT's pretraining plays in the paper).
	lex := semdisco.NewLexicon()
	covid := lex.AddSynonyms("COVID", "COVID-19", "coronavirus", "SARS-CoV-2")
	for _, term := range []string{
		"Comirnaty", "Vaxzevria", "CoronaVac", "Covaxin",
		"mRNA", "Vector Virus", "Protein Subunit",
		"Pfizer-BioNTech", "AstraZeneca",
	} {
		lex.Add(covid, term)
	}
	lex.AddSynonyms("vaccine", "immunogen", "vaccination", "dosage")

	for _, method := range []semdisco.Method{semdisco.ExS, semdisco.ANNS, semdisco.CTS} {
		eng, err := semdisco.Open(fed, semdisco.Config{
			Method:  method,
			Dim:     256,
			Seed:    42,
			Lexicon: lex,
			CTS:     semdisco.CTSOptions{MinClusterSize: 4},
		})
		if err != nil {
			log.Fatal(err)
		}
		matches, err := eng.Search(query, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s finds:", method)
		for _, m := range matches {
			fmt.Printf(" %s(%.3f)", m.RelationID, m.Score)
		}
		fmt.Println()
	}
}
