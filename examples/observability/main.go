// Observability: run a few searches, inspect the per-stage trace of one
// query and the engine's aggregated statistics (latency quantiles, cache
// effectiveness, index-build phase costs). Run with:
//
//	go run ./examples/observability
package main

import (
	"fmt"
	"log"
	"sort"

	"semdisco"
)

func main() {
	fed := semdisco.NewFederation()
	must(fed.Add(&semdisco.Relation{
		ID:      "vaccines",
		Source:  "WHO",
		Caption: "COVID-19 vaccination coverage",
		Columns: []string{"Region", "Vaccine", "Doses"},
		Rows: [][]string{
			{"Europe", "Vaxzevria", "120000"},
			{"Asia", "CoronaVac", "340000"},
			{"Americas", "Comirnaty", "510000"},
		},
	}))
	must(fed.Add(&semdisco.Relation{
		ID:      "minerals",
		Source:  "USGS",
		Caption: "Mineral hardness",
		Columns: []string{"Mineral", "Hardness"},
		Rows:    [][]string{{"Quartz", "7"}, {"Talc", "1"}},
	}))

	lex := semdisco.NewLexicon()
	lex.AddSynonyms("COVID", "coronavirus", "Vaxzevria", "CoronaVac", "Comirnaty")

	// Metrics are on by default; Config.DisableMetrics turns them off.
	// Tracing is too — HeadSampleEvery: 1 retains every trace instead of
	// only interesting ones, so the example below can always show one.
	eng, err := semdisco.Open(fed, semdisco.Config{
		Method: semdisco.CTS, Dim: 192, Seed: 1, Lexicon: lex,
		Tracing: semdisco.TracingConfig{HeadSampleEvery: 1},
	})
	if err != nil {
		log.Fatal(err)
	}

	// A traced search returns the usual matches plus the per-stage
	// breakdown of where the time went.
	matches, stages, err := eng.SearchTraced("COVID vaccines in Europe", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("matches:")
	for _, m := range matches {
		fmt.Printf("  %-10s score=%.3f\n", m.RelationID, m.Score)
	}
	fmt.Println("trace:")
	for _, st := range stages {
		fmt.Printf("  %-14s %8.3fms  %v\n", st.Name, st.DurationMS, st.Annotations)
	}

	// Every search also ran under a span tree offered to the trace store;
	// render the most recent one by its parent links. A served engine
	// exposes the same tree at /v1/debug/traces/{trace_id}.
	if stored := eng.Traces().List(1); len(stored) > 0 {
		st := stored[0]
		fmt.Printf("\nstored trace %s (kind=%s, %.3fms):\n", st.TraceID, st.Kind, st.DurationMS)
		printSpanTree(st.Spans)
	}

	// A few more (untraced) queries to populate the latency histograms.
	for _, q := range []string{"mineral hardness", "coronavirus doses", "quartz"} {
		if _, err := eng.Search(q, 3); err != nil {
			log.Fatal(err)
		}
	}

	// Stats aggregates everything the engine observed since Open.
	st := eng.Stats()
	fmt.Printf("\nengine: %s  relations=%d values=%d clusters=%d\n",
		st.Method, st.NumRelations, st.NumValues, st.NumClusters)
	for method, n := range st.Searches {
		lat := st.SearchLatency[method]
		fmt.Printf("searches[%s]: %d  p50=%.3fms p95=%.3fms\n",
			method, n, lat.P50MS, lat.P95MS)
	}
	fmt.Printf("encoder cache: %d hits / %d misses (%.1f%% hit rate)\n",
		st.CacheHits, st.CacheMisses, 100*st.CacheHitRate)
	fmt.Println("index build phases:")
	for phase, sec := range st.BuildSeconds {
		fmt.Printf("  %-12s %.1fms\n", phase, sec*1000)
	}

	// Diagnostics are on by default: every query above fed the slow-query
	// log, slowest first, each with its full stage trace.
	fmt.Println("\nslowest queries:")
	for _, sq := range eng.SlowQueries(3) {
		fmt.Printf("  %-28q %8.3fms  %d stages, %d matches\n",
			sq.Query, sq.DurationMS, len(sq.Stages), sq.Matches)
	}

	// IndexHealth introspects the built index: for CTS, per-cluster HNSW
	// graph reachability plus cluster balance and medoid drift.
	h := eng.IndexHealth()
	fmt.Printf("\nindex health (%s, %d values):\n", h.Method, h.Values)
	if h.Graphs != nil {
		fmt.Printf("  graphs: %d (%d nodes, %d edges), reachable min=%.2f mean=%.2f\n",
			h.Graphs.Graphs, h.Graphs.Nodes, h.Graphs.Edges,
			h.Graphs.MinReachable, h.Graphs.MeanReachable)
	}
	if h.Clusters != nil {
		fmt.Printf("  clusters: %d, sizes %d..%d (cv=%.2f), medoid drift mean=%.4f max=%.4f\n",
			h.Clusters.Clusters, h.Clusters.MinSize, h.Clusters.MaxSize,
			h.Clusters.SizeCV, h.Clusters.MeanMedoidDrift, h.Clusters.MaxMedoidDrift)
	}

	// The recall probe replays recent real queries through both this index
	// and an exhaustive scan, measuring how much the approximation loses.
	res, err := eng.RecallProbe(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecall probe: recall@%d=%.3f over %d queries (source: %s)\n",
		res.K, res.Recall, res.Probed, res.Source)
}

// printSpanTree renders a stored trace's flat span list as an indented
// tree: children under their parents, the root (whose parent is absent
// from the trace) at the top level.
func printSpanTree(spans []semdisco.StoredSpan) {
	known := make(map[string]bool, len(spans))
	for _, sp := range spans {
		known[sp.SpanID] = true
	}
	children := make(map[string][]semdisco.StoredSpan)
	var roots []semdisco.StoredSpan
	for _, sp := range spans {
		if known[sp.ParentID] {
			children[sp.ParentID] = append(children[sp.ParentID], sp)
		} else {
			roots = append(roots, sp)
		}
	}
	var walk func(sp semdisco.StoredSpan, depth int)
	walk = func(sp semdisco.StoredSpan, depth int) {
		fmt.Printf("  %*s%-14s %8.3fms  %v\n", 2*depth, "", sp.Name, sp.DurationMS, sp.Annotations)
		kids := children[sp.SpanID]
		sort.Slice(kids, func(i, j int) bool { return kids[i].StartOffsetMS < kids[j].StartOffsetMS })
		for _, c := range kids {
			walk(c, depth+1)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].StartOffsetMS < roots[j].StartOffsetMS })
	for _, r := range roots {
		walk(r, 0)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
