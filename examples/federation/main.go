// Federation-scale example: generate a synthetic multi-source corpus (the
// EDP-like profile), build all three engines over it, and compare their
// answers and latency on the same queries — a miniature of the paper's
// performance evaluation. A sharded scatter-gather cluster then answers
// the same queries federated across 4 shards, demonstrating that the
// merged ExS ranking is identical to the monolithic one. Run with:
//
//	go run ./examples/federation
package main

import (
	"fmt"
	"log"
	"time"

	"semdisco"
	"semdisco/internal/corpus"
)

func main() {
	p := corpus.EDP()
	p.NumRelations = 150
	p.QueriesPerClass = 3
	c := corpus.Generate(p)
	fmt.Printf("federation: %d relations from sources %v\n",
		c.Federation.Len(), c.Federation.Sources())

	engines := map[semdisco.Method]*semdisco.Engine{}
	for _, m := range []semdisco.Method{semdisco.ExS, semdisco.ANNS, semdisco.CTS} {
		start := time.Now()
		eng, err := semdisco.Open(c.Federation, semdisco.Config{
			Method:  m,
			Dim:     256,
			Seed:    7,
			Lexicon: c.Lexicon,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("built %-4s index over %d values in %v\n",
			m, eng.NumValues(), time.Since(start).Round(time.Millisecond))
		engines[m] = eng
	}

	for _, q := range c.QueriesOf(corpus.Short) {
		fmt.Printf("\nquery %q (topic %d):\n", q.Text, q.Topic)
		for _, m := range []semdisco.Method{semdisco.ExS, semdisco.ANNS, semdisco.CTS} {
			start := time.Now()
			matches, err := engines[m].Search(q.Text, 5)
			if err != nil {
				log.Fatal(err)
			}
			elapsed := time.Since(start)
			hits := 0
			for _, match := range matches {
				if c.PrimaryTopic[match.RelationID] == q.Topic {
					hits++
				}
			}
			fmt.Printf("  %-4s %8v  on-topic %d/%d:", m, elapsed.Round(time.Microsecond), hits, len(matches))
			for _, match := range matches {
				fmt.Printf(" %s", match.RelationID)
			}
			fmt.Println()
		}
	}

	// The same federation, sharded 4 ways behind a scatter-gather router:
	// one shared encoder, concurrent fan-out, deterministic merge. For ExS
	// the federated ranking is identical to the monolithic one.
	fmt.Println("\n--- sharded federation (4-shard scatter-gather) ---")
	cl, err := semdisco.NewCluster(c.Federation, semdisco.ClusterConfig{
		Config:       semdisco.Config{Method: semdisco.ExS, Dim: 256, Seed: 7, Lexicon: c.Lexicon},
		Shards:       4,
		ShardTimeout: 2 * time.Second,
		CacheSize:    64,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, q := range c.QueriesOf(corpus.Short) {
		start := time.Now()
		res, err := cl.Search(q.Text, 5)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		mono, err := engines[semdisco.ExS].Search(q.Text, 5)
		if err != nil {
			log.Fatal(err)
		}
		identical := len(res.Matches) == len(mono)
		for i := range mono {
			if !identical || res.Matches[i] != mono[i] {
				identical = false
				break
			}
		}
		fmt.Printf("query %q: %v, degraded=%v, identical-to-monolithic-ExS=%v\n",
			q.Text, elapsed.Round(time.Microsecond), res.Degraded, identical)
	}
	fmt.Println("\nper-shard health:")
	for _, sh := range cl.Stats().Shards {
		fmt.Printf("  shard %d: %3d relations, %d searches, p95 %.3fms\n",
			sh.Shard, sh.Relations, sh.Searches, sh.P95MS)
	}
}
