// The §5.3 case study: for the query "Climate Change Effects Europe 2020",
// exhaustive search dilutes relevance by averaging over every attribute
// (tables about global climate or other years creep up), while CTS
// descends only into the clusters around the query's meaning. This example
// hand-builds that scenario and prints each method's ranking. Run with:
//
//	go run ./examples/casestudy
package main

import (
	"fmt"
	"log"

	"semdisco"
)

func main() {
	lex := semdisco.NewLexicon()
	climate := lex.AddSynonyms("climate", "warming", "temperature", "emissions")
	lex.Add(climate, "greenhouse")
	lex.AddSynonyms("europe", "european", "EU")
	effects := lex.AddSynonyms("effects", "impacts", "consequences")
	lex.Add(effects, "heatwave")
	lex.Add(effects, "drought")
	lex.Add(effects, "flooding")
	lex.AddSynonyms("football", "league", "striker")
	lex.AddSynonyms("finance", "revenue", "profit")

	fed := semdisco.NewFederation()
	add := func(id, caption string, cols []string, rows [][]string) {
		if err := fed.Add(&semdisco.Relation{
			ID: id, Source: "portal", Caption: caption, Columns: cols, Rows: rows,
		}); err != nil {
			log.Fatal(err)
		}
	}

	// The target: Europe, 2020, climate effects.
	add("climate-eu-2020", "climate impacts europe 2020",
		[]string{"Country", "Year", "Effect", "Severity"},
		[][]string{
			{"Germany", "2020", "heatwave", "high"},
			{"Spain", "2020", "drought", "high"},
			{"Netherlands", "2020", "flooding", "medium"},
			{"Italy", "2020", "heatwave", "high"},
		})
	// Near misses: right topic, wrong region or year.
	add("climate-global-2015", "global warming trends 2015",
		[]string{"Region", "Year", "Temperature Anomaly"},
		[][]string{
			{"Global", "2015", "0.9"},
			{"Arctic", "2015", "2.1"},
			{"Tropics", "2015", "0.5"},
		})
	add("climate-eu-1990", "european emissions 1990",
		[]string{"Country", "Year", "Emissions"},
		[][]string{
			{"France", "1990", "540"},
			{"Poland", "1990", "470"},
		})
	// A diluted table: one climate row drowned in sports rows.
	add("mixed-almanac", "2020 almanac",
		[]string{"Subject", "Entry", "Detail"},
		[][]string{
			{"football", "league winners", "striker of the year"},
			{"football", "transfer records", "midfield"},
			{"finance", "revenue tables", "profit margins"},
			{"climate", "europe heatwave", "2020"},
			{"football", "stadium openings", "capacity"},
		})
	// Irrelevant.
	add("football-2020", "football league 2020",
		[]string{"Club", "Points", "Striker"},
		[][]string{
			{"Ajax", "88", "Tadic"},
			{"Inter", "91", "Lukaku"},
		})

	const query = "Climate Change Effects Europe 2020"
	for _, m := range []semdisco.Method{semdisco.ExS, semdisco.ANNS, semdisco.CTS} {
		eng, err := semdisco.Open(fed, semdisco.Config{
			Method:  m,
			Dim:     256,
			Seed:    3,
			Lexicon: lex,
			CTS:     semdisco.CTSOptions{MinClusterSize: 4, TopClusters: 3},
		})
		if err != nil {
			log.Fatal(err)
		}
		matches, err := eng.Search(query, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s:", m)
		for _, match := range matches {
			fmt.Printf("  %s (%.3f)", match.RelationID, match.Score)
		}
		fmt.Println()
	}
	fmt.Println("\nExpected: every method ranks climate-eu-2020 first; ExS lets the")
	fmt.Println("diluted mixed-almanac and off-year tables score closer to the top,")
	fmt.Println("while CTS's cluster targeting keeps the gap wide (§5.3).")
}
