// Persistence and growth: build an engine, save it to disk, restore it in
// a "new process", add a freshly-arrived relation incrementally, and run a
// dataset-level search (the §3 multi-relation generalization). Run with:
//
//	go run ./examples/persistence
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"semdisco"
)

func main() {
	fed := semdisco.NewFederation()
	add := func(r *semdisco.Relation) {
		if err := fed.Add(r); err != nil {
			log.Fatal(err)
		}
	}
	add(&semdisco.Relation{
		ID: "energy-solar", Source: "energy-portal",
		Caption: "solar capacity by country",
		Columns: []string{"Country", "Year", "Capacity"},
		Rows: [][]string{
			{"Germany", "2022", "66000"},
			{"Spain", "2022", "20500"},
		},
	})
	add(&semdisco.Relation{
		ID: "energy-wind", Source: "energy-portal",
		Caption: "wind farms offshore",
		Columns: []string{"Site", "Country", "Turbines"},
		Rows: [][]string{
			{"Hornsea", "UK", "174"},
			{"Borssele", "NL", "94"},
		},
	})
	add(&semdisco.Relation{
		ID: "transport-rail", Source: "transport-portal",
		Caption: "railway passengers",
		Columns: []string{"Country", "Year", "Passengers"},
		Rows: [][]string{
			{"France", "2022", "1200000"},
			{"Italy", "2022", "900000"},
		},
	})

	lex := semdisco.NewLexicon()
	lex.AddSynonyms("solar", "photovoltaic", "renewable", "wind", "turbine")
	lex.AddSynonyms("railway", "train", "rail")

	eng, err := semdisco.Open(fed, semdisco.Config{
		Method: semdisco.ANNS, Dim: 256, Seed: 11, Lexicon: lex,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Save to disk.
	dir, err := os.MkdirTemp("", "semdisco-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "engine.bin")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Save(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	info, _ := os.Stat(path)
	fmt.Printf("saved engine (%d bytes) to %s\n", info.Size(), path)

	// Restore — as a new process would.
	f, err = os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	restored, err := semdisco.LoadEngine(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored %v engine with %d values\n", restored.Method(), restored.NumValues())

	// A new table arrives; index it without rebuilding.
	err = restored.Add(&semdisco.Relation{
		ID: "energy-hydro", Source: "energy-portal",
		Caption: "hydroelectric dams renewable output",
		Columns: []string{"Dam", "Country", "Output"},
		Rows: [][]string{
			{"Itaipu", "Brazil", "14000"},
			{"Grand Coulee", "USA", "6800"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	matches, err := restored.Search("renewable energy output", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrelation search: renewable energy output")
	for _, m := range matches {
		fmt.Printf("  %-16s %.3f\n", m.RelationID, m.Score)
	}

	datasets, err := restored.SearchDatasets("renewable energy output", 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndataset search (grouped by source):")
	for _, d := range datasets {
		fmt.Printf("  %-18s %.3f (%d matching relations)\n", d.Source, d.Score, len(d.Relations))
	}
}
