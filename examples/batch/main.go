// Batched execution: answer a block of queries in one fused pass with
// Engine.SearchBatch — each distinct query text encoded once, the whole
// block scored together, per-item cost accounting. Run with:
//
//	go run ./examples/batch
package main

import (
	"context"
	"fmt"
	"log"

	"semdisco"
)

func main() {
	fed := semdisco.NewFederation()
	must(fed.Add(&semdisco.Relation{
		ID:      "vaccines",
		Source:  "WHO",
		Caption: "COVID-19 vaccination coverage",
		Columns: []string{"Region", "Vaccine", "Doses"},
		Rows: [][]string{
			{"Europe", "Vaxzevria", "1.2M"},
			{"Asia", "CoronaVac", "3.4M"},
		},
	}))
	must(fed.Add(&semdisco.Relation{
		ID:      "minerals",
		Source:  "USGS",
		Caption: "Mineral hardness",
		Columns: []string{"Mineral", "Hardness"},
		Rows:    [][]string{{"Quartz", "7"}, {"Talc", "1"}},
	}))

	eng, err := semdisco.Open(fed, semdisco.Config{
		Method: semdisco.ExS, Dim: 192, Seed: 1,
	})
	must(err)

	// One call scores every query of the block in a single blocked pass
	// over the corpus: each value vector is loaded once and reused across
	// all queries. Duplicate texts (the two "vaccination" items) are
	// encoded only once. Results are positionally aligned and identical to
	// per-query Search calls.
	results, err := eng.SearchBatch(context.Background(), []semdisco.Query{
		{Text: "vaccination coverage", K: 2},
		{Text: "rock hardness scale", K: 1},
		{Text: "vaccination coverage", K: 2},
	})
	must(err)

	for i, res := range results {
		fmt.Printf("query %d (%d distance comps):\n", i, res.Cost.DistanceComps)
		for _, m := range res.Matches {
			fmt.Printf("  %-10s %.3f\n", m.RelationID, m.Score)
		}
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
