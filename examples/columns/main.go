// Column-level discovery: find joinable and unionable columns across a
// federation — the companion problem to table discovery (the paper's
// related work: Josie, DeepJoin, TUS/Santos). Run with:
//
//	go run ./examples/columns
package main

import (
	"fmt"
	"log"

	"semdisco"
)

func main() {
	fed := semdisco.NewFederation()
	add := func(r *semdisco.Relation) {
		if err := fed.Add(r); err != nil {
			log.Fatal(err)
		}
	}
	add(&semdisco.Relation{
		ID: "gdp", Source: "econ-portal",
		Columns: []string{"Country", "Year", "GDP"},
		Rows: [][]string{
			{"Germany", "2022", "4200"},
			{"France", "2022", "3100"},
			{"Spain", "2022", "1600"},
		},
	})
	add(&semdisco.Relation{
		ID: "population", Source: "census-portal",
		Columns: []string{"Nation", "Inhabitants"},
		Rows: [][]string{
			{"Germany", "83000000"},
			{"France", "68000000"},
			{"Portugal", "10000000"},
		},
	})
	add(&semdisco.Relation{
		ID: "who-vaccines", Source: "WHO",
		Columns: []string{"Region", "Vaccine"},
		Rows: [][]string{
			{"Europe", "Comirnaty"},
			{"Asia", "CoronaVac"},
		},
	})
	add(&semdisco.Relation{
		ID: "ecdc-vaccines", Source: "ECDC",
		Columns: []string{"Country", "Trade Name"},
		Rows: [][]string{
			{"Germany", "Pfizer-BioNTech"},
			{"France", "AstraZeneca"},
		},
	})

	lex := semdisco.NewLexicon()
	lex.AddSynonyms("vaccine", "Comirnaty", "CoronaVac", "Pfizer-BioNTech", "AstraZeneca", "trade name")
	lex.AddSynonyms("country", "nation", "Germany", "France", "Spain", "Portugal")

	ci, err := semdisco.OpenColumns(fed, semdisco.Config{Dim: 256, Seed: 3, Lexicon: lex})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %d columns\n\n", ci.NumColumns())

	// Joinability: which columns share keys with gdp.Country?
	joins, err := ci.Joinable("gdp", "Country", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("join candidates for gdp.Country:")
	for _, m := range joins {
		fmt.Printf("  %-28s score=%.3f containment=%.2f\n", m.Ref, m.Score, m.Containment)
	}

	// Unionability: which columns hold the same semantic type as the WHO
	// vaccine names — even with zero overlapping values?
	unions, err := ci.Unionable("who-vaccines", "Vaccine", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nunion candidates for who-vaccines.Vaccine:")
	for _, m := range unions {
		fmt.Printf("  %-28s score=%.3f\n", m.Ref, m.Score)
	}

	// Ad-hoc: the user brings their own seed column.
	adhoc, err := ci.JoinableValues("Land", []string{"Germany", "France", "Austria"}, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\njoin candidates for an ad-hoc column {Germany, France, Austria}:")
	for _, m := range adhoc {
		fmt.Printf("  %-28s score=%.3f containment=%.2f\n", m.Ref, m.Score, m.Containment)
	}
}
