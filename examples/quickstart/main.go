// Quickstart: build a tiny federation in code, open a CTS engine and run a
// semantic keyword search. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"semdisco"
)

func main() {
	fed := semdisco.NewFederation()
	must(fed.Add(&semdisco.Relation{
		ID:      "employees",
		Source:  "hr",
		Caption: "Staff directory",
		Columns: []string{"Name", "Role", "Office"},
		Rows: [][]string{
			{"Ada", "Engineer", "Utrecht"},
			{"Grace", "Researcher", "Trento"},
			{"Edsger", "Engineer", "Austin"},
		},
	}))
	must(fed.Add(&semdisco.Relation{
		ID:      "vehicles",
		Source:  "fleet",
		Caption: "Company fleet",
		Columns: []string{"Model", "Kind", "Year"},
		Rows: [][]string{
			{"Transit", "van", "2019"},
			{"Model 3", "automobile", "2021"},
		},
	}))

	// A lexicon is how domain knowledge enters the encoder: synonyms share
	// a concept and therefore embed near each other.
	lex := semdisco.NewLexicon()
	lex.AddSynonyms("car", "automobile", "vehicle", "van")
	lex.AddSynonyms("staff", "employee", "engineer", "researcher")

	eng, err := semdisco.Open(fed, semdisco.Config{
		Method:  semdisco.CTS,
		Dim:     256,
		Seed:    1,
		Lexicon: lex,
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, q := range []string{"cars", "staff members"} {
		matches, err := eng.Search(q, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %q:\n", q)
		for _, m := range matches {
			fmt.Printf("  %-10s score=%.3f\n", m.RelationID, m.Score)
		}
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
