package semdisco

import (
	"strings"
	"testing"
)

func vaccineFederation(t testing.TB) *Federation {
	t.Helper()
	fed := NewFederation()
	add := func(r *Relation) {
		if err := fed.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	add(&Relation{
		ID: "who", Source: "WHO",
		Columns: []string{"Region", "Date", "Vaccine", "Dosage"},
		Rows: [][]string{
			{"North America", "2021-01-01", "Comirnaty", "First"},
			{"Europe", "2021-02-01", "Vaxzevria", "Second"},
		},
	})
	add(&Relation{
		ID: "ecdc", Source: "ECDC",
		Columns: []string{"Country", "Date", "Trade Name", "Disease"},
		Rows: [][]string{
			{"Germany", "2021-01-01", "Pfizer-BioNTech", "COVID-19"},
			{"France", "2021-02-01", "AstraZeneca", "COVID-19"},
		},
	})
	add(&Relation{
		ID: "minerals", Source: "USGS",
		Columns: []string{"Mineral", "Hardness"},
		Rows:    [][]string{{"Quartz", "7"}, {"Talc", "1"}},
	})
	return fed
}

func vaccineLexicon() *Lexicon {
	lex := NewLexicon()
	covid := lex.AddSynonyms("COVID", "COVID-19", "coronavirus")
	for _, term := range []string{"Comirnaty", "Vaxzevria", "Pfizer-BioNTech", "AstraZeneca"} {
		lex.Add(covid, term)
	}
	return lex
}

func TestOpenAndSearchAllMethods(t *testing.T) {
	fed := vaccineFederation(t)
	for _, m := range []Method{ExS, ANNS, CTS} {
		eng, err := Open(fed, Config{
			Method:  m,
			Dim:     128,
			Seed:    1,
			Lexicon: vaccineLexicon(),
			CTS:     CTSOptions{MinClusterSize: 4, UMAPEpochs: 60},
		})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if eng.Method() != m {
			t.Fatalf("Method()=%v want %v", eng.Method(), m)
		}
		got, err := eng.Search("COVID", 2)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(got) != 2 {
			t.Fatalf("%v: got %d matches: %v", m, len(got), got)
		}
		for _, match := range got {
			if match.RelationID == "minerals" {
				t.Fatalf("%v: minerals ranked above a vaccine table: %v", m, got)
			}
		}
	}
}

func TestOpenEmptyFederation(t *testing.T) {
	if _, err := Open(NewFederation(), Config{}); err == nil {
		t.Fatal("empty federation must error")
	}
	if _, err := Open(nil, Config{}); err == nil {
		t.Fatal("nil federation must error")
	}
}

func TestOpenUnknownMethod(t *testing.T) {
	if _, err := Open(vaccineFederation(t), Config{Method: Method(99), Dim: 32}); err == nil {
		t.Fatal("unknown method must error")
	}
}

func TestMethodString(t *testing.T) {
	if CTS.String() != "CTS" || ANNS.String() != "ANNS" || ExS.String() != "ExS" {
		t.Fatal("Method.String broken")
	}
	if !strings.Contains(Method(9).String(), "9") {
		t.Fatal("unknown Method.String")
	}
}

func TestEngineEmbedAndNumValues(t *testing.T) {
	eng, err := Open(vaccineFederation(t), Config{Method: ExS, Dim: 64, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if eng.NumValues() == 0 {
		t.Fatal("no values indexed")
	}
	v := eng.Embed("covid vaccine")
	if len(v) != 64 {
		t.Fatalf("Embed dim=%d", len(v))
	}
}

func TestThresholdPropagates(t *testing.T) {
	eng, err := Open(vaccineFederation(t), Config{Method: ExS, Dim: 64, Seed: 3, Threshold: 0.999})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Search("COVID", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("threshold ignored: %v", got)
	}
}

func TestReadCSVReexport(t *testing.T) {
	r, err := ReadCSV(strings.NewReader("a,b\n1,2\n"), "x", "s")
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRows() != 1 {
		t.Fatalf("rows=%d", r.NumRows())
	}
}
