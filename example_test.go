package semdisco_test

import (
	"fmt"
	"log"

	"semdisco"
)

// ExampleOpen builds a two-table federation and runs a semantic search
// whose query shares no literal vocabulary with the matching table.
func ExampleOpen() {
	fed := semdisco.NewFederation()
	if err := fed.Add(&semdisco.Relation{
		ID:      "vaccines",
		Source:  "who",
		Columns: []string{"Region", "Vaccine"},
		Rows: [][]string{
			{"Europe", "Vaxzevria"},
			{"Asia", "CoronaVac"},
		},
	}); err != nil {
		log.Fatal(err)
	}
	if err := fed.Add(&semdisco.Relation{
		ID:      "minerals",
		Source:  "usgs",
		Columns: []string{"Mineral", "Hardness"},
		Rows:    [][]string{{"Quartz", "7"}},
	}); err != nil {
		log.Fatal(err)
	}

	lex := semdisco.NewLexicon()
	lex.AddSynonyms("COVID", "coronavirus", "Vaxzevria", "CoronaVac")

	eng, err := semdisco.Open(fed, semdisco.Config{
		Method:  semdisco.ExS,
		Dim:     256,
		Seed:    1,
		Lexicon: lex,
	})
	if err != nil {
		log.Fatal(err)
	}
	matches, err := eng.Search("COVID", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(matches[0].RelationID)
	// Output: vaccines
}

// ExampleEngine_SearchDatasets groups results by federation member.
func ExampleEngine_SearchDatasets() {
	fed := semdisco.NewFederation()
	for i, caption := range []string{"solar power plants", "wind turbine sites"} {
		if err := fed.Add(&semdisco.Relation{
			ID:      fmt.Sprintf("energy-%d", i),
			Source:  "energy-portal",
			Caption: caption,
			Columns: []string{"Name"},
			Rows:    [][]string{{"site-" + fmt.Sprint(i)}},
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := fed.Add(&semdisco.Relation{
		ID:      "trains",
		Source:  "transport-portal",
		Caption: "railway timetable",
		Columns: []string{"Line"},
		Rows:    [][]string{{"IC-540"}},
	}); err != nil {
		log.Fatal(err)
	}

	lex := semdisco.NewLexicon()
	lex.AddSynonyms("energy", "solar", "wind", "power", "turbine")

	eng, err := semdisco.Open(fed, semdisco.Config{
		Method: semdisco.ExS, Dim: 256, Seed: 2, Lexicon: lex,
	})
	if err != nil {
		log.Fatal(err)
	}
	datasets, err := eng.SearchDatasets("renewable energy", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(datasets[0].Source)
	// Output: energy-portal
}
