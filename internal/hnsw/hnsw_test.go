package hnsw

import (
	"bytes"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"semdisco/internal/vec"
)

// store is a test harness pairing an Index with a vector slice.
type store struct {
	vecs [][]float32
	ix   *Index
}

func newStore(cfg Config) *store {
	s := &store{}
	s.ix = New(cfg, func(a, b int32) float32 {
		return vec.L2Sq(s.vecs[a], s.vecs[b])
	})
	return s
}

func (s *store) add(v []float32) int32 {
	s.vecs = append(s.vecs, v)
	return s.ix.Add()
}

func (s *store) search(q []float32, k, ef int, filter func(int32) bool) []Neighbor {
	return s.ix.Search(func(id int32) float32 { return vec.L2Sq(q, s.vecs[id]) }, k, ef, filter)
}

func randVecs(n, dim int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, dim)
		for d := range v {
			v[d] = float32(rng.NormFloat64())
		}
		out[i] = v
	}
	return out
}

// bruteKNN returns the exact k nearest ids to q.
func bruteKNN(vecs [][]float32, q []float32, k int) []int32 {
	type pair struct {
		id int32
		d  float32
	}
	ps := make([]pair, len(vecs))
	for i, v := range vecs {
		ps[i] = pair{int32(i), vec.L2Sq(q, v)}
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].d != ps[j].d {
			return ps[i].d < ps[j].d
		}
		return ps[i].id < ps[j].id
	})
	if len(ps) > k {
		ps = ps[:k]
	}
	out := make([]int32, len(ps))
	for i, p := range ps {
		out[i] = p.id
	}
	return out
}

func TestEmptySearch(t *testing.T) {
	s := newStore(Config{Seed: 1})
	if got := s.search([]float32{1, 2}, 5, 50, nil); got != nil {
		t.Fatalf("empty index returned %v", got)
	}
}

func TestSingleElement(t *testing.T) {
	s := newStore(Config{Seed: 1})
	s.add([]float32{1, 2, 3})
	got := s.search([]float32{1, 2, 3}, 3, 10, nil)
	if len(got) != 1 || got[0].ID != 0 || got[0].Dist != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestExactMatchFound(t *testing.T) {
	s := newStore(Config{M: 8, EfConstruction: 100, Seed: 2})
	vs := randVecs(500, 16, 2)
	for _, v := range vs {
		s.add(v)
	}
	for probe := 0; probe < 20; probe++ {
		q := vs[probe*17]
		got := s.search(q, 1, 64, nil)
		if len(got) != 1 || got[0].ID != int32(probe*17) {
			t.Fatalf("probe %d: got %v", probe, got)
		}
	}
}

func TestRecallAgainstBruteForce(t *testing.T) {
	s := newStore(Config{M: 16, EfConstruction: 200, Seed: 3})
	vs := randVecs(2000, 24, 3)
	for _, v := range vs {
		s.add(v)
	}
	queries := randVecs(50, 24, 99)
	const k = 10
	hits, total := 0, 0
	for _, q := range queries {
		truth := bruteKNN(vs, q, k)
		truthSet := make(map[int32]struct{}, k)
		for _, id := range truth {
			truthSet[id] = struct{}{}
		}
		got := s.search(q, k, 128, nil)
		for _, n := range got {
			if _, ok := truthSet[n.ID]; ok {
				hits++
			}
		}
		total += k
	}
	recall := float64(hits) / float64(total)
	if recall < 0.9 {
		t.Fatalf("recall@10 = %.3f, want >= 0.9", recall)
	}
}

func TestHigherEfImprovesRecall(t *testing.T) {
	s := newStore(Config{M: 6, EfConstruction: 60, Seed: 4})
	vs := randVecs(3000, 32, 4)
	for _, v := range vs {
		s.add(v)
	}
	queries := randVecs(30, 32, 77)
	const k = 10
	recallAt := func(ef int) float64 {
		hits := 0
		for _, q := range queries {
			truth := bruteKNN(vs, q, k)
			set := make(map[int32]struct{})
			for _, id := range truth {
				set[id] = struct{}{}
			}
			for _, n := range s.search(q, k, ef, nil) {
				if _, ok := set[n.ID]; ok {
					hits++
				}
			}
		}
		return float64(hits) / float64(len(queries)*k)
	}
	low := recallAt(k)
	high := recallAt(256)
	if high < low {
		t.Fatalf("recall must not degrade with ef: ef=k %.3f, ef=256 %.3f", low, high)
	}
	if high < 0.85 {
		t.Fatalf("recall@ef=256 = %.3f too low", high)
	}
}

func TestResultsSortedAscending(t *testing.T) {
	s := newStore(Config{Seed: 5})
	for _, v := range randVecs(300, 8, 5) {
		s.add(v)
	}
	got := s.search(randVecs(1, 8, 6)[0], 20, 64, nil)
	for i := 1; i < len(got); i++ {
		if got[i].Dist < got[i-1].Dist {
			t.Fatalf("results not sorted: %v", got)
		}
	}
}

func TestFilter(t *testing.T) {
	s := newStore(Config{Seed: 6})
	vs := randVecs(500, 8, 6)
	for _, v := range vs {
		s.add(v)
	}
	even := func(id int32) bool { return id%2 == 0 }
	got := s.search(vs[11], 10, 128, even)
	if len(got) == 0 {
		t.Fatal("filtered search returned nothing")
	}
	for _, n := range got {
		if n.ID%2 != 0 {
			t.Fatalf("filter violated: id %d", n.ID)
		}
	}
}

func TestFilterEverythingRejected(t *testing.T) {
	s := newStore(Config{Seed: 7})
	for _, v := range randVecs(100, 8, 7) {
		s.add(v)
	}
	got := s.search([]float32{0, 0, 0, 0, 0, 0, 0, 0}, 5, 50, func(int32) bool { return false })
	if len(got) != 0 {
		t.Fatalf("expected no results, got %v", got)
	}
}

func TestGraphDegreeBounds(t *testing.T) {
	cfg := Config{M: 8, EfConstruction: 100, Seed: 8}
	s := newStore(cfg)
	for _, v := range randVecs(1000, 16, 8) {
		s.add(v)
	}
	layer0 := s.ix.Graph(0)
	if len(layer0) != 1000 {
		t.Fatalf("layer 0 has %d nodes", len(layer0))
	}
	for id, nbs := range layer0 {
		if len(nbs) > 2*cfg.M {
			t.Fatalf("node %d degree %d exceeds 2M=%d", id, len(nbs), 2*cfg.M)
		}
		seen := make(map[int32]struct{})
		for _, n := range nbs {
			if n == id {
				t.Fatalf("self-loop at %d", id)
			}
			if _, dup := seen[n]; dup {
				t.Fatalf("duplicate edge %d->%d", id, n)
			}
			seen[n] = struct{}{}
		}
	}
	for l := 1; l <= s.ix.MaxLevel(); l++ {
		for id, nbs := range s.ix.Graph(l) {
			if len(nbs) > 2*cfg.M {
				t.Fatalf("layer %d node %d degree %d", l, id, len(nbs))
			}
		}
	}
}

func TestLayer0Connected(t *testing.T) {
	s := newStore(Config{M: 8, EfConstruction: 100, Seed: 9})
	n := 500
	for _, v := range randVecs(n, 16, 9) {
		s.add(v)
	}
	adj := s.ix.Graph(0)
	// BFS over the undirected closure of the adjacency.
	undirected := make(map[int32][]int32)
	for id, nbs := range adj {
		for _, nb := range nbs {
			undirected[id] = append(undirected[id], nb)
			undirected[nb] = append(undirected[nb], id)
		}
	}
	seen := map[int32]struct{}{0: {}}
	queue := []int32{0}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range undirected[cur] {
			if _, ok := seen[nb]; !ok {
				seen[nb] = struct{}{}
				queue = append(queue, nb)
			}
		}
	}
	if len(seen) < n*95/100 {
		t.Fatalf("layer-0 reachable component %d/%d", len(seen), n)
	}
}

func TestConcurrentSearch(t *testing.T) {
	s := newStore(Config{Seed: 10})
	vs := randVecs(400, 8, 10)
	for _, v := range vs {
		s.add(v)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got := s.search(vs[(w*50+i)%len(vs)], 5, 32, nil)
				if len(got) == 0 {
					t.Error("concurrent search returned nothing")
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestDeterministicBuild(t *testing.T) {
	build := func() map[int32][]int32 {
		s := newStore(Config{M: 8, EfConstruction: 50, Seed: 42})
		for _, v := range randVecs(200, 8, 11) {
			s.add(v)
		}
		return s.ix.Graph(0)
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatal("node counts differ")
	}
	for id, nbs := range a {
		other := b[id]
		if len(nbs) != len(other) {
			t.Fatalf("node %d neighbor counts differ", id)
		}
		for i := range nbs {
			if nbs[i] != other[i] {
				t.Fatalf("node %d differs: %v vs %v", id, nbs, other)
			}
		}
	}
}

func TestKZero(t *testing.T) {
	s := newStore(Config{Seed: 12})
	s.add([]float32{1})
	if got := s.search([]float32{1}, 0, 10, nil); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
}

func BenchmarkSearch10k(b *testing.B) {
	s := newStore(Config{M: 16, EfConstruction: 100, Seed: 13})
	vs := randVecs(10000, 64, 13)
	for _, v := range vs {
		s.add(v)
	}
	queries := randVecs(100, 64, 14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.search(queries[i%len(queries)], 10, 64, nil)
	}
}

func BenchmarkAdd(b *testing.B) {
	s := newStore(Config{M: 16, EfConstruction: 100, Seed: 15})
	vs := randVecs(b.N+1, 64, 15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.add(vs[i])
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	s := newStore(Config{M: 8, EfConstruction: 80, Seed: 21})
	vs := randVecs(500, 16, 21)
	for _, v := range vs {
		s.add(v)
	}
	var buf bytes.Buffer
	if _, err := s.ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Read(bytes.NewReader(buf.Bytes()), func(a, b int32) float32 {
		return vec.L2Sq(s.vecs[a], s.vecs[b])
	})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != s.ix.Len() || restored.MaxLevel() != s.ix.MaxLevel() {
		t.Fatal("shape lost in round trip")
	}
	// Same queries must give identical results on both graphs.
	for probe := 0; probe < 20; probe++ {
		q := randVecs(1, 16, int64(100+probe))[0]
		qd := func(id int32) float32 { return vec.L2Sq(q, s.vecs[id]) }
		a := s.ix.Search(qd, 10, 64, nil)
		b := restored.Search(qd, 10, 64, nil)
		if len(a) != len(b) {
			t.Fatalf("result counts differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("results differ at %d: %v vs %v", i, a[i], b[i])
			}
		}
	}
	// The restored graph must accept further inserts.
	s2 := &store{vecs: append([][]float32{}, s.vecs...), ix: restored}
	_ = s2 // restored uses the closure over s.vecs; add via s.
	s.ix = restored
	s.add(randVecs(1, 16, 999)[0])
	if restored.Len() != 501 {
		t.Fatalf("Len after add = %d", restored.Len())
	}
}

func TestSerializationEmpty(t *testing.T) {
	s := newStore(Config{Seed: 22})
	var buf bytes.Buffer
	if _, err := s.ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Read(bytes.NewReader(buf.Bytes()), s.ix.dist)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 0 {
		t.Fatal("empty index round trip broken")
	}
	if got := restored.Search(func(int32) float32 { return 0 }, 5, 10, nil); got != nil {
		t.Fatalf("empty restored search: %v", got)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		{1, 2, 3},
		{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0},
	} {
		if _, err := Read(bytes.NewReader(data), nil); err == nil {
			t.Fatalf("garbage %v parsed", data)
		}
	}
}
