package hnsw

import (
	"testing"

	"semdisco/internal/vec"
)

// TestSearchScratchIdentical pins the scratch contract: a reused Scratch
// changes where the walk's working state lives, never which nodes it
// evaluates — results and stats must match the map-based path exactly,
// across many consecutive reuses of the same Scratch.
func TestSearchScratchIdentical(t *testing.T) {
	s := newStore(Config{M: 8, EfConstruction: 64, Seed: 1})
	for _, v := range randVecs(400, 16, 3) {
		s.add(v)
	}
	queries := randVecs(50, 16, 9)
	sc := NewScratch()
	for qi, q := range queries {
		qd := func(id int32) float32 { return vec.L2Sq(q, s.vecs[id]) }
		want, wantDone, wantStats := s.ix.SearchCancelStats(qd, 10, 64, nil, nil)
		got, gotDone, gotStats := s.ix.SearchScratch(sc, qd, 10, 64, nil, nil)
		if wantDone != gotDone || wantStats != gotStats {
			t.Fatalf("query %d: stats diverge: %v/%+v vs %v/%+v", qi, wantDone, wantStats, gotDone, gotStats)
		}
		if len(want) != len(got) {
			t.Fatalf("query %d: %d vs %d neighbors", qi, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("query %d neighbor %d: %+v vs %+v", qi, i, want[i], got[i])
			}
		}
	}
}

// TestSearchScratchFiltered checks the scratch path under a filter, where
// the visited bookkeeping and the result set diverge most.
func TestSearchScratchFiltered(t *testing.T) {
	s := newStore(Config{M: 8, EfConstruction: 64, Seed: 1})
	for _, v := range randVecs(300, 12, 5) {
		s.add(v)
	}
	filter := func(id int32) bool { return id%3 == 0 }
	sc := NewScratch()
	for _, q := range randVecs(20, 12, 11) {
		qd := func(id int32) float32 { return vec.L2Sq(q, s.vecs[id]) }
		want, _, _ := s.ix.SearchCancelStats(qd, 8, 48, filter, nil)
		got, _, _ := s.ix.SearchScratch(sc, qd, 8, 48, filter, nil)
		if len(want) != len(got) {
			t.Fatalf("%d vs %d neighbors", len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("neighbor %d: %+v vs %+v", i, want[i], got[i])
			}
			if got[i].ID%3 != 0 {
				t.Fatalf("filter violated: id %d", got[i].ID)
			}
		}
	}
}

// TestScratchGenerationWraparound forces the generation counter over its
// wrap point and checks the visited array is cleared rather than reporting
// stale visits.
func TestScratchGenerationWraparound(t *testing.T) {
	s := newStore(Config{M: 4, EfConstruction: 32, Seed: 1})
	for _, v := range randVecs(50, 8, 7) {
		s.add(v)
	}
	sc := NewScratch()
	q := randVecs(1, 8, 13)[0]
	qd := func(id int32) float32 { return vec.L2Sq(q, s.vecs[id]) }
	want, _, _ := s.ix.SearchCancelStats(qd, 5, 16, nil, nil)
	sc.gen = ^uint32(0) - 1 // next two begin() calls straddle the wrap
	for rep := 0; rep < 3; rep++ {
		got, _, _ := s.ix.SearchScratch(sc, qd, 5, 16, nil, nil)
		if len(got) != len(want) {
			t.Fatalf("rep %d: %d vs %d neighbors", rep, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("rep %d neighbor %d: %+v vs %+v", rep, i, want[i], got[i])
			}
		}
	}
}
