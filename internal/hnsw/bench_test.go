package hnsw

import (
	"fmt"
	"runtime"
	"testing"
)

// benchBuild measures graph construction over n random unit vectors.
func benchBuild(b *testing.B, n, workers int) {
	pts := randomPoints(n, 32, 17)
	dist := l2DistFn(pts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := New(Config{M: 16, EfConstruction: 100, Seed: 17}, dist)
		ix.AddBatch(n, workers)
	}
}

func BenchmarkBuild2k(b *testing.B) {
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchBuild(b, 2000, workers)
		})
	}
}

func BenchmarkBuild500(b *testing.B) {
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchBuild(b, 500, workers)
		})
	}
}
