package hnsw

// LayerStats summarizes one layer of the graph: how many nodes occupy it,
// how many (directed) edges they carry, and the degree spread — the raw
// material for spotting under-connected regions that degrade recall.
type LayerStats struct {
	Level     int     `json:"level"`
	Nodes     int     `json:"nodes"`
	Edges     int     `json:"edges"`
	MinDegree int     `json:"min_degree"`
	MaxDegree int     `json:"max_degree"`
	AvgDegree float64 `json:"avg_degree"`
}

// GraphStats is a point-in-time health snapshot of the whole index.
type GraphStats struct {
	Nodes    int `json:"nodes"`
	MaxLevel int `json:"max_level"`
	// EntryPoint is the id the descent starts from; -1 when empty.
	EntryPoint int32        `json:"entry_point"`
	Layers     []LayerStats `json:"layers,omitempty"`
	// ReachableFraction is the share of nodes reachable from the entry
	// point on layer 0 — the layer every node occupies and every search
	// terminates in. Anything below 1.0 means some items can never be
	// returned, a silent recall loss. An empty graph reports 1.
	ReachableFraction float64 `json:"reachable_fraction"`
}

// Stats walks the graph and reports its structural health. Cost is
// O(nodes + edges); safe to call concurrently with Search.
func (ix *Index) Stats() GraphStats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	gs := GraphStats{
		Nodes:             len(ix.nodes),
		MaxLevel:          ix.maxLevel,
		EntryPoint:        ix.entry,
		ReachableFraction: 1,
	}
	if len(ix.nodes) == 0 {
		return gs
	}

	gs.Layers = make([]LayerStats, ix.maxLevel+1)
	for l := 0; l <= ix.maxLevel; l++ {
		ls := LayerStats{Level: l, MinDegree: -1}
		for id := range ix.nodes {
			nbs := ix.nodes[id].neighbors
			if l >= len(nbs) {
				continue
			}
			deg := len(nbs[l])
			ls.Nodes++
			ls.Edges += deg
			if ls.MinDegree < 0 || deg < ls.MinDegree {
				ls.MinDegree = deg
			}
			if deg > ls.MaxDegree {
				ls.MaxDegree = deg
			}
		}
		if ls.MinDegree < 0 {
			ls.MinDegree = 0
		}
		if ls.Nodes > 0 {
			ls.AvgDegree = float64(ls.Edges) / float64(ls.Nodes)
		}
		gs.Layers[l] = ls
	}

	// BFS over layer 0 from the entry point: layer 0 holds every node, so
	// this measures true retrievability.
	visited := make([]bool, len(ix.nodes))
	queue := []int32{ix.entry}
	visited[ix.entry] = true
	reached := 1
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, n := range ix.neighborsAt(cur, 0) {
			if !visited[n] {
				visited[n] = true
				reached++
				queue = append(queue, n)
			}
		}
	}
	gs.ReachableFraction = float64(reached) / float64(len(ix.nodes))
	return gs
}
