package hnsw

import (
	"math/rand"
	"runtime"
	"testing"

	"semdisco/internal/vec"
)

// randomPoints returns n unit-ish vectors with mild cluster structure, the
// shape the index sees in production (embedded values are unit vectors).
func randomPoints(n, dim int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float32, n)
	for i := range pts {
		v := make([]float32, dim)
		for d := range v {
			v[d] = float32(rng.NormFloat64())
		}
		pts[i] = vec.Normalize(v)
	}
	return pts
}

func l2DistFn(pts [][]float32) func(a, b int32) float32 {
	return func(a, b int32) float32 { return vec.L2Sq(pts[a], pts[b]) }
}

// TestAddBatchSerialMatchesAdd pins the Workers: 1 determinism contract:
// one AddBatch must produce exactly the graph that count individual Add
// calls produce.
func TestAddBatchSerialMatchesAdd(t *testing.T) {
	pts := randomPoints(300, 16, 1)
	dist := l2DistFn(pts)

	one := New(Config{M: 8, EfConstruction: 60, Seed: 42}, dist)
	for range pts {
		one.Add()
	}
	batch := New(Config{M: 8, EfConstruction: 60, Seed: 42}, dist)
	if first := batch.AddBatch(len(pts), 1); first != 0 {
		t.Fatalf("first id = %d, want 0", first)
	}

	if one.MaxLevel() != batch.MaxLevel() {
		t.Fatalf("max level %d != %d", one.MaxLevel(), batch.MaxLevel())
	}
	for l := 0; l <= one.MaxLevel(); l++ {
		ga, gb := one.Graph(l), batch.Graph(l)
		if len(ga) != len(gb) {
			t.Fatalf("layer %d: %d vs %d nodes", l, len(ga), len(gb))
		}
		for id, nbs := range ga {
			got := gb[id]
			if len(got) != len(nbs) {
				t.Fatalf("layer %d node %d: degree %d vs %d", l, id, len(got), len(nbs))
			}
			for i := range nbs {
				if nbs[i] != got[i] {
					t.Fatalf("layer %d node %d: adjacency diverged", l, id)
				}
			}
		}
	}
}

// TestConcurrentBuildInvariants is the -race stress test of the issue:
// insert from >= GOMAXPROCS goroutines, then assert the structural
// invariants — every node reachable from the entry point on layer 0, and
// every degree within the configured bounds.
func TestConcurrentBuildInvariants(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		// Still exercises interleavings (and the race detector) on small
		// machines: goroutines preempt even on one core.
		workers = 4
	}
	const (
		n   = 1500
		dim = 16
		m   = 12
	)
	pts := randomPoints(n, dim, 7)
	ix := New(Config{M: m, EfConstruction: 120, Seed: 7}, l2DistFn(pts))
	if first := ix.AddBatch(n, workers); first != 0 {
		t.Fatalf("first id = %d, want 0", first)
	}
	if ix.Len() != n {
		t.Fatalf("Len = %d, want %d", ix.Len(), n)
	}

	st := ix.Stats()
	if st.ReachableFraction != 1.0 {
		t.Fatalf("reachable fraction = %v, want 1.0", st.ReachableFraction)
	}
	for l := 0; l <= ix.MaxLevel(); l++ {
		maxConn := m
		if l == 0 {
			maxConn = 2 * m
		}
		for id, nbs := range ix.Graph(l) {
			if len(nbs) > maxConn {
				t.Fatalf("layer %d node %d: degree %d exceeds bound %d", l, id, len(nbs), maxConn)
			}
			seen := make(map[int32]struct{}, len(nbs))
			for _, nb := range nbs {
				if nb == id {
					t.Fatalf("layer %d node %d: self-edge", l, id)
				}
				if nb < 0 || int(nb) >= n {
					t.Fatalf("layer %d node %d: neighbor %d out of range", l, id, nb)
				}
				if _, dup := seen[nb]; dup {
					t.Fatalf("layer %d node %d: duplicate edge to %d", l, id, nb)
				}
				seen[nb] = struct{}{}
			}
		}
	}
}

// TestConcurrentBuildRecall checks the parallel graph is not just intact
// but useful: brute-force top-10 against index top-10 must overlap well.
func TestConcurrentBuildRecall(t *testing.T) {
	const (
		n   = 1200
		dim = 24
		k   = 10
	)
	pts := randomPoints(n, dim, 3)
	ix := New(Config{M: 16, EfConstruction: 150, Seed: 3}, l2DistFn(pts))
	ix.AddBatch(n, 8)

	queries := randomPoints(40, dim, 99)
	var hit, total int
	for _, q := range queries {
		q := q
		truth := make(map[int32]struct{}, k)
		top := vec.NewTopK(k)
		for i := range pts {
			top.Push(i, -vec.L2Sq(q, pts[i]))
		}
		for _, s := range top.Sorted() {
			truth[int32(s.ID)] = struct{}{}
		}
		res := ix.Search(func(id int32) float32 { return vec.L2Sq(q, pts[id]) }, k, 100, nil)
		for _, r := range res {
			if _, ok := truth[r.ID]; ok {
				hit++
			}
		}
		total += k
	}
	recall := float64(hit) / float64(total)
	if recall < 0.9 {
		t.Fatalf("recall@%d = %.3f after concurrent build, want >= 0.9", k, recall)
	}
}

// TestAddBatchThenAdd checks the batch path composes with later serial
// inserts (the incremental AddRelation path).
func TestAddBatchThenAdd(t *testing.T) {
	pts := randomPoints(600, 8, 5)
	ix := New(Config{M: 8, EfConstruction: 80, Seed: 5}, l2DistFn(pts))
	ix.AddBatch(500, 6)
	for i := 500; i < 600; i++ {
		if got := ix.Add(); got != int32(i) {
			t.Fatalf("Add returned %d, want %d", got, i)
		}
	}
	st := ix.Stats()
	if st.Nodes != 600 {
		t.Fatalf("nodes = %d", st.Nodes)
	}
	if st.ReachableFraction != 1.0 {
		t.Fatalf("reachable fraction = %v after mixed build", st.ReachableFraction)
	}
}

// TestAddBatchEmptyAndOnEmptyIndex covers the entry-seeding edge cases.
func TestAddBatchEmptyAndOnEmptyIndex(t *testing.T) {
	pts := randomPoints(10, 4, 9)
	ix := New(Config{M: 4, EfConstruction: 20, Seed: 9}, l2DistFn(pts))
	if first := ix.AddBatch(0, 4); first != 0 {
		t.Fatalf("empty batch first = %d", first)
	}
	if first := ix.AddBatch(10, 4); first != 0 {
		t.Fatalf("first = %d", first)
	}
	if ix.Len() != 10 {
		t.Fatalf("Len = %d", ix.Len())
	}
	if ix.Stats().ReachableFraction != 1.0 {
		t.Fatal("small concurrent batch left unreachable nodes")
	}
}
