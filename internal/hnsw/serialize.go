package hnsw

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The on-wire format is little-endian:
//
//	magic u32 | version u32 | M u32 | efConstruction u32 | seed u64
//	entry i32 | maxLevel i32 | numNodes u32
//	per node: numLayers u32, then per layer: degree u32, neighbor i32...
//
// The random level generator's future state is not captured; a restored
// index continues assigning levels from a stream reseeded by the node
// count, which preserves the level distribution (exact bit-compatibility
// of future inserts is not a goal — search correctness is).

const (
	hnswMagic   = 0x484e5357 // "HNSW"
	hnswVersion = 1
)

// WriteTo serializes the graph.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	var n int64
	put32 := func(v uint32) error {
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], v)
		k, err := w.Write(buf[:])
		n += int64(k)
		return err
	}
	put64 := func(v uint64) error {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		k, err := w.Write(buf[:])
		n += int64(k)
		return err
	}
	for _, v := range []uint32{hnswMagic, hnswVersion, uint32(ix.m), uint32(ix.efConstruction)} {
		if err := put32(v); err != nil {
			return n, err
		}
	}
	if err := put64(uint64(ix.seed)); err != nil {
		return n, err
	}
	for _, v := range []uint32{uint32(ix.entry), uint32(ix.maxLevel), uint32(len(ix.nodes))} {
		if err := put32(v); err != nil {
			return n, err
		}
	}
	for _, node := range ix.nodes {
		if err := put32(uint32(len(node.neighbors))); err != nil {
			return n, err
		}
		for _, layer := range node.neighbors {
			if err := put32(uint32(len(layer))); err != nil {
				return n, err
			}
			for _, nb := range layer {
				if err := put32(uint32(nb)); err != nil {
					return n, err
				}
			}
		}
	}
	return n, nil
}

// Read deserializes a graph written by WriteTo. The caller supplies the
// same construction-time distance function the original index used; it is
// needed only for future Add calls.
func Read(r io.Reader, dist func(a, b int32) float32) (*Index, error) {
	get32 := func() (uint32, error) {
		var buf [4]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(buf[:]), nil
	}
	get64 := func() (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	magic, err := get32()
	if err != nil {
		return nil, err
	}
	if magic != hnswMagic {
		return nil, errors.New("hnsw: bad magic")
	}
	version, err := get32()
	if err != nil {
		return nil, err
	}
	if version != hnswVersion {
		return nil, fmt.Errorf("hnsw: unsupported version %d", version)
	}
	m, err := get32()
	if err != nil {
		return nil, err
	}
	efc, err := get32()
	if err != nil {
		return nil, err
	}
	seed, err := get64()
	if err != nil {
		return nil, err
	}
	if m == 0 || m > 1<<16 {
		return nil, fmt.Errorf("hnsw: corrupt M=%d", m)
	}
	entry, err := get32()
	if err != nil {
		return nil, err
	}
	maxLevel, err := get32()
	if err != nil {
		return nil, err
	}
	numNodes, err := get32()
	if err != nil {
		return nil, err
	}
	if numNodes > 1<<30 {
		return nil, fmt.Errorf("hnsw: corrupt node count %d", numNodes)
	}

	ix := New(Config{M: int(m), EfConstruction: int(efc), Seed: int64(seed)}, dist)
	ix.entry = int32(entry)
	ix.maxLevel = int32AsLevel(maxLevel)
	ix.nodes = make([]node, numNodes)
	for i := range ix.nodes {
		layers, err := get32()
		if err != nil {
			return nil, err
		}
		if layers > 64 {
			return nil, fmt.Errorf("hnsw: corrupt layer count %d", layers)
		}
		nbs := make([][]int32, layers)
		for l := range nbs {
			deg, err := get32()
			if err != nil {
				return nil, err
			}
			if deg > 4*m {
				return nil, fmt.Errorf("hnsw: corrupt degree %d", deg)
			}
			layer := make([]int32, deg)
			for d := range layer {
				v, err := get32()
				if err != nil {
					return nil, err
				}
				if v >= numNodes {
					return nil, fmt.Errorf("hnsw: neighbor %d out of range", v)
				}
				layer[d] = int32(v)
			}
			nbs[l] = layer
		}
		ix.nodes[i].neighbors = nbs
	}
	if numNodes > 0 && (ix.entry < 0 || int(ix.entry) >= int(numNodes)) {
		return nil, fmt.Errorf("hnsw: corrupt entry point %d", ix.entry)
	}
	// Re-burn the level RNG so future Adds continue a plausible stream.
	for i := uint32(0); i < numNodes; i++ {
		ix.randomLevel()
	}
	return ix, nil
}

// int32AsLevel reinterprets the stored unsigned maxLevel, allowing the -1
// sentinel of an empty index to round-trip.
func int32AsLevel(v uint32) int { return int(int32(v)) }
