package hnsw

import (
	"container/heap"
	"sync"
	"sync/atomic"
)

// AddBatch inserts count new items using up to `workers` goroutines and
// returns the id of the first one (ids are dense, so the batch occupies
// [first, first+count)). The caller must be able to serve distances for
// every id in the batch before calling.
//
// Concurrency model (hnswlib-style fine-grained locking): the whole batch
// runs under the index write lock, so AddBatch excludes Search exactly like
// Add does; *inside* the batch, node allocation and level assignment happen
// up front in one short critical section, then workers insert concurrently,
// serializing only on per-node neighbor-list locks and a small entry-point
// mutex. Levels are drawn from the index RNG before any worker starts, so
// the level sequence is identical to the serial build regardless of worker
// count; the adjacency lists may differ from a serial build when workers >
// 1 because insertion order interleaves (the standard concurrent-HNSW
// relaxation — graph invariants, not graph shape, are preserved).
//
// workers <= 1 runs the exact serial insertion path and is bit-identical to
// calling Add count times.
func (ix *Index) AddBatch(count, workers int) int32 {
	ix.mu.Lock()
	defer ix.mu.Unlock()

	first := int32(len(ix.nodes))
	if count <= 0 {
		return first
	}
	if workers > count {
		workers = count
	}
	if workers <= 1 {
		for i := 0; i < count; i++ {
			ix.addLocked()
		}
		return first
	}

	// Critical section: draw levels in serial RNG order and allocate every
	// node, so the nodes slice never grows (and never reallocates) while
	// workers hold references into it.
	levels := make([]int, count)
	for i := range levels {
		levels[i] = ix.randomLevel()
	}
	for i := 0; i < count; i++ {
		ix.nodes = append(ix.nodes, node{neighbors: make([][]int32, levels[i]+1)})
	}
	start := 0
	if ix.entry < 0 {
		// Seed an empty index with the batch's first node; it has no peers
		// to link to, exactly like the first serial Add.
		ix.entry = first
		ix.maxLevel = levels[0]
		start = 1
	}

	shared := &batchState{
		ix:    ix,
		locks: make([]sync.Mutex, len(ix.nodes)),
	}
	var next atomic.Int64
	next.Store(int64(start))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ins := &inserter{batchState: shared}
			for {
				i := int(next.Add(1)) - 1
				if i >= count {
					return
				}
				ins.insert(first+int32(i), levels[i])
			}
		}()
	}
	wg.Wait()
	return first
}

// batchState is the lock set shared by one AddBatch call: one mutex per
// node guarding that node's adjacency lists, plus entryMu guarding the
// (entry, maxLevel) pair.
type batchState struct {
	ix      *Index
	locks   []sync.Mutex
	entryMu sync.Mutex
}

// inserter is one worker's view of the batch, carrying per-worker scratch
// buffers so the hot path does not allocate per node visited.
type inserter struct {
	*batchState
	nbBuf []int32
}

// neighbors copies id's adjacency list at layer l under the node's lock.
// The copy means distance evaluations never run while holding a lock.
func (b *inserter) neighbors(id int32, l int) []int32 {
	b.locks[id].Lock()
	nbs := b.ix.nodes[id].neighbors
	if l >= len(nbs) {
		b.locks[id].Unlock()
		return b.nbBuf[:0]
	}
	b.nbBuf = append(b.nbBuf[:0], nbs[l]...)
	b.locks[id].Unlock()
	return b.nbBuf
}

// insert links one pre-allocated node into the graph. It mirrors
// Index.addLocked, with every adjacency read/write funneled through the
// per-node locks.
func (b *inserter) insert(id int32, level int) {
	ix := b.ix

	b.entryMu.Lock()
	ep, maxLevel := ix.entry, ix.maxLevel
	b.entryMu.Unlock()

	// Greedy descent through layers above the new node's level.
	for l := maxLevel; l > level; l-- {
		ep = b.greedyClosest(ep, id, l)
	}
	topLayer := level
	if topLayer > maxLevel {
		topLayer = maxLevel
	}
	for l := topLayer; l >= 0; l-- {
		candidates := b.searchLayer(ep, id, ix.efConstruction, l)
		maxConn := ix.m
		if l == 0 {
			maxConn = ix.mMax0
		}
		selected := ix.selectHeuristic(candidates, ix.m)
		b.locks[id].Lock()
		ix.nodes[id].neighbors[l] = append(ix.nodes[id].neighbors[l], selected...)
		b.locks[id].Unlock()
		for _, n := range selected {
			b.locks[n].Lock()
			ix.nodes[n].neighbors[l] = append(ix.nodes[n].neighbors[l], id)
			if len(ix.nodes[n].neighbors[l]) > maxConn {
				// shrink takes no locks itself; holding n's lock for the
				// duration keeps the re-selection atomic. Only one node
				// lock is ever held at a time, so lock order cannot cycle.
				ix.shrink(n, l, maxConn)
			}
			b.locks[n].Unlock()
		}
		if len(candidates) > 0 {
			ep = candidates[0].ID
		}
	}
	if level > maxLevel {
		b.entryMu.Lock()
		if level > ix.maxLevel {
			ix.maxLevel = level
			ix.entry = id
		}
		b.entryMu.Unlock()
	}
}

// greedyClosest is the lock-aware twin of Index.greedyClosest.
func (b *inserter) greedyClosest(ep, target int32, l int) int32 {
	ix := b.ix
	cur := ep
	curD := ix.dist(cur, target)
	for {
		improved := false
		for _, n := range b.neighbors(cur, l) {
			if d := ix.dist(n, target); d < curD {
				cur, curD = n, d
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

// searchLayer is the lock-aware twin of Index.searchLayer specialized for
// construction (distances to stored item target, no filter).
func (b *inserter) searchLayer(ep, target int32, ef, l int) []Neighbor {
	ix := b.ix
	visited := make(map[int32]struct{}, ef*4)
	visited[ep] = struct{}{}

	epDist := ix.dist(ep, target)
	candidates := &minHeap{{ep, epDist}}
	results := maxHeap{{ep, epDist}}

	for candidates.Len() > 0 {
		c := heap.Pop(candidates).(Neighbor)
		if len(results) >= ef && c.Dist > results[0].Dist {
			break
		}
		// Copy the frontier's neighbors out under the node lock; the scan
		// below runs lock-free. nbBuf is reused by the next neighbors call,
		// so expansion must finish before the next frontier pop — it does.
		for _, n := range b.neighbors(c.ID, l) {
			if _, seen := visited[n]; seen {
				continue
			}
			visited[n] = struct{}{}
			d := ix.dist(n, target)
			if len(results) < ef || d < results[0].Dist {
				heap.Push(candidates, Neighbor{n, d})
				heap.Push(&results, Neighbor{n, d})
				if len(results) > ef {
					heap.Pop(&results)
				}
			}
		}
	}
	out := make([]Neighbor, len(results))
	copy(out, results)
	sortNeighbors(out)
	return out
}
