package hnsw

// Scratch holds the per-search working state of a beam search — the visited
// set and both heap backings — so a caller issuing many searches in a row
// (the batched query path) allocates them once instead of per query.
//
// The visited set is a generation-stamped array: slot i is "visited" when
// visited[i] equals the current generation, so resetting between searches is
// a single counter increment rather than an O(n) clear or a fresh map. The
// array is sized to the graph on first use and regrown as the graph grows.
//
// A Scratch is owned by one goroutine at a time; concurrent searches need
// one Scratch each. The zero value is ready to use.
type Scratch struct {
	visited []uint32
	gen     uint32
	cand    minHeap
	res     maxHeap
}

// NewScratch returns an empty scratch. Equivalent to new(Scratch); provided
// so callers outside the package don't depend on the zero value being valid.
func NewScratch() *Scratch { return &Scratch{} }

// begin readies the scratch for one search over a graph of n nodes and
// returns the generation stamp marking this search's visits.
func (sc *Scratch) begin(n int) uint32 {
	if len(sc.visited) < n {
		// Fresh zeroed array: zero never equals a post-increment generation.
		sc.visited = make([]uint32, n+n/2+8)
	}
	sc.gen++
	if sc.gen == 0 { // wrapped after ~4B searches: clear and restart
		for i := range sc.visited {
			sc.visited[i] = 0
		}
		sc.gen = 1
	}
	sc.cand = sc.cand[:0]
	sc.res = sc.res[:0]
	return sc.gen
}
