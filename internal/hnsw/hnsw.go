// Package hnsw implements the Hierarchical Navigable Small World graph index
// of Malkov & Yashunin (TPAMI 2018) for approximate nearest-neighbour search.
//
// The index is decoupled from vector storage: it identifies items by dense
// int32 ids and asks the caller for distances through two callbacks — an
// item-to-item distance used during construction, and a per-query closure
// used during search. This lets the vector database run the same graph over
// raw float32 vectors or over Product-Quantization codes with an ADC table
// built once per query.
//
// Distances are "smaller is closer". For cosine similarity over unit
// vectors, pass 1 - dot(a, b).
package hnsw

import (
	"container/heap"
	"math"
	"math/rand"
	"sync"
)

// Config controls graph shape and construction effort.
type Config struct {
	// M is the maximum number of neighbours per node on layers ≥ 1.
	// Layer 0 allows 2M. Defaults to 16.
	M int
	// EfConstruction is the beam width during insertion. Defaults to 200.
	EfConstruction int
	// Seed drives the random level assignment.
	Seed int64
}

// Neighbor is one search result: an item id and its distance to the query.
type Neighbor struct {
	ID   int32
	Dist float32
}

// SearchStats counts the work one search performed, in graph units: hops
// (greedy-descent moves plus layer-0 beam expansions), candidates admitted
// to the beam, and candidates pruned (evaluated neighbours that failed the
// beam bound, plus beam evictions). Distance computations are not counted
// here — the caller owns qd and can count them exactly.
type SearchStats struct {
	Hops       int64
	Candidates int64
	Pruned     int64
}

// Index is an HNSW graph. Add must not race with Search; a sync.RWMutex
// internally allows concurrent Search calls after (or between) Adds.
type Index struct {
	m              int
	mMax0          int
	efConstruction int
	ml             float64
	seed           int64

	dist func(a, b int32) float32

	mu       sync.RWMutex
	rng      *rand.Rand
	nodes    []node
	entry    int32
	maxLevel int
}

type node struct {
	// neighbors[l] lists the ids connected at layer l; len(neighbors) is the
	// node's level + 1.
	neighbors [][]int32
}

// New creates an empty index whose construction-time distances come from
// dist, which must be symmetric and non-negative.
func New(cfg Config, dist func(a, b int32) float32) *Index {
	if cfg.M == 0 {
		cfg.M = 16
	}
	if cfg.EfConstruction == 0 {
		cfg.EfConstruction = 200
	}
	return &Index{
		m:              cfg.M,
		mMax0:          2 * cfg.M,
		efConstruction: cfg.EfConstruction,
		ml:             1 / math.Log(float64(cfg.M)),
		seed:           cfg.Seed,
		dist:           dist,
		rng:            rand.New(rand.NewSource(cfg.Seed)),
		entry:          -1,
		maxLevel:       -1,
	}
}

// Len returns the number of indexed items.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.nodes)
}

// Add inserts the next item and returns its id (ids are assigned densely in
// insertion order: 0, 1, 2, …). The caller must be able to serve distances
// for the new id before calling Add.
func (ix *Index) Add() int32 {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.addLocked()
}

// addLocked is the serial insertion body; the caller holds ix.mu. AddBatch
// with Workers: 1 funnels through this exact path, which is what makes the
// serial build bit-identical whether items arrive one Add at a time or in
// one batch.
func (ix *Index) addLocked() int32 {
	id := int32(len(ix.nodes))
	level := ix.randomLevel()
	ix.nodes = append(ix.nodes, node{neighbors: make([][]int32, level+1)})

	if ix.entry < 0 {
		ix.entry = id
		ix.maxLevel = level
		return id
	}

	ep := ix.entry
	// Greedy descent through layers above the new node's level.
	for l := ix.maxLevel; l > level; l-- {
		ep = ix.greedyClosest(ep, id, l)
	}
	// Beam search + heuristic selection on each layer the node occupies.
	topLayer := level
	if topLayer > ix.maxLevel {
		topLayer = ix.maxLevel
	}
	for l := topLayer; l >= 0; l-- {
		candidates := ix.searchLayerConstruct(ep, id, ix.efConstruction, l)
		maxConn := ix.m
		if l == 0 {
			maxConn = ix.mMax0
		}
		selected := ix.selectHeuristic(candidates, ix.m)
		ix.nodes[id].neighbors[l] = append(ix.nodes[id].neighbors[l], selected...)
		for _, n := range selected {
			ix.nodes[n].neighbors[l] = append(ix.nodes[n].neighbors[l], id)
			if len(ix.nodes[n].neighbors[l]) > maxConn {
				ix.shrink(n, l, maxConn)
			}
		}
		if len(candidates) > 0 {
			ep = candidates[0].ID
		}
	}
	if level > ix.maxLevel {
		ix.maxLevel = level
		ix.entry = id
	}
	return id
}

// randomLevel samples the exponentially-decaying level distribution.
func (ix *Index) randomLevel() int {
	u := ix.rng.Float64()
	for u == 0 {
		u = ix.rng.Float64()
	}
	return int(math.Floor(-math.Log(u) * ix.ml))
}

// greedyClosest walks layer l from ep toward the item target, following the
// steepest descent until no neighbour is closer.
func (ix *Index) greedyClosest(ep, target int32, l int) int32 {
	cur := ep
	curD := ix.dist(cur, target)
	for {
		improved := false
		for _, n := range ix.neighborsAt(cur, l) {
			if d := ix.dist(n, target); d < curD {
				cur, curD = n, d
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

func (ix *Index) neighborsAt(id int32, l int) []int32 {
	nbs := ix.nodes[id].neighbors
	if l >= len(nbs) {
		return nil
	}
	return nbs[l]
}

// searchLayerConstruct is the ef-bounded beam search used during insertion,
// measuring distance to stored item `target`. Results are sorted ascending
// by distance.
func (ix *Index) searchLayerConstruct(ep, target int32, ef, l int) []Neighbor {
	return ix.searchLayer(ep, func(id int32) float32 { return ix.dist(id, target) }, ef, l, nil, nil, nil, nil)
}

// cancelCheckHops is how many beam-search node expansions pass between two
// cancellation checks: frequent enough that a deadline interrupts a walk
// within a handful of distance computations, rare enough that the check
// never shows up in profiles.
const cancelCheckHops = 64

// searchLayer runs the beam search at layer l starting from ep with beam
// width ef, using qd for distances and skipping items rejected by filter.
// The entry point is always evaluated even if filtered, so the walk can
// escape filtered regions. Results sorted ascending by distance; filtered
// items never appear in the result. cancelled, when non-nil, is polled
// every cancelCheckHops expansions; a true return abandons the walk and
// yields nil. st, when non-nil, receives the walk's work counters; it is
// written once at the end from plain locals, so the loop body stays free
// of pointer chasing. sc, when non-nil, supplies the visited set and heap
// backings (see Scratch); a nil sc allocates per call. The visited
// semantics are identical either way, so scratch reuse never changes which
// nodes a walk evaluates.
func (ix *Index) searchLayer(ep int32, qd func(int32) float32, ef, l int, filter func(int32) bool, cancelled func() bool, st *SearchStats, sc *Scratch) []Neighbor {
	var seen func(int32) bool // marks n visited; reports whether it already was
	var candidates *minHeap
	var results *maxHeap
	if sc != nil {
		gen := sc.begin(len(ix.nodes))
		visited := sc.visited
		seen = func(n int32) bool {
			if visited[n] == gen {
				return true
			}
			visited[n] = gen
			return false
		}
		candidates, results = &sc.cand, &sc.res
	} else {
		visited := make(map[int32]struct{}, ef*4)
		seen = func(n int32) bool {
			if _, ok := visited[n]; ok {
				return true
			}
			visited[n] = struct{}{}
			return false
		}
		candidates, results = new(minHeap), new(maxHeap)
	}
	seen(ep)

	epDist := qd(ep)
	*candidates = append(*candidates, Neighbor{ep, epDist})
	if filter == nil || filter(ep) {
		*results = append(*results, Neighbor{ep, epDist})
	}

	hops := 0
	var expansions, admitted, pruned int64
	for candidates.Len() > 0 {
		if cancelled != nil {
			hops++
			if hops%cancelCheckHops == 0 && cancelled() {
				return nil
			}
		}
		c := heap.Pop(candidates).(Neighbor)
		if len(*results) >= ef && c.Dist > (*results)[0].Dist {
			break
		}
		expansions++
		for _, n := range ix.neighborsAt(c.ID, l) {
			if seen(n) {
				continue
			}
			d := qd(n)
			if len(*results) < ef || d < (*results)[0].Dist {
				admitted++
				heap.Push(candidates, Neighbor{n, d})
				if filter == nil || filter(n) {
					heap.Push(results, Neighbor{n, d})
					if len(*results) > ef {
						heap.Pop(results)
						pruned++
					}
				}
			} else {
				pruned++
			}
		}
	}
	if st != nil {
		st.Hops += expansions
		st.Candidates += admitted
		st.Pruned += pruned
	}
	out := make([]Neighbor, len(*results))
	copy(out, *results)
	sortNeighbors(out)
	return out
}

// selectHeuristic implements Algorithm 4 (neighbour selection by heuristic):
// scan candidates in ascending distance and keep one only if it is closer to
// the target than to every already-kept neighbour, which preserves graph
// navigability around cluster boundaries. Pruned candidates backfill the
// list if fewer than m survive.
func (ix *Index) selectHeuristic(candidates []Neighbor, m int) []int32 {
	if len(candidates) <= m {
		out := make([]int32, len(candidates))
		for i, c := range candidates {
			out[i] = c.ID
		}
		return out
	}
	selected := make([]int32, 0, m)
	var pruned []Neighbor
	for _, c := range candidates {
		if len(selected) >= m {
			break
		}
		ok := true
		for _, s := range selected {
			if ix.dist(c.ID, s) < c.Dist {
				ok = false
				break
			}
		}
		if ok {
			selected = append(selected, c.ID)
		} else {
			pruned = append(pruned, c)
		}
	}
	for _, c := range pruned {
		if len(selected) >= m {
			break
		}
		selected = append(selected, c.ID)
	}
	return selected
}

// shrink re-selects the best maxConn neighbours of id at layer l.
func (ix *Index) shrink(id int32, l, maxConn int) {
	nbs := ix.nodes[id].neighbors[l]
	cands := make([]Neighbor, len(nbs))
	for i, n := range nbs {
		cands[i] = Neighbor{n, ix.dist(id, n)}
	}
	sortNeighbors(cands)
	ix.nodes[id].neighbors[l] = ix.selectHeuristic(cands, maxConn)
}

// Search returns up to k items closest to the query, where qd returns the
// query-to-item distance. ef is the search beam width (clamped to ≥ k).
// filter, when non-nil, restricts results to accepted ids; the graph is
// still traversed through rejected nodes so the filtered region remains
// reachable.
func (ix *Index) Search(qd func(id int32) float32, k, ef int, filter func(int32) bool) []Neighbor {
	res, _ := ix.SearchCancel(qd, k, ef, filter, nil)
	return res
}

// SearchCancel is Search with cooperative cancellation: cancelled, when
// non-nil, is polled between hops of the greedy descent and every
// cancelCheckHops expansions of the layer-0 beam. A true return abandons
// the walk; the second result reports whether the search ran to completion
// (false means it was cancelled and the neighbor slice is nil).
func (ix *Index) SearchCancel(qd func(id int32) float32, k, ef int, filter func(int32) bool, cancelled func() bool) ([]Neighbor, bool) {
	res, done, _ := ix.SearchCancelStats(qd, k, ef, filter, cancelled)
	return res, done
}

// SearchCancelStats is SearchCancel that additionally reports the walk's
// work counters — hops, candidates admitted to the beam, candidates pruned
// — for per-query cost accounting. The stats are meaningful even when the
// search was cancelled (they cover the work done up to the abort).
func (ix *Index) SearchCancelStats(qd func(id int32) float32, k, ef int, filter func(int32) bool, cancelled func() bool) ([]Neighbor, bool, SearchStats) {
	return ix.SearchScratch(nil, qd, k, ef, filter, cancelled)
}

// SearchScratch is SearchCancelStats with caller-owned working state: sc,
// when non-nil, supplies the layer-0 walk's visited set and heap backings,
// so a caller running a block of queries pays the allocations once. Results
// are identical to SearchCancelStats — the scratch only changes where the
// bookkeeping lives, not which nodes are evaluated. sc must not be shared
// between concurrent searches.
func (ix *Index) SearchScratch(sc *Scratch, qd func(id int32) float32, k, ef int, filter func(int32) bool, cancelled func() bool) ([]Neighbor, bool, SearchStats) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	var st SearchStats
	if ix.entry < 0 || k <= 0 {
		return nil, true, st
	}
	if ef < k {
		ef = k
	}
	ep := ix.entry
	epD := qd(ep)
	for l := ix.maxLevel; l >= 1; l-- {
		for {
			if cancelled != nil && cancelled() {
				return nil, false, st
			}
			improved := false
			for _, n := range ix.neighborsAt(ep, l) {
				if d := qd(n); d < epD {
					ep, epD = n, d
					improved = true
				}
			}
			if !improved {
				break
			}
			st.Hops++
		}
	}
	res := ix.searchLayer(ep, qd, ef, 0, filter, cancelled, &st, sc)
	if res == nil && cancelled != nil && cancelled() {
		return nil, false, st
	}
	if n := int64(len(res)) - int64(k); n > 0 {
		st.Pruned += n
	}
	if len(res) > k {
		res = res[:k]
	}
	return res, true, st
}

// MaxLevel reports the current top layer, for diagnostics.
func (ix *Index) MaxLevel() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.maxLevel
}

// Graph returns a copy of the adjacency lists of layer l, for tests and
// diagnostics.
func (ix *Index) Graph(l int) map[int32][]int32 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make(map[int32][]int32)
	for id := range ix.nodes {
		if l < len(ix.nodes[id].neighbors) {
			nbs := make([]int32, len(ix.nodes[id].neighbors[l]))
			copy(nbs, ix.nodes[id].neighbors[l])
			out[int32(id)] = nbs
		}
	}
	return out
}

func sortNeighbors(ns []Neighbor) {
	// Insertion sort is fine: lists are ef-bounded and nearly sorted.
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && less(ns[j], ns[j-1]); j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}

func less(a, b Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}

type minHeap []Neighbor

func (h minHeap) Len() int            { return len(h) }
func (h minHeap) Less(i, j int) bool  { return less(h[i], h[j]) }
func (h minHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x interface{}) { *h = append(*h, x.(Neighbor)) }
func (h *minHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type maxHeap []Neighbor

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return less(h[j], h[i]) }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(Neighbor)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
