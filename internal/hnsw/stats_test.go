package hnsw

import (
	"math/rand"
	"testing"

	"semdisco/internal/vec"
)

func TestStatsEmpty(t *testing.T) {
	ix := New(Config{}, func(a, b int32) float32 { return 0 })
	gs := ix.Stats()
	if gs.Nodes != 0 || gs.EntryPoint != -1 || gs.ReachableFraction != 1 {
		t.Fatalf("empty stats=%+v", gs)
	}
}

func TestStatsConnectedGraph(t *testing.T) {
	const n, dim = 200, 16
	rng := rand.New(rand.NewSource(3))
	vecs := make([][]float32, 0, n)
	dist := func(a, b int32) float32 { return vec.L2Sq(vecs[a], vecs[b]) }
	ix := New(Config{M: 8, EfConstruction: 64, Seed: 3}, dist)
	for i := 0; i < n; i++ {
		v := make([]float32, dim)
		for d := range v {
			v[d] = rng.Float32()
		}
		vecs = append(vecs, v)
		ix.Add()
	}

	gs := ix.Stats()
	if gs.Nodes != n {
		t.Fatalf("nodes=%d want %d", gs.Nodes, n)
	}
	if gs.ReachableFraction != 1 {
		t.Fatalf("HNSW built incrementally must be fully reachable, got %v", gs.ReachableFraction)
	}
	if len(gs.Layers) != gs.MaxLevel+1 {
		t.Fatalf("layers=%d maxLevel=%d", len(gs.Layers), gs.MaxLevel)
	}
	l0 := gs.Layers[0]
	if l0.Nodes != n || l0.Edges == 0 {
		t.Fatalf("layer0=%+v", l0)
	}
	if l0.MaxDegree > 2*8 {
		t.Fatalf("layer0 max degree %d exceeds 2M=16", l0.MaxDegree)
	}
	if l0.AvgDegree <= 0 || l0.MinDegree < 0 {
		t.Fatalf("layer0 degrees=%+v", l0)
	}
	// Upper layers shrink monotonically in occupancy.
	for l := 1; l < len(gs.Layers); l++ {
		if gs.Layers[l].Nodes > gs.Layers[l-1].Nodes {
			t.Fatalf("layer %d has more nodes (%d) than layer %d (%d)",
				l, gs.Layers[l].Nodes, l-1, gs.Layers[l-1].Nodes)
		}
	}
}
