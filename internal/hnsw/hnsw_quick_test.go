package hnsw

import (
	"math/rand"
	"testing"
	"testing/quick"

	"semdisco/internal/vec"
)

// TestQuickSearchInvariants checks, over random corpora and queries, that
// search results are unique in-range ids, sorted ascending by distance,
// and never exceed k.
func TestQuickSearchInvariants(t *testing.T) {
	f := func(seed int64, kRaw, nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		k := int(kRaw)%20 + 1
		s := newStore(Config{M: 8, EfConstruction: 40, Seed: seed})
		vs := randVecs(n, 8, seed)
		for _, v := range vs {
			s.add(v)
		}
		q := randVecs(1, 8, seed^0x55aa)[0]
		got := s.search(q, k, 32, nil)
		if len(got) > k {
			return false
		}
		seen := map[int32]struct{}{}
		for i, nb := range got {
			if nb.ID < 0 || int(nb.ID) >= n {
				return false
			}
			if _, dup := seen[nb.ID]; dup {
				return false
			}
			seen[nb.ID] = struct{}{}
			if i > 0 && got[i].Dist < got[i-1].Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestExhaustiveEfIsExact: with the beam as wide as the corpus and a
// connected layer 0, the search is exact.
func TestExhaustiveEfIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		n := 30 + rng.Intn(100)
		s := newStore(Config{M: 8, EfConstruction: 80, Seed: int64(trial)})
		vs := randVecs(n, 8, int64(trial+50))
		for _, v := range vs {
			s.add(v)
		}
		q := randVecs(1, 8, int64(trial+99))[0]
		got := s.search(q, 5, n, nil)
		want := bruteKNN(vs, q, 5)
		for i := range want {
			if got[i].ID != want[i] {
				// Verify it is a tie rather than a miss.
				if vec.L2Sq(q, vs[got[i].ID]) != vec.L2Sq(q, vs[want[i]]) {
					t.Fatalf("trial %d: rank %d got %d want %d", trial, i, got[i].ID, want[i])
				}
			}
		}
	}
}
