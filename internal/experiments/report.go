package experiments

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"semdisco/internal/corpus"
	"semdisco/internal/par"
)

// MethodReport is one method's machine-readable benchmark result on the
// full (LD) partition.
type MethodReport struct {
	Method string `json:"method"`
	// BuildMS is the index-construction wall-clock cost (embedding time is
	// shared across methods and reported separately at the top level).
	BuildMS float64 `json:"build_ms"`
	// BuildBreakdownMS splits BuildMS into instrumented phases (pq_train,
	// hnsw_insert, umap, hdbscan). Absent for methods without instrumented
	// build stages (the baselines).
	BuildBreakdownMS map[string]float64 `json:"build_breakdown_ms,omitempty"`
	// Latency maps query class ("short", "moderate", "long") to timing.
	Latency map[string]LatencyJSON `json:"latency"`
	// Quality is measured on long queries, the paper's headline setting.
	Quality QualityJSON `json:"quality"`
}

// LatencyJSON is the per-class query timing of one method.
type LatencyJSON struct {
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
}

// QualityJSON is the retrieval-quality summary of one method.
type QualityJSON struct {
	MAP     float64 `json:"map"`
	MRR     float64 `json:"mrr"`
	NDCG10  float64 `json:"ndcg_10"`
	NDCG20  float64 `json:"ndcg_20"`
	Queries int     `json:"queries"`
}

// Report is the machine-readable result set emitted by semdisco-bench
// -json: everything an external dashboard or regression checker needs
// without scraping the human-readable tables.
type Report struct {
	Corpus       string `json:"corpus"`
	NumRelations int    `json:"num_relations"`
	NumValues    int    `json:"num_values"`
	Dim          int    `json:"dim"`
	Seed         int64  `json:"seed"`
	// Workers is the resolved index-build worker count (Setup.Workers, with
	// 0 resolved to GOMAXPROCS); GOMAXPROCS records the machine context so
	// build timings can be compared across hosts.
	Workers    int            `json:"workers"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Methods    []MethodReport `json:"methods"`
	// Cluster is the sharded-federation benchmark (semdisco-bench -shards),
	// absent when sharding was not requested.
	Cluster *ClusterReportJSON `json:"cluster,omitempty"`
	// Tracing is the tracing-overhead measurement (semdisco-bench
	// -tracing-overhead), absent when not requested.
	Tracing *TracingReportJSON `json:"tracing,omitempty"`
	// Cost is the per-method cost-model section (semdisco-bench -cost),
	// absent when not requested.
	Cost *CostReportJSON `json:"cost,omitempty"`
	// Batch is the batched-execution section (semdisco-bench -batch):
	// sequential vs fused-batch throughput per method, absent when not
	// requested.
	Batch *BatchReportJSON `json:"batch,omitempty"`
	// Churn is the mutable-storage section (semdisco-bench -churn): write
	// throughput, search latency under concurrent churn, compaction pause
	// and the fresh-rebuild equivalence check, absent when not requested.
	Churn *ChurnReportJSON `json:"churn,omitempty"`
	// Netcluster is the networked-cluster section (semdisco-bench
	// -netcluster): wire-level deployment equivalence and tail latency under
	// induced stragglers and a killed replica, absent when not requested.
	Netcluster *NetclusterReportJSON `json:"netcluster,omitempty"`
}

// classes maps the report's JSON keys to the corpus query classes.
var classes = []struct {
	key   string
	class corpus.QueryClass
}{
	{"short", corpus.Short},
	{"moderate", corpus.Moderate},
	{"long", corpus.Long},
}

// Report measures every built method on the LD partition — build cost,
// per-class query latency, long-query quality — and returns the result as
// a serializable struct.
func (b *Bench) Report(k int) (*Report, error) {
	if k <= 0 {
		k = 20
	}
	sb := b.PerSize["LD"]
	r := &Report{
		Corpus:       b.Setup.Profile.Name,
		NumRelations: sb.Fed.Len(),
		NumValues:    sb.Emb.NumValues(),
		Dim:          b.Setup.Dim,
		Seed:         b.Setup.Seed,
		Workers:      par.Workers(b.Setup.Workers),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
	}
	for _, method := range Methods {
		if _, ok := sb.Searchers[method]; !ok {
			continue
		}
		mr := MethodReport{
			Method:  method,
			BuildMS: float64(sb.BuildTime[method]) / float64(time.Millisecond),
			Latency: make(map[string]LatencyJSON, len(classes)),
		}
		if breakdown := sb.BuildBreakdown[method]; len(breakdown) > 0 {
			mr.BuildBreakdownMS = make(map[string]float64, len(breakdown))
			for phase, d := range breakdown {
				mr.BuildBreakdownMS[phase] = float64(d) / float64(time.Millisecond)
			}
		}
		for _, c := range classes {
			cell, err := b.Latency(method, "LD", c.class, k)
			if err != nil {
				return nil, err
			}
			mr.Latency[c.key] = LatencyJSON{
				MeanMS: cell.MeanMS, P50MS: cell.P50MS, P95MS: cell.P95MS,
			}
		}
		qc, err := b.Quality(method, "LD", corpus.Long, k)
		if err != nil {
			return nil, err
		}
		mr.Quality = QualityJSON{
			MAP:     qc.Report.MAP,
			MRR:     qc.Report.MRR,
			NDCG10:  qc.Report.NDCG[10],
			NDCG20:  qc.Report.NDCG[20],
			Queries: qc.Report.Queries,
		}
		r.Methods = append(r.Methods, mr)
	}
	return r, nil
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
