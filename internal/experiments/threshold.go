package experiments

import (
	"sort"

	"semdisco/internal/core"
	"semdisco/internal/eval"
)

// CalibrateThreshold picks the similarity threshold h that maximizes F1 of
// "related / not related" decisions on the training judgments — the paper
// defines relatedness as match(F, q) ≥ h but leaves choosing h open; this
// is the natural way to set it from the tuning pair split.
//
// For each training query the searcher ranks top-k relations; every
// (score, relevant?) pair becomes a candidate point, and the threshold
// swept over the observed scores maximizing F1 is returned, along with the
// F1 it achieves. k defaults to 50.
func CalibrateThreshold(s core.Searcher, queries map[string]string, qrels eval.Qrels, k int) (h float32, f1 float64, err error) {
	if k <= 0 {
		k = 50
	}
	type point struct {
		score    float32
		relevant bool
	}
	var points []point
	totalRelevant := 0
	for _, qid := range qrels.Queries() {
		text, ok := queries[qid]
		if !ok {
			continue
		}
		judged := qrels[qid]
		for _, g := range judged {
			if g >= 1 {
				totalRelevant++
			}
		}
		matches, serr := s.Search(text, k)
		if serr != nil {
			return 0, 0, serr
		}
		for _, m := range matches {
			grade, isJudged := judged[m.RelationID]
			if !isJudged {
				continue // unjudged retrievals cannot vote
			}
			points = append(points, point{m.Score, grade >= 1})
		}
	}
	if len(points) == 0 || totalRelevant == 0 {
		return 0, 0, nil
	}
	// Sweep thresholds descending: at threshold t everything with
	// score ≥ t is predicted related.
	sort.Slice(points, func(i, j int) bool { return points[i].score > points[j].score })
	bestH, bestF1 := float32(0), 0.0
	tp, fp := 0, 0
	for i, p := range points {
		if p.relevant {
			tp++
		} else {
			fp++
		}
		// Only evaluate at distinct score boundaries.
		if i+1 < len(points) && points[i+1].score == p.score {
			continue
		}
		precision := float64(tp) / float64(tp+fp)
		recall := float64(tp) / float64(totalRelevant)
		if precision+recall == 0 {
			continue
		}
		f := 2 * precision * recall / (precision + recall)
		if f > bestF1 {
			bestF1 = f
			bestH = p.score
		}
	}
	return bestH, bestF1, nil
}
