package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"semdisco/internal/core"
	"semdisco/internal/obs"
)

// TracingReportJSON is the tracing-overhead section of the benchmark
// report: the same queries run through the same ExS index twice, once with
// the span-tree tracing path off (nil trace) and once with every query
// under a recorded root span offered to a tail-sampling store at the
// default 1-in-64 head sample rate, and the p50s are compared. ExS is used
// because its queries are the cheapest, making the fixed per-query tracing
// cost (trace ID mint, span records, store offer) maximally visible.
type TracingReportJSON struct {
	Method          string  `json:"method"`
	Queries         int     `json:"queries"`
	HeadSampleEvery int     `json:"head_sample_every"`
	BaselineP50MS   float64 `json:"baseline_p50_ms"`
	TracedP50MS     float64 `json:"traced_p50_ms"`
	// OverheadPct is (traced - baseline) / baseline on the p50, in percent.
	// Negative values mean the difference drowned in run-to-run noise.
	OverheadPct float64 `json:"overhead_pct"`
	// TracesKept is how many traces the store retained (head samples; the
	// benchmark queries never degrade or error).
	TracesKept int64 `json:"traces_kept"`
}

// tracingReps repeats the query set so the p50 rests on enough samples for
// small corpora.
const tracingReps = 3

// TracingReport replays every benchmark query through the LD partition's
// ExS index twice — untraced versus under a recorded span tree offered to
// a trace store with the default 1-in-64 head sampler — and reports the
// p50 latency delta: the measured per-query cost of the tracing subsystem.
func (b *Bench) TracingReport(k int) (*TracingReportJSON, error) {
	if k <= 0 {
		k = 20
	}
	sb := b.PerSize["LD"]
	s, ok := sb.Searchers["ExS"]
	if !ok {
		return nil, fmt.Errorf("experiments: ExS not built")
	}
	cs, ok := s.(core.ContextSearcher)
	if !ok {
		return nil, fmt.Errorf("experiments: ExS does not support context search")
	}
	ctx := context.Background()
	store := obs.NewTraceStore(obs.TraceStoreConfig{HeadSampleEvery: 64})

	run := func(traced bool) ([]float64, error) {
		// One untimed pass warms the encoder cache so both runs pay it.
		for _, q := range b.Corpus.Queries {
			if _, err := cs.SearchTracedContext(ctx, q.Text, k, nil); err != nil {
				return nil, err
			}
		}
		durations := make([]float64, 0, tracingReps*len(b.Corpus.Queries))
		for rep := 0; rep < tracingReps; rep++ {
			for _, q := range b.Corpus.Queries {
				start := time.Now()
				if traced {
					// The engine's traced path: root span, stage spans
					// recorded by the searcher, outcome offered to the store.
					tr := obs.NewTrace()
					root := tr.StartRoot("search")
					m, err := cs.SearchTracedContext(ctx, q.Text, k, tr)
					if err != nil {
						return nil, err
					}
					root.AnnotateInt("matches", len(m))
					dur := root.End()
					store.Offer(tr, obs.TraceOutcome{
						Duration: dur, Query: q.Text, Method: "ExS",
						K: k, Matches: len(m),
					})
				} else if _, err := cs.SearchTracedContext(ctx, q.Text, k, nil); err != nil {
					return nil, err
				}
				durations = append(durations, float64(time.Since(start).Microseconds())/1000)
			}
		}
		sort.Float64s(durations)
		return durations, nil
	}
	baseline, err := run(false)
	if err != nil {
		return nil, err
	}
	traced, err := run(true)
	if err != nil {
		return nil, err
	}

	r := &TracingReportJSON{
		Method:          "ExS",
		Queries:         len(traced),
		HeadSampleEvery: 64,
		BaselineP50MS:   baseline[len(baseline)/2],
		TracedP50MS:     traced[len(traced)/2],
		TracesKept:      store.Kept(),
	}
	if r.BaselineP50MS > 0 {
		r.OverheadPct = (r.TracedP50MS - r.BaselineP50MS) / r.BaselineP50MS * 100
	}
	return r, nil
}
