package experiments

import (
	"fmt"
	"strings"

	"semdisco/internal/corpus"
)

// classOfTable maps the paper's table number to its query class.
var classOfTable = map[int]corpus.QueryClass{
	1: corpus.Long,
	2: corpus.Moderate,
	3: corpus.Short,
}

// RunQualityTable regenerates Table 1, 2 or 3 (long / moderate / short
// query quality) and renders it in the paper's layout.
func (b *Bench) RunQualityTable(tableNo int) (string, error) {
	class, ok := classOfTable[tableNo]
	if !ok {
		return "", fmt.Errorf("experiments: no quality table %d", tableNo)
	}
	cells, err := b.QualityTable(class)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table %d: Quality of %s query results (corpus %s)\n",
		tableNo, class, b.Setup.Profile.Name)
	fmt.Fprintf(&sb, "%-8s %-6s %7s %7s | %7s %7s %7s %7s\n",
		"Dataset", "Method", "MAP", "MRR", "NDCG@5", "@10", "@15", "@20")
	prevSize := ""
	for _, c := range cells {
		sizeLabel := ""
		if c.Size != prevSize {
			sizeLabel = c.Size
			if prevSize != "" {
				sb.WriteString(strings.Repeat("-", 72) + "\n")
			}
			prevSize = c.Size
		}
		r := c.Report
		fmt.Fprintf(&sb, "%-8s %-6s %7.3f %7.3f | %7.3f %7.3f %7.3f %7.3f\n",
			sizeLabel, c.Method, r.MAP, r.MRR,
			r.NDCG[5], r.NDCG[10], r.NDCG[15], r.NDCG[20])
	}
	return sb.String(), nil
}

// RunTable4 regenerates Table 4: query time (milliseconds) for CTS vs ANNS
// across partition sizes and query lengths.
func (b *Bench) RunTable4() (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 4: Query Time (milliseconds) for CTS vs. ANNS (corpus %s)\n",
		b.Setup.Profile.Name)
	fmt.Fprintf(&sb, "%-8s %-10s %10s %10s\n", "Dataset", "Query", "CTS", "ANNS")
	for _, size := range []string{"LD", "MD", "SD"} {
		for _, class := range []corpus.QueryClass{corpus.Long, corpus.Moderate, corpus.Short} {
			row := [2]float64{}
			for i, m := range []string{"CTS", "ANNS"} {
				cell, err := b.Latency(m, size, class, 20)
				if err != nil {
					return "", err
				}
				row[i] = cell.MeanMS
			}
			fmt.Fprintf(&sb, "%-8s %-10s %10.2f %10.2f\n", size, class, row[0], row[1])
		}
	}
	return sb.String(), nil
}

// RunFigure3 regenerates Figure 3: query response time of every method per
// partition size and query length (the paper renders this as bar charts;
// we print the series).
func (b *Bench) RunFigure3() (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 3: Query response time in ms, all methods (corpus %s)\n",
		b.Setup.Profile.Name)
	fmt.Fprintf(&sb, "%-8s %-10s", "Dataset", "Query")
	for _, m := range Methods {
		fmt.Fprintf(&sb, " %9s", m)
	}
	sb.WriteByte('\n')
	for _, size := range []string{"LD", "MD", "SD"} {
		for _, class := range []corpus.QueryClass{corpus.Long, corpus.Moderate, corpus.Short} {
			fmt.Fprintf(&sb, "%-8s %-10s", size, class)
			for _, m := range Methods {
				if _, ok := b.PerSize[size].Searchers[m]; !ok {
					fmt.Fprintf(&sb, " %9s", "-")
					continue
				}
				cell, err := b.Latency(m, size, class, 20)
				if err != nil {
					return "", err
				}
				fmt.Fprintf(&sb, " %9.2f", cell.MeanMS)
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String(), nil
}

// CaseStudy reproduces the §5.3 qualitative comparison: for a targeted
// query, show the top-k of each of the three proposed methods side by side.
func (b *Bench) CaseStudy(query string, k int) (string, error) {
	if k == 0 {
		k = 5
	}
	sb := b.PerSize["LD"]
	var out strings.Builder
	fmt.Fprintf(&out, "Case study (§5.3), query %q:\n", query)
	for _, m := range []string{"ExS", "ANNS", "CTS"} {
		s, ok := sb.Searchers[m]
		if !ok {
			continue
		}
		ms, err := s.Search(query, k)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&out, "  %-5s:", m)
		for _, match := range ms {
			fmt.Fprintf(&out, " %s(%.3f)", match.RelationID, match.Score)
		}
		out.WriteByte('\n')
	}
	return out.String(), nil
}
