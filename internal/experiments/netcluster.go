package experiments

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"time"

	"semdisco/internal/cluster"
	"semdisco/internal/core"
	"semdisco/internal/corpus"
	"semdisco/internal/netcluster"
	"semdisco/internal/table"
)

// netclusterStragglerDelay is the injected per-request latency on one
// replica of every set during the straggler phase — far above the healthy
// sub-millisecond attempt latency, far below the attempt timeout, so it
// shows up in the tail unless hedging absorbs it.
const netclusterStragglerDelay = 40 * time.Millisecond

// TailLatencyJSON extends the usual latency summary with the p99, the
// quantile replica hedging exists to protect.
type TailLatencyJSON struct {
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// NetclusterReportJSON is the networked-cluster section of the benchmark
// report: equivalence of the wire-level deployment against both the
// in-process Router and the single-engine ExS ranking, tail latency
// healthy / under an induced straggler / with a replica killed mid-run,
// and the failover counters behind those numbers.
type NetclusterReportJSON struct {
	Sets     int    `json:"sets"`
	Replicas int    `json:"replicas_per_set"`
	Method   string `json:"method"`
	// Queries is the number of timed queries per phase.
	Queries int `json:"queries"`
	// EquivalentToExS reports whether the networked ranking matched the
	// single-engine ExS ranking on every query of every phase — the wire
	// layer's correctness invariant.
	EquivalentToExS bool `json:"equivalent_to_exs"`
	// EquivalentToRouter reports the same against the in-process Router
	// over identical partitions.
	EquivalentToRouter bool `json:"equivalent_to_router"`
	// InProcess is the in-process Router baseline over the same partitions.
	InProcess TailLatencyJSON `json:"in_process"`
	// Healthy is the networked coordinator with no faults.
	Healthy TailLatencyJSON `json:"healthy"`
	// Straggler is the networked coordinator with one replica per set
	// answering netclusterStragglerDelay late; hedging and failover decide
	// how much of that reaches the p99.
	Straggler        TailLatencyJSON `json:"straggler"`
	StragglerHedges  int64           `json:"straggler_hedges"`
	StragglerRetries int64           `json:"straggler_retries"`
	// KilledSet's first replica is closed midway through the final phase;
	// KilledAnswered counts queries answered after as well as before (the
	// coordinator must answer every one via the surviving replicas).
	KilledSet      int  `json:"killed_set"`
	KilledQueries  int  `json:"killed_queries"`
	KilledAnswered int  `json:"killed_answered"`
	KilledDegraded int  `json:"killed_degraded"`
	AllAnswered    bool `json:"all_answered"`
	// FaultsInjected counts applied fault-injector rules by kind.
	FaultsInjected map[string]int64 `json:"faults_injected"`
}

// NetclusterReport stands up a wire-level deployment in-process — sets ×
// replicas shard servers on loopback HTTP behind a fault-injecting
// transport, fronted by a replicated coordinator — and measures it against
// the in-process Router and the monolithic ExS index on the LD partition's
// long queries: bit-identical rankings when healthy, tail latency under an
// induced straggler, and availability with a replica killed mid-run.
func (b *Bench) NetclusterReport(sets, replicas, k int) (*NetclusterReportJSON, error) {
	if k <= 0 {
		k = 20
	}
	if sets < 1 {
		sets = 2
	}
	if replicas < 2 {
		replicas = 2
	}
	sb := b.PerSize["LD"]
	single, ok := sb.Searchers["ExS"]
	if !ok {
		return nil, fmt.Errorf("experiments: ExS not built")
	}

	// Partition by the same placement ring the deployment would use, so a
	// real shard server bootstrapping with NewNetShard builds the identical
	// partition.
	ring, err := netcluster.NewRing(sets, 0)
	if err != nil {
		return nil, err
	}
	parts := make([]*table.Federation, sets)
	for i := range parts {
		parts[i] = table.NewFederation()
	}
	order := make(map[string]int, sb.Fed.Len())
	for i, rel := range sb.Fed.Relations() {
		order[rel.ID] = i
		if err := parts[ring.Owner(rel.ID)].Add(rel); err != nil {
			return nil, err
		}
	}
	backends := make([]*core.ExS, sets)
	routerShards := make([]cluster.Shard, sets)
	relCounts := make([]int, sets)
	for i, p := range parts {
		if p.Len() == 0 {
			return nil, fmt.Errorf("experiments: the ring assigns no relations to set %d of %d", i, sets)
		}
		emb := core.EmbedFederation(p, sb.Model)
		backends[i] = core.NewExS(emb, core.ExSOptions{})
		routerShards[i] = backends[i]
		relCounts[i] = p.Len()
	}
	orderOf := func(id string) int { return order[id] }
	router, err := cluster.NewRouter(routerShards, relCounts, cluster.Options{
		Method: "ExS",
		Encode: sb.Model.Encode,
		Order:  orderOf,
	})
	if err != nil {
		return nil, err
	}

	// Replica servers: every replica of a set serves the set's (identical,
	// immutable) partition index over the internal wire protocol.
	servers := make([][]*httptest.Server, sets)
	replicaSets := make([][]string, sets)
	defer func() {
		for _, row := range servers {
			for _, s := range row {
				if s != nil {
					s.Close()
				}
			}
		}
	}()
	for i := range servers {
		h := netcluster.NewShardHandler(backends[i], nil, b.Setup.Dim)
		for r := 0; r < replicas; r++ {
			srv := httptest.NewServer(h)
			servers[i] = append(servers[i], srv)
			replicaSets[i] = append(replicaSets[i], srv.URL)
		}
	}
	inj := netcluster.NewFaultInjector(nil)
	coord, err := netcluster.NewCoordinator(replicaSets, netcluster.CoordinatorOptions{
		Encode:         sb.Model.Encode,
		Order:          orderOf,
		Method:         "ExS",
		AttemptTimeout: 2 * time.Second,
		Hedge:          true,
		Transport:      inj,
	})
	if err != nil {
		return nil, err
	}

	queries := b.Corpus.QueriesOf(corpus.Long)
	if len(queries) == 0 {
		return nil, fmt.Errorf("experiments: no long queries")
	}
	texts := make([]string, 0, len(queries))
	for _, q := range queries {
		texts = append(texts, q.Text)
	}
	// Enough samples that the p99 means something and the hedge trigger's
	// latency window warms up.
	for len(texts) < 48 {
		texts = append(texts, texts...)
	}

	report := &NetclusterReportJSON{
		Sets: sets, Replicas: replicas, Method: "ExS", Queries: len(texts),
		EquivalentToExS: true, EquivalentToRouter: true,
	}
	ctx := context.Background()
	if _, err := router.Search(ctx, texts[0], k); err != nil { // warm-up
		return nil, err
	}
	if _, err := coord.Search(ctx, texts[0], k); err != nil {
		return nil, err
	}

	// Phase 1: in-process Router baseline over the same partitions.
	inproc := make([]float64, 0, len(texts))
	for _, q := range texts {
		start := time.Now()
		if _, err := router.Search(ctx, q, k); err != nil {
			return nil, err
		}
		inproc = append(inproc, msSince(start))
	}
	report.InProcess = tailLatency(inproc)

	// Phase 2: networked, healthy — timing plus the equivalence checks.
	healthy := make([]float64, 0, len(texts))
	for _, q := range texts {
		start := time.Now()
		res, err := coord.Search(ctx, q, k)
		if err != nil {
			return nil, err
		}
		healthy = append(healthy, msSince(start))
		if res.Degraded {
			return nil, fmt.Errorf("experiments: degraded answer with no faults injected: %v", res.ShardErrors)
		}
		want, err := single.Search(q, k)
		if err != nil {
			return nil, err
		}
		if !matchesEqual(res.Matches, want) {
			report.EquivalentToExS = false
		}
		rres, err := router.Search(ctx, q, k)
		if err != nil {
			return nil, err
		}
		if !matchesEqual(res.Matches, rres.Matches) {
			report.EquivalentToRouter = false
		}
	}
	report.Healthy = tailLatency(healthy)

	// Phase 3: one replica per set answers late; cross-replica hedging and
	// failover decide how much of the delay reaches the tail.
	for i := range servers {
		inj.Set(servers[i][0].URL, netcluster.Fault{Latency: netclusterStragglerDelay, Remaining: -1})
	}
	strag := make([]float64, 0, len(texts))
	for _, q := range texts {
		start := time.Now()
		res, err := coord.Search(ctx, q, k)
		if err != nil {
			return nil, err
		}
		strag = append(strag, msSince(start))
		want, err := single.Search(q, k)
		if err != nil {
			return nil, err
		}
		if !matchesEqual(res.Matches, want) {
			report.EquivalentToExS = false
		}
	}
	report.Straggler = tailLatency(strag)
	for _, gs := range coord.Stats().Groups {
		report.StragglerHedges += gs.Hedges
		report.StragglerRetries += gs.Retries
	}
	for i := range servers {
		inj.Clear(servers[i][0].URL)
	}

	// Phase 4: kill one replica mid-run. The coordinator must answer every
	// query — before the kill from any replica, after it from the
	// survivors — without degradation, because the set is still up.
	report.KilledQueries = len(texts)
	killAt := len(texts) / 2
	for n, q := range texts {
		if n == killAt {
			servers[report.KilledSet][0].Close()
			servers[report.KilledSet][0] = nil
		}
		res, err := coord.Search(ctx, q, k)
		if err != nil {
			continue
		}
		report.KilledAnswered++
		if res.Degraded {
			report.KilledDegraded++
		}
		want, err := single.Search(q, k)
		if err != nil {
			return nil, err
		}
		if !matchesEqual(res.Matches, want) {
			report.EquivalentToExS = false
		}
	}
	report.AllAnswered = report.KilledAnswered == report.KilledQueries
	report.FaultsInjected = inj.Injected()
	return report, nil
}

func msSince(start time.Time) float64 {
	return float64(time.Since(start).Microseconds()) / 1000
}

// tailLatency summarizes a sample of per-query millisecond timings.
func tailLatency(ms []float64) TailLatencyJSON {
	if len(ms) == 0 {
		return TailLatencyJSON{}
	}
	sorted := make([]float64, len(ms))
	copy(sorted, ms)
	sort.Float64s(sorted)
	var total float64
	for _, v := range sorted {
		total += v
	}
	at := func(p float64) float64 {
		i := int(p * float64(len(sorted)))
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return TailLatencyJSON{
		MeanMS: total / float64(len(sorted)),
		P50MS:  at(0.50),
		P95MS:  at(0.95),
		P99MS:  at(0.99),
	}
}
