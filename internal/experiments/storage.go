package experiments

import (
	"fmt"
	"strings"
	"time"

	"semdisco/internal/core"
)

// StorageRow summarizes one method's index footprint on one partition.
type StorageRow struct {
	Method string
	Size   string
	// BuildTime is wall-clock index construction (embedding excluded —
	// it is shared by all methods).
	BuildTime time.Duration
	// VectorBytes is the method's vector storage: raw float32 for
	// ExS/CTS, PQ codes for the default ANNS.
	VectorBytes int64
}

// RunStorageTable measures index build time and vector storage per method
// and partition, supporting the paper's storage-reduction claims (§1:
// Product Quantization "significantly reduce[s] the storage requirements";
// §7: CTS "reduced storage requirements by applying dimensionality
// reduction"). Baselines are excluded: they store token statistics, not
// vectors.
func (b *Bench) RunStorageTable() (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Storage & build cost, semantic methods (corpus %s)\n", b.Setup.Profile.Name)
	fmt.Fprintf(&sb, "%-8s %-6s %12s %14s %10s\n", "Dataset", "Method", "values", "vector bytes", "build")
	for _, size := range []string{"LD", "MD", "SD"} {
		emb := b.PerSize[size].Emb
		rawBytes := int64(emb.NumValues()) * int64(emb.Enc.Dim()) * 4

		// ExS: the raw embedding matrix, no index.
		fmt.Fprintf(&sb, "%-8s %-6s %12d %14d %10s\n", size, "ExS",
			emb.NumValues(), rawBytes, "-")

		start := time.Now()
		anns, err := core.NewANNS(emb, core.ANNSOptions{Seed: b.Setup.Seed})
		if err != nil {
			return "", err
		}
		annsBuild := time.Since(start)
		fmt.Fprintf(&sb, "%-8s %-6s %12d %14d %10s\n", "", "ANNS",
			emb.NumValues(), anns.Stats().VectorBytes, annsBuild.Round(time.Millisecond))

		start = time.Now()
		if _, err := core.NewCTS(emb, core.CTSOptions{Seed: b.Setup.Seed}); err != nil {
			return "", err
		}
		ctsBuild := time.Since(start)
		fmt.Fprintf(&sb, "%-8s %-6s %12d %14d %10s\n", "", "CTS",
			emb.NumValues(), rawBytes, ctsBuild.Round(time.Millisecond))
	}
	sb.WriteString("\nANNS stores PQ codes (the compression the paper adopts);\n")
	sb.WriteString("ExS and CTS store raw float32 vectors.\n")
	return sb.String(), nil
}
