package experiments

import (
	"fmt"
	"strings"
	"time"

	"semdisco/internal/core"
	"semdisco/internal/corpus"
)

// SweepScales are the corpus fractions the scalability sweep visits.
var SweepScales = []float64{0.1, 0.25, 0.5, 1.0}

// RunScalingSweep builds the three semantic methods at several corpus
// scales and reports build and query times — the scalability story of §5.4
// ("to understand how the different methods scale up") as one table
// instead of three partitions. Baselines are skipped; their scaling is
// covered by Figure 3.
func RunScalingSweep(profile corpus.Profile, dim int, seed int64) (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Scaling sweep (corpus %s, dim %d)\n", profile.Name, dim)
	fmt.Fprintf(&sb, "%-7s %9s %9s | %12s %12s | %10s %10s %10s\n",
		"scale", "relations", "values", "ANNS build", "CTS build", "ExS ms", "ANNS ms", "CTS ms")
	for _, scale := range SweepScales {
		p := profile.Scaled(scale)
		c := corpus.Generate(p)
		model := c.NewEncoder(dim, seed)
		emb := core.EmbedFederation(c.Federation, model)

		noParallel := false
		exs := core.NewExS(emb, core.ExSOptions{Parallel: &noParallel})

		start := time.Now()
		anns, err := core.NewANNS(emb, core.ANNSOptions{Seed: seed})
		if err != nil {
			return "", err
		}
		annsBuild := time.Since(start)

		start = time.Now()
		cts, err := core.NewCTS(emb, core.CTSOptions{Seed: seed})
		if err != nil {
			return "", err
		}
		ctsBuild := time.Since(start)

		queries := c.QueriesOf(corpus.Moderate)
		timeOf := func(s core.Searcher) (float64, error) {
			if _, err := s.Search(queries[0].Text, 20); err != nil { // warm-up
				return 0, err
			}
			start := time.Now()
			for _, q := range queries {
				if _, err := s.Search(q.Text, 20); err != nil {
					return 0, err
				}
			}
			return float64(time.Since(start).Microseconds()) / 1000 / float64(len(queries)), nil
		}
		exsMS, err := timeOf(exs)
		if err != nil {
			return "", err
		}
		annsMS, err := timeOf(anns)
		if err != nil {
			return "", err
		}
		ctsMS, err := timeOf(cts)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "%-7.2f %9d %9d | %12s %12s | %10.2f %10.2f %10.2f\n",
			scale, c.Federation.Len(), emb.NumValues(),
			annsBuild.Round(time.Millisecond), ctsBuild.Round(time.Millisecond),
			exsMS, annsMS, ctsMS)
	}
	return sb.String(), nil
}
