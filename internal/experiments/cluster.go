package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"semdisco/internal/cluster"
	"semdisco/internal/core"
	"semdisco/internal/corpus"
	"semdisco/internal/table"
)

// ClusterReportJSON is the sharded-federation section of the benchmark
// report: federated query latency per class, the per-shard breakdown, and
// the merge-equivalence check against the monolithic ExS ranking.
type ClusterReportJSON struct {
	Shards int    `json:"shards"`
	Policy string `json:"policy"`
	Method string `json:"method"`
	// Latency maps query class to federated (scatter-gather) timing.
	Latency map[string]LatencyJSON `json:"latency"`
	// EquivalentToExS reports whether the federated ExS ranking matched the
	// single-engine ExS ranking on every long query — the cluster layer's
	// correctness invariant.
	EquivalentToExS bool `json:"equivalent_to_exs"`
	// ShardStats is the per-shard breakdown after the run: relation counts,
	// search counters and latency quantiles.
	ShardStats []cluster.ShardStats `json:"shard_stats"`
}

// ClusterReport shards the LD partition's ExS index n ways behind a
// scatter-gather router (sharing the partition's encoder, so query vectors
// are identical) and measures federated query latency per class, verifying
// along the way that the merged ranking is identical to the monolith's.
func (b *Bench) ClusterReport(shards, k int) (*ClusterReportJSON, error) {
	if k <= 0 {
		k = 20
	}
	sb := b.PerSize["LD"]
	single, ok := sb.Searchers["ExS"]
	if !ok {
		return nil, fmt.Errorf("experiments: ExS not built")
	}
	if shards < 1 || shards > sb.Fed.Len() {
		return nil, fmt.Errorf("experiments: invalid shard count %d for %d relations", shards, sb.Fed.Len())
	}

	// Partition round-robin in federation order so every shard preserves
	// relative relation order, the invariant the merge tie-breaks on.
	parts := make([]*table.Federation, shards)
	for i := range parts {
		parts[i] = table.NewFederation()
	}
	order := make(map[string]int, sb.Fed.Len())
	for i, rel := range sb.Fed.Relations() {
		if err := parts[i%shards].Add(rel); err != nil {
			return nil, err
		}
		order[rel.ID] = i
	}
	routerShards := make([]cluster.Shard, shards)
	relCounts := make([]int, shards)
	for i, p := range parts {
		emb := core.EmbedFederation(p, sb.Model)
		routerShards[i] = core.NewExS(emb, core.ExSOptions{})
		relCounts[i] = p.Len()
	}
	router, err := cluster.NewRouter(routerShards, relCounts, cluster.Options{
		Policy: cluster.PolicyRoundRobin,
		Method: "ExS",
		Encode: sb.Model.Encode,
		Order:  func(relID string) int { return order[relID] },
	})
	if err != nil {
		return nil, err
	}

	report := &ClusterReportJSON{
		Shards:          shards,
		Policy:          cluster.PolicyRoundRobin.String(),
		Method:          "ExS",
		Latency:         make(map[string]LatencyJSON, len(classes)),
		EquivalentToExS: true,
	}
	ctx := context.Background()
	for _, c := range classes {
		queries := b.Corpus.QueriesOf(c.class)
		if len(queries) == 0 {
			continue
		}
		if _, err := router.Search(ctx, queries[0].Text, k); err != nil { // warm-up
			return nil, err
		}
		durations := make([]float64, 0, len(queries))
		var total float64
		for _, q := range queries {
			start := time.Now()
			res, err := router.Search(ctx, q.Text, k)
			if err != nil {
				return nil, err
			}
			ms := float64(time.Since(start).Microseconds()) / 1000
			durations = append(durations, ms)
			total += ms
			if c.class == corpus.Long {
				want, err := single.Search(q.Text, k)
				if err != nil {
					return nil, err
				}
				if !matchesEqual(res.Matches, want) {
					report.EquivalentToExS = false
				}
			}
		}
		sort.Float64s(durations)
		p95 := len(durations) * 95 / 100
		if p95 >= len(durations) {
			p95 = len(durations) - 1
		}
		report.Latency[c.key] = LatencyJSON{
			MeanMS: total / float64(len(durations)),
			P50MS:  durations[len(durations)/2],
			P95MS:  durations[p95],
		}
	}
	report.ShardStats = router.Stats().Shards
	return report, nil
}

func matchesEqual(a, b []core.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
