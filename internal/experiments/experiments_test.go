package experiments

import (
	"strings"
	"sync"
	"testing"

	"semdisco/internal/corpus"
	"semdisco/internal/eval"
)

// quickSetup keeps experiment tests fast: small corpus, small dim.
func quickSetup() Setup {
	p := corpus.WikiTables()
	p.NumRelations = 100
	p.NumTopics = 8
	p.QueriesPerClass = 4
	p.JudgedPerQuery = 16
	return Setup{Profile: p, Dim: 64, Seed: 1}
}

var (
	sharedBench     *Bench
	sharedBenchErr  error
	sharedBenchOnce sync.Once
)

// quickBench builds the shared benchmark once for the whole test package;
// tests only read from it.
func quickBench(t testing.TB) *Bench {
	t.Helper()
	sharedBenchOnce.Do(func() {
		sharedBench, sharedBenchErr = NewBench(quickSetup())
	})
	if sharedBenchErr != nil {
		t.Fatal(sharedBenchErr)
	}
	return sharedBench
}

func TestBenchBuildsAllMethodsAndSizes(t *testing.T) {
	b := quickBench(t)
	for _, size := range Sizes {
		sb, ok := b.PerSize[size]
		if !ok {
			t.Fatalf("size %s missing", size)
		}
		for _, m := range Methods {
			if _, ok := sb.Searchers[m]; !ok {
				t.Fatalf("%s/%s missing", size, m)
			}
		}
	}
	// Partitions must actually shrink.
	if b.PerSize["SD"].Fed.Len() >= b.PerSize["MD"].Fed.Len() ||
		b.PerSize["MD"].Fed.Len() >= b.PerSize["LD"].Fed.Len() {
		t.Fatalf("partition sizes not increasing: %d %d %d",
			b.PerSize["SD"].Fed.Len(), b.PerSize["MD"].Fed.Len(), b.PerSize["LD"].Fed.Len())
	}
}

func TestSkipMethods(t *testing.T) {
	s := quickSetup()
	s.SkipMethods = []string{"MDR", "WS", "TCS", "AdH", "TML"}
	b, err := NewBench(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.PerSize["LD"].Searchers["MDR"]; ok {
		t.Fatal("MDR built despite skip")
	}
	if _, ok := b.PerSize["LD"].Searchers["CTS"]; !ok {
		t.Fatal("CTS missing")
	}
}

func TestQualityCells(t *testing.T) {
	b := quickBench(t)
	cell, err := b.Quality("ExS", "LD", corpus.Moderate, 20)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Report.Queries == 0 {
		t.Fatal("no queries evaluated")
	}
	if cell.Report.MAP <= 0 || cell.Report.MAP > 1 {
		t.Fatalf("MAP=%v", cell.Report.MAP)
	}
	if _, err := b.Quality("nope", "LD", corpus.Short, 5); err == nil {
		t.Fatal("unknown method must error")
	}
}

func TestQualityTablesRender(t *testing.T) {
	b := quickBench(t)
	for tableNo := 1; tableNo <= 3; tableNo++ {
		out, err := b.RunQualityTable(tableNo)
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{"MAP", "NDCG@5", "SD", "MD", "LD", "CTS", "ExS"} {
			if !strings.Contains(out, want) {
				t.Fatalf("table %d output misses %q:\n%s", tableNo, want, out)
			}
		}
	}
	if _, err := b.RunQualityTable(9); err == nil {
		t.Fatal("bad table number must error")
	}
}

func TestLatency(t *testing.T) {
	b := quickBench(t)
	exs, err := b.Latency("ExS", "LD", corpus.Short, 20)
	if err != nil {
		t.Fatal(err)
	}
	if exs.MeanMS <= 0 {
		t.Fatalf("latency %v", exs.MeanMS)
	}
	cts, err := b.Latency("CTS", "LD", corpus.Short, 20)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("LD/short latency: ExS=%.2fms CTS=%.2fms", exs.MeanMS, cts.MeanMS)
}

func TestTable4AndFigure3Render(t *testing.T) {
	b := quickBench(t)
	t4, err := b.RunTable4()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(t4, "CTS") || !strings.Contains(t4, "ANNS") {
		t.Fatalf("table 4 malformed:\n%s", t4)
	}
	f3, err := b.RunFigure3()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Methods {
		if !strings.Contains(f3, m) {
			t.Fatalf("figure 3 misses %s:\n%s", m, f3)
		}
	}
}

func TestCaseStudy(t *testing.T) {
	b := quickBench(t)
	out, err := b.CaseStudy(b.Corpus.Queries[0].Text, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"ExS", "ANNS", "CTS"} {
		if !strings.Contains(out, m) {
			t.Fatalf("case study misses %s:\n%s", m, out)
		}
	}
}

func TestRestrictQrelsShrinks(t *testing.T) {
	b := quickBench(t)
	count := func(size string) int {
		n := 0
		for _, judged := range b.PerSize[size].Qrels {
			n += len(judged)
		}
		return n
	}
	if !(count("SD") < count("MD") && count("MD") < count("LD")) {
		t.Fatalf("restricted qrels not shrinking: %d %d %d",
			count("SD"), count("MD"), count("LD"))
	}
}

func TestCalibrateThreshold(t *testing.T) {
	b := quickBench(t)
	sb := b.PerSize["LD"]
	queries := map[string]string{}
	for _, q := range b.Corpus.Queries {
		queries[q.ID] = q.Text
	}
	h, f1, err := CalibrateThreshold(sb.Searchers["ExS"], queries, restrictQrels(b.Corpus.TrainQrels, sb.Fed), 30)
	if err != nil {
		t.Fatal(err)
	}
	if f1 <= 0 || f1 > 1 {
		t.Fatalf("F1=%v", f1)
	}
	if h <= -1 || h >= 1 {
		t.Fatalf("threshold %v outside cosine range", h)
	}
	t.Logf("calibrated h=%.4f F1=%.3f", h, f1)
	// Degenerate inputs.
	h0, f0, err := CalibrateThreshold(sb.Searchers["ExS"], nil, eval.Qrels{}, 10)
	if err != nil || h0 != 0 || f0 != 0 {
		t.Fatalf("empty calibration: %v %v %v", h0, f0, err)
	}
}

func TestQuerySubsets(t *testing.T) {
	b := quickBench(t)
	qs1 := b.Corpus.QueriesOfSubset(corpus.QS1)
	qs2 := b.Corpus.QueriesOfSubset(corpus.QS2)
	if len(qs1) == 0 || len(qs2) == 0 {
		t.Fatal("query subsets empty")
	}
	if len(qs1)+len(qs2) != len(b.Corpus.Queries) {
		t.Fatal("subsets do not partition the queries")
	}
	if corpus.QS1.String() != "QS-1" || corpus.QS2.String() != "QS-2" {
		t.Fatal("subset names wrong")
	}
}

func TestWriteRunRoundTrip(t *testing.T) {
	b := quickBench(t)
	var buf strings.Builder
	if err := b.WriteRun(&buf, "ExS", "LD", corpus.Moderate, 10); err != nil {
		t.Fatal(err)
	}
	run, err := eval.ParseRun(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(run) == 0 {
		t.Fatal("empty run")
	}
	for qid, docs := range run {
		if len(docs) == 0 || len(docs) > 10 {
			t.Fatalf("query %s has %d docs", qid, len(docs))
		}
	}
	if err := b.WriteRun(&buf, "nope", "LD", corpus.Short, 5); err == nil {
		t.Fatal("unknown method must error")
	}
}

func TestChurnReport(t *testing.T) {
	b := quickBench(t)
	c, err := b.ChurnReport(10)
	if err != nil {
		t.Fatal(err)
	}
	if !c.EquivalentToFresh {
		t.Fatal("churned store diverged from a fresh rebuild")
	}
	if c.ChurnFraction < 0.2 {
		t.Fatalf("churn fraction %.2f below the 20%% floor", c.ChurnFraction)
	}
	if c.Deleted == 0 || c.Updated == 0 || c.Added == 0 {
		t.Fatalf("missing mutation kinds: %+v", c)
	}
	if c.Seals == 0 || c.Compactions == 0 {
		t.Fatalf("no maintenance happened: seals=%d compactions=%d", c.Seals, c.Compactions)
	}
	if c.SegmentsAfter != 1 {
		t.Fatalf("compaction left %d segments", c.SegmentsAfter)
	}
	if c.WriteOpsPerSec <= 0 || c.ChurnSamples == 0 {
		t.Fatalf("empty measurements: %+v", c)
	}
}

func TestStorageTableRenders(t *testing.T) {
	b := quickBench(t)
	out, err := b.RunStorageTable()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ExS", "ANNS", "CTS", "vector bytes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("storage table misses %q:\n%s", want, out)
		}
	}
}
