// Package experiments is the harness that regenerates every table and
// figure of the paper's evaluation (§5): build the corpora at the three
// partition sizes, stand up the eight methods (CTS, ANNS, ExS and the five
// baselines), score retrieval quality with MAP/MRR/NDCG on the held-out
// judged pairs, and time queries.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"semdisco/internal/baselines"
	"semdisco/internal/core"
	"semdisco/internal/corpus"
	"semdisco/internal/embed"
	"semdisco/internal/eval"
	"semdisco/internal/obs"
	"semdisco/internal/table"
)

// Methods lists the eight systems in the paper's order of introduction.
var Methods = []string{"CTS", "ANNS", "ExS", "MDR", "WS", "TCS", "AdH", "TML"}

// buildPhases are the instrumented index-construction stages, in pipeline
// order (see core.MetricBuildSeconds).
var buildPhases = []string{"umap", "hdbscan", "pq_train", "hnsw_insert"}

// Sizes are the paper's dataset partitions.
var Sizes = []string{"SD", "MD", "LD"}

// sizeFraction maps partition name to corpus fraction.
var sizeFraction = map[string]float64{"SD": 0.1, "MD": 0.5, "LD": 1.0}

// Setup configures a benchmark build.
type Setup struct {
	// Profile selects the corpus (corpus.WikiTables() or corpus.EDP()),
	// possibly Scaled.
	Profile corpus.Profile
	// Dim is the embedding dimensionality; 0 = the paper's 768.
	Dim int
	// Seed drives the encoder and all index construction.
	Seed int64
	// TrainBaselines fits MDR/WS/TCS on the training pair split, the way
	// the paper uses its 1,918 tuning pairs. Tuning MDR is by far the most
	// expensive step.
	TrainBaselines bool
	// SkipMethods names methods not to build (e.g. skip slow baselines in
	// quick runs).
	SkipMethods []string
	// Workers bounds index-construction parallelism (see core.BuildOptions):
	// 0 uses GOMAXPROCS, 1 forces the serial deterministic build.
	Workers int
}

// Bench holds the fully-built experiment state.
type Bench struct {
	Setup  Setup
	Corpus *corpus.Corpus
	// PerSize maps "SD"/"MD"/"LD" to the built methods over that subset.
	PerSize map[string]*SizedBench
}

// SizedBench is one dataset partition with its methods.
type SizedBench struct {
	Fed       *table.Federation
	Emb       *core.Embedded
	Model     *embed.Model
	Searchers map[string]core.Searcher
	// BuildTime records the wall-clock index-construction cost per method
	// (embedding time is shared and not included).
	BuildTime map[string]time.Duration
	// BuildBreakdown maps method -> build phase ("pq_train", "hnsw_insert",
	// "umap", "hdbscan") -> wall-clock cost, captured from the build-phase
	// gauges a per-method metrics registry records during construction.
	// Methods without instrumented phases (the baselines) have no entry.
	BuildBreakdown map[string]map[string]time.Duration
	// Qrels is the full judgment set restricted to this partition's
	// relations; TestQrels the held-out subset of it.
	Qrels     eval.Qrels
	TestQrels eval.Qrels
}

// NewBench generates the corpus and builds every method at every size.
func NewBench(setup Setup) (*Bench, error) {
	c := corpus.Generate(setup.Profile)
	b := &Bench{Setup: setup, Corpus: c, PerSize: make(map[string]*SizedBench)}
	skip := make(map[string]bool, len(setup.SkipMethods))
	for _, m := range setup.SkipMethods {
		skip[m] = true
	}
	for _, size := range Sizes {
		sb, err := b.buildSize(size, skip)
		if err != nil {
			return nil, fmt.Errorf("experiments: building %s: %w", size, err)
		}
		b.PerSize[size] = sb
	}
	return b, nil
}

func (b *Bench) buildSize(size string, skip map[string]bool) (*SizedBench, error) {
	c := b.Corpus
	fed := c.Federation.Subset(sizeFraction[size])
	model := c.NewEncoder(b.Setup.Dim, b.Setup.Seed)
	emb := core.EmbedFederation(fed, model)

	sb := &SizedBench{
		Fed:            fed,
		Emb:            emb,
		Model:          model,
		Searchers:      make(map[string]core.Searcher),
		BuildTime:      make(map[string]time.Duration),
		BuildBreakdown: make(map[string]map[string]time.Duration),
		Qrels:          restrictQrels(c.Qrels, fed),
		TestQrels:      restrictQrels(c.TestQrels, fed),
	}
	// build constructs one method's index and records its wall-clock cost,
	// plus the per-phase breakdown: a fresh metrics registry is attached for
	// the duration of the build so each method's phase gauges are isolated.
	build := func(name string, fn func() (core.Searcher, error)) error {
		prevObs := emb.Obs
		reg := obs.NewRegistry()
		emb.Obs = reg
		start := time.Now()
		s, err := fn()
		emb.Obs = prevObs
		if err != nil {
			return err
		}
		sb.Searchers[name] = s
		sb.BuildTime[name] = time.Since(start)
		breakdown := make(map[string]time.Duration)
		for _, phase := range buildPhases {
			if sec := reg.Gauge(obs.L(core.MetricBuildSeconds, "phase", phase)).Value(); sec > 0 {
				breakdown[phase] = time.Duration(sec * float64(time.Second))
			}
		}
		if len(breakdown) > 0 {
			sb.BuildBreakdown[name] = breakdown
		}
		return nil
	}

	if !skip["ExS"] {
		// Single-threaded scan: Algorithm 1 as written, so the latency
		// figures reflect the brute-force cost the paper reports.
		noParallel := false
		_ = build("ExS", func() (core.Searcher, error) {
			return core.NewExS(emb, core.ExSOptions{Parallel: &noParallel}), nil
		})
	}
	buildOpts := core.BuildOptions{Workers: b.Setup.Workers}
	if !skip["ANNS"] {
		if err := build("ANNS", func() (core.Searcher, error) {
			return core.NewANNS(emb, core.ANNSOptions{Seed: b.Setup.Seed, Build: buildOpts})
		}); err != nil {
			return nil, err
		}
	}
	if !skip["CTS"] {
		if err := build("CTS", func() (core.Searcher, error) {
			return core.NewCTS(emb, core.CTSOptions{Seed: b.Setup.Seed, Build: buildOpts})
		}); err != nil {
			return nil, err
		}
	}

	needCtx := false
	for _, m := range []string{"MDR", "WS", "TCS", "AdH", "TML"} {
		if !skip[m] {
			needCtx = true
		}
	}
	if needCtx {
		ctx := baselines.NewContext(fed, model)
		trainQ := map[string]string{}
		for _, q := range c.Queries {
			trainQ[q.ID] = q.Text
		}
		if !skip["MDR"] {
			_ = build("MDR", func() (core.Searcher, error) {
				mdr := baselines.NewMDR(ctx, baselines.MDROptions{})
				if b.Setup.TrainBaselines {
					mdr.Tune(trainQ, restrictQrels(c.TrainQrels, fed))
				}
				return mdr, nil
			})
		}
		if !skip["WS"] {
			_ = build("WS", func() (core.Searcher, error) {
				ws := baselines.NewWS(ctx)
				if b.Setup.TrainBaselines {
					ws.Train(trainQ, restrictQrels(c.TrainQrels, fed))
				}
				return ws, nil
			})
		}
		if !skip["TCS"] {
			_ = build("TCS", func() (core.Searcher, error) {
				tcs := baselines.NewTCS(ctx, b.Setup.Seed)
				if b.Setup.TrainBaselines {
					tcs.Train(trainQ, restrictQrels(c.TrainQrels, fed))
				}
				return tcs, nil
			})
		}
		if !skip["AdH"] {
			_ = build("AdH", func() (core.Searcher, error) { return baselines.NewAdH(ctx, 0), nil })
		}
		if !skip["TML"] {
			_ = build("TML", func() (core.Searcher, error) { return baselines.NewTML(ctx, 0), nil })
		}
	}
	return sb, nil
}

// restrictQrels drops judgments for relations outside the partition, so a
// smaller partition is evaluated against what it can actually retrieve —
// this is what makes quality rise as the corpus shrinks, as in the paper.
func restrictQrels(q eval.Qrels, fed *table.Federation) eval.Qrels {
	out := eval.Qrels{}
	for query, judged := range q {
		for rel, grade := range judged {
			if _, ok := fed.ByID(rel); ok {
				out.Add(query, rel, grade)
			}
		}
	}
	return out
}

// QualityCell is one (method, size, class) quality measurement.
type QualityCell struct {
	Method string
	Size   string
	Class  corpus.QueryClass
	Report eval.Report
}

// Quality evaluates one method on one partition for one query class
// against the held-out judged pairs, retrieving top-k (the paper reports
// NDCG up to cut-off 20, so k defaults to 20).
func (b *Bench) Quality(method, size string, class corpus.QueryClass, k int) (QualityCell, error) {
	if k == 0 {
		k = 20
	}
	sb := b.PerSize[size]
	s, ok := sb.Searchers[method]
	if !ok {
		return QualityCell{}, fmt.Errorf("experiments: method %s not built", method)
	}
	queries := b.Corpus.QueriesOf(class)
	run := eval.Run{}
	qrels := eval.Qrels{}
	for _, q := range queries {
		judged, ok := sb.TestQrels[q.ID]
		if !ok {
			continue
		}
		// Standard IR practice: a query with no relevant documents in this
		// partition cannot be scored and is skipped — otherwise shrinking
		// the corpus would only ever *lower* scores, the opposite of the
		// fewer-distractors effect the paper reports.
		hasRelevant := false
		for _, g := range judged {
			if g >= 1 {
				hasRelevant = true
				break
			}
		}
		if !hasRelevant {
			continue
		}
		for rel, g := range judged {
			qrels.Add(q.ID, rel, g)
		}
		ms, err := s.Search(q.Text, k)
		if err != nil {
			return QualityCell{}, err
		}
		ids := make([]string, len(ms))
		for i, m := range ms {
			ids[i] = m.RelationID
		}
		run[q.ID] = ids
	}
	return QualityCell{
		Method: method, Size: size, Class: class,
		Report: eval.Evaluate(qrels, run),
	}, nil
}

// QualityTable computes the full grid of one query class — the content of
// the paper's Table 1 (long), Table 2 (moderate) or Table 3 (short).
func (b *Bench) QualityTable(class corpus.QueryClass) ([]QualityCell, error) {
	var cells []QualityCell
	for _, size := range []string{"LD", "MD", "SD"} { // paper's row order
		for _, m := range Methods {
			if _, ok := b.PerSize[size].Searchers[m]; !ok {
				continue
			}
			cell, err := b.Quality(m, size, class, 20)
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell)
		}
		// Within a size block the paper sorts by MAP descending.
		start := len(cells) - countBuilt(b, size)
		block := cells[start:]
		sort.SliceStable(block, func(i, j int) bool {
			return block[i].Report.MAP > block[j].Report.MAP
		})
	}
	return cells, nil
}

func countBuilt(b *Bench, size string) int { return len(b.PerSize[size].Searchers) }

// WriteRun executes one method over a query class on a partition and
// writes the ranked results as a TREC run file, so external tooling (or
// cmd/semdisco-eval) can score and compare methods.
func (b *Bench) WriteRun(w io.Writer, method, size string, class corpus.QueryClass, k int) error {
	if k <= 0 {
		k = 20
	}
	sb := b.PerSize[size]
	s, ok := sb.Searchers[method]
	if !ok {
		return fmt.Errorf("experiments: method %s not built", method)
	}
	run := eval.Run{}
	for _, q := range b.Corpus.QueriesOf(class) {
		ms, err := s.Search(q.Text, k)
		if err != nil {
			return err
		}
		ids := make([]string, len(ms))
		for i, m := range ms {
			ids[i] = m.RelationID
		}
		run[q.ID] = ids
	}
	return eval.WriteRun(w, run, method)
}

// LatencyCell is one (method, size, class) timing measurement.
type LatencyCell struct {
	Method string
	Size   string
	Class  corpus.QueryClass
	// MeanMS, P50MS and P95MS are over the class's queries.
	MeanMS, P50MS, P95MS float64
}

// Latency times one method over all queries of the class on one partition.
// Each query runs once (the encoder's token cache is pre-warmed by a
// throwaway query so timings reflect steady state).
func (b *Bench) Latency(method, size string, class corpus.QueryClass, k int) (LatencyCell, error) {
	if k == 0 {
		k = 20
	}
	sb := b.PerSize[size]
	s, ok := sb.Searchers[method]
	if !ok {
		return LatencyCell{}, fmt.Errorf("experiments: method %s not built", method)
	}
	queries := b.Corpus.QueriesOf(class)
	if len(queries) == 0 {
		return LatencyCell{}, fmt.Errorf("experiments: no %v queries", class)
	}
	if _, err := s.Search(queries[0].Text, k); err != nil { // warm-up
		return LatencyCell{}, err
	}
	durations := make([]float64, 0, len(queries))
	var total float64
	for _, q := range queries {
		start := time.Now()
		if _, err := s.Search(q.Text, k); err != nil {
			return LatencyCell{}, err
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		durations = append(durations, ms)
		total += ms
	}
	sort.Float64s(durations)
	p95 := len(durations) * 95 / 100
	if p95 >= len(durations) {
		p95 = len(durations) - 1
	}
	return LatencyCell{
		Method: method, Size: size, Class: class,
		MeanMS: total / float64(len(durations)),
		P50MS:  durations[len(durations)/2],
		P95MS:  durations[p95],
	}, nil
}
