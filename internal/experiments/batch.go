package experiments

import (
	"context"
	"fmt"
	"time"

	"semdisco/internal/core"
	"semdisco/internal/obs"
)

// batchBenchSize is the block size of the -batch section: 64 queries, the
// shape the acceptance criterion is stated in and large enough that the
// blocked kernels amortize every value-vector load across a full register
// block of queries.
const batchBenchSize = 64

// batchBenchMinTime is how long each timed side (sequential, batched) runs:
// repetitions accumulate until the clock passes this floor, so QPS numbers
// come from many batch executions rather than one noisy measurement.
const batchBenchMinTime = 200 * time.Millisecond

// BatchMethodJSON is one method's batched-execution measurement: the
// sequential per-query loop and the fused batch path timed over the same
// 64-query block, as throughput (QPS) with the batch/sequential speedup.
type BatchMethodJSON struct {
	Method  string `json:"method"`
	Queries int    `json:"queries"`
	// SequentialQPS is the per-query SearchEncoded loop's throughput.
	SequentialQPS float64 `json:"sequential_qps"`
	// BatchQPS is the fused SearchEncodedBatch path's throughput.
	BatchQPS float64 `json:"batch_qps"`
	// Speedup is BatchQPS / SequentialQPS — the headline number.
	Speedup float64 `json:"speedup"`
	// Identical reports every batch row matched its sequential counterpart
	// exactly (same relations, bit-identical scores).
	Identical bool `json:"identical"`
}

// BatchReportJSON is the -batch section of the benchmark report.
type BatchReportJSON struct {
	BatchSize int               `json:"batch_size"`
	Methods   []BatchMethodJSON `json:"methods"`
}

// BatchReport measures batched execution on the LD partition: a 64-query
// block (benchmark queries, cycled) runs through each core method's
// sequential SearchEncoded loop and its fused SearchEncodedBatch path,
// encoding outside both timed regions so the comparison isolates the scan.
// ExS rows must be — and are checked — bit-identical between the two paths;
// ANNS and CTS are checked the same way (their fused paths only amortize
// scratch state and cluster probes, never changing any walk).
func (b *Bench) BatchReport(k int) (*BatchReportJSON, error) {
	if k <= 0 {
		k = 20
	}
	sb := b.PerSize["LD"]
	if len(b.Corpus.Queries) == 0 {
		return nil, fmt.Errorf("experiments: corpus has no queries")
	}
	qs := make([][]float32, batchBenchSize)
	ks := make([]int, batchBenchSize)
	for i := range qs {
		q := b.Corpus.Queries[i%len(b.Corpus.Queries)]
		qs[i] = sb.Model.Encode(q.Text)
		ks[i] = k
	}
	ctx := context.Background()

	r := &BatchReportJSON{BatchSize: batchBenchSize}
	for _, method := range []string{"ExS", "ANNS", "CTS"} {
		s, ok := sb.Searchers[method]
		if !ok {
			continue
		}
		es, ok := s.(core.EncodedSearcher)
		if !ok {
			return nil, fmt.Errorf("experiments: %s does not support encoded search", method)
		}
		bs, ok := s.(core.BatchSearcher)
		if !ok {
			return nil, fmt.Errorf("experiments: %s does not support batched search", method)
		}

		// Correctness first (untimed): every batch row must equal the
		// sequential answer.
		seq := make([][]core.Match, batchBenchSize)
		for i := range qs {
			m, err := es.SearchEncoded(ctx, qs[i], ks[i])
			if err != nil {
				return nil, err
			}
			seq[i] = m
		}
		costs := make([]*obs.Cost, batchBenchSize)
		for i := range costs {
			costs[i] = &obs.Cost{}
		}
		batch, err := bs.SearchEncodedBatch(ctx, qs, ks, costs)
		if err != nil {
			return nil, err
		}
		identical := matchRowsEqual(seq, batch)

		seqDur, reps, err := timeBatch(func() error {
			for i := range qs {
				if _, err := es.SearchEncoded(ctx, qs[i], ks[i]); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		seqQPS := float64(reps*batchBenchSize) / seqDur.Seconds()

		batchDur, reps, err := timeBatch(func() error {
			_, err := bs.SearchEncodedBatch(ctx, qs, ks, nil)
			return err
		})
		if err != nil {
			return nil, err
		}
		batchQPS := float64(reps*batchBenchSize) / batchDur.Seconds()

		mr := BatchMethodJSON{
			Method:        method,
			Queries:       batchBenchSize,
			SequentialQPS: seqQPS,
			BatchQPS:      batchQPS,
			Identical:     identical,
		}
		if seqQPS > 0 {
			mr.Speedup = batchQPS / seqQPS
		}
		r.Methods = append(r.Methods, mr)
	}
	return r, nil
}

// timeBatch runs fn repeatedly — one warm-up, then timed repetitions until
// batchBenchMinTime accumulates — and reports the timed total and count.
func timeBatch(fn func() error) (time.Duration, int, error) {
	if err := fn(); err != nil {
		return 0, 0, err
	}
	var total time.Duration
	reps := 0
	for total < batchBenchMinTime {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, 0, err
		}
		total += time.Since(start)
		reps++
	}
	return total, reps, nil
}

// matchRowsEqual reports whether two result sets agree row by row, match by
// match, with bit-identical scores.
func matchRowsEqual(a, b [][]core.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}
