package experiments

import (
	"fmt"
	"sort"
	"time"

	"semdisco/internal/core"
	"semdisco/internal/corpus"
	"semdisco/internal/segment"
	"semdisco/internal/table"
)

// ChurnReportJSON is the mutable-storage section of the benchmark report:
// sustained write throughput against the segment store, search latency with
// and without concurrent churn, the compaction pause, and the equivalence
// check against an engine freshly built from the surviving corpus.
type ChurnReportJSON struct {
	Relations int `json:"relations"`
	Deleted   int `json:"deleted"`
	Updated   int `json:"updated"`
	Added     int `json:"added"`
	// ChurnFraction is (deleted+updated)/starting relations.
	ChurnFraction float64 `json:"churn_fraction"`
	Seals         int64   `json:"seals"`
	Compactions   int64   `json:"compactions"`
	SegmentsAfter int     `json:"segments_after"`
	// WriteOpsPerSec is mutation throughput (adds, deletes, updates and the
	// maintenance passes they kick) over the timed churn phase.
	WriteOpsPerSec float64 `json:"write_ops_per_sec"`
	// QuietLatency times searches over the multi-segment store with no
	// concurrent writers; ChurnLatency times them while a writer goroutine
	// deletes and re-adds relations. Both use the moderate query class.
	QuietLatency LatencyJSON `json:"quiet_latency"`
	ChurnLatency LatencyJSON `json:"churn_latency"`
	// ChurnSamples counts the searches behind ChurnLatency.
	ChurnSamples int `json:"churn_samples"`
	// CompactionPauseMS is the wall clock of the final full compaction —
	// the window a naive (non-RCU) design would block searches for.
	CompactionPauseMS float64 `json:"compaction_pause_ms"`
	// EquivalentToFresh reports whether, after the churn and compaction,
	// every moderate and long query returned results bit-identical to a
	// fresh ExS engine built from the surviving corpus — the storage
	// engine's correctness invariant.
	EquivalentToFresh bool `json:"equivalent_to_fresh"`
}

func latencyFrom(durations []float64) LatencyJSON {
	if len(durations) == 0 {
		return LatencyJSON{}
	}
	var total float64
	for _, d := range durations {
		total += d
	}
	sort.Float64s(durations)
	p95 := len(durations) * 95 / 100
	if p95 >= len(durations) {
		p95 = len(durations) - 1
	}
	return LatencyJSON{
		MeanMS: total / float64(len(durations)),
		P50MS:  durations[len(durations)/2],
		P95MS:  durations[p95],
	}
}

// ChurnReport wraps the LD partition's ExS index in a segment store (sharing
// the partition's encoder, so vectors are identical), churns it — deletes,
// content updates, fresh adds, seals — and measures write throughput, search
// latency under concurrent writes, and the compaction pause. It then
// verifies the churned, compacted store ranks bit-identically to an index
// built from scratch over the surviving corpus.
func (b *Bench) ChurnReport(k int) (*ChurnReportJSON, error) {
	if k <= 0 {
		k = 20
	}
	sb := b.PerSize["LD"]
	rels := sb.Fed.Relations()
	if len(rels) < 8 {
		return nil, fmt.Errorf("experiments: LD partition too small for churn (%d relations)", len(rels))
	}

	// Embed afresh rather than reusing sb.Emb: the segment store takes
	// ownership of its base Embedded (tombstones, relation order) and the
	// bench's copy backs the other report sections.
	build := func(e *core.Embedded) (core.EncodedSearcher, error) {
		return core.NewExS(e, core.ExSOptions{}), nil
	}
	emb := core.EmbedFederation(sb.Fed, sb.Model)
	st := core.NewSegmentStore(emb, core.NewExS(emb, core.ExSOptions{}), core.SegmentStoreOptions{
		Build:  build,
		Method: "ExS",
		Policy: segment.Policy{
			// Small mutable segment so the churn produces real seals, and
			// only manual/segment-count compaction so the timed phases are
			// deterministic.
			MaxMutableValues: 64,
			MaxSegments:      8,
			MaxDeadFraction:  -1,
			MaxMedoidDrift:   -1,
			MaxPQDistortion:  -1,
		},
	})

	// live tracks the content each live relation should have at the end,
	// for the fresh rebuild.
	live := make(map[string]*table.Relation, len(rels))
	for _, r := range rels {
		live[r.ID] = r
	}
	queries := b.Corpus.QueriesOf(corpus.Moderate)
	if len(queries) == 0 {
		return nil, fmt.Errorf("experiments: no moderate queries")
	}

	report := &ChurnReportJSON{Relations: len(rels)}

	// Quiet baseline: search latency over the untouched store.
	if _, err := st.Search(queries[0].Text, k); err != nil { // warm-up
		return nil, err
	}
	quiet := make([]float64, 0, len(queries))
	for _, q := range queries {
		start := time.Now()
		if _, err := st.Search(q.Text, k); err != nil {
			return nil, err
		}
		quiet = append(quiet, float64(time.Since(start).Microseconds())/1000)
	}
	report.QuietLatency = latencyFrom(quiet)

	// Timed churn phase: delete a quarter, rewrite an eighth, add an
	// eighth, with the seal-kicked maintenance passes the writes trigger.
	ops := 0
	churnStart := time.Now()
	for i, r := range rels {
		switch {
		case i%4 == 0:
			if err := st.Delete(r.ID); err != nil {
				return nil, err
			}
			delete(live, r.ID)
			report.Deleted++
			ops++
		case i%8 == 1:
			up := *r
			up.Caption = r.Caption + " churn rewrite"
			if err := st.Update(&up); err != nil {
				return nil, err
			}
			live[r.ID] = &up
			report.Updated++
			ops++
		}
		if ops > 0 && ops%32 == 0 {
			if err := st.Maintain(); err != nil {
				return nil, err
			}
		}
	}
	added := len(rels) / 8
	for i := 0; i < added; i++ {
		src := rels[(i*4)%len(rels)] // a deleted slot's content, reborn
		add := *src
		add.ID = fmt.Sprintf("churn-add-%d", i)
		add.Caption = src.Caption + " readmitted"
		if err := st.Add(&add); err != nil {
			return nil, err
		}
		live[add.ID] = &add
		report.Added++
		ops++
	}
	if err := st.Maintain(); err != nil {
		return nil, err
	}
	elapsed := time.Since(churnStart).Seconds()
	if elapsed > 0 {
		report.WriteOpsPerSec = float64(ops) / elapsed
	}
	report.ChurnFraction = float64(report.Deleted+report.Updated) / float64(len(rels))

	// Search latency under concurrent churn: a writer goroutine deletes and
	// re-adds relations (net corpus unchanged) while we time searches.
	victims := make([]*table.Relation, 0, len(rels)/4)
	for i, r := range rels {
		if i%4 == 2 {
			victims = append(victims, r)
		}
	}
	done := make(chan error, 1)
	go func() {
		for _, r := range victims {
			if err := st.Delete(r.ID); err != nil {
				done <- err
				return
			}
			if err := st.Add(r); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	churned := make([]float64, 0, 256)
	var writerErr error
measure:
	for qi := 0; len(churned) < 512; qi++ {
		start := time.Now()
		if _, err := st.Search(queries[qi%len(queries)].Text, k); err != nil {
			<-done
			return nil, err
		}
		churned = append(churned, float64(time.Since(start).Microseconds())/1000)
		select {
		case writerErr = <-done:
			break measure
		default:
		}
	}
	if writerErr == nil && len(churned) >= 512 {
		writerErr = <-done
	}
	if writerErr != nil {
		return nil, writerErr
	}
	report.ChurnLatency = latencyFrom(churned)
	report.ChurnSamples = len(churned)

	// Compaction pause: the wall clock of folding everything back into one
	// sealed segment. Searches keep running against the old manifest during
	// this window; the measurement is what a stop-the-world design would pay.
	start := time.Now()
	if err := st.Compact(); err != nil {
		return nil, err
	}
	report.CompactionPauseMS = float64(time.Since(start).Microseconds()) / 1000

	stats := st.Stats()
	report.Seals = stats.Seals
	report.Compactions = stats.Compactions
	report.SegmentsAfter = stats.Segments

	// Rebuild from scratch over the survivors, in the store's insertion
	// order, and demand bit-identical rankings on every moderate and long
	// query.
	fed := table.NewFederation()
	for _, id := range st.LiveRelations() {
		r, ok := live[id]
		if !ok {
			return nil, fmt.Errorf("experiments: live relation %q missing from churn ledger", id)
		}
		if err := fed.Add(r); err != nil {
			return nil, err
		}
	}
	fresh := core.NewExS(core.EmbedFederation(fed, sb.Model), core.ExSOptions{})
	report.EquivalentToFresh = true
	check := append(append([]corpus.Query{}, queries...), b.Corpus.QueriesOf(corpus.Long)...)
	for _, q := range check {
		got, err := st.Search(q.Text, k)
		if err != nil {
			return nil, err
		}
		want, err := fresh.Search(q.Text, k)
		if err != nil {
			return nil, err
		}
		if !matchesEqual(got, want) {
			report.EquivalentToFresh = false
		}
	}
	return report, nil
}
