package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"semdisco/internal/core"
	"semdisco/internal/obs"
)

// MethodCostJSON is one method's cost-model numbers on the LD partition:
// the mean per-query work counts accumulated by the cost-accounting
// subsystem, averaged over every benchmark query. DistanceComps is the
// unit the paper's complexity arguments are stated in — ExS pays one per
// indexed value, ANNS/CTS only for the vectors their index walks touch.
type MethodCostJSON struct {
	Method  string `json:"method"`
	Queries int    `json:"queries"`
	// MeanDistanceComps is full-precision distance computations per query.
	MeanDistanceComps float64 `json:"mean_distance_comps"`
	// MeanHNSWHops is graph hops per query (ANNS/CTS only).
	MeanHNSWHops float64 `json:"mean_hnsw_hops,omitempty"`
	// MeanPQLookups is ADC table lookups per query (ANNS with PQ on).
	MeanPQLookups float64 `json:"mean_pq_lookups,omitempty"`
	// MeanBytesScanned is vector bytes read per query.
	MeanBytesScanned float64 `json:"mean_bytes_scanned,omitempty"`
	// MeanCandidatesGenerated / Pruned summarize selectivity.
	MeanCandidatesGenerated float64 `json:"mean_candidates_generated,omitempty"`
	MeanCandidatesPruned    float64 `json:"mean_candidates_pruned,omitempty"`
}

// CostReportJSON is the -cost section of the benchmark report: per-method
// cost-model numbers plus the measured overhead of the accounting itself
// (the same ExS queries with and without a Cost accumulator in the
// context, p50 compared — the counters are flushed per chunk, so the
// delta should drown in run-to-run noise).
type CostReportJSON struct {
	Methods []MethodCostJSON `json:"methods"`
	// Overhead of accounting on ExS p50, measured like TracingReport.
	BaselineP50MS  float64 `json:"baseline_p50_ms"`
	AccountedP50MS float64 `json:"accounted_p50_ms"`
	// OverheadPct is (accounted - baseline) / baseline on the p50, in
	// percent. Negative values mean the difference drowned in noise.
	OverheadPct float64 `json:"overhead_pct"`
}

// CostReport runs every benchmark query through each core method on the
// LD partition with a cost accumulator attached and reports the mean
// per-query work counts, then measures what the accounting costs: the
// ExS query set timed with and without a Cost in the context.
func (b *Bench) CostReport(k int) (*CostReportJSON, error) {
	if k <= 0 {
		k = 20
	}
	sb := b.PerSize["LD"]
	ctx := context.Background()
	r := &CostReportJSON{}
	for _, method := range []string{"ExS", "ANNS", "CTS"} {
		s, ok := sb.Searchers[method]
		if !ok {
			continue
		}
		cs, ok := s.(core.ContextSearcher)
		if !ok {
			return nil, fmt.Errorf("experiments: %s does not support context search", method)
		}
		var sum obs.CostReport
		for _, q := range b.Corpus.Queries {
			cost := &obs.Cost{}
			if _, err := cs.SearchTracedContext(obs.ContextWithCost(ctx, cost), q.Text, k, nil); err != nil {
				return nil, err
			}
			sum.Add(cost.Report())
		}
		n := float64(len(b.Corpus.Queries))
		r.Methods = append(r.Methods, MethodCostJSON{
			Method:                  method,
			Queries:                 len(b.Corpus.Queries),
			MeanDistanceComps:       float64(sum.DistanceComps) / n,
			MeanHNSWHops:            float64(sum.HNSWHops) / n,
			MeanPQLookups:           float64(sum.PQLookups) / n,
			MeanBytesScanned:        float64(sum.BytesScanned) / n,
			MeanCandidatesGenerated: float64(sum.CandidatesGenerated) / n,
			MeanCandidatesPruned:    float64(sum.CandidatesPruned) / n,
		})
	}

	s, ok := sb.Searchers["ExS"]
	if !ok {
		return r, nil
	}
	cs := s.(core.ContextSearcher)
	run := func(accounted bool) ([]float64, error) {
		// One untimed pass warms the encoder cache so both runs pay it.
		for _, q := range b.Corpus.Queries {
			if _, err := cs.SearchTracedContext(ctx, q.Text, k, nil); err != nil {
				return nil, err
			}
		}
		durations := make([]float64, 0, tracingReps*len(b.Corpus.Queries))
		for rep := 0; rep < tracingReps; rep++ {
			for _, q := range b.Corpus.Queries {
				qctx := ctx
				if accounted {
					qctx = obs.ContextWithCost(ctx, &obs.Cost{})
				}
				start := time.Now()
				if _, err := cs.SearchTracedContext(qctx, q.Text, k, nil); err != nil {
					return nil, err
				}
				durations = append(durations, float64(time.Since(start).Microseconds())/1000)
			}
		}
		sort.Float64s(durations)
		return durations, nil
	}
	baseline, err := run(false)
	if err != nil {
		return nil, err
	}
	accounted, err := run(true)
	if err != nil {
		return nil, err
	}
	r.BaselineP50MS = baseline[len(baseline)/2]
	r.AccountedP50MS = accounted[len(accounted)/2]
	if r.BaselineP50MS > 0 {
		r.OverheadPct = (r.AccountedP50MS - r.BaselineP50MS) / r.BaselineP50MS * 100
	}
	return r, nil
}
