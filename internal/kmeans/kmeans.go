// Package kmeans implements Lloyd's algorithm with k-means++ seeding on
// float32 vectors. It is the training routine behind the Product
// Quantization codebooks and is exposed separately because the experiment
// harness also uses it for diagnostics.
//
// Training parallelizes across points (Config.Workers) without giving up
// determinism: only the embarrassingly-parallel per-point computations —
// nearest-centroid assignment and the D² updates of the ++ seeding — are
// sharded, while every floating-point reduction (inertia, centroid sums)
// runs serially in point order. Results are therefore bit-identical for a
// fixed seed regardless of worker count, including Workers: 1 versus the
// historical serial implementation.
package kmeans

import (
	"math"
	"math/rand"

	"semdisco/internal/par"
	"semdisco/internal/vec"
)

// Result holds a clustering: k centroids and the assignment of every input
// point to its nearest centroid.
type Result struct {
	Centroids  [][]float32
	Assignment []int
	// Inertia is the final sum of squared distances of points to their
	// assigned centroid.
	Inertia float64
	// Iterations actually executed before convergence or the cap.
	Iterations int
}

// Config controls training.
type Config struct {
	// K is the number of clusters; required, must be ≥ 1.
	K int
	// MaxIter caps Lloyd iterations. Defaults to 25.
	MaxIter int
	// Tol stops early when relative inertia improvement falls below it.
	// Defaults to 1e-4.
	Tol float64
	// Seed drives the k-means++ initialization.
	Seed int64
	// Workers bounds the parallelism of the assignment and seeding steps.
	// 0 or 1 runs serially; results do not depend on the value.
	Workers int
}

// parallelMinPoints gates the sharded paths: below this the goroutine
// fan-out costs more than the distance arithmetic it spreads.
const parallelMinPoints = 256

// Run clusters points (each of equal dimension) into cfg.K groups.
// If there are fewer distinct points than K, surplus centroids duplicate
// existing points; every centroid is still valid.
func Run(points [][]float32, cfg Config) Result {
	if cfg.K < 1 {
		panic("kmeans: K must be >= 1")
	}
	if len(points) == 0 {
		panic("kmeans: no points")
	}
	if cfg.MaxIter == 0 {
		cfg.MaxIter = 25
	}
	if cfg.Tol == 0 {
		cfg.Tol = 1e-4
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if len(points) < parallelMinPoints {
		workers = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	k := cfg.K
	if k > len(points) {
		k = len(points)
	}
	centroids := seedPlusPlus(points, k, rng, workers)
	// Pad duplicated centroids if the caller asked for more clusters than
	// points; keeps downstream code simple (always exactly cfg.K entries).
	for len(centroids) < cfg.K {
		centroids = append(centroids, vec.Clone(points[rng.Intn(len(points))]))
	}

	assign := make([]int, len(points))
	bestD := make([]float32, len(points))
	counts := make([]int, cfg.K)
	prevInertia := math.Inf(1)
	var inertia float64
	iter := 0
	for ; iter < cfg.MaxIter; iter++ {
		// Assignment: each point's nearest centroid is independent, so the
		// scan shards freely; per-point distances land in bestD and the
		// inertia reduction below runs in point order, keeping the float64
		// sum identical to the serial loop.
		par.For(len(points), workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				p := points[i]
				best, d := 0, float32(math.MaxFloat32)
				for c, cent := range centroids {
					if dc := vec.L2Sq(p, cent); dc < d {
						best, d = c, dc
					}
				}
				assign[i] = best
				bestD[i] = d
			}
		})
		inertia = 0
		for i := range points {
			inertia += float64(bestD[i])
		}
		// Recompute centroids. Serial in point order: the accumulation
		// order defines the float32 rounding, and O(n·dim) is negligible
		// next to the O(n·k·dim) assignment above.
		dim := len(points[0])
		sums := make([][]float32, cfg.K)
		for c := range sums {
			sums[c] = make([]float32, dim)
			counts[c] = 0
		}
		for i, p := range points {
			vec.Add(sums[assign[i]], p)
			counts[assign[i]]++
		}
		for c := range sums {
			if counts[c] == 0 {
				// Empty cluster: reseat at the point farthest from its
				// centroid to avoid dead codewords.
				sums[c] = vec.Clone(points[farthestPoint(points, centroids, assign)])
				continue
			}
			vec.Scale(sums[c], 1/float32(counts[c]))
		}
		centroids = sums
		if prevInertia-inertia <= cfg.Tol*prevInertia {
			iter++
			break
		}
		prevInertia = inertia
	}
	return Result{Centroids: centroids, Assignment: assign, Inertia: inertia, Iterations: iter}
}

// seedPlusPlus picks k starting centroids with the k-means++ D² weighting.
// The per-point distance updates shard across workers; the weighted pick
// itself scans d2 serially, so the draw sequence matches the serial code.
func seedPlusPlus(points [][]float32, k int, rng *rand.Rand, workers int) [][]float32 {
	centroids := make([][]float32, 0, k)
	centroids = append(centroids, vec.Clone(points[rng.Intn(len(points))]))
	d2 := make([]float64, len(points))
	par.For(len(points), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d2[i] = float64(vec.L2Sq(points[i], centroids[0]))
		}
	})
	for len(centroids) < k {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var next int
		if total <= 0 {
			next = rng.Intn(len(points))
		} else {
			target := rng.Float64() * total
			acc := 0.0
			next = len(points) - 1
			for i, d := range d2 {
				acc += d
				if acc >= target {
					next = i
					break
				}
			}
		}
		c := vec.Clone(points[next])
		centroids = append(centroids, c)
		par.For(len(points), workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if d := float64(vec.L2Sq(points[i], c)); d < d2[i] {
					d2[i] = d
				}
			}
		})
	}
	return centroids
}

// farthestPoint returns the index of the point with maximal distance to its
// assigned centroid, used to reseat empty clusters.
func farthestPoint(points, centroids [][]float32, assign []int) int {
	worst, worstD := 0, float32(-1)
	for i, p := range points {
		if d := vec.L2Sq(p, centroids[assign[i]]); d > worstD {
			worst, worstD = i, d
		}
	}
	return worst
}
