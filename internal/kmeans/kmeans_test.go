package kmeans

import (
	"math/rand"
	"runtime"
	"testing"

	"semdisco/internal/vec"
)

// blobs generates n points around each of the given centers with the given
// spread.
func blobs(centers [][]float32, n int, spread float32, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	var pts [][]float32
	for _, c := range centers {
		for i := 0; i < n; i++ {
			p := make([]float32, len(c))
			for d := range p {
				p[d] = c[d] + (rng.Float32()*2-1)*spread
			}
			pts = append(pts, p)
		}
	}
	return pts
}

func TestSeparatedBlobsRecovered(t *testing.T) {
	centers := [][]float32{{0, 0}, {10, 10}, {-10, 10}}
	pts := blobs(centers, 50, 0.5, 1)
	res := Run(pts, Config{K: 3, Seed: 1})
	if len(res.Centroids) != 3 {
		t.Fatalf("centroids=%d", len(res.Centroids))
	}
	// Every true center must have a learned centroid within 1.0.
	for _, c := range centers {
		found := false
		for _, got := range res.Centroids {
			if vec.L2(c, got) < 1.0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("no centroid near %v: %v", c, res.Centroids)
		}
	}
	// All points of the same blob must share an assignment.
	for b := 0; b < 3; b++ {
		first := res.Assignment[b*50]
		for i := 0; i < 50; i++ {
			if res.Assignment[b*50+i] != first {
				t.Fatalf("blob %d split across clusters", b)
			}
		}
	}
}

func TestInertiaDecreasesWithK(t *testing.T) {
	pts := blobs([][]float32{{0, 0}, {5, 5}, {10, 0}, {0, 10}}, 30, 1.0, 2)
	i1 := Run(pts, Config{K: 1, Seed: 3}).Inertia
	i4 := Run(pts, Config{K: 4, Seed: 3}).Inertia
	if i4 >= i1 {
		t.Fatalf("inertia should decrease with K: k1=%v k4=%v", i1, i4)
	}
}

func TestDeterministic(t *testing.T) {
	pts := blobs([][]float32{{0, 0}, {3, 3}}, 20, 0.5, 4)
	a := Run(pts, Config{K: 2, Seed: 9})
	b := Run(pts, Config{K: 2, Seed: 9})
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatal("same seed must give same assignment")
		}
	}
}

func TestKLargerThanPoints(t *testing.T) {
	pts := [][]float32{{0, 0}, {1, 1}}
	res := Run(pts, Config{K: 5, Seed: 1})
	if len(res.Centroids) != 5 {
		t.Fatalf("want 5 centroids, got %d", len(res.Centroids))
	}
	for _, a := range res.Assignment {
		if a < 0 || a >= 5 {
			t.Fatalf("assignment out of range: %d", a)
		}
	}
}

func TestSinglePoint(t *testing.T) {
	res := Run([][]float32{{2, 3}}, Config{K: 1, Seed: 1})
	if res.Centroids[0][0] != 2 || res.Centroids[0][1] != 3 {
		t.Fatalf("centroid=%v", res.Centroids[0])
	}
	if res.Inertia != 0 {
		t.Fatalf("inertia=%v", res.Inertia)
	}
}

func TestIdenticalPoints(t *testing.T) {
	pts := make([][]float32, 10)
	for i := range pts {
		pts[i] = []float32{1, 2, 3}
	}
	res := Run(pts, Config{K: 3, Seed: 5})
	if res.Inertia != 0 {
		t.Fatalf("identical points must give zero inertia, got %v", res.Inertia)
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("K=0", func() { Run([][]float32{{1}}, Config{K: 0}) })
	mustPanic("empty", func() { Run(nil, Config{K: 1}) })
}

// TestWorkerCountInvariance pins the determinism contract: for a fixed
// seed the result must be bit-identical for every worker count, because
// only per-point computations are sharded and every float reduction runs
// serially in point order. Uses > parallelMinPoints points so the sharded
// paths actually engage.
func TestWorkerCountInvariance(t *testing.T) {
	pts := blobs([][]float32{{0, 0, 0}, {6, 6, 6}, {-6, 6, 0}, {0, -6, 6}}, 120, 1.5, 11)
	if len(pts) < parallelMinPoints {
		t.Fatalf("test corpus too small (%d) to engage the parallel path", len(pts))
	}
	base := Run(pts, Config{K: 16, Seed: 11, Workers: 1})
	for _, workers := range []int{2, 3, 8} {
		got := Run(pts, Config{K: 16, Seed: 11, Workers: workers})
		if got.Inertia != base.Inertia || got.Iterations != base.Iterations {
			t.Fatalf("workers=%d: inertia %v iters %d, want %v / %d",
				workers, got.Inertia, got.Iterations, base.Inertia, base.Iterations)
		}
		for i := range base.Assignment {
			if got.Assignment[i] != base.Assignment[i] {
				t.Fatalf("workers=%d: assignment[%d] diverged", workers, i)
			}
		}
		for c := range base.Centroids {
			for d := range base.Centroids[c] {
				if got.Centroids[c][d] != base.Centroids[c][d] {
					t.Fatalf("workers=%d: centroid %d dim %d not bit-identical", workers, c, d)
				}
			}
		}
	}
}

func benchKMeans(b *testing.B, workers int) {
	rng := rand.New(rand.NewSource(21))
	pts := make([][]float32, 2048)
	for i := range pts {
		v := make([]float32, 32)
		for d := range v {
			v[d] = rng.Float32()
		}
		pts[i] = v
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(pts, Config{K: 64, Seed: 21, MaxIter: 10, Workers: workers})
	}
}

func BenchmarkRunSerial(b *testing.B)   { benchKMeans(b, 1) }
func BenchmarkRunParallel(b *testing.B) { benchKMeans(b, runtime.GOMAXPROCS(0)) }

func TestAssignmentIsNearest(t *testing.T) {
	pts := blobs([][]float32{{0, 0}, {8, 8}}, 40, 1.0, 7)
	res := Run(pts, Config{K: 2, Seed: 7})
	for i, p := range pts {
		best, bestD := 0, vec.L2Sq(p, res.Centroids[0])
		for c := 1; c < len(res.Centroids); c++ {
			if d := vec.L2Sq(p, res.Centroids[c]); d < bestD {
				best, bestD = c, d
			}
		}
		if res.Assignment[i] != best {
			t.Fatalf("point %d assigned %d but nearest is %d", i, res.Assignment[i], best)
		}
	}
}
