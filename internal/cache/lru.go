// Package cache provides a small, concurrency-safe LRU used by the cluster
// router to memoize query results. The design follows the classic
// map + intrusive doubly-linked-list shape (hash lookup O(1), recency
// update O(1)) rather than an approximate-frequency scheme: the router's
// working set is tiny (hot queries repeat verbatim) and strict LRU makes
// eviction order — and therefore tests — deterministic.
package cache

import (
	"sync"
	"sync/atomic"
)

// entry is one cache slot, linked into the recency list. prev is toward
// the most recently used end, next toward the least.
type entry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *entry[K, V]
}

// LRU is a fixed-capacity least-recently-used cache. All methods are safe
// for concurrent use. The zero value is not usable; construct with New.
type LRU[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	items    map[K]*entry[K, V]
	// head is most recently used, tail least. Both nil when empty.
	head, tail *entry[K, V]

	hits, misses atomic.Int64
}

// New returns an LRU holding at most capacity entries. capacity <= 0
// panics: a cache that can hold nothing is a configuration bug, not a
// degenerate mode worth supporting.
func New[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity <= 0 {
		panic("cache: capacity must be positive")
	}
	return &LRU[K, V]{
		capacity: capacity,
		items:    make(map[K]*entry[K, V], capacity),
	}
}

// Get returns the cached value and marks it most recently used. The hit
// and miss counters feed the router's observability.
func (c *LRU[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		c.misses.Add(1)
		var zero V
		return zero, false
	}
	c.hits.Add(1)
	c.moveToFront(e)
	return e.val, true
}

// Put inserts or updates a value, evicting the least recently used entry
// when the cache is full.
func (c *LRU[K, V]) Put(key K, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		e.val = val
		c.moveToFront(e)
		return
	}
	if len(c.items) >= c.capacity {
		c.evictTail()
	}
	e := &entry[K, V]{key: key, val: val}
	c.items[key] = e
	c.pushFront(e)
}

// Purge drops every entry. Counters are preserved: the hit rate of a
// router is a property of its query stream, not of invalidation events.
func (c *LRU[K, V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	clear(c.items)
	c.head, c.tail = nil, nil
}

// Len reports the current entry count.
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Stats reports the lifetime hit and miss counts.
func (c *LRU[K, V]) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// pushFront links e as the most recently used entry. Caller holds mu.
func (c *LRU[K, V]) pushFront(e *entry[K, V]) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// unlink removes e from the recency list. Caller holds mu.
func (c *LRU[K, V]) unlink(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// moveToFront marks e most recently used. Caller holds mu.
func (c *LRU[K, V]) moveToFront(e *entry[K, V]) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// evictTail drops the least recently used entry. Caller holds mu.
func (c *LRU[K, V]) evictTail() {
	if c.tail == nil {
		return
	}
	victim := c.tail
	c.unlink(victim)
	delete(c.items, victim.key)
}
