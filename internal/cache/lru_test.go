package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New[string, int](2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses; want 1, 1", hits, misses)
	}
}

func TestEvictionOrder(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a")    // a is now most recent
	c.Put("c", 3) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c should be present")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
}

func TestPutUpdatesAndRefreshes(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // update refreshes recency
	c.Put("c", 3)  // evicts b, not a
	if v, ok := c.Get("a"); !ok || v != 10 {
		t.Fatalf("Get(a) = %d, %v; want 10, true", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
}

func TestPurge(t *testing.T) {
	c := New[string, int](4)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("len after purge = %d", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("purged entry still present")
	}
	// Reuse after purge must work.
	c.Put("c", 3)
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Fatalf("Get(c) after purge = %d, %v", v, ok)
	}
}

func TestSingleCapacity(t *testing.T) {
	c := New[int, int](1)
	for i := 0; i < 10; i++ {
		c.Put(i, i)
		if v, ok := c.Get(i); !ok || v != i {
			t.Fatalf("Get(%d) = %d, %v", i, v, ok)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

func TestConcurrent(t *testing.T) {
	c := New[string, int](32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (w*31+i)%64)
				if i%3 == 0 {
					c.Put(key, i)
				} else {
					c.Get(key)
				}
				if i%97 == 0 {
					c.Purge()
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 32 {
		t.Fatalf("len %d exceeds capacity", c.Len())
	}
}
