package segment

import "time"

// Compaction and seal triggers, recorded on the compaction counter's
// "trigger" label and in segment stats so operators can see why maintenance
// ran.
const (
	// TriggerSegmentCount fires when the number of sealed segments exceeds
	// Policy.MaxSegments — the read-amplification bound.
	TriggerSegmentCount = "segment_count"
	// TriggerDeadFraction fires when tombstoned relations exceed
	// Policy.MaxDeadFraction of the corpus — the space/filter-cost bound.
	TriggerDeadFraction = "dead_fraction"
	// TriggerMedoidDrift fires when a sealed CTS segment's medoid drift
	// (1 − cos(medoid, live centroid)) grew past Policy.MaxMedoidDrift
	// beyond its build-time baseline: deletes shifted the live distribution
	// enough that the clustering should be re-fit.
	TriggerMedoidDrift = "medoid_drift"
	// TriggerPQDistortion fires when a sealed ANNS segment's mean PQ
	// reconstruction error over live values grew past Policy.MaxPQDistortion
	// beyond its build-time baseline: the codebook should be re-trained.
	TriggerPQDistortion = "pq_distortion"
	// TriggerManual marks an explicitly requested compaction.
	TriggerManual = "manual"
	// TriggerInterval marks a compaction started by the periodic ticker.
	TriggerInterval = "interval"
)

// Policy bounds the segment store's shape and decides when background
// maintenance runs. The zero value means "use the defaults"; a negative
// threshold disables that trigger.
type Policy struct {
	// MaxMutableValues seals the mutable segment once it holds at least
	// this many embedded values. Default 4096.
	MaxMutableValues int
	// MaxSegments compacts once more than this many sealed segments exist.
	// Default 4.
	MaxSegments int
	// MaxDeadFraction compacts once tombstoned relations exceed this
	// fraction of all relations. Default 0.2.
	MaxDeadFraction float64
	// MaxMedoidDrift compacts (re-clustering CTS) once a sealed segment's
	// mean medoid drift exceeds its build baseline by this much.
	// Default 0.15.
	MaxMedoidDrift float64
	// MaxPQDistortion compacts (re-training PQ) once a sealed segment's
	// mean PQ distortion exceeds its build baseline by this much.
	// Default 0.25.
	MaxPQDistortion float64
	// DriftCheckEvery evaluates the drift/distortion triggers only every
	// N mutations — IndexHealth walks the index, so it is not free.
	// Default 64.
	DriftCheckEvery int
	// Interval is the background compactor's periodic wake-up; 0 disables
	// the ticker (mutation-kicked maintenance still runs).
	Interval time.Duration
}

// Default thresholds; see the field docs on Policy.
const (
	DefaultMaxMutableValues = 4096
	DefaultMaxSegments      = 4
	DefaultMaxDeadFraction  = 0.2
	DefaultMaxMedoidDrift   = 0.15
	DefaultMaxPQDistortion  = 0.25
	DefaultDriftCheckEvery  = 64
)

// WithDefaults fills zero fields with the default thresholds. Negative
// fields pass through (the trigger stays disabled).
func (p Policy) WithDefaults() Policy {
	if p.MaxMutableValues == 0 {
		p.MaxMutableValues = DefaultMaxMutableValues
	}
	if p.MaxSegments == 0 {
		p.MaxSegments = DefaultMaxSegments
	}
	if p.MaxDeadFraction == 0 {
		p.MaxDeadFraction = DefaultMaxDeadFraction
	}
	if p.MaxMedoidDrift == 0 {
		p.MaxMedoidDrift = DefaultMaxMedoidDrift
	}
	if p.MaxPQDistortion == 0 {
		p.MaxPQDistortion = DefaultMaxPQDistortion
	}
	if p.DriftCheckEvery == 0 {
		p.DriftCheckEvery = DefaultDriftCheckEvery
	}
	return p
}
