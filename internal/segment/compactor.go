package segment

import (
	"sync"
	"time"
)

// Compactor runs a maintenance function in the background, woken either by
// an explicit Kick (the mutation path trips a threshold) or by a periodic
// ticker (for triggers that advance without mutations being the last word,
// like drift re-checks). Kicks are non-blocking and collapse: any number of
// kicks while a pass is running result in at most one follow-up pass.
// The run function itself decides whether anything needs doing.
type Compactor struct {
	interval time.Duration
	run      func(trigger string)

	kick chan struct{}
	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// NewCompactor returns a compactor that calls run on every wake-up with the
// trigger that woke it (TriggerManual for kicks, TriggerInterval for
// ticks). interval ≤ 0 disables the ticker. Call Start to begin.
func NewCompactor(interval time.Duration, run func(trigger string)) *Compactor {
	return &Compactor{
		interval: interval,
		run:      run,
		kick:     make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
}

// Start launches the background loop. Safe to call once; Stop terminates.
func (c *Compactor) Start() {
	c.wg.Add(1)
	go c.loop()
}

func (c *Compactor) loop() {
	defer c.wg.Done()
	var tick <-chan time.Time
	if c.interval > 0 {
		t := time.NewTicker(c.interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-c.done:
			return
		case <-c.kick:
			c.run(TriggerManual)
		case <-tick:
			c.run(TriggerInterval)
		}
	}
}

// Kick requests a maintenance pass without blocking. Kicks issued while a
// pass is pending coalesce into one.
func (c *Compactor) Kick() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// Stop terminates the loop and waits for any in-flight pass to finish.
// Safe to call more than once.
func (c *Compactor) Stop() {
	c.once.Do(func() { close(c.done) })
	c.wg.Wait()
}
