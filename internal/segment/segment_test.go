package segment

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestTombstonesBasic(t *testing.T) {
	ts := NewTombstones()
	if ts.Dead(0) || ts.Dead(1000) {
		t.Fatal("fresh set reports dead slots")
	}
	if ts.Count() != 0 {
		t.Fatalf("count = %d, want 0", ts.Count())
	}
	if !ts.Mark(3) {
		t.Fatal("first Mark(3) = false")
	}
	if ts.Mark(3) {
		t.Fatal("second Mark(3) = true")
	}
	if !ts.Dead(3) || ts.Dead(2) || ts.Dead(4) {
		t.Fatal("wrong slots dead after Mark(3)")
	}
	if !ts.Mark(200) { // forces bitmap growth across words
		t.Fatal("Mark(200) = false")
	}
	if !ts.Dead(200) || ts.Dead(199) {
		t.Fatal("wrong slots dead after Mark(200)")
	}
	if ts.Count() != 2 {
		t.Fatalf("count = %d, want 2", ts.Count())
	}
	got := ts.Slots()
	if len(got) != 2 || got[0] != 3 || got[1] != 200 {
		t.Fatalf("Slots() = %v, want [3 200]", got)
	}
	if ts.Mark(-1) {
		t.Fatal("Mark(-1) = true")
	}
	var nilT *Tombstones
	if nilT.Dead(0) || nilT.Count() != 0 || nilT.Slots() != nil {
		t.Fatal("nil tombstones not inert")
	}
}

// TestTombstonesConcurrent hammers Mark from many goroutines while readers
// spin on Dead — the COW discipline must keep every read tear-free and
// every mark exactly-once (run with -race).
func TestTombstonesConcurrent(t *testing.T) {
	ts := NewTombstones()
	const slots = 512
	var marked atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for s := 0; s < slots; s++ {
					ts.Dead(s)
				}
			}
		}()
	}
	var mw sync.WaitGroup
	for w := 0; w < 8; w++ {
		mw.Add(1)
		go func(w int) {
			defer mw.Done()
			for s := w; s < slots; s += 8 {
				if ts.Mark(s) {
					marked.Add(1)
				}
				// Every writer also tries a shared slot; only one wins.
				if ts.Mark(0) {
					marked.Add(1)
				}
			}
		}(w)
	}
	mw.Wait()
	close(stop)
	wg.Wait()
	if got := ts.Count(); got != slots {
		t.Fatalf("count = %d, want %d", got, slots)
	}
	if marked.Load() != slots {
		t.Fatalf("marked = %d, want %d", marked.Load(), slots)
	}
	for s := 0; s < slots; s++ {
		if !ts.Dead(s) {
			t.Fatalf("slot %d not dead", s)
		}
	}
}

func TestManifestSwapEpochs(t *testing.T) {
	m := NewManifest([]int{1})
	v, ep := m.Load()
	if ep != 0 || len(v) != 1 {
		t.Fatalf("initial Load = %v epoch %d", v, ep)
	}
	if got := m.Swap([]int{1, 2}); got != 1 {
		t.Fatalf("first swap epoch = %d, want 1", got)
	}
	if got := m.Swap([]int{1, 2, 3}); got != 2 {
		t.Fatalf("second swap epoch = %d, want 2", got)
	}
	v, ep = m.Load()
	if ep != 2 || len(v) != 3 {
		t.Fatalf("Load after swaps = %v epoch %d", v, ep)
	}
}

// TestManifestConcurrentReaders swaps views under spinning readers; each
// reader must always observe a self-consistent snapshot (length equals the
// value stamped into every element).
func TestManifestConcurrentReaders(t *testing.T) {
	mk := func(n int) []int {
		v := make([]int, n)
		for i := range v {
			v[i] = n
		}
		return v
	}
	m := NewManifest(mk(1))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, _ := m.Load()
				for _, x := range v {
					if x != len(v) {
						t.Error("torn view")
						return
					}
				}
			}
		}()
	}
	for n := 2; n < 200; n++ {
		m.Swap(mk(n))
	}
	close(stop)
	wg.Wait()
}

func TestPolicyWithDefaults(t *testing.T) {
	p := Policy{}.WithDefaults()
	if p.MaxMutableValues != DefaultMaxMutableValues ||
		p.MaxSegments != DefaultMaxSegments ||
		p.MaxDeadFraction != DefaultMaxDeadFraction ||
		p.MaxMedoidDrift != DefaultMaxMedoidDrift ||
		p.MaxPQDistortion != DefaultMaxPQDistortion ||
		p.DriftCheckEvery != DefaultDriftCheckEvery {
		t.Fatalf("defaults not applied: %+v", p)
	}
	// Explicit and disabled values pass through untouched.
	q := Policy{MaxMutableValues: 7, MaxSegments: -1, MaxDeadFraction: 0.5}.WithDefaults()
	if q.MaxMutableValues != 7 || q.MaxSegments != -1 || q.MaxDeadFraction != 0.5 {
		t.Fatalf("explicit values overwritten: %+v", q)
	}
}

func TestCompactorKickAndStop(t *testing.T) {
	var runs atomic.Int64
	ran := make(chan string, 16)
	c := NewCompactor(0, func(trigger string) {
		runs.Add(1)
		ran <- trigger
	})
	c.Start()
	c.Kick()
	select {
	case trig := <-ran:
		if trig != TriggerManual {
			t.Fatalf("trigger = %q, want manual", trig)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("kick did not run")
	}
	c.Stop()
	c.Stop() // idempotent
	before := runs.Load()
	c.Kick() // after Stop: must not run
	time.Sleep(20 * time.Millisecond)
	if runs.Load() != before {
		t.Fatal("compactor ran after Stop")
	}
}

func TestCompactorTicker(t *testing.T) {
	ran := make(chan string, 16)
	c := NewCompactor(5*time.Millisecond, func(trigger string) {
		select {
		case ran <- trigger:
		default:
		}
	})
	c.Start()
	defer c.Stop()
	select {
	case trig := <-ran:
		if trig != TriggerInterval {
			t.Fatalf("trigger = %q, want interval", trig)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("ticker did not fire")
	}
}
