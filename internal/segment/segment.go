// Package segment provides the storage-engine primitives of the LSM-like
// index architecture: copy-on-write tombstone sets for logical deletes, an
// epoch-versioned manifest that atomically swaps segment sets under
// concurrent readers, the maintenance policy that decides when to seal the
// mutable segment or compact the sealed ones, and the background compactor
// loop that runs those decisions.
//
// The package is deliberately free of any index or embedding types: it only
// knows about slots (dense integer positions inside a segment) and views
// (opaque values swapped through the manifest). The core package composes
// these primitives with its searchers to form the actual segment store.
package segment

import (
	"sync"
	"sync/atomic"
)

// Meta describes one segment for stats and persistence: its identity within
// the store, whether it carries a full built index (sealed) or is an
// append-log scanned exhaustively (mutable/frozen), and its slot counts.
type Meta struct {
	// ID is the store-unique segment identifier, assigned monotonically.
	ID uint64
	// Sealed reports the segment is immutable and carries a built index.
	Sealed bool
	// Relations is the number of relation slots, tombstoned ones included.
	Relations int
	// Values is the number of embedded values across all slots.
	Values int
	// Dead is the number of tombstoned relation slots.
	Dead int
}

// Tombstones is a copy-on-write bitmap of logically deleted slots. Reads
// (Dead) are lock-free — they load an immutable word slice through an
// atomic pointer — so search scan loops can consult the set without
// synchronizing with writers. Marks copy the bitmap, set the bit and
// publish the new slice; concurrent marks are serialized by a mutex that
// readers never touch. A slot beyond the bitmap's length is alive, so the
// zero-allocation empty bitmap covers any segment size.
type Tombstones struct {
	mu    sync.Mutex
	bits  atomic.Pointer[[]uint64]
	count atomic.Int64
}

// NewTombstones returns an empty tombstone set.
func NewTombstones() *Tombstones {
	t := &Tombstones{}
	empty := make([]uint64, 0)
	t.bits.Store(&empty)
	return t
}

// Dead reports whether slot is tombstoned. Safe for concurrent use with
// Mark; nil receivers and out-of-range slots report alive.
func (t *Tombstones) Dead(slot int) bool {
	if t == nil || slot < 0 {
		return false
	}
	bits := *t.bits.Load()
	w := slot >> 6
	if w >= len(bits) {
		return false
	}
	return bits[w]&(1<<(uint(slot)&63)) != 0
}

// Mark tombstones slot, growing the bitmap as needed. It returns true when
// the slot was newly marked, false when it was already dead or negative.
func (t *Tombstones) Mark(slot int) bool {
	if slot < 0 {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old := *t.bits.Load()
	w := slot >> 6
	n := len(old)
	if w >= n {
		n = w + 1
	}
	bit := uint64(1) << (uint(slot) & 63)
	if w < len(old) && old[w]&bit != 0 {
		return false
	}
	next := make([]uint64, n)
	copy(next, old)
	next[w] |= bit
	t.bits.Store(&next)
	t.count.Add(1)
	return true
}

// Count returns the number of tombstoned slots. Nil receivers report zero.
func (t *Tombstones) Count() int {
	if t == nil {
		return 0
	}
	return int(t.count.Load())
}

// Slots returns the tombstoned slot numbers in ascending order — the
// persistence image of the set.
func (t *Tombstones) Slots() []int {
	if t == nil {
		return nil
	}
	bits := *t.bits.Load()
	out := make([]int, 0, t.Count())
	for w, word := range bits {
		for b := 0; word != 0; b++ {
			if word&1 != 0 {
				out = append(out, w<<6|b)
			}
			word >>= 1
		}
	}
	return out
}
