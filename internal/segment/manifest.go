package segment

import "sync/atomic"

// Manifest publishes the current segment set to readers through one atomic
// pointer, RCU-style: a reader loads the view once and works against that
// immutable snapshot for the rest of its operation, so a concurrent swap
// never blocks or tears a search. Each swap advances the epoch, which lets
// stats and tests observe that a reconfiguration (seal, upgrade, compaction)
// became visible. Writers must serialize swaps externally — in the store
// that owns the manifest, the mutation mutex plays that role.
type Manifest[V any] struct {
	cur atomic.Pointer[versioned[V]]
}

type versioned[V any] struct {
	epoch uint64
	view  V
}

// NewManifest returns a manifest publishing the initial view at epoch 0.
func NewManifest[V any](initial V) *Manifest[V] {
	m := &Manifest[V]{}
	m.cur.Store(&versioned[V]{view: initial})
	return m
}

// Load returns the current view and its epoch. The view must be treated as
// immutable by the caller.
func (m *Manifest[V]) Load() (V, uint64) {
	v := m.cur.Load()
	return v.view, v.epoch
}

// Swap publishes a new view and returns its epoch. Callers must serialize
// swaps; concurrent readers keep operating on whichever view they loaded.
func (m *Manifest[V]) Swap(view V) uint64 {
	next := &versioned[V]{epoch: m.cur.Load().epoch + 1, view: view}
	m.cur.Store(next)
	return next.epoch
}
