package core

import (
	"testing"

	"semdisco/internal/segment"
)

func TestIndexHealthAllMethods(t *testing.T) {
	fed, model := covidFederation(t)
	emb := EmbedFederation(fed, model)
	for _, s := range searcherSet(t, emb) {
		hr, ok := s.(HealthReporter)
		if !ok {
			t.Fatalf("%s does not implement HealthReporter", s.Name())
		}
		h := hr.IndexHealth()
		if h.Method != s.Name() || h.Values != emb.NumValues() {
			t.Fatalf("%s health=%+v", s.Name(), h)
		}
		switch s.Name() {
		case "ExS":
			if h.Graph != nil || h.Graphs != nil || h.PQ != nil || h.Clusters != nil {
				t.Fatalf("ExS should report corpus shape only: %+v", h)
			}
		case "ANNS":
			if h.Graph == nil || h.Graph.Nodes != emb.NumValues() {
				t.Fatalf("ANNS graph health=%+v", h.Graph)
			}
			if h.Graph.ReachableFraction != 1 {
				t.Fatalf("fresh ANNS graph reachable=%v", h.Graph.ReachableFraction)
			}
			if len(h.Graph.Layers) == 0 || h.Graph.Layers[0].Edges == 0 {
				t.Fatalf("ANNS layer stats=%+v", h.Graph.Layers)
			}
			if h.PQ == nil || h.PQ.Trained { // searcherSet disables PQ
				t.Fatalf("ANNS pq health=%+v", h.PQ)
			}
		case "CTS":
			if h.Graphs == nil || h.Graphs.Nodes != emb.NumValues() {
				t.Fatalf("CTS graph aggregate=%+v", h.Graphs)
			}
			if h.Graphs.MeanReachable != 1 || h.Graphs.MinReachable != 1 {
				t.Fatalf("fresh CTS graphs reachable=%+v", h.Graphs)
			}
			ch := h.Clusters
			if ch == nil || ch.Clusters == 0 || ch.MaxSize < ch.MinSize || ch.MeanSize <= 0 {
				t.Fatalf("CTS cluster health=%+v", ch)
			}
			if ch.MeanMedoidDrift < 0 || ch.MaxMedoidDrift < ch.MeanMedoidDrift {
				t.Fatalf("CTS drift=%+v", ch)
			}
		}
	}
}

func TestIndexHealthPQDistortion(t *testing.T) {
	fed, model := covidFederation(t)
	emb := EmbedFederation(fed, model)
	anns, err := NewANNS(emb, ANNSOptions{Seed: 1, PQTrainSize: 16, PQM: 16, PQK: 8})
	if err != nil {
		t.Fatal(err)
	}
	h := anns.IndexHealth()
	if h.PQ == nil || !h.PQ.Trained {
		t.Fatalf("pq health=%+v", h.PQ)
	}
	d := h.PQ.Distortion
	if d.Samples == 0 || d.Mean <= 0 || d.Mean > d.P95 || d.P95 > d.Max {
		t.Fatalf("distortion=%+v", d)
	}
}

// TestMedoidDriftAfterDeletes: IndexHealth walks live values only, so
// tombstoning relations must shrink the reported cluster sizes and move
// the live centroids relative to the build-time medoids — the
// medoid-drift signal the compaction trigger turns into a re-clustering
// rebuild.
func TestMedoidDriftAfterDeletes(t *testing.T) {
	fed, model := covidFederation(t)
	emb := EmbedFederation(fed, model)
	emb.Tombs = segment.NewTombstones()
	cts, err := NewCTS(emb, CTSOptions{Seed: 1, MinClusterSize: 4, UMAPEpochs: 60})
	if err != nil {
		t.Fatal(err)
	}
	before := cts.IndexHealth().Clusters
	// Tombstone every third relation — enough churn that at least one
	// cluster loses members.
	deleted := 0
	for i := 0; i < emb.NumRelations(); i += 3 {
		emb.Tombs.Mark(i)
		deleted++
	}
	if deleted == 0 {
		t.Fatal("nothing deleted")
	}
	after := cts.IndexHealth().Clusters
	if after.Clusters != before.Clusters {
		t.Fatalf("cluster count changed on delete: %d -> %d", before.Clusters, after.Clusters)
	}
	if after.MeanSize >= before.MeanSize {
		t.Fatalf("deletes not reflected in live sizes: before=%+v after=%+v", before, after)
	}
	if after.MeanMedoidDrift < 0 || after.MaxMedoidDrift < after.MeanMedoidDrift {
		t.Fatalf("inconsistent drift after deletes: %+v", after)
	}
	// Removing a third of the corpus must perturb the live centroids: the
	// drift reading has to move off the fresh-build baseline.
	if after.MeanMedoidDrift == before.MeanMedoidDrift {
		t.Fatalf("drift unchanged after deletes: before=%+v after=%+v", before, after)
	}
}

func TestProbeRecall(t *testing.T) {
	fed, model := covidFederation(t)
	emb := EmbedFederation(fed, model)
	for _, s := range searcherSet(t, emb) {
		res, err := ProbeRecall(s, emb, []string{"COVID", "football stadium", "mineral hardness"}, 3, 0)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.Method != s.Name() || res.K != 3 {
			t.Fatalf("%s: result=%+v", s.Name(), res)
		}
		if res.Probed == 0 {
			t.Fatalf("%s: nothing probed", s.Name())
		}
		if res.Recall < 0 || res.Recall > 1 {
			t.Fatalf("%s: recall=%v out of [0,1]", s.Name(), res.Recall)
		}
		if s.Name() == "ExS" && res.Recall != 1 {
			t.Fatalf("ExS probed against itself must have recall 1, got %v", res.Recall)
		}
		for _, smp := range res.Samples {
			if smp.Recall < 0 || smp.Recall > 1 {
				t.Fatalf("%s: sample=%+v", s.Name(), smp)
			}
		}
	}
}

func TestProbeRecallEdgeCases(t *testing.T) {
	fed, model := covidFederation(t)
	emb := EmbedFederation(fed, model)
	exs := NewExS(emb, ExSOptions{})
	if res, err := ProbeRecall(exs, emb, nil, 3, 0); err != nil || res.Probed != 0 {
		t.Fatalf("empty queries: res=%+v err=%v", res, err)
	}
	if res, err := ProbeRecall(exs, emb, []string{"COVID"}, 0, 0); err != nil || res.Probed != 0 {
		t.Fatalf("k=0: res=%+v err=%v", res, err)
	}
}

func TestSampleValueTexts(t *testing.T) {
	fed, model := covidFederation(t)
	emb := EmbedFederation(fed, model)
	sample := emb.SampleValueTexts(8)
	if len(sample) == 0 || len(sample) > 8 {
		t.Fatalf("sample=%v", sample)
	}
	for _, s := range sample {
		if s == "" {
			t.Fatal("empty text sampled")
		}
	}
	if got := emb.SampleValueTexts(0); got != nil {
		t.Fatalf("n=0 sample=%v", got)
	}
}
