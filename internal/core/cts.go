package core

import (
	"context"
	"fmt"
	"math"
	"strconv"

	"semdisco/internal/hdbscan"
	"semdisco/internal/obs"
	"semdisco/internal/par"
	"semdisco/internal/umap"
	"semdisco/internal/vec"
	"semdisco/internal/vectordb"
)

// CTS is the Clustered Targeted Search of §4.3 / Algorithm 3, the paper's
// central contribution. Index time: value vectors are reduced with UMAP,
// clustered with HDBSCAN, each cluster gets a medoid and its own vector-
// database collection. Query time: the query is compared against the
// medoids (in the original embedding space — medoids are real data points,
// so the query needs no reduction), the top clusters are selected, and the
// ANNS procedure runs only inside those clusters.
type CTS struct {
	emb *Embedded
	// medoidVecs[c] is cluster c's medoid in the original embedding space.
	medoidVecs [][]float32
	// clusterColl[c] is the per-cluster collection ("we store each cluster
	// in a vector database, where each collection contains unique data
	// points").
	clusterColl []*vectordb.Collection
	clusterOf   []int // value index -> cluster
	threshold   float32
	topClusters int
	fanout      int
	efSearch    int
}

// Reduction selects CTS's dimensionality-reduction stage.
type Reduction int

const (
	// ReduceUMAP is the paper's choice.
	ReduceUMAP Reduction = iota
	// ReducePCA is the ablation alternative.
	ReducePCA
	// ReduceNone clusters in the original space (ablation).
	ReduceNone
)

func (r Reduction) String() string {
	switch r {
	case ReduceUMAP:
		return "umap"
	case ReducePCA:
		return "pca"
	case ReduceNone:
		return "none"
	default:
		return fmt.Sprintf("reduction(%d)", int(r))
	}
}

// CTSOptions configures CTS.
type CTSOptions struct {
	// Threshold is the paper's h.
	Threshold float32
	// TopClusters is how many clusters the query descends into; the
	// default adapts to the clustering: max(8, 15% of the cluster count),
	// so the targeted fraction of the corpus stays comparable as corpora
	// and cluster granularities vary.
	TopClusters int
	// Reduction selects the reducer; default ReduceUMAP.
	Reduction Reduction
	// ReducedDim is the UMAP/PCA output dimension; default 16.
	ReducedDim int
	// MinClusterSize is HDBSCAN's granularity; default 8.
	MinClusterSize int
	// SampleCap bounds the O(n²) HDBSCAN run: when the corpus has more
	// value vectors, clustering runs on a stride sample and the remaining
	// points are assigned to the nearest medoid in reduced space (the
	// standard approximate-predict scheme). Default 4096.
	SampleCap int
	// UMAPEpochs caps layout optimization; 0 uses umap defaults.
	UMAPEpochs int
	// Fanout is value hits retrieved per query across the selected
	// clusters; defaults to 32·k at query time.
	Fanout int
	// EfSearch is the per-cluster HNSW beam width; default 96.
	EfSearch int
	// M, EfConstruction tune the per-cluster HNSW graphs.
	M, EfConstruction int
	// Seed drives reduction, clustering and index construction.
	Seed int64
	// Build bounds construction parallelism (see BuildOptions).
	Build BuildOptions
}

// NewCTS builds the clustered index. Building is the expensive phase
// (reduce + cluster + per-cluster graphs); queries afterwards only touch
// medoids and the selected clusters.
func NewCTS(emb *Embedded, opt CTSOptions) (*CTS, error) {
	if opt.ReducedDim == 0 {
		opt.ReducedDim = 16
	}
	if opt.MinClusterSize == 0 {
		opt.MinClusterSize = 8
	}
	if opt.SampleCap == 0 {
		opt.SampleCap = 4096
	}
	if opt.EfSearch == 0 {
		opt.EfSearch = 96
	}
	n := len(emb.Values)
	if n == 0 {
		return nil, fmt.Errorf("core: cts: empty federation")
	}
	workers := opt.Build.workers()

	points := make([][]float32, n)
	for i := range emb.Values {
		points[i] = emb.Values[i].Vec
	}

	// 1. Dimensionality reduction.
	var reduced [][]float32
	buildPhase(emb.Obs, "umap", func() {
		switch opt.Reduction {
		case ReducePCA:
			reduced = umap.PCA(points, opt.ReducedDim, opt.Seed)
		case ReduceNone:
			reduced = points
		default:
			reduced = umap.Fit(points, umap.Config{
				NComponents: opt.ReducedDim,
				NEpochs:     opt.UMAPEpochs,
				Seed:        opt.Seed,
				Workers:     workers,
			})
		}
	})

	// 2. HDBSCAN on (a sample of) the reduced vectors.
	sampleIdx := strideSample(n, opt.SampleCap)
	samplePts := make([][]float32, len(sampleIdx))
	for i, gi := range sampleIdx {
		samplePts[i] = reduced[gi]
	}
	var res hdbscan.Result
	buildPhase(emb.Obs, "hdbscan", func() {
		res = hdbscan.Cluster(samplePts, hdbscan.Config{MinClusterSize: opt.MinClusterSize, Workers: workers})
	})

	// 3. Medoids in reduced and original space. Degenerate clusterings
	// (zero clusters) collapse to a single cluster around the global
	// medoid so that CTS remains total.
	var medoidGlobal []int
	if res.NumClusters == 0 {
		medoidGlobal = []int{globalMedoid(reduced, sampleIdx)}
	} else {
		medoidGlobal = make([]int, res.NumClusters)
		for c, mi := range res.Medoids {
			medoidGlobal[c] = sampleIdx[mi]
		}
	}
	numClusters := len(medoidGlobal)
	medoidReduced := make([][]float32, numClusters)
	medoidVecs := make([][]float32, numClusters)
	for c, gi := range medoidGlobal {
		medoidReduced[c] = reduced[gi]
		medoidVecs[c] = points[gi]
	}

	// 4. Assign every value to a cluster: sampled points keep their label
	// (noise included — it routes to the nearest medoid), everything else
	// goes to the nearest medoid in reduced space.
	clusterOf := make([]int, n)
	for i := range clusterOf {
		clusterOf[i] = -1
	}
	if res.NumClusters > 0 {
		for si, gi := range sampleIdx {
			clusterOf[gi] = res.Labels[si]
		}
	}
	// Each point's nearest medoid is an independent computation, so the
	// assignment shards across workers without changing any label.
	par.For(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if clusterOf[i] >= 0 {
				continue
			}
			best, bestD := 0, float32(math.MaxFloat32)
			for c := range medoidReduced {
				if d := vec.L2Sq(reduced[i], medoidReduced[c]); d < bestD {
					best, bestD = c, d
				}
			}
			clusterOf[i] = best
		}
	})

	// 5. One collection per cluster.
	db := vectordb.New()
	colls := make([]*vectordb.Collection, numClusters)
	for c := range colls {
		coll, err := db.CreateCollection(fmt.Sprintf("cluster-%d", c), vectordb.CollectionConfig{
			Dim:            emb.Enc.Dim(),
			Metric:         vectordb.Cosine,
			M:              opt.M,
			EfConstruction: opt.EfConstruction,
			EfSearch:       opt.EfSearch,
			Seed:           opt.Seed + int64(c),
			Workers:        workers,
		})
		if err != nil {
			return nil, fmt.Errorf("core: cts: %w", err)
		}
		coll.SetObserver(emb.Obs)
		colls[c] = coll
	}
	// Group values by cluster, then build the per-cluster graphs. Within a
	// collection the insert order is the value order, exactly what the
	// historical interleaved loop produced, so Workers <= 1 is bit-identical;
	// with more workers the clusters — uneven, independent build jobs —
	// pull from a shared queue while each batch also parallelizes inside.
	perCluster := make([][]int, numClusters)
	for i := range emb.Values {
		c := clusterOf[i]
		perCluster[c] = append(perCluster[c], i)
	}
	insertErrs := make([]error, numClusters)
	buildPhase(emb.Obs, "hnsw_insert", func() {
		par.Each(numClusters, workers, func(c int) {
			vecs := make([][]float32, len(perCluster[c]))
			pays := make([]map[string]string, len(perCluster[c]))
			for j, i := range perCluster[c] {
				vecs[j] = emb.Values[i].Vec
				pays[j] = map[string]string{"vi": strconv.Itoa(i)}
			}
			if _, err := colls[c].InsertBatch(vecs, pays); err != nil {
				insertErrs[c] = fmt.Errorf("core: cts insert: %w", err)
			}
		})
	})
	for _, err := range insertErrs {
		if err != nil {
			return nil, err
		}
	}
	emb.Obs.Gauge(MetricClusters).Set(float64(numClusters))
	emb.Obs.Gauge(MetricValues).Set(float64(len(emb.Values)))

	topClusters := opt.TopClusters
	if topClusters == 0 {
		topClusters = numClusters * 15 / 100
		if topClusters < 8 {
			topClusters = 8
		}
	}
	return &CTS{
		emb:         emb,
		medoidVecs:  medoidVecs,
		clusterColl: colls,
		clusterOf:   clusterOf,
		threshold:   opt.Threshold,
		topClusters: topClusters,
		fanout:      opt.Fanout,
		efSearch:    opt.EfSearch,
	}, nil
}

// Name implements Searcher.
func (s *CTS) Name() string { return "CTS" }

// NumClusters reports how many clusters the index holds.
func (s *CTS) NumClusters() int { return len(s.medoidVecs) }

// ClusterOf exposes the value-to-cluster assignment for diagnostics.
func (s *CTS) ClusterOf(valueIdx int) int { return s.clusterOf[valueIdx] }

// Search implements Searcher: Algorithm 3's query phase.
func (s *CTS) Search(query string, k int) ([]Match, error) {
	return s.SearchTraced(query, k, nil)
}

// SearchTraced implements TracedSearcher: Algorithm 3 with a per-stage
// breakdown (encode → medoid_match → descent → rank).
func (s *CTS) SearchTraced(query string, k int, tr *obs.Trace) ([]Match, error) {
	return s.SearchTracedContext(context.Background(), query, k, tr)
}

// SearchTracedContext implements ContextSearcher: SearchTraced with
// cooperative cancellation checked between clusters and inside each
// cluster's HNSW walk.
func (s *CTS) SearchTracedContext(ctx context.Context, query string, k int, tr *obs.Trace) ([]Match, error) {
	if k <= 0 {
		return nil, nil
	}
	o := startSearch(s.emb.Obs, s.Name(), tr)
	sp := o.stage("encode")
	q := s.emb.Enc.Encode(query)
	o.endStage(sp)
	matches, err := s.searchObserved(ctx, q, k, o)
	if err == nil {
		o.finish()
	}
	return matches, err
}

// SearchEncoded implements EncodedSearcher: the cluster walk for an
// already-encoded query vector under a context.
func (s *CTS) SearchEncoded(ctx context.Context, q []float32, k int) ([]Match, error) {
	if k <= 0 {
		return nil, nil
	}
	return s.searchObserved(ctx, q, k, startSearch(nil, s.Name(), nil))
}

// searchEncoded runs the cluster walk for an already-encoded query vector.
func (s *CTS) searchEncoded(q []float32, k int) ([]Match, error) {
	return s.SearchEncoded(context.Background(), q, k)
}

// searchObserved is the cluster walk, instrumented through o.
func (s *CTS) searchObserved(ctx context.Context, q []float32, k int, o *searchObs) ([]Match, error) {
	// Rank clusters by medoid similarity (original space; medoids are data
	// points, so the query needs no reduction).
	sp := o.stage("medoid_match").AnnotateInt("clusters_total", len(s.medoidVecs))
	top := vec.NewTopK(minInt(s.topClusters, len(s.medoidVecs)))
	for c, m := range s.medoidVecs {
		top.Push(c, vec.Dot(q, m))
	}
	selected := top.Sorted()
	o.endStage(sp.AnnotateInt("clusters_selected", len(selected)))
	if cost := obs.CostFrom(ctx); cost != nil {
		// One dot product per medoid; the per-cluster descents below account
		// their own work through the collections' context plumbing.
		cost.AddDistanceComps(int64(len(s.medoidVecs)))
		cost.AddBytesScanned(int64(len(s.medoidVecs)) * int64(s.emb.Enc.Dim()) * 4)
		cost.AddCandidatesPruned(int64(len(s.medoidVecs) - len(selected)))
	}

	fanout := s.fanout
	if fanout == 0 {
		fanout = 32 * k
	}
	perCluster := fanout / len(selected)
	if perCluster < k {
		perCluster = k
	}
	ef := s.efSearch
	if ef < perCluster {
		ef = perCluster
	}

	sp = o.stage("descent").AnnotateInt("per_cluster_fanout", perCluster)
	n := s.emb.NumRelations()
	sums := make([]float32, n)
	hitCount := make([]float32, n)
	totalHits := 0
	for _, sc := range selected {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		coll := s.clusterColl[sc.ID]
		// Beams wider than the cluster only add heap overhead.
		pc, pcEf := perCluster, ef
		if l := coll.Len(); pc > l {
			pc = l
			if pcEf > l {
				pcEf = l
			}
		}
		hits, err := coll.SearchContext(ctx, q, pc, pcEf, liveFilter(s.emb))
		if err != nil {
			return nil, err
		}
		totalHits += len(hits)
		for _, h := range hits {
			vi, err := strconv.Atoi(h.Payload["vi"])
			if err != nil || vi < 0 || vi >= len(s.emb.Values) {
				return nil, fmt.Errorf("core: cts: corrupt payload %q", h.Payload["vi"])
			}
			v := &s.emb.Values[vi]
			if h.Score > 0 {
				sums[v.Rel] += v.Weight * h.Score
			}
			hitCount[v.Rel]++
		}
	}
	o.endStage(sp.AnnotateInt("hits", totalHits))

	sp = o.stage("rank")
	matches := s.emb.rankRelations(sums, hitCount, s.threshold, k)
	o.endStage(sp.AnnotateInt("matches", len(matches)))
	return matches, nil
}

// strideSample returns up to cap evenly spaced indices of [0, n).
func strideSample(n, cap int) []int {
	if n <= cap {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, 0, cap)
	stride := float64(n) / float64(cap)
	for i := 0; i < cap; i++ {
		out = append(out, int(float64(i)*stride))
	}
	return out
}

// globalMedoid returns the sampled point closest to the centroid of the
// reduced space.
func globalMedoid(reduced [][]float32, sampleIdx []int) int {
	centroid := make([]float32, len(reduced[0]))
	for _, gi := range sampleIdx {
		vec.Add(centroid, reduced[gi])
	}
	vec.Scale(centroid, 1/float32(len(sampleIdx)))
	best, bestD := sampleIdx[0], float32(math.MaxFloat32)
	for _, gi := range sampleIdx {
		if d := vec.L2Sq(reduced[gi], centroid); d < bestD {
			best, bestD = gi, d
		}
	}
	return best
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
