package core

import (
	"bytes"
	"testing"

	"semdisco/internal/embed"
	"semdisco/internal/table"
)

func newRelation(id, topic string) *table.Relation {
	return &table.Relation{
		ID:      id,
		Source:  "src",
		Columns: []string{"A", "B"},
		Rows:    [][]string{{topic + " alpha", topic + " beta"}, {topic + " gamma", "42"}},
	}
}

// storeBuilders returns one SegmentBuilder per method, with small
// deterministic settings.
func storeBuilders() map[string]SegmentBuilder {
	return map[string]SegmentBuilder{
		"ExS": func(e *Embedded) (EncodedSearcher, error) { return NewExS(e, ExSOptions{}), nil },
		"ANNS": func(e *Embedded) (EncodedSearcher, error) {
			return NewANNS(e, ANNSOptions{Seed: 1, DisablePQ: true})
		},
		"CTS": func(e *Embedded) (EncodedSearcher, error) {
			return NewCTS(e, CTSOptions{Seed: 1, MinClusterSize: 4, UMAPEpochs: 30})
		},
	}
}

// newStore builds a segment store for one method over fed.
func newStore(t *testing.T, method string, build SegmentBuilder, fed *table.Federation, model *embed.Model, policy ...SegmentStoreOptions) *SegmentStore {
	t.Helper()
	emb := EmbedFederation(fed, model)
	base, err := build(emb)
	if err != nil {
		t.Fatalf("%s: base build: %v", method, err)
	}
	opt := SegmentStoreOptions{Build: build, Method: method}
	if len(policy) > 0 {
		opt = policy[0]
		opt.Build = build
		opt.Method = method
	}
	return NewSegmentStore(emb, base, opt)
}

// TestAddRelationAllMethods: a relation added through the segment store
// lands in the mutable segment and is immediately searchable under every
// method, with no index rebuild on the write path.
func TestAddRelationAllMethods(t *testing.T) {
	fed := table.NewFederation()
	for i := 0; i < 10; i++ {
		fed.Add(newRelation(string(rune('a'+i)), "filler"))
	}
	model := embed.New(embed.Config{Dim: 64, Seed: 1})

	for method, build := range storeBuilders() {
		st := newStore(t, method, build, fed, model)
		if err := st.Add(newRelation("new-zebra", "zebra savanna wildlife")); err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		got, err := st.Search("zebra wildlife", 3)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if len(got) == 0 || got[0].RelationID != "new-zebra" {
			t.Fatalf("%s: added relation not found: %v", method, got)
		}
		// Duplicate IDs must be rejected.
		if err := st.Add(newRelation("new-zebra", "x")); err == nil {
			t.Fatalf("%s: duplicate id accepted", method)
		}
		// Invalid relations must be rejected.
		if err := st.Add(&table.Relation{}); err == nil {
			t.Fatalf("%s: invalid relation accepted", method)
		}
	}
}

// TestDeleteAllMethods: a tombstoned relation disappears from every
// method's results immediately, whether it lives in the base segment or
// the mutable one; unknown IDs error.
func TestDeleteAllMethods(t *testing.T) {
	fed := table.NewFederation()
	for i := 0; i < 10; i++ {
		fed.Add(newRelation(string(rune('a'+i)), "filler"))
	}
	fed.Add(newRelation("base-zebra", "zebra savanna wildlife"))
	model := embed.New(embed.Config{Dim: 64, Seed: 1})

	for method, build := range storeBuilders() {
		st := newStore(t, method, build, fed, model)
		if err := st.Add(newRelation("mut-zebra", "zebra stripes herd")); err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		for _, id := range []string{"base-zebra", "mut-zebra"} {
			if err := st.Delete(id); err != nil {
				t.Fatalf("%s: delete %s: %v", method, id, err)
			}
		}
		got, err := st.Search("zebra wildlife", 5)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		for _, m := range got {
			if m.RelationID == "base-zebra" || m.RelationID == "mut-zebra" {
				t.Fatalf("%s: deleted relation still ranked: %v", method, got)
			}
		}
		if err := st.Delete("base-zebra"); err == nil {
			t.Fatalf("%s: double delete accepted", method)
		}
		if err := st.Delete("never-existed"); err == nil {
			t.Fatalf("%s: unknown delete accepted", method)
		}
		// A deleted ID may be reused.
		if err := st.Add(newRelation("base-zebra", "zebra reborn")); err != nil {
			t.Fatalf("%s: re-add after delete: %v", method, err)
		}
	}
}

// TestUpdateReplacesContent: Update tombstones the old copy and the new
// content answers queries; the old content stops matching.
func TestUpdateReplacesContent(t *testing.T) {
	fed := table.NewFederation()
	for i := 0; i < 10; i++ {
		fed.Add(newRelation(string(rune('a'+i)), "filler"))
	}
	fed.Add(newRelation("subject", "zebra savanna wildlife"))
	fed.Add(newRelation("other-zebra", "zebra plains grazing"))
	model := embed.New(embed.Config{Dim: 64, Seed: 1})
	build := storeBuilders()["ExS"]
	st := newStore(t, "ExS", build, fed, model)

	if err := st.Update(newRelation("subject", "volcano magma eruption")); err != nil {
		t.Fatal(err)
	}
	got, err := st.Search("volcano eruption", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || got[0].RelationID != "subject" {
		t.Fatalf("updated content not found: %v", got)
	}
	got, err = st.Search("zebra wildlife", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || got[0].RelationID != "other-zebra" {
		t.Fatalf("stale content still outranks the live zebra: %v", got)
	}
	if err := st.Update(newRelation("never-existed", "x")); err == nil {
		t.Fatal("update of unknown relation accepted")
	}
	if st.NumLiveRelations() != 12 {
		t.Fatalf("live relations = %d, want 12", st.NumLiveRelations())
	}
}

func TestEmbeddedPersistRestore(t *testing.T) {
	fed := table.NewFederation()
	fed.Add(newRelation("r1", "solar panels energy"))
	fed.Add(newRelation("r2", "marine biology fish"))
	model := embed.New(embed.Config{Dim: 48, Seed: 9})
	emb := EmbedFederation(fed, model)

	var buf bytes.Buffer
	if err := emb.Persist(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreEmbedded(bytes.NewReader(buf.Bytes()), model)
	if err != nil {
		t.Fatal(err)
	}
	if restored.NumValues() != emb.NumValues() || restored.NumRelations() != emb.NumRelations() {
		t.Fatal("shape lost")
	}
	// A searcher over the restored embedding must agree with the original.
	a, _ := NewExS(emb, ExSOptions{}).Search("solar energy", 2)
	b, _ := NewExS(restored, ExSOptions{}).Search("solar energy", 2)
	if len(a) != len(b) {
		t.Fatal("result lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("restored searcher differs: %v vs %v", a, b)
		}
	}
}

func TestRestoreEmbeddedValidation(t *testing.T) {
	model := embed.New(embed.Config{Dim: 48, Seed: 9})
	if _, err := RestoreEmbedded(bytes.NewReader([]byte("junk")), model); err == nil {
		t.Fatal("garbage must not restore")
	}
	// Dim mismatch.
	fed := table.NewFederation()
	fed.Add(newRelation("r1", "anything"))
	emb := EmbedFederation(fed, model)
	var buf bytes.Buffer
	emb.Persist(&buf)
	other := embed.New(embed.Config{Dim: 32, Seed: 9})
	if _, err := RestoreEmbedded(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatal("dim mismatch must fail")
	}
}
