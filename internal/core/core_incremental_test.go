package core

import (
	"bytes"
	"testing"

	"semdisco/internal/embed"
	"semdisco/internal/table"
)

func newRelation(id, topic string) *table.Relation {
	return &table.Relation{
		ID:      id,
		Source:  "src",
		Columns: []string{"A", "B"},
		Rows:    [][]string{{topic + " alpha", topic + " beta"}, {topic + " gamma", "42"}},
	}
}

func TestAddRelationAllMethods(t *testing.T) {
	fed := table.NewFederation()
	for i := 0; i < 10; i++ {
		fed.Add(newRelation(string(rune('a'+i)), "filler"))
	}
	model := embed.New(embed.Config{Dim: 64, Seed: 1})

	build := func() []Searcher {
		emb := EmbedFederation(fed, model)
		anns, err := NewANNS(emb, ANNSOptions{Seed: 1, DisablePQ: true})
		if err != nil {
			t.Fatal(err)
		}
		// Separate embeddings per searcher so Adds do not interfere.
		emb2 := EmbedFederation(fed, model)
		cts, err := NewCTS(emb2, CTSOptions{Seed: 1, MinClusterSize: 4, UMAPEpochs: 30})
		if err != nil {
			t.Fatal(err)
		}
		emb3 := EmbedFederation(fed, model)
		return []Searcher{NewExS(emb3, ExSOptions{}), anns, cts}
	}

	for _, s := range build() {
		app, ok := s.(Appender)
		if !ok {
			t.Fatalf("%s does not implement Appender", s.Name())
		}
		if err := app.AddRelation(newRelation("new-zebra", "zebra savanna wildlife")); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		got, err := s.Search("zebra wildlife", 3)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(got) == 0 || got[0].RelationID != "new-zebra" {
			t.Fatalf("%s: added relation not found: %v", s.Name(), got)
		}
		// Duplicate IDs must be rejected.
		if err := app.AddRelation(newRelation("new-zebra", "x")); err == nil {
			t.Fatalf("%s: duplicate id accepted", s.Name())
		}
		// Invalid relations must be rejected.
		if err := app.AddRelation(&table.Relation{}); err == nil {
			t.Fatalf("%s: invalid relation accepted", s.Name())
		}
	}
}

func TestEmbeddedPersistRestore(t *testing.T) {
	fed := table.NewFederation()
	fed.Add(newRelation("r1", "solar panels energy"))
	fed.Add(newRelation("r2", "marine biology fish"))
	model := embed.New(embed.Config{Dim: 48, Seed: 9})
	emb := EmbedFederation(fed, model)

	var buf bytes.Buffer
	if err := emb.Persist(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreEmbedded(bytes.NewReader(buf.Bytes()), model)
	if err != nil {
		t.Fatal(err)
	}
	if restored.NumValues() != emb.NumValues() || restored.NumRelations() != emb.NumRelations() {
		t.Fatal("shape lost")
	}
	// A searcher over the restored embedding must agree with the original.
	a, _ := NewExS(emb, ExSOptions{}).Search("solar energy", 2)
	b, _ := NewExS(restored, ExSOptions{}).Search("solar energy", 2)
	if len(a) != len(b) {
		t.Fatal("result lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("restored searcher differs: %v vs %v", a, b)
		}
	}
}

func TestRestoreEmbeddedValidation(t *testing.T) {
	model := embed.New(embed.Config{Dim: 48, Seed: 9})
	if _, err := RestoreEmbedded(bytes.NewReader([]byte("junk")), model); err == nil {
		t.Fatal("garbage must not restore")
	}
	// Dim mismatch.
	fed := table.NewFederation()
	fed.Add(newRelation("r1", "anything"))
	emb := EmbedFederation(fed, model)
	var buf bytes.Buffer
	emb.Persist(&buf)
	other := embed.New(embed.Config{Dim: 32, Seed: 9})
	if _, err := RestoreEmbedded(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatal("dim mismatch must fail")
	}
}
