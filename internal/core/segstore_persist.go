package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"semdisco/internal/embed"
	"semdisco/internal/obs"
	"semdisco/internal/segment"
)

// segmentImage is the gob shadow of one segment: the embedded federation
// blob plus the segment-level bookkeeping Embedded.Persist does not carry
// (global insertion orders and tombstoned slots).
type segmentImage struct {
	ID      uint64
	Sealed  bool
	EmbBlob []byte
	Orders  []int
	Dead    []int
}

// storeImage is the gob envelope of a whole segment store. Index
// structures are not serialized: sealed segments rebuild their index
// deterministically on restore, exactly like the monolithic path.
type storeImage struct {
	Version   int
	NextOrder int
	NextSegID uint64
	Segs      []segmentImage
	Mut       segmentImage
}

func imageOf(emb *Embedded, id uint64, sealed bool) (segmentImage, error) {
	var blob bytes.Buffer
	if err := emb.Persist(&blob); err != nil {
		return segmentImage{}, err
	}
	img := segmentImage{ID: id, Sealed: sealed, EmbBlob: blob.Bytes()}
	if emb.RelOrder != nil {
		img.Orders = append([]int(nil), emb.RelOrder...)
	}
	img.Dead = emb.Tombs.Slots()
	return img, nil
}

// Persist writes the store — every segment's vectors, orders and
// tombstones — so RestoreSegmentStore can bring it back without
// re-encoding a value. Mutations are locked out for the duration so the
// image is a consistent cut; searches proceed.
func (st *SegmentStore) Persist(w io.Writer) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	v := st.view()
	img := storeImage{Version: 1, NextOrder: st.nextOrder, NextSegID: st.nextSegID}
	for _, sg := range v.segs {
		si, err := imageOf(sg.emb, sg.id, sg.sealed)
		if err != nil {
			return fmt.Errorf("core: persist segment %d: %w", sg.id, err)
		}
		img.Segs = append(img.Segs, si)
	}
	mi, err := imageOf(v.mut.emb.Load(), v.mut.id, false)
	if err != nil {
		return fmt.Errorf("core: persist mutable segment: %w", err)
	}
	img.Mut = mi
	return gob.NewEncoder(w).Encode(img)
}

// restoreSegEmbedded rebuilds one segment's Embedded from its image.
func restoreSegEmbedded(img segmentImage, enc embed.Encoder, reg *obs.Registry) (*Embedded, error) {
	emb, err := RestoreEmbedded(bytes.NewReader(img.EmbBlob), enc)
	if err != nil {
		return nil, err
	}
	emb.Obs = reg
	emb.Tombs = segment.NewTombstones()
	for _, slot := range img.Dead {
		if slot < 0 || slot >= len(emb.RelIDs) {
			return nil, fmt.Errorf("core: tombstone slot %d of %d relations", slot, len(emb.RelIDs))
		}
		emb.Tombs.Mark(slot)
	}
	if img.Orders != nil {
		if len(img.Orders) != len(emb.RelIDs) {
			return nil, fmt.Errorf("core: %d orders for %d relations", len(img.Orders), len(emb.RelIDs))
		}
		emb.RelOrder = img.Orders
	}
	return emb, nil
}

// RestoreSegmentStore reads a Persist image and rebuilds the store: value
// embeddings verbatim, sealed segments' index structures rebuilt with
// opt.Build, frozen and mutable segments back on their exhaustive scans.
func RestoreSegmentStore(r io.Reader, enc embed.Encoder, reg *obs.Registry, opt SegmentStoreOptions) (*SegmentStore, error) {
	var img storeImage
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return nil, fmt.Errorf("core: restore store: %w", err)
	}
	if img.Version != 1 {
		return nil, fmt.Errorf("core: unsupported store version %d", img.Version)
	}
	if len(img.Segs) == 0 {
		return nil, fmt.Errorf("core: store image has no segments")
	}
	st := &SegmentStore{
		build:     opt.Build,
		exsOpt:    opt.ExS,
		policy:    opt.Policy.WithDefaults(),
		method:    opt.Method,
		auto:      opt.AutoMaintain,
		reg:       reg,
		enc:       enc,
		owner:     make(map[string]relLoc),
		nextOrder: img.NextOrder,
		nextSegID: img.NextSegID,
	}
	segs := make([]*seg, 0, len(img.Segs))
	for _, si := range img.Segs {
		emb, err := restoreSegEmbedded(si, enc, reg)
		if err != nil {
			return nil, fmt.Errorf("core: restore segment %d: %w", si.ID, err)
		}
		sg := &seg{id: si.ID, sealed: si.Sealed, emb: emb}
		if !si.Sealed || emb.NumValues() == 0 {
			sg.searcher = NewExS(emb, st.exsOpt)
			sg.sealed = si.Sealed && emb.NumValues() == 0
		} else {
			sg.searcher, err = st.build(emb)
			if err != nil {
				return nil, fmt.Errorf("core: rebuild segment %d: %w", si.ID, err)
			}
			st.recordBaselines(sg)
		}
		segs = append(segs, sg)
	}
	memb, err := restoreSegEmbedded(img.Mut, enc, reg)
	if err != nil {
		return nil, fmt.Errorf("core: restore mutable segment: %w", err)
	}
	mut := &mutableSeg{id: img.Mut.ID}
	mut.emb.Store(memb)
	st.man = segment.NewManifest(&storeView{segs: segs, mut: mut})

	index := func(emb *Embedded, segID uint64) {
		for i, id := range emb.RelIDs {
			n := int64(len(emb.PerRel[i]))
			if emb.Tombs.Dead(i) {
				st.deadRels.Add(1)
				st.deadVals.Add(n)
				continue
			}
			st.owner[id] = relLoc{segID: segID, tombs: emb.Tombs, slot: i, values: int(n)}
			st.liveRels.Add(1)
			st.liveVals.Add(n)
		}
	}
	for _, sg := range segs {
		index(sg.emb, sg.id)
	}
	index(memb, mut.id)
	st.publishGauges()
	return st, nil
}
