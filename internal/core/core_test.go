package core

import (
	"testing"

	"semdisco/internal/corpus"
	"semdisco/internal/embed"
	"semdisco/internal/eval"
	"semdisco/internal/table"
)

// covidFederation reproduces the paper's Figure 1 motivating example.
func covidFederation(t testing.TB) (*table.Federation, *embed.Model) {
	t.Helper()
	fed := table.NewFederation()
	add := func(r *table.Relation) {
		if err := fed.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	add(&table.Relation{
		ID: "WHO", Source: "WHO",
		Columns: []string{"Region", "Date", "Vaccine", "Dosage"},
		Rows: [][]string{
			{"North America", "2021-01-01", "Comirnaty", "First"},
			{"Europe", "2021-02-01", "Vaxzevria", "Second"},
			{"Asia", "2021-03-01", "CoronaVac", "First"},
			{"Africa", "2021-04-01", "Covaxin", "Second"},
		},
	})
	add(&table.Relation{
		ID: "CDC", Source: "CDC",
		Columns: []string{"State", "Date", "Immunogen", "Manufacturer"},
		Rows: [][]string{
			{"California", "2021-01-01", "mRNA", "Moderna"},
			{"Texas", "2021-02-01", "Vector Virus", "Janssen"},
			{"Florida", "2021-03-01", "mRNA", "Pfizer"},
			{"New York", "2021-04-01", "Protein Subunit", "Novavax"},
		},
	})
	add(&table.Relation{
		ID: "ECDC", Source: "ECDC",
		Columns: []string{"Country", "Date", "Trade Name", "Disease"},
		Rows: [][]string{
			{"Germany", "2021-01-01", "Pfizer-BioNTech", "COVID-19"},
			{"France", "2021-02-01", "AstraZeneca", "COVID-19"},
			{"Spain", "2021-03-01", "Moderna", "COVID-19"},
			{"Italy", "2021-04-01", "Pfizer-BioNTech", "COVID-19"},
		},
	})
	// Unrelated distractor tables.
	add(&table.Relation{
		ID: "FOOTBALL", Source: "UEFA",
		Columns: []string{"Club", "Stadium", "Capacity"},
		Rows: [][]string{
			{"Ajax", "Johan Cruyff Arena", "54990"},
			{"Bayern", "Allianz Arena", "75000"},
		},
	})
	add(&table.Relation{
		ID: "GEOLOGY", Source: "USGS",
		Columns: []string{"Mineral", "Hardness", "Color"},
		Rows: [][]string{
			{"Quartz", "7", "Clear"},
			{"Talc", "1", "White"},
		},
	})

	lex := embed.NewLexicon()
	covid := lex.AddSynonyms("COVID", "COVID-19", "coronavirus", "SARS-CoV-2")
	lex.Add(covid, "Comirnaty")
	lex.Add(covid, "Vaxzevria")
	lex.Add(covid, "CoronaVac")
	lex.Add(covid, "Covaxin")
	lex.Add(covid, "mRNA")
	lex.Add(covid, "Vector Virus")
	lex.Add(covid, "Protein Subunit")
	lex.Add(covid, "Pfizer-BioNTech")
	lex.Add(covid, "AstraZeneca")
	lex.AddSynonyms("vaccine", "immunogen", "dosage", "vaccination")
	lex.AddSynonyms("football", "club", "stadium")
	model := embed.New(embed.Config{Dim: 128, Seed: 42, Lexicon: lex})
	return fed, model
}

func searcherSet(t testing.TB, emb *Embedded) []Searcher {
	t.Helper()
	anns, err := NewANNS(emb, ANNSOptions{Seed: 1, DisablePQ: true})
	if err != nil {
		t.Fatal(err)
	}
	cts, err := NewCTS(emb, CTSOptions{Seed: 1, MinClusterSize: 4, UMAPEpochs: 60})
	if err != nil {
		t.Fatal(err)
	}
	return []Searcher{NewExS(emb, ExSOptions{}), anns, cts}
}

// TestMotivatingExample is the paper's §2 scenario: the keyword "COVID"
// must retrieve WHO and CDC even though neither contains the string.
func TestMotivatingExample(t *testing.T) {
	fed, model := covidFederation(t)
	emb := EmbedFederation(fed, model)
	for _, s := range searcherSet(t, emb) {
		got, err := s.Search("COVID", 3)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(got) != 3 {
			t.Fatalf("%s: got %d results: %v", s.Name(), len(got), got)
		}
		found := map[string]bool{}
		for _, m := range got {
			found[m.RelationID] = true
		}
		for _, want := range []string{"WHO", "CDC", "ECDC"} {
			if !found[want] {
				t.Errorf("%s: top-3 for \"COVID\" misses %s: %v", s.Name(), want, got)
			}
		}
	}
}

func TestEmbedFederation(t *testing.T) {
	fed, model := covidFederation(t)
	emb := EmbedFederation(fed, model)
	if emb.NumRelations() != 5 {
		t.Fatalf("relations=%d", emb.NumRelations())
	}
	if emb.NumValues() == 0 {
		t.Fatal("no values embedded")
	}
	// Dedup: ECDC repeats "COVID-19" 4x and "Pfizer-BioNTech" 2x; its
	// unique-value count must be below its cell count.
	ecdcIdx := -1
	for i, id := range emb.RelIDs {
		if id == "ECDC" {
			ecdcIdx = i
		}
	}
	if ecdcIdx < 0 {
		t.Fatal("ECDC missing")
	}
	if len(emb.PerRel[ecdcIdx]) >= 16 {
		t.Fatalf("ECDC values not deduplicated: %d", len(emb.PerRel[ecdcIdx]))
	}
	// Weights preserve multiplicity.
	if emb.TotalWeight[ecdcIdx] != 16 { // 16 cells; caption empty
		t.Fatalf("ECDC total weight=%v want 16", emb.TotalWeight[ecdcIdx])
	}
}

func TestThresholdFiltering(t *testing.T) {
	fed, model := covidFederation(t)
	emb := EmbedFederation(fed, model)
	s := NewExS(emb, ExSOptions{Threshold: 0.99})
	got, err := s.Search("COVID vaccine", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("threshold 0.99 should filter everything, got %v", got)
	}
}

func TestKZeroAndTruncation(t *testing.T) {
	fed, model := covidFederation(t)
	emb := EmbedFederation(fed, model)
	s := NewExS(emb, ExSOptions{})
	if got, _ := s.Search("COVID", 0); got != nil {
		t.Fatalf("k=0 gave %v", got)
	}
	got, _ := s.Search("COVID", 2)
	if len(got) != 2 {
		t.Fatalf("k=2 gave %d results", len(got))
	}
}

func TestScoresDescending(t *testing.T) {
	fed, model := covidFederation(t)
	emb := EmbedFederation(fed, model)
	for _, s := range searcherSet(t, emb) {
		got, err := s.Search("COVID vaccine europe", 5)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(got); i++ {
			if got[i].Score > got[i-1].Score {
				t.Fatalf("%s: scores not descending: %v", s.Name(), got)
			}
		}
	}
}

func TestAggregators(t *testing.T) {
	fed, model := covidFederation(t)
	emb := EmbedFederation(fed, model)
	mean := NewExS(emb, ExSOptions{Aggregator: AggMean})
	max := NewExS(emb, ExSOptions{Aggregator: AggMax})
	topM := NewExS(emb, ExSOptions{Aggregator: AggTopM, TopM: 3})

	q := "COVID"
	rm, _ := mean.Search(q, 5)
	rx, _ := max.Search(q, 5)
	rt, _ := topM.Search(q, 5)
	if len(rm) == 0 || len(rx) == 0 || len(rt) == 0 {
		t.Fatal("aggregator produced no results")
	}
	// Max ≥ topM ≥ mean for the same top relation (averaging dilutes).
	if !(rx[0].Score >= rt[0].Score && rt[0].Score >= rm[0].Score) {
		t.Fatalf("aggregation ordering violated: max=%v topM=%v mean=%v",
			rx[0].Score, rt[0].Score, rm[0].Score)
	}
}

// TestQualityOnSyntheticCorpus checks the paper's headline shape on a small
// generated corpus: all three methods beat random, and CTS is at least as
// good as ExS on MAP (the clustering focuses the scoring).
func TestQualityOnSyntheticCorpus(t *testing.T) {
	p := corpus.WikiTables()
	p.NumRelations = 120
	p.NumTopics = 10
	p.QueriesPerClass = 6
	p.JudgedPerQuery = 20
	c := corpus.Generate(p)
	model := c.NewEncoder(128, 1)
	emb := EmbedFederation(c.Federation, model)

	anns, err := NewANNS(emb, ANNSOptions{Seed: 2, DisablePQ: true})
	if err != nil {
		t.Fatal(err)
	}
	cts, err := NewCTS(emb, CTSOptions{Seed: 2, MinClusterSize: 6, UMAPEpochs: 60})
	if err != nil {
		t.Fatal(err)
	}
	methods := []Searcher{NewExS(emb, ExSOptions{}), anns, cts}

	reports := map[string]eval.Report{}
	for _, s := range methods {
		run := eval.Run{}
		for _, q := range c.QueriesOf(corpus.Moderate) {
			ms, err := s.Search(q.Text, 20)
			if err != nil {
				t.Fatal(err)
			}
			ids := make([]string, len(ms))
			for i, m := range ms {
				ids[i] = m.RelationID
			}
			run[q.ID] = ids
		}
		reports[s.Name()] = eval.Evaluate(filterQrels(c.Qrels, c.QueriesOf(corpus.Moderate)), run)
	}
	for name, rep := range reports {
		if rep.MAP < 0.3 {
			t.Errorf("%s MAP=%.3f too low (semantic matching not working)", name, rep.MAP)
		}
		t.Logf("%s: MAP=%.3f MRR=%.3f NDCG@10=%.3f", name, rep.MAP, rep.MRR, rep.NDCG[10])
	}
	if reports["CTS"].MAP < reports["ExS"].MAP-0.1 {
		t.Errorf("CTS (%.3f) fell far below ExS (%.3f)", reports["CTS"].MAP, reports["ExS"].MAP)
	}
}

func filterQrels(q eval.Qrels, queries []corpus.Query) eval.Qrels {
	out := eval.Qrels{}
	for _, query := range queries {
		for doc, g := range q[query.ID] {
			out.Add(query.ID, doc, g)
		}
	}
	return out
}

func TestCTSClusterAccessors(t *testing.T) {
	fed, model := covidFederation(t)
	emb := EmbedFederation(fed, model)
	cts, err := NewCTS(emb, CTSOptions{Seed: 3, MinClusterSize: 4, UMAPEpochs: 40})
	if err != nil {
		t.Fatal(err)
	}
	if cts.NumClusters() < 1 {
		t.Fatal("no clusters")
	}
	for i := 0; i < emb.NumValues(); i++ {
		if c := cts.ClusterOf(i); c < 0 || c >= cts.NumClusters() {
			t.Fatalf("value %d assigned to cluster %d of %d", i, c, cts.NumClusters())
		}
	}
}

func TestANNSWithPQ(t *testing.T) {
	p := corpus.WikiTables()
	p.NumRelations = 60
	p.NumTopics = 6
	p.QueriesPerClass = 2
	c := corpus.Generate(p)
	model := c.NewEncoder(64, 4)
	emb := EmbedFederation(c.Federation, model)
	anns, err := NewANNS(emb, ANNSOptions{Seed: 4, PQTrainSize: 128, PQM: 8, PQK: 32})
	if err != nil {
		t.Fatal(err)
	}
	if !anns.Stats().Compressed {
		t.Fatal("PQ not active")
	}
	got, err := anns.Search(c.Queries[0].Text, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("PQ-compressed ANNS returned nothing")
	}
}

func TestCTSEmptyFederation(t *testing.T) {
	fed := table.NewFederation()
	model := embed.New(embed.Config{Dim: 32, Seed: 1})
	emb := EmbedFederation(fed, model)
	if _, err := NewCTS(emb, CTSOptions{}); err == nil {
		t.Fatal("empty federation must error")
	}
}

func TestSearchPRF(t *testing.T) {
	fed, model := covidFederation(t)
	emb := EmbedFederation(fed, model)
	for _, s := range searcherSet(t, emb) {
		got, err := SearchPRF(s, emb, "COVID", 3, PRFOptions{})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(got) == 0 {
			t.Fatalf("%s: PRF returned nothing", s.Name())
		}
		found := map[string]bool{}
		for _, m := range got {
			found[m.RelationID] = true
		}
		// Feedback must not derail the obvious answer set.
		if !found["ECDC"] && !found["WHO"] && !found["CDC"] {
			t.Fatalf("%s: PRF lost all vaccine tables: %v", s.Name(), got)
		}
		// Scores stay sorted.
		for i := 1; i < len(got); i++ {
			if got[i].Score > got[i-1].Score {
				t.Fatalf("%s: PRF scores not sorted", s.Name())
			}
		}
	}
}

func TestSearchPRFZeroK(t *testing.T) {
	fed, model := covidFederation(t)
	emb := EmbedFederation(fed, model)
	s := NewExS(emb, ExSOptions{})
	got, err := SearchPRF(s, emb, "COVID", 0, PRFOptions{})
	if err != nil || got != nil {
		t.Fatalf("k=0: %v %v", got, err)
	}
}

func TestExplain(t *testing.T) {
	fed, model := covidFederation(t)
	emb := EmbedFederation(fed, model)
	exp, err := emb.Explain("COVID", "ECDC", 3)
	if err != nil {
		t.Fatal(err)
	}
	if exp.RelationID != "ECDC" || len(exp.Top) != 3 {
		t.Fatalf("explanation=%+v", exp)
	}
	// The literal match must be the top contributor.
	if exp.Top[0].Value != "COVID-19" {
		t.Fatalf("top contributor %q, want COVID-19 (%+v)", exp.Top[0].Value, exp.Top)
	}
	if exp.Top[0].Share <= 0 || exp.Top[0].Share > 1 {
		t.Fatalf("share=%v", exp.Top[0].Share)
	}
	if exp.Score <= 0 {
		t.Fatalf("score=%v", exp.Score)
	}
	if _, err := emb.Explain("COVID", "missing", 3); err == nil {
		t.Fatal("unknown relation must error")
	}
}
