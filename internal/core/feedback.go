package core

import (
	"context"
	"fmt"

	"semdisco/internal/vec"
)

// vectorSearcher is the internal contract PRF needs: rank relations for an
// arbitrary query vector. All three methods satisfy it.
type vectorSearcher interface {
	searchVec(q []float32, k int) ([]Match, error)
}

// searchVec implements vectorSearcher for ExS.
func (s *ExS) searchVec(q []float32, k int) ([]Match, error) {
	return s.searchEncoded(q, k)
}

// searchVec implements vectorSearcher for ANNS.
func (s *ANNS) searchVec(q []float32, k int) ([]Match, error) {
	return s.SearchEncoded(context.Background(), q, k)
}

// searchVec implements vectorSearcher for CTS by re-entering the cluster
// walk with the given vector.
func (s *CTS) searchVec(q []float32, k int) ([]Match, error) {
	return s.searchEncoded(q, k)
}

// PRFOptions tunes pseudo-relevance feedback.
type PRFOptions struct {
	// FeedbackDocs is how many top relations feed back; default 3.
	FeedbackDocs int
	// Alpha weighs the original query, Beta the feedback centroid
	// (Rocchio); defaults 1.0 and 0.5.
	Alpha, Beta float32
}

// SearchPRF runs Rocchio-style pseudo-relevance feedback on top of any of
// the three methods: an initial search retrieves FeedbackDocs relations,
// their value-embedding centroids are averaged into a feedback vector, and
// the expanded query α·q + β·centroid is searched again. This is the
// classic query-expansion extension of embedding retrieval; it helps
// exactly where the paper's §5.3 analysis says short queries lack context.
func SearchPRF(s Searcher, emb *Embedded, query string, k int, opt PRFOptions) ([]Match, error) {
	vs, ok := s.(vectorSearcher)
	if !ok {
		return nil, fmt.Errorf("core: %s does not support vector search", s.Name())
	}
	if opt.FeedbackDocs == 0 {
		opt.FeedbackDocs = 3
	}
	if opt.Alpha == 0 {
		opt.Alpha = 1.0
	}
	if opt.Beta == 0 {
		opt.Beta = 0.5
	}
	q := emb.Enc.Encode(query)
	initial, err := vs.searchVec(q, opt.FeedbackDocs)
	if err != nil {
		return nil, err
	}
	if len(initial) == 0 {
		return vs.searchVec(q, k)
	}
	centroid := make([]float32, emb.Enc.Dim())
	for _, m := range initial {
		ri, ok := emb.RelIndex(m.RelationID)
		if !ok {
			continue
		}
		// The relation's own centroid: weighted mean of its value vectors.
		relCentroid := make([]float32, emb.Enc.Dim())
		for _, vi := range emb.PerRel[ri] {
			v := &emb.Values[vi]
			vec.AddScaled(relCentroid, v.Weight, v.Vec)
		}
		vec.Normalize(relCentroid)
		vec.Add(centroid, relCentroid)
	}
	vec.Normalize(centroid)

	expanded := make([]float32, emb.Enc.Dim())
	vec.AddScaled(expanded, opt.Alpha, q)
	vec.AddScaled(expanded, opt.Beta, centroid)
	vec.Normalize(expanded)
	return vs.searchVec(expanded, k)
}
