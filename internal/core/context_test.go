package core

import (
	"context"
	"errors"
	"testing"

	"semdisco/internal/embed"
	"semdisco/internal/table"
)

func newTestEncoder(dim int) embed.Encoder {
	return embed.New(embed.Config{Dim: dim, Seed: 1})
}

// testFederation builds a small synthetic federation of n relations.
func testFederation(t *testing.T, n int) *table.Federation {
	t.Helper()
	fed := table.NewFederation()
	for i := 0; i < n; i++ {
		r := &table.Relation{
			ID:      relID(i),
			Source:  "src",
			Columns: []string{"a", "b"},
			Rows: [][]string{
				{word(i, 0), word(i, 1)},
				{word(i, 2), word(i, 3)},
			},
		}
		if err := fed.Add(r); err != nil {
			t.Fatalf("add: %v", err)
		}
	}
	return fed
}

func relID(i int) string {
	return "rel-" + string(rune('a'+i%26)) + "-" + string(rune('0'+(i/26)%10)) + string(rune('0'+i%10))
}

func word(i, j int) string {
	letters := "abcdefghijklmnopqrstuvwxyz"
	return string(letters[(i+j)%26]) + string(letters[(i*3+j)%26]) + string(letters[(i*7+j*5)%26])
}

// TestSearchContextCancelled verifies every method surfaces the context
// error instead of a result when the context is already cancelled.
func TestSearchContextCancelled(t *testing.T) {
	fed := testFederation(t, 40)
	emb := EmbedFederation(fed, newTestEncoder(64))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	searchers := []ContextSearcher{NewExS(emb, ExSOptions{})}
	if anns, err := NewANNS(emb, ANNSOptions{Seed: 1, DisablePQ: true}); err != nil {
		t.Fatalf("anns: %v", err)
	} else {
		searchers = append(searchers, anns)
	}
	if cts, err := NewCTS(emb, CTSOptions{Seed: 1, Reduction: ReducePCA}); err != nil {
		t.Fatalf("cts: %v", err)
	} else {
		searchers = append(searchers, cts)
	}

	for _, s := range searchers {
		name := s.(Searcher).Name()
		matches, err := s.SearchTracedContext(ctx, "abc", 5, nil)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: want context.Canceled, got matches=%v err=%v", name, matches, err)
		}
		es := s.(EncodedSearcher)
		matches, err = es.SearchEncoded(ctx, emb.Enc.Encode("abc"), 5)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s SearchEncoded: want context.Canceled, got matches=%v err=%v", name, matches, err)
		}
	}
}

// TestSearchContextBackground verifies the context path returns identical
// results to the plain path when the context never expires.
func TestSearchContextBackground(t *testing.T) {
	fed := testFederation(t, 40)
	emb := EmbedFederation(fed, newTestEncoder(64))
	s := NewExS(emb, ExSOptions{})

	plain, err := s.Search("abc def", 10)
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	ctxed, err := s.SearchTracedContext(context.Background(), "abc def", 10, nil)
	if err != nil {
		t.Fatalf("ctx search: %v", err)
	}
	if len(plain) != len(ctxed) {
		t.Fatalf("result mismatch: %d vs %d", len(plain), len(ctxed))
	}
	for i := range plain {
		if plain[i] != ctxed[i] {
			t.Fatalf("match %d differs: %+v vs %+v", i, plain[i], ctxed[i])
		}
	}
}
