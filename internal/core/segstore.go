package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"semdisco/internal/embed"
	"semdisco/internal/obs"
	"semdisco/internal/segment"
	"semdisco/internal/table"
)

// SegmentBuilder constructs a method's full index (ExS, ANNS or CTS) over
// one segment's embedded federation. The store calls it in the background
// when sealing the mutable segment and when compacting — for ANNS that
// re-trains the PQ codebook on the merged live corpus, for CTS it re-runs
// the whole UMAP → HDBSCAN → medoid pipeline, which is exactly how the
// drift triggers turn diagnostics into repair.
type SegmentBuilder func(emb *Embedded) (EncodedSearcher, error)

// SegmentStoreOptions configures a segment store.
type SegmentStoreOptions struct {
	// Build constructs the configured method's index over a sealed segment.
	Build SegmentBuilder
	// ExS configures the exhaustive scan used for the mutable segment and
	// for frozen segments whose background build has not finished yet. Its
	// threshold must match the method's, so per-segment prefixes merge into
	// the same ranking a monolithic index would produce.
	ExS ExSOptions
	// Policy bounds the store's shape; zero fields take defaults.
	Policy segment.Policy
	// Method is the label searches are recorded under ("ExS", "ANNS", "CTS").
	Method string
	// AutoMaintain kicks a background maintenance pass when a mutation
	// trips a policy threshold. Disable for deterministic tests that drive
	// Maintain and Compact by hand.
	AutoMaintain bool
}

// seg is one immutable segment: frozen (exhaustively scanned while its
// index builds in the background) or sealed (carrying the method's full
// index). Its Embedded is an RCU snapshot that never changes; only its
// shared tombstone set advances.
type seg struct {
	id       uint64
	sealed   bool
	emb      *Embedded
	searcher EncodedSearcher
	// baselineDrift and baselineDistortion are the segment's health gauges
	// at build time. The compaction policy triggers on growth beyond these
	// baselines — a fresh CTS build has nonzero medoid drift by
	// construction (the medoid is a real value, not the centroid), so
	// absolute thresholds would retrigger forever.
	baselineDrift      float64
	baselineDistortion float64
}

// mutableSeg is the store's write head: an append-only embedded federation
// republished through an atomic pointer on every add (RCU), searched by
// exhaustive scan so the write path never builds index structures.
type mutableSeg struct {
	id  uint64
	emb atomic.Pointer[Embedded]
}

// storeView is one immutable snapshot of the segment set. Readers load it
// once per operation; swaps publish a fresh value through the manifest.
type storeView struct {
	segs []*seg // frozen/sealed segments, oldest first
	mut  *mutableSeg
}

// relLoc records where a live relation currently resides, for O(1) deletes.
type relLoc struct {
	segID  uint64
	tombs  *segment.Tombstones
	slot   int
	values int
}

// SegmentStore composes the three searchers with the segment primitives
// into an LSM-like index: a mutable in-memory segment absorbs writes with
// no index build on the write path, sealed immutable segments carry full
// ANNS/CTS structures, deletes tombstone in place, and a background
// compactor merges segments and re-trains indexes when policy thresholds
// trip. Searches load one manifest snapshot and never block on writers;
// writers serialize on a mutation mutex that searches never touch.
//
// It implements the full searcher surface (Searcher, TracedSearcher,
// ContextSearcher, EncodedSearcher, BatchSearcher, FilteredSearcher). When
// the store is "simple" — one sealed segment, no tombstones, empty mutable
// segment, i.e. any index that has never been mutated — every search
// delegates straight to the base searcher, preserving the monolithic fast
// paths (and their results) bit for bit.
type SegmentStore struct {
	build  SegmentBuilder
	exsOpt ExSOptions
	policy segment.Policy
	method string
	auto   bool
	reg    *obs.Registry
	enc    embed.Encoder

	man *segment.Manifest[*storeView]

	// mu serializes mutations (Add/Delete/Update), view swaps, and the
	// owner/order bookkeeping. Searches never acquire it.
	mu        sync.Mutex
	owner     map[string]relLoc
	nextOrder int
	nextSegID uint64

	// maintMu serializes maintenance passes (seal, upgrade, compact);
	// mutations and searches proceed concurrently with a pass.
	maintMu   sync.Mutex
	maintBusy atomic.Bool

	liveRels    atomic.Int64
	deadRels    atomic.Int64
	liveVals    atomic.Int64
	deadVals    atomic.Int64
	seals       atomic.Int64
	compactions atomic.Int64
	compacting  atomic.Bool
	lastCompact atomic.Int64 // microseconds
	lastTrigger atomic.Value // string
	mutations   atomic.Int64
}

// SegmentStats is the store's observable state, exported through
// Engine.Stats and the HTTP debug surface.
type SegmentStats struct {
	// Segments counts frozen/sealed segments plus a non-empty mutable one.
	Segments int `json:"segments"`
	// SealedSegments counts segments carrying a fully built index.
	SealedSegments   int    `json:"sealed_segments"`
	MutableRelations int    `json:"mutable_relations"`
	MutableValues    int    `json:"mutable_values"`
	LiveRelations    int    `json:"live_relations"`
	DeadRelations    int    `json:"dead_relations"`
	LiveValues       int    `json:"live_values"`
	DeadValues       int    `json:"dead_values"`
	Epoch            uint64 `json:"epoch"`
	Seals            int64  `json:"seals"`
	Compactions      int64  `json:"compactions"`
	// Compacting reports a compaction is building in the background.
	Compacting bool `json:"compacting"`
	// LastCompactionMS is the last completed compaction's wall clock.
	LastCompactionMS float64 `json:"last_compaction_ms,omitempty"`
	// LastCompactionTrigger names what tripped the last compaction.
	LastCompactionTrigger string `json:"last_compaction_trigger,omitempty"`
}

// NewSegmentStore wraps a freshly built index as the base segment of a
// segment store. The base Embedded gains a tombstone set and the identity
// insertion order if it has neither.
func NewSegmentStore(base *Embedded, baseSearcher EncodedSearcher, opt SegmentStoreOptions) *SegmentStore {
	if base.Tombs == nil {
		base.Tombs = segment.NewTombstones()
	}
	if base.RelOrder == nil {
		order := make([]int, len(base.RelIDs))
		for i := range order {
			order[i] = i
		}
		base.RelOrder = order
	}
	st := &SegmentStore{
		build:  opt.Build,
		exsOpt: opt.ExS,
		policy: opt.Policy.WithDefaults(),
		method: opt.Method,
		auto:   opt.AutoMaintain,
		reg:    base.Obs,
		enc:    base.Enc,
		owner:  make(map[string]relLoc, len(base.RelIDs)),
	}
	if st.method == "" && baseSearcher != nil {
		st.method = baseSearcher.Name()
	}
	baseSeg := &seg{id: 0, sealed: true, emb: base, searcher: baseSearcher}
	st.recordBaselines(baseSeg)
	mut := &mutableSeg{id: 1}
	mut.emb.Store(NewEmptyEmbedded(base.Enc, base.Obs))
	st.nextSegID = 2
	st.man = segment.NewManifest(&storeView{segs: []*seg{baseSeg}, mut: mut})
	for i, id := range base.RelIDs {
		if base.Tombs.Dead(i) {
			st.deadRels.Add(1)
			st.deadVals.Add(int64(len(base.PerRel[i])))
			continue
		}
		st.owner[id] = relLoc{segID: 0, tombs: base.Tombs, slot: i, values: len(base.PerRel[i])}
		st.liveRels.Add(1)
		st.liveVals.Add(int64(len(base.PerRel[i])))
	}
	for _, o := range base.RelOrder {
		if o >= st.nextOrder {
			st.nextOrder = o + 1
		}
	}
	st.publishGauges()
	return st
}

// recordBaselines captures a segment's build-time drift/distortion gauges
// so the compaction policy can trigger on growth, not absolute level.
func (st *SegmentStore) recordBaselines(sg *seg) {
	hr, ok := sg.searcher.(HealthReporter)
	if !ok {
		return
	}
	h := hr.IndexHealth()
	if h.Clusters != nil {
		sg.baselineDrift = h.Clusters.MeanMedoidDrift
	}
	if h.PQ != nil && h.PQ.Trained {
		sg.baselineDistortion = h.PQ.Distortion.Mean
	}
}

// view returns the current manifest snapshot.
func (st *SegmentStore) view() *storeView {
	v, _ := st.man.Load()
	return v
}

// simple reports the view is a never-mutated single index, for which every
// search delegates to the base searcher unchanged.
func (v *storeView) simple() bool {
	return len(v.segs) == 1 && v.segs[0].sealed &&
		v.segs[0].emb.deadCount() == 0 &&
		v.mut.emb.Load().NumValues() == 0
}

// mutScan returns an exhaustive searcher over the mutable segment's
// current snapshot, or nil when it is empty.
func (st *SegmentStore) mutScan(v *storeView) (*ExS, *Embedded) {
	memb := v.mut.emb.Load()
	if memb.NumValues() == 0 {
		return nil, nil
	}
	return NewExS(memb, st.exsOpt), memb
}

// Base returns the oldest sealed segment's searcher and embedding — the
// index diagnostics (health, recall probes) introspect. On a never-mutated
// store this is exactly the engine's only index.
func (st *SegmentStore) Base() (EncodedSearcher, *Embedded) {
	v := st.view()
	return v.segs[0].searcher, v.segs[0].emb
}

// ---------------------------------------------------------------------------
// Mutation path

// Add lands a relation in the mutable segment: encode, append, republish —
// no index build. The ID must not be live (deleted IDs may be reused).
func (st *SegmentStore) Add(r *table.Relation) error {
	if err := r.Validate(); err != nil {
		return err
	}
	st.mu.Lock()
	if err := st.addLocked(r); err != nil {
		st.mu.Unlock()
		return err
	}
	st.mu.Unlock()
	st.noteMutation()
	return nil
}

func (st *SegmentStore) addLocked(r *table.Relation) error {
	if _, live := st.owner[r.ID]; live {
		return fmt.Errorf("core: relation %q already indexed", r.ID)
	}
	v := st.view()
	cur := v.mut.emb.Load()
	ne := cur.cloneForAppend()
	if old, ok := ne.relIdx[r.ID]; ok && ne.Tombs.Dead(old) {
		// A tombstoned copy of this ID still occupies a slot in the mutable
		// segment (delete/update before any seal); drop its index entry so
		// the ID is free for reuse. The clone's map is private, so older
		// snapshots are unaffected.
		delete(ne.relIdx, r.ID)
	}
	slot, err := ne.AddRelation(r)
	if err != nil {
		return err
	}
	ne.RelOrder = append(ne.RelOrder, st.nextOrder)
	st.nextOrder++
	nvals := len(ne.PerRel[slot])
	st.owner[r.ID] = relLoc{segID: v.mut.id, tombs: ne.Tombs, slot: slot, values: nvals}
	v.mut.emb.Store(ne)
	st.liveRels.Add(1)
	st.liveVals.Add(int64(nvals))
	st.publishGauges()
	return nil
}

// Delete tombstones a relation. The slot's vectors stay in place — every
// search path filters them — until compaction reclaims the space.
func (st *SegmentStore) Delete(id string) error {
	st.mu.Lock()
	if err := st.deleteLocked(id); err != nil {
		st.mu.Unlock()
		return err
	}
	st.mu.Unlock()
	st.noteMutation()
	return nil
}

func (st *SegmentStore) deleteLocked(id string) error {
	loc, ok := st.owner[id]
	if !ok {
		return fmt.Errorf("core: relation %q not found", id)
	}
	loc.tombs.Mark(loc.slot)
	delete(st.owner, id)
	st.liveRels.Add(-1)
	st.deadRels.Add(1)
	st.liveVals.Add(-int64(loc.values))
	st.deadVals.Add(int64(loc.values))
	st.publishGauges()
	return nil
}

// Update replaces a relation's contents: tombstone the old copy, append
// the new one to the mutable segment, atomically with respect to other
// mutations. The relation moves to the end of the global insertion order,
// exactly as if it had been deleted and re-added.
func (st *SegmentStore) Update(r *table.Relation) error {
	if err := r.Validate(); err != nil {
		return err
	}
	st.mu.Lock()
	if _, ok := st.owner[r.ID]; !ok {
		st.mu.Unlock()
		return fmt.Errorf("core: relation %q not found", r.ID)
	}
	if err := st.deleteLocked(r.ID); err != nil {
		st.mu.Unlock()
		return err
	}
	if err := st.addLocked(r); err != nil {
		st.mu.Unlock()
		return err
	}
	st.mu.Unlock()
	st.noteMutation()
	return nil
}

// Has reports whether id is a live relation.
func (st *SegmentStore) Has(id string) bool {
	st.mu.Lock()
	_, ok := st.owner[id]
	st.mu.Unlock()
	return ok
}

// LiveRelations returns the live relation IDs in store-global insertion
// order — the order a fresh build over the surviving corpus would index
// them in, which is the equivalence tests' construction recipe.
func (st *SegmentStore) LiveRelations() []string {
	v := st.view()
	type ord struct {
		order int
		id    string
	}
	var out []ord
	collect := func(emb *Embedded) {
		for i, id := range emb.RelIDs {
			if emb.Tombs.Dead(i) {
				continue
			}
			out = append(out, ord{order: emb.orderOf(i), id: id})
		}
	}
	for _, sg := range v.segs {
		collect(sg.emb)
	}
	collect(v.mut.emb.Load())
	sort.Slice(out, func(i, j int) bool { return out[i].order < out[j].order })
	ids := make([]string, len(out))
	for i, o := range out {
		ids[i] = o.id
	}
	return ids
}

// NumLiveRelations returns the live relation count.
func (st *SegmentStore) NumLiveRelations() int { return int(st.liveRels.Load()) }

// NumLiveValues returns the live embedded-value count.
func (st *SegmentStore) NumLiveValues() int { return int(st.liveVals.Load()) }

// noteMutation kicks an asynchronous maintenance pass when a policy
// threshold tripped. The goroutine is one-shot and CAS-guarded: any number
// of mutations while a pass runs produce at most one follow-up.
func (st *SegmentStore) noteMutation() {
	n := st.mutations.Add(1)
	if !st.auto {
		return
	}
	due := st.sealDue() || st.quickCompactDue()
	if !due && st.policy.DriftCheckEvery > 0 && n%int64(st.policy.DriftCheckEvery) == 0 {
		due = true // periodic pass to evaluate the drift triggers
	}
	if !due {
		return
	}
	if !st.maintBusy.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer st.maintBusy.Store(false)
		_ = st.Maintain()
	}()
}

func (st *SegmentStore) sealDue() bool {
	if st.policy.MaxMutableValues <= 0 {
		return false
	}
	return st.view().mut.emb.Load().NumValues() >= st.policy.MaxMutableValues
}

func (st *SegmentStore) quickCompactDue() bool {
	v := st.view()
	if st.policy.MaxSegments > 0 && len(v.segs) > st.policy.MaxSegments {
		return true
	}
	if st.policy.MaxDeadFraction > 0 {
		dead, live := st.deadRels.Load(), st.liveRels.Load()
		if dead > 0 && float64(dead) >= st.policy.MaxDeadFraction*float64(dead+live) {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Maintenance: seal, upgrade, compact

// Maintain runs one maintenance pass synchronously: seal the mutable
// segment if it is over threshold, build indexes for any frozen segments,
// then compact if a policy trigger fires. Passes serialize among
// themselves; searches and mutations proceed concurrently.
func (st *SegmentStore) Maintain() error {
	st.maintMu.Lock()
	defer st.maintMu.Unlock()
	if st.sealDue() {
		st.freeze()
	}
	if err := st.upgradeFrozen(); err != nil {
		return err
	}
	if trigger := st.compactTrigger(); trigger != "" {
		return st.compactLocked(trigger)
	}
	return nil
}

// Compact forces a full compaction (trigger "manual"), synchronously.
func (st *SegmentStore) Compact() error {
	st.maintMu.Lock()
	defer st.maintMu.Unlock()
	return st.compactLocked(segment.TriggerManual)
}

// freeze turns the current mutable segment into an immutable frozen
// segment (still exhaustively scanned — the index is built afterwards,
// outside the locks) and installs a fresh empty mutable segment. No-op on
// an empty mutable segment. Owner entries keep working: the frozen segment
// inherits the mutable segment's ID and tombstone set.
func (st *SegmentStore) freeze() {
	st.mu.Lock()
	defer st.mu.Unlock()
	v := st.view()
	memb := v.mut.emb.Load()
	if memb.NumValues() == 0 {
		return
	}
	frozen := &seg{id: v.mut.id, emb: memb, searcher: NewExS(memb, st.exsOpt)}
	newMut := &mutableSeg{id: st.nextSegID}
	st.nextSegID++
	newMut.emb.Store(NewEmptyEmbedded(st.enc, st.reg))
	segs := append(append(make([]*seg, 0, len(v.segs)+1), v.segs...), frozen)
	st.man.Swap(&storeView{segs: segs, mut: newMut})
	st.seals.Add(1)
	st.reg.Counter(MetricSeals).Inc()
	st.publishGauges()
}

// upgradeFrozen builds the method's index for every frozen segment, outside
// the mutation lock, then swaps the sealed segments in. Searches keep
// using the exhaustive scan until the swap.
func (st *SegmentStore) upgradeFrozen() error {
	v := st.view()
	built := make(map[uint64]*seg)
	for _, sg := range v.segs {
		if sg.sealed {
			continue
		}
		searcher, err := st.build(sg.emb)
		if err != nil {
			return fmt.Errorf("core: sealing segment %d: %w", sg.id, err)
		}
		ns := &seg{id: sg.id, sealed: true, emb: sg.emb, searcher: searcher}
		st.recordBaselines(ns)
		built[sg.id] = ns
	}
	if len(built) == 0 {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	v = st.view()
	segs := make([]*seg, len(v.segs))
	for i, sg := range v.segs {
		if ns, ok := built[sg.id]; ok {
			segs[i] = ns
		} else {
			segs[i] = sg
		}
	}
	st.man.Swap(&storeView{segs: segs, mut: v.mut})
	return nil
}

// compactTrigger evaluates the compaction policy against the current view
// and counters, returning the trigger name or "".
func (st *SegmentStore) compactTrigger() string {
	v := st.view()
	if st.policy.MaxSegments > 0 && len(v.segs) > st.policy.MaxSegments {
		return segment.TriggerSegmentCount
	}
	if st.policy.MaxDeadFraction > 0 {
		dead, live := st.deadRels.Load(), st.liveRels.Load()
		if dead > 0 && float64(dead) >= st.policy.MaxDeadFraction*float64(dead+live) {
			return segment.TriggerDeadFraction
		}
	}
	// Drift triggers: only segments with tombstones can have drifted away
	// from their build baseline (health walks live values only), and only
	// they have anything for a rebuild to reclaim — which also guards
	// against a rebuild-loop on a corpus whose fresh build re-measures the
	// same drift.
	for _, sg := range v.segs {
		if !sg.sealed || sg.emb.deadCount() == 0 {
			continue
		}
		hr, ok := sg.searcher.(HealthReporter)
		if !ok {
			continue
		}
		h := hr.IndexHealth()
		if st.policy.MaxMedoidDrift > 0 && h.Clusters != nil &&
			h.Clusters.MeanMedoidDrift-sg.baselineDrift > st.policy.MaxMedoidDrift {
			return segment.TriggerMedoidDrift
		}
		if st.policy.MaxPQDistortion > 0 && h.PQ != nil && h.PQ.Trained &&
			h.PQ.Distortion.Mean-sg.baselineDistortion > st.policy.MaxPQDistortion {
			return segment.TriggerPQDistortion
		}
	}
	return ""
}

// compactLocked merges every segment's surviving relations into one fresh
// base segment with a newly built index, then swaps it in. Callers hold
// maintMu. The sequence:
//
//  1. Freeze the mutable segment (under mu, cheap) so the compaction input
//     is a fixed set of immutable segments; writes go to a fresh mutable.
//  2. Outside all locks: collect survivors (live at snapshot time), sorted
//     by global insertion order; build the merged embedding reusing the
//     stored vectors (no re-encoding); build the method's index — for ANNS
//     this re-trains PQ on the live corpus, for CTS it re-clusters.
//  3. Under mu: re-check every survivor against the owner map. Relations
//     deleted or updated while the build ran get tombstones on the NEW
//     segment, so no delete is ever lost to a racing compaction. Swap the
//     manifest to [merged] + current mutable.
//
// Searches are never blocked: they run against the old view during the
// build and the new view after the swap.
func (st *SegmentStore) compactLocked(trigger string) error {
	start := time.Now()
	st.freeze()
	st.compacting.Store(true)
	defer st.compacting.Store(false)

	v := st.view()
	inputs := v.segs
	mutID := v.mut.id

	type survivor struct {
		sg    *seg
		slot  int
		order int
		id    string
	}
	var survivors []survivor
	for _, sg := range inputs {
		for slot, id := range sg.emb.RelIDs {
			if sg.emb.Tombs.Dead(slot) {
				continue
			}
			survivors = append(survivors, survivor{sg: sg, slot: slot, order: sg.emb.orderOf(slot), id: id})
		}
	}
	sort.Slice(survivors, func(i, j int) bool { return survivors[i].order < survivors[j].order })

	merged := NewEmptyEmbedded(st.enc, st.reg)
	for _, sv := range survivors {
		merged.appendFrom(sv.sg.emb, sv.slot)
	}
	var (
		searcher EncodedSearcher
		err      error
	)
	if merged.NumValues() == 0 {
		// Everything was deleted: an empty exhaustive scan keeps the store
		// serving (CTS/ANNS builders reject empty corpora).
		searcher = NewExS(merged, st.exsOpt)
	} else {
		searcher, err = st.build(merged)
		if err != nil {
			return fmt.Errorf("core: compaction build: %w", err)
		}
	}

	st.mu.Lock()
	newSeg := &seg{id: st.nextSegID, sealed: true, emb: merged, searcher: searcher}
	st.nextSegID++
	for i, sv := range survivors {
		loc, ok := st.owner[sv.id]
		switch {
		case !ok:
			// Deleted while the build ran: carry the tombstone forward.
			merged.Tombs.Mark(i)
		case loc.segID == mutID || loc.segID >= newSeg.id:
			// Updated while the build ran: the fresh copy lives in the
			// mutable segment; the stale copy we just merged is dead.
			merged.Tombs.Mark(i)
		default:
			st.owner[sv.id] = relLoc{segID: newSeg.id, tombs: merged.Tombs, slot: i, values: loc.values}
		}
	}
	cur := st.view()
	st.man.Swap(&storeView{segs: []*seg{newSeg}, mut: cur.mut})
	// Recompute the reclaim counters exactly: only compaction-window churn
	// (marked above) and mutable-segment tombstones remain dead.
	st.recountLocked(newSeg, cur.mut)
	st.compactions.Add(1)
	st.lastCompact.Store(time.Since(start).Microseconds())
	st.lastTrigger.Store(trigger)
	st.mu.Unlock()

	st.recordBaselines(newSeg)
	st.reg.Counter(obs.L(MetricCompactions, "trigger", trigger)).Inc()
	st.reg.Histogram(MetricCompactionSeconds).Observe(time.Since(start))
	st.publishGauges()
	return nil
}

// recountLocked recomputes the live/dead counters from the post-swap state.
func (st *SegmentStore) recountLocked(base *seg, mut *mutableSeg) {
	var liveR, deadR, liveV, deadV int64
	count := func(emb *Embedded) {
		for i := range emb.RelIDs {
			n := int64(len(emb.PerRel[i]))
			if emb.Tombs.Dead(i) {
				deadR++
				deadV += n
			} else {
				liveR++
				liveV += n
			}
		}
	}
	count(base.emb)
	count(mut.emb.Load())
	st.liveRels.Store(liveR)
	st.deadRels.Store(deadR)
	st.liveVals.Store(liveV)
	st.deadVals.Store(deadV)
}

// StartMaintenance launches the background compactor: an interval ticker
// (Policy.Interval; disabled when 0) on top of the mutation-kicked passes.
// The returned stop function terminates it and waits for any in-flight
// pass.
func (st *SegmentStore) StartMaintenance() (stop func()) {
	c := segment.NewCompactor(st.policy.Interval, func(string) { _ = st.Maintain() })
	c.Start()
	return c.Stop
}

// publishGauges refreshes the segment-shape gauges.
func (st *SegmentStore) publishGauges() {
	if st.reg == nil {
		return
	}
	v := st.view()
	n := len(v.segs)
	if v.mut.emb.Load().NumValues() > 0 {
		n++
	}
	st.reg.Gauge(MetricSegments).Set(float64(n))
	st.reg.Gauge(MetricTombstonedRels).Set(float64(st.deadRels.Load()))
}

// Stats snapshots the store's shape.
func (st *SegmentStore) Stats() SegmentStats {
	v, epoch := st.man.Load()
	memb := v.mut.emb.Load()
	s := SegmentStats{
		SealedSegments:   0,
		MutableValues:    memb.NumValues(),
		MutableRelations: memb.NumRelations(),
		LiveRelations:    int(st.liveRels.Load()),
		DeadRelations:    int(st.deadRels.Load()),
		LiveValues:       int(st.liveVals.Load()),
		DeadValues:       int(st.deadVals.Load()),
		Epoch:            epoch,
		Seals:            st.seals.Load(),
		Compactions:      st.compactions.Load(),
		Compacting:       st.compacting.Load(),
		LastCompactionMS: float64(st.lastCompact.Load()) / 1000,
	}
	s.Segments = len(v.segs)
	if memb.NumValues() > 0 {
		s.Segments++
	}
	for _, sg := range v.segs {
		if sg.sealed {
			s.SealedSegments++
		}
	}
	if t, ok := st.lastTrigger.Load().(string); ok {
		s.LastCompactionTrigger = t
	}
	return s
}

// ---------------------------------------------------------------------------
// Search path

// Name implements Searcher.
func (st *SegmentStore) Name() string { return st.method }

// Search implements Searcher.
func (st *SegmentStore) Search(query string, k int) ([]Match, error) {
	return st.SearchTracedContext(context.Background(), query, k, nil)
}

// SearchTraced implements TracedSearcher.
func (st *SegmentStore) SearchTraced(query string, k int, tr *obs.Trace) ([]Match, error) {
	return st.SearchTracedContext(context.Background(), query, k, tr)
}

// SearchTracedContext implements ContextSearcher. A simple (never-mutated)
// store delegates to the base searcher's own instrumented path; a
// multi-segment store encodes once, searches every segment against the
// loaded snapshot, and merges the per-segment prefixes.
func (st *SegmentStore) SearchTracedContext(ctx context.Context, query string, k int, tr *obs.Trace) ([]Match, error) {
	v := st.view()
	if v.simple() {
		return v.segs[0].searcher.(ContextSearcher).SearchTracedContext(ctx, query, k, tr)
	}
	if k <= 0 {
		return nil, nil
	}
	o := startSearch(st.reg, st.method, tr)
	sp := o.stage("encode")
	q := st.enc.Encode(query)
	o.endStage(sp)
	sp = o.stage("segments")
	matches, err := st.searchSegments(ctx, q, k, v)
	if err != nil {
		return nil, err
	}
	o.endStage(sp.AnnotateInt("segments", len(v.segs)+1).AnnotateInt("matches", len(matches)))
	o.finish()
	return matches, nil
}

// SearchEncoded implements EncodedSearcher — the cluster layer's shard
// entry point.
func (st *SegmentStore) SearchEncoded(ctx context.Context, q []float32, k int) ([]Match, error) {
	v := st.view()
	if v.simple() {
		return v.segs[0].searcher.SearchEncoded(ctx, q, k)
	}
	if k <= 0 {
		return nil, nil
	}
	return st.searchSegments(ctx, q, k, v)
}

// searchVec implements vectorSearcher so pseudo-relevance feedback
// (SearchPRF) runs against the whole segment set.
func (st *SegmentStore) searchVec(q []float32, k int) ([]Match, error) {
	return st.SearchEncoded(context.Background(), q, k)
}

// segMatch tags a match with its store-global insertion rank for merging.
type segMatch struct {
	m     Match
	order int
}

// searchSegments runs the query against every segment of the snapshot and
// merges the per-segment top-k prefixes under the total order (score
// descending, insertion order ascending) — the same comparator a
// monolithic scan ranks by, so the merged prefix is exactly the ranking a
// fresh build over the surviving corpus would produce.
func (st *SegmentStore) searchSegments(ctx context.Context, q []float32, k int, v *storeView) ([]Match, error) {
	var all []segMatch
	run := func(s EncodedSearcher, emb *Embedded) error {
		if emb.NumValues() == 0 {
			return nil
		}
		ms, err := s.SearchEncoded(ctx, q, k)
		if err != nil {
			return err
		}
		for _, m := range ms {
			i, ok := emb.RelIndex(m.RelationID)
			if !ok {
				continue
			}
			all = append(all, segMatch{m: m, order: emb.orderOf(i)})
		}
		return nil
	}
	for _, sg := range v.segs {
		if err := run(sg.searcher, sg.emb); err != nil {
			return nil, err
		}
	}
	if ex, memb := st.mutScan(v); ex != nil {
		if err := run(ex, memb); err != nil {
			return nil, err
		}
	}
	return mergeSegMatches(all, k), nil
}

// mergeSegMatches sorts tagged matches score-descending with insertion
// order as the tie-break and truncates to k.
func mergeSegMatches(all []segMatch, k int) []Match {
	sort.Slice(all, func(i, j int) bool {
		if all[i].m.Score != all[j].m.Score {
			return all[i].m.Score > all[j].m.Score
		}
		return all[i].order < all[j].order
	})
	if len(all) > k {
		all = all[:k]
	}
	out := make([]Match, len(all))
	for i, t := range all {
		out[i] = t.m
	}
	return out
}

// SearchEncodedBatch implements BatchSearcher. A simple store delegates to
// the base index's fused batch kernel; a multi-segment store answers
// per-query over the same snapshot — every row still bit-identical to its
// sequential counterpart, since the sequential path is the same merge.
func (st *SegmentStore) SearchEncodedBatch(ctx context.Context, qs [][]float32, ks []int, costs []*obs.Cost) ([][]Match, error) {
	v := st.view()
	if v.simple() {
		if bs, ok := v.segs[0].searcher.(BatchSearcher); ok {
			return bs.SearchEncodedBatch(ctx, qs, ks, costs)
		}
	}
	if err := checkBatchArgs(len(qs), ks, costs); err != nil {
		return nil, err
	}
	out := make([][]Match, len(qs))
	for i := range qs {
		ictx := ctx
		if costs != nil && costs[i] != nil {
			ictx = obs.ContextWithCost(ctx, costs[i])
		}
		if ks[i] <= 0 {
			continue
		}
		ms, err := st.searchSegments(ictx, qs[i], ks[i], v)
		if err != nil {
			return nil, err
		}
		out[i] = ms
	}
	return out, nil
}

// SearchFiltered implements FilteredSearcher: each segment's own filtered
// search runs with the allow predicate (tombstoned relations never pass,
// via allowedSet), and the per-segment prefixes merge as usual.
func (st *SegmentStore) SearchFiltered(query string, k int, allow func(string) bool) ([]Match, error) {
	v := st.view()
	if v.simple() {
		return v.segs[0].searcher.(FilteredSearcher).SearchFiltered(query, k, allow)
	}
	if k <= 0 {
		return nil, nil
	}
	if allow == nil {
		allow = func(string) bool { return true }
	}
	var all []segMatch
	run := func(fs FilteredSearcher, emb *Embedded) error {
		if emb.NumValues() == 0 {
			return nil
		}
		ms, err := fs.SearchFiltered(query, k, allow)
		if err != nil {
			return err
		}
		for _, m := range ms {
			i, ok := emb.RelIndex(m.RelationID)
			if !ok {
				continue
			}
			all = append(all, segMatch{m: m, order: emb.orderOf(i)})
		}
		return nil
	}
	for _, sg := range v.segs {
		fs, ok := sg.searcher.(FilteredSearcher)
		if !ok {
			return nil, fmt.Errorf("core: segment searcher %T does not support filtered search", sg.searcher)
		}
		if err := run(fs, sg.emb); err != nil {
			return nil, err
		}
	}
	if ex, memb := st.mutScan(v); ex != nil {
		if err := run(ex, memb); err != nil {
			return nil, err
		}
	}
	return mergeSegMatches(all, k), nil
}

// IndexHealth implements HealthReporter by reporting the base segment's
// index — the structure diagnostics and drift triggers watch.
func (st *SegmentStore) IndexHealth() IndexHealth {
	base, emb := st.Base()
	if hr, ok := base.(HealthReporter); ok {
		return hr.IndexHealth()
	}
	return IndexHealth{Method: st.method, Values: emb.NumValues()}
}

// Explain locates the segment owning relationID and explains the query
// against that snapshot.
func (st *SegmentStore) Explain(query, relationID string, topN int) (*Explanation, error) {
	v := st.view()
	embs := make([]*Embedded, 0, len(v.segs)+1)
	for _, sg := range v.segs {
		embs = append(embs, sg.emb)
	}
	embs = append(embs, v.mut.emb.Load())
	for _, emb := range embs {
		i, ok := emb.RelIndex(relationID)
		if !ok || emb.Tombs.Dead(i) {
			continue
		}
		return emb.Explain(query, relationID, topN)
	}
	return nil, fmt.Errorf("core: unknown relation %q", relationID)
}
