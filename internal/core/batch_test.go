package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"semdisco/internal/obs"
)

// batchQueries builds nq encoded test queries with varied texts.
func batchQueries(emb *Embedded, nq int) [][]float32 {
	qs := make([][]float32, nq)
	for i := range qs {
		qs[i] = emb.Enc.Encode(word(i, 0) + " " + word(i+1, 2) + " " + word(i*3, 1))
	}
	return qs
}

// assertRowsIdentical fails unless every batch row equals the sequential
// answer match for match, score bits included.
func assertRowsIdentical(t *testing.T, name string, seq, batch [][]Match) {
	t.Helper()
	if len(seq) != len(batch) {
		t.Fatalf("%s: %d rows vs %d", name, len(seq), len(batch))
	}
	for i := range seq {
		if len(seq[i]) != len(batch[i]) {
			t.Fatalf("%s row %d: %d matches sequential vs %d batched", name, i, len(seq[i]), len(batch[i]))
		}
		for j := range seq[i] {
			if seq[i][j] != batch[i][j] {
				t.Errorf("%s row %d match %d: sequential %+v vs batched %+v", name, i, j, seq[i][j], batch[i][j])
			}
		}
	}
}

// TestExSBatchBitIdentical pins the tentpole invariant: the fused blocked
// scan returns bit-identical rows to per-query SearchEncoded calls, for
// every aggregator and with a threshold filtering part of the corpus.
func TestExSBatchBitIdentical(t *testing.T) {
	fed := testFederation(t, 60)
	emb := EmbedFederation(fed, newTestEncoder(64))
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		opt  ExSOptions
	}{
		{"mean", ExSOptions{}},
		{"max", ExSOptions{Aggregator: AggMax}},
		{"topm", ExSOptions{Aggregator: AggTopM, TopM: 3}},
		{"threshold", ExSOptions{Threshold: 0.05}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := NewExS(emb, tc.opt)
			qs := batchQueries(emb, 17)
			ks := make([]int, len(qs))
			seq := make([][]Match, len(qs))
			for i := range qs {
				ks[i] = 1 + i%9
				m, err := s.SearchEncoded(ctx, qs[i], ks[i])
				if err != nil {
					t.Fatalf("sequential: %v", err)
				}
				seq[i] = m
			}
			batch, err := s.SearchEncodedBatch(ctx, qs, ks, nil)
			if err != nil {
				t.Fatalf("batch: %v", err)
			}
			assertRowsIdentical(t, tc.name, seq, batch)
		})
	}
}

// TestBatchMatchesSequential checks every method's batch path against its
// sequential path, including skipped (k ≤ 0) items.
func TestBatchMatchesSequential(t *testing.T) {
	fed := testFederation(t, 50)
	emb := EmbedFederation(fed, newTestEncoder(64))
	ctx := context.Background()

	searchers := []Searcher{NewExS(emb, ExSOptions{})}
	anns, err := NewANNS(emb, ANNSOptions{Seed: 1, DisablePQ: true})
	if err != nil {
		t.Fatalf("anns: %v", err)
	}
	cts, err := NewCTS(emb, CTSOptions{Seed: 1, Reduction: ReducePCA})
	if err != nil {
		t.Fatalf("cts: %v", err)
	}
	searchers = append(searchers, anns, cts)

	for _, s := range searchers {
		bs, ok := s.(BatchSearcher)
		if !ok {
			t.Fatalf("%s does not implement BatchSearcher", s.Name())
		}
		es := s.(EncodedSearcher)
		qs := batchQueries(emb, 12)
		ks := []int{5, 0, 3, -1, 8, 5, 1, 20, 4, 0, 7, 2}
		seq := make([][]Match, len(qs))
		for i := range qs {
			if ks[i] <= 0 {
				continue
			}
			m, err := es.SearchEncoded(ctx, qs[i], ks[i])
			if err != nil {
				t.Fatalf("%s sequential: %v", s.Name(), err)
			}
			seq[i] = m
		}
		batch, err := bs.SearchEncodedBatch(ctx, qs, ks, nil)
		if err != nil {
			t.Fatalf("%s batch: %v", s.Name(), err)
		}
		assertRowsIdentical(t, s.Name(), seq, batch)
		for i, k := range ks {
			if k <= 0 && batch[i] != nil {
				t.Errorf("%s: skipped item %d got %d matches", s.Name(), i, len(batch[i]))
			}
		}
	}
}

// TestBatchCosts checks the batch path charges each query's accumulator the
// same work its sequential call records.
func TestBatchCosts(t *testing.T) {
	fed := testFederation(t, 40)
	emb := EmbedFederation(fed, newTestEncoder(64))
	ctx := context.Background()
	s := NewExS(emb, ExSOptions{})

	qs := batchQueries(emb, 6)
	ks := []int{5, 5, 5, 5, 5, 5}
	costs := make([]*obs.Cost, len(qs))
	for i := range costs {
		costs[i] = &obs.Cost{}
	}
	if _, err := s.SearchEncodedBatch(ctx, qs, ks, costs); err != nil {
		t.Fatalf("batch: %v", err)
	}
	for i := range qs {
		seqCost := &obs.Cost{}
		if _, err := s.SearchEncoded(obs.ContextWithCost(ctx, seqCost), qs[i], ks[i]); err != nil {
			t.Fatalf("sequential: %v", err)
		}
		if got, want := costs[i].Report(), seqCost.Report(); got != want {
			t.Errorf("query %d cost: batch %+v vs sequential %+v", i, got, want)
		}
	}
}

// TestBatchCancelled verifies a dead context aborts the whole batch.
func TestBatchCancelled(t *testing.T) {
	fed := testFederation(t, 40)
	emb := EmbedFederation(fed, newTestEncoder(64))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	searchers := []Searcher{NewExS(emb, ExSOptions{})}
	if anns, err := NewANNS(emb, ANNSOptions{Seed: 1, DisablePQ: true}); err == nil {
		searchers = append(searchers, anns)
	}
	if cts, err := NewCTS(emb, CTSOptions{Seed: 1, Reduction: ReducePCA}); err == nil {
		searchers = append(searchers, cts)
	}
	qs := batchQueries(emb, 4)
	ks := []int{5, 5, 5, 5}
	for _, s := range searchers {
		if _, err := s.(BatchSearcher).SearchEncodedBatch(ctx, qs, ks, nil); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: want context.Canceled, got %v", s.Name(), err)
		}
	}
}

// TestBatchArgMismatch verifies the parallel-slice shape is validated.
func TestBatchArgMismatch(t *testing.T) {
	fed := testFederation(t, 10)
	emb := EmbedFederation(fed, newTestEncoder(32))
	s := NewExS(emb, ExSOptions{})
	qs := batchQueries(emb, 3)
	if _, err := s.SearchEncodedBatch(context.Background(), qs, []int{5, 5}, nil); err == nil {
		t.Fatal("want error for ks length mismatch")
	}
	if _, err := s.SearchEncodedBatch(context.Background(), qs, []int{5, 5, 5}, make([]*obs.Cost, 2)); err == nil {
		t.Fatal("want error for costs length mismatch")
	}
}

// TestConcurrentBatches runs overlapping batches on every method under the
// race detector: the batch paths share index state but no mutable scratch.
func TestConcurrentBatches(t *testing.T) {
	fed := testFederation(t, 50)
	emb := EmbedFederation(fed, newTestEncoder(64))
	ctx := context.Background()

	searchers := []Searcher{NewExS(emb, ExSOptions{})}
	anns, err := NewANNS(emb, ANNSOptions{Seed: 1, DisablePQ: true})
	if err != nil {
		t.Fatalf("anns: %v", err)
	}
	cts, err := NewCTS(emb, CTSOptions{Seed: 1, Reduction: ReducePCA})
	if err != nil {
		t.Fatalf("cts: %v", err)
	}
	searchers = append(searchers, anns, cts)

	for _, s := range searchers {
		bs := s.(BatchSearcher)
		qs := batchQueries(emb, 8)
		ks := []int{3, 5, 2, 7, 4, 1, 6, 5}
		want, err := bs.SearchEncodedBatch(ctx, qs, ks, nil)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for rep := 0; rep < 5; rep++ {
					got, err := bs.SearchEncodedBatch(ctx, qs, ks, nil)
					if err != nil {
						t.Errorf("%s: %v", s.Name(), err)
						return
					}
					for i := range want {
						if len(got[i]) != len(want[i]) {
							t.Errorf("%s row %d: %d vs %d matches", s.Name(), i, len(got[i]), len(want[i]))
							return
						}
					}
				}
			}()
		}
		wg.Wait()
	}
}
