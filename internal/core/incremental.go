package core

import (
	"fmt"
	"sort"

	"semdisco/internal/table"
	"semdisco/internal/vec"
)

// Appender is implemented by searchers that support adding relations after
// the index is built. All three methods implement it; CTS assigns new
// values to existing clusters rather than re-clustering (see
// CTS.AddRelation). Adding must not race with Search.
type Appender interface {
	AddRelation(r *table.Relation) error
}

// AddRelation embeds one more relation into the federation and returns its
// internal index. The relation's ID must be new.
func (e *Embedded) AddRelation(r *table.Relation) (int, error) {
	if err := r.Validate(); err != nil {
		return 0, err
	}
	if _, dup := e.relIdx[r.ID]; dup {
		return 0, fmt.Errorf("core: relation %q already indexed", r.ID)
	}
	relIdx := len(e.RelIDs)
	e.RelIDs = append(e.RelIDs, r.ID)
	if e.relIdx == nil {
		e.relIdx = make(map[string]int)
	}
	e.relIdx[r.ID] = relIdx
	e.PerRel = append(e.PerRel, nil)
	e.TotalWeight = append(e.TotalWeight, 0)

	counts := make(map[string]float32)
	for _, v := range r.Values() {
		if v == "" {
			continue
		}
		counts[v]++
	}
	if r.Caption != "" {
		counts[r.Caption]++
	}
	texts := make([]string, 0, len(counts))
	for v := range counts {
		texts = append(texts, v)
	}
	sort.Strings(texts)
	for _, t := range texts {
		idx := int32(len(e.Values))
		e.Values = append(e.Values, valueRef{
			Rel:    int32(relIdx),
			Weight: counts[t],
			Vec:    e.Enc.Encode(t),
		})
		e.valueTexts = append(e.valueTexts, t)
		e.PerRel[relIdx] = append(e.PerRel[relIdx], idx)
		e.TotalWeight[relIdx] += counts[t]
	}
	return relIdx, nil
}

// AddRelation implements Appender: ExS needs no index maintenance beyond
// the shared embedding.
func (s *ExS) AddRelation(r *table.Relation) error {
	_, err := s.emb.AddRelation(r)
	return err
}

// AddRelation implements Appender: new value vectors are inserted into the
// vector database, extending the HNSW graph (and encoding through the
// trained quantizer when PQ is active).
func (s *ANNS) AddRelation(r *table.Relation) error {
	before := len(s.emb.Values)
	if _, err := s.emb.AddRelation(r); err != nil {
		return err
	}
	for i := before; i < len(s.emb.Values); i++ {
		payload := map[string]string{"vi": fmt.Sprint(i)}
		if _, err := s.coll.Insert(s.emb.Values[i].Vec, payload); err != nil {
			return err
		}
	}
	return nil
}

// AddRelation implements Appender: each new value joins the cluster whose
// medoid it is closest to in the original embedding space. This is the
// standard approximate-predict compromise — the UMAP+HDBSCAN structure is
// not recomputed, so after heavy growth a rebuild (NewCTS) re-optimizes
// the clustering.
func (s *CTS) AddRelation(r *table.Relation) error {
	before := len(s.emb.Values)
	if _, err := s.emb.AddRelation(r); err != nil {
		return err
	}
	for i := before; i < len(s.emb.Values); i++ {
		v := s.emb.Values[i].Vec
		best, bestSim := 0, float32(-2)
		for c, m := range s.medoidVecs {
			if sim := vec.Dot(v, m); sim > bestSim {
				best, bestSim = c, sim
			}
		}
		s.clusterOf = append(s.clusterOf, best)
		payload := map[string]string{"vi": fmt.Sprint(i)}
		if _, err := s.clusterColl[best].Insert(v, payload); err != nil {
			return err
		}
	}
	return nil
}
