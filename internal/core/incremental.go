package core

import (
	"fmt"
	"sort"

	"semdisco/internal/table"
)

// AddRelation embeds one more relation into the federation and returns its
// internal index. The relation's ID must be new.
//
// This is the write path of the segment store's mutable segment: the
// relation's values are encoded and appended, nothing else — no HNSW
// insert, no cluster assignment, no index maintenance of any kind. The
// historical per-method AddRelation implementations (graft into the ANNS
// graph, nearest-medoid assignment for CTS) are gone: new relations land in
// the mutable segment, are found by its exhaustive scan at full ExS
// quality, and enter real index structures only when the segment is sealed
// and built in the background — so incremental adds no longer degrade ANNS
// recall or CTS cluster assignment quality.
func (e *Embedded) AddRelation(r *table.Relation) (int, error) {
	if err := r.Validate(); err != nil {
		return 0, err
	}
	if _, dup := e.relIdx[r.ID]; dup {
		return 0, fmt.Errorf("core: relation %q already indexed", r.ID)
	}
	relIdx := len(e.RelIDs)
	e.RelIDs = append(e.RelIDs, r.ID)
	if e.relIdx == nil {
		e.relIdx = make(map[string]int)
	}
	e.relIdx[r.ID] = relIdx
	e.PerRel = append(e.PerRel, nil)
	e.TotalWeight = append(e.TotalWeight, 0)

	counts := make(map[string]float32)
	for _, v := range r.Values() {
		if v == "" {
			continue
		}
		counts[v]++
	}
	if r.Caption != "" {
		counts[r.Caption]++
	}
	texts := make([]string, 0, len(counts))
	for v := range counts {
		texts = append(texts, v)
	}
	sort.Strings(texts)
	for _, t := range texts {
		idx := int32(len(e.Values))
		e.Values = append(e.Values, valueRef{
			Rel:    int32(relIdx),
			Weight: counts[t],
			Vec:    e.Enc.Encode(t),
		})
		e.valueTexts = append(e.valueTexts, t)
		e.PerRel[relIdx] = append(e.PerRel[relIdx], idx)
		e.TotalWeight[relIdx] += counts[t]
	}
	return relIdx, nil
}
