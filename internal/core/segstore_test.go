package core

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"semdisco/internal/embed"
	"semdisco/internal/segment"
	"semdisco/internal/table"
)

// churnTopics gives every relation a distinct, repeatable topic.
var churnTopics = []string{
	"solar panels photovoltaic energy", "marine biology coral fish",
	"steam locomotive railway trains", "volcanic basalt magma geology",
	"baroque violin concerto music", "quantum entanglement photons physics",
	"sourdough fermentation baking bread", "glacier moraine ice erosion",
	"honeybee pollination hive nectar", "suspension bridge cable engineering",
	"rainforest canopy epiphyte ecology", "ceramic kiln glaze pottery",
	"cardiac ventricle artery anatomy", "sailing regatta spinnaker wind",
	"copper smelting ore metallurgy", "alpine meadow wildflower botany",
}

func churnFederation(n int) *table.Federation {
	fed := table.NewFederation()
	for i := 0; i < n; i++ {
		fed.Add(newRelation(fmt.Sprintf("rel-%02d", i), churnTopics[i%len(churnTopics)]))
	}
	return fed
}

var churnQueries = []string{
	"solar energy", "coral fish", "railway trains", "magma geology",
	"violin music", "quantum physics", "baking bread", "ice erosion",
}

// freshExS builds a monolithic ExS engine over the given relations in the
// given order — the reference a churned segment store must match.
func freshExS(rels map[string]*table.Relation, order []string, model *embed.Model) *ExS {
	fed := table.NewFederation()
	for _, id := range order {
		fed.Add(rels[id])
	}
	return NewExS(EmbedFederation(fed, model), ExSOptions{})
}

func assertSameResults(t *testing.T, label string, st *SegmentStore, fresh *ExS, k int) {
	t.Helper()
	for _, q := range churnQueries {
		got, err := st.Search(q, k)
		if err != nil {
			t.Fatalf("%s: store search %q: %v", label, q, err)
		}
		want, err := fresh.Search(q, k)
		if err != nil {
			t.Fatalf("%s: fresh search %q: %v", label, q, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: query %q diverged from fresh build:\n got: %v\nwant: %v", label, q, got, want)
		}
	}
}

// TestSegmentStoreSealAndUpgrade: a tiny MaxMutableValues forces the
// mutable segment through freeze → frozen (ExS) → sealed (built index),
// with everything searchable at each stage.
func TestSegmentStoreSealAndUpgrade(t *testing.T) {
	fed := churnFederation(8)
	model := embed.New(embed.Config{Dim: 64, Seed: 1})
	build := storeBuilders()["ExS"]
	st := newStore(t, "ExS", build, fed, model, SegmentStoreOptions{
		Policy: segment.Policy{MaxMutableValues: 4, MaxSegments: 100, MaxDeadFraction: -1},
	})

	for i := 8; i < 16; i++ {
		if err := st.Add(newRelation(fmt.Sprintf("rel-%02d", i), churnTopics[i])); err != nil {
			t.Fatal(err)
		}
		if err := st.Maintain(); err != nil {
			t.Fatal(err)
		}
	}
	s := st.Stats()
	if s.Seals == 0 {
		t.Fatalf("no seals despite MaxMutableValues=4: %+v", s)
	}
	if s.SealedSegments < 2 {
		t.Fatalf("frozen segments not upgraded: %+v", s)
	}
	if s.LiveRelations != 16 {
		t.Fatalf("live relations = %d, want 16: %+v", s.LiveRelations, s)
	}
	// Every relation — base, sealed, or mutable — must still answer.
	for i := 0; i < 16; i++ {
		got, err := st.Search(churnTopics[i], 1)
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("rel-%02d", i)
		if len(got) == 0 || got[0].RelationID != want {
			t.Fatalf("relation %s unfindable after seals: %v", want, got)
		}
	}
}

// TestSegmentStoreChurnEquivalence is the acceptance pin: a store churned
// through deletes, updates and adds — before AND after a completed
// compaction — returns ExS results bit-identical to an engine freshly
// built over the surviving corpus in insertion order.
func TestSegmentStoreChurnEquivalence(t *testing.T) {
	const n = 16
	fed := churnFederation(n)
	model := embed.New(embed.Config{Dim: 64, Seed: 1})
	build := storeBuilders()["ExS"]
	st := newStore(t, "ExS", build, fed, model, SegmentStoreOptions{
		Policy: segment.Policy{MaxMutableValues: 6, MaxSegments: 100, MaxDeadFraction: -1},
	})

	rels := make(map[string]*table.Relation)
	for i := 0; i < n; i++ {
		rels[fmt.Sprintf("rel-%02d", i)] = newRelation(fmt.Sprintf("rel-%02d", i), churnTopics[i%len(churnTopics)])
	}

	// Churn: delete 4/16 (25%), update 2, add 4 — with seals interleaved.
	for _, id := range []string{"rel-01", "rel-05", "rel-09", "rel-13"} {
		if err := st.Delete(id); err != nil {
			t.Fatal(err)
		}
		delete(rels, id)
	}
	for _, id := range []string{"rel-02", "rel-10"} {
		r := newRelation(id, "updated telescope observatory astronomy")
		if err := st.Update(r); err != nil {
			t.Fatal(err)
		}
		rels[id] = newRelation(id, "updated telescope observatory astronomy")
	}
	if err := st.Maintain(); err != nil { // seals the mutable segment mid-churn
		t.Fatal(err)
	}
	for i := n; i < n+4; i++ {
		id := fmt.Sprintf("rel-%02d", i)
		r := newRelation(id, churnTopics[i%len(churnTopics)]+" fresh")
		if err := st.Add(r); err != nil {
			t.Fatal(err)
		}
		rels[id] = newRelation(id, churnTopics[i%len(churnTopics)]+" fresh")
	}

	// Multi-segment, tombstoned, pre-compaction: must already rank exactly
	// like a monolith over the survivors.
	fresh := freshExS(rels, st.LiveRelations(), model)
	assertSameResults(t, "pre-compaction", st, fresh, 5)

	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	s := st.Stats()
	if s.Compactions < 1 {
		t.Fatalf("no compaction recorded: %+v", s)
	}
	if s.Segments != 1 || s.DeadRelations != 0 || s.DeadValues != 0 {
		t.Fatalf("compaction left garbage: %+v", s)
	}
	if s.LiveRelations != len(rels) {
		t.Fatalf("live relations = %d, want %d", s.LiveRelations, len(rels))
	}
	assertSameResults(t, "post-compaction", st, fresh, 5)

	// Deleted relations never resurface, even at large k.
	for _, q := range churnQueries {
		got, err := st.Search(q, len(rels)+8)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range got {
			if _, live := rels[m.RelationID]; !live {
				t.Fatalf("deleted relation %s resurfaced for %q", m.RelationID, q)
			}
		}
	}
}

// TestSegmentStoreSearchDuringCompaction: with no mutations in flight, a
// seal → merge → swap cycle must be invisible to readers — every search
// issued while the compaction runs returns bit-identical results. Run
// under -race this also exercises the RCU snapshot discipline.
func TestSegmentStoreSearchDuringCompaction(t *testing.T) {
	const n = 16
	fed := churnFederation(n)
	model := embed.New(embed.Config{Dim: 64, Seed: 1})
	build := storeBuilders()["ExS"]
	st := newStore(t, "ExS", build, fed, model, SegmentStoreOptions{
		Policy: segment.Policy{MaxMutableValues: 1, MaxSegments: 100, MaxDeadFraction: -1},
	})

	// Leave the store mid-shape: extra segments plus tombstones.
	for i := n; i < n+4; i++ {
		if err := st.Add(newRelation(fmt.Sprintf("rel-%02d", i), churnTopics[i%len(churnTopics)])); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []string{"rel-03", "rel-07", "rel-11", "rel-15"} {
		if err := st.Delete(id); err != nil {
			t.Fatal(err)
		}
	}

	expected := make(map[string][]Match)
	for _, q := range churnQueries {
		m, err := st.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		expected[q] = m
	}

	stop := make(chan struct{})
	errs := make(chan error, 8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := churnQueries[(w+i)%len(churnQueries)]
				got, err := st.Search(q, 5)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, expected[q]) {
					errs <- fmt.Errorf("query %q changed during compaction:\n got: %v\nwant: %v", q, got, expected[q])
					return
				}
			}
		}(w)
	}

	// Drive the full cycle — freeze the mutable remnants, build indexes,
	// merge and swap — while the readers hammer.
	if err := st.Maintain(); err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st.Stats().Compactions < 1 {
		t.Fatal("compaction did not run")
	}
	for _, q := range churnQueries {
		got, err := st.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, expected[q]) {
			t.Fatalf("query %q changed after compaction:\n got: %v\nwant: %v", q, got, expected[q])
		}
	}
}

// TestSegmentStoreConcurrentChurn races writers, readers and maintenance
// against each other; afterwards the store must be internally consistent
// and equivalent to a fresh build. Primarily a -race exercise.
func TestSegmentStoreConcurrentChurn(t *testing.T) {
	const n = 12
	fed := churnFederation(n)
	model := embed.New(embed.Config{Dim: 32, Seed: 1})
	build := storeBuilders()["ExS"]
	st := newStore(t, "ExS", build, fed, model, SegmentStoreOptions{
		Policy: segment.Policy{MaxMutableValues: 8, MaxSegments: 2},
	})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := st.Search("solar energy", 3); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // maintenance
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := st.Maintain(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Writer churns synchronously so the final corpus is deterministic.
	for round := 0; round < 6; round++ {
		for i := 0; i < 4; i++ {
			id := fmt.Sprintf("churn-%d-%d", round, i)
			if err := st.Add(newRelation(id, churnTopics[(round+i)%len(churnTopics)])); err != nil {
				t.Error(err)
			}
		}
		for i := 0; i < 2; i++ {
			id := fmt.Sprintf("churn-%d-%d", round, i)
			if err := st.Delete(id); err != nil {
				t.Error(err)
			}
		}
		if err := st.Update(newRelation(fmt.Sprintf("churn-%d-2", round), "rewritten archive manuscript")); err != nil {
			t.Error(err)
		}
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	live := st.LiveRelations()
	if len(live) != st.NumLiveRelations() {
		t.Fatalf("LiveRelations len %d != counter %d", len(live), st.NumLiveRelations())
	}
	rels := make(map[string]*table.Relation, len(live))
	for _, id := range live {
		var r *table.Relation
		switch {
		case strings.HasPrefix(id, "rel-"):
			var i int
			fmt.Sscanf(id, "rel-%02d", &i)
			r = newRelation(id, churnTopics[i%len(churnTopics)])
		case id[len(id)-1] == '2':
			r = newRelation(id, "rewritten archive manuscript")
		default:
			var round, i int
			fmt.Sscanf(id, "churn-%d-%d", &round, &i)
			r = newRelation(id, churnTopics[(round+i)%len(churnTopics)])
		}
		rels[id] = r
	}
	fresh := freshExS(rels, live, model)
	assertSameResults(t, "post-churn", st, fresh, 5)
}

// TestSegmentStorePersistRestore: a churned multi-segment store survives a
// Persist/Restore roundtrip with identical results, counters and pending
// tombstones.
func TestSegmentStorePersistRestore(t *testing.T) {
	const n = 16
	fed := churnFederation(n)
	model := embed.New(embed.Config{Dim: 64, Seed: 1})
	build := storeBuilders()["ExS"]
	opt := SegmentStoreOptions{
		Build:  build,
		Method: "ExS",
		Policy: segment.Policy{MaxMutableValues: 6, MaxSegments: 100, MaxDeadFraction: -1},
	}
	st := newStore(t, "ExS", build, fed, model, opt)

	for _, id := range []string{"rel-01", "rel-05"} {
		if err := st.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	for i := n; i < n+8; i++ {
		if err := st.Add(newRelation(fmt.Sprintf("rel-%02d", i), churnTopics[i%len(churnTopics)])); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Maintain(); err != nil { // forces a seal: multi-segment image
		t.Fatal(err)
	}
	if err := st.Delete("rel-17"); err != nil { // tombstone inside a sealed segment
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := st.Persist(&buf); err != nil {
		t.Fatal(err)
	}
	re, err := RestoreSegmentStore(bytes.NewReader(buf.Bytes()), model, nil, opt)
	if err != nil {
		t.Fatal(err)
	}

	a, b := st.Stats(), re.Stats()
	if a.Segments != b.Segments || a.LiveRelations != b.LiveRelations ||
		a.DeadRelations != b.DeadRelations || a.LiveValues != b.LiveValues {
		t.Fatalf("stats diverged:\n before: %+v\n after:  %+v", a, b)
	}
	if !reflect.DeepEqual(st.LiveRelations(), re.LiveRelations()) {
		t.Fatal("live-relation order lost in roundtrip")
	}
	for _, q := range churnQueries {
		x, err := st.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		y, err := re.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(x, y) {
			t.Fatalf("query %q diverged after restore:\n got: %v\nwant: %v", q, y, x)
		}
	}
	// The restored store must still accept mutations and compact.
	if err := re.Update(newRelation("rel-00", "replacement lighthouse beacon")); err != nil {
		t.Fatal(err)
	}
	if err := re.Compact(); err != nil {
		t.Fatal(err)
	}
	got, err := re.Search("lighthouse beacon", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || got[0].RelationID != "rel-00" {
		t.Fatalf("post-restore update unfindable: %v", got)
	}

	if _, err := RestoreSegmentStore(bytes.NewReader([]byte("junk")), model, nil, opt); err == nil {
		t.Fatal("garbage must not restore")
	}
}

// TestSegmentStoreCompactToEmpty: deleting the whole corpus and compacting
// must fall back to an exhaustive-scan base, not crash in the index build.
func TestSegmentStoreCompactToEmpty(t *testing.T) {
	fed := churnFederation(4)
	model := embed.New(embed.Config{Dim: 32, Seed: 1})
	for method, build := range storeBuilders() {
		st := newStore(t, method, build, fed, model)
		for i := 0; i < 4; i++ {
			if err := st.Delete(fmt.Sprintf("rel-%02d", i)); err != nil {
				t.Fatalf("%s: %v", method, err)
			}
		}
		if err := st.Compact(); err != nil {
			t.Fatalf("%s: compact to empty: %v", method, err)
		}
		got, err := st.Search("solar energy", 3)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if len(got) != 0 {
			t.Fatalf("%s: empty store answered: %v", method, got)
		}
		// And the store must come back to life.
		if err := st.Add(newRelation("reborn", "solar panels energy")); err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		got, err = st.Search("solar energy", 3)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if len(got) != 1 || got[0].RelationID != "reborn" {
			t.Fatalf("%s: refilled store: %v", method, got)
		}
	}
}

// TestSegmentStoreDriftTrigger: churning a CTS store past the medoid-drift
// bound must make compactTrigger fire with the drift trigger and Maintain
// re-cluster, restoring drift to its baseline band.
func TestSegmentStoreDriftTrigger(t *testing.T) {
	fed, model := covidFederation(t)
	emb := EmbedFederation(fed, model)
	build := func(e *Embedded) (EncodedSearcher, error) {
		return NewCTS(e, CTSOptions{Seed: 1, MinClusterSize: 4, UMAPEpochs: 30})
	}
	base, err := build(emb)
	if err != nil {
		t.Fatal(err)
	}
	st := NewSegmentStore(emb, base, SegmentStoreOptions{
		Build:  build,
		Method: "CTS",
		// Hair-trigger drift bound; other triggers disabled.
		Policy: segment.Policy{
			MaxMutableValues: 1 << 20, MaxSegments: 100,
			MaxDeadFraction: -1, MaxMedoidDrift: 1e-9, MaxPQDistortion: -1,
		},
	})
	// Tombstone a third of the corpus to move the live centroids.
	ids := st.LiveRelations()
	for i := 0; i < len(ids); i += 3 {
		if err := st.Delete(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	trig := st.Stats()
	_ = trig
	if err := st.Maintain(); err != nil {
		t.Fatal(err)
	}
	s := st.Stats()
	if s.Compactions < 1 {
		t.Fatalf("drift trigger did not fire: %+v", s)
	}
	if s.LastCompactionTrigger != segment.TriggerMedoidDrift {
		t.Fatalf("trigger = %q, want %q (%+v)", s.LastCompactionTrigger, segment.TriggerMedoidDrift, s)
	}
	if s.DeadRelations != 0 {
		t.Fatalf("re-clustering left tombstones: %+v", s)
	}
}
