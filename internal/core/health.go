package core

import (
	"math"

	"semdisco/internal/hnsw"
	"semdisco/internal/pq"
	"semdisco/internal/vec"
)

// healthSampleCap bounds the PQ distortion probe: reconstruction error is
// measured over a stride sample of stored vectors, not the full corpus.
const healthSampleCap = 256

// GraphHealth mirrors hnsw.GraphStats for a single HNSW graph.
type GraphHealth struct {
	Nodes             int               `json:"nodes"`
	MaxLevel          int               `json:"max_level"`
	Layers            []hnsw.LayerStats `json:"layers,omitempty"`
	ReachableFraction float64           `json:"reachable_fraction"`
}

// GraphAggregate summarizes many per-cluster HNSW graphs (CTS) without
// dumping every layer of every cluster.
type GraphAggregate struct {
	Graphs        int     `json:"graphs"`
	Nodes         int     `json:"nodes"`
	Edges         int     `json:"edges"`
	MinReachable  float64 `json:"min_reachable_fraction"`
	MeanReachable float64 `json:"mean_reachable_fraction"`
}

// PQHealth reports quantizer shape and sampled reconstruction distortion.
type PQHealth struct {
	Trained    bool          `json:"trained"`
	M          int           `json:"m,omitempty"`
	K          int           `json:"k,omitempty"`
	Distortion pq.Distortion `json:"distortion"`
}

// ClusterHealth reports CTS cluster balance and medoid drift. SizeCV is
// the coefficient of variation of cluster sizes (stddev/mean): near 0 is
// balanced, large values mean a few mega-clusters dominate query cost.
// MedoidDrift is 1 - cosine(medoid, current cluster centroid); it grows as
// incremental adds pull a cluster's mass away from the medoid chosen at
// build time — the signal that a re-clustering rebuild is due.
type ClusterHealth struct {
	Clusters        int     `json:"clusters"`
	MinSize         int     `json:"min_size"`
	MaxSize         int     `json:"max_size"`
	MeanSize        float64 `json:"mean_size"`
	SizeCV          float64 `json:"size_cv"`
	MeanMedoidDrift float64 `json:"mean_medoid_drift"`
	MaxMedoidDrift  float64 `json:"max_medoid_drift"`
}

// IndexHealth is the self-diagnosis of one built index. Which sections are
// populated depends on the method: ExS has none (no index), ANNS has Graph
// and PQ, CTS has Graphs and Clusters.
type IndexHealth struct {
	Method   string          `json:"method"`
	Values   int             `json:"values"`
	Graph    *GraphHealth    `json:"graph,omitempty"`
	Graphs   *GraphAggregate `json:"graphs,omitempty"`
	PQ       *PQHealth       `json:"pq,omitempty"`
	Clusters *ClusterHealth  `json:"clusters,omitempty"`
}

// HealthReporter is implemented by searchers that can introspect their
// index structures. All three methods implement it. IndexHealth walks the
// index (O(nodes+edges) per graph plus a bounded distortion sample); call
// it at diagnostic cadence, not per query. Must not race with AddRelation.
type HealthReporter interface {
	IndexHealth() IndexHealth
}

func graphHealth(gs hnsw.GraphStats) *GraphHealth {
	return &GraphHealth{
		Nodes:             gs.Nodes,
		MaxLevel:          gs.MaxLevel,
		Layers:            gs.Layers,
		ReachableFraction: gs.ReachableFraction,
	}
}

// IndexHealth implements HealthReporter: ExS keeps no index, so only the
// corpus shape is reported.
func (s *ExS) IndexHealth() IndexHealth {
	return IndexHealth{Method: s.Name(), Values: s.emb.NumValues()}
}

// IndexHealth implements HealthReporter: HNSW graph structure plus PQ
// distortion sampled over the stored value vectors.
func (s *ANNS) IndexHealth() IndexHealth {
	h := IndexHealth{
		Method: s.Name(),
		Values: s.emb.NumValues(),
		Graph:  graphHealth(s.coll.GraphStats()),
	}
	if q := s.coll.Quantizer(); q != nil {
		// Reconstruction error against the unit-normalized originals the
		// collection indexed (embeddings are already unit vectors). Only
		// live values are sampled: as tombstones accumulate, the sample
		// drifts away from the distribution the codebook was trained on, so
		// the distortion gauge grows — the signal the compaction policy
		// turns into a PQ re-train.
		sample := sampleVectors(s.emb, healthSampleCap)
		h.PQ = &PQHealth{Trained: true, M: q.CodeLen(), K: q.K(), Distortion: q.Distortion(sample)}
	} else {
		h.PQ = &PQHealth{Trained: false}
	}
	return h
}

// IndexHealth implements HealthReporter: cluster size balance, medoid
// drift, and the per-cluster graphs aggregated.
func (s *CTS) IndexHealth() IndexHealth {
	h := IndexHealth{Method: s.Name(), Values: s.emb.NumValues()}
	nc := len(s.clusterColl)
	if nc == 0 {
		return h
	}

	agg := &GraphAggregate{Graphs: nc, MinReachable: math.MaxFloat64}
	var reachSum float64
	for _, coll := range s.clusterColl {
		gs := coll.GraphStats()
		agg.Nodes += gs.Nodes
		for _, l := range gs.Layers {
			agg.Edges += l.Edges
		}
		reachSum += gs.ReachableFraction
		if gs.ReachableFraction < agg.MinReachable {
			agg.MinReachable = gs.ReachableFraction
		}
	}
	agg.MeanReachable = reachSum / float64(nc)
	h.Graphs = agg

	// Cluster sizes and fresh centroids in the original embedding space,
	// over live values only: deleting a cluster's values pulls its live
	// centroid away from the build-time medoid, so the drift gauges grow
	// with churn — the signal the compaction policy turns into a
	// re-clustering rebuild.
	dim := s.emb.Enc.Dim()
	sizes := make([]int, nc)
	centroids := make([][]float32, nc)
	for c := range centroids {
		centroids[c] = make([]float32, dim)
	}
	hasDead := s.emb.deadCount() > 0
	for i := range s.emb.Values {
		c := s.clusterOf[i]
		if c < 0 || c >= nc {
			continue
		}
		if hasDead && s.emb.Tombs.Dead(int(s.emb.Values[i].Rel)) {
			continue
		}
		sizes[c]++
		vec.Add(centroids[c], s.emb.Values[i].Vec)
	}

	ch := &ClusterHealth{Clusters: nc, MinSize: math.MaxInt}
	var sizeSum float64
	for _, n := range sizes {
		sizeSum += float64(n)
		if n < ch.MinSize {
			ch.MinSize = n
		}
		if n > ch.MaxSize {
			ch.MaxSize = n
		}
	}
	ch.MeanSize = sizeSum / float64(nc)
	var varSum float64
	for _, n := range sizes {
		d := float64(n) - ch.MeanSize
		varSum += d * d
	}
	if ch.MeanSize > 0 {
		ch.SizeCV = math.Sqrt(varSum/float64(nc)) / ch.MeanSize
	}

	var driftSum float64
	drifted := 0
	for c := range centroids {
		if sizes[c] == 0 {
			continue
		}
		vec.Normalize(centroids[c])
		drift := 1 - float64(vec.Dot(s.medoidVecs[c], centroids[c]))
		if drift < 0 {
			drift = 0 // float noise around exactly-aligned vectors
		}
		driftSum += drift
		drifted++
		if drift > ch.MaxMedoidDrift {
			ch.MaxMedoidDrift = drift
		}
	}
	if drifted > 0 {
		ch.MeanMedoidDrift = driftSum / float64(drifted)
	}
	h.Clusters = ch
	return h
}

// sampleVectors returns a stride sample of up to cap stored value vectors,
// drawn from live values only when the segment carries tombstones.
func sampleVectors(emb *Embedded, cap int) [][]float32 {
	if emb.deadCount() == 0 {
		idx := strideSample(len(emb.Values), cap)
		out := make([][]float32, len(idx))
		for i, gi := range idx {
			out[i] = emb.Values[gi].Vec
		}
		return out
	}
	live := make([]int, 0, len(emb.Values))
	for i := range emb.Values {
		if !emb.Tombs.Dead(int(emb.Values[i].Rel)) {
			live = append(live, i)
		}
	}
	idx := strideSample(len(live), cap)
	out := make([][]float32, len(idx))
	for i, li := range idx {
		out[i] = emb.Values[live[li]].Vec
	}
	return out
}
