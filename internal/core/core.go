// Package core implements the paper's contribution: semantic dataset
// discovery over a federation of relations via value-level embeddings, with
// the three search strategies of §4 — Exhaustive Search (ExS), Approximate
// Nearest Neighbors Search (ANNS) and Clustered Targeted Search (CTS) —
// behind one Searcher interface.
package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"semdisco/internal/embed"
	"semdisco/internal/obs"
	"semdisco/internal/segment"
	"semdisco/internal/table"
	"semdisco/internal/vec"
)

// Match is one ranked discovery result.
type Match struct {
	RelationID string
	Score      float32
}

// Searcher is the common contract of every discovery method in this repo,
// including the baselines: rank the federation's relations for a keyword
// query and return at most k matches, best first.
type Searcher interface {
	// Name returns the method's short name as used in the paper's tables
	// ("ExS", "ANNS", "CTS", "MDR", …).
	Name() string
	// Search ranks relations for the query.
	Search(query string, k int) ([]Match, error)
}

// Aggregator folds the per-value similarity scores of one relation into a
// single relation score. The paper averages (§4.1); §5.3 discusses how
// averaging dilutes relevance, which motivates the ablation variants.
type Aggregator int

const (
	// AggMean averages all value scores (the paper's choice).
	AggMean Aggregator = iota
	// AggMax takes the best value score.
	AggMax
	// AggTopM averages only the m best value scores.
	AggTopM
)

func (a Aggregator) String() string {
	switch a {
	case AggMean:
		return "mean"
	case AggMax:
		return "max"
	case AggTopM:
		return "topM"
	default:
		return fmt.Sprintf("agg(%d)", int(a))
	}
}

// valueRef is one embedded attribute value of a relation. Values are
// deduplicated per relation and carry their multiplicity as Weight, so the
// weighted mean equals the paper's average over every attribute occurrence.
type valueRef struct {
	Rel    int32
	Weight float32
	Vec    []float32
}

// Embedded is a federation with every attribute value (plus the caption,
// per the paper's WikiTables consolidation) embedded as a unit vector. It
// is the shared substrate the three searchers are built on; building it is
// the index-time cost, queries never re-embed the data.
type Embedded struct {
	Enc    embed.Encoder
	RelIDs []string
	Values []valueRef
	// PerRel[i] indexes Values belonging to relation i.
	PerRel [][]int32
	// TotalWeight[i] is the summed multiplicity of relation i's values.
	TotalWeight []float32
	// Obs receives the searchers' metrics (search counters, stage latency,
	// index-build phase timings). May be nil: all instrumentation is then a
	// no-op. Set it before building a searcher to capture build phases.
	Obs *obs.Registry
	// Tombs is the segment's tombstone set: relation slots marked here are
	// logically deleted and must not surface from any search path. May be
	// nil (every slot alive) — all checks go through DeadRel, which treats
	// a nil set as empty. Shared across RCU snapshots of a mutable segment
	// so a delete is visible to every snapshot at once.
	Tombs *segment.Tombstones
	// RelOrder[i] is relation i's store-global insertion rank. Segment
	// merges tie-break equal scores on it so a multi-segment store ranks
	// exactly like a monolithic index built in insertion order. Nil means
	// the identity order 0..n-1 (the build-time layout).
	RelOrder []int
	// valueTexts[i] is the original text of Values[i], kept for Explain.
	valueTexts []string
	// relIdx maps relation ID -> index in RelIDs, so lookups by ID are O(1)
	// instead of a linear scan over the federation.
	relIdx map[string]int
}

// DeadRel reports whether relation rel is tombstoned. Nil tombstone sets
// report alive, so indexes without mutation history pay only this check.
func (e *Embedded) DeadRel(rel int) bool {
	return e.Tombs != nil && e.Tombs.Dead(rel)
}

// deadCount returns the number of tombstoned relations.
func (e *Embedded) deadCount() int { return e.Tombs.Count() }

// orderOf returns relation rel's store-global insertion rank.
func (e *Embedded) orderOf(rel int) int {
	if e.RelOrder == nil {
		return rel
	}
	return e.RelOrder[rel]
}

// RelIndex returns the index of a relation ID in RelIDs.
func (e *Embedded) RelIndex(id string) (int, bool) {
	i, ok := e.relIdx[id]
	return i, ok
}

// EmbedFederation embeds every relation's cell values and caption with enc,
// in parallel. Deterministic: output order depends only on input order.
func EmbedFederation(fed *table.Federation, enc embed.Encoder) *Embedded {
	rels := fed.Relations()
	e := &Embedded{
		Enc:         enc,
		RelIDs:      make([]string, len(rels)),
		PerRel:      make([][]int32, len(rels)),
		TotalWeight: make([]float32, len(rels)),
		relIdx:      make(map[string]int, len(rels)),
	}

	type relValues struct {
		texts   []string
		weights []float32
	}
	prepared := make([]relValues, len(rels))
	for i, r := range rels {
		e.RelIDs[i] = r.ID
		e.relIdx[r.ID] = i
		counts := make(map[string]float32)
		for _, v := range r.Values() {
			if v == "" {
				continue
			}
			counts[v]++
		}
		if r.Caption != "" {
			counts[r.Caption]++
		}
		texts := make([]string, 0, len(counts))
		for v := range counts {
			texts = append(texts, v)
		}
		sort.Strings(texts)
		weights := make([]float32, len(texts))
		for j, v := range texts {
			weights[j] = counts[v]
		}
		prepared[i] = relValues{texts: texts, weights: weights}
	}

	// Encode relations in parallel; assembly stays in input order.
	encoded := make([][][]float32, len(rels))
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	jobs := make(chan int, len(rels))
	for i := range rels {
		jobs <- i
	}
	close(jobs)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				vecs := make([][]float32, len(prepared[i].texts))
				for j, t := range prepared[i].texts {
					vecs[j] = enc.Encode(t)
				}
				encoded[i] = vecs
			}
		}()
	}
	wg.Wait()

	for i := range rels {
		for j := range prepared[i].texts {
			idx := int32(len(e.Values))
			e.Values = append(e.Values, valueRef{
				Rel:    int32(i),
				Weight: prepared[i].weights[j],
				Vec:    encoded[i][j],
			})
			e.valueTexts = append(e.valueTexts, prepared[i].texts[j])
			e.PerRel[i] = append(e.PerRel[i], idx)
			e.TotalWeight[i] += prepared[i].weights[j]
		}
	}
	return e
}

// NewEmptyEmbedded returns an embedded federation with no relations: the
// starting state of a mutable segment. It shares the store's encoder and
// metrics registry and owns a fresh tombstone set.
func NewEmptyEmbedded(enc embed.Encoder, reg *obs.Registry) *Embedded {
	return &Embedded{
		Enc:    enc,
		Obs:    reg,
		Tombs:  segment.NewTombstones(),
		relIdx: make(map[string]int),
	}
}

// cloneForAppend returns an RCU snapshot suitable for appending one more
// relation: slice headers are shared (appends only ever extend, and readers
// of an older snapshot never look past their own lengths), the relIdx map
// is deep-copied because map writes are not snapshot-safe, and the
// tombstone set is shared so deletes reach every snapshot. Callers must
// serialize clone+append+publish externally — in the segment store, under
// its mutation mutex.
func (e *Embedded) cloneForAppend() *Embedded {
	ne := &Embedded{
		Enc:         e.Enc,
		RelIDs:      e.RelIDs,
		Values:      e.Values,
		PerRel:      e.PerRel,
		TotalWeight: e.TotalWeight,
		Obs:         e.Obs,
		Tombs:       e.Tombs,
		RelOrder:    e.RelOrder,
		valueTexts:  e.valueTexts,
		relIdx:      make(map[string]int, len(e.relIdx)+1),
	}
	for k, v := range e.relIdx {
		ne.relIdx[k] = v
	}
	return ne
}

// appendFrom copies relation slot src of other into e, reusing the stored
// value vectors (compaction never re-encodes). The relation keeps its
// store-global order rank.
func (e *Embedded) appendFrom(other *Embedded, src int) {
	id := other.RelIDs[src]
	dst := len(e.RelIDs)
	e.RelIDs = append(e.RelIDs, id)
	e.relIdx[id] = dst
	e.RelOrder = append(e.RelOrder, other.orderOf(src))
	e.PerRel = append(e.PerRel, nil)
	for _, vi := range other.PerRel[src] {
		v := other.Values[vi]
		idx := int32(len(e.Values))
		e.Values = append(e.Values, valueRef{Rel: int32(dst), Weight: v.Weight, Vec: v.Vec})
		e.valueTexts = append(e.valueTexts, other.valueTexts[vi])
		e.PerRel[dst] = append(e.PerRel[dst], idx)
	}
	e.TotalWeight = append(e.TotalWeight, other.TotalWeight[src])
}

// NumValues returns the number of embedded (deduplicated) values.
func (e *Embedded) NumValues() int { return len(e.Values) }

// NumRelations returns the number of relations.
func (e *Embedded) NumRelations() int { return len(e.RelIDs) }

// rankRelations converts an accumulation of weighted hit sums per relation
// into a ranked, thresholded, truncated result list. The denominator is
// the relation's total value weight: a value the index did not retrieve
// contributes its (near-zero) similarity as zero, so the score is the
// paper's "average of the similarity scores of the vectors of the
// relation" with the long tail truncated at zero — which is also what
// keeps a relation that surfaced on one lucky hit from outranking a
// relation with broad topical evidence. Relations with no hits at all are
// omitted, and so are tombstoned ones: this is the common emission point
// of every retrieval-based path (ANNS and CTS search, filtered and
// batched), so the dead filter here guarantees a deleted relation never
// ranks even if the index structure still holds its vectors.
func (e *Embedded) rankRelations(sums, hits []float32, threshold float32, k int) []Match {
	ids, totalWeight := e.RelIDs, e.TotalWeight
	hasDead := e.deadCount() > 0
	scored := make([]vec.Scored, 0, len(ids))
	for i := range ids {
		if hits[i] <= 0 || totalWeight[i] <= 0 {
			continue
		}
		if hasDead && e.Tombs.Dead(i) {
			continue
		}
		scored = append(scored, vec.Scored{ID: i, Score: sums[i] / totalWeight[i]})
	}
	vec.SortScoredDesc(scored)
	out := make([]Match, 0, k)
	for _, s := range scored {
		if s.Score < threshold {
			break // list is sorted descending; nothing below passes
		}
		out = append(out, Match{RelationID: ids[s.ID], Score: s.Score})
		if len(out) == k {
			break
		}
	}
	return out
}
