package core

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"semdisco/internal/obs"
	"semdisco/internal/vec"
	"semdisco/internal/vectordb"
)

// BatchSearcher is implemented by searchers with a fused multi-query path:
// rank relations for a block of already-encoded query vectors in one pass
// over the index. ks[i] is query i's result bound (≤ 0 skips it with a nil
// row); costs, when non-nil, carries one optional accumulator per query,
// charged the same work the equivalent sequential SearchEncoded call would
// record. ExS, ANNS and CTS all implement it.
//
// For ExS the batch results are bit-identical to per-query SearchEncoded
// calls; for ANNS and CTS they are identical too — the fused pass only
// amortizes locks, scratch state and cluster probes, never changing which
// nodes a walk evaluates or the order hits are folded.
type BatchSearcher interface {
	SearchEncodedBatch(ctx context.Context, qs [][]float32, ks []int, costs []*obs.Cost) ([][]Match, error)
}

// batchValueBlock is how many value vectors the ExS batch scan gathers per
// kernel call: 64 vectors × 192 dims × 4 B = 48 KiB of values per block,
// sized so a block plus the query rows streams through L1/L2 while the
// DotBatch register blocking reuses each value across 4 queries.
const batchValueBlock = 64

// exsBatchScratch is one scan worker's reusable state: the gathered value
// block, the kernel output, and per-query aggregation state reset per
// relation.
type exsBatchScratch struct {
	vblock  [][]float32 // value-vector block (slice headers only, no copy)
	weights []float32   // matching multiplicities
	dots    []float32   // kernel output, nq×len(vblock)
	sums    []float32   // per-query running sum (AggMean)
	best    []float32   // per-query running max (AggMax)
	topm    [][]float32 // per-query AggTopM selection buffers
}

func (s *ExS) newBatchScratch(nq int) *exsBatchScratch {
	sc := &exsBatchScratch{
		vblock:  make([][]float32, 0, batchValueBlock),
		weights: make([]float32, 0, batchValueBlock),
		dots:    make([]float32, nq*batchValueBlock),
		sums:    make([]float32, nq),
		best:    make([]float32, nq),
	}
	if s.agg == AggTopM {
		sc.topm = make([][]float32, nq)
		for i := range sc.topm {
			sc.topm[i] = make([]float32, 0, s.topM)
		}
	}
	return sc
}

// SearchEncodedBatch implements BatchSearcher for the exhaustive scan: one
// blocked pass over the corpus scores every query of the batch against each
// value block while it is hot in cache, via the vec.DotBatch kernel. Per
// relation, each query's partial aggregates accumulate in PerRel order —
// the same similarity values (DotBatch is bit-identical to Dot) folded in
// the same order — so every row of the result is bit-identical to the
// sequential SearchEncoded call.
func (s *ExS) SearchEncodedBatch(ctx context.Context, qs [][]float32, ks []int, costs []*obs.Cost) ([][]Match, error) {
	if err := checkBatchArgs(len(qs), ks, costs); err != nil {
		return nil, err
	}
	nq := len(qs)
	if nq == 0 {
		return nil, nil
	}
	n := s.emb.NumRelations()
	// scores[qi*n+rel] is query qi's score for relation rel.
	scores := make([]float32, nq*n)

	var stop atomic.Bool
	cancellable := ctx.Done() != nil
	vecBytes := int64(s.emb.Enc.Dim()) * 4
	// Same tombstone discipline as the sequential scan: dead relations get
	// the −Inf sentinel in every query's row and are never scored.
	tombs := s.emb.Tombs
	hasDead := tombs.Count() > 0
	scoreRange := func(lo, hi int) {
		var scanned int64
		sc := s.newBatchScratch(nq)
		for rel := lo; rel < hi; rel++ {
			if cancellable && rel%cancelCheckRelations == 0 {
				if stop.Load() {
					break
				}
				if ctx.Err() != nil {
					stop.Store(true)
					break
				}
			}
			if hasDead && tombs.Dead(rel) {
				for qi := 0; qi < nq; qi++ {
					scores[qi*n+rel] = negInf
				}
				continue
			}
			s.scoreRelationBatch(qs, rel, n, scores, sc)
			scanned += int64(len(s.emb.PerRel[rel]))
		}
		if scanned > 0 && costs != nil {
			// Every query of the batch scanned the same values; charge each
			// query's accumulator what its sequential scan would record.
			for _, cost := range costs {
				if cost != nil {
					cost.AddDistanceComps(scanned)
					cost.AddValuesScanned(scanned)
					cost.AddBytesScanned(scanned * vecBytes)
				}
			}
		}
	}
	if s.parallel && n > 1 && len(s.emb.Values) > parallelScanMinValues {
		workers := runtime.GOMAXPROCS(0)
		var wg sync.WaitGroup
		chunk := (n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				scoreRange(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	} else {
		scoreRange(0, n)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	out := make([][]Match, nq)
	for qi := range qs {
		k := ks[qi]
		if k <= 0 {
			continue
		}
		row := scores[qi*n : (qi+1)*n]
		matches := make([]Match, 0, k)
		for _, sc := range vec.TopKDesc(row, k) {
			if sc.Score < s.threshold {
				break
			}
			matches = append(matches, Match{RelationID: s.emb.RelIDs[sc.ID], Score: sc.Score})
		}
		out[qi] = matches
		if costs != nil && costs[qi] != nil {
			costs[qi].AddCandidatesGenerated(int64(n))
			costs[qi].AddCandidatesPruned(int64(n - len(matches)))
		}
	}
	return out, nil
}

// scoreRelationBatch folds one relation's value similarities for every
// query of the batch, writing scores[qi*n+rel]. Value vectors are gathered
// in blocks so the DotBatch kernel reuses each across the query block.
func (s *ExS) scoreRelationBatch(qs [][]float32, rel, n int, scores []float32, sc *exsBatchScratch) {
	idxs := s.emb.PerRel[rel]
	if len(idxs) == 0 {
		return // scores rows are zero-initialized, matching the sequential 0
	}
	nq := len(qs)
	for i := range sc.sums[:nq] {
		sc.sums[i] = 0
		sc.best[i] = -1
		if sc.topm != nil {
			sc.topm[i] = sc.topm[i][:0]
		}
	}
	for start := 0; start < len(idxs); start += batchValueBlock {
		end := start + batchValueBlock
		if end > len(idxs) {
			end = len(idxs)
		}
		bl := end - start
		vblock := sc.vblock[:0]
		weights := sc.weights[:0]
		for _, vi := range idxs[start:end] {
			v := &s.emb.Values[vi]
			vblock = append(vblock, v.Vec)
			weights = append(weights, v.Weight)
		}
		dots := sc.dots[:nq*bl]
		vec.DotBatch(qs, vblock, dots)
		switch s.agg {
		case AggMax:
			for qi := 0; qi < nq; qi++ {
				row := dots[qi*bl : (qi+1)*bl]
				best := sc.best[qi]
				for _, sim := range row {
					if sim > best {
						best = sim
					}
				}
				sc.best[qi] = best
			}
		case AggTopM:
			for qi := 0; qi < nq; qi++ {
				row := dots[qi*bl : (qi+1)*bl]
				buf := sc.topm[qi]
				for _, sim := range row {
					buf = insertTopM(buf, sim, s.topM)
				}
				sc.topm[qi] = buf
			}
		default: // AggMean
			for qi := 0; qi < nq; qi++ {
				row := dots[qi*bl : (qi+1)*bl]
				sum := sc.sums[qi]
				for j, sim := range row {
					sum += weights[j] * sim
				}
				sc.sums[qi] = sum
			}
		}
	}
	switch s.agg {
	case AggMax:
		for qi := 0; qi < nq; qi++ {
			scores[qi*n+rel] = sc.best[qi]
		}
	case AggTopM:
		for qi := 0; qi < nq; qi++ {
			buf := sc.topm[qi]
			var sum float32
			for _, x := range buf {
				sum += x
			}
			scores[qi*n+rel] = sum / float32(len(buf))
		}
	default:
		tw := s.emb.TotalWeight[rel]
		for qi := 0; qi < nq; qi++ {
			scores[qi*n+rel] = sc.sums[qi] / tw
		}
	}
}

// SearchEncodedBatch implements BatchSearcher for ANNS: the whole block of
// queries shares one collection lock acquisition and one reusable HNSW
// scratch (generation-stamped visited set + heap backings), so the per-walk
// allocations are paid once per batch instead of once per query. Each walk
// itself is identical to the sequential one.
func (s *ANNS) SearchEncodedBatch(ctx context.Context, qs [][]float32, ks []int, costs []*obs.Cost) ([][]Match, error) {
	if err := checkBatchArgs(len(qs), ks, costs); err != nil {
		return nil, err
	}
	nq := len(qs)
	if nq == 0 {
		return nil, nil
	}
	fanouts := make([]int, nq)
	efs := make([]int, nq)
	for i, k := range ks {
		if k <= 0 {
			continue
		}
		fanout := s.fanout
		if fanout == 0 {
			fanout = 32 * k
		}
		ef := s.efSearch
		if ef < fanout {
			ef = fanout
		}
		fanouts[i], efs[i] = fanout, ef
	}
	hitsPerQuery, err := s.coll.SearchBatch(ctx, qs, fanouts, efs, liveFilter(s.emb), costs)
	if err != nil {
		return nil, err
	}
	out := make([][]Match, nq)
	for i, k := range ks {
		if k <= 0 {
			continue
		}
		matches, err := s.foldHits(hitsPerQuery[i], k)
		if err != nil {
			return nil, err
		}
		out[i] = matches
	}
	return out, nil
}

// ctsPlan is one query's cluster itinerary: the clusters it selected (in
// medoid-score order, exactly as the sequential walk visits them) and the
// per-cluster retrieval parameters.
type ctsPlan struct {
	selected       []vec.Scored
	perCluster, ef int
	// hits[j] holds the results from selected[j]'s collection, filled by
	// the grouped probe phase and folded in itinerary order afterwards.
	hits [][]vectordb.Result
}

// SearchEncodedBatch implements BatchSearcher for CTS with cluster-probe
// deduplication: queries selecting the same cluster are grouped, so each
// distinct cluster collection is visited once per batch — one lock
// acquisition and one HNSW scratch per cluster rather than per
// (query, cluster) pair. Every per-query hit list is buffered and folded in
// the query's own medoid-score order, the exact accumulation order of the
// sequential walk, so results match per-query SearchEncoded calls.
func (s *CTS) SearchEncodedBatch(ctx context.Context, qs [][]float32, ks []int, costs []*obs.Cost) ([][]Match, error) {
	if err := checkBatchArgs(len(qs), ks, costs); err != nil {
		return nil, err
	}
	nq := len(qs)
	if nq == 0 {
		return nil, nil
	}

	// Medoid match for the whole batch in one kernel pass. DotBatch is
	// bit-identical to the sequential vec.Dot loop, and clusters are pushed
	// in the same ascending order, so each query selects exactly the
	// clusters its sequential walk would.
	numClusters := len(s.medoidVecs)
	medoidDots := make([]float32, nq*numClusters)
	vec.DotBatch(qs, s.medoidVecs, medoidDots)

	plans := make([]*ctsPlan, nq)
	// queriesOf[c] lists the batch indices that selected cluster c, with the
	// position of c in each query's itinerary.
	type probe struct{ qi, pos int }
	queriesOf := make([][]probe, numClusters)
	dim := s.emb.Enc.Dim()
	for qi, k := range ks {
		if k <= 0 {
			continue
		}
		top := vec.NewTopK(minInt(s.topClusters, numClusters))
		row := medoidDots[qi*numClusters : (qi+1)*numClusters]
		for c, sim := range row {
			top.Push(c, sim)
		}
		selected := top.Sorted()
		if costs != nil && costs[qi] != nil {
			costs[qi].AddDistanceComps(int64(numClusters))
			costs[qi].AddBytesScanned(int64(numClusters) * int64(dim) * 4)
			costs[qi].AddCandidatesPruned(int64(numClusters - len(selected)))
		}
		fanout := s.fanout
		if fanout == 0 {
			fanout = 32 * k
		}
		perCluster := fanout / len(selected)
		if perCluster < k {
			perCluster = k
		}
		ef := s.efSearch
		if ef < perCluster {
			ef = perCluster
		}
		p := &ctsPlan{selected: selected, perCluster: perCluster, ef: ef,
			hits: make([][]vectordb.Result, len(selected))}
		plans[qi] = p
		for pos, sel := range selected {
			queriesOf[sel.ID] = append(queriesOf[sel.ID], probe{qi, pos})
		}
	}

	// Probe each distinct cluster once with every query that selected it.
	for c, probes := range queriesOf {
		if len(probes) == 0 {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		coll := s.clusterColl[c]
		l := coll.Len()
		subQs := make([][]float32, len(probes))
		subKs := make([]int, len(probes))
		subEfs := make([]int, len(probes))
		var subCosts []*obs.Cost
		if costs != nil {
			subCosts = make([]*obs.Cost, len(probes))
		}
		for j, pr := range probes {
			p := plans[pr.qi]
			pc, pcEf := p.perCluster, p.ef
			if pc > l { // beams wider than the cluster only add heap overhead
				pc = l
				if pcEf > l {
					pcEf = l
				}
			}
			subQs[j] = qs[pr.qi]
			subKs[j] = pc
			subEfs[j] = pcEf
			if costs != nil {
				subCosts[j] = costs[pr.qi]
			}
		}
		hits, err := coll.SearchBatch(ctx, subQs, subKs, subEfs, liveFilter(s.emb), subCosts)
		if err != nil {
			return nil, err
		}
		for j, pr := range probes {
			plans[pr.qi].hits[pr.pos] = hits[j]
		}
	}

	// Fold each query's buffered hits in its own itinerary order — the
	// order the sequential walk accumulates them — then rank.
	out := make([][]Match, nq)
	for qi, p := range plans {
		if p == nil {
			continue
		}
		n := s.emb.NumRelations()
		sums := make([]float32, n)
		hitCount := make([]float32, n)
		for _, hits := range p.hits {
			for _, h := range hits {
				vi, err := strconv.Atoi(h.Payload["vi"])
				if err != nil || vi < 0 || vi >= len(s.emb.Values) {
					return nil, fmt.Errorf("core: cts: corrupt payload %q", h.Payload["vi"])
				}
				v := &s.emb.Values[vi]
				if h.Score > 0 {
					sums[v.Rel] += v.Weight * h.Score
				}
				hitCount[v.Rel]++
			}
		}
		out[qi] = s.emb.rankRelations(sums, hitCount, s.threshold, ks[qi])
	}
	return out, nil
}

// checkBatchArgs validates the parallel-slice shape shared by every
// SearchEncodedBatch implementation.
func checkBatchArgs(nq int, ks []int, costs []*obs.Cost) error {
	if len(ks) != nq {
		return fmt.Errorf("core: batch: %d ks for %d queries", len(ks), nq)
	}
	if costs != nil && len(costs) != nq {
		return fmt.Errorf("core: batch: %d costs for %d queries", len(costs), nq)
	}
	return nil
}
