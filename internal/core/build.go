package core

import "semdisco/internal/par"

// BuildOptions bounds index-construction parallelism for every searcher.
// One knob covers all build stages: HNSW graph inserts, PQ/k-means codebook
// training, UMAP reduction and HDBSCAN clustering.
type BuildOptions struct {
	// Workers is the goroutine budget for the build. 0 uses GOMAXPROCS;
	// 1 forces the historical serial path, bit-identical for a fixed seed.
	//
	// Determinism with 2+ workers: PQ codebooks and codes, k-means, and the
	// HDBSCAN clustering stay worker-count-invariant (their reductions run
	// in a fixed order); the HNSW graph shape and the UMAP layout depend on
	// goroutine interleaving, so they vary between runs — retrieval quality
	// is asserted by the recall probe and graph-stats diagnostics instead.
	Workers int
}

// workers resolves the effective worker count.
func (b BuildOptions) workers() int { return par.Workers(b.Workers) }
