package core

import (
	"fmt"
	"sort"

	"semdisco/internal/vec"
)

// Contribution is one attribute value's share of a relation's match score.
type Contribution struct {
	// Value is the cell text.
	Value string
	// Similarity is cosine(query, value).
	Similarity float32
	// Weight is the value's multiplicity in the relation.
	Weight float32
	// Share is the value's fraction of the relation's total (positive)
	// score mass.
	Share float32
}

// Explanation answers "why did this relation match this query".
type Explanation struct {
	RelationID string
	// Score is the relation's mean-aggregated score (AggMean), the paper's
	// scoring rule.
	Score float32
	// Top lists the highest-contributing values, best first.
	Top []Contribution
}

// Explain recomputes the value-level similarities between a query and one
// relation and reports the top-n contributing values — the transparency
// hook value-level embedding enables: unlike table-level embeddings, every
// match decomposes exactly into per-cell evidence.
//
// The relation's original value strings are needed for the report; pass
// the same texts EmbedFederation saw (the relation's Values() plus
// caption). Explain re-encodes them through the shared encoder's cache,
// so the cost is n dot products.
func (e *Embedded) Explain(query, relationID string, topN int) (*Explanation, error) {
	relIdx, ok := e.RelIndex(relationID)
	if !ok {
		return nil, fmt.Errorf("core: relation %q not indexed", relationID)
	}
	if topN <= 0 {
		topN = 5
	}
	q := e.Enc.Encode(query)

	idxs := e.PerRel[relIdx]
	contributions := make([]Contribution, 0, len(idxs))
	var scoreSum, positiveMass float32
	for _, vi := range idxs {
		v := &e.Values[vi]
		sim := vec.Dot(q, v.Vec)
		scoreSum += v.Weight * sim
		if sim > 0 {
			positiveMass += v.Weight * sim
		}
		contributions = append(contributions, Contribution{
			Value:      e.valueText(vi),
			Similarity: sim,
			Weight:     v.Weight,
		})
	}
	for i := range contributions {
		if positiveMass > 0 && contributions[i].Similarity > 0 {
			contributions[i].Share = contributions[i].Weight * contributions[i].Similarity / positiveMass
		}
	}
	sort.SliceStable(contributions, func(i, j int) bool {
		return contributions[i].Weight*contributions[i].Similarity >
			contributions[j].Weight*contributions[j].Similarity
	})
	if len(contributions) > topN {
		contributions = contributions[:topN]
	}
	exp := &Explanation{RelationID: relationID, Top: contributions}
	if tw := e.TotalWeight[relIdx]; tw > 0 {
		exp.Score = scoreSum / tw
	}
	return exp, nil
}

// valueText returns the original text of a stored value. Texts are kept
// lazily: the first Explain call materializes the reverse index.
func (e *Embedded) valueText(vi int32) string {
	if e.valueTexts == nil {
		return fmt.Sprintf("value[%d]", vi)
	}
	return e.valueTexts[vi]
}
