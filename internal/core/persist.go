package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"semdisco/internal/embed"
)

// embeddedImage is the exported gob shadow of Embedded. Vectors dominate
// the payload; everything else is bookkeeping.
type embeddedImage struct {
	Version     int
	Dim         int
	RelIDs      []string
	Rels        []int32
	Weights     []float32
	Vecs        [][]float32
	Texts       []string
	PerRel      [][]int32
	TotalWeight []float32
}

// Persist writes the embedded federation so it can be restored without
// re-encoding every value (the dominant index-build cost after CTS's
// clustering).
func (e *Embedded) Persist(w io.Writer) error {
	img := embeddedImage{
		Version:     1,
		Dim:         e.Enc.Dim(),
		RelIDs:      e.RelIDs,
		PerRel:      e.PerRel,
		TotalWeight: e.TotalWeight,
	}
	for _, v := range e.Values {
		img.Rels = append(img.Rels, v.Rel)
		img.Weights = append(img.Weights, v.Weight)
		img.Vecs = append(img.Vecs, v.Vec)
	}
	img.Texts = e.valueTexts
	return gob.NewEncoder(w).Encode(img)
}

// RestoreEmbedded reads a Persist image. enc must be the same encoder
// configuration that produced the image (dimension is validated; content
// equality is the caller's contract — future queries are encoded with enc
// and compared against the stored vectors).
func RestoreEmbedded(r io.Reader, enc embed.Encoder) (*Embedded, error) {
	var img embeddedImage
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return nil, fmt.Errorf("core: restore embedded: %w", err)
	}
	if img.Version != 1 {
		return nil, fmt.Errorf("core: unsupported embedded version %d", img.Version)
	}
	if img.Dim != enc.Dim() {
		return nil, fmt.Errorf("core: stored dim %d, encoder dim %d", img.Dim, enc.Dim())
	}
	if len(img.Rels) != len(img.Weights) || len(img.Rels) != len(img.Vecs) {
		return nil, fmt.Errorf("core: corrupt embedded image")
	}
	e := &Embedded{
		Enc:         enc,
		RelIDs:      img.RelIDs,
		PerRel:      img.PerRel,
		TotalWeight: img.TotalWeight,
		relIdx:      make(map[string]int, len(img.RelIDs)),
	}
	for i, id := range img.RelIDs {
		e.relIdx[id] = i
	}
	if len(img.Texts) == len(img.Rels) {
		e.valueTexts = img.Texts
	}
	numRels := int32(len(img.RelIDs))
	for i := range img.Rels {
		if img.Rels[i] < 0 || img.Rels[i] >= numRels {
			return nil, fmt.Errorf("core: value %d references relation %d of %d", i, img.Rels[i], numRels)
		}
		if len(img.Vecs[i]) != img.Dim {
			return nil, fmt.Errorf("core: value %d has dim %d", i, len(img.Vecs[i]))
		}
		e.Values = append(e.Values, valueRef{Rel: img.Rels[i], Weight: img.Weights[i], Vec: img.Vecs[i]})
	}
	return e, nil
}
