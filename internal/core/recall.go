package core

// RecallSample is one probed query: the overlap between the approximate
// searcher's top-k relations and the exhaustive ground truth's.
type RecallSample struct {
	Query  string  `json:"query"`
	Recall float64 `json:"recall"`
	Approx int     `json:"approx_results"`
	Exact  int     `json:"exact_results"`
}

// RecallResult aggregates a probe run. Recall is the mean per-query
// recall@k in [0,1]; queries whose ground truth is empty are skipped (they
// carry no recall signal).
type RecallResult struct {
	Method  string         `json:"method"`
	K       int            `json:"k"`
	Probed  int            `json:"probed"`
	Skipped int            `json:"skipped"`
	Recall  float64        `json:"recall_at_k"`
	Source  string         `json:"query_source,omitempty"`
	Samples []RecallSample `json:"samples,omitempty"`
}

// ProbeRecall replays queries through both the given (approximate)
// searcher and an exhaustive scan over the same embedded federation, and
// measures recall@k: |approx ∩ exact| / |exact|. This turns the
// ExS-vs-ANNS/CTS accuracy trade-off from an assumption into a measured,
// monitorable quantity — the approximate indexes degrade silently as the
// corpus grows (PQ codebooks go stale, clusters unbalance), and only an
// online probe makes that visible.
//
// Cost is one approximate plus one exhaustive search per query; probe at
// diagnostic cadence. Must not race with AddRelation.
func ProbeRecall(s Searcher, emb *Embedded, queries []string, k int, threshold float32) (RecallResult, error) {
	res := RecallResult{Method: s.Name(), K: k}
	if k <= 0 || len(queries) == 0 {
		return res, nil
	}
	// Ground truth shares the searcher's scoring rule (weighted-mean
	// aggregation, same threshold) so the only difference is index
	// approximation. The exhaustive scan needs no build phase.
	exact := NewExS(emb, ExSOptions{Threshold: threshold})

	var sum float64
	for _, q := range queries {
		truth, err := exact.Search(q, k)
		if err != nil {
			return res, err
		}
		if len(truth) == 0 {
			res.Skipped++
			continue
		}
		got, err := s.Search(q, k)
		if err != nil {
			return res, err
		}
		truthSet := make(map[string]struct{}, len(truth))
		for _, m := range truth {
			truthSet[m.RelationID] = struct{}{}
		}
		overlap := 0
		for _, m := range got {
			if _, ok := truthSet[m.RelationID]; ok {
				overlap++
			}
		}
		r := float64(overlap) / float64(len(truth))
		res.Samples = append(res.Samples, RecallSample{
			Query: q, Recall: r, Approx: len(got), Exact: len(truth),
		})
		sum += r
		res.Probed++
	}
	if res.Probed > 0 {
		res.Recall = sum / float64(res.Probed)
	}
	return res, nil
}

// SampleValueTexts returns a stride sample of up to n stored value texts —
// surrogate probe queries for engines that have not yet served real
// traffic. Empty when the reverse text index was not materialized.
func (e *Embedded) SampleValueTexts(n int) []string {
	if len(e.valueTexts) == 0 || n <= 0 {
		return nil
	}
	idx := strideSample(len(e.valueTexts), n)
	out := make([]string, 0, len(idx))
	for _, gi := range idx {
		if t := e.valueTexts[gi]; t != "" {
			out = append(out, t)
		}
	}
	return out
}
