package core

import (
	"fmt"
	"strconv"

	"semdisco/internal/vectordb"
)

// ANNS is the Approximate Nearest Neighbors Search of §4.2 / Algorithm 2:
// value vectors live in a vector database collection, optionally compressed
// with Product Quantization, indexed with HNSW; a query retrieves the
// nearest value vectors and scores each relation by the average similarity
// of its retrieved vectors.
type ANNS struct {
	emb       *Embedded
	coll      *vectordb.Collection
	threshold float32
	fanout    int
	efSearch  int
}

// ANNSOptions configures ANNS.
type ANNSOptions struct {
	// Threshold is the paper's h.
	Threshold float32
	// Fanout is how many value vectors the index retrieves per query before
	// grouping by relation; defaults to 32·k at query time when zero.
	Fanout int
	// EfSearch is the HNSW beam width; defaults to 128.
	EfSearch int
	// M and EfConstruction tune the HNSW graph (see hnsw.Config).
	M, EfConstruction int
	// DisablePQ turns off Product Quantization (used by the ablation; the
	// paper's configuration keeps it on).
	DisablePQ bool
	// PQTrainSize, PQM, PQK tune the quantizer (see vectordb.PQConfig).
	PQTrainSize, PQM, PQK int
	// Seed drives index construction.
	Seed int64
}

// NewANNS builds the vector-database index over the embedded federation.
func NewANNS(emb *Embedded, opt ANNSOptions) (*ANNS, error) {
	if opt.EfSearch == 0 {
		opt.EfSearch = 128
	}
	cfg := vectordb.CollectionConfig{
		Dim:            emb.Enc.Dim(),
		Metric:         vectordb.Cosine,
		M:              opt.M,
		EfConstruction: opt.EfConstruction,
		EfSearch:       opt.EfSearch,
		Seed:           opt.Seed,
	}
	if !opt.DisablePQ {
		pqM := opt.PQM
		if pqM == 0 {
			// 4-dim subspaces with 256 centroids: 192 bytes per 768-d
			// vector (16× compression) with quantization error small
			// enough that ranking quality tracks the uncompressed index.
			pqM = emb.Enc.Dim() / 4
			if pqM < 1 {
				pqM = 1
			}
			for emb.Enc.Dim()%pqM != 0 {
				pqM--
			}
		}
		pqK := opt.PQK
		if pqK == 0 {
			pqK = 256
		}
		train := opt.PQTrainSize
		if train == 0 {
			train = 512
		}
		cfg.PQ = &vectordb.PQConfig{M: pqM, K: pqK, TrainSize: train}
	}
	db := vectordb.New()
	coll, err := db.CreateCollection("values", cfg)
	if err != nil {
		return nil, fmt.Errorf("core: anns: %w", err)
	}
	for i, v := range emb.Values {
		payload := map[string]string{"vi": strconv.Itoa(i)}
		if _, err := coll.Insert(v.Vec, payload); err != nil {
			return nil, fmt.Errorf("core: anns insert: %w", err)
		}
	}
	return &ANNS{
		emb:       emb,
		coll:      coll,
		threshold: opt.Threshold,
		fanout:    opt.Fanout,
		efSearch:  opt.EfSearch,
	}, nil
}

// Name implements Searcher.
func (s *ANNS) Name() string { return "ANNS" }

// Search implements Searcher: Algorithm 2, step 2.
func (s *ANNS) Search(query string, k int) ([]Match, error) {
	if k <= 0 {
		return nil, nil
	}
	q := s.emb.Enc.Encode(query)
	fanout := s.fanout
	if fanout == 0 {
		fanout = 32 * k
	}
	ef := s.efSearch
	if ef < fanout {
		ef = fanout
	}
	hits, err := s.coll.Search(q, fanout, ef, nil)
	if err != nil {
		return nil, err
	}
	n := s.emb.NumRelations()
	sums := make([]float32, n)
	hitCount := make([]float32, n)
	for _, h := range hits {
		vi, err := strconv.Atoi(h.Payload["vi"])
		if err != nil || vi < 0 || vi >= len(s.emb.Values) {
			return nil, fmt.Errorf("core: anns: corrupt payload %q", h.Payload["vi"])
		}
		v := &s.emb.Values[vi]
		if h.Score > 0 {
			sums[v.Rel] += v.Weight * h.Score
		}
		hitCount[v.Rel]++
	}
	return rankRelations(s.emb.RelIDs, sums, hitCount, s.emb.TotalWeight, s.threshold, k), nil
}

// Stats exposes the underlying collection's storage statistics.
func (s *ANNS) Stats() vectordb.Stats { return s.coll.Stats() }
