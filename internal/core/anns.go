package core

import (
	"context"
	"fmt"
	"strconv"

	"semdisco/internal/obs"
	"semdisco/internal/vectordb"
)

// ANNS is the Approximate Nearest Neighbors Search of §4.2 / Algorithm 2:
// value vectors live in a vector database collection, optionally compressed
// with Product Quantization, indexed with HNSW; a query retrieves the
// nearest value vectors and scores each relation by the average similarity
// of its retrieved vectors.
type ANNS struct {
	emb       *Embedded
	coll      *vectordb.Collection
	threshold float32
	fanout    int
	efSearch  int
}

// ANNSOptions configures ANNS.
type ANNSOptions struct {
	// Threshold is the paper's h.
	Threshold float32
	// Fanout is how many value vectors the index retrieves per query before
	// grouping by relation; defaults to 32·k at query time when zero.
	Fanout int
	// EfSearch is the HNSW beam width; defaults to 128.
	EfSearch int
	// M and EfConstruction tune the HNSW graph (see hnsw.Config).
	M, EfConstruction int
	// DisablePQ turns off Product Quantization (used by the ablation; the
	// paper's configuration keeps it on).
	DisablePQ bool
	// PQTrainSize, PQM, PQK tune the quantizer (see vectordb.PQConfig).
	PQTrainSize, PQM, PQK int
	// Seed drives index construction.
	Seed int64
	// Build bounds construction parallelism (see BuildOptions).
	Build BuildOptions
}

// NewANNS builds the vector-database index over the embedded federation.
func NewANNS(emb *Embedded, opt ANNSOptions) (*ANNS, error) {
	if opt.EfSearch == 0 {
		opt.EfSearch = 128
	}
	cfg := vectordb.CollectionConfig{
		Dim:            emb.Enc.Dim(),
		Metric:         vectordb.Cosine,
		M:              opt.M,
		EfConstruction: opt.EfConstruction,
		EfSearch:       opt.EfSearch,
		Seed:           opt.Seed,
		Workers:        opt.Build.workers(),
	}
	if !opt.DisablePQ {
		pqM := opt.PQM
		if pqM == 0 {
			// 4-dim subspaces with 256 centroids: 192 bytes per 768-d
			// vector (16× compression) with quantization error small
			// enough that ranking quality tracks the uncompressed index.
			pqM = emb.Enc.Dim() / 4
			if pqM < 1 {
				pqM = 1
			}
			for emb.Enc.Dim()%pqM != 0 {
				pqM--
			}
		}
		pqK := opt.PQK
		if pqK == 0 {
			pqK = 256
		}
		train := opt.PQTrainSize
		if train == 0 {
			train = 512
		}
		cfg.PQ = &vectordb.PQConfig{M: pqM, K: pqK, TrainSize: train}
	}
	db := vectordb.New()
	coll, err := db.CreateCollection("values", cfg)
	if err != nil {
		return nil, fmt.Errorf("core: anns: %w", err)
	}
	coll.SetObserver(emb.Obs)
	var insertErr error
	buildPhase(emb.Obs, "hnsw_insert", func() {
		vecs := make([][]float32, len(emb.Values))
		pays := make([]map[string]string, len(emb.Values))
		for i := range emb.Values {
			vecs[i] = emb.Values[i].Vec
			pays[i] = map[string]string{"vi": strconv.Itoa(i)}
		}
		if _, err := coll.InsertBatch(vecs, pays); err != nil {
			insertErr = fmt.Errorf("core: anns insert: %w", err)
		}
	})
	if insertErr != nil {
		return nil, insertErr
	}
	emb.Obs.Gauge(MetricValues).Set(float64(len(emb.Values)))
	return &ANNS{
		emb:       emb,
		coll:      coll,
		threshold: opt.Threshold,
		fanout:    opt.Fanout,
		efSearch:  opt.EfSearch,
	}, nil
}

// Name implements Searcher.
func (s *ANNS) Name() string { return "ANNS" }

// Search implements Searcher: Algorithm 2, step 2.
func (s *ANNS) Search(query string, k int) ([]Match, error) {
	return s.SearchTraced(query, k, nil)
}

// SearchTraced implements TracedSearcher: Algorithm 2 with a per-stage
// breakdown (encode → retrieve → rank).
func (s *ANNS) SearchTraced(query string, k int, tr *obs.Trace) ([]Match, error) {
	return s.SearchTracedContext(context.Background(), query, k, tr)
}

// SearchTracedContext implements ContextSearcher: SearchTraced with
// cooperative cancellation threaded into the HNSW walk.
func (s *ANNS) SearchTracedContext(ctx context.Context, query string, k int, tr *obs.Trace) ([]Match, error) {
	if k <= 0 {
		return nil, nil
	}
	o := startSearch(s.emb.Obs, s.Name(), tr)
	sp := o.stage("encode")
	q := s.emb.Enc.Encode(query)
	o.endStage(sp)

	fanout := s.fanout
	if fanout == 0 {
		fanout = 32 * k
	}
	ef := s.efSearch
	if ef < fanout {
		ef = fanout
	}
	sp = o.stage("retrieve").AnnotateInt("fanout", fanout).AnnotateInt("ef", ef)
	hits, err := s.coll.SearchContext(ctx, q, fanout, ef, liveFilter(s.emb))
	if err != nil {
		return nil, err
	}
	o.endStage(sp.AnnotateInt("hits", len(hits)))

	sp = o.stage("rank")
	matches, err := s.foldHits(hits, k)
	if err != nil {
		return nil, err
	}
	o.endStage(sp.AnnotateInt("matches", len(matches)))
	o.finish()
	return matches, nil
}

// SearchEncoded implements EncodedSearcher: rank relations for an
// already-encoded query vector, honoring ctx between HNSW hops.
func (s *ANNS) SearchEncoded(ctx context.Context, q []float32, k int) ([]Match, error) {
	if k <= 0 {
		return nil, nil
	}
	fanout := s.fanout
	if fanout == 0 {
		fanout = 32 * k
	}
	ef := s.efSearch
	if ef < fanout {
		ef = fanout
	}
	hits, err := s.coll.SearchContext(ctx, q, fanout, ef, liveFilter(s.emb))
	if err != nil {
		return nil, err
	}
	return s.foldHits(hits, k)
}

// Stats exposes the underlying collection's storage statistics.
func (s *ANNS) Stats() vectordb.Stats { return s.coll.Stats() }
