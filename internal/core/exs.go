package core

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"semdisco/internal/obs"
	"semdisco/internal/vec"
)

// negInf is the scan score of a tombstoned relation: it sorts after every
// real score, and no finite threshold admits it, so dead relations fall out
// of the ranked prefix without the selection needing to over-request — even
// when fewer than k live relations remain.
var negInf = float32(math.Inf(-1))

// ExS is the Exhaustive Search of §4.1 / Algorithm 1: every value vector of
// every relation is compared against the query vector; per-relation scores
// are the aggregate (by default the average) of the value similarities.
// It is exact and complete, and its query cost is linear in the total
// number of embedded values — the scalability ceiling the other two
// methods exist to break.
type ExS struct {
	emb       *Embedded
	threshold float32
	agg       Aggregator
	topM      int
	parallel  bool
}

// ExSOptions configures ExS.
type ExSOptions struct {
	// Threshold is the paper's h: relations scoring below it are filtered
	// out. Zero keeps everything with a non-negative score.
	Threshold float32
	// Aggregator selects how value scores fold into a relation score;
	// default AggMean (the paper's averaging).
	Aggregator Aggregator
	// TopM is the m for AggTopM; default 5.
	TopM int
	// Parallel scans relations on all cores; default true. The benchmarks
	// disable it to measure the single-threaded scan the paper reports.
	Parallel *bool
}

// parallelScanMinValues gates the scan fan-out on the real work — value-
// vector dot products — rather than the relation count: a federation of a
// few huge relations benefits from the parallel scan just as much as one
// of many small relations, while a tiny corpus never pays the goroutine
// overhead no matter how it is partitioned.
const parallelScanMinValues = 2048

// NewExS builds an exhaustive searcher over the embedded federation.
func NewExS(emb *Embedded, opt ExSOptions) *ExS {
	if opt.TopM == 0 {
		opt.TopM = 5
	}
	parallel := true
	if opt.Parallel != nil {
		parallel = *opt.Parallel
	}
	return &ExS{
		emb:       emb,
		threshold: opt.Threshold,
		agg:       opt.Aggregator,
		topM:      opt.TopM,
		parallel:  parallel,
	}
}

// Name implements Searcher.
func (s *ExS) Name() string { return "ExS" }

// Search implements Searcher: Algorithm 1.
func (s *ExS) Search(query string, k int) ([]Match, error) {
	return s.SearchTraced(query, k, nil)
}

// SearchTraced implements TracedSearcher: Algorithm 1 with a per-stage
// breakdown (encode → scan → rank) recorded on tr and on the method's
// stage histograms.
func (s *ExS) SearchTraced(query string, k int, tr *obs.Trace) ([]Match, error) {
	return s.SearchTracedContext(context.Background(), query, k, tr)
}

// SearchTracedContext implements ContextSearcher: SearchTraced with
// cooperative cancellation checked between scan chunks, so a cluster
// deadline interrupts the exhaustive scan mid-corpus.
func (s *ExS) SearchTracedContext(ctx context.Context, query string, k int, tr *obs.Trace) ([]Match, error) {
	if k <= 0 {
		return nil, nil
	}
	o := startSearch(s.emb.Obs, s.Name(), tr)
	sp := o.stage("encode")
	q := s.emb.Enc.Encode(query)
	o.endStage(sp)
	matches, err := s.searchObserved(ctx, q, k, o)
	if err == nil {
		o.finish()
	}
	return matches, err
}

// SearchEncoded implements EncodedSearcher: rank relations for an
// already-encoded query vector, honoring ctx between scan chunks. This is
// the cluster layer's shard entry point — the router encodes once and fans
// the vector out.
func (s *ExS) SearchEncoded(ctx context.Context, q []float32, k int) ([]Match, error) {
	if k <= 0 {
		return nil, nil
	}
	return s.searchObserved(ctx, q, k, startSearch(nil, s.Name(), nil))
}

// searchEncoded ranks relations for an already-encoded query vector.
func (s *ExS) searchEncoded(q []float32, k int) ([]Match, error) {
	return s.SearchEncoded(context.Background(), q, k)
}

// cancelCheckRelations is how many relations each scan worker scores
// between two context polls: small enough that a deadline lands within a
// fraction of a millisecond, large enough that ctx.Err() stays free.
const cancelCheckRelations = 64

// searchObserved is the scan + rank body, instrumented through o.
func (s *ExS) searchObserved(ctx context.Context, q []float32, k int, o *searchObs) ([]Match, error) {
	n := s.emb.NumRelations()
	scores := make([]float32, n)
	sp := o.stage("scan").
		AnnotateInt("relations", n).
		AnnotateInt("values_scanned", len(s.emb.Values))

	// A single stop flag lets whichever worker observes the expired context
	// first pull every other chunk out of the scan.
	var stop atomic.Bool
	cancellable := ctx.Done() != nil
	cost := obs.CostFrom(ctx)
	vecBytes := int64(s.emb.Enc.Dim()) * 4
	// Tombstoned relations are not scored at all: their slots get the −Inf
	// sentinel, which the ranked prefix can never admit. hasDead snapshots
	// the set once, so churn-free scans pay one branch on a local bool.
	tombs := s.emb.Tombs
	hasDead := tombs.Count() > 0
	scoreRange := func(lo, hi int) {
		// Each worker counts its scanned values in a plain local and flushes
		// once at the end, so cost accounting adds no atomics to the scan.
		var scanned int64
		topm := s.newTopMScratch()
		for rel := lo; rel < hi; rel++ {
			if cancellable && rel%cancelCheckRelations == 0 {
				if stop.Load() {
					break
				}
				if ctx.Err() != nil {
					stop.Store(true)
					break
				}
			}
			if hasDead && tombs.Dead(rel) {
				scores[rel] = negInf
				continue
			}
			scores[rel] = s.scoreRelation(q, rel, topm)
			scanned += int64(len(s.emb.PerRel[rel]))
		}
		if cost != nil && scanned > 0 {
			cost.AddDistanceComps(scanned)
			cost.AddValuesScanned(scanned)
			cost.AddBytesScanned(scanned * vecBytes)
		}
	}
	if s.parallel && n > 1 && len(s.emb.Values) > parallelScanMinValues {
		workers := runtime.GOMAXPROCS(0)
		var wg sync.WaitGroup
		chunk := (n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				scoreRange(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	} else {
		scoreRange(0, n)
	}
	o.endStage(sp)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	sp = o.stage("rank")
	// Bounded selection: only the top k of the n relation scores are ever
	// requested, so heap-selecting them beats materializing and sorting all
	// n. TopKDesc returns exactly the prefix the full sort would, ties
	// included, so the ranking is unchanged bit for bit.
	out := make([]Match, 0, k)
	for _, sc := range vec.TopKDesc(scores, k) {
		if sc.Score < s.threshold {
			break
		}
		out = append(out, Match{RelationID: s.emb.RelIDs[sc.ID], Score: sc.Score})
		if len(out) == k {
			break
		}
	}
	o.endStage(sp.AnnotateInt("matches", len(out)))
	if cost != nil {
		cost.AddCandidatesGenerated(int64(n))
		cost.AddCandidatesPruned(int64(n - len(out)))
	}
	return out, nil
}

// newTopMScratch returns a reusable AggTopM selection buffer for one
// worker, or nil when the aggregator never needs one.
func (s *ExS) newTopMScratch() []float32 {
	if s.agg != AggTopM {
		return nil
	}
	return make([]float32, 0, s.topM)
}

// insertTopM folds x into buf, a descending-sorted buffer of the m largest
// values seen so far. Replacement is strict (x must beat the current
// minimum), so among equal values the earliest arrivals are kept — the same
// multiset a full descending sort selects — and summing buf front to back
// adds the values in descending order, exactly like sort-then-sum. That
// makes the bounded selection bit-identical to the historical
// sort.Slice-the-whole-relation path while doing O(len·m) work on a buffer
// that never reallocates.
func insertTopM(buf []float32, x float32, m int) []float32 {
	if len(buf) == m {
		if x <= buf[m-1] {
			return buf
		}
		buf = buf[:m-1]
	}
	i := len(buf)
	buf = append(buf, x)
	for ; i > 0 && buf[i-1] < x; i-- {
		buf[i] = buf[i-1]
	}
	buf[i] = x
	return buf
}

// scoreRelation folds the similarities of one relation's values. topm is
// the worker's reusable AggTopM buffer (see newTopMScratch); ignored by
// the other aggregators.
func (s *ExS) scoreRelation(q []float32, rel int, topm []float32) float32 {
	idxs := s.emb.PerRel[rel]
	if len(idxs) == 0 {
		return 0
	}
	switch s.agg {
	case AggMax:
		best := float32(-1)
		for _, vi := range idxs {
			if sim := vec.Dot(q, s.emb.Values[vi].Vec); sim > best {
				best = sim
			}
		}
		return best
	case AggTopM:
		buf := topm[:0]
		for _, vi := range idxs {
			buf = insertTopM(buf, vec.Dot(q, s.emb.Values[vi].Vec), s.topM)
		}
		var sum float32
		for _, x := range buf {
			sum += x
		}
		return sum / float32(len(buf))
	default: // AggMean: multiplicity-weighted mean = paper's plain average
		var sum float32
		for _, vi := range idxs {
			v := &s.emb.Values[vi]
			sum += v.Weight * vec.Dot(q, v.Vec)
		}
		return sum / s.emb.TotalWeight[rel]
	}
}
