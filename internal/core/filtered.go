package core

import (
	"fmt"
	"strconv"

	"semdisco/internal/vec"
	"semdisco/internal/vectordb"
)

// FilteredSearcher is implemented by searchers that can restrict a query
// to a subset of relations — e.g. "only datasets from the WHO and ECDC
// members of the federation". All three methods implement it.
type FilteredSearcher interface {
	// SearchFiltered ranks only relations accepted by allow. A nil allow
	// behaves like Search.
	SearchFiltered(query string, k int, allow func(relationID string) bool) ([]Match, error)
}

// allowedSet precomputes the relation indices accepted by allow.
// Tombstoned relations never enter the set, which makes the dead filter a
// single check shared by every SearchFiltered implementation.
func (e *Embedded) allowedSet(allow func(string) bool) map[int32]struct{} {
	if allow == nil {
		return nil
	}
	hasDead := e.deadCount() > 0
	set := make(map[int32]struct{})
	for i, id := range e.RelIDs {
		if hasDead && e.Tombs.Dead(i) {
			continue
		}
		if allow(id) {
			set[int32(i)] = struct{}{}
		}
	}
	return set
}

// SearchFiltered implements FilteredSearcher for the exhaustive scan.
func (s *ExS) SearchFiltered(query string, k int, allow func(string) bool) ([]Match, error) {
	if allow == nil {
		return s.Search(query, k)
	}
	if k <= 0 {
		return nil, nil
	}
	set := s.emb.allowedSet(allow)
	q := s.emb.Enc.Encode(query)
	scored := make([]vec.Scored, 0, len(set))
	topm := s.newTopMScratch()
	for rel := range set {
		scored = append(scored, vec.Scored{ID: int(rel), Score: s.scoreRelation(q, int(rel), topm)})
	}
	vec.SortScoredDesc(scored)
	out := make([]Match, 0, k)
	for _, sc := range scored {
		if sc.Score < s.threshold {
			break
		}
		out = append(out, Match{RelationID: s.emb.RelIDs[sc.ID], Score: sc.Score})
		if len(out) == k {
			break
		}
	}
	return out, nil
}

// payloadRelFilter builds a vectordb payload filter accepting points whose
// value belongs to an allowed relation.
func payloadRelFilter(emb *Embedded, set map[int32]struct{}) vectordb.Filter {
	return func(p map[string]string) bool {
		vi, err := strconv.Atoi(p["vi"])
		if err != nil || vi < 0 || vi >= len(emb.Values) {
			return false
		}
		_, ok := set[emb.Values[vi].Rel]
		return ok
	}
}

// liveFilter returns a vectordb payload filter rejecting values of
// tombstoned relations, or nil when the segment has no tombstones — the
// common case, which keeps churn-free searches on the exact pre-mutation
// code path. Pushing the filter into the index means the graph walk still
// routes through dead points but replaces them in the result beam, so a
// heavily tombstoned segment keeps returning k live values until
// compaction reclaims the space.
func liveFilter(emb *Embedded) vectordb.Filter {
	if emb.deadCount() == 0 {
		return nil
	}
	return func(p map[string]string) bool {
		vi, err := strconv.Atoi(p["vi"])
		if err != nil || vi < 0 || vi >= len(emb.Values) {
			return false
		}
		return !emb.Tombs.Dead(int(emb.Values[vi].Rel))
	}
}

// SearchFiltered implements FilteredSearcher for ANNS: the restriction is
// pushed into the vector database as a payload filter, so the graph walk
// routes through rejected points but never returns them.
func (s *ANNS) SearchFiltered(query string, k int, allow func(string) bool) ([]Match, error) {
	if allow == nil {
		return s.Search(query, k)
	}
	if k <= 0 {
		return nil, nil
	}
	set := s.emb.allowedSet(allow)
	if len(set) == 0 {
		return nil, nil
	}
	q := s.emb.Enc.Encode(query)
	fanout := s.fanout
	if fanout == 0 {
		fanout = 32 * k
	}
	ef := s.efSearch
	if ef < fanout {
		ef = fanout
	}
	hits, err := s.coll.Search(q, fanout, ef, payloadRelFilter(s.emb, set))
	if err != nil {
		return nil, err
	}
	return s.foldHits(hits, k)
}

// foldHits groups value hits into ranked relations (shared by Search and
// SearchFiltered).
func (s *ANNS) foldHits(hits []vectordb.Result, k int) ([]Match, error) {
	n := s.emb.NumRelations()
	sums := make([]float32, n)
	hitCount := make([]float32, n)
	for _, h := range hits {
		vi, err := strconv.Atoi(h.Payload["vi"])
		if err != nil || vi < 0 || vi >= len(s.emb.Values) {
			return nil, fmt.Errorf("core: anns: corrupt payload %q", h.Payload["vi"])
		}
		v := &s.emb.Values[vi]
		if h.Score > 0 {
			sums[v.Rel] += v.Weight * h.Score
		}
		hitCount[v.Rel]++
	}
	return s.emb.rankRelations(sums, hitCount, s.threshold, k), nil
}

// SearchFiltered implements FilteredSearcher for CTS: cluster selection is
// unchanged (medoids summarize the whole corpus) and the per-cluster
// searches carry the payload filter.
func (s *CTS) SearchFiltered(query string, k int, allow func(string) bool) ([]Match, error) {
	if allow == nil {
		return s.Search(query, k)
	}
	if k <= 0 {
		return nil, nil
	}
	set := s.emb.allowedSet(allow)
	if len(set) == 0 {
		return nil, nil
	}
	q := s.emb.Enc.Encode(query)
	top := vec.NewTopK(minInt(s.topClusters, len(s.medoidVecs)))
	for c, m := range s.medoidVecs {
		top.Push(c, vec.Dot(q, m))
	}
	selected := top.Sorted()

	fanout := s.fanout
	if fanout == 0 {
		fanout = 32 * k
	}
	perCluster := fanout / len(selected)
	if perCluster < k {
		perCluster = k
	}
	ef := s.efSearch
	if ef < perCluster {
		ef = perCluster
	}
	filter := payloadRelFilter(s.emb, set)

	n := s.emb.NumRelations()
	sums := make([]float32, n)
	hitCount := make([]float32, n)
	for _, sc := range selected {
		coll := s.clusterColl[sc.ID]
		pc, pcEf := perCluster, ef
		if l := coll.Len(); pc > l {
			pc = l
			if pcEf > l {
				pcEf = l
			}
		}
		hits, err := coll.Search(q, pc, pcEf, filter)
		if err != nil {
			return nil, err
		}
		for _, h := range hits {
			vi, err := strconv.Atoi(h.Payload["vi"])
			if err != nil || vi < 0 || vi >= len(s.emb.Values) {
				return nil, fmt.Errorf("core: cts: corrupt payload %q", h.Payload["vi"])
			}
			v := &s.emb.Values[vi]
			if h.Score > 0 {
				sums[v.Rel] += v.Weight * h.Score
			}
			hitCount[v.Rel]++
		}
	}
	return s.emb.rankRelations(sums, hitCount, s.threshold, k), nil
}
