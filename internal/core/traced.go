package core

import (
	"context"
	"time"

	"semdisco/internal/obs"
)

// Metric series names shared by the three searchers. All durations are
// seconds-valued Prometheus histograms/gauges.
const (
	// MetricSearches counts completed searches, labelled by method.
	MetricSearches = "semdisco_searches_total"
	// MetricSearchSeconds is end-to-end query latency, labelled by method.
	MetricSearchSeconds = "semdisco_search_seconds"
	// MetricStageSeconds is per-stage query latency, labelled by method and
	// stage ("encode", "scan", "retrieve", "medoid_match", "descent", "rank").
	MetricStageSeconds = "semdisco_search_stage_seconds"
	// MetricBuildSeconds is index-build phase wall clock, labelled by phase
	// ("embed", "umap", "hdbscan", "pq_train", "hnsw_insert").
	MetricBuildSeconds = "semdisco_index_build_seconds"
	// MetricClusters is the CTS cluster count.
	MetricClusters = "semdisco_index_clusters"
	// MetricValues is the number of indexed value vectors.
	MetricValues = "semdisco_index_values"

	// MetricSlowQueries counts queries at or over the slow-log threshold,
	// labelled by method.
	MetricSlowQueries = "semdisco_slow_queries_total"
	// MetricSampledTraces counts queries whose exemplar trace was journaled
	// by head-based 1-in-M sampling.
	MetricSampledTraces = "semdisco_traces_sampled_total"
	// MetricRecallAtK is the latest online recall probe result, labelled by
	// method and k. Values in [0,1]; a falling gauge means the approximate
	// index is silently losing ground truth.
	MetricRecallAtK = "semdisco_recall_at_k"
	// MetricReachableFraction is the share of HNSW layer-0 nodes reachable
	// from the entry point (mean over clusters for CTS); below 1.0 some
	// values can never be retrieved.
	MetricReachableFraction = "semdisco_index_reachable_fraction"
	// MetricPQDistortion is the mean sampled PQ reconstruction error.
	MetricPQDistortion = "semdisco_index_pq_distortion_mean"
	// MetricClusterSizeCV is the coefficient of variation of CTS cluster
	// sizes; growth means a few clusters dominate query cost.
	MetricClusterSizeCV = "semdisco_index_cluster_size_cv"
	// MetricMedoidDrift is the mean CTS medoid drift (1 - cosine between a
	// cluster's build-time medoid and its current centroid).
	MetricMedoidDrift = "semdisco_index_medoid_drift_mean"
	// MetricSegments is the number of segments in the store (sealed plus a
	// non-empty mutable one).
	MetricSegments = "semdisco_index_segments"
	// MetricTombstonedRels is the number of tombstoned relations awaiting
	// compaction.
	MetricTombstonedRels = "semdisco_index_tombstoned_relations"
	// MetricSeals counts mutable-segment seals (freeze + background index
	// build).
	MetricSeals = "semdisco_segment_seals_total"
	// MetricCompactions counts completed compactions, labelled by trigger
	// (segment_count, dead_fraction, medoid_drift, pq_distortion, manual,
	// interval).
	MetricCompactions = "semdisco_compactions_total"
	// MetricCompactionSeconds is compaction wall clock (merge + rebuild +
	// swap), a histogram.
	MetricCompactionSeconds = "semdisco_compaction_seconds"
)

// MetricHelp maps the engine's metric base names to their Prometheus
// HELP texts, registered on the registry at engine construction so the
// exposition emits both # HELP and # TYPE per the text-format spec.
var MetricHelp = map[string]string{
	MetricSearches:          "Completed searches by method.",
	MetricSearchSeconds:     "End-to-end query latency in seconds by method.",
	MetricStageSeconds:      "Per-stage query latency in seconds by method and stage.",
	MetricBuildSeconds:      "Index-build phase wall-clock seconds by phase.",
	MetricClusters:          "CTS cluster count.",
	MetricValues:            "Number of indexed value vectors.",
	MetricSlowQueries:       "Queries at or over the slow-log threshold by method.",
	MetricSampledTraces:     "Queries whose exemplar trace was journaled by head sampling.",
	MetricRecallAtK:         "Latest online recall probe result by method and k.",
	MetricReachableFraction: "Share of HNSW layer-0 nodes reachable from the entry point.",
	MetricPQDistortion:      "Mean sampled PQ reconstruction error.",
	MetricClusterSizeCV:     "Coefficient of variation of CTS cluster sizes.",
	MetricMedoidDrift:       "Mean CTS medoid drift since build.",
	MetricSegments:          "Number of segments in the store.",
	MetricTombstonedRels:    "Tombstoned relations awaiting compaction.",
	MetricSeals:             "Mutable-segment seals.",
	MetricCompactions:       "Completed compactions by trigger.",
	MetricCompactionSeconds: "Compaction wall-clock seconds.",
	"semdisco_embed_cache_hits_total":   "Encoder token-cache hits.",
	"semdisco_embed_cache_misses_total": "Encoder token-cache misses.",
}

// TracedSearcher is implemented by searchers that can report a per-stage
// breakdown of one query. ExS, ANNS and CTS implement it; tr may be nil,
// in which case the call behaves exactly like Search (metrics still
// recorded, no per-request overhead beyond a few atomic adds).
type TracedSearcher interface {
	SearchTraced(query string, k int, tr *obs.Trace) ([]Match, error)
}

// ContextSearcher is implemented by searchers whose query work honors a
// context: cancellation is polled between ExS scan chunks, between CTS
// clusters, and between HNSW hops, so an expired deadline interrupts the
// search mid-flight instead of after the fact. ExS, ANNS and CTS all
// implement it.
type ContextSearcher interface {
	SearchTracedContext(ctx context.Context, query string, k int, tr *obs.Trace) ([]Match, error)
}

// EncodedSearcher is the shard contract of the cluster layer: rank
// relations for an already-encoded query vector under a context. The
// router encodes the query once and fans the vector out to every shard.
// ExS, ANNS and CTS all implement it.
type EncodedSearcher interface {
	Searcher
	SearchEncoded(ctx context.Context, q []float32, k int) ([]Match, error)
}

// searchObs accumulates the per-query observability of one method: stage
// spans feed both the request trace (when present) and the method's stage
// histograms; finish records the query counter and total latency. All
// methods are safe when the registry is nil.
type searchObs struct {
	reg    *obs.Registry
	method string
	tr     *obs.Trace
	start  time.Time
}

func startSearch(reg *obs.Registry, method string, tr *obs.Trace) *searchObs {
	return &searchObs{reg: reg, method: method, tr: tr, start: time.Now()}
}

// stage begins a named span; pass the returned span to endStage.
func (o *searchObs) stage(name string) *obs.Span {
	return o.tr.StartSpan(name)
}

// endStage completes a span and feeds its duration to the stage histogram.
func (o *searchObs) endStage(sp *obs.Span) {
	name := sp.Name()
	d := sp.End()
	o.reg.Histogram(obs.L(MetricStageSeconds, "method", o.method, "stage", name)).Observe(d)
}

// finish records the completed query.
func (o *searchObs) finish() {
	o.reg.Counter(obs.L(MetricSearches, "method", o.method)).Inc()
	o.reg.Histogram(obs.L(MetricSearchSeconds, "method", o.method)).Observe(time.Since(o.start))
}

// buildPhase runs fn and records its wall clock under the named build
// phase. Used by the index constructors.
func buildPhase(reg *obs.Registry, phase string, fn func()) {
	start := time.Now()
	fn()
	reg.Gauge(obs.L(MetricBuildSeconds, "phase", phase)).Add(time.Since(start).Seconds())
}
