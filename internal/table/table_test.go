package table

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleRelation() *Relation {
	return &Relation{
		ID:      "who-1",
		Source:  "WHO",
		Caption: "COVID19 Vaccine Dataset",
		Columns: []string{"Region", "Date", "Vaccine", "Dosage"},
		Rows: [][]string{
			{"North America", "2021-01-01", "Comirnaty", "First"},
			{"Europe", "2021-02-01", "Vaxzevria", "Second"},
		},
	}
}

func TestValidate(t *testing.T) {
	r := sampleRelation()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	r.Rows = append(r.Rows, []string{"short"})
	if err := r.Validate(); err == nil {
		t.Fatal("ragged row must fail validation")
	}
	empty := &Relation{}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty ID must fail")
	}
}

func TestTupleAndSchema(t *testing.T) {
	r := sampleRelation()
	tp := r.Tuple(0)
	if len(tp) != 4 || tp[2].Name != "Vaccine" || tp[2].Value != "Comirnaty" {
		t.Fatalf("Tuple=%v", tp)
	}
	if !reflect.DeepEqual(tp.Schema(), r.Columns) {
		t.Fatalf("Schema=%v", tp.Schema())
	}
}

func TestValuesAndAttributes(t *testing.T) {
	r := sampleRelation()
	vals := r.Values()
	if len(vals) != 8 || vals[0] != "North America" || vals[7] != "Second" {
		t.Fatalf("Values=%v", vals)
	}
	attrs := r.Attributes()
	if len(attrs) != 8 || attrs[6].Name != "Vaccine" || attrs[6].Value != "Vaxzevria" {
		t.Fatalf("Attributes=%v", attrs)
	}
}

func TestColumn(t *testing.T) {
	r := sampleRelation()
	col, ok := r.Column("Vaccine")
	if !ok || !reflect.DeepEqual(col, []string{"Comirnaty", "Vaxzevria"}) {
		t.Fatalf("Column=%v,%v", col, ok)
	}
	if _, ok := r.Column("Nope"); ok {
		t.Fatal("ghost column")
	}
}

func TestText(t *testing.T) {
	r := sampleRelation()
	txt := r.Text()
	for _, want := range []string{"COVID19 Vaccine Dataset", "Region", "Comirnaty"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("Text misses %q: %s", want, txt)
		}
	}
}

func TestNumericFraction(t *testing.T) {
	r := &Relation{
		ID:      "n",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"123", "hello"}, {"456", "78 apples"}},
	}
	if got := r.NumericFraction(); got != 0.5 {
		t.Fatalf("NumericFraction=%v want 0.5", got)
	}
	empty := &Relation{ID: "e", Columns: []string{"a"}}
	if got := empty.NumericFraction(); got != 0 {
		t.Fatalf("empty NumericFraction=%v", got)
	}
}

func TestFederation(t *testing.T) {
	f := NewFederation()
	if err := f.Add(sampleRelation()); err != nil {
		t.Fatal(err)
	}
	if err := f.Add(sampleRelation()); err == nil {
		t.Fatal("duplicate ID must fail")
	}
	r2 := sampleRelation()
	r2.ID = "cdc-1"
	r2.Source = "CDC"
	f.Add(r2)
	if f.Len() != 2 {
		t.Fatalf("Len=%d", f.Len())
	}
	if _, ok := f.ByID("who-1"); !ok {
		t.Fatal("ByID failed")
	}
	if got := f.Sources(); !reflect.DeepEqual(got, []string{"CDC", "WHO"}) {
		t.Fatalf("Sources=%v", got)
	}
}

func TestSubset(t *testing.T) {
	f := NewFederation()
	for i := 0; i < 10; i++ {
		r := sampleRelation()
		r.ID = string(rune('a' + i))
		f.Add(r)
	}
	half := f.Subset(0.5)
	if half.Len() != 5 {
		t.Fatalf("50%% subset has %d", half.Len())
	}
	tenth := f.Subset(0.1)
	if tenth.Len() != 1 {
		t.Fatalf("10%% subset has %d", tenth.Len())
	}
	full := f.Subset(1.0)
	if full.Len() != 10 {
		t.Fatalf("100%% subset has %d", full.Len())
	}
	if _, ok := tenth.ByID("a"); !ok {
		t.Fatal("subset lost ByID index")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := sampleRelation()
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "who-1", "WHO")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Columns, r.Columns) {
		t.Fatalf("columns %v", got.Columns)
	}
	if !reflect.DeepEqual(got.Rows, r.Rows) {
		t.Fatalf("rows %v", got.Rows)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), "x", "s"); err == nil {
		t.Fatal("empty CSV must fail")
	}
}

func TestReadCSVShortRowsPadded(t *testing.T) {
	got, err := ReadCSV(strings.NewReader("a,b,c\n1,2\n"), "x", "s")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows[0]) != 3 || got.Rows[0][2] != "" {
		t.Fatalf("short row not padded: %v", got.Rows[0])
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("one.csv", "a,b\n1,2\n")
	write("two.csv", "x\nfoo\nbar\n")
	write("ignored.txt", "junk")
	fed, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if fed.Len() != 2 {
		t.Fatalf("Len=%d", fed.Len())
	}
	r, ok := fed.ByID("two")
	if !ok || r.NumRows() != 2 || r.Source != filepath.Base(dir) {
		t.Fatalf("two.csv: %+v", r)
	}
}
