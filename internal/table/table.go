// Package table defines the relational data model of the paper's problem
// statement — attributes, tuples, relations, datasets, federations — plus
// CSV import/export so real tables can be ingested.
//
// Following the paper (§3), a dataset holds a single relation and the two
// terms are used interchangeably; Federation therefore aggregates
// relations, each tagged with the source (platform) it came from.
package table

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"semdisco/internal/text"
)

// Attribute is a named value: one cell of a relation under its column name.
type Attribute struct {
	Name  string
	Value string
}

// Tuple is one row of a relation as a sequence of attributes.
type Tuple []Attribute

// Schema returns the attribute names of the tuple in order.
func (t Tuple) Schema() []string {
	out := make([]string, len(t))
	for i, a := range t {
		out[i] = a.Name
	}
	return out
}

// Relation is a table: a header, rows, and the contextual fields WikiTables
// provides (page title, section title, caption), which the multi-field
// baselines score separately.
type Relation struct {
	// ID uniquely identifies the relation within a federation.
	ID string
	// Source names the platform the relation came from (e.g. "WHO").
	Source string
	// PageTitle, SectionTitle and Caption carry the table's surrounding
	// context; any may be empty.
	PageTitle    string
	SectionTitle string
	Caption      string
	// Columns is the header; every row has len(Columns) cells.
	Columns []string
	// Rows holds the cell values.
	Rows [][]string
}

// Validate checks structural invariants: non-empty ID, consistent row
// widths.
func (r *Relation) Validate() error {
	if r.ID == "" {
		return fmt.Errorf("table: relation with empty ID")
	}
	for i, row := range r.Rows {
		if len(row) != len(r.Columns) {
			return fmt.Errorf("table: relation %s row %d has %d cells, header has %d",
				r.ID, i, len(row), len(r.Columns))
		}
	}
	return nil
}

// NumRows returns the number of tuples.
func (r *Relation) NumRows() int { return len(r.Rows) }

// NumCols returns the number of columns.
func (r *Relation) NumCols() int { return len(r.Columns) }

// Tuple materializes row i as a Tuple.
func (r *Relation) Tuple(i int) Tuple {
	t := make(Tuple, len(r.Columns))
	for c, name := range r.Columns {
		t[c] = Attribute{Name: name, Value: r.Rows[i][c]}
	}
	return t
}

// Values returns every cell value in row-major order. This is the unit the
// paper embeds: "our methods embed tabular datasets at the cell level".
func (r *Relation) Values() []string {
	out := make([]string, 0, len(r.Rows)*len(r.Columns))
	for _, row := range r.Rows {
		out = append(out, row...)
	}
	return out
}

// Attributes returns every (column, value) pair in row-major order.
func (r *Relation) Attributes() []Attribute {
	out := make([]Attribute, 0, len(r.Rows)*len(r.Columns))
	for _, row := range r.Rows {
		for c, v := range row {
			out = append(out, Attribute{Name: r.Columns[c], Value: v})
		}
	}
	return out
}

// Column returns the values of the named column and whether it exists.
func (r *Relation) Column(name string) ([]string, bool) {
	for c, col := range r.Columns {
		if col == name {
			out := make([]string, len(r.Rows))
			for i, row := range r.Rows {
				out[i] = row[c]
			}
			return out, true
		}
	}
	return nil, false
}

// Text concatenates context, header and body into one string — the
// "consolidated single column per table" representation the paper uses for
// the WikiTables corpus.
func (r *Relation) Text() string {
	var b strings.Builder
	for _, s := range []string{r.PageTitle, r.SectionTitle, r.Caption} {
		if s != "" {
			b.WriteString(s)
			b.WriteByte(' ')
		}
	}
	for _, c := range r.Columns {
		b.WriteString(c)
		b.WriteByte(' ')
	}
	for _, row := range r.Rows {
		for _, v := range row {
			b.WriteString(v)
			b.WriteByte(' ')
		}
	}
	return strings.TrimSpace(b.String())
}

// NumericFraction reports the fraction of cells that tokenize to numbers
// only, the corpus statistic the paper reports (26.9% WikiTables, 55.3%
// EDP).
func (r *Relation) NumericFraction() float64 {
	total, numeric := 0, 0
	for _, row := range r.Rows {
		for _, v := range row {
			total++
			toks := text.Tokenize(v)
			if len(toks) == 0 {
				continue
			}
			allNum := true
			for _, t := range toks {
				if !text.IsNumeric(t) {
					allNum = false
					break
				}
			}
			if allNum {
				numeric++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(numeric) / float64(total)
}

// Federation is a collection of relations from multiple sources.
type Federation struct {
	relations []*Relation
	byID      map[string]*Relation
}

// NewFederation returns an empty federation.
func NewFederation() *Federation {
	return &Federation{byID: make(map[string]*Relation)}
}

// Add validates and registers a relation. IDs must be unique.
func (f *Federation) Add(r *Relation) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if _, dup := f.byID[r.ID]; dup {
		return fmt.Errorf("table: duplicate relation id %q", r.ID)
	}
	f.relations = append(f.relations, r)
	f.byID[r.ID] = r
	return nil
}

// Len returns the number of relations.
func (f *Federation) Len() int { return len(f.relations) }

// Relations returns the relations in insertion order. The slice is shared;
// treat it as read-only.
func (f *Federation) Relations() []*Relation { return f.relations }

// ByID returns the relation with the given id.
func (f *Federation) ByID(id string) (*Relation, bool) {
	r, ok := f.byID[id]
	return r, ok
}

// Sources returns the distinct source names, sorted.
func (f *Federation) Sources() []string {
	set := map[string]struct{}{}
	for _, r := range f.relations {
		set[r.Source] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Subset returns a new federation containing the first ceil(fraction·n)
// relations — the paper's SD/MD/LD partitions (10%, 50%, 100%).
func (f *Federation) Subset(fraction float64) *Federation {
	if fraction >= 1 {
		return f
	}
	n := int(float64(len(f.relations))*fraction + 0.5)
	if n < 1 && len(f.relations) > 0 {
		n = 1
	}
	sub := NewFederation()
	for _, r := range f.relations[:n] {
		// Adding the same *Relation is safe: federations never mutate them.
		sub.relations = append(sub.relations, r)
		sub.byID[r.ID] = r
	}
	return sub
}

// ReadCSV parses one relation from CSV. The first record is the header.
func ReadCSV(r io.Reader, id, source string) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("table: csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("table: csv %s: empty", id)
	}
	rel := &Relation{ID: id, Source: source, Columns: records[0]}
	for _, rec := range records[1:] {
		row := make([]string, len(rel.Columns))
		copy(row, rec)
		rel.Rows = append(rel.Rows, row)
	}
	return rel, rel.Validate()
}

// WriteCSV writes the relation as CSV (header + rows). Fields are written
// by hand rather than through csv.Writer for one reason: a single-column
// row holding an empty string must be emitted as `""`, because the blank
// line csv.Writer would produce is skipped by every CSV reader and the row
// would vanish on round-trip.
func (r *Relation) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	writeRecord := func(fields []string) error {
		for i, f := range fields {
			if i > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			needQuote := strings.ContainsAny(f, ",\"\r\n") ||
				(len(fields) == 1 && f == "")
			if !needQuote {
				if _, err := bw.WriteString(f); err != nil {
					return err
				}
				continue
			}
			if err := bw.WriteByte('"'); err != nil {
				return err
			}
			if _, err := bw.WriteString(strings.ReplaceAll(f, `"`, `""`)); err != nil {
				return err
			}
			if err := bw.WriteByte('"'); err != nil {
				return err
			}
		}
		return bw.WriteByte('\n')
	}
	if err := writeRecord(r.Columns); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := writeRecord(row); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadDir loads every *.csv in dir as one relation each, using the file
// base name (sans extension) as the relation ID and dir's base name as the
// source.
func LoadDir(dir string) (*Federation, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fed := NewFederation()
	source := filepath.Base(dir)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		id := strings.TrimSuffix(e.Name(), ".csv")
		rel, err := ReadCSV(f, id, source)
		f.Close()
		if err != nil {
			return nil, err
		}
		if err := fed.Add(rel); err != nil {
			return nil, err
		}
	}
	return fed, nil
}
