package table

import (
	"strings"
	"testing"
)

// FuzzReadCSV: arbitrary bytes never panic the parser; successful parses
// yield structurally valid relations.
func FuzzReadCSV(f *testing.F) {
	for _, seed := range []string{
		"", "a,b\n1,2\n", "a\n\"\"\n", "a,b\n\"x,y\",z\n",
		"\"unterminated\na,b\n", "a,b\r\n1,2\r\n", ",,,\n,,,\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data string) {
		rel, err := ReadCSV(strings.NewReader(data), "fuzz", "src")
		if err != nil {
			return
		}
		if err := rel.Validate(); err != nil {
			t.Fatalf("parsed relation invalid: %v", err)
		}
		// A successfully parsed relation must round-trip.
		var buf strings.Builder
		if err := rel.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}
		again, err := ReadCSV(strings.NewReader(buf.String()), "fuzz", "src")
		if err != nil {
			t.Fatalf("round trip parse: %v", err)
		}
		if again.NumRows() != rel.NumRows() || again.NumCols() != rel.NumCols() {
			t.Fatalf("round trip changed shape: %dx%d -> %dx%d",
				rel.NumRows(), rel.NumCols(), again.NumRows(), again.NumCols())
		}
	})
}
