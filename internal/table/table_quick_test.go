package table

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// sanitizeCell strips carriage returns, which encoding/csv normalizes and
// would otherwise make byte-exact round-trip comparisons fail for reasons
// unrelated to this package.
func sanitizeCell(s string) string {
	return strings.NewReplacer("\r", "", "\n", " ").Replace(s)
}

// TestQuickCSVRoundTrip: arbitrary relations survive WriteCSV → ReadCSV.
func TestQuickCSVRoundTrip(t *testing.T) {
	f := func(seed int64, colsRaw, rowsRaw uint8, cells []string) bool {
		rng := rand.New(rand.NewSource(seed))
		nCols := int(colsRaw)%5 + 1
		nRows := int(rowsRaw) % 8
		pick := func() string {
			if len(cells) == 0 {
				return "x"
			}
			return sanitizeCell(cells[rng.Intn(len(cells))])
		}
		r := &Relation{ID: "q", Source: "s", Columns: make([]string, nCols)}
		for c := range r.Columns {
			v := pick()
			if v == "" {
				v = "col"
			}
			r.Columns[c] = v
		}
		for i := 0; i < nRows; i++ {
			row := make([]string, nCols)
			for c := range row {
				row[c] = pick()
			}
			r.Rows = append(r.Rows, row)
		}
		var buf bytes.Buffer
		if err := r.WriteCSV(&buf); err != nil {
			return false
		}
		got, err := ReadCSV(&buf, "q", "s")
		if err != nil {
			return false
		}
		if len(got.Columns) != nCols || len(got.Rows) != nRows {
			return false
		}
		for c := range r.Columns {
			if got.Columns[c] != r.Columns[c] {
				return false
			}
		}
		for i := range r.Rows {
			for c := range r.Rows[i] {
				if got.Rows[i][c] != r.Rows[i][c] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSubsetInvariants: subsets preserve prefix order, never exceed
// the parent, and ByID stays consistent.
func TestQuickSubsetInvariants(t *testing.T) {
	f := func(nRaw uint8, fracRaw uint8) bool {
		n := int(nRaw)%40 + 1
		frac := float64(fracRaw%101) / 100
		fed := NewFederation()
		for i := 0; i < n; i++ {
			fed.Add(&Relation{
				ID:      string(rune('a'+i%26)) + string(rune('0'+i/26)),
				Columns: []string{"c"},
			})
		}
		sub := fed.Subset(frac)
		if sub.Len() > fed.Len() || sub.Len() < 1 {
			return false
		}
		for i, r := range sub.Relations() {
			if fed.Relations()[i] != r {
				return false // must be a prefix, same order
			}
			if got, ok := sub.ByID(r.ID); !ok || got != r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
