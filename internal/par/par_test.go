package par

import (
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("explicit worker count must pass through")
	}
	if Workers(0) < 1 || Workers(-5) < 1 {
		t.Fatal("non-positive counts must resolve to >= 1")
	}
}

func TestForCoversRangeOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 64} {
		n := 1000
		hits := make([]int32, n)
		For(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestForEmptyAndTiny(t *testing.T) {
	For(0, 4, func(lo, hi int) { t.Fatal("fn called for n=0") })
	called := 0
	For(1, 8, func(lo, hi int) {
		called++
		if lo != 0 || hi != 1 {
			t.Fatalf("bad range [%d,%d)", lo, hi)
		}
	})
	if called != 1 {
		t.Fatalf("fn called %d times", called)
	}
}

func TestEachCoversAllJobsOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 16} {
		n := 500
		hits := make([]int32, n)
		Each(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestEachSerialOrder(t *testing.T) {
	var order []int
	Each(10, 1, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("serial Each out of order: %v", order)
		}
	}
}
