// Package par provides the small data-parallel primitives the index-build
// pipeline is parallelized with: a chunked parallel-for over contiguous
// ranges and a dynamic work queue for uneven job sizes.
//
// The primitives are deliberately deterministic-friendly: For always splits
// [0, n) into the same contiguous chunks for a given worker count, and both
// helpers degrade to a plain serial loop when workers <= 1 — which is what
// lets callers promise bit-identical results for Workers: 1 builds.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: values <= 0 mean "use every core"
// (GOMAXPROCS), anything else is taken as-is.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// For splits [0, n) into up to `workers` contiguous chunks and runs fn on
// each concurrently. fn must only write state owned by its [lo, hi) range;
// chunk boundaries are a pure function of n and workers, so shard-local
// writes are reproducible. workers <= 1 (or tiny n) runs fn(0, n) inline.
func For(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Each runs fn(i) for every i in [0, n) on a pool of `workers` goroutines
// pulling jobs from a shared atomic counter — the right shape when job
// sizes are skewed (e.g. one HNSW graph per CTS cluster, where cluster
// sizes follow a long tail). workers <= 1 runs serially in index order.
func Each(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
