package hdbscan

import "semdisco/internal/vec"

// Silhouette computes the mean silhouette coefficient of a labelled
// clustering under the Euclidean metric, ignoring noise points. Values
// near 1 mean tight, well-separated clusters; near 0, overlapping ones;
// negative, misassignments. Cost is O(n²); for large inputs pass a sample.
//
// Returns 0 when fewer than 2 clusters have members (silhouette is
// undefined there).
func Silhouette(points [][]float32, labels []int) float64 {
	// Group member indices by cluster.
	clusters := map[int][]int{}
	for i, l := range labels {
		if l >= 0 {
			clusters[l] = append(clusters[l], i)
		}
	}
	if len(clusters) < 2 {
		return 0
	}
	var total float64
	counted := 0
	for i, l := range labels {
		if l < 0 {
			continue
		}
		own := clusters[l]
		if len(own) < 2 {
			continue // a(i) undefined for singleton clusters
		}
		// a(i): mean distance to co-members.
		var a float64
		for _, j := range own {
			if j == i {
				continue
			}
			a += float64(vec.L2(points[i], points[j]))
		}
		a /= float64(len(own) - 1)
		// b(i): min over other clusters of mean distance.
		b := -1.0
		for other, members := range clusters {
			if other == l {
				continue
			}
			var d float64
			for _, j := range members {
				d += float64(vec.L2(points[i], points[j]))
			}
			d /= float64(len(members))
			if b < 0 || d < b {
				b = d
			}
		}
		if b < 0 {
			continue
		}
		max := a
		if b > max {
			max = b
		}
		if max > 0 {
			total += (b - a) / max
			counted++
		}
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}
