// Package hdbscan implements Hierarchical Density-Based Spatial Clustering
// of Applications with Noise (Campello, Moulavi, Sander 2013; McInnes,
// Healy, Astels 2017) with Excess-of-Mass cluster extraction, plus the
// medoid computation the paper adds on top ("While HDBSCAN does not
// automatically provide cluster centers, we address this limitation by
// manually computing the clusters medoids").
//
// Pipeline: k-nearest-neighbour core distances → mutual-reachability
// distances → minimum spanning tree (Prim) → single-linkage dendrogram →
// condensed tree (minimum cluster size) → stability-based cluster selection
// → labels with noise = -1 → per-cluster medoids.
package hdbscan

import (
	"math"
	"sort"

	"semdisco/internal/par"
	"semdisco/internal/vec"
)

// Config controls clustering.
type Config struct {
	// MinClusterSize is the smallest group the condensed tree treats as a
	// cluster. Defaults to 5.
	MinClusterSize int
	// MinSamples is the k used for core distances (density smoothing).
	// Defaults to MinClusterSize.
	MinSamples int
	// AllowSingleCluster permits the root of the condensed tree to be
	// selected, which is required when the data forms one cluster plus
	// noise. Matches the reference implementation's flag of the same name;
	// defaults to false.
	AllowSingleCluster bool
	// Workers bounds the parallelism of the core-distance, MST and medoid
	// stages. 0 or 1 runs serially. The result is bit-identical for every
	// worker count: only independent per-point (or per-cluster) work is
	// sharded, and the Prim frontier argmin reduces in chunk order with the
	// same lowest-index tie-break the serial scan applies.
	Workers int
}

// Result is a completed clustering.
type Result struct {
	// Labels[i] is the cluster of point i, or Noise.
	Labels []int
	// NumClusters is the number of extracted clusters; labels run 0..N-1.
	NumClusters int
	// Medoids[c] is the index (into the input points) of cluster c's medoid:
	// the member minimizing total Euclidean distance to its co-members.
	Medoids []int
	// Stabilities[c] is the excess-of-mass stability of cluster c.
	Stabilities []float64
	// Probabilities[i] is the strength of point i's membership in its
	// cluster, in [0,1]; 0 for noise.
	Probabilities []float64
}

// Noise is the label assigned to points in no cluster.
const Noise = -1

// Cluster runs HDBSCAN on points under the Euclidean metric.
// The cost is O(n²) time and O(n) extra memory for the MST construction,
// which is the standard exact formulation.
func Cluster(points [][]float32, cfg Config) Result {
	n := len(points)
	if cfg.MinClusterSize <= 0 {
		cfg.MinClusterSize = 5
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = cfg.MinClusterSize
	}
	if n == 0 {
		return Result{Labels: []int{}}
	}
	if n == 1 {
		return Result{Labels: []int{Noise}, Probabilities: []float64{0}}
	}

	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if n < parallelMinPoints {
		workers = 1
	}

	core := coreDistances(points, cfg.MinSamples, workers)
	edges := mstPrim(points, core, workers)
	merges := singleLinkage(edges, n)
	ct := condense(merges, n, cfg.MinClusterSize)
	selected := ct.selectEOM(cfg.AllowSingleCluster)
	labels, probs := ct.label(selected, n)

	numClusters := 0
	for _, l := range labels {
		if l+1 > numClusters {
			numClusters = l + 1
		}
	}
	medoids := computeMedoids(points, labels, numClusters, workers)
	stab := make([]float64, numClusters)
	for _, c := range selected {
		if ct.finalLabel[c] >= 0 {
			stab[ct.finalLabel[c]] = ct.stability[c]
		}
	}
	return Result{
		Labels:        labels,
		NumClusters:   numClusters,
		Medoids:       medoids,
		Stabilities:   stab,
		Probabilities: probs,
	}
}

// parallelMinPoints gates the sharded paths: tiny inputs finish before the
// goroutine fan-out pays for itself.
const parallelMinPoints = 256

// coreDistances returns, for each point, the distance to its k-th nearest
// neighbour (the point itself not counted). Rows are independent, so the
// scan shards across workers with a per-worker distance buffer; the output
// does not depend on the worker count.
func coreDistances(points [][]float32, k, workers int) []float64 {
	n := len(points)
	if k >= n {
		k = n - 1
	}
	if k < 1 {
		k = 1
	}
	core := make([]float64, n)
	par.For(n, workers, func(lo, hi int) {
		dists := make([]float64, n)
		for i := lo; i < hi; i++ {
			for j := range points {
				dists[j] = float64(vec.L2(points[i], points[j]))
			}
			dists[i] = math.Inf(1) // exclude self, keeps slice length stable
			// k-th smallest via partial selection.
			core[i] = kthSmallest(dists, k)
		}
	})
	return core
}

// kthSmallest returns the k-th smallest element (1-based) of ds without
// permanently reordering the caller's view; it copies.
func kthSmallest(ds []float64, k int) float64 {
	cp := make([]float64, len(ds))
	copy(cp, ds)
	sort.Float64s(cp)
	return cp[k-1]
}

type mstEdge struct {
	a, b int
	w    float64
}

// mstPrim builds the minimum spanning tree of the complete graph under
// mutual-reachability distance max(core[a], core[b], d(a,b)).
//
// Each Prim round fuses the relax step and the frontier argmin over a
// chunk of vertices; chunks shard across workers and the per-chunk minima
// reduce serially in chunk order with a strict < comparison, reproducing
// the serial scan's lowest-index tie-break exactly. The relaxed distances
// themselves are pure per-vertex computations, so the tree is bit-identical
// at any worker count.
func mstPrim(points [][]float32, core []float64, workers int) []mstEdge {
	n := len(points)
	inTree := make([]bool, n)
	bestDist := make([]float64, n)
	bestFrom := make([]int, n)
	for i := range bestDist {
		bestDist[i] = math.Inf(1)
		bestFrom[i] = -1
	}
	type cand struct {
		next int
		d    float64
	}
	chunk := (n + workers - 1) / workers
	cands := make([]cand, workers)
	edges := make([]mstEdge, 0, n-1)
	cur := 0
	inTree[0] = true
	for len(edges) < n-1 {
		// Relax edges from cur and pick the closest frontier vertex, fused
		// per chunk.
		par.For(n, workers, func(lo, hi int) {
			best, bestD := -1, math.Inf(1)
			for j := lo; j < hi; j++ {
				if inTree[j] {
					continue
				}
				d := float64(vec.L2(points[cur], points[j]))
				if core[cur] > d {
					d = core[cur]
				}
				if core[j] > d {
					d = core[j]
				}
				if d < bestDist[j] {
					bestDist[j] = d
					bestFrom[j] = cur
				}
				if bestDist[j] < bestD {
					best, bestD = j, bestDist[j]
				}
			}
			cands[lo/chunk] = cand{best, bestD}
		})
		next, nextD := -1, math.Inf(1)
		for w := 0; w*chunk < n && w < len(cands); w++ {
			if c := cands[w]; c.next >= 0 && c.d < nextD {
				next, nextD = c.next, c.d
			}
		}
		if next < 0 {
			break // disconnected cannot happen on a complete graph
		}
		inTree[next] = true
		edges = append(edges, mstEdge{bestFrom[next], next, nextD})
		cur = next
	}
	return edges
}

// linkageMerge is one row of the single-linkage dendrogram, scipy-style:
// nodes 0..n-1 are points; merge i creates node n+i joining left and right
// at the given distance with the given total size.
type linkageMerge struct {
	left, right int
	dist        float64
	size        int
}

// singleLinkage converts MST edges (sorted ascending) into a dendrogram via
// union-find.
func singleLinkage(edges []mstEdge, n int) []linkageMerge {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].w != edges[j].w {
			return edges[i].w < edges[j].w
		}
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})
	parent := make([]int, n+len(edges))
	size := make([]int, n+len(edges))
	current := make([]int, n+len(edges)) // current dendrogram node of a root
	for i := range parent {
		parent[i] = i
		if i < n {
			size[i] = 1
			current[i] = i
		}
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	merges := make([]linkageMerge, 0, len(edges))
	for i, e := range edges {
		ra, rb := find(e.a), find(e.b)
		node := n + i
		merges = append(merges, linkageMerge{
			left: current[ra], right: current[rb],
			dist: e.w, size: size[ra] + size[rb],
		})
		parent[ra] = node
		parent[rb] = node
		parent[node] = node
		size[node] = size[ra] + size[rb]
		current[node] = node
	}
	return merges
}
