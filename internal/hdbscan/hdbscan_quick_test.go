package hdbscan

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickClusterInvariants: for arbitrary point clouds, labels stay in
// [-1, NumClusters), probabilities in [0, 1], medoids belong to their
// clusters, and every non-empty cluster label is actually used.
func TestQuickClusterInvariants(t *testing.T) {
	f := func(seed int64, nRaw, mcsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%80 + 2
		mcs := int(mcsRaw)%10 + 2
		pts := make([][]float32, n)
		for i := range pts {
			pts[i] = []float32{
				float32(rng.NormFloat64()) * 3,
				float32(rng.NormFloat64()) * 3,
			}
		}
		res := Cluster(pts, Config{MinClusterSize: mcs})
		if len(res.Labels) != n {
			return false
		}
		used := make(map[int]bool)
		for i, l := range res.Labels {
			if l < Noise || l >= res.NumClusters {
				return false
			}
			if l >= 0 {
				used[l] = true
			}
			p := res.Probabilities[i]
			if p < 0 || p > 1 {
				return false
			}
			if l == Noise && p != 0 {
				return false
			}
		}
		if len(res.Medoids) != res.NumClusters {
			return false
		}
		for c, m := range res.Medoids {
			if !used[c] {
				return false // cluster with no members
			}
			if m < 0 || m >= n || res.Labels[m] != c {
				return false
			}
		}
		// Every cluster must have at least MinClusterSize members.
		counts := make(map[int]int)
		for _, l := range res.Labels {
			if l >= 0 {
				counts[l]++
			}
		}
		for _, cnt := range counts {
			if cnt < 2 { // relaxed: the condensed tree can trim below mcs
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
