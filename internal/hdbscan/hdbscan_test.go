package hdbscan

import (
	"math"
	"math/rand"
	"testing"

	"semdisco/internal/vec"
)

func gauss2D(rng *rand.Rand, cx, cy, sd float32, n int) [][]float32 {
	out := make([][]float32, n)
	for i := range out {
		out[i] = []float32{
			cx + float32(rng.NormFloat64())*sd,
			cy + float32(rng.NormFloat64())*sd,
		}
	}
	return out
}

func TestThreeBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var pts [][]float32
	pts = append(pts, gauss2D(rng, 0, 0, 0.3, 60)...)
	pts = append(pts, gauss2D(rng, 10, 10, 0.3, 60)...)
	pts = append(pts, gauss2D(rng, -10, 10, 0.3, 60)...)
	res := Cluster(pts, Config{MinClusterSize: 10})
	if res.NumClusters != 3 {
		t.Fatalf("NumClusters=%d want 3 (labels=%v)", res.NumClusters, hist(res.Labels))
	}
	// Points in the same blob must overwhelmingly share a label.
	for blob := 0; blob < 3; blob++ {
		counts := map[int]int{}
		for i := 0; i < 60; i++ {
			counts[res.Labels[blob*60+i]]++
		}
		if maxCount(counts) < 55 {
			t.Fatalf("blob %d fragmented: %v", blob, counts)
		}
	}
	// Different blobs must have different labels.
	l0, l1, l2 := majority(res.Labels[0:60]), majority(res.Labels[60:120]), majority(res.Labels[120:180])
	if l0 == l1 || l1 == l2 || l0 == l2 {
		t.Fatalf("blobs merged: %d %d %d", l0, l1, l2)
	}
}

func TestNoiseDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var pts [][]float32
	pts = append(pts, gauss2D(rng, 0, 0, 0.2, 80)...)
	pts = append(pts, gauss2D(rng, 20, 20, 0.2, 80)...)
	// Sprinkle far-away isolated points.
	outliers := [][]float32{{100, 100}, {-100, 50}, {50, -100}, {200, 0}, {0, 200}}
	pts = append(pts, outliers...)
	res := Cluster(pts, Config{MinClusterSize: 10})
	noise := 0
	for _, l := range res.Labels[160:] {
		if l == Noise {
			noise++
		}
	}
	if noise < 4 {
		t.Fatalf("only %d/5 outliers labelled noise (labels=%v)", noise, res.Labels[160:])
	}
	for _, i := range []int{160, 161, 162, 163, 164} {
		if res.Labels[i] == Noise && res.Probabilities[i] != 0 {
			t.Fatalf("noise point %d has probability %v", i, res.Probabilities[i])
		}
	}
}

func TestMedoidsAreMembers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var pts [][]float32
	pts = append(pts, gauss2D(rng, 0, 0, 0.5, 50)...)
	pts = append(pts, gauss2D(rng, 8, 8, 0.5, 50)...)
	res := Cluster(pts, Config{MinClusterSize: 8})
	if res.NumClusters < 2 {
		t.Fatalf("NumClusters=%d", res.NumClusters)
	}
	if len(res.Medoids) != res.NumClusters {
		t.Fatalf("medoids=%d clusters=%d", len(res.Medoids), res.NumClusters)
	}
	for c, m := range res.Medoids {
		if m < 0 || m >= len(pts) {
			t.Fatalf("medoid %d out of range: %d", c, m)
		}
		if res.Labels[m] != c {
			t.Fatalf("medoid of cluster %d labelled %d", c, res.Labels[m])
		}
	}
}

func TestMedoidMinimizesTotalDistance(t *testing.T) {
	// A tight line of points: the middle one is the medoid.
	pts := [][]float32{{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0},
		{100, 0}, {101, 0}, {102, 0}, {103, 0}, {104, 0}}
	res := Cluster(pts, Config{MinClusterSize: 3, MinSamples: 2})
	if res.NumClusters != 2 {
		t.Skipf("clustering produced %d clusters; medoid check needs 2", res.NumClusters)
	}
	for c := 0; c < 2; c++ {
		m := res.Medoids[c]
		var members []int
		for i, l := range res.Labels {
			if l == c {
				members = append(members, i)
			}
		}
		mSum := sumDist(pts, m, members)
		for _, cand := range members {
			if s := sumDist(pts, cand, members); s < mSum-1e-9 {
				t.Fatalf("cluster %d: member %d beats medoid %d (%v < %v)", c, cand, m, s, mSum)
			}
		}
	}
}

func TestNonConvexShapes(t *testing.T) {
	// Two concentric rings — k-means cannot separate these; HDBSCAN must.
	rng := rand.New(rand.NewSource(4))
	var pts [][]float32
	ring := func(r float32, n int) {
		for i := 0; i < n; i++ {
			a := rng.Float64() * 2 * math.Pi
			pts = append(pts, []float32{
				r*float32(math.Cos(a)) + float32(rng.NormFloat64())*0.1,
				r*float32(math.Sin(a)) + float32(rng.NormFloat64())*0.1,
			})
		}
	}
	ring(2, 150)
	ring(10, 300)
	res := Cluster(pts, Config{MinClusterSize: 15})
	if res.NumClusters != 2 {
		t.Fatalf("rings: NumClusters=%d want 2", res.NumClusters)
	}
	inner := majority(res.Labels[:150])
	outer := majority(res.Labels[150:])
	if inner == outer {
		t.Fatal("rings merged")
	}
}

func TestSmallInputs(t *testing.T) {
	if res := Cluster(nil, Config{}); len(res.Labels) != 0 {
		t.Fatal("empty input")
	}
	res := Cluster([][]float32{{1, 2}}, Config{})
	if len(res.Labels) != 1 || res.Labels[0] != Noise {
		t.Fatalf("single point: %v", res.Labels)
	}
	res = Cluster([][]float32{{1, 2}, {1.1, 2}}, Config{MinClusterSize: 5})
	if res.NumClusters != 0 {
		t.Fatalf("two points cannot form a cluster of size 5: %v", res.Labels)
	}
}

func TestAllDuplicatePoints(t *testing.T) {
	pts := make([][]float32, 20)
	for i := range pts {
		pts[i] = []float32{3, 3}
	}
	res := Cluster(pts, Config{MinClusterSize: 5})
	for i, l := range res.Labels {
		if l != res.Labels[0] {
			t.Fatalf("duplicate points split: labels[%d]=%d", i, l)
		}
	}
	for _, p := range res.Probabilities {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatalf("bad probability %v", p)
		}
	}
}

func TestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var pts [][]float32
	pts = append(pts, gauss2D(rng, 0, 0, 1, 40)...)
	pts = append(pts, gauss2D(rng, 10, 0, 1, 40)...)
	a := Cluster(pts, Config{MinClusterSize: 8})
	b := Cluster(pts, Config{MinClusterSize: 8})
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("non-deterministic labels")
		}
	}
}

func TestProbabilitiesInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := gauss2D(rng, 0, 0, 1, 100)
	res := Cluster(pts, Config{MinClusterSize: 10})
	for i, p := range res.Probabilities {
		if p < 0 || p > 1 {
			t.Fatalf("probability out of range: p[%d]=%v", i, p)
		}
	}
}

func TestStabilitiesReported(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var pts [][]float32
	pts = append(pts, gauss2D(rng, 0, 0, 0.3, 50)...)
	pts = append(pts, gauss2D(rng, 10, 10, 0.3, 50)...)
	res := Cluster(pts, Config{MinClusterSize: 10})
	if len(res.Stabilities) != res.NumClusters {
		t.Fatalf("stabilities=%d clusters=%d", len(res.Stabilities), res.NumClusters)
	}
	for c, s := range res.Stabilities {
		if s <= 0 {
			t.Fatalf("cluster %d stability %v", c, s)
		}
	}
}

func TestDensityContrast(t *testing.T) {
	// One dense cluster embedded in a diffuse background: the dense core
	// must come out as a cluster, most of the background as noise.
	rng := rand.New(rand.NewSource(8))
	var pts [][]float32
	pts = append(pts, gauss2D(rng, 0, 0, 0.1, 80)...) // dense
	for i := 0; i < 40; i++ {                         // diffuse
		pts = append(pts, []float32{rng.Float32()*100 - 50, rng.Float32()*100 - 50})
	}
	// With one cluster plus background, the root is the only candidate, so
	// AllowSingleCluster is required (this mirrors the reference library's
	// allow_single_cluster flag).
	res := Cluster(pts, Config{MinClusterSize: 10, AllowSingleCluster: true})
	denseLabel := majority(res.Labels[:80])
	if denseLabel == Noise {
		t.Fatal("dense core labelled noise")
	}
	noiseCount := 0
	for _, l := range res.Labels[80:] {
		if l == Noise {
			noiseCount++
		}
	}
	if noiseCount < 25 {
		t.Fatalf("only %d/40 background points labelled noise", noiseCount)
	}
}

func sumDist(pts [][]float32, from int, members []int) float64 {
	var s float64
	for _, m := range members {
		s += float64(vec.L2(pts[from], pts[m]))
	}
	return s
}

func majority(labels []int) int {
	counts := map[int]int{}
	for _, l := range labels {
		counts[l]++
	}
	best, bestC := Noise, -1
	for l, c := range counts {
		if c > bestC {
			best, bestC = l, c
		}
	}
	return best
}

func maxCount(counts map[int]int) int {
	m := 0
	for _, c := range counts {
		if c > m {
			m = c
		}
	}
	return m
}

func hist(labels []int) map[int]int {
	h := map[int]int{}
	for _, l := range labels {
		h[l]++
	}
	return h
}

func BenchmarkCluster1000(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	var pts [][]float32
	for c := 0; c < 5; c++ {
		pts = append(pts, gauss2D(rng, float32(c*10), 0, 0.5, 200)...)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Cluster(pts, Config{MinClusterSize: 15})
	}
}

func TestSilhouette(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	var pts [][]float32
	var labels []int
	// Two tight, far-apart blobs: silhouette near 1.
	for b := 0; b < 2; b++ {
		blob := gauss2D(rng, float32(b*100), 0, 0.5, 30)
		pts = append(pts, blob...)
		for range blob {
			labels = append(labels, b)
		}
	}
	if s := Silhouette(pts, labels); s < 0.9 {
		t.Fatalf("separated blobs silhouette=%v", s)
	}
	// Deliberately swap labels of two halves of one blob region:
	// silhouette must drop sharply.
	bad := append([]int{}, labels...)
	for i := 0; i < 15; i++ {
		bad[i] = 1
	}
	if s := Silhouette(pts, bad); s > 0.5 {
		t.Fatalf("misassigned silhouette=%v should be low", s)
	}
	// Single cluster: undefined, returns 0.
	one := make([]int, len(pts))
	if s := Silhouette(pts, one); s != 0 {
		t.Fatalf("single-cluster silhouette=%v", s)
	}
	// All noise: 0.
	noise := make([]int, len(pts))
	for i := range noise {
		noise[i] = Noise
	}
	if s := Silhouette(pts, noise); s != 0 {
		t.Fatalf("all-noise silhouette=%v", s)
	}
}

func TestHDBSCANSilhouetteOnItsOwnClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var pts [][]float32
	pts = append(pts, gauss2D(rng, 0, 0, 0.3, 50)...)
	pts = append(pts, gauss2D(rng, 20, 20, 0.3, 50)...)
	res := Cluster(pts, Config{MinClusterSize: 10})
	if res.NumClusters != 2 {
		t.Skipf("clusters=%d", res.NumClusters)
	}
	if s := Silhouette(pts, res.Labels); s < 0.8 {
		t.Fatalf("HDBSCAN's own clustering scores silhouette %v", s)
	}
}

// TestWorkerCountInvariance pins the determinism contract: the sharded
// core-distance, Prim and medoid stages must be bit-identical to the serial
// run for every worker count. Uses > parallelMinPoints points so the
// parallel gates actually open.
func TestWorkerCountInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var pts [][]float32
	pts = append(pts, gauss2D(rng, 0, 0, 0.4, 120)...)
	pts = append(pts, gauss2D(rng, 6, 6, 0.4, 120)...)
	pts = append(pts, gauss2D(rng, -6, 6, 0.4, 120)...)
	if len(pts) < parallelMinPoints {
		t.Fatalf("test corpus too small (%d) to engage the parallel path", len(pts))
	}
	base := Cluster(pts, Config{MinClusterSize: 8, Workers: 1})
	for _, workers := range []int{2, 3, 8} {
		got := Cluster(pts, Config{MinClusterSize: 8, Workers: workers})
		if got.NumClusters != base.NumClusters {
			t.Fatalf("workers=%d: %d clusters, want %d", workers, got.NumClusters, base.NumClusters)
		}
		for i := range base.Labels {
			if got.Labels[i] != base.Labels[i] {
				t.Fatalf("workers=%d: label[%d] diverged", workers, i)
			}
			if got.Probabilities[i] != base.Probabilities[i] {
				t.Fatalf("workers=%d: probability[%d] not bit-identical", workers, i)
			}
		}
		for c := range base.Medoids {
			if got.Medoids[c] != base.Medoids[c] {
				t.Fatalf("workers=%d: medoid[%d] = %d, want %d", workers, c, got.Medoids[c], base.Medoids[c])
			}
			if got.Stabilities[c] != base.Stabilities[c] {
				t.Fatalf("workers=%d: stability[%d] diverged", workers, c)
			}
		}
	}
}
