package hdbscan

import (
	"sort"

	"semdisco/internal/par"
	"semdisco/internal/vec"
)

// maxLambda caps 1/distance so that zero distances (duplicate points) stay
// finite and stability arithmetic remains well-defined.
const maxLambda = 1e8

// ctEntry is one row of the condensed tree: child (a point if < n, a
// condensed cluster if ≥ n) detaches from parent at the given lambda with
// the given size.
type ctEntry struct {
	parent, child int
	lambda        float64
	size          int
}

// condensedTree holds the condensed hierarchy plus derived quantities.
type condensedTree struct {
	n       int
	entries []ctEntry
	// children[c] lists child *clusters* of cluster c.
	children map[int][]int
	// pointsOf[c] lists (point, lambda) rows of cluster c.
	pointsOf map[int][]ctEntry
	// birth[c] is the lambda at which cluster c appeared.
	birth map[int]float64
	// stability[c] per compute; finalLabel maps cluster id -> output label.
	stability  map[int]float64
	finalLabel map[int]int
	nextID     int
}

// condense reduces the single-linkage dendrogram to clusters of at least
// minClusterSize members, following the reference implementation's
// traversal.
func condense(merges []linkageMerge, n, minClusterSize int) *condensedTree {
	if minClusterSize < 2 {
		minClusterSize = 2
	}
	ct := &condensedTree{
		n:          n,
		children:   make(map[int][]int),
		pointsOf:   make(map[int][]ctEntry),
		birth:      make(map[int]float64),
		stability:  make(map[int]float64),
		finalLabel: make(map[int]int),
		nextID:     n,
	}
	if len(merges) == 0 {
		return ct
	}
	// Dendrogram node ids: points 0..n-1, merge i is node n+i.
	rootNode := n + len(merges) - 1
	root := ct.newCluster(0) // birth lambda 0
	type frame struct {
		node, cluster int
	}
	stack := []frame{{rootNode, root}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		m := merges[f.node-n]
		lambda := lambdaOf(m.dist)
		leftSize, rightSize := subtreeSize(merges, n, m.left), subtreeSize(merges, n, m.right)
		switch {
		case leftSize >= minClusterSize && rightSize >= minClusterSize:
			lc := ct.newChildCluster(f.cluster, lambda, leftSize)
			rc := ct.newChildCluster(f.cluster, lambda, rightSize)
			stack = append(stack, frame{m.left, lc}, frame{m.right, rc})
		case leftSize >= minClusterSize:
			ct.dropPoints(merges, n, m.right, f.cluster, lambda)
			stack = append(stack, frame{m.left, f.cluster})
		case rightSize >= minClusterSize:
			ct.dropPoints(merges, n, m.left, f.cluster, lambda)
			stack = append(stack, frame{m.right, f.cluster})
		default:
			ct.dropPoints(merges, n, m.left, f.cluster, lambda)
			ct.dropPoints(merges, n, m.right, f.cluster, lambda)
		}
	}
	ct.computeStability()
	return ct
}

func lambdaOf(dist float64) float64 {
	if dist <= 1/maxLambda {
		return maxLambda
	}
	return 1 / dist
}

func (ct *condensedTree) newCluster(birth float64) int {
	id := ct.nextID
	ct.nextID++
	ct.birth[id] = birth
	return id
}

func (ct *condensedTree) newChildCluster(parent int, lambda float64, size int) int {
	id := ct.newCluster(lambda)
	ct.children[parent] = append(ct.children[parent], id)
	ct.entries = append(ct.entries, ctEntry{parent: parent, child: id, lambda: lambda, size: size})
	return id
}

// dropPoints records every leaf under dendrogram node as leaving cluster at
// lambda. Note: a "node" may itself be a leaf (< n).
func (ct *condensedTree) dropPoints(merges []linkageMerge, n, node, cluster int, lambda float64) {
	stack := []int{node}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur < n {
			e := ctEntry{parent: cluster, child: cur, lambda: lambda, size: 1}
			ct.entries = append(ct.entries, e)
			ct.pointsOf[cluster] = append(ct.pointsOf[cluster], e)
			continue
		}
		m := merges[cur-n]
		stack = append(stack, m.left, m.right)
	}
}

// subtreeSize returns the number of points under a dendrogram node.
func subtreeSize(merges []linkageMerge, n, node int) int {
	if node < n {
		return 1
	}
	return merges[node-n].size
}

// computeStability fills stability[c] = Σ over child entries of c of
// (λ_child − λ_birth(c)) · size(child), the excess of mass.
func (ct *condensedTree) computeStability() {
	for _, e := range ct.entries {
		b := ct.birth[e.parent]
		ct.stability[e.parent] += (e.lambda - b) * float64(e.size)
	}
	// Clusters with no recorded entries still need a stability value.
	for id := ct.n; id < ct.nextID; id++ {
		if _, ok := ct.stability[id]; !ok {
			ct.stability[id] = 0
		}
	}
}

// selectEOM runs the bottom-up Excess-of-Mass selection and returns the
// chosen cluster ids. Unless allowRoot is set the root is never selected
// (its "cluster" is the whole dataset), matching the reference default.
func (ct *condensedTree) selectEOM(allowRoot bool) []int {
	if ct.nextID == ct.n {
		return nil
	}
	root := ct.n
	isCluster := make(map[int]bool, ct.nextID-ct.n)
	// Descending id order visits children before parents because ids are
	// allocated while descending the dendrogram.
	ids := make([]int, 0, ct.nextID-ct.n)
	lowest := root + 1
	if allowRoot {
		lowest = root
	}
	for id := ct.nextID - 1; id >= lowest; id-- {
		ids = append(ids, id)
	}
	for _, id := range ids {
		var childSum float64
		for _, c := range ct.children[id] {
			childSum += ct.stability[c]
		}
		if len(ct.children[id]) > 0 && ct.stability[id] < childSum {
			ct.stability[id] = childSum
			isCluster[id] = false
		} else {
			isCluster[id] = true
			ct.deselectDescendants(id, isCluster)
		}
	}
	var selected []int
	for _, id := range ids {
		if isCluster[id] {
			selected = append(selected, id)
		}
	}
	sort.Ints(selected)
	return selected
}

func (ct *condensedTree) deselectDescendants(id int, isCluster map[int]bool) {
	stack := append([]int(nil), ct.children[id]...)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		isCluster[cur] = false
		stack = append(stack, ct.children[cur]...)
	}
}

// label assigns output labels 0..k-1 to points under the selected clusters
// (in ascending cluster-id order, so labelling is deterministic) and Noise
// elsewhere. Probabilities are λ_point / λ_max within the cluster.
func (ct *condensedTree) label(selected []int, n int) (labels []int, probs []float64) {
	labels = make([]int, n)
	probs = make([]float64, n)
	for i := range labels {
		labels[i] = Noise
	}
	for i, c := range selected {
		ct.finalLabel[c] = i
	}
	for i, c := range selected {
		members := ct.collectMembers(c)
		var lmax float64
		for _, m := range members {
			if m.lambda > lmax {
				lmax = m.lambda
			}
		}
		for _, m := range members {
			labels[m.child] = i
			if lmax > 0 {
				p := m.lambda / lmax
				if p > 1 {
					p = 1
				}
				probs[m.child] = p
			}
		}
	}
	return labels, probs
}

// collectMembers returns the point entries of cluster c and all descendant
// clusters. When c is the root (only selectable under AllowSingleCluster),
// points that detached directly from the root at very low density are
// background noise, not members: a direct root point is admitted only if
// its lambda clears a small fraction of the cluster's peak density. Density
// ratios between a genuine cluster and background are orders of magnitude,
// so the 5% cut is insensitive to its exact value.
func (ct *condensedTree) collectMembers(c int) []ctEntry {
	var members []ctEntry
	stack := []int{c}
	if c == ct.n {
		direct := ct.pointsOf[c]
		var lmax float64
		for _, m := range direct {
			if m.lambda > lmax {
				lmax = m.lambda
			}
		}
		for _, m := range direct {
			if m.lambda >= 0.05*lmax {
				members = append(members, m)
			}
		}
		stack = append([]int(nil), ct.children[c]...)
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		members = append(members, ct.pointsOf[cur]...)
		stack = append(stack, ct.children[cur]...)
	}
	return members
}

// computeMedoids returns, per cluster, the index of the member point with
// the minimal sum of Euclidean distances to its co-members. Clusters are
// small relative to the corpus, so the O(|C|²) scan is acceptable; for very
// large clusters a uniform subsample of 256 members bounds the cost.
func computeMedoids(points [][]float32, labels []int, numClusters, workers int) []int {
	if numClusters == 0 {
		return nil
	}
	members := make([][]int, numClusters)
	for i, l := range labels {
		if l >= 0 {
			members[l] = append(members[l], i)
		}
	}
	medoids := make([]int, numClusters)
	// Clusters are independent O(|c|²) problems of uneven size, so they pull
	// from a shared queue rather than sharding contiguously.
	par.Each(numClusters, workers, func(c int) {
		medoids[c] = medoidOf(points, members[c])
	})
	return medoids
}

func medoidOf(points [][]float32, members []int) int {
	if len(members) == 0 {
		return -1
	}
	refs := members
	const cap = 256
	if len(refs) > cap {
		// Deterministic stride subsample.
		stride := len(refs) / cap
		sub := make([]int, 0, cap)
		for i := 0; i < len(refs) && len(sub) < cap; i += stride {
			sub = append(sub, refs[i])
		}
		refs = sub
	}
	best, bestSum := members[0], float64(0)
	first := true
	for _, candidate := range members {
		var sum float64
		for _, ref := range refs {
			sum += float64(vec.L2(points[candidate], points[ref]))
		}
		if first || sum < bestSum {
			best, bestSum = candidate, sum
			first = false
		}
	}
	return best
}
