// Package columns implements column-level dataset discovery — finding
// unionable and joinable columns across a federation — the companion
// problem the paper's related work surveys (TUS/Santos for unionability,
// Josie/DeepJoin for joinability) and a natural extension of its
// value-level embeddings: a column's semantic type is the weighted mean of
// its value embeddings, so unionability is embedding similarity, while
// joinability combines semantic similarity with exact value containment.
package columns

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"semdisco/internal/embed"
	"semdisco/internal/table"
	"semdisco/internal/text"
	"semdisco/internal/vec"
	"semdisco/internal/vectordb"
)

// ColumnRef identifies a column within a federation.
type ColumnRef struct {
	RelationID string
	Column     string
}

func (c ColumnRef) String() string { return c.RelationID + "." + c.Column }

// Profile is the discovery summary of one column.
type Profile struct {
	Ref ColumnRef
	// Embedding is the unit-norm semantic type vector: the multiplicity-
	// weighted mean of the distinct values' embeddings, mixed with the
	// header name's embedding.
	Embedding []float32
	// Distinct holds the normalized distinct values (lowercased, trimmed).
	Distinct map[string]struct{}
	// NumericFraction is the share of numeric values.
	NumericFraction float64
	// Rows is the column length including duplicates.
	Rows int
}

// newProfile summarizes one column.
func newProfile(enc embed.Encoder, relID, name string, values []string) *Profile {
	p := &Profile{
		Ref:      ColumnRef{RelationID: relID, Column: name},
		Distinct: make(map[string]struct{}),
		Rows:     len(values),
	}
	counts := make(map[string]float32)
	numeric := 0
	for _, v := range values {
		norm := normalizeValue(v)
		if norm == "" {
			continue
		}
		p.Distinct[norm] = struct{}{}
		counts[v]++
		if isNumericValue(v) {
			numeric++
		}
	}
	if len(values) > 0 {
		p.NumericFraction = float64(numeric) / float64(len(values))
	}
	// Weighted mean of value embeddings (70%) + header embedding (30%):
	// the header often names the semantic type directly, but data wins
	// when they disagree.
	emb := make([]float32, enc.Dim())
	var total float32
	for v, c := range counts {
		vec.AddScaled(emb, c, enc.Encode(v))
		total += c
	}
	if total > 0 {
		vec.Scale(emb, 0.7/total)
		vec.AddScaled(emb, 0.3, enc.Encode(name))
	} else {
		vec.AddScaled(emb, 1, enc.Encode(name))
	}
	p.Embedding = vec.Normalize(emb)
	return p
}

// Match is one column-discovery result.
type Match struct {
	Ref ColumnRef
	// Score is the method-specific relatedness in [0,1]-ish range.
	Score float64
	// Containment is |query ∩ candidate| / |query| over distinct values;
	// only computed for joinability searches.
	Containment float64
}

// Index holds the column profiles of a federation behind a vector index.
type Index struct {
	enc      embed.Encoder
	profiles []*Profile
	byRef    map[ColumnRef]*Profile
	coll     *vectordb.Collection
}

// BuildIndex profiles every column of every relation.
func BuildIndex(fed *table.Federation, enc embed.Encoder, seed int64) (*Index, error) {
	db := vectordb.New()
	coll, err := db.CreateCollection("columns", vectordb.CollectionConfig{
		Dim:    enc.Dim(),
		Metric: vectordb.Cosine,
		Seed:   seed,
	})
	if err != nil {
		return nil, fmt.Errorf("columns: %w", err)
	}
	ix := &Index{enc: enc, byRef: make(map[ColumnRef]*Profile), coll: coll}
	for _, r := range fed.Relations() {
		for _, col := range r.Columns {
			values, _ := r.Column(col)
			p := newProfile(enc, r.ID, col, values)
			idx := len(ix.profiles)
			ix.profiles = append(ix.profiles, p)
			ix.byRef[p.Ref] = p
			if _, err := coll.Insert(p.Embedding, map[string]string{
				"pi": strconv.Itoa(idx),
			}); err != nil {
				return nil, fmt.Errorf("columns: %w", err)
			}
		}
	}
	return ix, nil
}

// NumColumns returns the number of profiled columns.
func (ix *Index) NumColumns() int { return len(ix.profiles) }

// Profile returns the stored profile of a column.
func (ix *Index) Profile(ref ColumnRef) (*Profile, bool) {
	p, ok := ix.byRef[ref]
	return p, ok
}

// Unionable returns the k columns most unionable with the query column —
// columns holding values of the same semantic type — ranked by embedding
// similarity. Columns of the query's own relation are excluded (a table is
// trivially unionable with itself).
func (ix *Index) Unionable(query *Profile, k int) ([]Match, error) {
	if k <= 0 {
		return nil, nil
	}
	hits, err := ix.shortlist(query, 4*k+8)
	if err != nil {
		return nil, err
	}
	out := make([]Match, 0, k)
	for _, h := range hits {
		if h.p.Ref.RelationID == query.Ref.RelationID {
			continue
		}
		out = append(out, Match{Ref: h.p.Ref, Score: float64(h.score)})
		if len(out) == k {
			break
		}
	}
	return out, nil
}

// Joinable returns the k best join candidates for the query column:
// candidates are shortlisted by semantic similarity, then scored by
// 0.5·containment + 0.5·cosine, so exact key overlap dominates when
// present (Josie's signal) and semantics break ties across verbalizations
// (DeepJoin's signal).
func (ix *Index) Joinable(query *Profile, k int) ([]Match, error) {
	if k <= 0 {
		return nil, nil
	}
	hits, err := ix.shortlist(query, 8*k+16)
	if err != nil {
		return nil, err
	}
	var out []Match
	for _, h := range hits {
		if h.p.Ref.RelationID == query.Ref.RelationID {
			continue
		}
		cont := containment(query.Distinct, h.p.Distinct)
		out = append(out, Match{
			Ref:         h.p.Ref,
			Score:       0.5*cont + 0.5*float64(h.score),
			Containment: cont,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// ProfileColumn builds a query profile for an ad-hoc column that is not in
// the index (e.g. from a user's seed table).
func (ix *Index) ProfileColumn(relID, name string, values []string) *Profile {
	return newProfile(ix.enc, relID, name, values)
}

type scoredProfile struct {
	p     *Profile
	score float32
}

func (ix *Index) shortlist(query *Profile, n int) ([]scoredProfile, error) {
	hits, err := ix.coll.Search(query.Embedding, n, 2*n, nil)
	if err != nil {
		return nil, err
	}
	out := make([]scoredProfile, 0, len(hits))
	for _, h := range hits {
		pi, err := strconv.Atoi(h.Payload["pi"])
		if err != nil || pi < 0 || pi >= len(ix.profiles) {
			return nil, fmt.Errorf("columns: corrupt payload %q", h.Payload["pi"])
		}
		out = append(out, scoredProfile{ix.profiles[pi], h.Score})
	}
	return out, nil
}

// containment returns |a ∩ b| / |a|.
func containment(a, b map[string]struct{}) float64 {
	if len(a) == 0 {
		return 0
	}
	inter := 0
	for v := range a {
		if _, ok := b[v]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(a))
}

func normalizeValue(v string) string {
	return strings.ToLower(strings.TrimSpace(v))
}

func isNumericValue(v string) bool {
	toks := text.Tokenize(v)
	if len(toks) == 0 {
		return false
	}
	for _, t := range toks {
		if !text.IsNumeric(t) {
			return false
		}
	}
	return true
}
