package columns

import (
	"testing"

	"semdisco/internal/embed"
	"semdisco/internal/table"
)

// testFederation has a known join key (country names shared between two
// tables) and a known unionable pair (two vaccine columns from different
// sources with disjoint surface values but a shared concept).
func testFederation(t *testing.T) (*table.Federation, *embed.Model) {
	t.Helper()
	fed := table.NewFederation()
	add := func(r *table.Relation) {
		if err := fed.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	add(&table.Relation{
		ID: "gdp", Source: "econ",
		Columns: []string{"Country", "GDP"},
		Rows: [][]string{
			{"Germany", "4200"}, {"France", "3100"}, {"Spain", "1600"},
			{"Italy", "2100"}, {"Poland", "720"},
		},
	})
	add(&table.Relation{
		ID: "population", Source: "census",
		Columns: []string{"Nation", "People"},
		Rows: [][]string{
			{"Germany", "83"}, {"France", "68"}, {"Spain", "47"},
			{"Netherlands", "18"}, {"Belgium", "12"},
		},
	})
	add(&table.Relation{
		ID: "who-vaccines", Source: "WHO",
		Columns: []string{"Region", "Vaccine"},
		Rows: [][]string{
			{"Europe", "Comirnaty"}, {"Asia", "CoronaVac"},
		},
	})
	add(&table.Relation{
		ID: "ecdc-vaccines", Source: "ECDC",
		Columns: []string{"Country", "Trade Name"},
		Rows: [][]string{
			{"Germany", "Pfizer-BioNTech"}, {"France", "AstraZeneca"},
		},
	})
	add(&table.Relation{
		ID: "minerals", Source: "USGS",
		Columns: []string{"Mineral", "Hardness"},
		Rows: [][]string{
			{"Quartz", "7"}, {"Talc", "1"}, {"Gypsum", "2"},
		},
	})

	lex := embed.NewLexicon()
	vaccines := lex.AddSynonyms("vaccine", "Comirnaty", "CoronaVac", "Pfizer-BioNTech", "AstraZeneca")
	lex.Add(vaccines, "trade name")
	countries := lex.AddSynonyms("country", "nation")
	lex.Add(countries, "Germany")
	lex.Add(countries, "France")
	lex.Add(countries, "Spain")
	lex.Add(countries, "Italy")
	lex.Add(countries, "Poland")
	lex.Add(countries, "Netherlands")
	lex.Add(countries, "Belgium")
	model := embed.New(embed.Config{Dim: 192, Seed: 5, Lexicon: lex})
	return fed, model
}

func buildTestIndex(t *testing.T) *Index {
	t.Helper()
	fed, model := testFederation(t)
	ix, err := BuildIndex(fed, model, 5)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestBuildIndexProfilesEveryColumn(t *testing.T) {
	ix := buildTestIndex(t)
	if ix.NumColumns() != 10 {
		t.Fatalf("columns=%d want 10", ix.NumColumns())
	}
	p, ok := ix.Profile(ColumnRef{RelationID: "gdp", Column: "Country"})
	if !ok {
		t.Fatal("gdp.Country missing")
	}
	if len(p.Distinct) != 5 || p.Rows != 5 {
		t.Fatalf("profile=%+v", p)
	}
	if p.NumericFraction != 0 {
		t.Fatalf("Country numeric fraction %v", p.NumericFraction)
	}
	gdpCol, _ := ix.Profile(ColumnRef{RelationID: "gdp", Column: "GDP"})
	if gdpCol.NumericFraction != 1 {
		t.Fatalf("GDP numeric fraction %v", gdpCol.NumericFraction)
	}
}

func TestJoinableFindsSharedKeys(t *testing.T) {
	ix := buildTestIndex(t)
	q, _ := ix.Profile(ColumnRef{RelationID: "gdp", Column: "Country"})
	got, err := ix.Joinable(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no join candidates")
	}
	best := got[0]
	if best.Ref.RelationID != "population" || best.Ref.Column != "Nation" {
		t.Fatalf("best join candidate %v, want population.Nation (got %+v)", best.Ref, got)
	}
	// 3 of gdp's 5 countries appear in population.
	if best.Containment < 0.59 || best.Containment > 0.61 {
		t.Fatalf("containment=%v want 0.6", best.Containment)
	}
	// Never propose a column from the same relation.
	for _, m := range got {
		if m.Ref.RelationID == "gdp" {
			t.Fatalf("self-join proposed: %v", m.Ref)
		}
	}
}

func TestUnionableFindsSemanticTypeAcrossSources(t *testing.T) {
	ix := buildTestIndex(t)
	q, _ := ix.Profile(ColumnRef{RelationID: "who-vaccines", Column: "Vaccine"})
	got, err := ix.Unionable(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no union candidates")
	}
	// The ECDC trade-name column holds the same semantic type with zero
	// surface overlap; it must rank first.
	if got[0].Ref.RelationID != "ecdc-vaccines" || got[0].Ref.Column != "Trade Name" {
		t.Fatalf("best union candidate %v (all: %+v)", got[0].Ref, got)
	}
	// Minerals must not outrank it.
	for i, m := range got {
		if m.Ref.RelationID == "minerals" && i == 0 {
			t.Fatal("mineral column ranked most unionable with vaccines")
		}
	}
}

func TestProfileColumnAdHoc(t *testing.T) {
	ix := buildTestIndex(t)
	q := ix.ProfileColumn("seed", "Land", []string{"Germany", "France", "Austria"})
	got, err := ix.Joinable(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("ad-hoc column found nothing")
	}
	// Germany and France appear in gdp.Country, population.Nation and
	// ecdc-vaccines.Country (containment ⅔ each); any of those is a
	// correct best candidate. Hardness/GDP columns are not.
	if got[0].Containment < 0.6 {
		t.Fatalf("ad-hoc best candidate %v containment=%v", got[0].Ref, got[0].Containment)
	}
	if got[0].Ref.Column == "Hardness" || got[0].Ref.Column == "GDP" {
		t.Fatalf("numeric column proposed as country join: %v", got[0].Ref)
	}
}

func TestKZeroAndEmptyColumn(t *testing.T) {
	ix := buildTestIndex(t)
	q, _ := ix.Profile(ColumnRef{RelationID: "gdp", Column: "Country"})
	if got, err := ix.Unionable(q, 0); err != nil || got != nil {
		t.Fatal("k=0 must return nothing")
	}
	empty := ix.ProfileColumn("seed", "Empty", nil)
	if empty.Embedding == nil {
		t.Fatal("empty column must still embed (header only)")
	}
	if _, err := ix.Joinable(empty, 2); err != nil {
		t.Fatal(err)
	}
}

func TestContainment(t *testing.T) {
	a := map[string]struct{}{"x": {}, "y": {}}
	b := map[string]struct{}{"y": {}, "z": {}}
	if got := containment(a, b); got != 0.5 {
		t.Fatalf("containment=%v", got)
	}
	if got := containment(map[string]struct{}{}, b); got != 0 {
		t.Fatalf("empty containment=%v", got)
	}
}
