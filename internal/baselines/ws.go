package baselines

import (
	"math"

	"semdisco/internal/core"
	"semdisco/internal/eval"
	"semdisco/internal/vec"
)

// WS is the WebTable System baseline (Cafarella et al.): hand-crafted
// query-table features combined by a linear regression model trained on
// judged pairs — the classic pre-neural table-ranking recipe.
type WS struct {
	ctx *Context
	// numericFrac is precomputed per doc.
	numericFrac []float64
	weights     []float64 // one per feature + bias
}

const wsNumFeatures = 8

// NewWS builds the baseline with sensible untrained weights (coverage-
// dominated); call Train to fit them on judged pairs.
func NewWS(ctx *Context) *WS {
	w := &WS{ctx: ctx, numericFrac: make([]float64, len(ctx.docs))}
	for i, d := range ctx.docs {
		w.numericFrac[i] = d.rel.NumericFraction()
	}
	w.weights = []float64{1.0, 0.6, 0.6, 0.5, 0.02, 0.02, 0, 0.3, 0}
	return w
}

// Name implements core.Searcher.
func (w *WS) Name() string { return "WS" }

// Search implements core.Searcher.
func (w *WS) Search(query string, k int) ([]core.Match, error) {
	if k <= 0 {
		return nil, nil
	}
	qToks := queryTokens(query)
	top := vec.NewTopK(k)
	feats := make([]float64, wsNumFeatures)
	for i := range w.ctx.docs {
		w.features(qToks, i, feats)
		top.Push(i, float32(w.predict(feats)))
	}
	ranked := top.Sorted()
	out := make([]core.Match, len(ranked))
	for i, r := range ranked {
		out[i] = core.Match{RelationID: w.ctx.docs[r.ID].id, Score: r.Score}
	}
	return out, nil
}

// features fills dst with the hand-crafted feature vector.
func (w *WS) features(qToks []string, docIdx int, dst []float64) {
	d := w.ctx.docs[docIdx]
	if len(qToks) == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	var coverBody, coverHeader, coverCtx, tfBody float64
	for _, t := range qToks {
		if d.counts[fieldBody][t] > 0 {
			coverBody++
			tfBody += float64(d.counts[fieldBody][t])
		}
		if d.counts[fieldHeader][t] > 0 {
			coverHeader++
		}
		if d.counts[fieldPage][t] > 0 || d.counts[fieldSection][t] > 0 || d.counts[fieldCaption][t] > 0 {
			coverCtx++
		}
	}
	nq := float64(len(qToks))
	dst[0] = coverBody / nq
	dst[1] = coverHeader / nq
	dst[2] = coverCtx / nq
	if d.length[fieldBody] > 0 {
		dst[3] = tfBody / float64(d.length[fieldBody])
	} else {
		dst[3] = 0
	}
	dst[4] = math.Log1p(float64(d.rel.NumRows()))
	dst[5] = math.Log1p(float64(d.rel.NumCols()))
	dst[6] = w.numericFrac[docIdx]
	dst[7] = bm25(w.ctx, qToks, d)
}

func (w *WS) predict(feats []float64) float64 {
	s := w.weights[wsNumFeatures] // bias
	for i, f := range feats {
		s += w.weights[i] * f
	}
	return s
}

// Train fits the linear model by ridge regression over every judged
// (query, relation) pair, with the relevance grade as target.
func (w *WS) Train(queries map[string]string, qrels eval.Qrels) {
	byID := make(map[string]int, len(w.ctx.docs))
	for i, d := range w.ctx.docs {
		byID[d.id] = i
	}
	var xs [][]float64
	var ys []float64
	for qid, judged := range qrels {
		qText, ok := queries[qid]
		if !ok {
			continue
		}
		qToks := queryTokens(qText)
		for relID, grade := range judged {
			di, ok := byID[relID]
			if !ok {
				continue
			}
			feats := make([]float64, wsNumFeatures)
			w.features(qToks, di, feats)
			xs = append(xs, feats)
			ys = append(ys, float64(grade))
		}
	}
	if len(xs) > wsNumFeatures {
		w.weights = ridgeRegression(xs, ys, 0.1)
	}
}

// bm25 scores the query against the merged document with k1=1.2, b=0.75.
func bm25(ctx *Context, qToks []string, d *relDoc) float64 {
	const k1, b = 1.2, 0.75
	n := ctx.allStats.DocCount()
	avgLen := float64(ctx.allStats.CollectionLen()) / math.Max(1, float64(n))
	var s float64
	dl := float64(d.allLen)
	for _, t := range qToks {
		tf := float64(d.all[t])
		if tf == 0 {
			continue
		}
		df := float64(ctx.allStats.DocFreq(t))
		idf := math.Log(1 + (float64(n)-df+0.5)/(df+0.5))
		s += idf * tf * (k1 + 1) / (tf + k1*(1-b+b*dl/math.Max(1, avgLen)))
	}
	return s
}

// ridgeRegression solves min ‖Xw − y‖² + λ‖w‖² with an intercept appended
// as the last weight, via the normal equations and Gaussian elimination.
func ridgeRegression(xs [][]float64, ys []float64, lambda float64) []float64 {
	nf := len(xs[0]) + 1 // + bias
	a := make([][]float64, nf)
	for i := range a {
		a[i] = make([]float64, nf+1)
	}
	row := make([]float64, nf)
	for s := range xs {
		copy(row, xs[s])
		row[nf-1] = 1 // bias column
		for i := 0; i < nf; i++ {
			for j := 0; j < nf; j++ {
				a[i][j] += row[i] * row[j]
			}
			a[i][nf] += row[i] * ys[s]
		}
	}
	for i := 0; i < nf-1; i++ { // do not regularize the intercept
		a[i][i] += lambda
	}
	return solveGauss(a)
}

// solveGauss solves the augmented system in place with partial pivoting.
func solveGauss(a [][]float64) []float64 {
	n := len(a)
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		a[col], a[pivot] = a[pivot], a[col]
		if math.Abs(a[col][col]) < 1e-12 {
			continue // singular direction: leave weight at 0
		}
		inv := 1 / a[col][col]
		for j := col; j <= n; j++ {
			a[col][j] *= inv
		}
		for r := 0; r < n; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col]
			for j := col; j <= n; j++ {
				a[r][j] -= f * a[col][j]
			}
		}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = a[i][n]
	}
	return out
}
