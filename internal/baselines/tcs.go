package baselines

import (
	"math"
	"sort"

	"semdisco/internal/core"
	"semdisco/internal/eval"
	"semdisco/internal/vec"
)

// TCS is the Table Contextual Search baseline (Zhang & Balog): query-table
// pairs are mapped into several semantic spaces — lexical (TF-IDF), word-
// embedding early fusion, and late-fusion table embeddings — whose
// similarity scores feed a Random Forest regressor. The early-fusion
// space compares every query token vector against every table token
// vector, which is what makes TCS the slowest baseline at query time (the
// shape Figure 3 reports).
type TCS struct {
	ctx *Context
	// tableEmb is the late-fusion table-level embedding per doc.
	tableEmb [][]float32
	// bodyVocab is the distinct body+caption token list per doc, for early
	// fusion.
	bodyVocab [][]string
	forest    *randomForest
	seed      int64
}

const tcsNumFeatures = 7

// NewTCS precomputes table embeddings and vocabularies; call Train to fit
// the ranking forest on judged pairs (untrained, it falls back to the mean
// of its feature scores).
func NewTCS(ctx *Context, seed int64) *TCS {
	t := &TCS{ctx: ctx, seed: seed}
	for _, d := range ctx.docs {
		t.tableEmb = append(t.tableEmb, ctx.Model.Encode(d.rel.Text()))
		t.bodyVocab = append(t.bodyVocab, fusionVocab(ctx, d))
	}
	return t
}

// fusionVocabCap bounds the per-table vocabulary used in early fusion; the
// original system compares against every term, but the quadratic cost only
// needs the most informative terms to preserve the ranking signal.
const fusionVocabCap = 64

// fusionQueryCap bounds the distinct query tokens used in early fusion.
const fusionQueryCap = 32

// fusionVocab returns the table's body+caption tokens, deduplicated and
// truncated to the highest-TF·IDF fusionVocabCap entries.
func fusionVocab(ctx *Context, d *relDoc) []string {
	type tokenWeight struct {
		tok string
		w   float64
	}
	seen := map[string]struct{}{}
	var tws []tokenWeight
	for _, f := range []field{fieldBody, fieldCaption} {
		for _, tok := range d.tokens[f] {
			if _, dup := seen[tok]; dup {
				continue
			}
			seen[tok] = struct{}{}
			tws = append(tws, tokenWeight{tok, float64(d.all[tok]) * ctx.allStats.IDF(tok)})
		}
	}
	sort.SliceStable(tws, func(i, j int) bool { return tws[i].w > tws[j].w })
	if len(tws) > fusionVocabCap {
		tws = tws[:fusionVocabCap]
	}
	out := make([]string, len(tws))
	for i, tw := range tws {
		out[i] = tw.tok
	}
	return out
}

// Name implements core.Searcher.
func (t *TCS) Name() string { return "TCS" }

// Search implements core.Searcher.
func (t *TCS) Search(query string, k int) ([]core.Match, error) {
	if k <= 0 {
		return nil, nil
	}
	qToks := queryTokens(query)
	qEmb := t.ctx.Model.Encode(query)
	top := vec.NewTopK(k)
	feats := make([]float64, tcsNumFeatures)
	for i := range t.ctx.docs {
		t.features(qToks, qEmb, i, feats)
		top.Push(i, float32(t.predict(feats)))
	}
	ranked := top.Sorted()
	out := make([]core.Match, len(ranked))
	for i, r := range ranked {
		out[i] = core.Match{RelationID: t.ctx.docs[r.ID].id, Score: r.Score}
	}
	return out, nil
}

// features fills the multi-space similarity vector for one pair.
func (t *TCS) features(qToks []string, qEmb []float32, docIdx int, dst []float64) {
	d := t.ctx.docs[docIdx]
	// Space 1: TF-IDF cosine over the merged document.
	dst[0] = tfidfCosine(t.ctx, qToks, d)
	// Space 2: late fusion — cosine of query embedding and table embedding.
	dst[1] = float64(vec.Dot(qEmb, t.tableEmb[docIdx]))
	// Spaces 3-5: early fusion — aggregate pairwise token similarities.
	early := t.earlyFusion(qToks, docIdx)
	dst[2], dst[3], dst[4] = early[0], early[1], early[2]
	// Space 6: query coverage.
	cover := 0.0
	for _, tok := range qToks {
		if d.all[tok] > 0 {
			cover++
		}
	}
	if len(qToks) > 0 {
		dst[5] = cover / float64(len(qToks))
	}
	// Space 7: BM25 over the merged document.
	dst[6] = bm25(t.ctx, qToks, d)
}

// earlyFusion returns (mean, max, mean-of-max) over the |q|×|vocab| token
// similarity matrix — the expensive all-pairs comparison.
func (t *TCS) earlyFusion(qToks []string, docIdx int) [3]float64 {
	vocab := t.bodyVocab[docIdx]
	if len(qToks) == 0 || len(vocab) == 0 {
		return [3]float64{}
	}
	// Deduplicate and cap the query side of the fusion matrix.
	seen := make(map[string]struct{}, len(qToks))
	unique := make([]string, 0, len(qToks))
	for _, q := range qToks {
		if _, dup := seen[q]; dup {
			continue
		}
		seen[q] = struct{}{}
		unique = append(unique, q)
		if len(unique) == fusionQueryCap {
			break
		}
	}
	qToks = unique
	var sum, best, sumOfMax float64
	count := 0
	for _, q := range qToks {
		qv := t.ctx.Model.TokenVec(q)
		rowMax := -1.0
		for _, tok := range vocab {
			s := float64(vec.Dot(qv, t.ctx.Model.TokenVec(tok)))
			sum += s
			count++
			if s > rowMax {
				rowMax = s
			}
			if s > best {
				best = s
			}
		}
		sumOfMax += rowMax
	}
	return [3]float64{sum / float64(count), best, sumOfMax / float64(len(qToks))}
}

func (t *TCS) predict(feats []float64) float64 {
	if t.forest != nil {
		return t.forest.predict(feats)
	}
	// Untrained fallback: equal-weight combination.
	var s float64
	for _, f := range feats {
		s += f
	}
	return s / float64(len(feats))
}

// tcsTrainCap bounds the judged pairs used for forest training; beyond a
// few hundred pairs the fit stops changing while feature extraction keeps
// costing.
const tcsTrainCap = 800

// Train fits the Random Forest on the judged pairs (subsampled
// deterministically beyond tcsTrainCap) with the grade as target.
func (t *TCS) Train(queries map[string]string, qrels eval.Qrels) {
	byID := make(map[string]int, len(t.ctx.docs))
	for i, d := range t.ctx.docs {
		byID[d.id] = i
	}
	type pair struct {
		qid, rel string
		grade    int
	}
	var pairs []pair
	for _, qid := range qrels.Queries() {
		if _, ok := queries[qid]; !ok {
			continue
		}
		judged := qrels[qid]
		rels := make([]string, 0, len(judged))
		for rel := range judged {
			rels = append(rels, rel)
		}
		sort.Strings(rels)
		for _, rel := range rels {
			pairs = append(pairs, pair{qid, rel, judged[rel]})
		}
	}
	if len(pairs) > tcsTrainCap {
		stride := len(pairs) / tcsTrainCap
		var sub []pair
		for i := 0; i < len(pairs) && len(sub) < tcsTrainCap; i += stride {
			sub = append(sub, pairs[i])
		}
		pairs = sub
	}
	var xs [][]float64
	var ys []float64
	qCache := map[string]struct {
		toks []string
		emb  []float32
	}{}
	for _, pr := range pairs {
		di, ok := byID[pr.rel]
		if !ok {
			continue
		}
		qc, ok := qCache[pr.qid]
		if !ok {
			qc.toks = queryTokens(queries[pr.qid])
			qc.emb = t.ctx.Model.Encode(queries[pr.qid])
			qCache[pr.qid] = qc
		}
		feats := make([]float64, tcsNumFeatures)
		t.features(qc.toks, qc.emb, di, feats)
		xs = append(xs, feats)
		ys = append(ys, float64(pr.grade))
	}
	if len(xs) >= 20 {
		t.forest = trainForest(xs, ys, forestConfig{Seed: t.seed})
	}
}

// tfidfCosine computes the cosine between TF-IDF vectors of the query and
// the merged document, without materializing either.
func tfidfCosine(ctx *Context, qToks []string, d *relDoc) float64 {
	if len(qToks) == 0 || d.allLen == 0 {
		return 0
	}
	qtf := map[string]float64{}
	for _, t := range qToks {
		qtf[t]++
	}
	var dot, qNorm float64
	for t, tf := range qtf {
		idf := ctx.allStats.IDF(t)
		qw := tf * idf
		qNorm += qw * qw
		if dtf := d.all[t]; dtf > 0 {
			dot += qw * float64(dtf) * idf
		}
	}
	var dNorm float64
	for t, tf := range d.all {
		w := float64(tf) * ctx.allStats.IDF(t)
		dNorm += w * w
	}
	if qNorm == 0 || dNorm == 0 {
		return 0
	}
	return dot / (math.Sqrt(qNorm) * math.Sqrt(dNorm))
}
