package baselines

import (
	"math"

	"semdisco/internal/core"
	"semdisco/internal/eval"
	"semdisco/internal/vec"
)

// MDR is the Multi-field Document Ranking baseline (Pimplikar & Sarawagi):
// tables are structured documents whose fields (page title, section title,
// caption, header, body) are scored by independent Dirichlet-smoothed
// language models and combined with a weighted mixture. Field weights can
// be tuned on the training split of the judged pairs, exactly the use the
// paper makes of its 1,918 tuning pairs.
type MDR struct {
	ctx     *Context
	weights [numFields]float64
	mu      float64
}

// MDROptions configures MDR.
type MDROptions struct {
	// Mu is the Dirichlet smoothing parameter; default 200 (short fields).
	Mu float64
	// Weights are the initial mixture weights, normalized internally.
	// Zero-value selects a caption/body-leaning default.
	Weights []float64
}

// NewMDR builds the baseline over the shared context.
func NewMDR(ctx *Context, opt MDROptions) *MDR {
	m := &MDR{ctx: ctx, mu: opt.Mu}
	if m.mu == 0 {
		m.mu = 200
	}
	defaults := [numFields]float64{0.15, 0.05, 0.25, 0.15, 0.40}
	if len(opt.Weights) == int(numFields) {
		copy(defaults[:], opt.Weights)
	}
	m.weights = normalizeWeights(defaults)
	return m
}

// Name implements core.Searcher.
func (m *MDR) Name() string { return "MDR" }

// Search implements core.Searcher.
func (m *MDR) Search(query string, k int) ([]core.Match, error) {
	if k <= 0 {
		return nil, nil
	}
	qToks := queryTokens(query)
	if len(qToks) == 0 {
		return nil, nil
	}
	top := vec.NewTopK(k)
	for i, d := range m.ctx.docs {
		top.Push(i, float32(m.score(qToks, d)))
	}
	ranked := top.Sorted()
	out := make([]core.Match, len(ranked))
	for i, r := range ranked {
		out[i] = core.Match{RelationID: m.ctx.docs[r.ID].id, Score: r.Score}
	}
	return out, nil
}

// score is the mixture-of-field-LMs query log-likelihood.
func (m *MDR) score(qToks []string, d *relDoc) float64 {
	var s float64
	for _, t := range qToks {
		var p float64
		for f := field(0); f < numFields; f++ {
			tf := float64(d.counts[f][t])
			cp := m.ctx.fieldStats[f].CollectionProb(t)
			pf := (tf + m.mu*cp) / (float64(d.length[f]) + m.mu)
			p += m.weights[f] * pf
		}
		if p <= 0 {
			p = 1e-12
		}
		s += math.Log(p)
	}
	return s
}

// Tune adjusts the field weights by coordinate ascent on MAP over the given
// training queries (id → text) and judgments.
func (m *MDR) Tune(queries map[string]string, qrels eval.Qrels) {
	best := m.evalMAP(queries, qrels)
	for round := 0; round < 2; round++ {
		for f := field(0); f < numFields; f++ {
			orig := m.weights
			for _, mult := range []float64{0.5, 2.0} {
				cand := orig
				cand[f] *= mult
				m.weights = normalizeWeights(cand)
				if got := m.evalMAP(queries, qrels); got > best {
					best = got
					orig = m.weights
				} else {
					m.weights = orig
				}
			}
		}
	}
}

func (m *MDR) evalMAP(queries map[string]string, qrels eval.Qrels) float64 {
	run := eval.Run{}
	for id, text := range queries {
		ms, _ := m.Search(text, 20)
		ids := make([]string, len(ms))
		for i, match := range ms {
			ids[i] = match.RelationID
		}
		run[id] = ids
	}
	return eval.Evaluate(qrels, run).MAP
}

// Weights exposes the current mixture for diagnostics.
func (m *MDR) Weights() []float64 {
	out := make([]float64, numFields)
	copy(out, m.weights[:])
	return out
}

func normalizeWeights(w [numFields]float64) [numFields]float64 {
	var sum float64
	for _, x := range w {
		sum += x
	}
	if sum <= 0 {
		for f := range w {
			w[f] = 1.0 / float64(numFields)
		}
		return w
	}
	for f := range w {
		w[f] /= sum
	}
	return w
}
