package baselines

import (
	"sort"
	"strings"

	"semdisco/internal/core"
	"semdisco/internal/text"
	"semdisco/internal/vec"
)

// AdH is the Ad-Hoc Table Retrieval baseline (Chen et al.): a BERT-style
// encoder reads the table's context, header and a selected subset of rows,
// under a hard input-window limit (BERT's 512 tokens). Content selectors
// pick the rows most lexically similar to the query; whatever does not fit
// the window is truncated — the failure mode the paper repeatedly observes
// ("token length constraints led to truncation of relevant data").
//
// The encoder runs per query-table pair, as the real cross-encoding system
// does, which is why AdH's query latency grows linearly with corpus size.
type AdH struct {
	ctx *Context
	// window is the token limit; 512 in the original system.
	window int
}

// NewAdH builds the baseline. window 0 selects 512.
func NewAdH(ctx *Context, window int) *AdH {
	if window == 0 {
		window = 512
	}
	return &AdH{ctx: ctx, window: window}
}

// Name implements core.Searcher.
func (a *AdH) Name() string { return "AdH" }

// Search implements core.Searcher.
func (a *AdH) Search(query string, k int) ([]core.Match, error) {
	if k <= 0 {
		return nil, nil
	}
	qEmb := a.ctx.Model.Encode(query)
	qToks := queryTokens(query)
	top := vec.NewTopK(k)
	for i, d := range a.ctx.docs {
		selected := a.selectContent(qToks, d)
		emb := a.ctx.Model.EncodeTokens(selected)
		top.Push(i, vec.Dot(qEmb, emb))
	}
	ranked := top.Sorted()
	out := make([]core.Match, len(ranked))
	for i, r := range ranked {
		out[i] = core.Match{RelationID: a.ctx.docs[r.ID].id, Score: r.Score}
	}
	return out, nil
}

// selectContent builds the encoder input: context and header always, then
// rows ranked by lexical overlap with the query, all truncated to the
// window.
func (a *AdH) selectContent(qToks []string, d *relDoc) []string {
	qSet := make(map[string]struct{}, len(qToks))
	for _, t := range qToks {
		qSet[t] = struct{}{}
	}
	var toks []string
	for _, s := range []string{d.rel.PageTitle, d.rel.Caption} {
		toks = append(toks, text.Tokenize(s)...)
	}
	for _, c := range d.rel.Columns {
		toks = append(toks, text.Tokenize(c)...)
	}
	// Rank rows by stemmed-token overlap with the query; stable order keeps
	// the selection deterministic.
	type rowScore struct {
		idx     int
		overlap int
	}
	rows := make([]rowScore, d.rel.NumRows())
	for r := range rows {
		rows[r].idx = r
		for _, cell := range d.rel.Rows[r] {
			for _, tok := range stemFilter(cell) {
				if _, hit := qSet[tok]; hit {
					rows[r].overlap++
				}
			}
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].overlap > rows[j].overlap })
	for _, rs := range rows {
		if len(toks) >= a.window {
			break
		}
		toks = append(toks, text.Tokenize(strings.Join(d.rel.Rows[rs.idx], " "))...)
	}
	if len(toks) > a.window {
		toks = toks[:a.window]
	}
	return toks
}
