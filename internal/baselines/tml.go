package baselines

import (
	"strings"

	"semdisco/internal/core"
	"semdisco/internal/text"
	"semdisco/internal/vec"
)

// TML is the Table Meets LLM baseline (Sui et al.): tables are serialized
// into a textual prompt and a large language model judges their relevance
// to the query. We simulate the LLM with the semantic encoder reading the
// serialized table through a hard context window that the query and a
// fixed instruction overhead also occupy — reproducing TML's published
// profile: strong semantic matching on small tables and short queries,
// degrading on large serialized tables and long queries because the window
// truncates, and high latency because the "model" reads every table at
// query time (each query is a fresh round of LLM calls; nothing can be
// precomputed).
type TML struct {
	ctx *Context
	// contextWindow is the total token budget (query + instruction +
	// serialized table). Default 1024.
	contextWindow int
	// instructionOverhead models the prompt boilerplate. Default 64.
	instructionOverhead int
	// serialized rows, precomputed (serialization is query-independent;
	// what cannot be precomputed is the model's reading of it).
	serialized [][]string
}

// NewTML builds the baseline. window 0 selects 1024 tokens.
func NewTML(ctx *Context, window int) *TML {
	if window == 0 {
		window = 1024
	}
	t := &TML{ctx: ctx, contextWindow: window, instructionOverhead: 64}
	for _, d := range ctx.docs {
		t.serialized = append(t.serialized, serializeTable(d))
	}
	return t
}

// Name implements core.Searcher.
func (t *TML) Name() string { return "TML" }

// Search implements core.Searcher.
func (t *TML) Search(query string, k int) ([]core.Match, error) {
	if k <= 0 {
		return nil, nil
	}
	qToks := text.Tokenize(query)
	qEmb := t.ctx.Model.EncodeTokens(qToks)
	// The query and instruction eat into the window; long queries leave
	// less room for the table — the mechanism behind TML's poor long-query
	// results in the paper.
	budget := t.contextWindow - len(qToks) - t.instructionOverhead
	if budget < 16 {
		budget = 16
	}
	top := vec.NewTopK(k)
	for i := range t.ctx.docs {
		ser := t.serialized[i]
		if len(ser) > budget {
			ser = ser[:budget]
		}
		emb := t.ctx.Model.EncodeTokens(ser)
		top.Push(i, vec.Dot(qEmb, emb))
	}
	ranked := top.Sorted()
	out := make([]core.Match, len(ranked))
	for i, r := range ranked {
		out[i] = core.Match{RelationID: t.ctx.docs[r.ID].id, Score: r.Score}
	}
	return out, nil
}

// serializeTable renders the table the way LLM prompting frameworks do:
// context, then a header line, then each row with cells separated by
// delimiter tokens.
func serializeTable(d *relDoc) []string {
	var toks []string
	for _, s := range []string{d.rel.PageTitle, d.rel.SectionTitle, d.rel.Caption} {
		toks = append(toks, text.Tokenize(s)...)
	}
	toks = append(toks, text.Tokenize(strings.Join(d.rel.Columns, " | "))...)
	for _, row := range d.rel.Rows {
		toks = append(toks, text.Tokenize(strings.Join(row, " | "))...)
	}
	return toks
}
