package baselines

import (
	"testing"

	"semdisco/internal/core"
	"semdisco/internal/corpus"
	"semdisco/internal/eval"
)

// testCorpus is shared across baseline tests (generation is deterministic).
func testCorpus(t testing.TB) (*corpus.Corpus, *Context) {
	t.Helper()
	p := corpus.WikiTables()
	p.NumRelations = 100
	p.NumTopics = 8
	p.QueriesPerClass = 5
	p.JudgedPerQuery = 20
	c := corpus.Generate(p)
	model := c.NewEncoder(128, 3)
	return c, NewContext(c.Federation, model)
}

func allBaselines(ctx *Context) []core.Searcher {
	return []core.Searcher{
		NewMDR(ctx, MDROptions{}),
		NewWS(ctx),
		NewTCS(ctx, 1),
		NewAdH(ctx, 0),
		NewTML(ctx, 0),
	}
}

func trainQueries(c *corpus.Corpus) map[string]string {
	qs := map[string]string{}
	for _, q := range c.Queries {
		qs[q.ID] = q.Text
	}
	return qs
}

func runOf(t *testing.T, s core.Searcher, queries []corpus.Query, k int) eval.Run {
	t.Helper()
	run := eval.Run{}
	for _, q := range queries {
		ms, err := s.Search(q.Text, k)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		ids := make([]string, len(ms))
		for i, m := range ms {
			ids[i] = m.RelationID
		}
		run[q.ID] = ids
	}
	return run
}

func TestBaselinesReturnRankedResults(t *testing.T) {
	_, ctx := testCorpus(t)
	for _, s := range allBaselines(ctx) {
		got, err := s.Search("some query words", 5)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(got) != 5 {
			t.Fatalf("%s returned %d results", s.Name(), len(got))
		}
		for i := 1; i < len(got); i++ {
			if got[i].Score > got[i-1].Score {
				t.Fatalf("%s: scores not descending", s.Name())
			}
		}
		if r, err := s.Search("x", 0); err != nil || r != nil {
			t.Fatalf("%s: k=0 should return nothing", s.Name())
		}
	}
}

func TestBaselinesBeatRandom(t *testing.T) {
	c, ctx := testCorpus(t)
	queries := c.QueriesOf(corpus.Moderate)
	// Expected MAP of a random ranking ≈ fraction of relevant relations,
	// which is well under 0.15 for this corpus.
	for _, s := range allBaselines(ctx) {
		rep := eval.Evaluate(c.Qrels, runOf(t, s, queries, 20))
		if rep.MAP < 0.1 {
			t.Errorf("%s MAP=%.3f — no better than noise", s.Name(), rep.MAP)
		}
		t.Logf("%s: MAP=%.3f NDCG@10=%.3f", s.Name(), rep.MAP, rep.NDCG[10])
	}
}

func TestTrainingImprovesWS(t *testing.T) {
	c, ctx := testCorpus(t)
	queries := c.QueriesOf(corpus.Moderate)
	ws := NewWS(ctx)
	before := eval.Evaluate(c.TestQrels, runOf(t, ws, queries, 20)).MAP
	ws.Train(trainQueries(c), c.TrainQrels)
	after := eval.Evaluate(c.TestQrels, runOf(t, ws, queries, 20)).MAP
	t.Logf("WS MAP before=%.3f after=%.3f", before, after)
	if after < before-0.05 {
		t.Errorf("training made WS much worse: %.3f -> %.3f", before, after)
	}
}

func TestTrainingImprovesTCS(t *testing.T) {
	c, ctx := testCorpus(t)
	queries := c.QueriesOf(corpus.Moderate)
	tcs := NewTCS(ctx, 5)
	before := eval.Evaluate(c.TestQrels, runOf(t, tcs, queries, 20)).MAP
	tcs.Train(trainQueries(c), c.TrainQrels)
	after := eval.Evaluate(c.TestQrels, runOf(t, tcs, queries, 20)).MAP
	t.Logf("TCS MAP before=%.3f after=%.3f", before, after)
	if after < before-0.05 {
		t.Errorf("training made TCS much worse: %.3f -> %.3f", before, after)
	}
}

func TestMDRTuneDoesNotRegress(t *testing.T) {
	c, ctx := testCorpus(t)
	queries := c.QueriesOf(corpus.Moderate)
	mdr := NewMDR(ctx, MDROptions{})
	before := eval.Evaluate(c.TrainQrels, runOf(t, mdr, queries, 20)).MAP
	mdr.Tune(trainQueries(c), c.TrainQrels)
	after := eval.Evaluate(c.TrainQrels, runOf(t, mdr, queries, 20)).MAP
	if after < before-1e-9 {
		t.Errorf("Tune regressed its own objective: %.4f -> %.4f", before, after)
	}
	w := mdr.Weights()
	var sum float64
	for _, x := range w {
		sum += x
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("weights not normalized: %v", w)
	}
}

func TestTMLWindowDegradesLongQueries(t *testing.T) {
	// With a tiny window, long queries leave almost no room for the table;
	// quality must drop relative to a generous window.
	c, _ := testCorpus(t)
	model := c.NewEncoder(128, 3)
	ctx := NewContext(c.Federation, model)
	long := c.QueriesOf(corpus.Long)

	small := NewTML(ctx, 160) // long queries are ~80-140 tokens + 64 overhead
	big := NewTML(ctx, 4096)
	mapSmall := eval.Evaluate(c.Qrels, runOf(t, small, long, 20)).MAP
	mapBig := eval.Evaluate(c.Qrels, runOf(t, big, long, 20)).MAP
	t.Logf("TML long-query MAP: window=160 %.3f, window=4096 %.3f", mapSmall, mapBig)
	if mapSmall >= mapBig {
		t.Errorf("small window should hurt long queries: %.3f >= %.3f", mapSmall, mapBig)
	}
}

func TestAdHSelectsOverlappingRows(t *testing.T) {
	c, ctx := testCorpus(t)
	adh := NewAdH(ctx, 32) // harsh window forces selection to matter
	q := c.QueriesOf(corpus.Short)[0]
	got, err := adh.Search(q.Text, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no results under harsh window")
	}
}

func TestRandomForest(t *testing.T) {
	// y = 3*x0 + noise-free threshold on x1: the forest must fit better
	// than predicting the mean.
	var xs [][]float64
	var ys []float64
	for i := 0; i < 200; i++ {
		x0 := float64(i%10) / 10
		x1 := float64((i / 10) % 2)
		xs = append(xs, []float64{x0, x1, float64(i % 3)})
		ys = append(ys, 3*x0+2*x1)
	}
	f := trainForest(xs, ys, forestConfig{Seed: 1})
	var sse, ssm float64
	var mean float64
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	for i, x := range xs {
		d := f.predict(x) - ys[i]
		sse += d * d
		m := ys[i] - mean
		ssm += m * m
	}
	if sse > ssm*0.2 {
		t.Fatalf("forest fit too weak: SSE=%.3f vs SSM=%.3f", sse, ssm)
	}
}

func TestRidgeRegressionRecoversLinear(t *testing.T) {
	// y = 2*x0 - x1 + 0.5
	var xs [][]float64
	var ys []float64
	for i := 0; i < 50; i++ {
		x0 := float64(i) / 10
		x1 := float64(i%7) / 3
		xs = append(xs, []float64{x0, x1})
		ys = append(ys, 2*x0-x1+0.5)
	}
	w := ridgeRegression(xs, ys, 1e-6)
	if len(w) != 3 {
		t.Fatalf("weights=%v", w)
	}
	for i, want := range []float64{2, -1, 0.5} {
		if diff := w[i] - want; diff > 0.01 || diff < -0.01 {
			t.Fatalf("w[%d]=%.4f want %.4f", i, w[i], want)
		}
	}
}

func TestEmptyQuery(t *testing.T) {
	_, ctx := testCorpus(t)
	for _, s := range allBaselines(ctx) {
		if _, err := s.Search("", 5); err != nil {
			t.Fatalf("%s: empty query must not error: %v", s.Name(), err)
		}
	}
}
