// Package baselines implements the five comparison systems of the paper's
// evaluation (§5, "Base Methods"): Multi-field Document Ranking (MDR),
// WebTable System (WS), Table Contextual Search (TCS), Ad-Hoc Table
// Retrieval (AdH) and Table Meets LLM (TML). Each satisfies core.Searcher
// so the experiment harness can run them interchangeably with ExS/ANNS/CTS.
//
// The baselines deliberately differ in what they are allowed to see:
// MDR and WS are purely lexical (stemmed term matching), TCS adds word
// embeddings via early fusion, and AdH/TML use the semantic encoder but
// through a hard token window that truncates large tables — each method's
// published strength and failure mode.
package baselines

import (
	"semdisco/internal/embed"
	"semdisco/internal/table"
	"semdisco/internal/text"
)

// field identifies the document fields multi-field rankers score
// separately.
type field int

const (
	fieldPage field = iota
	fieldSection
	fieldCaption
	fieldHeader
	fieldBody
	numFields
)

var fieldNames = [numFields]string{"page", "section", "caption", "header", "body"}

// relDoc is the tokenized view of one relation.
type relDoc struct {
	id     string
	rel    *table.Relation
	tokens [numFields][]string       // stemmed, stopword-filtered
	counts [numFields]map[string]int // term frequency per field
	length [numFields]int
	all    map[string]int // merged term frequencies
	allLen int
}

// Context precomputes everything the baselines share: tokenized fields,
// per-field collection statistics and the table-level text used by the
// encoder-based methods.
type Context struct {
	Fed   *table.Federation
	Model *embed.Model

	docs       []*relDoc
	fieldStats [numFields]*text.CorpusStats
	allStats   *text.CorpusStats
}

// NewContext tokenizes the federation once for all baselines.
func NewContext(fed *table.Federation, model *embed.Model) *Context {
	ctx := &Context{Fed: fed, Model: model, allStats: &text.CorpusStats{}}
	for f := range ctx.fieldStats {
		ctx.fieldStats[f] = &text.CorpusStats{}
	}
	for _, r := range fed.Relations() {
		d := &relDoc{id: r.ID, rel: r, all: make(map[string]int)}
		fieldText := [numFields]string{
			fieldPage:    r.PageTitle,
			fieldSection: r.SectionTitle,
			fieldCaption: r.Caption,
		}
		for _, c := range r.Columns {
			fieldText[fieldHeader] += c + " "
		}
		for _, v := range r.Values() {
			fieldText[fieldBody] += v + " "
		}
		for f := field(0); f < numFields; f++ {
			toks := stemFilter(fieldText[f])
			d.tokens[f] = toks
			d.length[f] = len(toks)
			d.counts[f] = make(map[string]int, len(toks))
			for _, t := range toks {
				d.counts[f][t]++
				d.all[t]++
				d.allLen++
			}
			ctx.fieldStats[f].AddDocument(toks)
		}
		allToks := make([]string, 0, d.allLen)
		for f := field(0); f < numFields; f++ {
			allToks = append(allToks, d.tokens[f]...)
		}
		ctx.allStats.AddDocument(allToks)
		ctx.docs = append(ctx.docs, d)
	}
	return ctx
}

// NumRelations returns the corpus size.
func (ctx *Context) NumRelations() int { return len(ctx.docs) }

// queryTokens stems and filters a keyword query.
func queryTokens(q string) []string { return stemFilter(q) }

func stemFilter(s string) []string {
	raw := text.RemoveStopwords(text.Tokenize(s))
	out := make([]string, len(raw))
	for i, t := range raw {
		out[i] = text.Stem(t)
	}
	return out
}
