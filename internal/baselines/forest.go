package baselines

import (
	"math"
	"math/rand"
	"sort"
)

// randomForest is a CART-based bagged regression forest — the learning-to-
// rank model the TCS baseline uses ("uses Random Forest regression for
// ranking").
type randomForest struct {
	trees []*cartNode
}

// forestConfig controls training.
type forestConfig struct {
	NumTrees    int // default 30
	MaxDepth    int // default 6
	MinLeaf     int // default 3
	FeatureFrac float64
	Seed        int64
}

type cartNode struct {
	// Leaf prediction when left == nil.
	value float64
	// Split: feature index and threshold; samples with x[feature] <= t go
	// left.
	feature     int
	threshold   float64
	left, right *cartNode
}

// trainForest fits the forest on samples xs with targets ys.
func trainForest(xs [][]float64, ys []float64, cfg forestConfig) *randomForest {
	if cfg.NumTrees == 0 {
		cfg.NumTrees = 30
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 6
	}
	if cfg.MinLeaf == 0 {
		cfg.MinLeaf = 3
	}
	if cfg.FeatureFrac == 0 {
		cfg.FeatureFrac = 0.7
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &randomForest{}
	n := len(xs)
	for t := 0; t < cfg.NumTrees; t++ {
		// Bootstrap sample.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		f.trees = append(f.trees, growTree(xs, ys, idx, cfg, rng, 0))
	}
	return f
}

// predict averages the trees.
func (f *randomForest) predict(x []float64) float64 {
	var s float64
	for _, t := range f.trees {
		s += t.eval(x)
	}
	return s / float64(len(f.trees))
}

func (n *cartNode) eval(x []float64) float64 {
	for n.left != nil {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

func growTree(xs [][]float64, ys []float64, idx []int, cfg forestConfig, rng *rand.Rand, depth int) *cartNode {
	mean, variance := meanVar(ys, idx)
	node := &cartNode{value: mean}
	if depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinLeaf || variance < 1e-12 {
		return node
	}
	numFeat := len(xs[0])
	tryFeat := int(math.Ceil(cfg.FeatureFrac * float64(numFeat)))
	perm := rng.Perm(numFeat)[:tryFeat]

	bestGain := 0.0
	bestFeat, bestThresh := -1, 0.0
	vals := make([]float64, len(idx))
	for _, feat := range perm {
		for i, s := range idx {
			vals[i] = xs[s][feat]
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		// Candidate thresholds: midpoints between distinct consecutive
		// values (at most 16, evenly spread), which handles discrete and
		// heavily-tied features that quantile positions would skip.
		var boundaries []float64
		for i := 1; i < len(sorted); i++ {
			if sorted[i] != sorted[i-1] {
				boundaries = append(boundaries, (sorted[i]+sorted[i-1])/2)
			}
		}
		step := 1
		if len(boundaries) > 16 {
			step = len(boundaries) / 16
		}
		for bi := 0; bi < len(boundaries); bi += step {
			t := boundaries[bi]
			gain := splitGain(xs, ys, idx, feat, t, cfg.MinLeaf)
			if gain > bestGain {
				bestGain, bestFeat, bestThresh = gain, feat, t
			}
		}
	}
	if bestFeat < 0 {
		return node
	}
	var li, ri []int
	for _, s := range idx {
		if xs[s][bestFeat] <= bestThresh {
			li = append(li, s)
		} else {
			ri = append(ri, s)
		}
	}
	node.feature = bestFeat
	node.threshold = bestThresh
	node.left = growTree(xs, ys, li, cfg, rng, depth+1)
	node.right = growTree(xs, ys, ri, cfg, rng, depth+1)
	return node
}

// splitGain is the variance reduction of a candidate split; 0 when either
// side is below the leaf minimum.
func splitGain(xs [][]float64, ys []float64, idx []int, feat int, thresh float64, minLeaf int) float64 {
	var nl, nr float64
	var sl, sr, ql, qr float64
	for _, s := range idx {
		y := ys[s]
		if xs[s][feat] <= thresh {
			nl++
			sl += y
			ql += y * y
		} else {
			nr++
			sr += y
			qr += y * y
		}
	}
	if int(nl) < minLeaf || int(nr) < minLeaf {
		return 0
	}
	total := sl + sr
	n := nl + nr
	varTotal := (ql + qr) - total*total/n
	varLeft := ql - sl*sl/nl
	varRight := qr - sr*sr/nr
	return varTotal - varLeft - varRight
}

func meanVar(ys []float64, idx []int) (mean, variance float64) {
	if len(idx) == 0 {
		return 0, 0
	}
	for _, s := range idx {
		mean += ys[s]
	}
	mean /= float64(len(idx))
	for _, s := range idx {
		d := ys[s] - mean
		variance += d * d
	}
	variance /= float64(len(idx))
	return mean, variance
}
