package netcluster

import (
	"fmt"
	"testing"
)

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(0, 0); err == nil {
		t.Error("NewRing(0, 0): want error for zero sets")
	}
	if _, err := NewRing(-2, 0); err == nil {
		t.Error("NewRing(-2, 0): want error for negative sets")
	}
	if _, err := NewRing(2, -3); err == nil {
		t.Error("NewRing(2, -3): want error for negative vnodes")
	}
	r, err := NewRing(1, 0)
	if err != nil {
		t.Fatalf("NewRing(1, 0): %v", err)
	}
	if r.Sets() != 1 {
		t.Errorf("Sets() = %d, want 1", r.Sets())
	}
	if got := r.Owner("anything"); got != 0 {
		t.Errorf("single-set ring owns %d, want 0", got)
	}
}

// TestRingAgreement is the placement contract: a shard server and the
// coordinator build their rings independently from the same (sets, vnodes)
// pair, so two rings with equal parameters must place every key
// identically.
func TestRingAgreement(t *testing.T) {
	a, err := NewRing(5, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(5, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("rel-%04d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("rings disagree on %q: %d vs %d", key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestRingCoverageAndBalance(t *testing.T) {
	const sets, keys = 4, 2000
	r, err := NewRing(sets, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, sets)
	for i := 0; i < keys; i++ {
		s := r.Owner(fmt.Sprintf("rel-%05d", i))
		if s < 0 || s >= sets {
			t.Fatalf("owner %d out of range [0,%d)", s, sets)
		}
		counts[s]++
	}
	// DefaultVnodes smooths skew to a few percent; the bound here is loose
	// enough to never flake, tight enough to catch a broken hash or sort.
	for s, c := range counts {
		share := float64(c) / keys
		if share < 0.05 || share > 0.60 {
			t.Errorf("set %d owns %.1f%% of keys, want 5%%-60%%", s, share*100)
		}
	}
}

// TestRingOwnerStableUnderRepeats guards the binary search: repeated
// lookups of the same key must not depend on call order or prior lookups.
func TestRingOwnerStableUnderRepeats(t *testing.T) {
	r, err := NewRing(3, 16)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"", "a", "rel-000", "rel-999", "the same long key repeated many times"}
	first := make([]int, len(keys))
	for i, k := range keys {
		first[i] = r.Owner(k)
	}
	for round := 0; round < 10; round++ {
		for i, k := range keys {
			if got := r.Owner(k); got != first[i] {
				t.Fatalf("Owner(%q) changed: %d then %d", k, first[i], got)
			}
		}
	}
}
