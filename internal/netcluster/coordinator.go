package netcluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"semdisco/internal/cluster"
	"semdisco/internal/obs"
)

// CoordinatorOptions configures a Coordinator.
type CoordinatorOptions struct {
	// Encode embeds a query string once; the raw vector fans out to the
	// replica sets, which never re-encode. Required.
	Encode func(query string) []float32
	// Order maps a relation ID to its global insertion rank; the merge
	// tie-breaks on it, keeping the networked ranking bit-identical to the
	// in-process Router's and the single engine's for exact search.
	// Required.
	Order func(relID string) int
	// Method labels stats and trace outcomes ("ExS", …).
	Method string
	// Slack widens each set's fetch to k+Slack before the merge; default 8.
	Slack int
	// CacheSize bounds the coordinator's (query, k) result LRU; 0 disables.
	CacheSize int
	// Vnodes is the consistent-hash ring's virtual-node count per set;
	// default DefaultVnodes.
	Vnodes int
	// AttemptTimeout bounds each replica attempt (see GroupOptions).
	AttemptTimeout time.Duration
	// Hedge enables cross-replica hedging inside each set.
	Hedge bool
	// MinHedgeDelay / HedgeAfter tune the hedge trigger (see GroupOptions).
	MinHedgeDelay time.Duration
	HedgeAfter    int
	// BackoffBase / BackoffMax tune sequential failover retries.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Transport carries every coordinator→shard request; nil means
	// http.DefaultTransport. Tests and the bench pass a *FaultInjector.
	Transport http.RoundTripper
	// Registry receives coordinator, router and group metrics; nil
	// disables them.
	Registry *obs.Registry
	// Traces receives the span trees of interesting federated queries
	// (remote shard spans grafted in); nil disables retention.
	Traces *obs.TraceStore
}

// Coordinator is the client-facing node of a networked cluster: it owns
// the consistent-hash ring mapping relations to replica sets, encodes each
// query once, fans raw vectors out to one replica per set (with failover
// and hedging inside each set), and merges per-set answers with the same
// deterministic comparator the in-process Router uses — so the networked
// ranking is bit-identical to the monolith's for exact search. The Router
// underneath also contributes its result cache, request coalescing, cost
// aggregation and batch fan-out unchanged; netcluster adds the wire, not a
// second query engine.
type Coordinator struct {
	ring   *Ring
	groups []*Group
	router *cluster.Router
	opts   CoordinatorOptions
	reg    *obs.Registry
	traces *obs.TraceStore
}

// NewCoordinator builds a coordinator over replica sets: replicaSets[i]
// lists the base URLs of set i's members, each holding an identical copy
// of partition i. At least one set with at least one member is required.
func NewCoordinator(replicaSets [][]string, opts CoordinatorOptions) (*Coordinator, error) {
	if len(replicaSets) == 0 {
		return nil, errors.New("netcluster: at least one replica set required")
	}
	if opts.Encode == nil {
		return nil, errors.New("netcluster: CoordinatorOptions.Encode is required")
	}
	if opts.Order == nil {
		return nil, errors.New("netcluster: CoordinatorOptions.Order is required")
	}
	if opts.Vnodes == 0 {
		opts.Vnodes = DefaultVnodes
	}
	ring, err := NewRing(len(replicaSets), opts.Vnodes)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		ring:   ring,
		opts:   opts,
		reg:    opts.Registry,
		traces: opts.Traces,
	}
	c.reg.SetHelps(MetricHelp)
	newClient := func(u string) *Client { return NewClient(u, opts.Transport) }
	routerShards := make([]cluster.Shard, len(replicaSets))
	relCounts := make([]int, len(replicaSets))
	for i, urls := range replicaSets {
		g, err := NewGroup(i, urls, newClient, GroupOptions{
			AttemptTimeout: opts.AttemptTimeout,
			Hedge:          opts.Hedge,
			MinHedgeDelay:  opts.MinHedgeDelay,
			HedgeAfter:     opts.HedgeAfter,
			BackoffBase:    opts.BackoffBase,
			BackoffMax:     opts.BackoffMax,
			Registry:       opts.Registry,
		})
		if err != nil {
			return nil, err
		}
		c.groups = append(c.groups, g)
		routerShards[i] = g
	}
	// The Router sees one logical shard per replica set. Its own per-shard
	// timeout and same-shard hedging stay off: the group already bounds
	// each attempt and hedges across replicas, which a same-shard retry
	// could never do for a wedged server.
	router, err := cluster.NewRouter(routerShards, relCounts, cluster.Options{
		Slack:     opts.Slack,
		Method:    opts.Method,
		Encode:    opts.Encode,
		Order:     opts.Order,
		CacheSize: opts.CacheSize,
		Registry:  opts.Registry,
	})
	if err != nil {
		return nil, err
	}
	c.router = router
	return c, nil
}

// NumSets reports the replica-set (partition) count.
func (c *Coordinator) NumSets() int { return len(c.groups) }

// Ring exposes the placement ring, so a shard bootstrapping its partition
// applies the identical assignment by construction.
func (c *Coordinator) Ring() *Ring { return c.ring }

// Traces exposes the coordinator's trace store; nil when disabled.
func (c *Coordinator) Traces() *obs.TraceStore { return c.traces }

// Search answers one query by networked scatter-gather, traced end to
// end: the federated query runs under a root span, every replica attempt
// carries its traceparent over the wire, and the winning replicas' remote
// span trees come back grafted under this trace. Partial failure (a whole
// replica set down) degrades the Result; only every set failing — or the
// caller's context expiring — is an error.
func (c *Coordinator) Search(ctx context.Context, query string, k int) (*cluster.Result, error) {
	tr := obs.NewTraceFrom(ctx)
	root := tr.StartRoot("coordinator_search").AnnotateInt("k", k).AnnotateInt("sets", len(c.groups))
	ctx = c.propagate(ctx, tr, root)
	res, err := c.router.SearchTraced(ctx, query, k, tr)
	if res != nil {
		root.AnnotateInt("matches", len(res.Matches)).
			AnnotateInt("distance_comps", int(res.Cost.DistanceComps))
		res.TraceID = tr.ID().String()
	}
	dur := root.End()
	c.offer(tr, dur, query, k, res, err)
	return res, err
}

// SearchBatch answers a block of queries with one networked fan-out per
// replica set (one failover race per set for the whole block), under one
// batch-level trace.
func (c *Coordinator) SearchBatch(ctx context.Context, items []cluster.BatchQuery) ([]*cluster.Result, error) {
	tr := obs.NewTraceFrom(ctx)
	root := tr.StartRoot("coordinator_search_batch").
		AnnotateInt("queries", len(items)).
		AnnotateInt("sets", len(c.groups))
	ctx = c.propagate(ctx, tr, root)
	results, err := c.router.SearchBatch(ctx, items)
	dur := root.End()
	o := obs.TraceOutcome{Duration: dur, Method: c.opts.Method + "_batch", K: len(items),
		RequestID: obs.RequestIDFrom(ctx)}
	if err != nil {
		o.Err = err.Error()
	}
	for _, res := range results {
		if res != nil {
			res.TraceID = tr.ID().String()
			if res.Degraded {
				o.Degraded = true
			}
			o.Hedged += res.Hedged
		}
	}
	c.offerOutcome(tr, o)
	return results, err
}

// propagate threads the trace down the stack: the live *Trace so replica
// groups can graft remote spans, and the root's span context so every
// wire request carries a traceparent parenting the shard's spans here.
func (c *Coordinator) propagate(ctx context.Context, tr *obs.Trace, root *obs.Span) context.Context {
	ctx = obs.ContextWithTrace(ctx, tr)
	return obs.ContextWithSpan(ctx, obs.SpanContext{TraceID: tr.ID(), SpanID: root.ID(), Flags: tr.Flags()})
}

func (c *Coordinator) offer(tr *obs.Trace, dur time.Duration, query string, k int, res *cluster.Result, err error) {
	o := obs.TraceOutcome{Duration: dur, Query: query, Method: c.opts.Method, K: k}
	if err != nil {
		o.Err = err.Error()
	}
	if res != nil {
		o.Matches = len(res.Matches)
		o.Degraded = res.Degraded
		o.Hedged = res.Hedged
		for _, se := range res.ShardErrors {
			o.ShardErrors = append(o.ShardErrors, se.Error())
		}
	}
	c.offerOutcome(tr, o)
}

func (c *Coordinator) offerOutcome(tr *obs.Trace, o obs.TraceOutcome) {
	if c.traces == nil {
		return
	}
	if kept, _ := c.traces.Offer(tr, o); kept {
		c.reg.Histogram(cluster.MetricSearchSeconds).SetExemplar(o.Duration, tr.ID().String())
	}
}

// WriteError is a partial write-path failure: some replicas of the owning
// set applied the mutation and others did not. The mutation is durable on
// the replicas that took it; the listed ones need repair (or a retry of
// the same idempotent call).
type WriteError struct {
	Op       string
	ID       string
	Set      int
	Failed   []string // replica URLs that failed
	Applied  int      // replicas that applied the write
	LastErr  error
	Replicas int
}

func (e *WriteError) Error() string {
	return fmt.Sprintf("netcluster: %s %q on set %d applied on %d/%d replicas (failed: %s): %v",
		e.Op, e.ID, e.Set, e.Applied, e.Replicas, strings.Join(e.Failed, ", "), e.LastErr)
}

// Unwrap exposes the last replica error to errors.Is/As.
func (e *WriteError) Unwrap() error { return e.LastErr }

// writeAll applies one mutation to every replica of the owning set. The
// result cache and coalescer are fenced as soon as any replica applied it
// (the federation's answer may already have changed); a partial
// application returns *WriteError naming the replicas needing repair.
func (c *Coordinator) writeAll(ctx context.Context, op, id string, fence func(set int), apply func(context.Context, *Client) error) error {
	set := c.ring.Owner(id)
	g := c.groups[set]
	var (
		failed  []string
		lastErr error
		applied int
	)
	for _, cl := range g.clients {
		if err := apply(ctx, cl); err != nil {
			failed = append(failed, cl.URL())
			lastErr = err
			continue
		}
		applied++
	}
	if applied > 0 {
		fence(set)
	}
	if lastErr == nil {
		return nil
	}
	if applied == 0 {
		return fmt.Errorf("netcluster: %s %q failed on every replica of set %d: %w", op, id, set, lastErr)
	}
	return &WriteError{Op: op, ID: id, Set: set, Failed: failed, Applied: applied,
		LastErr: lastErr, Replicas: g.Replicas()}
}

// Add routes one new relation to its ring-owning set and ingests it on
// every replica of that set.
func (c *Coordinator) Add(ctx context.Context, rel Relation) error {
	return c.writeAll(ctx, "add", rel.ID, c.router.NoteAdd, func(ctx context.Context, cl *Client) error {
		return cl.AddRelation(ctx, rel)
	})
}

// Delete tombstones a relation on every replica of its owning set.
func (c *Coordinator) Delete(ctx context.Context, id string) error {
	return c.writeAll(ctx, "delete", id, c.router.NoteDelete, func(ctx context.Context, cl *Client) error {
		return cl.DeleteRelation(ctx, id)
	})
}

// Update replaces a relation's contents on every replica of its owning
// set.
func (c *Coordinator) Update(ctx context.Context, rel Relation) error {
	return c.writeAll(ctx, "update", rel.ID, c.router.NoteUpdate, func(ctx context.Context, cl *Client) error {
		return cl.UpdateRelation(ctx, rel)
	})
}

// CoordinatorStats is the coordinator's health snapshot: the Router's
// federated view (per-set latency, cache, degradation) plus each replica
// set's failover counters.
type CoordinatorStats struct {
	Sets   int                `json:"sets"`
	Router cluster.Stats      `json:"router"`
	Groups []GroupStats       `json:"groups"`
	Ring   map[string]float64 `json:"ring_share,omitempty"`
}

// Stats snapshots router and replica-set health.
func (c *Coordinator) Stats() CoordinatorStats {
	s := CoordinatorStats{Sets: len(c.groups), Router: c.router.Stats()}
	for _, g := range c.groups {
		s.Groups = append(s.Groups, g.Stats())
	}
	return s
}
