package netcluster

import (
	"semdisco/internal/core"
	"semdisco/internal/obs"
)

// Wire paths of the internal coordinator↔shard protocol. They live under
// /internal/ because they accept pre-encoded vectors: the public API's
// contract (queries are strings, embeddings never leave the box they were
// computed on) does not hold for them, and a deployment fronting shards
// with a reverse proxy should not route them from outside.
const (
	// PathEncodedSearch is the single-query encoded-search endpoint.
	PathEncodedSearch = "/internal/v1/search/encoded"
	// PathEncodedSearchBatch is the blocked multi-query variant.
	PathEncodedSearchBatch = "/internal/v1/search/encoded/batch"
)

// Error codes of the unified error body (ErrorBody / httpapi's
// ErrorResponse). The coordinator classifies remote failures on them
// rather than parsing message strings.
const (
	CodeBadRequest       = "bad_request"
	CodeNotFound         = "not_found"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeNotImplemented   = "not_implemented"
	CodeTooManyRequests  = "too_many_requests"
	CodeInternal         = "internal"
	CodeUnavailable      = "unavailable"
)

// ErrorBody is the unified JSON error shape every non-2xx response
// carries: {"error": <human detail>, "code": <machine class>}. It mirrors
// httpapi.ErrorResponse — declared here too so the shard handler and the
// client need no httpapi import (which would be an import cycle).
type ErrorBody struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// WireMatch is one ranked result on the wire. Scores travel as float32
// JSON numbers; Go's shortest-round-trip float formatting makes the
// encode/decode exact, which the bit-identical-merge guarantee relies on.
type WireMatch struct {
	RelationID string  `json:"relation_id"`
	Score      float32 `json:"score"`
}

// EncodedSearchRequest is the body of PathEncodedSearch: a pre-encoded
// query vector (the coordinator embedded the query string once) and k.
type EncodedSearchRequest struct {
	Vector []float32 `json:"vector"`
	K      int       `json:"k"`
}

// EncodedSearchResponse is the body returned by PathEncodedSearch.
type EncodedSearchResponse struct {
	Matches []WireMatch `json:"matches"`
	// Cost is the work this shard performed for the query; the coordinator
	// folds it into the federated query's aggregate cost report.
	Cost obs.CostReport `json:"cost"`
	// Spans carries the shard-side span records of this search, all under
	// the propagated trace ID. The coordinator grafts them into its own
	// trace so a stored coordinator trace nests the remote work of every
	// shard attempt.
	Spans []obs.SpanRecord `json:"spans,omitempty"`
}

// EncodedBatchRequest is the body of PathEncodedSearchBatch: one blocked
// request scoring every vector of the block per corpus pass.
type EncodedBatchRequest struct {
	Vectors [][]float32 `json:"vectors"`
	Ks      []int       `json:"ks"`
}

// EncodedBatchResponse is the body returned by PathEncodedSearchBatch,
// positionally aligned with the request.
type EncodedBatchResponse struct {
	Results [][]WireMatch    `json:"results"`
	Costs   []obs.CostReport `json:"costs"`
	Spans   []obs.SpanRecord `json:"spans,omitempty"`
}

// Relation is a relation on the write path (coordinator → every replica
// of the owning set). It mirrors httpapi.RelationJSON.
type Relation struct {
	ID           string     `json:"id"`
	Source       string     `json:"source"`
	PageTitle    string     `json:"page_title,omitempty"`
	SectionTitle string     `json:"section_title,omitempty"`
	Caption      string     `json:"caption,omitempty"`
	Columns      []string   `json:"columns"`
	Rows         [][]string `json:"rows"`
}

// toWire converts matches to their wire form.
func toWire(ms []core.Match) []WireMatch {
	out := make([]WireMatch, len(ms))
	for i, m := range ms {
		out[i] = WireMatch{RelationID: m.RelationID, Score: m.Score}
	}
	return out
}

// fromWire converts wire matches back to core matches.
func fromWire(ms []WireMatch) []core.Match {
	out := make([]core.Match, len(ms))
	for i, m := range ms {
		out[i] = core.Match{RelationID: m.RelationID, Score: m.Score}
	}
	return out
}
