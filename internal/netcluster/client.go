package netcluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"semdisco/internal/core"
	"semdisco/internal/obs"
)

// RemoteError is a shard's non-2xx answer, classified by the unified
// error body's machine code. The replica-failover logic keys off Status
// and Code rather than message text.
type RemoteError struct {
	URL    string
	Status int
	Code   string
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("netcluster: %s answered %d (%s): %s", e.URL, e.Status, e.Code, e.Msg)
}

// Retryable reports whether another replica might answer where this one
// failed: 5xx and 429 are availability, 4xx is the request's own fault
// and will fail identically everywhere.
func (e *RemoteError) Retryable() bool {
	return e.Status >= 500 || e.Status == http.StatusTooManyRequests
}

// MalformedError is a response the client could not decode — a shard
// returning garbage (truncated body, non-JSON proxy page). It is treated
// as retryable: the replica is broken, not the request.
type MalformedError struct {
	URL string
	Err error
}

func (e *MalformedError) Error() string {
	return fmt.Sprintf("netcluster: malformed response from %s: %v", e.URL, e.Err)
}

func (e *MalformedError) Unwrap() error { return e.Err }

// Client speaks the wire protocol to one shard server. It is cheap (one
// *http.Client) and safe for concurrent use.
type Client struct {
	base string // "http://127.0.0.1:8081", no trailing slash
	hc   *http.Client
}

// NewClient builds a client for a shard base URL over a transport (nil
// means http.DefaultTransport; the coordinator passes its fault-injectable
// transport). Deadlines come from the per-call context, not the client.
func NewClient(base string, rt http.RoundTripper) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"),
		hc:   &http.Client{Transport: rt},
	}
}

// URL reports the shard's base URL.
func (c *Client) URL() string { return c.base }

// call issues one request and decodes the JSON answer into out (which may
// be nil to discard the body), propagating the context's W3C trace
// context as a traceparent header and classifying every failure mode:
// transport errors attribute to the context's error when it caused them,
// non-2xx becomes *RemoteError carrying the unified error body's code,
// and an undecodable 2xx body becomes *MalformedError.
func (c *Client) call(ctx context.Context, method, path string, in, out interface{}) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("netcluster: encoding request: %w", err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("netcluster: building request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if sc, ok := obs.SpanContextFrom(ctx); ok && sc.Valid() {
		req.Header.Set("traceparent", sc.Traceparent())
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// Attribute the failure to the deadline/cancellation that caused
			// it, so errors.Is(err, context.DeadlineExceeded) holds upstream.
			return fmt.Errorf("netcluster: %s %s: %w", method, c.base+path, ctx.Err())
		}
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		re := &RemoteError{URL: c.base + path, Status: resp.StatusCode}
		var eb ErrorBody
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb); err == nil {
			re.Code, re.Msg = eb.Code, eb.Error
		} else {
			re.Msg = "undecodable error body"
		}
		return re
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16)) // drain for keep-alive reuse
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return &MalformedError{URL: c.base + path, Err: err}
	}
	return nil
}

// SearchEncoded runs one pre-encoded query on the shard.
func (c *Client) SearchEncoded(ctx context.Context, q []float32, k int) ([]core.Match, obs.CostReport, []obs.SpanRecord, error) {
	var resp EncodedSearchResponse
	if err := c.call(ctx, http.MethodPost, PathEncodedSearch, EncodedSearchRequest{Vector: q, K: k}, &resp); err != nil {
		return nil, obs.CostReport{}, nil, err
	}
	return fromWire(resp.Matches), resp.Cost, resp.Spans, nil
}

// SearchEncodedBatch runs a blocked multi-query request on the shard.
func (c *Client) SearchEncodedBatch(ctx context.Context, qs [][]float32, ks []int) ([][]core.Match, []obs.CostReport, []obs.SpanRecord, error) {
	var resp EncodedBatchResponse
	if err := c.call(ctx, http.MethodPost, PathEncodedSearchBatch, EncodedBatchRequest{Vectors: qs, Ks: ks}, &resp); err != nil {
		return nil, nil, nil, err
	}
	if len(resp.Results) != len(qs) || len(resp.Costs) != len(qs) {
		return nil, nil, nil, &MalformedError{URL: c.base + PathEncodedSearchBatch,
			Err: fmt.Errorf("sent %d queries, got %d results / %d costs", len(qs), len(resp.Results), len(resp.Costs))}
	}
	out := make([][]core.Match, len(resp.Results))
	for i := range resp.Results {
		out[i] = fromWire(resp.Results[i])
	}
	return out, resp.Costs, resp.Spans, nil
}

// AddRelation ingests one relation on the shard via the public API.
func (c *Client) AddRelation(ctx context.Context, rel Relation) error {
	return c.call(ctx, http.MethodPost, "/v1/relations", rel, nil)
}

// DeleteRelation tombstones one relation on the shard.
func (c *Client) DeleteRelation(ctx context.Context, id string) error {
	return c.call(ctx, http.MethodDelete, "/v1/relations/"+id, nil, nil)
}

// UpdateRelation replaces one relation's contents on the shard.
func (c *Client) UpdateRelation(ctx context.Context, rel Relation) error {
	return c.call(ctx, http.MethodPut, "/v1/relations/"+rel.ID, rel, nil)
}

// Healthz reports whether the shard answers its liveness probe.
func (c *Client) Healthz(ctx context.Context) error {
	return c.call(ctx, http.MethodGet, "/healthz", nil, nil)
}
