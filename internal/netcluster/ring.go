// Package netcluster lifts the in-process scatter-gather Router over the
// wire: shard servers host one partition each behind the HTTP API (plus an
// internal encoded-search endpoint, so the coordinator embeds a query once
// and fans raw vectors out), and a coordinator owns a consistent-hash ring
// of R-way replica sets, routing reads and writes to sets, hedging slow
// attempts across replicas, retrying with exponential backoff and jitter,
// and degrading partially when a whole replica set is unreachable.
//
// The coordinator reuses the cluster Router wholesale — each replica set
// is presented to it as one logical Shard — so the networked deployment
// inherits the Router's bit-identical ExS merge, result cache, request
// coalescing, cost aggregation and span-tree tracing unchanged. What this
// package adds is everything the wire makes necessary: an HTTP transport
// (with pluggable fault injection for tests and benches), remote-error
// classification, replica failover, and traceparent propagation so a
// coordinator trace and the shard-side traces share one trace ID.
package netcluster

import (
	"fmt"
	"sort"
)

// DefaultVnodes is the virtual-node count per ring member: enough points
// that a member's key range is spread over many small arcs (smoothing
// placement skew to a few percent), small enough that the ring stays a
// sub-kilobyte sorted array.
const DefaultVnodes = 64

// Ring is a consistent-hash ring over n replica sets. Members are
// identified by their index; each contributes Vnodes points placed by
// hashing "set-<i>/<v>". A key's owner is the first point clockwise from
// the key's hash. The construction is deterministic, so a shard server
// and the coordinator — built independently from the same (sets, vnodes)
// pair — agree on every relation's placement by construction, with no
// placement state to distribute.
type Ring struct {
	points []ringPoint
	sets   int
	vnodes int
}

type ringPoint struct {
	hash uint64
	set  int
}

// NewRing places sets replica sets on the ring with vnodes virtual nodes
// each (0 means DefaultVnodes).
func NewRing(sets, vnodes int) (*Ring, error) {
	if sets < 1 {
		return nil, fmt.Errorf("netcluster: ring needs at least one set, got %d", sets)
	}
	if vnodes == 0 {
		vnodes = DefaultVnodes
	}
	if vnodes < 1 {
		return nil, fmt.Errorf("netcluster: invalid vnode count %d", vnodes)
	}
	r := &Ring{points: make([]ringPoint, 0, sets*vnodes), sets: sets, vnodes: vnodes}
	for s := 0; s < sets; s++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: hash64(fmt.Sprintf("set-%d/%d", s, v)),
				set:  s,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Equal hashes (astronomically unlikely, but the ring must still be
		// a total order) break ties by set index.
		return r.points[i].set < r.points[j].set
	})
	return r, nil
}

// Sets reports the replica-set count.
func (r *Ring) Sets() int { return r.sets }

// Owner returns the replica set owning a key: the first ring point at or
// clockwise after the key's hash.
func (r *Ring) Owner(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the lowest point owns the top arc
	}
	return r.points[i].set
}

// hash64 is FNV-1a over the key bytes with a 64-bit avalanche finalizer —
// stable across processes and Go versions, unlike the runtime map hash.
// The finalizer matters: raw FNV-1a disperses a trailing-byte difference
// only ~40 bits up, so sequential IDs ("rel-01998", "rel-01999") cluster
// in the high bits the ring's point ordering compares on, and whole runs
// of keys land on one arc. Mixing restores uniform placement.
func hash64(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
