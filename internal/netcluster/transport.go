package netcluster

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Fault is one injected failure mode applied to requests toward a target
// host. Zero-valued fields are inert; multiple set fields compose in the
// order latency → hang → drop → status → truncate (a Fault with Latency
// and Status first delays, then answers 5xx). Faults are how the tests and
// `semdisco-bench -netcluster` exercise the coordinator's failure paths
// without real packet loss: a straggler is Latency, a crashed replica is
// Drop, an overloaded one is Status 503, a wedged one is Hang, and a
// corrupted response is Truncate.
type Fault struct {
	// Latency is added before the request is forwarded.
	Latency time.Duration
	// Hang blocks until the request's context is done, then reports its
	// error — a replica that accepted the connection and went silent.
	Hang bool
	// Drop fails the round trip with a connection error, never reaching
	// the target.
	Drop bool
	// Status short-circuits with this status code (use 5xx) and a unified
	// error body, never reaching the target.
	Status int
	// Truncate forwards the request but replaces the response body with a
	// malformed JSON fragment — exercising the client's decode guard.
	Truncate bool
	// Remaining bounds how many requests the fault applies to; negative
	// means every request until the rule is cleared.
	Remaining int
}

// FaultInjector is an http.RoundTripper that applies per-host fault rules
// before (or instead of) delegating to a base transport. It is the
// pluggable failure layer of the networked cluster: the coordinator's
// HTTP client is built over one, tests script outages through it, and the
// bench uses it to induce stragglers. Safe for concurrent use.
type FaultInjector struct {
	base http.RoundTripper

	mu    sync.Mutex
	rules map[string]*Fault
	// injected counts applied faults by kind, for bench reporting.
	injected map[string]int64
}

// NewFaultInjector wraps base (nil means http.DefaultTransport).
func NewFaultInjector(base http.RoundTripper) *FaultInjector {
	if base == nil {
		base = http.DefaultTransport
	}
	return &FaultInjector{
		base:     base,
		rules:    make(map[string]*Fault),
		injected: make(map[string]int64),
	}
}

// Set installs a fault rule for a target host ("127.0.0.1:8081"; a full
// URL is accepted and reduced to its host). It replaces any prior rule.
func (f *FaultInjector) Set(target string, fault Fault) {
	f.mu.Lock()
	r := fault
	f.rules[hostOf(target)] = &r
	f.mu.Unlock()
}

// Clear removes the rule for a target, if any.
func (f *FaultInjector) Clear(target string) {
	f.mu.Lock()
	delete(f.rules, hostOf(target))
	f.mu.Unlock()
}

// Injected reports how many faults of each kind were applied.
func (f *FaultInjector) Injected() map[string]int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int64, len(f.injected))
	for k, v := range f.injected {
		out[k] = v
	}
	return out
}

// take returns the active fault for a host, consuming one application of
// a count-limited rule.
func (f *FaultInjector) take(host string) (Fault, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	r, ok := f.rules[host]
	if !ok || r.Remaining == 0 {
		return Fault{}, false
	}
	if r.Remaining > 0 {
		r.Remaining--
	}
	return *r, true
}

func (f *FaultInjector) note(kind string) {
	f.mu.Lock()
	f.injected[kind]++
	f.mu.Unlock()
}

// RoundTrip implements http.RoundTripper.
func (f *FaultInjector) RoundTrip(req *http.Request) (*http.Response, error) {
	fault, ok := f.take(req.URL.Host)
	if !ok {
		return f.base.RoundTrip(req)
	}
	if fault.Latency > 0 {
		f.note("latency")
		t := time.NewTimer(fault.Latency)
		select {
		case <-t.C:
		case <-req.Context().Done():
			t.Stop()
			return nil, req.Context().Err()
		}
	}
	if fault.Hang {
		f.note("hang")
		<-req.Context().Done()
		return nil, req.Context().Err()
	}
	if fault.Drop {
		f.note("drop")
		return nil, fmt.Errorf("netcluster: injected connection failure to %s", req.URL.Host)
	}
	if fault.Status != 0 {
		f.note("status")
		body := fmt.Sprintf(`{"error":"injected %d from %s","code":%q}`, fault.Status, req.URL.Host, CodeUnavailable)
		return &http.Response{
			StatusCode: fault.Status,
			Status:     http.StatusText(fault.Status),
			Header:     http.Header{"Content-Type": []string{"application/json"}},
			Body:       io.NopCloser(strings.NewReader(body)),
			Request:    req,
		}, nil
	}
	resp, err := f.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if fault.Truncate {
		f.note("truncate")
		resp.Body.Close()
		resp.Body = io.NopCloser(bytes.NewReader([]byte(`{"matches":[{"relation_`)))
		resp.ContentLength = -1
		resp.Header.Del("Content-Length")
	}
	return resp, nil
}

// hostOf reduces a target to its host part: a bare host passes through, a
// URL loses its scheme and path.
func hostOf(target string) string {
	s := target
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.IndexAny(s, "/?#"); i >= 0 {
		s = s[:i]
	}
	return s
}
