package netcluster

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"semdisco/internal/core"
	"semdisco/internal/obs"
)

// fakeBackend is a deterministic ShardBackend: it answers every encoded
// query with a fixed descending ranking, so wire round-trips and failover
// races can be checked for exact equality without building an index.
type fakeBackend struct {
	matches []core.Match
	calls   atomic.Int64
}

func (f *fakeBackend) SearchEncoded(ctx context.Context, q []float32, k int) ([]core.Match, error) {
	f.calls.Add(1)
	if k > len(f.matches) {
		k = len(f.matches)
	}
	out := make([]core.Match, k)
	copy(out, f.matches[:k])
	return out, nil
}

func (f *fakeBackend) SearchEncodedBatch(ctx context.Context, qs [][]float32, ks []int, costs []*obs.Cost) ([][]core.Match, error) {
	out := make([][]core.Match, len(qs))
	for i := range qs {
		ms, err := f.SearchEncoded(ctx, qs[i], ks[i])
		if err != nil {
			return nil, err
		}
		out[i] = ms
	}
	return out, nil
}

// rankedMatches builds n matches with strictly descending, awkward float32
// scores — fractions without short decimal forms, so JSON round-trip
// equality is a real check, not a formatting accident.
func rankedMatches(set, n int) []core.Match {
	out := make([]core.Match, n)
	for i := range out {
		out[i] = core.Match{
			RelationID: fmt.Sprintf("rel-%d-%02d", set, i),
			Score:      float32(1 / (1.1 + 0.37*float64(set*n+i))),
		}
	}
	return out
}

var testVec = []float32{0.25, -0.5, 1}

type groupFixture struct {
	group   *Group
	inj     *FaultInjector
	urls    []string
	backend *fakeBackend
}

// newGroupFixture stands up one replica set: `replicas` loopback servers
// all serving the same fake backend, a shared fault-injecting transport,
// and a Group over them. Fresh per test, so the rotating primary always
// starts at replica 0.
func newGroupFixture(t *testing.T, replicas int, opts GroupOptions) *groupFixture {
	t.Helper()
	backend := &fakeBackend{matches: rankedMatches(0, 8)}
	h := NewShardHandler(backend, nil, 0)
	inj := NewFaultInjector(nil)
	urls := make([]string, replicas)
	for i := range urls {
		srv := httptest.NewServer(h)
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	g, err := NewGroup(0, urls, func(u string) *Client { return NewClient(u, inj) }, opts)
	if err != nil {
		t.Fatal(err)
	}
	return &groupFixture{group: g, inj: inj, urls: urls, backend: backend}
}

func TestGroupHealthySearch(t *testing.T) {
	fx := newGroupFixture(t, 2, GroupOptions{})
	ms, err := fx.group.SearchEncoded(context.Background(), testVec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := fx.backend.matches[:4]; !reflect.DeepEqual(ms, want) {
		t.Fatalf("matches = %+v, want %+v", ms, want)
	}
}

// TestGroupHungReplicaFailsOver is the wedged-server case: the replica
// accepted the connection and went silent, so only the per-attempt timeout
// can unblock the search, and the next replica must answer.
func TestGroupHungReplicaFailsOver(t *testing.T) {
	fx := newGroupFixture(t, 2, GroupOptions{AttemptTimeout: 75 * time.Millisecond})
	fx.inj.Set(fx.urls[0], Fault{Hang: true, Remaining: -1})
	ms, err := fx.group.SearchEncoded(context.Background(), testVec, 3)
	if err != nil {
		t.Fatalf("failover search: %v", err)
	}
	if !reflect.DeepEqual(ms, fx.backend.matches[:3]) {
		t.Fatalf("failover answer wrong: %+v", ms)
	}
	st := fx.group.Stats()
	if st.Replicas[0].Errors == 0 {
		t.Error("hung replica recorded no error")
	}
	if st.Retries == 0 {
		t.Error("failover recorded no retry")
	}
}

// TestGroupMalformedResponseFailsOver: a replica answering 200 with a
// truncated body is broken, not the request — the search must fail over.
func TestGroupMalformedResponseFailsOver(t *testing.T) {
	fx := newGroupFixture(t, 2, GroupOptions{})
	fx.inj.Set(fx.urls[0], Fault{Truncate: true, Remaining: -1})
	ms, err := fx.group.SearchEncoded(context.Background(), testVec, 3)
	if err != nil {
		t.Fatalf("failover search: %v", err)
	}
	if !reflect.DeepEqual(ms, fx.backend.matches[:3]) {
		t.Fatalf("failover answer wrong: %+v", ms)
	}
	if st := fx.group.Stats(); st.Replicas[0].Errors == 0 {
		t.Error("malformed replica recorded no error")
	}
}

func TestGroupWholeSetDown(t *testing.T) {
	fx := newGroupFixture(t, 2, GroupOptions{})
	for _, u := range fx.urls {
		fx.inj.Set(u, Fault{Drop: true, Remaining: -1})
	}
	_, err := fx.group.SearchEncoded(context.Background(), testVec, 3)
	if err == nil {
		t.Fatal("want error with every replica down")
	}
	if !strings.Contains(err.Error(), "replica set 0 down") {
		t.Fatalf("error %q does not name the downed set", err)
	}
	if st := fx.group.Stats(); st.SetDown != 1 {
		t.Errorf("SetDown = %d, want 1", st.SetDown)
	}
	// Recovery: clearing the faults restores the set without rebuilding it.
	for _, u := range fx.urls {
		fx.inj.Clear(u)
	}
	if _, err := fx.group.SearchEncoded(context.Background(), testVec, 3); err != nil {
		t.Fatalf("after recovery: %v", err)
	}
}

// TestGroupNonRetryableFailsFast: a 4xx means the request itself is bad;
// trying the next replica would just answer the same, so the race must
// return immediately without a retry.
func TestGroupNonRetryableFailsFast(t *testing.T) {
	fx := newGroupFixture(t, 2, GroupOptions{})
	fx.inj.Set(fx.urls[0], Fault{Status: 400, Remaining: -1})
	_, err := fx.group.SearchEncoded(context.Background(), testVec, 3)
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != 400 {
		t.Fatalf("want a 400 *RemoteError, got %v", err)
	}
	st := fx.group.Stats()
	if st.Retries != 0 {
		t.Errorf("Retries = %d, want 0 (fail fast)", st.Retries)
	}
	if st.Replicas[1].Attempts != 0 {
		t.Errorf("replica 1 saw %d attempts, want 0", st.Replicas[1].Attempts)
	}
}

// TestGroupHedgesPastStraggler: once the latency window is warm, an
// attempt running past the set's p95 races a second replica; a healthy
// sibling must win against a straggler without the query erroring.
func TestGroupHedgesPastStraggler(t *testing.T) {
	fx := newGroupFixture(t, 2, GroupOptions{
		AttemptTimeout: 2 * time.Second,
		Hedge:          true,
	})
	ctx := context.Background()
	for i := 0; i < 20; i++ { // warm the p95 window past HedgeAfter
		if _, err := fx.group.SearchEncoded(ctx, testVec, 3); err != nil {
			t.Fatalf("warm-up %d: %v", i, err)
		}
	}
	fx.inj.Set(fx.urls[0], Fault{Latency: 150 * time.Millisecond, Remaining: -1})
	for i := 0; i < 20; i++ {
		ms, err := fx.group.SearchEncoded(ctx, testVec, 3)
		if err != nil {
			t.Fatalf("straggler query %d: %v", i, err)
		}
		if !reflect.DeepEqual(ms, fx.backend.matches[:3]) {
			t.Fatalf("straggler query %d answer wrong: %+v", i, ms)
		}
	}
	st := fx.group.Stats()
	if st.Hedges == 0 {
		t.Error("no hedges launched against a 150ms straggler")
	}
	if st.HedgeWins == 0 {
		t.Error("no hedge won against a 150ms straggler")
	}
}

func TestGroupBatchFailover(t *testing.T) {
	fx := newGroupFixture(t, 2, GroupOptions{})
	fx.inj.Set(fx.urls[0], Fault{Drop: true, Remaining: -1})
	qs := [][]float32{testVec, testVec, testVec}
	ks := []int{1, 3, 5}
	costs := []*obs.Cost{{}, {}, {}}
	out, err := fx.group.SearchEncodedBatch(context.Background(), qs, ks, costs)
	if err != nil {
		t.Fatalf("batch failover: %v", err)
	}
	if len(out) != len(qs) {
		t.Fatalf("%d results for %d queries", len(out), len(qs))
	}
	for i, k := range ks {
		if !reflect.DeepEqual(out[i], fx.backend.matches[:k]) {
			t.Fatalf("batch item %d wrong: %+v", i, out[i])
		}
	}
}

// TestGroupTraceGrafting: the winning replica's shard-side span tree must
// come back over the wire and land in the trace the context carries, under
// the same trace ID the coordinator propagated.
func TestGroupTraceGrafting(t *testing.T) {
	fx := newGroupFixture(t, 2, GroupOptions{})
	tr := obs.NewTrace()
	root := tr.StartRoot("test_root")
	ctx := obs.ContextWithTrace(context.Background(), tr)
	ctx = obs.ContextWithSpan(ctx, obs.SpanContext{TraceID: tr.ID(), SpanID: root.ID(), Flags: tr.Flags()})
	if _, err := fx.group.SearchEncoded(ctx, testVec, 3); err != nil {
		t.Fatal(err)
	}
	root.End()
	var found bool
	for _, sp := range tr.Spans() {
		if sp.Name == "shard_encoded_search" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no shard_encoded_search span grafted; spans: %+v", tr.Spans())
	}
}

// TestGroupConcurrentSearches drives the failover state machine from many
// goroutines with a straggling replica — the -race run of this test is the
// point, not the assertions.
func TestGroupConcurrentSearches(t *testing.T) {
	fx := newGroupFixture(t, 3, GroupOptions{
		AttemptTimeout: 2 * time.Second,
		Hedge:          true,
	})
	fx.inj.Set(fx.urls[1], Fault{Latency: 10 * time.Millisecond, Remaining: -1})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, err := fx.group.SearchEncoded(context.Background(), testVec, 3); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent search: %v", err)
	}
}
