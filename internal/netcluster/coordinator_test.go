package netcluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"semdisco/internal/cluster"
)

// writeLog records the mutations one replica server received.
type writeLog struct {
	mu  sync.Mutex
	ops []string
}

func (l *writeLog) add(op string) {
	l.mu.Lock()
	l.ops = append(l.ops, op)
	l.mu.Unlock()
}

func (l *writeLog) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ops)
}

// globalOrder is the merge tie-break for rankedMatches IDs ("rel-<set>-<i>"
// maps to set*100+i), mirroring the insertion order a real federation
// would carry.
func globalOrder(id string) int {
	var set, i int
	if _, err := fmt.Sscanf(id, "rel-%d-%d", &set, &i); err == nil {
		return set*100 + i
	}
	return 1 << 30
}

type coordFixture struct {
	coord    *Coordinator
	inj      *FaultInjector
	urls     [][]string
	backends []*fakeBackend
	logs     [][]*writeLog
}

// newCoordFixture stands up sets×replicas replica servers — each serving
// its set's fake backend over the wire protocol plus logging write
// endpoints — behind one fault-injecting transport and a Coordinator.
func newCoordFixture(t *testing.T, sets, replicas int, opts CoordinatorOptions) *coordFixture {
	t.Helper()
	fx := &coordFixture{inj: NewFaultInjector(nil)}
	for s := 0; s < sets; s++ {
		backend := &fakeBackend{matches: rankedMatches(s, 10)}
		fx.backends = append(fx.backends, backend)
		h := NewShardHandler(backend, nil, 0)
		var urls []string
		var logs []*writeLog
		for r := 0; r < replicas; r++ {
			log := &writeLog{}
			mux := http.NewServeMux()
			mux.Handle(PathEncodedSearch, h)
			mux.Handle(PathEncodedSearchBatch, h)
			mux.HandleFunc("POST /v1/relations", func(w http.ResponseWriter, r *http.Request) {
				log.add("add")
				w.WriteHeader(http.StatusCreated)
			})
			mux.HandleFunc("DELETE /v1/relations/{id}", func(w http.ResponseWriter, r *http.Request) {
				log.add("delete " + r.PathValue("id"))
			})
			mux.HandleFunc("PUT /v1/relations/{id}", func(w http.ResponseWriter, r *http.Request) {
				log.add("update " + r.PathValue("id"))
			})
			srv := httptest.NewServer(mux)
			t.Cleanup(srv.Close)
			urls = append(urls, srv.URL)
			logs = append(logs, log)
		}
		fx.urls = append(fx.urls, urls)
		fx.logs = append(fx.logs, logs)
	}
	if opts.Encode == nil {
		opts.Encode = func(string) []float32 { return testVec }
	}
	if opts.Order == nil {
		opts.Order = globalOrder
	}
	if opts.Method == "" {
		opts.Method = "ExS"
	}
	opts.Transport = fx.inj
	coord, err := NewCoordinator(fx.urls, opts)
	if err != nil {
		t.Fatal(err)
	}
	fx.coord = coord
	return fx
}

func TestCoordinatorValidation(t *testing.T) {
	enc := func(string) []float32 { return testVec }
	ord := func(string) int { return 0 }
	if _, err := NewCoordinator(nil, CoordinatorOptions{Encode: enc, Order: ord}); err == nil {
		t.Error("want error for zero replica sets")
	}
	if _, err := NewCoordinator([][]string{{"http://x"}}, CoordinatorOptions{Order: ord}); err == nil {
		t.Error("want error for missing Encode")
	}
	if _, err := NewCoordinator([][]string{{"http://x"}}, CoordinatorOptions{Encode: enc}); err == nil {
		t.Error("want error for missing Order")
	}
	if _, err := NewCoordinator([][]string{{}}, CoordinatorOptions{Encode: enc, Order: ord}); err == nil {
		t.Error("want error for an empty replica set")
	}
}

// TestCoordinatorMatchesRouter is the wire layer's correctness invariant:
// the networked merge over replica servers must be bit-identical — IDs,
// order, and float32 scores — to an in-process Router over the same
// backends.
func TestCoordinatorMatchesRouter(t *testing.T) {
	fx := newCoordFixture(t, 3, 2, CoordinatorOptions{})
	shards := make([]cluster.Shard, len(fx.backends))
	counts := make([]int, len(fx.backends))
	for i, b := range fx.backends {
		shards[i] = b
		counts[i] = len(b.matches)
	}
	router, err := cluster.NewRouter(shards, counts, cluster.Options{
		Method: "ExS",
		Encode: func(string) []float32 { return testVec },
		Order:  globalOrder,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, k := range []int{1, 3, 5, 10, 30} {
		want, err := router.Search(ctx, "q", k)
		if err != nil {
			t.Fatalf("k=%d router: %v", k, err)
		}
		got, err := fx.coord.Search(ctx, "q", k)
		if err != nil {
			t.Fatalf("k=%d coordinator: %v", k, err)
		}
		if got.Degraded {
			t.Fatalf("k=%d: degraded with no faults: %v", k, got.ShardErrors)
		}
		if !reflect.DeepEqual(got.Matches, want.Matches) {
			t.Fatalf("k=%d:\nwire   %+v\nrouter %+v", k, got.Matches, want.Matches)
		}
	}
}

// TestCoordinatorBatchMatchesSequential: the batched fan-out must answer
// each item exactly as the sequential path would.
func TestCoordinatorBatchMatchesSequential(t *testing.T) {
	fx := newCoordFixture(t, 2, 2, CoordinatorOptions{})
	ctx := context.Background()
	items := []cluster.BatchQuery{{Query: "a", K: 3}, {Query: "b", K: 7}, {Query: "c", K: 15}}
	batch, err := fx.coord.SearchBatch(ctx, items)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(items) {
		t.Fatalf("%d results for %d items", len(batch), len(items))
	}
	for i, it := range items {
		want, err := fx.coord.Search(ctx, it.Query, it.K)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch[i].Matches, want.Matches) {
			t.Fatalf("item %d:\nbatch      %+v\nsequential %+v", i, batch[i].Matches, want.Matches)
		}
	}
}

// TestCoordinatorDegradedWhenSetDown: one whole replica set failing
// degrades the answer to the surviving partitions; every set failing is an
// error.
func TestCoordinatorDegradedWhenSetDown(t *testing.T) {
	fx := newCoordFixture(t, 2, 1, CoordinatorOptions{})
	ctx := context.Background()
	fx.inj.Set(fx.urls[1][0], Fault{Drop: true, Remaining: -1})
	res, err := fx.coord.Search(ctx, "q", 10)
	if err != nil {
		t.Fatalf("partial degradation must not error: %v", err)
	}
	if !res.Degraded {
		t.Fatal("want Degraded with set 1 down")
	}
	if len(res.ShardErrors) == 0 {
		t.Error("degraded result carries no shard errors")
	}
	if len(res.Matches) == 0 {
		t.Fatal("degraded result is empty")
	}
	for _, m := range res.Matches {
		if globalOrder(m.RelationID) >= 100 {
			t.Fatalf("match %s came from the downed set", m.RelationID)
		}
	}
	fx.inj.Set(fx.urls[0][0], Fault{Drop: true, Remaining: -1})
	if _, err := fx.coord.Search(ctx, "q2", 10); err == nil {
		t.Fatal("want error with every set down")
	}
}

func TestCoordinatorWriteFanOut(t *testing.T) {
	fx := newCoordFixture(t, 2, 2, CoordinatorOptions{})
	ctx := context.Background()
	rel := Relation{ID: "new-1", Source: "s", Columns: []string{"a"}, Rows: [][]string{{"x"}}}
	if err := fx.coord.Add(ctx, rel); err != nil {
		t.Fatalf("add: %v", err)
	}
	owner := fx.coord.Ring().Owner(rel.ID)
	for s := range fx.logs {
		for r, log := range fx.logs[s] {
			want := 0
			if s == owner {
				want = 1
			}
			if got := log.count(); got != want {
				t.Errorf("set %d replica %d saw %d writes, want %d", s, r, got, want)
			}
		}
	}
}

// TestCoordinatorWritePartialFailure: a mutation applied on some replicas
// of the owning set but not others must surface as *WriteError naming the
// replicas needing repair — not vanish, and not look like a clean failure.
func TestCoordinatorWritePartialFailure(t *testing.T) {
	fx := newCoordFixture(t, 1, 2, CoordinatorOptions{})
	ctx := context.Background()
	fx.inj.Set(fx.urls[0][1], Fault{Drop: true, Remaining: -1})
	rel := Relation{ID: "new-2", Source: "s", Columns: []string{"a"}, Rows: [][]string{{"x"}}}
	err := fx.coord.Add(ctx, rel)
	var we *WriteError
	if !errors.As(err, &we) {
		t.Fatalf("want *WriteError, got %v", err)
	}
	if we.Applied != 1 || we.Replicas != 2 {
		t.Errorf("applied %d/%d, want 1/2", we.Applied, we.Replicas)
	}
	if len(we.Failed) != 1 || we.Failed[0] != fx.urls[0][1] {
		t.Errorf("Failed = %v, want [%s]", we.Failed, fx.urls[0][1])
	}
	if fx.logs[0][0].count() != 1 || fx.logs[0][1].count() != 0 {
		t.Errorf("replica write counts %d/%d, want 1/0",
			fx.logs[0][0].count(), fx.logs[0][1].count())
	}

	// Every replica failing is a plain error, not a partial WriteError.
	fx.inj.Set(fx.urls[0][0], Fault{Drop: true, Remaining: -1})
	err = fx.coord.Delete(ctx, "new-2")
	if err == nil {
		t.Fatal("want error with every replica down")
	}
	if errors.As(err, &we) {
		t.Fatalf("total failure must not be a *WriteError: %v", err)
	}

	// Recovery: a cleared transport applies the write everywhere.
	fx.inj.Clear(fx.urls[0][0])
	fx.inj.Clear(fx.urls[0][1])
	if err := fx.coord.Update(ctx, rel); err != nil {
		t.Fatalf("update after recovery: %v", err)
	}
}

// TestCoordinatorWriteFencesCache: any applied write must invalidate the
// owning set's cached results — a cached ranking from before the mutation
// is stale.
func TestCoordinatorWriteFencesCache(t *testing.T) {
	fx := newCoordFixture(t, 1, 1, CoordinatorOptions{CacheSize: 8})
	ctx := context.Background()
	if _, err := fx.coord.Search(ctx, "q", 5); err != nil {
		t.Fatal(err)
	}
	res, err := fx.coord.Search(ctx, "q", 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatal("second identical search missed the cache")
	}
	if got := fx.backends[0].calls.Load(); got != 1 {
		t.Fatalf("backend saw %d calls before the write, want 1", got)
	}
	rel := Relation{ID: "new-3", Source: "s", Columns: []string{"a"}, Rows: [][]string{{"x"}}}
	if err := fx.coord.Add(ctx, rel); err != nil {
		t.Fatal(err)
	}
	res, err = fx.coord.Search(ctx, "q", 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Fatal("search after a write served the stale cached result")
	}
	if got := fx.backends[0].calls.Load(); got != 2 {
		t.Fatalf("backend saw %d calls after the write, want 2", got)
	}
}

// TestCoordinatorHungReplicaTail: end-to-end, a wedged replica must cost
// at most the attempt timeout, never hang the query.
func TestCoordinatorHungReplicaTail(t *testing.T) {
	fx := newCoordFixture(t, 2, 2, CoordinatorOptions{AttemptTimeout: 100 * time.Millisecond})
	fx.inj.Set(fx.urls[0][0], Fault{Hang: true, Remaining: -1})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := fx.coord.Search(ctx, "q", 10)
	if err != nil {
		t.Fatalf("search with a hung replica: %v", err)
	}
	if res.Degraded {
		t.Fatal("one hung replica of two must not degrade the set")
	}
}
