package netcluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"semdisco/internal/core"
	"semdisco/internal/obs"
)

// maxEncodedBatch caps one encoded-batch request, mirroring the public
// batch endpoint's limit.
const maxEncodedBatch = 256

// ShardBackend is what a shard server executes encoded searches against.
// *core.SegmentStore satisfies it (and so does every core method), which
// is the point: the shard side of the wire protocol is the same encoded
// search path the in-process Router calls directly.
type ShardBackend interface {
	SearchEncoded(ctx context.Context, q []float32, k int) ([]core.Match, error)
	SearchEncodedBatch(ctx context.Context, qs [][]float32, ks []int, costs []*obs.Cost) ([][]core.Match, error)
}

// ShardHandler serves the internal encoded-search endpoints over a
// backend. Mount it on a shard server's mux next to the public API:
//
//	mux.Handle("POST "+netcluster.PathEncodedSearch, h)
//	mux.Handle("POST "+netcluster.PathEncodedSearchBatch, h)
//
// Each request runs under the propagated W3C trace context (the
// coordinator sends a traceparent header), records a shard-side span tree,
// returns it in the response for the coordinator to graft into its own
// trace, and — when a trace store is attached — offers it locally too, so
// a shard's /v1/debug/traces shows its slice of every federated query
// under the same trace ID the coordinator logged.
type ShardHandler struct {
	backend ShardBackend
	traces  *obs.TraceStore // nil: no local retention
	// dim guards against a coordinator built with a different embedding
	// configuration; 0 disables the check.
	dim int
}

// NewShardHandler builds a handler over a backend. traces may be nil;
// dim > 0 rejects vectors of any other length with a bad_request error.
func NewShardHandler(backend ShardBackend, traces *obs.TraceStore, dim int) *ShardHandler {
	return &ShardHandler{backend: backend, traces: traces, dim: dim}
}

// ServeHTTP implements http.Handler for both internal paths.
func (h *ShardHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeWireError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			fmt.Sprintf("method %s not allowed; use POST", r.Method))
		return
	}
	switch r.URL.Path {
	case PathEncodedSearch:
		h.serveSearch(w, r)
	case PathEncodedSearchBatch:
		h.serveBatch(w, r)
	default:
		writeWireError(w, http.StatusNotFound, CodeNotFound, "no such internal route "+r.URL.Path)
	}
}

// traceFor continues the propagated trace context when the request (or
// its context, when mounted behind httpapi's middleware) carries one, and
// mints a fresh trace otherwise.
func traceFor(r *http.Request) *obs.Trace {
	if sc, ok := obs.SpanContextFrom(r.Context()); ok && sc.Valid() {
		return obs.NewTraceWith(sc.TraceID, sc.SpanID, sc.Flags)
	}
	if sc, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
		return obs.NewTraceWith(sc.TraceID, sc.SpanID, sc.Flags)
	}
	return obs.NewTrace()
}

func (h *ShardHandler) serveSearch(w http.ResponseWriter, r *http.Request) {
	var req EncodedSearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeWireError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("bad body: %v", err))
		return
	}
	if len(req.Vector) == 0 {
		writeWireError(w, http.StatusBadRequest, CodeBadRequest, "vector is required")
		return
	}
	if h.dim > 0 && len(req.Vector) != h.dim {
		writeWireError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("vector has %d dimensions; this shard indexes %d", len(req.Vector), h.dim))
		return
	}
	if req.K <= 0 {
		writeWireError(w, http.StatusBadRequest, CodeBadRequest, "k must be positive")
		return
	}

	tr := traceFor(r)
	sp := tr.StartRoot("shard_encoded_search").AnnotateInt("k", req.K)
	cost := &obs.Cost{}
	ctx := obs.ContextWithCost(r.Context(), cost)
	ms, err := h.backend.SearchEncoded(ctx, req.Vector, req.K)
	rep := cost.Report()
	sp.AnnotateInt("matches", len(ms)).AnnotateInt("distance_comps", int(rep.DistanceComps))
	if err != nil {
		sp.Annotate("error", err.Error())
	}
	dur := sp.End()
	h.offer(tr, obs.TraceOutcome{Duration: dur, Method: "encoded", K: req.K, Matches: len(ms), Err: errString(err)})
	if err != nil {
		status, code := http.StatusInternalServerError, CodeInternal
		if r.Context().Err() != nil {
			// The coordinator hung up (deadline or hedge winner elsewhere);
			// 503 tells the client this was availability, not a bad query.
			status, code = http.StatusServiceUnavailable, CodeUnavailable
		}
		writeWireError(w, status, code, err.Error())
		return
	}
	writeWireJSON(w, r, tr, EncodedSearchResponse{Matches: toWire(ms), Cost: rep, Spans: tr.Spans()})
}

func (h *ShardHandler) serveBatch(w http.ResponseWriter, r *http.Request) {
	var req EncodedBatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeWireError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("bad body: %v", err))
		return
	}
	if len(req.Vectors) == 0 {
		writeWireError(w, http.StatusBadRequest, CodeBadRequest, "vectors is required")
		return
	}
	if len(req.Vectors) > maxEncodedBatch {
		writeWireError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("batch of %d exceeds the %d-vector limit", len(req.Vectors), maxEncodedBatch))
		return
	}
	if len(req.Ks) != len(req.Vectors) {
		writeWireError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("%d vectors but %d ks", len(req.Vectors), len(req.Ks)))
		return
	}
	for i, v := range req.Vectors {
		if h.dim > 0 && len(v) != h.dim {
			writeWireError(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("vectors[%d] has %d dimensions; this shard indexes %d", i, len(v), h.dim))
			return
		}
		if req.Ks[i] <= 0 {
			writeWireError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("ks[%d] must be positive", i))
			return
		}
	}

	tr := traceFor(r)
	sp := tr.StartRoot("shard_encoded_batch").AnnotateInt("queries", len(req.Vectors))
	costs := make([]*obs.Cost, len(req.Vectors))
	for i := range costs {
		costs[i] = &obs.Cost{}
	}
	ms, err := h.backend.SearchEncodedBatch(r.Context(), req.Vectors, req.Ks, costs)
	if err != nil {
		sp.Annotate("error", err.Error())
	}
	dur := sp.End()
	h.offer(tr, obs.TraceOutcome{Duration: dur, Method: "encoded_batch", K: len(req.Vectors), Err: errString(err)})
	if err != nil {
		status, code := http.StatusInternalServerError, CodeInternal
		if r.Context().Err() != nil {
			status, code = http.StatusServiceUnavailable, CodeUnavailable
		}
		writeWireError(w, status, code, err.Error())
		return
	}
	resp := EncodedBatchResponse{
		Results: make([][]WireMatch, len(ms)),
		Costs:   make([]obs.CostReport, len(costs)),
		Spans:   tr.Spans(),
	}
	for i := range ms {
		resp.Results[i] = toWire(ms[i])
	}
	for i, c := range costs {
		resp.Costs[i] = c.Report()
	}
	writeWireJSON(w, r, tr, resp)
}

// offer retains interesting shard-side traces locally when a store is
// attached.
func (h *ShardHandler) offer(tr *obs.Trace, o obs.TraceOutcome) {
	if h.traces == nil {
		return
	}
	h.traces.Offer(tr, o)
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func writeWireJSON(w http.ResponseWriter, r *http.Request, tr *obs.Trace, v interface{}) {
	if w.Header().Get("X-Trace-Id") == "" {
		w.Header().Set("X-Trace-Id", tr.ID().String())
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(v)
}

func writeWireError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorBody{Error: msg, Code: code})
}
