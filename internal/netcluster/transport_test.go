package netcluster

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"
)

func TestHostOf(t *testing.T) {
	cases := map[string]string{
		"127.0.0.1:8081":                      "127.0.0.1:8081",
		"http://127.0.0.1:8081":               "127.0.0.1:8081",
		"http://127.0.0.1:8081/path?x=1":      "127.0.0.1:8081",
		"https://shard-3.internal:9000/#frag": "shard-3.internal:9000",
	}
	for in, want := range cases {
		if got := hostOf(in); got != want {
			t.Errorf("hostOf(%q) = %q, want %q", in, got, want)
		}
	}
}

// transportFixture is one shard server over a fault-injecting transport.
func transportFixture(t *testing.T) (*Client, *FaultInjector, *fakeBackend, string) {
	t.Helper()
	backend := &fakeBackend{matches: rankedMatches(0, 8)}
	srv := httptest.NewServer(NewShardHandler(backend, nil, 0))
	t.Cleanup(srv.Close)
	inj := NewFaultInjector(nil)
	return NewClient(srv.URL, inj), inj, backend, srv.URL
}

func TestFaultStatusShortCircuits(t *testing.T) {
	cl, inj, backend, url := transportFixture(t)
	inj.Set(url, Fault{Status: 503, Remaining: -1})
	_, _, _, err := cl.SearchEncoded(context.Background(), testVec, 3)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("want *RemoteError, got %v", err)
	}
	if re.Status != 503 || re.Code != CodeUnavailable {
		t.Fatalf("RemoteError = %+v, want status 503 code %q", re, CodeUnavailable)
	}
	if !re.Retryable() {
		t.Error("injected 503 should be retryable")
	}
	if got := backend.calls.Load(); got != 0 {
		t.Errorf("status fault reached the server %d times, want 0", got)
	}
	inj.Clear(url)
	if _, _, _, err := cl.SearchEncoded(context.Background(), testVec, 3); err != nil {
		t.Fatalf("after Clear: %v", err)
	}
	if got := backend.calls.Load(); got != 1 {
		t.Errorf("after Clear the server saw %d calls, want 1", got)
	}
}

func TestFaultStatus4xxNotRetryable(t *testing.T) {
	cl, inj, _, url := transportFixture(t)
	inj.Set(url, Fault{Status: 400, Remaining: -1})
	_, _, _, err := cl.SearchEncoded(context.Background(), testVec, 3)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("want *RemoteError, got %v", err)
	}
	if re.Retryable() {
		t.Error("a 400 must not be retryable: every replica would answer the same")
	}
}

func TestFaultRemainingCountsDown(t *testing.T) {
	cl, inj, _, url := transportFixture(t)
	inj.Set(url, Fault{Drop: true, Remaining: 2})
	for i := 0; i < 2; i++ {
		if _, _, _, err := cl.SearchEncoded(context.Background(), testVec, 3); err == nil {
			t.Fatalf("request %d: want injected connection failure", i)
		}
	}
	if _, _, _, err := cl.SearchEncoded(context.Background(), testVec, 3); err != nil {
		t.Fatalf("after the rule expired: %v", err)
	}
	if got := inj.Injected()["drop"]; got != 2 {
		t.Errorf("Injected()[drop] = %d, want 2", got)
	}
}

func TestFaultTruncateYieldsMalformed(t *testing.T) {
	cl, inj, backend, url := transportFixture(t)
	inj.Set(url, Fault{Truncate: true, Remaining: 1})
	_, _, _, err := cl.SearchEncoded(context.Background(), testVec, 3)
	var me *MalformedError
	if !errors.As(err, &me) {
		t.Fatalf("want *MalformedError, got %v", err)
	}
	// Truncate corrupts the response, not the request: the server ran it.
	if got := backend.calls.Load(); got != 1 {
		t.Errorf("server saw %d calls, want 1", got)
	}
}

func TestFaultLatencyDelays(t *testing.T) {
	cl, inj, _, url := transportFixture(t)
	const delay = 30 * time.Millisecond
	inj.Set(url, Fault{Latency: delay, Remaining: 1})
	start := time.Now()
	if _, _, _, err := cl.SearchEncoded(context.Background(), testVec, 3); err != nil {
		t.Fatalf("delayed search: %v", err)
	}
	if elapsed := time.Since(start); elapsed < delay {
		t.Errorf("request took %v, want at least %v", elapsed, delay)
	}
	if got := inj.Injected()["latency"]; got != 1 {
		t.Errorf("Injected()[latency] = %d, want 1", got)
	}
}

func TestFaultHangHonorsContext(t *testing.T) {
	cl, inj, _, url := transportFixture(t)
	inj.Set(url, Fault{Hang: true, Remaining: -1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, _, _, err := cl.SearchEncoded(ctx, testVec, 3)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded from a hung replica, got %v", err)
	}
}
