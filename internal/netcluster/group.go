package netcluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"semdisco/internal/core"
	"semdisco/internal/obs"
)

// Metric series recorded by replica groups. Per-replica series carry
// set="<set>" and replica="<index>" labels; per-set series carry set.
const (
	// MetricAttempts counts shard attempts (primaries, retries and hedges).
	MetricAttempts = "semdisco_netcluster_attempts_total"
	// MetricReplicaErrors counts failed attempts per replica.
	MetricReplicaErrors = "semdisco_netcluster_replica_errors_total"
	// MetricRetries counts sequential failover retries after a replica
	// failed.
	MetricRetries = "semdisco_netcluster_retries_total"
	// MetricGroupHedges counts hedge attempts launched against a replica
	// running past the set's observed p95.
	MetricGroupHedges = "semdisco_netcluster_hedges_total"
	// MetricGroupHedgeWins counts hedges that beat the replica they raced.
	MetricGroupHedgeWins = "semdisco_netcluster_hedge_wins_total"
	// MetricSetDown counts searches where every replica of a set failed —
	// the degraded answers the coordinator served.
	MetricSetDown = "semdisco_netcluster_set_down_total"
)

// MetricHelp maps the group metrics to their Prometheus HELP texts.
var MetricHelp = map[string]string{
	MetricAttempts:       "Replica attempts: primaries, failover retries and hedges.",
	MetricReplicaErrors:  "Failed replica attempts.",
	MetricRetries:        "Sequential failover retries after a replica failure.",
	MetricGroupHedges:    "Hedge attempts raced across replicas of a set.",
	MetricGroupHedgeWins: "Replica hedges that beat the attempt they raced.",
	MetricSetDown:        "Searches in which an entire replica set failed.",
}

// GroupOptions tunes one replica set's failover behavior.
type GroupOptions struct {
	// AttemptTimeout bounds each replica attempt; an expired attempt fails
	// over to the next replica. 0 leaves attempts bounded only by the
	// query's own deadline.
	AttemptTimeout time.Duration
	// Hedge races a second replica against an attempt running past the
	// set's observed p95 latency — hedging across replicas, not a retry of
	// the same process, so a wedged replica cannot also absorb the hedge.
	Hedge bool
	// MinHedgeDelay floors the hedge trigger; default 2ms.
	MinHedgeDelay time.Duration
	// HedgeAfter is how many recorded latencies the set needs before its
	// p95 is trusted for hedging; default 16.
	HedgeAfter int
	// BackoffBase seeds the exponential backoff between sequential
	// failover retries (base, 2·base, 4·base, … each with up to 50% added
	// jitter); default 5ms.
	BackoffBase time.Duration
	// BackoffMax caps a single backoff sleep; default 250ms.
	BackoffMax time.Duration
	// Registry receives the group's metrics; nil disables them.
	Registry *obs.Registry
}

func (o GroupOptions) withDefaults() GroupOptions {
	if o.MinHedgeDelay == 0 {
		o.MinHedgeDelay = 2 * time.Millisecond
	}
	if o.HedgeAfter == 0 {
		o.HedgeAfter = 16
	}
	if o.BackoffBase == 0 {
		o.BackoffBase = 5 * time.Millisecond
	}
	if o.BackoffMax == 0 {
		o.BackoffMax = 250 * time.Millisecond
	}
	return o
}

// replicaState is one replica's health counters.
type replicaState struct {
	attempts atomic.Int64
	errors   atomic.Int64
}

// Group is one replica set presented to the cluster Router as a single
// logical Shard: R servers holding identical copies of one partition.
// SearchEncoded tries replicas with per-attempt timeouts, hedges a second
// replica against a slow attempt, retries failures on the next replica
// with exponential backoff plus jitter, and only fails — degrading the
// federated answer — when every replica of the set has failed.
type Group struct {
	set     int
	clients []*Client
	opts    GroupOptions
	reg     *obs.Registry
	state   []*replicaState
	// rr rotates the preferred replica so read load spreads across the
	// set instead of hammering replica 0.
	rr        atomic.Uint64
	hedges    atomic.Int64
	hedgeWins atomic.Int64
	retries   atomic.Int64
	setDown   atomic.Int64

	// lat is the set's recent successful-attempt latency window, the p95
	// estimator behind the hedge trigger.
	latMu    sync.Mutex
	lat      []time.Duration
	latNext  int
	latCount int
}

const groupLatencyWindow = 128

// NewGroup builds a replica set over shard base URLs sharing one
// transport.
func NewGroup(set int, urls []string, rt func(string) *Client, opts GroupOptions) (*Group, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("netcluster: replica set %d has no members", set)
	}
	g := &Group{
		set:   set,
		opts:  opts.withDefaults(),
		reg:   opts.Registry,
		lat:   make([]time.Duration, groupLatencyWindow),
		state: make([]*replicaState, len(urls)),
	}
	for i, u := range urls {
		g.clients = append(g.clients, rt(u))
		g.state[i] = &replicaState{}
	}
	return g, nil
}

// Replicas reports the set's member count.
func (g *Group) Replicas() int { return len(g.clients) }

// URLs reports the member base URLs.
func (g *Group) URLs() []string {
	out := make([]string, len(g.clients))
	for i, c := range g.clients {
		out[i] = c.URL()
	}
	return out
}

func (g *Group) recordLatency(d time.Duration) {
	g.latMu.Lock()
	g.lat[g.latNext] = d
	g.latNext = (g.latNext + 1) % len(g.lat)
	if g.latCount < len(g.lat) {
		g.latCount++
	}
	g.latMu.Unlock()
}

// quantile estimates the q-quantile of the latency window; ok is false
// with fewer than min samples.
func (g *Group) quantile(q float64, min int) (time.Duration, bool) {
	g.latMu.Lock()
	defer g.latMu.Unlock()
	if g.latCount < min {
		return 0, false
	}
	tmp := make([]time.Duration, g.latCount)
	copy(tmp, g.lat[:g.latCount])
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	return obs.SampleQuantile(tmp, q), true
}

// hedgeDelay returns when a cross-replica hedge should launch, and
// whether hedging is armed: enabled, more than one replica, and enough
// latency history for the p95 to mean something.
func (g *Group) hedgeDelay() (time.Duration, bool) {
	if !g.opts.Hedge || len(g.clients) < 2 {
		return 0, false
	}
	p95, ok := g.quantile(0.95, g.opts.HedgeAfter)
	if !ok {
		return 0, false
	}
	if p95 < g.opts.MinHedgeDelay {
		p95 = g.opts.MinHedgeDelay
	}
	return p95, true
}

// backoff returns the nth sequential-retry sleep: exponential from
// BackoffBase, capped at BackoffMax, with up to 50% added jitter so a
// coordinator fleet retrying a flapping replica does not beat on it in
// lockstep.
func (g *Group) backoff(n int) time.Duration {
	d := g.opts.BackoffBase << uint(n)
	if d > g.opts.BackoffMax || d <= 0 {
		d = g.opts.BackoffMax
	}
	return d + time.Duration(rand.Int63n(int64(d)/2+1))
}

// outcome is one replica attempt's result; payload holds the
// call-specific answer.
type outcome struct {
	payload interface{}
	spans   []obs.SpanRecord
	err     error
	replica int
	hedge   bool
	dur     time.Duration
}

// race runs the replica-failover state machine around one remote call:
// launch the preferred replica, hedge the next one against a straggler,
// fail over sequentially (with backoff) on errors, and return the first
// success. It returns an error only when every replica failed or the
// query's own context died. Remote spans of the winning attempt are
// grafted into the trace carried by ctx.
func (g *Group) race(ctx context.Context, do func(context.Context, *Client) (interface{}, []obs.SpanRecord, error)) (interface{}, error) {
	n := len(g.clients)
	order := make([]int, n)
	start := int(g.rr.Add(1)-1) % n
	for i := range order {
		order[i] = (start + i) % n
	}

	ch := make(chan outcome, n) // buffered: losers never block or leak
	launched, done := 0, 0
	launch := func(hedge bool) {
		idx := order[launched]
		launched++
		g.state[idx].attempts.Add(1)
		g.reg.Counter(obs.L(MetricAttempts, "set", strconv.Itoa(g.set), "replica", strconv.Itoa(idx))).Inc()
		go func() {
			actx := ctx
			var cancel context.CancelFunc
			if g.opts.AttemptTimeout > 0 {
				actx, cancel = context.WithTimeout(ctx, g.opts.AttemptTimeout)
				defer cancel()
			}
			t0 := time.Now()
			payload, spans, err := do(actx, g.clients[idx])
			ch <- outcome{payload: payload, spans: spans, err: err, replica: idx, hedge: hedge, dur: time.Since(t0)}
		}()
	}
	launch(false)

	var hedgeC <-chan time.Time
	if d, ok := g.hedgeDelay(); ok {
		t := time.NewTimer(d)
		defer t.Stop()
		hedgeC = t.C
	}
	var (
		backoffC <-chan time.Time
		backoffT *time.Timer
	)
	defer func() {
		if backoffT != nil {
			backoffT.Stop()
		}
	}()
	retryN := 0
	var lastErr error
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case o := <-ch:
			done++
			if o.err == nil {
				if o.hedge {
					g.hedgeWins.Add(1)
					g.reg.Counter(obs.L(MetricGroupHedgeWins, "set", strconv.Itoa(g.set))).Inc()
				}
				g.recordLatency(o.dur)
				obs.TraceFrom(ctx).Adopt(o.spans)
				return o.payload, nil
			}
			lastErr = o.err
			g.state[o.replica].errors.Add(1)
			g.reg.Counter(obs.L(MetricReplicaErrors, "set", strconv.Itoa(g.set), "replica", strconv.Itoa(o.replica))).Inc()
			var re *RemoteError
			if errors.As(o.err, &re) && !re.Retryable() {
				// The request itself is bad (4xx): every replica would answer
				// the same, so failing over just multiplies the damage.
				return nil, o.err
			}
			if launched < n && backoffC == nil {
				g.retries.Add(1)
				g.reg.Counter(obs.L(MetricRetries, "set", strconv.Itoa(g.set))).Inc()
				backoffT = time.NewTimer(g.backoff(retryN))
				backoffC = backoffT.C
				retryN++
			} else if done == launched && launched == n {
				g.setDown.Add(1)
				g.reg.Counter(obs.L(MetricSetDown, "set", strconv.Itoa(g.set))).Inc()
				return nil, fmt.Errorf("netcluster: replica set %d down (%d replicas failed): %w", g.set, n, lastErr)
			}
		case <-backoffC:
			backoffC = nil
			if launched < n {
				launch(false)
			}
		case <-hedgeC:
			hedgeC = nil
			if launched < n {
				g.hedges.Add(1)
				g.reg.Counter(obs.L(MetricGroupHedges, "set", strconv.Itoa(g.set))).Inc()
				launch(true)
			}
		}
	}
}

// SearchEncoded implements cluster.Shard: one pre-encoded query answered
// by whichever replica wins the failover race. The remote cost report is
// folded into the accumulator ctx carries (the Router's per-shard Cost).
func (g *Group) SearchEncoded(ctx context.Context, q []float32, k int) ([]core.Match, error) {
	type payload struct {
		ms   []core.Match
		cost obs.CostReport
	}
	out, err := g.race(ctx, func(actx context.Context, cl *Client) (interface{}, []obs.SpanRecord, error) {
		ms, cost, spans, err := cl.SearchEncoded(actx, q, k)
		if err != nil {
			return nil, nil, err
		}
		return payload{ms: ms, cost: cost}, spans, nil
	})
	if err != nil {
		return nil, err
	}
	p := out.(payload)
	obs.CostFrom(ctx).AddReport(p.cost)
	return p.ms, nil
}

// SearchEncodedBatch implements cluster.BatchShard: the whole block rides
// one failover race, so a straggling replica costs one hedge for the
// batch, not one per query.
func (g *Group) SearchEncodedBatch(ctx context.Context, qs [][]float32, ks []int, costs []*obs.Cost) ([][]core.Match, error) {
	type payload struct {
		ms    [][]core.Match
		costs []obs.CostReport
	}
	out, err := g.race(ctx, func(actx context.Context, cl *Client) (interface{}, []obs.SpanRecord, error) {
		ms, reps, spans, err := cl.SearchEncodedBatch(actx, qs, ks)
		if err != nil {
			return nil, nil, err
		}
		return payload{ms: ms, costs: reps}, spans, nil
	})
	if err != nil {
		return nil, err
	}
	p := out.(payload)
	for i := range p.costs {
		if i < len(costs) {
			costs[i].AddReport(p.costs[i])
		}
	}
	return p.ms, nil
}

// ReplicaStats is one replica's health snapshot.
type ReplicaStats struct {
	URL      string `json:"url"`
	Attempts int64  `json:"attempts"`
	Errors   int64  `json:"errors"`
}

// GroupStats is one replica set's health snapshot.
type GroupStats struct {
	Set       int            `json:"set"`
	Replicas  []ReplicaStats `json:"replicas"`
	Hedges    int64          `json:"hedges"`
	HedgeWins int64          `json:"hedge_wins"`
	Retries   int64          `json:"retries"`
	SetDown   int64          `json:"set_down"`
	P50MS     float64        `json:"p50_ms"`
	P95MS     float64        `json:"p95_ms"`
}

// Stats snapshots the set's failover counters and attempt latency.
func (g *Group) Stats() GroupStats {
	s := GroupStats{
		Set:       g.set,
		Hedges:    g.hedges.Load(),
		HedgeWins: g.hedgeWins.Load(),
		Retries:   g.retries.Load(),
		SetDown:   g.setDown.Load(),
	}
	p50, _ := g.quantile(0.50, 1)
	p95, _ := g.quantile(0.95, 1)
	s.P50MS = float64(p50) / float64(time.Millisecond)
	s.P95MS = float64(p95) / float64(time.Millisecond)
	for i, c := range g.clients {
		s.Replicas = append(s.Replicas, ReplicaStats{
			URL:      c.URL(),
			Attempts: g.state[i].attempts.Load(),
			Errors:   g.state[i].errors.Load(),
		})
	}
	return s
}
