package cluster

import (
	"sort"
	"sync"
	"time"

	"semdisco/internal/obs"
)

// latencyWindowSize bounds the per-shard latency history used to estimate
// the hedge trigger. A sliding window rather than a lifetime histogram:
// hedging should react to what the shard is doing now, and an index that
// warmed its caches an hour ago should not hedge off cold-start latencies.
const latencyWindowSize = 128

// latencyWindow is a fixed-size ring of recent successful search
// durations. Only successes are recorded — a timed-out search reports the
// deadline, not the shard's speed, and recording it would inflate the p95
// until hedging disables itself.
type latencyWindow struct {
	mu    sync.Mutex
	buf   []time.Duration
	next  int
	count int
}

func newLatencyWindow(size int) *latencyWindow {
	return &latencyWindow{buf: make([]time.Duration, size)}
}

func (w *latencyWindow) record(d time.Duration) {
	w.mu.Lock()
	w.buf[w.next] = d
	w.next = (w.next + 1) % len(w.buf)
	if w.count < len(w.buf) {
		w.count++
	}
	w.mu.Unlock()
}

// p95 returns the 95th-percentile latency over the window, or false when
// fewer than minSamples observations exist — too little history for the
// estimate to gate hedging.
func (w *latencyWindow) p95(minSamples int) (time.Duration, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.count < minSamples {
		return 0, false
	}
	return w.quantileLocked(0.95), true
}

// quantile returns the q-quantile over the window, 0 when empty.
func (w *latencyWindow) quantile(q float64) time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.count == 0 {
		return 0
	}
	return w.quantileLocked(q)
}

// quantileLocked sorts a copy of the live slots and interpolates via the
// shared obs.SampleQuantile estimator, so the p95 that arms a hedge is
// the same number /v1/stats reports; caller holds mu. The window is small
// (≤128 entries) so the sort is noise next to a search.
func (w *latencyWindow) quantileLocked(q float64) time.Duration {
	tmp := make([]time.Duration, w.count)
	copy(tmp, w.buf[:w.count])
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	return obs.SampleQuantile(tmp, q)
}
