package cluster

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"semdisco/internal/core"
	"semdisco/internal/obs"
)

// inflightWaiters counts followers parked on in-flight calls.
func (r *Router) inflightWaiters() int {
	r.inflightMu.Lock()
	defer r.inflightMu.Unlock()
	n := 0
	for _, c := range r.inflight {
		n += int(c.waiters.Load())
	}
	return n
}

// gatedShard signals when a search enters it and blocks until released, so
// tests can pin concurrent requests behind one in-flight scan.
type gatedShard struct {
	stubShard
	entered chan struct{} // closed on first entry
	release chan struct{} // entry blocks until closed
	once    sync.Once
}

func (s *gatedShard) SearchEncoded(ctx context.Context, q []float32, k int) ([]core.Match, error) {
	s.once.Do(func() { close(s.entered) })
	select {
	case <-s.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return s.stubShard.SearchEncoded(ctx, q, k)
}

// TestCoalescingSingleScan pins the singleflight contract: N concurrent
// identical (query, k) requests execute exactly one shard scan; the
// followers get the leader's matches marked Coalesced.
func TestCoalescingSingleScan(t *testing.T) {
	shard := &gatedShard{
		stubShard: stubShard{matches: []core.Match{m(0, 0.9), m(1, 0.8)}},
		entered:   make(chan struct{}),
		release:   make(chan struct{}),
	}
	r := mustRouter(t, []Shard{shard}, testOpts())

	const followers = 8
	results := make([]*Result, followers+1)
	errs := make([]error, followers+1)
	var wg sync.WaitGroup
	run := func(i int) {
		defer wg.Done()
		results[i], errs[i] = r.Search(context.Background(), "q", 2)
	}
	// The leader registers the in-flight call before its scatter reaches the
	// shard, so once the shard reports entry every later request must join
	// the existing call rather than start its own scan.
	wg.Add(1)
	go run(0)
	<-shard.entered
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go run(i)
	}
	// Wait until all followers are parked on the in-flight call, then let
	// the leader's scan finish.
	for r.inflightWaiters() < followers {
		runtime.Gosched()
	}
	close(shard.release)
	wg.Wait()

	if got := shard.callCount(); got != 1 {
		t.Fatalf("shard scanned %d times, want exactly 1", got)
	}
	coalesced := 0
	for i, res := range results {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if len(res.Matches) != 2 || res.Matches[0] != m(0, 0.9) {
			t.Fatalf("request %d: wrong matches %+v", i, res.Matches)
		}
		if res.Coalesced {
			coalesced++
		}
	}
	if coalesced != followers {
		t.Errorf("%d coalesced results, want %d", coalesced, followers)
	}
}

// TestCoalescedResultIsolated verifies a follower's matches are a private
// copy: mutating them must not corrupt the leader's result or the cache.
func TestCoalescedResultIsolated(t *testing.T) {
	shard := &gatedShard{
		stubShard: stubShard{matches: []core.Match{m(0, 0.9)}},
		entered:   make(chan struct{}),
		release:   make(chan struct{}),
	}
	r := mustRouter(t, []Shard{shard}, testOpts())
	var follower *Result
	var wg sync.WaitGroup
	wg.Add(2)
	var leader *Result
	go func() { defer wg.Done(); leader, _ = r.Search(context.Background(), "q", 1) }()
	<-shard.entered
	go func() { defer wg.Done(); follower, _ = r.Search(context.Background(), "q", 1) }()
	for r.inflightWaiters() < 1 {
		runtime.Gosched()
	}
	close(shard.release)
	wg.Wait()

	follower.Matches[0].Score = -1
	if leader.Matches[0].Score != 0.9 {
		t.Fatalf("mutating the coalesced copy reached the leader: %+v", leader.Matches[0])
	}
}

// batchStubShard implements the BatchShard fast path over a stubShard.
type batchStubShard struct {
	stubShard
	mu         sync.Mutex
	batchCalls int
}

func (s *batchStubShard) SearchEncodedBatch(ctx context.Context, qs [][]float32, ks []int, costs []*obs.Cost) ([][]core.Match, error) {
	s.mu.Lock()
	s.batchCalls++
	s.mu.Unlock()
	out := make([][]core.Match, len(qs))
	for i := range qs {
		m, err := s.stubShard.SearchEncoded(ctx, qs[i], ks[i])
		if err != nil {
			return nil, err
		}
		out[i] = m
	}
	return out, nil
}

func (s *batchStubShard) batchCallCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.batchCalls
}

// TestSearchBatchFastPath verifies a BatchShard receives the whole block in
// one call and every item's answer matches a per-query Search.
func TestSearchBatchFastPath(t *testing.T) {
	shard := &batchStubShard{stubShard: stubShard{matches: []core.Match{m(0, 0.9), m(1, 0.8), m(2, 0.7)}}}
	r := mustRouter(t, []Shard{shard}, testOpts())

	items := []BatchQuery{{"a", 2}, {"b", 3}, {"c", 1}}
	results, err := r.SearchBatch(context.Background(), items)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if got := shard.batchCallCount(); got != 1 {
		t.Fatalf("shard got %d batch calls, want 1", got)
	}
	for i, it := range items {
		want, err := r.Search(context.Background(), it.Query, it.K)
		if err != nil {
			t.Fatalf("sequential: %v", err)
		}
		if len(results[i].Matches) != len(want.Matches) {
			t.Fatalf("item %d: %d matches vs %d sequential", i, len(results[i].Matches), len(want.Matches))
		}
		for j := range want.Matches {
			if results[i].Matches[j] != want.Matches[j] {
				t.Errorf("item %d match %d: %+v vs %+v", i, j, results[i].Matches[j], want.Matches[j])
			}
		}
	}
}

// TestSearchBatchFallback verifies shards without the batch interface still
// answer, via per-query calls.
func TestSearchBatchFallback(t *testing.T) {
	shard := &stubShard{matches: []core.Match{m(0, 0.9), m(1, 0.8)}}
	r := mustRouter(t, []Shard{shard}, testOpts())
	results, err := r.SearchBatch(context.Background(), []BatchQuery{{"a", 1}, {"b", 2}})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if shard.callCount() != 2 {
		t.Fatalf("fallback made %d calls, want 2", shard.callCount())
	}
	if len(results[0].Matches) != 1 || len(results[1].Matches) != 2 {
		t.Fatalf("wrong match counts: %d, %d", len(results[0].Matches), len(results[1].Matches))
	}
}

// TestSearchBatchDedup verifies identical (query, k) items inside one batch
// share a single slot: one scan, duplicates marked Coalesced with zero cost.
func TestSearchBatchDedup(t *testing.T) {
	shard := &batchStubShard{stubShard: stubShard{matches: []core.Match{m(0, 0.9)}}}
	r := mustRouter(t, []Shard{shard}, testOpts())

	items := []BatchQuery{{"q", 1}, {"q", 1}, {"q", 2}, {"q", 1}}
	results, err := r.SearchBatch(context.Background(), items)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	coalesced := 0
	for i, res := range results {
		if len(res.Matches) != 1 {
			t.Fatalf("item %d: %d matches", i, len(res.Matches))
		}
		if res.Coalesced {
			coalesced++
			if res.Cost != (obs.CostReport{}) {
				t.Errorf("item %d: coalesced item carries cost %+v", i, res.Cost)
			}
		}
	}
	// Two distinct slots — ("q",1) and ("q",2) — so two of the four items
	// coalesce onto the first slot.
	if coalesced != 2 {
		t.Errorf("%d coalesced items, want 2", coalesced)
	}
}

// TestSearchBatchCacheAndEdgeCases covers K ≤ 0 items, the cache answering
// a repeat batch, and an all-failed batch turning into an error.
func TestSearchBatchCacheAndEdgeCases(t *testing.T) {
	shard := &batchStubShard{stubShard: stubShard{matches: []core.Match{m(0, 0.9)}}}
	opts := testOpts()
	opts.CacheSize = 8
	r := mustRouter(t, []Shard{shard}, opts)

	items := []BatchQuery{{"q", 1}, {"skip", 0}}
	first, err := r.SearchBatch(context.Background(), items)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(first[1].Matches) != 0 {
		t.Fatalf("k=0 item got matches")
	}
	second, err := r.SearchBatch(context.Background(), items)
	if err != nil {
		t.Fatalf("repeat batch: %v", err)
	}
	if !second[0].CacheHit {
		t.Error("repeat batch item missed the cache")
	}
	if got := shard.batchCallCount(); got != 1 {
		t.Errorf("cacheable repeat caused %d batch scans, want 1", got)
	}

	bad := mustRouter(t, []Shard{&stubShard{err: context.DeadlineExceeded}}, testOpts())
	if _, err := bad.SearchBatch(context.Background(), []BatchQuery{{"q", 1}}); err == nil {
		t.Error("all shards failing must error the batch")
	}
}

// TestSearchBatchDegraded verifies a failed shard degrades every scattered
// item instead of failing the batch.
func TestSearchBatchDegraded(t *testing.T) {
	ok := &stubShard{matches: []core.Match{m(0, 0.9)}}
	bad := &stubShard{err: context.DeadlineExceeded}
	r := mustRouter(t, []Shard{ok, bad}, testOpts())
	results, err := r.SearchBatch(context.Background(), []BatchQuery{{"a", 1}, {"b", 1}})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	for i, res := range results {
		if !res.Degraded || len(res.ShardErrors) != 1 {
			t.Errorf("item %d: degraded=%v errors=%v", i, res.Degraded, res.ShardErrors)
		}
		if len(res.Matches) != 1 {
			t.Errorf("item %d: lost the healthy shard's matches", i)
		}
	}
}
