// Package cluster is the sharded query-federation layer: a Router that
// owns N shards (each a core-level search engine over a corpus partition),
// routes relations to shards at build and add time, and answers queries by
// scatter-gather — encode once, fan out concurrently, merge per-shard
// top-k′ into a global top-k with deterministic tie-breaking.
//
// The layer exists so per-query work can be bounded and parallelized the
// way large-scale vector-set search systems (DESSERT, KOIOS) bound theirs:
// instead of one monolithic index, each shard scans or walks only its
// slice, and the router absorbs the operational failure modes of fan-out —
// per-shard deadlines interrupt straggler work (context threaded down to
// the scan/hop level), hedged retries race a second attempt against a
// shard running past its p95, and a shard that still fails degrades the
// answer to the healthy shards' results, annotated rather than discarded.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"semdisco/internal/cache"
	"semdisco/internal/core"
	"semdisco/internal/obs"
	"semdisco/internal/par"
)

// Metric series recorded by the Router. Per-shard series carry a
// shard="<index>" label.
const (
	// MetricSearches counts completed cluster searches.
	MetricSearches = "semdisco_cluster_searches_total"
	// MetricSearchSeconds is end-to-end federated query latency, the
	// cluster-level histogram trace exemplars attach to.
	MetricSearchSeconds = "semdisco_cluster_search_seconds"
	// MetricShardSearchSeconds is per-shard search latency.
	MetricShardSearchSeconds = "semdisco_cluster_shard_search_seconds"
	// MetricShardErrors counts failed shard searches, timeouts included.
	MetricShardErrors = "semdisco_cluster_shard_errors_total"
	// MetricShardTimeouts counts shard searches that hit the per-shard
	// deadline.
	MetricShardTimeouts = "semdisco_cluster_shard_timeouts_total"
	// MetricHedges counts hedge attempts launched against slow shards.
	MetricHedges = "semdisco_cluster_hedges_total"
	// MetricHedgeWins counts hedges that beat their primary.
	MetricHedgeWins = "semdisco_cluster_hedge_wins_total"
	// MetricDegraded counts searches answered from a strict subset of
	// shards.
	MetricDegraded = "semdisco_cluster_degraded_total"
	// MetricCacheHits / MetricCacheMisses track the query-result cache.
	MetricCacheHits   = "semdisco_cluster_cache_hits_total"
	MetricCacheMisses = "semdisco_cluster_cache_misses_total"
	// MetricCacheHitSeconds is the latency of cache-served searches. Cache
	// hits land here instead of MetricSearchSeconds so the end-to-end
	// latency histogram — and every p95 estimate derived from it — keeps
	// describing real scatter-gather work rather than being dragged toward
	// zero by memory lookups.
	MetricCacheHitSeconds = "semdisco_cluster_cache_hit_seconds"
	// MetricCoalesced counts searches answered by riding a concurrent
	// identical in-flight search instead of scattering their own.
	MetricCoalesced = "semdisco_cluster_coalesced_total"
	// MetricBatchSearches counts SearchBatch fan-outs (one per batch, not
	// per query; the queries inside still count into MetricSearches).
	MetricBatchSearches = "semdisco_cluster_batch_searches_total"
	// MetricBatchQueries counts queries answered through SearchBatch.
	MetricBatchQueries = "semdisco_cluster_batch_queries_total"
)

// MetricHelp maps the router's metric base names to their Prometheus
// HELP texts; NewRouter registers them on the registry it is given.
var MetricHelp = map[string]string{
	MetricSearches:           "Completed cluster searches.",
	MetricSearchSeconds:      "End-to-end federated query latency in seconds.",
	MetricShardSearchSeconds: "Per-shard search latency in seconds.",
	MetricShardErrors:        "Failed shard searches, timeouts included.",
	MetricShardTimeouts:      "Shard searches that hit the per-shard deadline.",
	MetricHedges:             "Hedge attempts launched against slow shards.",
	MetricHedgeWins:          "Hedge attempts that beat their primary.",
	MetricDegraded:           "Searches answered from a strict subset of shards.",
	MetricCacheHits:          "Query-result cache hits.",
	MetricCacheMisses:        "Query-result cache misses.",
	MetricCacheHitSeconds:    "Latency of cache-served searches in seconds.",
	MetricCoalesced:          "Searches coalesced onto a concurrent identical in-flight search.",
	MetricBatchSearches:      "Batched scatter-gather fan-outs.",
	MetricBatchQueries:       "Queries answered through the batch path.",
}

// Policy selects how relations are assigned to shards.
type Policy int

const (
	// PolicyHash routes each relation by a hash of its ID: stateless,
	// stable under reloads, and the same relation always lands on the same
	// shard regardless of insertion order.
	PolicyHash Policy = iota
	// PolicyRoundRobin deals relations out in arrival order at build time
	// and routes later Adds to the currently smallest shard, keeping the
	// partition balanced as the corpus grows (rebalance-aware routing).
	PolicyRoundRobin
)

func (p Policy) String() string {
	switch p {
	case PolicyHash:
		return "hash"
	case PolicyRoundRobin:
		return "round-robin"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// HashShard returns the shard index a relation ID maps to under PolicyHash
// (FNV-1a, mod n). Exported so build-time assignment and add-time routing
// agree by construction.
func HashShard(id string, n int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return int(h % uint32(n))
}

// Shard is one partition's search engine: rank the shard's relations for a
// pre-encoded query vector, honoring ctx. core.ExS/ANNS/CTS satisfy it via
// SearchEncoded.
type Shard interface {
	SearchEncoded(ctx context.Context, q []float32, k int) ([]core.Match, error)
}

// Options configures a Router.
type Options struct {
	// Policy selects the partitioning scheme; default PolicyHash.
	Policy Policy
	// Slack widens the per-shard fetch: each shard returns its top k+Slack
	// and the router merges down to k. Exact methods (ExS) need no slack —
	// the global top-k is a subset of the shards' top-k — but approximate
	// shards benefit from the extra margin. Default 8.
	Slack int
	// ShardTimeout is the per-shard deadline; a shard still running when it
	// expires is interrupted mid-scan and reported as a timeout. 0 disables.
	ShardTimeout time.Duration
	// Hedge enables hedged retries: when a shard runs past its observed p95
	// latency, a second attempt is raced against the first and the earlier
	// answer wins. Hedging needs HedgeAfter recorded latencies per shard
	// before it arms.
	Hedge bool
	// MinHedgeDelay floors the hedge trigger so cold p95 estimates cannot
	// hedge instantly. Default 1ms.
	MinHedgeDelay time.Duration
	// HedgeAfter is how many successful searches a shard must have before
	// its p95 is trusted for hedging. Default 16.
	HedgeAfter int
	// Method labels metrics and stats ("ExS", "CTS", …).
	Method string
	// Encode embeds a query string once; the vector fans out to all shards.
	Encode func(query string) []float32
	// Order maps a relation ID to its global rank (federation insertion
	// order). Merged results tie-break on it, which makes the merged
	// ranking bit-identical to the single-engine ranking for ExS — the
	// single engine breaks score ties by ascending relation index.
	Order func(relID string) int
	// CacheSize bounds the (query, k) → results LRU; 0 disables caching.
	CacheSize int
	// Registry receives the router's metrics; nil disables them.
	Registry *obs.Registry
	// Workload, when non-nil, receives one per-shard load observation per
	// shard attempt, feeding the load-skew (Gini) gauge.
	Workload *obs.Workload
	// SegmentInfo, when non-nil, reports a shard's segment count and
	// tombstoned-relation count for Stats.
	SegmentInfo func(shard int) (segments, tombstoned int)
}

// ShardError is one shard's failure during a scatter-gather query.
type ShardError struct {
	Shard int
	Err   error
}

func (e ShardError) Error() string { return fmt.Sprintf("shard %d: %v", e.Shard, e.Err) }

// Unwrap exposes the underlying error to errors.Is/As.
func (e ShardError) Unwrap() error { return e.Err }

// Result is one scatter-gather answer plus its health metadata.
type Result struct {
	// Matches is the merged global top-k.
	Matches []core.Match
	// TraceID is the hex trace ID the query ran under, "" when untraced.
	// Interesting outcomes (degraded, hedged, errored, slow) are retained
	// in the owning layer's trace store under this ID.
	TraceID string
	// Degraded reports that at least one shard failed or timed out and
	// Matches covers only the healthy shards' partitions.
	Degraded bool
	// ShardErrors lists the failed shards, ascending by shard index.
	ShardErrors []ShardError
	// Hedged counts hedge attempts launched for this query.
	Hedged int
	// CacheHit reports the answer came from the query-result cache.
	CacheHit bool
	// Coalesced reports the answer was shared from a concurrent identical
	// in-flight search (same query, same k): this request scattered no
	// work of its own, so its Cost is empty.
	Coalesced bool
	// Cost aggregates the work every shard attempt performed for this
	// query. A cache hit reports only CacheHits: 1 — no index work ran.
	Cost obs.CostReport
	// ShardCosts is the per-shard breakdown, indexed by shard; failed
	// shards report the work their failing attempt still performed.
	ShardCosts []obs.CostReport
}

// cacheKey identifies one cacheable query. The method is part of the
// router's identity, not the key: one router serves one method.
type cacheKey struct {
	query string
	k     int
}

// shardState is the router's per-shard bookkeeping: counters for stats and
// the latency window behind the hedge trigger.
type shardState struct {
	searches atomic.Int64
	errors   atomic.Int64
	timeouts atomic.Int64
	hedges   atomic.Int64
	lat      *latencyWindow
}

// inflightCall is one in-progress scatter-gather that concurrent identical
// requests can ride. done is closed after res/err are set and the call is
// unregistered, so a woken follower can never re-join a finished call.
type inflightCall struct {
	done chan struct{}
	res  *Result
	err  error
	// gen is the router's mutation generation when the leader scattered. A
	// follower arriving after a mutation must not ride this call: the
	// leader's answer may predate a delete.
	gen uint64
	// waiters counts followers parked on done; tests use it to pin the
	// exactly-one-scan contract without sleeping.
	waiters atomic.Int64
}

// Router fans queries out over N shards and merges their answers. Search
// is safe for concurrent use; Route/NoteAdd (the add path) must not race
// with the owning layer's shard mutation, mirroring Engine.Add's contract.
type Router struct {
	shards []Shard
	opts   Options
	state  []*shardState
	reg    *obs.Registry
	cache  *cache.LRU[cacheKey, []core.Match]
	// inflight coalesces concurrent identical (query, k) searches onto one
	// scatter (singleflight); guarded by inflightMu.
	inflightMu sync.Mutex
	inflight   map[cacheKey]*inflightCall
	// relCount[i] tracks shard i's relation count for rebalance-aware
	// routing; degraded counts stats queries, not correctness.
	relCount []atomic.Int64
	searches atomic.Int64
	degraded atomic.Int64
	// mutGen counts corpus mutations (add, delete, update). It fences both
	// staleness channels a mutation opens: the result cache (purged, and a
	// scatter that started before the mutation refuses to populate it) and
	// the singleflight coalescer (a follower never rides a leader that
	// scattered under an older generation).
	mutGen atomic.Uint64
}

// NewRouter builds a Router over pre-built shards. relCounts mirrors each
// shard's relation count (used by round-robin rebalance routing and
// Stats); len(relCounts) must equal len(shards).
func NewRouter(shards []Shard, relCounts []int, opts Options) (*Router, error) {
	if len(shards) == 0 {
		return nil, errors.New("cluster: at least one shard required")
	}
	if len(relCounts) != len(shards) {
		return nil, fmt.Errorf("cluster: %d shards but %d relation counts", len(shards), len(relCounts))
	}
	if opts.Encode == nil {
		return nil, errors.New("cluster: Options.Encode is required")
	}
	if opts.Order == nil {
		return nil, errors.New("cluster: Options.Order is required")
	}
	if opts.Slack == 0 {
		opts.Slack = 8
	}
	if opts.MinHedgeDelay == 0 {
		opts.MinHedgeDelay = time.Millisecond
	}
	if opts.HedgeAfter == 0 {
		opts.HedgeAfter = 16
	}
	r := &Router{
		shards:   shards,
		opts:     opts,
		state:    make([]*shardState, len(shards)),
		reg:      opts.Registry,
		inflight: make(map[cacheKey]*inflightCall),
		relCount: make([]atomic.Int64, len(shards)),
	}
	r.reg.SetHelps(MetricHelp)
	for i := range r.state {
		r.state[i] = &shardState{lat: newLatencyWindow(latencyWindowSize)}
		r.relCount[i].Store(int64(relCounts[i]))
	}
	if opts.CacheSize > 0 {
		r.cache = cache.New[cacheKey, []core.Match](opts.CacheSize)
	}
	return r, nil
}

// NumShards reports the shard count.
func (r *Router) NumShards() int { return len(r.shards) }

// Route returns the shard index a new relation should be added to: the
// hash bucket under PolicyHash, the currently smallest shard (ties to the
// lowest index) under PolicyRoundRobin.
func (r *Router) Route(relID string) int {
	if r.opts.Policy == PolicyHash {
		return HashShard(relID, len(r.shards))
	}
	best, bestN := 0, r.relCount[0].Load()
	for i := 1; i < len(r.shards); i++ {
		if n := r.relCount[i].Load(); n < bestN {
			best, bestN = i, n
		}
	}
	return best
}

// NoteAdd records that one relation landed on shard i and fences both
// staleness channels (result cache, coalescer).
func (r *Router) NoteAdd(i int) {
	r.relCount[i].Add(1)
	r.NoteMutation()
}

// NoteDelete records that one relation left shard i and fences both
// staleness channels (result cache, coalescer).
func (r *Router) NoteDelete(i int) {
	r.relCount[i].Add(-1)
	r.NoteMutation()
}

// NoteUpdate records an in-place replacement on shard i: counts are
// unchanged, but every cached or in-flight ranking is stale.
func (r *Router) NoteUpdate(i int) { r.NoteMutation() }

// NoteMutation advances the mutation generation and purges the result
// cache. Scatters already in flight see the generation change and refuse
// to (a) serve followers or (b) repopulate the cache with pre-mutation
// rankings.
func (r *Router) NoteMutation() {
	r.mutGen.Add(1)
	if r.cache != nil {
		r.cache.Purge()
	}
}

// Search answers a query by scatter-gather over all shards. See
// SearchTraced for the trace-carrying variant.
func (r *Router) Search(ctx context.Context, query string, k int) (*Result, error) {
	return r.SearchTraced(ctx, query, k, nil)
}

// SearchTraced is Search with the span tree of the federated query
// recorded on tr: encode → scatter → merge, with one child span under
// scatter per shard attempt (hedge retries included), each annotated with
// its shard index, attempt kind and failure detail. The scatter span
// itself is annotated with shard count, failures and hedges. The error
// return is reserved for total failure — the parent context expiring, or
// every shard failing; partial failure returns a degraded Result instead.
func (r *Router) SearchTraced(ctx context.Context, query string, k int, tr *obs.Trace) (*Result, error) {
	if k <= 0 {
		return &Result{}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	key := cacheKey{query: query, k: k}
	if res, ok := r.cacheLookup(ctx, key, start); ok {
		return res, nil
	}

	// Singleflight coalescing: if an identical (query, k) search is already
	// scattering, ride it instead of duplicating the fan-out. The loop
	// re-checks after a leader fails — its deadline may have expired while
	// ours is still live, in which case we become (or follow) a new leader.
	for {
		r.inflightMu.Lock()
		if c, ok := r.inflight[key]; ok {
			if c.gen != r.mutGen.Load() {
				// The corpus mutated after the leader scattered; its answer
				// would resurrect a deleted relation or miss a new one.
				// Scatter independently against the current state.
				r.inflightMu.Unlock()
				return r.searchScatter(ctx, query, k, tr, start, key)
			}
			c.waiters.Add(1)
			r.inflightMu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if c.err == nil {
				r.reg.Counter(MetricCoalesced).Inc()
				r.searches.Add(1)
				r.reg.Counter(MetricSearches).Inc()
				res := *c.res // shallow copy of the shared result
				res.Matches = cloneMatches(c.res.Matches)
				res.Coalesced = true
				// The leader did the work; this request scattered nothing.
				res.Cost = obs.CostReport{}
				res.ShardCosts = nil
				return &res, nil
			}
			continue
		}
		c := &inflightCall{done: make(chan struct{}), gen: r.mutGen.Load()}
		r.inflight[key] = c
		r.inflightMu.Unlock()

		res, err := r.searchScatter(ctx, query, k, tr, start, key)
		c.res, c.err = res, err
		r.inflightMu.Lock()
		delete(r.inflight, key)
		r.inflightMu.Unlock()
		close(c.done)
		return res, err
	}
}

// cacheLookup serves a query from the result cache when possible,
// recording the cache metrics either way (when caching is enabled).
func (r *Router) cacheLookup(ctx context.Context, key cacheKey, start time.Time) (*Result, bool) {
	if r.cache == nil {
		return nil, false
	}
	cached, ok := r.cache.Get(key)
	if !ok {
		r.reg.Counter(MetricCacheMisses).Inc()
		return nil, false
	}
	r.reg.Counter(MetricCacheHits).Inc()
	r.searches.Add(1)
	r.reg.Counter(MetricSearches).Inc()
	// Cache hits get their own latency series; folding their near-zero
	// durations into MetricSearchSeconds would drag the end-to-end p95
	// below what any scatter-gather actually costs.
	r.reg.Histogram(MetricCacheHitSeconds).Observe(time.Since(start))
	res := &Result{Matches: cloneMatches(cached), CacheHit: true, Cost: obs.CostReport{CacheHits: 1}}
	obs.CostFrom(ctx).AddCacheHits(1)
	return res, true
}

// searchScatter is the uncached, uncoalesced scatter-gather body of one
// federated query: encode → fan out → merge → record.
func (r *Router) searchScatter(ctx context.Context, query string, k int, tr *obs.Trace, start time.Time, key cacheKey) (*Result, error) {
	startGen := r.mutGen.Load()
	sp := tr.StartSpan("encode")
	q := r.opts.Encode(query)
	sp.End()

	n := len(r.shards)
	kPrime := k + r.opts.Slack
	type shardOut struct {
		matches []core.Match
		cost    obs.CostReport
		err     error
		hedged  bool
	}
	outs := make([]shardOut, n)
	sp = tr.StartSpan("scatter").
		AnnotateInt("shards", n).
		AnnotateInt("k_prime", kPrime)
	par.Each(n, n, func(i int) {
		outs[i].matches, outs[i].cost, outs[i].err, outs[i].hedged = r.searchShard(ctx, sp, i, q, kPrime)
	})

	res := &Result{ShardCosts: make([]obs.CostReport, n)}
	perShard := make([][]core.Match, 0, n)
	for i := range outs {
		res.ShardCosts[i] = outs[i].cost
		res.Cost.Add(outs[i].cost)
		if outs[i].hedged {
			res.Hedged++
		}
		if outs[i].err != nil {
			res.ShardErrors = append(res.ShardErrors, ShardError{Shard: i, Err: outs[i].err})
			continue
		}
		perShard = append(perShard, outs[i].matches)
	}
	// Fold the aggregate into a caller-provided accumulator, so a layer
	// above the router (or a test) can account federated work uniformly.
	obs.CostFrom(ctx).AddReport(res.Cost)
	sp.AnnotateInt("failed_shards", len(res.ShardErrors)).AnnotateInt("hedges", res.Hedged)
	sp.End()

	// The parent context dying is a query-level failure: whatever shards
	// returned, the caller's deadline is spent.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(perShard) == 0 {
		return nil, fmt.Errorf("cluster: all %d shards failed: %w", n, res.ShardErrors[0])
	}

	sp = tr.StartSpan("merge")
	res.Matches = r.merge(perShard, k)
	sp.AnnotateInt("matches", len(res.Matches)).End()

	res.Degraded = len(res.ShardErrors) > 0
	r.searches.Add(1)
	r.reg.Counter(MetricSearches).Inc()
	r.reg.Histogram(MetricSearchSeconds).Observe(time.Since(start))
	if res.Degraded {
		r.degraded.Add(1)
		r.reg.Counter(MetricDegraded).Inc()
	} else if r.cache != nil && r.mutGen.Load() == startGen {
		// Only complete answers are worth remembering — and only if no
		// mutation landed while we scattered, else the entry would outlive
		// the purge that should have killed it.
		r.cache.Put(key, cloneMatches(res.Matches))
	}
	return res, nil
}

// searchShard runs one shard's query under the per-shard deadline, with a
// hedged retry when the primary runs past the shard's observed p95. Each
// attempt records a child span under the scatter span.
func (r *Router) searchShard(ctx context.Context, scatter *obs.Span, i int, q []float32, k int) ([]core.Match, obs.CostReport, error, bool) {
	sctx := ctx
	if r.opts.ShardTimeout > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(ctx, r.opts.ShardTimeout)
		defer cancel()
	}
	delay, hedge := r.hedgeDelay(i)
	if !hedge {
		m, cost, err := r.runShard(sctx, ctx, scatter, i, q, k, "primary")
		return m, cost, err, false
	}

	type outcome struct {
		matches []core.Match
		cost    obs.CostReport
		err     error
		isHedge bool
	}
	ch := make(chan outcome, 2) // buffered: the loser never blocks or leaks
	launch := func(isHedge bool) {
		attempt := "primary"
		if isHedge {
			attempt = "hedge"
		}
		go func() {
			m, cost, err := r.runShard(sctx, ctx, scatter, i, q, k, attempt)
			ch <- outcome{m, cost, err, isHedge}
		}()
	}
	launch(false)
	timer := time.NewTimer(delay)
	defer timer.Stop()

	hedged := false
	var first outcome
	select {
	case first = <-ch:
	case <-timer.C:
		hedged = true
		r.state[i].hedges.Add(1)
		r.reg.Counter(MetricHedges).Inc()
		launch(true)
		first = <-ch
	}
	if first.err == nil {
		if first.isHedge {
			r.reg.Counter(MetricHedgeWins).Inc()
		}
		return first.matches, first.cost, nil, hedged
	}
	if hedged {
		// The first finisher failed; its twin may still come through.
		if second := <-ch; second.err == nil {
			if second.isHedge {
				r.reg.Counter(MetricHedgeWins).Inc()
			}
			return second.matches, second.cost, nil, hedged
		}
	}
	return nil, first.cost, first.err, hedged
}

// runShard executes one shard search attempt, recording latency, its span
// (a child of the scatter span, annotated with shard index, attempt kind
// and failure detail) and classifying failures. parent distinguishes a
// shard-deadline timeout from the whole query's context dying.
func (r *Router) runShard(sctx, parent context.Context, scatter *obs.Span, i int, q []float32, k int, attempt string) ([]core.Match, obs.CostReport, error) {
	st := r.state[i]
	st.searches.Add(1)
	r.opts.Workload.RecordShard(i)
	sp := scatter.StartChild("shard").
		AnnotateInt("shard", i).
		Annotate("attempt", attempt)
	cost := &obs.Cost{}
	start := time.Now()
	m, err := r.shards[i].SearchEncoded(obs.ContextWithCost(sctx, cost), q, k)
	d := time.Since(start)
	rep := cost.Report()
	r.reg.Histogram(obs.L(MetricShardSearchSeconds, "shard", strconv.Itoa(i))).Observe(d)
	if err == nil {
		st.lat.record(d)
		sp.AnnotateInt("matches", len(m)).
			AnnotateInt("distance_comps", int(rep.DistanceComps)).
			AnnotateInt("pq_lookups", int(rep.PQLookups)).
			End()
		return m, rep, nil
	}
	st.errors.Add(1)
	r.reg.Counter(obs.L(MetricShardErrors, "shard", strconv.Itoa(i))).Inc()
	sp.Annotate("error", err.Error())
	if errors.Is(err, context.DeadlineExceeded) && parent.Err() == nil {
		st.timeouts.Add(1)
		r.reg.Counter(obs.L(MetricShardTimeouts, "shard", strconv.Itoa(i))).Inc()
		sp.Annotate("timeout", "true")
	}
	sp.End()
	return nil, rep, err
}

// hedgeDelay returns when a hedge should launch for shard i, and whether
// hedging is armed at all: it needs the feature enabled and enough
// latency history for the p95 to mean something.
func (r *Router) hedgeDelay(i int) (time.Duration, bool) {
	if !r.opts.Hedge {
		return 0, false
	}
	p95, ok := r.state[i].lat.p95(r.opts.HedgeAfter)
	if !ok {
		return 0, false
	}
	if p95 < r.opts.MinHedgeDelay {
		p95 = r.opts.MinHedgeDelay
	}
	return p95, true
}

// merge folds per-shard top-k′ lists into the global top-k. Ordering is
// score descending with ties broken by ascending global relation order —
// the same comparator the single-engine ranking uses (score descending,
// relation index ascending), so for exact shards the merged ranking is
// bit-identical to the monolith's.
func (r *Router) merge(perShard [][]core.Match, k int) []core.Match {
	total := 0
	for _, ms := range perShard {
		total += len(ms)
	}
	type ranked struct {
		m     core.Match
		order int
	}
	all := make([]ranked, 0, total)
	for _, ms := range perShard {
		for _, m := range ms {
			all = append(all, ranked{m: m, order: r.opts.Order(m.RelationID)})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].m.Score != all[j].m.Score {
			return all[i].m.Score > all[j].m.Score
		}
		return all[i].order < all[j].order
	})
	if len(all) > k {
		all = all[:k]
	}
	out := make([]core.Match, len(all))
	for i, a := range all {
		out[i] = a.m
	}
	return out
}

// ShardStats is one shard's health snapshot.
type ShardStats struct {
	Shard     int     `json:"shard"`
	Relations int     `json:"relations"`
	Searches  int64   `json:"searches"`
	Errors    int64   `json:"errors"`
	Timeouts  int64   `json:"timeouts"`
	Hedges    int64   `json:"hedges"`
	P50MS     float64 `json:"p50_ms"`
	P95MS     float64 `json:"p95_ms"`
	// Segments and TombstonedRelations describe the shard's segment store
	// (populated when Options.SegmentInfo is set).
	Segments            int `json:"segments,omitempty"`
	TombstonedRelations int `json:"tombstoned_relations,omitempty"`
}

// Stats is the router's point-in-time health snapshot.
type Stats struct {
	Shards      []ShardStats `json:"shards"`
	Policy      string       `json:"policy"`
	Searches    int64        `json:"searches"`
	Degraded    int64        `json:"degraded"`
	CacheHits   int64        `json:"cache_hits"`
	CacheMisses int64        `json:"cache_misses"`
	CacheLen    int          `json:"cache_len"`
}

// Stats snapshots per-shard counters and latency quantiles.
func (r *Router) Stats() Stats {
	s := Stats{
		Policy:   r.opts.Policy.String(),
		Searches: r.searches.Load(),
		Degraded: r.degraded.Load(),
	}
	if r.cache != nil {
		s.CacheHits, s.CacheMisses = r.cache.Stats()
		s.CacheLen = r.cache.Len()
	}
	for i, st := range r.state {
		p50 := st.lat.quantile(0.50)
		p95 := st.lat.quantile(0.95)
		ss := ShardStats{
			Shard:     i,
			Relations: int(r.relCount[i].Load()),
			Searches:  st.searches.Load(),
			Errors:    st.errors.Load(),
			Timeouts:  st.timeouts.Load(),
			Hedges:    st.hedges.Load(),
			P50MS:     float64(p50) / float64(time.Millisecond),
			P95MS:     float64(p95) / float64(time.Millisecond),
		}
		if r.opts.SegmentInfo != nil {
			ss.Segments, ss.TombstonedRelations = r.opts.SegmentInfo(i)
		}
		s.Shards = append(s.Shards, ss)
	}
	return s
}

func cloneMatches(ms []core.Match) []core.Match {
	out := make([]core.Match, len(ms))
	copy(out, ms)
	return out
}
