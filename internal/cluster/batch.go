package cluster

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"semdisco/internal/core"
	"semdisco/internal/obs"
	"semdisco/internal/par"
)

// BatchShard is optionally implemented by shards that can answer a block of
// queries in one call (core.ExS/ANNS/CTS do, via SearchEncodedBatch). The
// router's SearchBatch uses it to fan one batched request out per shard —
// one deadline and one hedge decision per shard for the whole block —
// falling back to per-query SearchEncoded calls on shards without it.
type BatchShard interface {
	SearchEncodedBatch(ctx context.Context, qs [][]float32, ks []int, costs []*obs.Cost) ([][]core.Match, error)
}

// BatchQuery is one item of a batched federated search.
type BatchQuery struct {
	Query string
	K     int
}

// SearchBatch answers a block of queries with one scatter-gather: the
// router checks the result cache per item, encodes each distinct remaining
// query string once, sends the whole encoded block to every shard in a
// single fan-out (per-shard deadline and hedging decided once per shard,
// not once per query), merges per item, and deduplicates identical
// (query, k) items inside the batch so repeated requests ride one slot.
//
// The returned slice has one Result per item, in input order. Per-item
// semantics match Search: an item with K ≤ 0 yields an empty Result, a
// failed shard degrades every non-cached item, and only the parent
// context expiring (or every shard failing) turns into an error for the
// whole batch.
func (r *Router) SearchBatch(ctx context.Context, items []BatchQuery) ([]*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	results := make([]*Result, len(items))

	// Per-item cache check and in-batch (query, k) dedup: slots lists the
	// distinct uncached items that actually scatter; dupOf maps each item
	// to its slot.
	type slotKey = cacheKey
	slotOf := make(map[slotKey]int)
	dupOf := make([]int, len(items))
	var slots []int // item index owning each slot
	for i, it := range items {
		dupOf[i] = -1
		if it.K <= 0 {
			results[i] = &Result{}
			continue
		}
		key := slotKey{query: it.Query, k: it.K}
		if res, ok := r.cacheLookup(ctx, key, start); ok {
			results[i] = res
			continue
		}
		if s, ok := slotOf[key]; ok {
			dupOf[i] = s
			continue
		}
		slotOf[key] = len(slots)
		dupOf[i] = len(slots)
		slots = append(slots, i)
	}
	if len(slots) == 0 {
		return results, nil
	}

	// Encode each distinct query string once; duplicate strings under
	// different k share the vector.
	encoded := make(map[string][]float32, len(slots))
	qs := make([][]float32, len(slots))
	ks := make([]int, len(slots))
	kPrimes := make([]int, len(slots))
	for s, i := range slots {
		q, ok := encoded[items[i].Query]
		if !ok {
			q = r.opts.Encode(items[i].Query)
			encoded[items[i].Query] = q
		}
		qs[s] = q
		ks[s] = items[i].K
		kPrimes[s] = items[i].K + r.opts.Slack
	}

	n := len(r.shards)
	type shardOut struct {
		matches [][]core.Match
		costs   []obs.CostReport
		err     error
		hedged  bool
	}
	outs := make([]shardOut, n)
	par.Each(n, n, func(i int) {
		outs[i].matches, outs[i].costs, outs[i].err, outs[i].hedged = r.searchShardBatch(ctx, i, qs, kPrimes)
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var shardErrs []ShardError
	healthy := 0
	for i := range outs {
		if outs[i].err != nil {
			shardErrs = append(shardErrs, ShardError{Shard: i, Err: outs[i].err})
			continue
		}
		healthy++
	}
	if healthy == 0 {
		return nil, fmt.Errorf("cluster: all %d shards failed: %w", n, shardErrs[0])
	}
	degraded := len(shardErrs) > 0

	// Merge per slot, then fan results out to the slot's items.
	r.reg.Counter(MetricBatchSearches).Inc()
	for s, owner := range slots {
		perShard := make([][]core.Match, 0, n)
		res := &Result{
			Degraded:    degraded,
			ShardErrors: shardErrs,
			ShardCosts:  make([]obs.CostReport, n),
		}
		for i := range outs {
			if outs[i].err != nil {
				continue
			}
			res.ShardCosts[i] = outs[i].costs[s]
			res.Cost.Add(outs[i].costs[s])
			if outs[i].hedged {
				res.Hedged++
			}
			perShard = append(perShard, outs[i].matches[s])
		}
		res.Matches = r.merge(perShard, ks[s])
		obs.CostFrom(ctx).AddReport(res.Cost)
		results[owner] = res
		r.searches.Add(1)
		r.reg.Counter(MetricSearches).Inc()
		r.reg.Counter(MetricBatchQueries).Inc()
		if degraded {
			r.degraded.Add(1)
			r.reg.Counter(MetricDegraded).Inc()
		} else if r.cache != nil {
			r.cache.Put(cacheKey{query: items[owner].Query, k: ks[s]}, cloneMatches(res.Matches))
		}
	}
	r.reg.Histogram(MetricSearchSeconds).Observe(time.Since(start))

	// In-batch duplicates share their slot's answer, marked Coalesced with
	// no cost of their own — the slot owner's Result carries the work.
	for i := range items {
		if results[i] != nil {
			continue
		}
		src := results[slots[dupOf[i]]]
		dup := *src
		dup.Matches = cloneMatches(src.Matches)
		dup.Coalesced = true
		dup.Cost = obs.CostReport{}
		dup.ShardCosts = nil
		results[i] = &dup
		r.reg.Counter(MetricCoalesced).Inc()
		r.searches.Add(1)
		r.reg.Counter(MetricSearches).Inc()
		r.reg.Counter(MetricBatchQueries).Inc()
	}
	return results, nil
}

// searchShardBatch runs one shard's whole block under a single per-shard
// deadline, with a single hedge decision: when the primary attempt runs
// past the shard's observed p95 (which, under batch traffic, reflects
// batch-sized attempts), one hedged retry of the whole block races it.
func (r *Router) searchShardBatch(ctx context.Context, i int, qs [][]float32, ks []int) ([][]core.Match, []obs.CostReport, error, bool) {
	sctx := ctx
	if r.opts.ShardTimeout > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(ctx, r.opts.ShardTimeout)
		defer cancel()
	}
	delay, hedge := r.hedgeDelay(i)
	if !hedge {
		m, costs, err := r.runShardBatch(sctx, ctx, i, qs, ks, "primary")
		return m, costs, err, false
	}

	type outcome struct {
		matches [][]core.Match
		costs   []obs.CostReport
		err     error
		isHedge bool
	}
	ch := make(chan outcome, 2) // buffered: the loser never blocks or leaks
	launch := func(isHedge bool) {
		attempt := "primary"
		if isHedge {
			attempt = "hedge"
		}
		go func() {
			m, costs, err := r.runShardBatch(sctx, ctx, i, qs, ks, attempt)
			ch <- outcome{m, costs, err, isHedge}
		}()
	}
	launch(false)
	timer := time.NewTimer(delay)
	defer timer.Stop()

	hedged := false
	var first outcome
	select {
	case first = <-ch:
	case <-timer.C:
		hedged = true
		r.state[i].hedges.Add(1)
		r.reg.Counter(MetricHedges).Inc()
		launch(true)
		first = <-ch
	}
	if first.err == nil {
		if first.isHedge {
			r.reg.Counter(MetricHedgeWins).Inc()
		}
		return first.matches, first.costs, nil, hedged
	}
	if hedged {
		if second := <-ch; second.err == nil {
			if second.isHedge {
				r.reg.Counter(MetricHedgeWins).Inc()
			}
			return second.matches, second.costs, nil, hedged
		}
	}
	return nil, first.costs, first.err, hedged
}

// runShardBatch executes one batched shard attempt: the BatchShard fast
// path when the shard supports it, a per-query fallback loop otherwise.
// Per-query costs are collected either way.
func (r *Router) runShardBatch(sctx, parent context.Context, i int, qs [][]float32, ks []int, attempt string) ([][]core.Match, []obs.CostReport, error) {
	st := r.state[i]
	st.searches.Add(1)
	r.opts.Workload.RecordShard(i)
	costs := make([]*obs.Cost, len(qs))
	for j := range costs {
		costs[j] = &obs.Cost{}
	}
	start := time.Now()
	var (
		ms  [][]core.Match
		err error
	)
	if bs, ok := r.shards[i].(BatchShard); ok {
		ms, err = bs.SearchEncodedBatch(sctx, qs, ks, costs)
	} else {
		ms = make([][]core.Match, len(qs))
		for j := range qs {
			ms[j], err = r.shards[i].SearchEncoded(obs.ContextWithCost(sctx, costs[j]), qs[j], ks[j])
			if err != nil {
				break
			}
		}
	}
	d := time.Since(start)
	reps := make([]obs.CostReport, len(costs))
	for j, c := range costs {
		reps[j] = c.Report()
	}
	r.reg.Histogram(obs.L(MetricShardSearchSeconds, "shard", strconv.Itoa(i))).Observe(d)
	if err == nil {
		st.lat.record(d)
		return ms, reps, nil
	}
	st.errors.Add(1)
	r.reg.Counter(obs.L(MetricShardErrors, "shard", strconv.Itoa(i))).Inc()
	if errors.Is(err, context.DeadlineExceeded) && parent.Err() == nil {
		st.timeouts.Add(1)
		r.reg.Counter(obs.L(MetricShardTimeouts, "shard", strconv.Itoa(i))).Inc()
	}
	return nil, reps, err
}
