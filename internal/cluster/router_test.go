package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"semdisco/internal/core"
	"semdisco/internal/obs"
)

// stubShard answers from a fixed match list, optionally failing or
// blocking until the context dies. delay, if set, sleeps before answering
// (still honoring ctx).
type stubShard struct {
	matches []core.Match
	err     error
	delay   time.Duration
	block   bool // ignore delay; wait for ctx and return its error

	mu    sync.Mutex
	calls int
}

func (s *stubShard) SearchEncoded(ctx context.Context, q []float32, k int) ([]core.Match, error) {
	s.mu.Lock()
	s.calls++
	s.mu.Unlock()
	if s.block {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	if s.delay > 0 {
		select {
		case <-time.After(s.delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if s.err != nil {
		return nil, s.err
	}
	if k > len(s.matches) {
		k = len(s.matches)
	}
	out := make([]core.Match, k)
	copy(out, s.matches[:k])
	return out, nil
}

func (s *stubShard) callCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

// testOrder maps "rel-<i>" back to i for merge tie-breaking.
func testOrder(id string) int {
	var i int
	fmt.Sscanf(id, "rel-%d", &i)
	return i
}

func testOpts() Options {
	return Options{
		Encode: func(q string) []float32 { return []float32{1} },
		Order:  testOrder,
	}
}

func mustRouter(t *testing.T, shards []Shard, opts Options) *Router {
	t.Helper()
	counts := make([]int, len(shards))
	r, err := NewRouter(shards, counts, opts)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	return r
}

func m(i int, score float32) core.Match {
	return core.Match{RelationID: fmt.Sprintf("rel-%d", i), Score: score}
}

func TestMergeOrderAndTieBreak(t *testing.T) {
	// Scores collide across shards; ties must break by global order
	// (ascending relation index), interleaving the shards' lists exactly
	// as a single engine would rank them.
	shards := []Shard{
		&stubShard{matches: []core.Match{m(0, 0.9), m(2, 0.5), m(4, 0.5)}},
		&stubShard{matches: []core.Match{m(1, 0.9), m(3, 0.5), m(5, 0.1)}},
	}
	r := mustRouter(t, shards, testOpts())
	res, err := r.Search(context.Background(), "q", 5)
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if res.Degraded {
		t.Fatal("unexpected degradation")
	}
	want := []core.Match{m(0, 0.9), m(1, 0.9), m(2, 0.5), m(3, 0.5), m(4, 0.5)}
	if len(res.Matches) != len(want) {
		t.Fatalf("got %d matches, want %d", len(res.Matches), len(want))
	}
	for i := range want {
		if res.Matches[i] != want[i] {
			t.Errorf("match %d = %+v, want %+v", i, res.Matches[i], want[i])
		}
	}
}

func TestDegradationWithinDeadline(t *testing.T) {
	// One shard never answers; the per-shard deadline must cut it off and
	// the query must come back degraded with the healthy shard's results,
	// well before the parent context's much larger deadline.
	healthy := &stubShard{matches: []core.Match{m(0, 0.9), m(1, 0.8)}}
	stuck := &stubShard{block: true}
	opts := testOpts()
	opts.ShardTimeout = 50 * time.Millisecond
	r := mustRouter(t, []Shard{healthy, stuck}, opts)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	res, err := r.Search(ctx, "q", 2)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("degraded search took %v; the shard deadline did not fire", elapsed)
	}
	if !res.Degraded {
		t.Fatal("want Degraded=true")
	}
	if len(res.ShardErrors) != 1 || res.ShardErrors[0].Shard != 1 {
		t.Fatalf("shard errors = %+v, want shard 1", res.ShardErrors)
	}
	if !errors.Is(res.ShardErrors[0].Err, context.DeadlineExceeded) {
		t.Fatalf("shard error = %v, want deadline exceeded", res.ShardErrors[0].Err)
	}
	if len(res.Matches) != 2 || res.Matches[0] != m(0, 0.9) {
		t.Fatalf("matches = %+v, want healthy shard's results", res.Matches)
	}
	st := r.Stats()
	if st.Shards[1].Timeouts != 1 {
		t.Errorf("shard 1 timeouts = %d, want 1", st.Shards[1].Timeouts)
	}
	if st.Degraded != 1 {
		t.Errorf("degraded counter = %d, want 1", st.Degraded)
	}
}

func TestAllShardsFailed(t *testing.T) {
	boom := errors.New("boom")
	r := mustRouter(t, []Shard{&stubShard{err: boom}, &stubShard{err: boom}}, testOpts())
	_, err := r.Search(context.Background(), "q", 3)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("want wrapped shard error, got %v", err)
	}
}

func TestParentContextCancelled(t *testing.T) {
	r := mustRouter(t, []Shard{&stubShard{matches: []core.Match{m(0, 1)}}}, testOpts())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := r.Search(ctx, "q", 3)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestHedging(t *testing.T) {
	// Warm the latency window with fast queries, then make the shard slow:
	// a hedge must launch after the (floored) p95 and its result must win.
	slow := &stubShard{matches: []core.Match{m(0, 1)}}
	opts := testOpts()
	opts.Hedge = true
	opts.HedgeAfter = 4
	opts.MinHedgeDelay = 5 * time.Millisecond
	opts.CacheSize = 0
	reg := obs.NewRegistry()
	opts.Registry = reg
	r := mustRouter(t, []Shard{slow}, opts)

	for i := 0; i < 4; i++ {
		if _, err := r.Search(context.Background(), fmt.Sprintf("warm-%d", i), 1); err != nil {
			t.Fatalf("warm search: %v", err)
		}
	}
	slow.delay = 200 * time.Millisecond
	// The hedge is equally slow, but it must at least fire.
	res, err := r.Search(context.Background(), "slow", 1)
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if res.Hedged != 1 {
		t.Fatalf("hedged = %d, want 1", res.Hedged)
	}
	if slow.callCount() != 4+2 {
		t.Fatalf("shard saw %d calls, want 6 (4 warm + primary + hedge)", slow.callCount())
	}
	snap := reg.Snapshot()
	if snap.Counters[MetricHedges] != 1 {
		t.Errorf("hedge counter = %d, want 1", snap.Counters[MetricHedges])
	}
	if r.Stats().Shards[0].Hedges != 1 {
		t.Errorf("shard hedge stat = %d, want 1", r.Stats().Shards[0].Hedges)
	}
}

func TestCacheHitAndInvalidation(t *testing.T) {
	shard := &stubShard{matches: []core.Match{m(0, 1), m(1, 0.5)}}
	opts := testOpts()
	opts.CacheSize = 8
	reg := obs.NewRegistry()
	opts.Registry = reg
	r := mustRouter(t, []Shard{shard}, opts)

	first, err := r.Search(context.Background(), "q", 2)
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if first.CacheHit {
		t.Fatal("first search must miss")
	}
	second, err := r.Search(context.Background(), "q", 2)
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if !second.CacheHit {
		t.Fatal("second search must hit the cache")
	}
	if shard.callCount() != 1 {
		t.Fatalf("shard saw %d calls, want 1 (second served from cache)", shard.callCount())
	}
	// Mutating the cached slice must not corrupt the cache.
	second.Matches[0].Score = -1
	third, _ := r.Search(context.Background(), "q", 2)
	if third.Matches[0].Score != 1 {
		t.Fatal("cache returned aliased slice")
	}
	// A different k is a different answer.
	if res, _ := r.Search(context.Background(), "q", 1); res.CacheHit {
		t.Fatal("k=1 must not hit the k=2 entry")
	}

	// Adding a relation invalidates everything.
	r.NoteAdd(0)
	after, err := r.Search(context.Background(), "q", 2)
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if after.CacheHit {
		t.Fatal("cache must be purged after NoteAdd")
	}
	hits, misses := reg.Snapshot().Counters[MetricCacheHits], reg.Snapshot().Counters[MetricCacheMisses]
	if hits < 2 || misses < 2 {
		t.Errorf("cache counters hits=%d misses=%d; want >=2 each", hits, misses)
	}
}

func TestCachePurgedOnDeleteAndUpdate(t *testing.T) {
	shard := &stubShard{matches: []core.Match{m(0, 1), m(1, 0.5)}}
	opts := testOpts()
	opts.CacheSize = 8
	r := mustRouter(t, []Shard{shard}, opts)

	note := map[string]func(){
		"NoteDelete": func() { r.NoteDelete(0) },
		"NoteUpdate": func() { r.NoteUpdate(0) },
	}
	for name, fence := range note {
		if _, err := r.Search(context.Background(), "q", 2); err != nil {
			t.Fatalf("%s warmup: %v", name, err)
		}
		if res, _ := r.Search(context.Background(), "q", 2); !res.CacheHit {
			t.Fatalf("%s: warmup did not cache", name)
		}
		fence()
		res, err := r.Search(context.Background(), "q", 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.CacheHit {
			t.Fatalf("cache must be purged after %s", name)
		}
	}
}

// TestMutationFencesInflightScatter: a scatter that started before a
// mutation must neither populate the result cache with its pre-mutation
// ranking nor serve as a coalescing leader for post-mutation followers.
func TestMutationFencesInflightScatter(t *testing.T) {
	shard := &stubShard{matches: []core.Match{m(0, 1)}, delay: 100 * time.Millisecond}
	opts := testOpts()
	opts.CacheSize = 8
	r := mustRouter(t, []Shard{shard}, opts)

	done := make(chan error, 1)
	go func() {
		_, err := r.Search(context.Background(), "q", 1)
		done <- err
	}()
	// Let the leader's scatter get in flight, then mutate.
	time.Sleep(20 * time.Millisecond)
	r.NoteDelete(0)

	// A follower arriving after the mutation must not ride the stale
	// leader: it scatters on its own.
	if _, err := r.Search(context.Background(), "q", 1); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if c := shard.callCount(); c != 2 {
		t.Fatalf("shard calls = %d, want 2 (follower must bypass a pre-mutation leader)", c)
	}
	// Neither scatter may have cached a ranking that predates... the leader
	// started pre-mutation, the follower post-mutation: only the follower's
	// answer is cacheable.
	res, err := r.Search(context.Background(), "q", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatal("post-mutation scatter should have repopulated the cache")
	}
	if c := shard.callCount(); c != 2 {
		t.Fatalf("shard calls = %d after cached search, want 2", c)
	}
}

func TestDegradedResultNotCached(t *testing.T) {
	healthy := &stubShard{matches: []core.Match{m(0, 1)}}
	failing := &stubShard{err: errors.New("down")}
	opts := testOpts()
	opts.CacheSize = 4
	r := mustRouter(t, []Shard{healthy, failing}, opts)

	res, err := r.Search(context.Background(), "q", 1)
	if err != nil || !res.Degraded {
		t.Fatalf("want degraded success, got %+v, %v", res, err)
	}
	res2, err := r.Search(context.Background(), "q", 1)
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if res2.CacheHit {
		t.Fatal("degraded result must not be served from cache")
	}
}

func TestRoutePolicies(t *testing.T) {
	shards := []Shard{&stubShard{}, &stubShard{}, &stubShard{}}
	hash := mustRouter(t, shards, testOpts())
	for _, id := range []string{"a", "b", "rel-42", "customers"} {
		want := HashShard(id, 3)
		if got := hash.Route(id); got != want {
			t.Errorf("hash route(%q) = %d, want %d", id, got, want)
		}
		if got := hash.Route(id); got != want {
			t.Errorf("hash route(%q) unstable", id)
		}
	}

	opts := testOpts()
	opts.Policy = PolicyRoundRobin
	rr, err := NewRouter(shards, []int{2, 0, 1}, opts)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	// Smallest shard first, ties to the lowest index.
	if got := rr.Route("x"); got != 1 {
		t.Fatalf("rr route = %d, want 1 (smallest shard)", got)
	}
	rr.NoteAdd(1)
	if got := rr.Route("y"); got != 1 {
		t.Fatalf("rr route = %d, want 1 (tied smallest, lowest index)", got)
	}
	rr.NoteAdd(1)
	if got := rr.Route("z"); got != 2 {
		t.Fatalf("rr route = %d, want 2", got)
	}
}

func TestConcurrentSearch(t *testing.T) {
	shards := []Shard{
		&stubShard{matches: []core.Match{m(0, 0.9), m(2, 0.7)}},
		&stubShard{matches: []core.Match{m(1, 0.8), m(3, 0.6)}},
	}
	opts := testOpts()
	opts.CacheSize = 16
	opts.Hedge = true
	opts.HedgeAfter = 2
	opts.ShardTimeout = time.Second
	r := mustRouter(t, shards, opts)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				q := fmt.Sprintf("q-%d", (w+i)%4)
				res, err := r.Search(context.Background(), q, 3)
				if err != nil {
					t.Errorf("search: %v", err)
					return
				}
				if len(res.Matches) != 3 {
					t.Errorf("got %d matches, want 3", len(res.Matches))
					return
				}
				if i%17 == 0 {
					r.NoteAdd(r.Route(fmt.Sprintf("rel-new-%d-%d", w, i)))
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Stats().Searches; got != 8*50 {
		t.Errorf("searches = %d, want %d", got, 8*50)
	}
}

func TestNewRouterValidation(t *testing.T) {
	shard := []Shard{&stubShard{}}
	if _, err := NewRouter(nil, nil, testOpts()); err == nil {
		t.Error("want error for zero shards")
	}
	if _, err := NewRouter(shard, []int{1, 2}, testOpts()); err == nil {
		t.Error("want error for count mismatch")
	}
	o := testOpts()
	o.Encode = nil
	if _, err := NewRouter(shard, []int{0}, o); err == nil {
		t.Error("want error for missing Encode")
	}
	o = testOpts()
	o.Order = nil
	if _, err := NewRouter(shard, []int{0}, o); err == nil {
		t.Error("want error for missing Order")
	}
}

func TestSearchTracedSpanTree(t *testing.T) {
	// The acceptance scenario for the tracing subsystem: a 4-shard query
	// where two shards answer promptly, one is slow enough that its hedge
	// launches, and one rides into its per-shard deadline. The recorded
	// span tree must tell the whole story — root → encode/scatter/merge,
	// one shard child per attempt under scatter with the hedge and the
	// timeout annotated, and every parent link correct.
	fast0 := &stubShard{matches: []core.Match{m(0, 0.9)}}
	fast1 := &stubShard{matches: []core.Match{m(1, 0.8)}}
	slow := &stubShard{matches: []core.Match{m(2, 0.7)}}
	stuck := &stubShard{matches: []core.Match{m(3, 0.6)}}
	opts := testOpts()
	opts.Hedge = true
	opts.HedgeAfter = 4
	opts.MinHedgeDelay = 5 * time.Millisecond
	opts.ShardTimeout = 250 * time.Millisecond
	opts.CacheSize = 0
	r := mustRouter(t, []Shard{fast0, fast1, slow, stuck}, opts)

	// Warm every shard's latency window so the hedge delay is the floored
	// MinHedgeDelay, then degrade shards 2 and 3.
	for i := 0; i < 4; i++ {
		if _, err := r.Search(context.Background(), fmt.Sprintf("warm-%d", i), 1); err != nil {
			t.Fatalf("warm search: %v", err)
		}
	}
	slow.delay = 100 * time.Millisecond
	stuck.block = true

	tr := obs.NewTrace()
	root := tr.StartRoot("cluster_search")
	res, err := r.SearchTraced(context.Background(), "q", 4, tr)
	root.End()
	if err != nil {
		t.Fatalf("SearchTraced: %v", err)
	}
	if !res.Degraded {
		t.Error("want Degraded=true with a timed-out shard")
	}
	if res.Hedged < 1 {
		t.Errorf("hedged = %d, want at least 1", res.Hedged)
	}
	if len(res.ShardErrors) != 1 || res.ShardErrors[0].Shard != 3 {
		t.Fatalf("shard errors = %+v, want shard 3 only", res.ShardErrors)
	}
	if !errors.Is(res.ShardErrors[0].Err, context.DeadlineExceeded) {
		t.Fatalf("shard 3 error = %v, want deadline exceeded", res.ShardErrors[0].Err)
	}
	if len(res.Matches) != 3 {
		t.Fatalf("matches = %+v, want the 3 healthy shards' results", res.Matches)
	}

	spans := tr.Spans()
	byName := make(map[string]obs.SpanRecord)
	var shardSpans []obs.SpanRecord
	for _, sp := range spans {
		if sp.Name == "shard" {
			shardSpans = append(shardSpans, sp)
		} else {
			byName[sp.Name] = sp
		}
	}
	rootRec, ok := byName["cluster_search"]
	if !ok {
		t.Fatal("root span not recorded")
	}
	if !rootRec.Parent.IsZero() {
		t.Errorf("root span has parent %s, want none", rootRec.Parent)
	}
	for _, name := range []string{"encode", "scatter", "merge"} {
		sp, ok := byName[name]
		if !ok {
			t.Fatalf("stage span %q not recorded", name)
		}
		if sp.Parent != rootRec.SpanID {
			t.Errorf("%s parent = %s, want root %s", name, sp.Parent, rootRec.SpanID)
		}
	}
	scatter := byName["scatter"]
	if scatter.Annotations["shards"] != "4" {
		t.Errorf("scatter shards annotation = %q, want 4", scatter.Annotations["shards"])
	}
	if byName["merge"].Annotations["matches"] != "3" {
		t.Errorf("merge matches annotation = %q, want 3", byName["merge"].Annotations["matches"])
	}

	// Per-shard attempts: shards 0 and 1 one primary each; shard 3 a
	// primary and a hedge, both timed out. (Shard 2's winning attempt is
	// always recorded; its losing twin may land late, so it is not
	// counted on.)
	attempts := make(map[string][]obs.SpanRecord) // "shard/attempt" -> spans
	for _, sp := range shardSpans {
		if sp.Parent != scatter.SpanID {
			t.Errorf("shard span parent = %s, want scatter %s", sp.Parent, scatter.SpanID)
		}
		key := sp.Annotations["shard"] + "/" + sp.Annotations["attempt"]
		attempts[key] = append(attempts[key], sp)
	}
	for _, key := range []string{"0/primary", "1/primary", "3/primary", "3/hedge"} {
		if len(attempts[key]) != 1 {
			t.Errorf("attempt %s recorded %d spans, want 1", key, len(attempts[key]))
		}
	}
	for _, key := range []string{"3/primary", "3/hedge"} {
		for _, sp := range attempts[key] {
			if sp.Annotations["timeout"] != "true" {
				t.Errorf("%s span missing timeout annotation: %v", key, sp.Annotations)
			}
			if sp.Annotations["error"] == "" {
				t.Errorf("%s span missing error annotation", key)
			}
		}
	}
	if len(attempts["2/primary"])+len(attempts["2/hedge"]) < 1 {
		t.Error("slow shard recorded no attempt spans")
	}
}
