package vectordb

// Point is one stored entry as returned by Scroll.
type Point struct {
	ID      uint64
	Payload map[string]string
}

// Scroll returns up to limit live points with id ≥ from, in ascending id
// order — the standard cursor-pagination API (Qdrant calls this scroll).
// Start with from = 0; to continue, pass lastReturnedID + 1. A nil filter
// accepts everything.
func (c *Collection) Scroll(from uint64, limit int, filter Filter) []Point {
	if limit <= 0 {
		return nil
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Point, 0, limit)
	// ids are assigned in ascending order and never reused, so slot order
	// is id order.
	for slot, id := range c.ids {
		if id < from {
			continue
		}
		s := int32(slot)
		if _, dead := c.deleted[s]; dead {
			continue
		}
		if filter != nil && !filter(c.payloads[s]) {
			continue
		}
		out = append(out, Point{ID: id, Payload: clonePayload(c.payloads[s])})
		if len(out) == limit {
			break
		}
	}
	return out
}

// Count returns the number of live points accepted by filter (all live
// points when filter is nil).
func (c *Collection) Count(filter Filter) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if filter == nil {
		return len(c.ids) - len(c.deleted)
	}
	n := 0
	for slot := range c.ids {
		s := int32(slot)
		if _, dead := c.deleted[s]; dead {
			continue
		}
		if filter(c.payloads[s]) {
			n++
		}
	}
	return n
}
