package vectordb

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"semdisco/internal/hnsw"
	"semdisco/internal/obs"
	"semdisco/internal/par"
	"semdisco/internal/pq"
	"semdisco/internal/vec"
)

// Metric selects how similarity is computed. Scores returned by Search are
// always "higher is better".
type Metric uint8

const (
	// Cosine scores by cosine similarity; vectors are normalized on insert.
	// This is the paper's metric.
	Cosine Metric = iota
	// L2 scores by negative squared Euclidean distance.
	L2
	// Dot scores by inner product without normalization.
	Dot
)

func (m Metric) String() string {
	switch m {
	case Cosine:
		return "cosine"
	case L2:
		return "l2"
	case Dot:
		return "dot"
	default:
		return fmt.Sprintf("metric(%d)", uint8(m))
	}
}

// PQConfig enables Product-Quantization compression of stored vectors.
type PQConfig struct {
	// M is the number of subspaces (0 = dim/8, see pq.Config).
	M int
	// K is centroids per subspace (0 = 256).
	K int
	// TrainSize is how many vectors accumulate before the codebooks are
	// trained and raw storage is dropped. Defaults to 256.
	TrainSize int
}

// CollectionConfig parameterizes a collection.
type CollectionConfig struct {
	// Dim is the vector dimensionality; required.
	Dim int
	// Metric defaults to Cosine.
	Metric Metric
	// M and EfConstruction tune the HNSW index (see hnsw.Config).
	M, EfConstruction int
	// EfSearch is the default search beam width; defaults to 64.
	EfSearch int
	// Seed makes index construction deterministic.
	Seed int64
	// PQ, when non-nil, compresses vectors once TrainSize points arrived.
	PQ *PQConfig
	// Workers bounds the parallelism of InsertBatch and PQ training. 0 or 1
	// runs serially; batch inserts are then bit-identical to the equivalent
	// sequence of Insert calls. With 2+ workers the HNSW graph shape depends
	// on insert interleaving (quality is asserted by the graph stats probe),
	// while PQ codebooks and codes stay worker-count-invariant.
	Workers int
}

// Result is one search hit.
type Result struct {
	ID      uint64
	Score   float32
	Payload map[string]string
}

// Filter restricts a search to points whose payload it accepts.
type Filter func(payload map[string]string) bool

// FieldEquals returns a filter accepting points whose payload maps key to
// value.
func FieldEquals(key, value string) Filter {
	return func(p map[string]string) bool { return p[key] == value }
}

// FieldIn returns a filter accepting points whose payload value for key is
// any of values.
func FieldIn(key string, values ...string) Filter {
	set := make(map[string]struct{}, len(values))
	for _, v := range values {
		set[v] = struct{}{}
	}
	return func(p map[string]string) bool {
		_, ok := set[p[key]]
		return ok
	}
}

// Collection stores vectors with payloads under one index.
type Collection struct {
	cfg CollectionConfig

	mu       sync.RWMutex
	ids      []uint64
	byID     map[uint64]int32
	vectors  [][]float32 // raw vectors; nil entries once PQ takes over
	codes    [][]byte    // PQ codes; nil until trained
	payloads []map[string]string
	deleted  map[int32]struct{}

	index     *hnsw.Index
	quantizer *pq.Quantizer
	sdc       *pq.SDC
	nextID    uint64

	// Observability hooks, resolved once by SetObserver so the insert path
	// never does a registry lookup. Nil hooks are no-ops.
	obsInserts *obs.Counter
	obsPQTrain *obs.Gauge
}

// SetObserver wires the collection's build instrumentation into a metrics
// registry: insert counts and Product-Quantization training time. A nil
// registry (or never calling SetObserver) keeps instrumentation off.
func (c *Collection) SetObserver(reg *obs.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.obsInserts = reg.Counter("semdisco_index_inserts_total")
	c.obsPQTrain = reg.Gauge(obs.L("semdisco_index_build_seconds", "phase", "pq_train"))
}

func newCollection(cfg CollectionConfig) (*Collection, error) {
	if cfg.Dim <= 0 {
		return nil, errors.New("vectordb: Dim must be positive")
	}
	if cfg.EfSearch == 0 {
		cfg.EfSearch = 64
	}
	if cfg.PQ != nil && cfg.PQ.TrainSize == 0 {
		cfg.PQ.TrainSize = 256
	}
	c := &Collection{
		cfg:     cfg,
		byID:    make(map[uint64]int32),
		deleted: make(map[int32]struct{}),
	}
	c.index = hnsw.New(hnsw.Config{M: cfg.M, EfConstruction: cfg.EfConstruction, Seed: cfg.Seed}, c.itemDist)
	return c, nil
}

// itemDist is the construction-time distance between stored items.
func (c *Collection) itemDist(a, b int32) float32 {
	if c.codes != nil && c.codes[a] != nil && c.codes[b] != nil {
		return c.sdc.Dist(c.codes[a], c.codes[b])
	}
	va, vb := c.vectorOf(a), c.vectorOf(b)
	switch c.cfg.Metric {
	case Dot:
		return -vec.Dot(va, vb)
	case Cosine:
		return 1 - vec.Dot(va, vb) // vectors are unit-normalized on insert
	default:
		return vec.L2Sq(va, vb)
	}
}

func (c *Collection) vectorOf(slot int32) []float32 {
	if v := c.vectors[slot]; v != nil {
		return v
	}
	return c.quantizer.Decode(c.codes[slot])
}

// Len returns the number of live points.
func (c *Collection) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.ids) - len(c.deleted)
}

// Dim returns the configured dimensionality.
func (c *Collection) Dim() int { return c.cfg.Dim }

// Insert adds a vector with payload and returns its assigned id.
// The vector is copied (and normalized under the Cosine metric).
func (c *Collection) Insert(vector []float32, payload map[string]string) (uint64, error) {
	if len(vector) != c.cfg.Dim {
		return 0, fmt.Errorf("vectordb: vector dim %d, want %d", len(vector), c.cfg.Dim)
	}
	v := vec.Clone(vector)
	if c.cfg.Metric == Cosine {
		vec.Normalize(v)
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	id := c.nextID
	c.nextID++
	c.ids = append(c.ids, id)
	c.payloads = append(c.payloads, clonePayload(payload))

	if c.quantizer != nil {
		c.vectors = append(c.vectors, nil)
		c.codes = append(c.codes, c.quantizer.Encode(v))
	} else {
		c.vectors = append(c.vectors, v)
		if c.codes != nil {
			c.codes = append(c.codes, nil)
		}
		if c.cfg.PQ != nil && len(c.vectors) >= c.cfg.PQ.TrainSize {
			if err := c.trainPQLocked(); err != nil {
				return 0, err
			}
		}
	}
	slot := c.index.Add()
	c.byID[id] = slot
	c.obsInserts.Inc()
	return id, nil
}

// InsertBatch adds many vectors at once and returns their assigned ids in
// input order. payloads may be nil, or must have one entry per vector.
//
// It is semantically the same as calling Insert per vector — PQ training
// still triggers on exactly the first TrainSize stored vectors, and graph
// edges created before training use raw distances while later ones use the
// SDC tables, exactly as the incremental path does. With cfg.Workers 0 or
// 1 the resulting collection is bit-identical to the Insert loop; with 2+
// workers the clone/normalize and PQ-encode steps shard across workers and
// the HNSW inserts run concurrently.
func (c *Collection) InsertBatch(vectors [][]float32, payloads []map[string]string) ([]uint64, error) {
	if payloads != nil && len(payloads) != len(vectors) {
		return nil, fmt.Errorf("vectordb: %d payloads for %d vectors", len(payloads), len(vectors))
	}
	for i, v := range vectors {
		if len(v) != c.cfg.Dim {
			return nil, fmt.Errorf("vectordb: vector %d dim %d, want %d", i, len(v), c.cfg.Dim)
		}
	}
	workers := c.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	vs := make([][]float32, len(vectors))
	pls := make([]map[string]string, len(vectors))
	par.For(len(vectors), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v := vec.Clone(vectors[i])
			if c.cfg.Metric == Cosine {
				vec.Normalize(v)
			}
			vs[i] = v
			if payloads != nil {
				pls[i] = clonePayload(payloads[i])
			}
		}
	})

	c.mu.Lock()
	defer c.mu.Unlock()

	startSlot := len(c.ids)
	ids := make([]uint64, len(vs))

	// encodePendingLocked fills the codes of rows appended after the
	// quantizer existed (left nil by the append loop). Encode is pure, so
	// sharding it does not change the bytes.
	encodePendingLocked := func() {
		if c.quantizer == nil {
			return
		}
		lo := c.index.Len()
		par.For(len(c.ids)-lo, workers, func(a, b int) {
			for off := a; off < b; off++ {
				slot := lo + off
				if c.codes[slot] == nil && c.vectors[slot] == nil {
					c.codes[slot] = c.quantizer.Encode(vs[slot-startSlot])
				}
			}
		})
	}
	// flushGraphLocked inserts every appended-but-unindexed row into the
	// HNSW graph.
	flushGraphLocked := func() {
		pending := len(c.ids) - c.index.Len()
		if pending == 0 {
			return
		}
		encodePendingLocked()
		first := c.index.AddBatch(pending, workers)
		for slot := int(first); slot < len(c.ids); slot++ {
			c.byID[c.ids[slot]] = int32(slot)
		}
	}

	for i := range vs {
		if c.quantizer == nil && c.cfg.PQ != nil && len(c.vectors)+1 >= c.cfg.PQ.TrainSize {
			// The next append triggers PQ training, which flips itemDist
			// from raw to SDC distances. Rows appended so far must enter
			// the graph first, under the distances the serial Insert loop
			// gave them.
			flushGraphLocked()
		}
		ids[i] = c.nextID
		c.nextID++
		c.ids = append(c.ids, ids[i])
		c.payloads = append(c.payloads, pls[i])
		if c.quantizer != nil {
			c.vectors = append(c.vectors, nil)
			c.codes = append(c.codes, nil) // encoded in bulk at flush time
		} else {
			c.vectors = append(c.vectors, vs[i])
			if c.codes != nil {
				c.codes = append(c.codes, nil)
			}
			if c.cfg.PQ != nil && len(c.vectors) >= c.cfg.PQ.TrainSize {
				if err := c.trainPQLocked(); err != nil {
					return nil, err
				}
			}
		}
	}
	flushGraphLocked()
	c.obsInserts.Add(int64(len(vs)))
	return ids, nil
}

// trainPQLocked trains the quantizer on the buffered raw vectors, encodes
// them, and drops raw storage. Caller holds the write lock. Training and
// encoding shard across cfg.Workers; both are worker-count-invariant, so
// the codebooks and codes match the serial run exactly.
func (c *Collection) trainPQLocked() error {
	workers := c.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	start := time.Now()
	q, err := pq.Train(c.vectors, pq.Config{M: c.cfg.PQ.M, K: c.cfg.PQ.K, Seed: c.cfg.Seed, Workers: workers})
	if err != nil {
		return fmt.Errorf("vectordb: PQ training: %w", err)
	}
	c.obsPQTrain.Add(time.Since(start).Seconds())
	c.quantizer = q
	c.sdc = q.SDCTables()
	c.codes = make([][]byte, len(c.vectors))
	par.For(len(c.vectors), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c.codes[i] = q.Encode(c.vectors[i])
			c.vectors[i] = nil
		}
	})
	return nil
}

// Delete tombstones a point. Deleting an unknown id is a no-op. The slot
// stays in the graph (as a routing waypoint) but never appears in results.
func (c *Collection) Delete(id uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if slot, ok := c.byID[id]; ok {
		c.deleted[slot] = struct{}{}
		delete(c.byID, id)
	}
}

// Get returns the payload of id.
func (c *Collection) Get(id uint64) (map[string]string, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	slot, ok := c.byID[id]
	if !ok {
		return nil, false
	}
	return clonePayload(c.payloads[slot]), true
}

// Vector returns the stored (possibly PQ-reconstructed) vector of id.
func (c *Collection) Vector(id uint64) ([]float32, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	slot, ok := c.byID[id]
	if !ok {
		return nil, false
	}
	return vec.Clone(c.vectorOf(slot)), true
}

// Search returns the k best-scoring points for the query using the HNSW
// index. ef overrides the collection's default beam width when positive.
// filter may be nil.
func (c *Collection) Search(query []float32, k, ef int, filter Filter) ([]Result, error) {
	return c.search(query, k, ef, filter, nil)
}

// SearchContext is Search with cooperative cancellation: the HNSW walk
// polls ctx between hops, so an expired deadline interrupts the search
// mid-graph instead of after it, and the context's error is returned.
// When the context carries a cost accumulator (obs.ContextWithCost), the
// walk's distance computations, ADC lookups and graph hops are accounted
// into it.
func (c *Collection) SearchContext(ctx context.Context, query []float32, k, ef int, filter Filter) ([]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cost := obs.CostFrom(ctx)
	if ctx.Done() == nil { // never cancellable: skip the per-hop polling
		return c.searchCost(query, k, ef, filter, nil, cost)
	}
	out, err := c.searchCost(query, k, ef, filter, func() bool { return ctx.Err() != nil }, cost)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func (c *Collection) search(query []float32, k, ef int, filter Filter, cancelled func() bool) ([]Result, error) {
	return c.searchCost(query, k, ef, filter, cancelled, nil)
}

func (c *Collection) searchCost(query []float32, k, ef int, filter Filter, cancelled func() bool, cost *obs.Cost) ([]Result, error) {
	if len(query) != c.cfg.Dim {
		return nil, fmt.Errorf("vectordb: query dim %d, want %d", len(query), c.cfg.Dim)
	}
	q := vec.Clone(query)
	if c.cfg.Metric == Cosine {
		vec.Normalize(q)
	}
	if ef <= 0 {
		ef = c.cfg.EfSearch
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.searchOneLocked(q, k, ef, filter, cancelled, cost, nil), nil
}

// qdCounter tallies one walk's distance computations and ADC lookups in
// plain locals; the flush after the walk pays the cost accumulator's
// atomics once, so the hot loop never sees them.
type qdCounter struct {
	dists, lookups int64
}

// countingQDLocked wraps qd to bump ctr per evaluation. Caller holds at
// least a read lock.
func (c *Collection) countingQDLocked(qd func(int32) float32, ctr *qdCounter) func(int32) float32 {
	if c.quantizer != nil {
		codes := c.codes
		return func(slot int32) float32 {
			if codes[slot] != nil {
				ctr.lookups++
			} else {
				ctr.dists++
			}
			return qd(slot)
		}
	}
	return func(slot int32) float32 {
		ctr.dists++
		return qd(slot)
	}
}

// flushCostLocked charges one walk's tallies and graph stats to cost.
// Caller holds at least a read lock.
func (c *Collection) flushCostLocked(cost *obs.Cost, ctr qdCounter, st hnsw.SearchStats) {
	cost.AddDistanceComps(ctr.dists)
	cost.AddPQLookups(ctr.lookups)
	cost.AddHNSWHops(st.Hops)
	cost.AddCandidatesGenerated(st.Candidates)
	cost.AddCandidatesPruned(st.Pruned)
	cost.AddBytesScanned(ctr.dists*int64(c.cfg.Dim)*4 + ctr.lookups*c.codeBytesLocked())
}

// searchOneLocked runs one already-normalized query through the index and
// materializes results. Caller holds at least a read lock. q must already
// be cloned/normalized per the metric. sc may be nil (per-call state).
// A nil return with no error means the walk was cancelled; the caller
// surfaces ctx.Err().
func (c *Collection) searchOneLocked(q []float32, k, ef int, filter Filter, cancelled func() bool, cost *obs.Cost, sc *hnsw.Scratch) []Result {
	qd := c.queryDistLocked(q)
	var ctr qdCounter
	if cost != nil {
		qd = c.countingQDLocked(qd, &ctr)
	}
	accept := func(slot int32) bool {
		if _, dead := c.deleted[slot]; dead {
			return false
		}
		return filter == nil || filter(c.payloads[slot])
	}
	found, done, st := c.index.SearchScratch(sc, qd, k, ef, accept, cancelled)
	if cost != nil {
		c.flushCostLocked(cost, ctr, st)
	}
	if !done {
		return nil
	}
	out := make([]Result, 0, len(found))
	for _, n := range found {
		out = append(out, Result{
			ID:      c.ids[n.ID],
			Score:   c.distToScore(n.Dist),
			Payload: clonePayload(c.payloads[n.ID]),
		})
	}
	return out
}

// SearchBatch runs a block of queries in one pass: one lock acquisition and
// one reusable HNSW scratch (visited set + heap backings) across the whole
// block, instead of per query. ks[i] and efs[i] are query i's result count
// and beam width (efs may be nil, or entries ≤ 0, for the collection
// default); a ks[i] ≤ 0 skips query i with a nil row. costs, when non-nil,
// carries one optional accumulator per query, each charged exactly the
// work its own walk performed. Results per query are identical to the
// equivalent Search calls — scratch reuse changes where the walk's
// bookkeeping lives, not which nodes it evaluates.
func (c *Collection) SearchBatch(ctx context.Context, queries [][]float32, ks, efs []int, filter Filter, costs []*obs.Cost) ([][]Result, error) {
	if len(ks) != len(queries) {
		return nil, fmt.Errorf("vectordb: %d ks for %d queries", len(ks), len(queries))
	}
	if efs != nil && len(efs) != len(queries) {
		return nil, fmt.Errorf("vectordb: %d efs for %d queries", len(efs), len(queries))
	}
	if costs != nil && len(costs) != len(queries) {
		return nil, fmt.Errorf("vectordb: %d costs for %d queries", len(costs), len(queries))
	}
	for i, q := range queries {
		if len(q) != c.cfg.Dim {
			return nil, fmt.Errorf("vectordb: query %d dim %d, want %d", i, len(q), c.cfg.Dim)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var cancelled func() bool
	if ctx.Done() != nil {
		cancelled = func() bool { return ctx.Err() != nil }
	}

	// Clone/normalize outside the lock, like the single-query path.
	qs := make([][]float32, len(queries))
	for i, q := range queries {
		v := vec.Clone(q)
		if c.cfg.Metric == Cosine {
			vec.Normalize(v)
		}
		qs[i] = v
	}

	c.mu.RLock()
	defer c.mu.RUnlock()
	sc := hnsw.NewScratch()
	out := make([][]Result, len(queries))
	for i, q := range qs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if ks[i] <= 0 {
			continue
		}
		ef := c.cfg.EfSearch
		if efs != nil && efs[i] > 0 {
			ef = efs[i]
		}
		var cost *obs.Cost
		if costs != nil {
			cost = costs[i]
		}
		out[i] = c.searchOneLocked(q, ks[i], ef, filter, cancelled, cost, sc)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// codeBytesLocked is the PQ code width in bytes, for byte accounting.
// Caller holds at least a read lock.
func (c *Collection) codeBytesLocked() int64 {
	for _, code := range c.codes {
		if code != nil {
			return int64(len(code))
		}
	}
	return 0
}

// SearchExact scans every live point; ground truth for tests and the
// exhaustive-search code path.
func (c *Collection) SearchExact(query []float32, k int, filter Filter) ([]Result, error) {
	if len(query) != c.cfg.Dim {
		return nil, fmt.Errorf("vectordb: query dim %d, want %d", len(query), c.cfg.Dim)
	}
	q := vec.Clone(query)
	if c.cfg.Metric == Cosine {
		vec.Normalize(q)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()

	qd := c.queryDistLocked(q)
	if k <= 0 {
		return nil, nil
	}
	top := vec.NewTopK(k)
	for slot := range c.ids {
		s := int32(slot)
		if _, dead := c.deleted[s]; dead {
			continue
		}
		if filter != nil && !filter(c.payloads[s]) {
			continue
		}
		top.Push(slot, -qd(s))
	}
	ranked := top.Sorted()
	out := make([]Result, 0, len(ranked))
	for _, r := range ranked {
		out = append(out, Result{
			ID:      c.ids[r.ID],
			Score:   c.distToScore(-r.Score),
			Payload: clonePayload(c.payloads[int32(r.ID)]),
		})
	}
	return out, nil
}

// queryDistLocked builds the per-query distance closure, using an ADC table
// when the collection is PQ-compressed. Caller holds at least a read lock.
func (c *Collection) queryDistLocked(q []float32) func(int32) float32 {
	if c.quantizer != nil {
		switch c.cfg.Metric {
		case Cosine, Dot:
			table := c.quantizer.DotTable(q)
			return func(slot int32) float32 {
				if code := c.codes[slot]; code != nil {
					return 1 - table.Lookup(code)
				}
				return 1 - vec.Dot(q, c.vectors[slot])
			}
		default:
			table := c.quantizer.DistTable(q)
			return func(slot int32) float32 {
				if code := c.codes[slot]; code != nil {
					return table.Lookup(code)
				}
				return vec.L2Sq(q, c.vectors[slot])
			}
		}
	}
	switch c.cfg.Metric {
	case Cosine, Dot:
		return func(slot int32) float32 { return 1 - vec.Dot(q, c.vectors[slot]) }
	default:
		return func(slot int32) float32 { return vec.L2Sq(q, c.vectors[slot]) }
	}
}

// distToScore converts internal "smaller is closer" distances back to the
// metric's natural score.
func (c *Collection) distToScore(d float32) float32 {
	switch c.cfg.Metric {
	case Cosine, Dot:
		return 1 - d
	default:
		return -d
	}
}

// GraphStats reports the structural health of the collection's HNSW graph
// (per-layer occupancy, degree spread, reachability from the entry point).
func (c *Collection) GraphStats() hnsw.GraphStats {
	return c.index.Stats()
}

// Quantizer exposes the trained Product Quantizer for diagnostics
// (distortion probes). Nil while the collection is uncompressed — before
// TrainSize inserts, or when PQ is disabled.
func (c *Collection) Quantizer() *pq.Quantizer {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.quantizer
}

// Stats describes a collection's storage.
type Stats struct {
	Points      int
	Deleted     int
	Compressed  bool
	VectorBytes int64
}

// Stats reports size and compression state.
func (c *Collection) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var bytesUsed int64
	for _, v := range c.vectors {
		bytesUsed += int64(len(v)) * 4
	}
	for _, code := range c.codes {
		bytesUsed += int64(len(code))
	}
	return Stats{
		Points:      len(c.ids) - len(c.deleted),
		Deleted:     len(c.deleted),
		Compressed:  c.quantizer != nil,
		VectorBytes: bytesUsed,
	}
}

func clonePayload(p map[string]string) map[string]string {
	if p == nil {
		return nil
	}
	out := make(map[string]string, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// persistedCollection is the gob image of a collection. Live points only;
// tombstones are compacted away. GraphBlob carries the serialized HNSW
// graph; it is only usable when no tombstones were compacted (compaction
// renumbers slots), in which case the graph is rebuilt instead.
type persistedCollection struct {
	Cfg       CollectionConfig
	IDs       []uint64
	Vectors   [][]float32
	Codes     [][]byte
	Payloads  []map[string]string
	PQBlob    []byte
	GraphBlob []byte
	NextID    uint64
}

func (c *Collection) persist() *persistedCollection {
	c.mu.RLock()
	defer c.mu.RUnlock()
	p := &persistedCollection{Cfg: c.cfg, NextID: c.nextID}
	if c.quantizer != nil {
		var buf bytes.Buffer
		if _, err := c.quantizer.WriteTo(&buf); err == nil {
			p.PQBlob = buf.Bytes()
		}
	}
	if len(c.deleted) == 0 {
		// Slot numbering survives intact, so the graph can be persisted
		// as-is and reloaded without the O(n·efConstruction) rebuild.
		var buf bytes.Buffer
		if _, err := c.index.WriteTo(&buf); err == nil {
			p.GraphBlob = buf.Bytes()
		}
	}
	for slot := range c.ids {
		s := int32(slot)
		if _, dead := c.deleted[s]; dead {
			continue
		}
		p.IDs = append(p.IDs, c.ids[slot])
		if c.vectors[slot] != nil {
			p.Vectors = append(p.Vectors, c.vectors[slot])
			p.Codes = append(p.Codes, nil)
		} else {
			p.Vectors = append(p.Vectors, nil)
			p.Codes = append(p.Codes, c.codes[slot])
		}
		p.Payloads = append(p.Payloads, c.payloads[slot])
	}
	return p
}

func restoreCollection(p *persistedCollection) (*Collection, error) {
	c, err := newCollection(p.Cfg)
	if err != nil {
		return nil, err
	}
	if len(p.PQBlob) > 0 {
		q, err := pq.Read(bytes.NewReader(p.PQBlob))
		if err != nil {
			return nil, err
		}
		c.quantizer = q
		c.sdc = q.SDCTables()
	}
	c.ids = p.IDs
	c.vectors = p.Vectors
	c.codes = p.Codes
	c.payloads = p.Payloads
	c.nextID = p.NextID
	if c.codes == nil && c.quantizer != nil {
		c.codes = make([][]byte, len(c.ids))
	}
	if len(p.GraphBlob) > 0 {
		// Fast path: restore the serialized graph directly.
		ix, err := hnsw.Read(bytes.NewReader(p.GraphBlob), c.itemDist)
		if err != nil {
			return nil, fmt.Errorf("vectordb: graph restore: %w", err)
		}
		if ix.Len() != len(c.ids) {
			return nil, fmt.Errorf("vectordb: graph has %d nodes, collection %d points", ix.Len(), len(c.ids))
		}
		c.index = ix
		for slot := range c.ids {
			c.byID[c.ids[slot]] = int32(slot)
		}
	} else {
		// Rebuild deterministically: same seed, same insertion order.
		for slot := range c.ids {
			got := c.index.Add()
			if got != int32(slot) {
				return nil, fmt.Errorf("vectordb: index rebuild slot mismatch %d != %d", got, slot)
			}
			c.byID[c.ids[slot]] = int32(slot)
		}
	}
	// Validate dims of raw vectors.
	for i, v := range c.vectors {
		if v != nil && len(v) != c.cfg.Dim {
			return nil, fmt.Errorf("vectordb: stored vector %d has dim %d", i, len(v))
		}
	}
	if math.MaxUint64-c.nextID < 1 {
		return nil, errors.New("vectordb: id space exhausted")
	}
	return c, nil
}
