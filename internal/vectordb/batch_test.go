package vectordb

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"semdisco/internal/obs"
)

// TestSearchBatchMatchesSearch pins the collection batch contract: one
// SearchBatch call returns exactly what per-query Search calls return, row
// by row, and charges each query's accumulator the same work.
func TestSearchBatchMatchesSearch(t *testing.T) {
	db := New()
	c, _ := db.CreateCollection("t", CollectionConfig{Dim: 16, Seed: 1})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 400; i++ {
		if _, err := c.Insert(randUnit(16, rng), map[string]string{"i": fmt.Sprint(i)}); err != nil {
			t.Fatal(err)
		}
	}
	nq := 12
	queries := make([][]float32, nq)
	ks := make([]int, nq)
	efs := make([]int, nq)
	for i := range queries {
		queries[i] = randUnit(16, rng)
		ks[i] = 1 + i%7
		efs[i] = 32 + i
	}
	ks[3] = 0 // skipped row

	costs := make([]*obs.Cost, nq)
	for i := range costs {
		costs[i] = &obs.Cost{}
	}
	rows, err := c.SearchBatch(context.Background(), queries, ks, efs, nil, costs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		if ks[i] <= 0 {
			if rows[i] != nil {
				t.Fatalf("row %d: skipped query got %d results", i, len(rows[i]))
			}
			continue
		}
		want, err := c.Search(queries[i], ks[i], efs[i], nil)
		if err != nil {
			t.Fatal(err)
		}
		seqCost := &obs.Cost{}
		if _, err := c.SearchContext(obs.ContextWithCost(context.Background(), seqCost), queries[i], ks[i], efs[i], nil); err != nil {
			t.Fatal(err)
		}
		if len(rows[i]) != len(want) {
			t.Fatalf("row %d: %d vs %d results", i, len(rows[i]), len(want))
		}
		for j := range want {
			if rows[i][j].ID != want[j].ID || rows[i][j].Score != want[j].Score {
				t.Errorf("row %d result %d: %+v vs %+v", i, j, rows[i][j], want[j])
			}
		}
		if got, wantRep := costs[i].Report(), seqCost.Report(); got != wantRep {
			t.Errorf("row %d cost: batch %+v vs sequential %+v", i, got, wantRep)
		}
	}
}

// TestSearchBatchValidation covers shape mismatches, dimension errors and
// cancellation.
func TestSearchBatchValidation(t *testing.T) {
	db := New()
	c, _ := db.CreateCollection("t", CollectionConfig{Dim: 4, Seed: 1})
	c.Insert([]float32{1, 0, 0, 0}, nil)

	q := [][]float32{{1, 0, 0, 0}}
	if _, err := c.SearchBatch(context.Background(), q, []int{1, 2}, nil, nil, nil); err == nil {
		t.Fatal("ks length mismatch must fail")
	}
	if _, err := c.SearchBatch(context.Background(), [][]float32{{1}}, []int{1}, nil, nil, nil); err == nil {
		t.Fatal("wrong dim must fail")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.SearchBatch(ctx, q, []int{1}, nil, nil, nil); err == nil {
		t.Fatal("dead context must fail")
	}
}
