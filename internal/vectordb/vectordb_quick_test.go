package vectordb

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickInsertGetConsistency: whatever goes in comes back out, Len
// tracks live points, and deleted ids stay gone.
func TestQuickInsertGetConsistency(t *testing.T) {
	f := func(seed int64, nRaw, delRaw uint8) bool {
		n := int(nRaw)%60 + 1
		rng := rand.New(rand.NewSource(seed))
		db := New()
		c, err := db.CreateCollection("t", CollectionConfig{Dim: 6, Seed: seed})
		if err != nil {
			return false
		}
		ids := make([]uint64, n)
		for i := 0; i < n; i++ {
			id, err := c.Insert(randUnit(6, rng), map[string]string{"i": fmt.Sprint(i)})
			if err != nil {
				return false
			}
			ids[i] = id
		}
		del := int(delRaw) % (n + 1)
		for i := 0; i < del; i++ {
			c.Delete(ids[i])
		}
		if c.Len() != n-del {
			return false
		}
		for i := del; i < n; i++ {
			p, ok := c.Get(ids[i])
			if !ok || p["i"] != fmt.Sprint(i) {
				return false
			}
		}
		for i := 0; i < del; i++ {
			if _, ok := c.Get(ids[i]); ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSearchNeverReturnsDeleted: approximate and exact search agree
// on never surfacing tombstoned points.
func TestQuickSearchNeverReturnsDeleted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := New()
		c, _ := db.CreateCollection("t", CollectionConfig{Dim: 6, Seed: seed})
		n := 20 + rng.Intn(60)
		ids := make([]uint64, n)
		for i := range ids {
			ids[i], _ = c.Insert(randUnit(6, rng), nil)
		}
		dead := map[uint64]struct{}{}
		for i := 0; i < n/3; i++ {
			victim := ids[rng.Intn(n)]
			c.Delete(victim)
			dead[victim] = struct{}{}
		}
		q := randUnit(6, rng)
		approx, err1 := c.Search(q, 10, 64, nil)
		exact, err2 := c.SearchExact(q, 10, nil)
		if err1 != nil || err2 != nil {
			return false
		}
		for _, r := range append(approx, exact...) {
			if _, isDead := dead[r.ID]; isDead {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
