// Package vectordb is an embeddable vector database: named collections of
// vectors with string payloads, HNSW-indexed approximate search, optional
// Product-Quantization compression, metadata filtering and binary
// persistence.
//
// It plays the role Qdrant plays in the paper's experimental setup — the
// paper uses Qdrant strictly as "store embeddings with metadata, index with
// HNSW, search by cosine similarity", all of which this package provides
// in-process with the same asymptotics.
package vectordb

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// DB is a set of named collections. All methods are safe for concurrent use.
type DB struct {
	mu          sync.RWMutex
	collections map[string]*Collection
}

// New returns an empty database.
func New() *DB {
	return &DB{collections: make(map[string]*Collection)}
}

// CreateCollection creates and returns a collection. It fails if the name
// is taken or the config is invalid.
func (db *DB) CreateCollection(name string, cfg CollectionConfig) (*Collection, error) {
	c, err := newCollection(cfg)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.collections[name]; exists {
		return nil, fmt.Errorf("vectordb: collection %q already exists", name)
	}
	db.collections[name] = c
	return c, nil
}

// Collection returns the named collection.
func (db *DB) Collection(name string) (*Collection, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	c, ok := db.collections[name]
	return c, ok
}

// Drop removes the named collection; dropping a missing collection is a
// no-op.
func (db *DB) Drop(name string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.collections, name)
}

// Names returns the collection names in sorted order.
func (db *DB) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.collections))
	for n := range db.collections {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// persistedDB is the gob envelope. HNSW graphs are not persisted: they are
// rebuilt deterministically on load from the same seed and insertion order,
// trading load time for a simpler and corruption-resistant format.
type persistedDB struct {
	Version     int
	Collections map[string]*persistedCollection
}

// Save writes the whole database to w.
func (db *DB) Save(w io.Writer) error {
	db.mu.RLock()
	snapshot := make(map[string]*persistedCollection, len(db.collections))
	for name, c := range db.collections {
		snapshot[name] = c.persist()
	}
	db.mu.RUnlock()
	return gob.NewEncoder(w).Encode(persistedDB{Version: 1, Collections: snapshot})
}

// Load reads a database written by Save, rebuilding all indexes.
func Load(r io.Reader) (*DB, error) {
	var p persistedDB
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("vectordb: decode: %w", err)
	}
	if p.Version != 1 {
		return nil, fmt.Errorf("vectordb: unsupported version %d", p.Version)
	}
	db := New()
	for name, pc := range p.Collections {
		c, err := restoreCollection(pc)
		if err != nil {
			return nil, fmt.Errorf("vectordb: collection %q: %w", name, err)
		}
		db.collections[name] = c
	}
	return db, nil
}

// SaveFile writes the database to path atomically (write temp + rename).
func (db *DB) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := db.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a database written by SaveFile.
func LoadFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
