package vectordb

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"semdisco/internal/vec"
)

func randUnit(dim int, rng *rand.Rand) []float32 {
	v := make([]float32, dim)
	for d := range v {
		v[d] = float32(rng.NormFloat64())
	}
	return vec.Normalize(v)
}

func TestCreateAndLookup(t *testing.T) {
	db := New()
	if _, err := db.CreateCollection("a", CollectionConfig{Dim: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateCollection("a", CollectionConfig{Dim: 8}); err == nil {
		t.Fatal("duplicate collection must fail")
	}
	if _, err := db.CreateCollection("bad", CollectionConfig{}); err == nil {
		t.Fatal("Dim=0 must fail")
	}
	if _, ok := db.Collection("a"); !ok {
		t.Fatal("collection a missing")
	}
	if _, ok := db.Collection("nope"); ok {
		t.Fatal("ghost collection")
	}
	db.CreateCollection("b", CollectionConfig{Dim: 4})
	names := db.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names=%v", names)
	}
	db.Drop("a")
	if _, ok := db.Collection("a"); ok {
		t.Fatal("drop failed")
	}
}

func TestInsertSearchCosine(t *testing.T) {
	db := New()
	c, _ := db.CreateCollection("t", CollectionConfig{Dim: 16, Seed: 1})
	rng := rand.New(rand.NewSource(1))
	var vectors [][]float32
	for i := 0; i < 300; i++ {
		v := randUnit(16, rng)
		vectors = append(vectors, v)
		if _, err := c.Insert(v, map[string]string{"i": fmt.Sprint(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.Search(vectors[42], 1, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Payload["i"] != "42" {
		t.Fatalf("got %+v", got)
	}
	if got[0].Score < 0.999 {
		t.Fatalf("self-similarity %v", got[0].Score)
	}
}

func TestDimValidation(t *testing.T) {
	db := New()
	c, _ := db.CreateCollection("t", CollectionConfig{Dim: 4})
	if _, err := c.Insert([]float32{1, 2}, nil); err == nil {
		t.Fatal("wrong insert dim must fail")
	}
	c.Insert([]float32{1, 0, 0, 0}, nil)
	if _, err := c.Search([]float32{1}, 1, 10, nil); err == nil {
		t.Fatal("wrong query dim must fail")
	}
	if _, err := c.SearchExact([]float32{1}, 1, nil); err == nil {
		t.Fatal("wrong exact query dim must fail")
	}
}

func TestCosineNormalizesInput(t *testing.T) {
	db := New()
	c, _ := db.CreateCollection("t", CollectionConfig{Dim: 2})
	c.Insert([]float32{10, 0}, map[string]string{"n": "x"}) // not unit norm
	got, _ := c.Search([]float32{3, 0}, 1, 10, nil)
	if got[0].Score < 0.999 {
		t.Fatalf("score %v, normalization missing", got[0].Score)
	}
}

func TestSearchExactMatchesBruteForce(t *testing.T) {
	db := New()
	c, _ := db.CreateCollection("t", CollectionConfig{Dim: 8, Seed: 2})
	rng := rand.New(rand.NewSource(2))
	var vecs [][]float32
	for i := 0; i < 200; i++ {
		v := randUnit(8, rng)
		vecs = append(vecs, v)
		c.Insert(v, nil)
	}
	q := randUnit(8, rng)
	got, _ := c.SearchExact(q, 5, nil)
	if len(got) != 5 {
		t.Fatalf("len=%d", len(got))
	}
	// Verify descending scores and that the top-1 is the true argmax.
	bestID, bestScore := 0, float32(-2)
	for i, v := range vecs {
		if s := vec.Dot(q, v); s > bestScore {
			bestID, bestScore = i, s
		}
	}
	if got[0].ID != uint64(bestID) {
		t.Fatalf("exact top-1 %d, brute force %d", got[0].ID, bestID)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Fatal("scores not descending")
		}
	}
}

func TestFilteredSearch(t *testing.T) {
	db := New()
	c, _ := db.CreateCollection("t", CollectionConfig{Dim: 8, Seed: 3})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		kind := "even"
		if i%2 == 1 {
			kind = "odd"
		}
		c.Insert(randUnit(8, rng), map[string]string{"kind": kind})
	}
	q := randUnit(8, rng)
	got, _ := c.Search(q, 10, 128, FieldEquals("kind", "odd"))
	if len(got) == 0 {
		t.Fatal("no results")
	}
	for _, r := range got {
		if r.Payload["kind"] != "odd" {
			t.Fatalf("filter leaked: %+v", r)
		}
	}
	got2, _ := c.SearchExact(q, 10, FieldIn("kind", "even"))
	for _, r := range got2 {
		if r.Payload["kind"] != "even" {
			t.Fatalf("exact filter leaked: %+v", r)
		}
	}
}

func TestDelete(t *testing.T) {
	db := New()
	c, _ := db.CreateCollection("t", CollectionConfig{Dim: 4, Seed: 4})
	id1, _ := c.Insert([]float32{1, 0, 0, 0}, map[string]string{"n": "1"})
	id2, _ := c.Insert([]float32{0.9, 0.1, 0, 0}, map[string]string{"n": "2"})
	c.Delete(id1)
	if c.Len() != 1 {
		t.Fatalf("Len=%d", c.Len())
	}
	if _, ok := c.Get(id1); ok {
		t.Fatal("deleted point still readable")
	}
	got, _ := c.Search([]float32{1, 0, 0, 0}, 2, 10, nil)
	for _, r := range got {
		if r.ID == id1 {
			t.Fatal("deleted point surfaced in search")
		}
	}
	if len(got) != 1 || got[0].ID != id2 {
		t.Fatalf("got %+v", got)
	}
	c.Delete(999) // unknown id: no-op
}

func TestGetAndVector(t *testing.T) {
	db := New()
	c, _ := db.CreateCollection("t", CollectionConfig{Dim: 2})
	id, _ := c.Insert([]float32{0, 1}, map[string]string{"a": "b"})
	p, ok := c.Get(id)
	if !ok || p["a"] != "b" {
		t.Fatalf("Get=%v,%v", p, ok)
	}
	p["a"] = "mutated"
	p2, _ := c.Get(id)
	if p2["a"] != "b" {
		t.Fatal("Get returned aliased payload")
	}
	v, ok := c.Vector(id)
	if !ok || v[1] != 1 {
		t.Fatalf("Vector=%v,%v", v, ok)
	}
}

func TestPQCompression(t *testing.T) {
	db := New()
	c, _ := db.CreateCollection("t", CollectionConfig{
		Dim: 32, Seed: 5,
		PQ: &PQConfig{M: 4, K: 16, TrainSize: 100},
	})
	rng := rand.New(rand.NewSource(5))
	var vecs [][]float32
	for i := 0; i < 400; i++ {
		v := randUnit(32, rng)
		vecs = append(vecs, v)
		c.Insert(v, map[string]string{"i": fmt.Sprint(i)})
	}
	st := c.Stats()
	if !st.Compressed {
		t.Fatal("PQ not trained")
	}
	if st.VectorBytes >= int64(400*32*4) {
		t.Fatalf("no compression: %d bytes", st.VectorBytes)
	}
	// Recall sanity: self-queries should still surface the right region.
	hits := 0
	for i := 0; i < 50; i++ {
		got, err := c.Search(vecs[i], 5, 64, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range got {
			if r.Payload["i"] == fmt.Sprint(i) {
				hits++
				break
			}
		}
	}
	if hits < 35 {
		t.Fatalf("PQ recall too low: %d/50 self-hits", hits)
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	db := New()
	c, _ := db.CreateCollection("t", CollectionConfig{Dim: 8, Seed: 6})
	rng := rand.New(rand.NewSource(6))
	var vecs [][]float32
	for i := 0; i < 150; i++ {
		v := randUnit(8, rng)
		vecs = append(vecs, v)
		c.Insert(v, map[string]string{"i": fmt.Sprint(i)})
	}
	c.Delete(3)

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c2, ok := db2.Collection("t")
	if !ok {
		t.Fatal("collection lost")
	}
	if c2.Len() != 149 {
		t.Fatalf("Len=%d want 149", c2.Len())
	}
	if _, ok := c2.Get(3); ok {
		t.Fatal("tombstoned point resurrected")
	}
	// Same query results on both.
	q := randUnit(8, rng)
	a, _ := c.SearchExact(q, 5, nil)
	b, _ := c2.SearchExact(q, 5, nil)
	if len(a) != len(b) {
		t.Fatalf("result lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Payload["i"] != b[i].Payload["i"] {
			t.Fatalf("result %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestPersistenceWithPQ(t *testing.T) {
	db := New()
	c, _ := db.CreateCollection("t", CollectionConfig{
		Dim: 16, Seed: 7, PQ: &PQConfig{M: 4, K: 16, TrainSize: 64},
	})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 150; i++ {
		c.Insert(randUnit(16, rng), map[string]string{"i": fmt.Sprint(i)})
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := db2.Collection("t")
	if !c2.Stats().Compressed {
		t.Fatal("compression lost on reload")
	}
	q := randUnit(16, rng)
	a, _ := c.SearchExact(q, 3, nil)
	b, _ := c2.SearchExact(q, 3, nil)
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("PQ results differ after reload: %+v vs %+v", a, b)
		}
	}
}

func TestSaveFileLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.bin")
	db := New()
	c, _ := db.CreateCollection("t", CollectionConfig{Dim: 4})
	c.Insert([]float32{1, 0, 0, 0}, map[string]string{"x": "y"})
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	db2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := db2.Collection("t")
	if c2.Len() != 1 {
		t.Fatal("file round trip lost data")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a database"))); err == nil {
		t.Fatal("garbage must not load")
	}
}

func TestL2Metric(t *testing.T) {
	db := New()
	c, _ := db.CreateCollection("t", CollectionConfig{Dim: 2, Metric: L2, Seed: 8})
	c.Insert([]float32{0, 0}, map[string]string{"n": "origin"})
	c.Insert([]float32{5, 5}, map[string]string{"n": "far"})
	got, _ := c.Search([]float32{0.1, 0.1}, 2, 10, nil)
	if got[0].Payload["n"] != "origin" {
		t.Fatalf("L2 ranking wrong: %+v", got)
	}
	if got[0].Score < got[1].Score {
		t.Fatal("L2 scores must still be higher-is-better")
	}
}

func TestDotMetric(t *testing.T) {
	db := New()
	c, _ := db.CreateCollection("t", CollectionConfig{Dim: 2, Metric: Dot, Seed: 9})
	c.Insert([]float32{2, 0}, map[string]string{"n": "big"})
	c.Insert([]float32{1, 0}, map[string]string{"n": "small"})
	got, _ := c.Search([]float32{1, 0}, 2, 10, nil)
	if got[0].Payload["n"] != "big" {
		t.Fatalf("Dot must favour larger magnitude: %+v", got)
	}
}

func TestConcurrentInsertAndSearch(t *testing.T) {
	db := New()
	c, _ := db.CreateCollection("t", CollectionConfig{Dim: 8, Seed: 10})
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 100; i++ {
		c.Insert(randUnit(8, rng), nil)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(11))
		for i := 0; i < 100; i++ {
			c.Insert(randUnit(8, r), nil)
		}
		close(stop)
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Search(randUnit(8, r), 3, 32, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(20 + w))
	}
	wg.Wait()
	if c.Len() != 200 {
		t.Fatalf("Len=%d want 200", c.Len())
	}
}

func TestMetricString(t *testing.T) {
	if Cosine.String() != "cosine" || L2.String() != "l2" || Dot.String() != "dot" {
		t.Fatal("Metric.String broken")
	}
}

func BenchmarkSearchCosine10k(b *testing.B) {
	db := New()
	c, _ := db.CreateCollection("t", CollectionConfig{Dim: 64, Seed: 12})
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 10000; i++ {
		c.Insert(randUnit(64, rng), nil)
	}
	queries := make([][]float32, 64)
	for i := range queries {
		queries[i] = randUnit(64, rng)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Search(queries[i%len(queries)], 10, 64, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPersistenceRestoresGraphExactly(t *testing.T) {
	db := New()
	c, _ := db.CreateCollection("t", CollectionConfig{Dim: 16, Seed: 30})
	rng := rand.New(rand.NewSource(30))
	for i := 0; i < 300; i++ {
		c.Insert(randUnit(16, rng), map[string]string{"i": fmt.Sprint(i)})
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := db2.Collection("t")
	// Approximate search must return identical results: with no deletions
	// the serialized graph is restored verbatim.
	for probe := 0; probe < 10; probe++ {
		q := randUnit(16, rng)
		a, _ := c.Search(q, 10, 64, nil)
		b, _ := c2.Search(q, 10, 64, nil)
		if len(a) != len(b) {
			t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID || a[i].Score != b[i].Score {
				t.Fatalf("probe %d result %d differs: %+v vs %+v", probe, i, a[i], b[i])
			}
		}
	}
	// The restored collection must accept further inserts.
	if _, err := c2.Insert(randUnit(16, rng), nil); err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 301 {
		t.Fatalf("Len=%d", c2.Len())
	}
}

func TestScrollAndCount(t *testing.T) {
	db := New()
	c, _ := db.CreateCollection("t", CollectionConfig{Dim: 4, Seed: 40})
	rng := rand.New(rand.NewSource(40))
	for i := 0; i < 25; i++ {
		kind := "a"
		if i%5 == 0 {
			kind = "b"
		}
		c.Insert(randUnit(4, rng), map[string]string{"kind": kind, "i": fmt.Sprint(i)})
	}
	c.Delete(7)

	if got := c.Count(nil); got != 24 {
		t.Fatalf("Count=%d", got)
	}
	if got := c.Count(FieldEquals("kind", "b")); got != 5 {
		t.Fatalf("Count(b)=%d", got)
	}

	// Paginate in chunks of 10 and reassemble.
	var all []Point
	cursor := uint64(0)
	for {
		page := c.Scroll(cursor, 10, nil)
		if len(page) == 0 {
			break
		}
		all = append(all, page...)
		cursor = page[len(page)-1].ID + 1
	}
	if len(all) != 24 {
		t.Fatalf("scrolled %d points", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].ID <= all[i-1].ID {
			t.Fatal("scroll not in ascending id order")
		}
	}
	for _, p := range all {
		if p.ID == 7 {
			t.Fatal("deleted point scrolled")
		}
	}
	// Filtered scroll.
	bs := c.Scroll(0, 100, FieldEquals("kind", "b"))
	if len(bs) != 5 {
		t.Fatalf("filtered scroll=%d", len(bs))
	}
	if got := c.Scroll(0, 0, nil); got != nil {
		t.Fatal("limit 0 must return nil")
	}
}

// TestInsertBatchSerialMatchesInsertLoop pins the Workers <= 1 determinism
// contract for batch inserts, across the PQ training boundary: same ids,
// same codes, same graph as the equivalent Insert loop.
func TestInsertBatchSerialMatchesInsertLoop(t *testing.T) {
	const (
		dim = 16
		n   = 120
	)
	cfg := CollectionConfig{
		Dim: dim, M: 8, EfConstruction: 40, Seed: 9,
		PQ: &PQConfig{M: 4, K: 16, TrainSize: 64},
	}
	rng := rand.New(rand.NewSource(9))
	vecs := make([][]float32, n)
	pays := make([]map[string]string, n)
	for i := range vecs {
		vecs[i] = randUnit(dim, rng)
		pays[i] = map[string]string{"i": fmt.Sprint(i)}
	}

	serial := New()
	cs, _ := serial.CreateCollection("c", cfg)
	for i := range vecs {
		if _, err := cs.Insert(vecs[i], pays[i]); err != nil {
			t.Fatal(err)
		}
	}
	batched := New()
	cb, _ := batched.CreateCollection("c", cfg)
	ids, err := cb.InsertBatch(vecs, pays)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != n {
		t.Fatalf("got %d ids", len(ids))
	}
	for i, id := range ids {
		if id != uint64(i) {
			t.Fatalf("id[%d] = %d", i, id)
		}
	}
	if cs.quantizer == nil || cb.quantizer == nil {
		t.Fatal("PQ must have trained in both paths")
	}
	for slot := range cs.codes {
		if !bytes.Equal(cs.codes[slot], cb.codes[slot]) {
			t.Fatalf("codes[%d] diverged", slot)
		}
	}
	for l := 0; l <= cs.index.MaxLevel(); l++ {
		ga, gb := cs.index.Graph(l), cb.index.Graph(l)
		if len(ga) != len(gb) {
			t.Fatalf("layer %d: %d vs %d nodes", l, len(ga), len(gb))
		}
		for id, nbs := range ga {
			got := gb[id]
			if len(got) != len(nbs) {
				t.Fatalf("layer %d node %d: degree %d vs %d", l, id, len(got), len(nbs))
			}
			for i := range nbs {
				if nbs[i] != got[i] {
					t.Fatalf("layer %d node %d: adjacency diverged", l, id)
				}
			}
		}
	}
	// Both must answer searches identically.
	q := randUnit(dim, rng)
	ra, _ := cs.Search(q, 5, 0, nil)
	rb, _ := cb.Search(q, 5, 0, nil)
	if len(ra) != len(rb) {
		t.Fatalf("result counts %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].ID != rb[i].ID || ra[i].Score != rb[i].Score {
			t.Fatalf("result %d diverged: %v vs %v", i, ra[i], rb[i])
		}
	}
}

// TestInsertBatchParallel exercises the concurrent construction path end to
// end: graph intact (fully reachable), PQ trained, searches work, and the
// codes match the serial run (encode is worker-count-invariant).
func TestInsertBatchParallel(t *testing.T) {
	const (
		dim = 16
		n   = 400
	)
	cfg := CollectionConfig{
		Dim: dim, M: 8, EfConstruction: 60, Seed: 4,
		PQ:      &PQConfig{M: 4, K: 16, TrainSize: 128},
		Workers: 4,
	}
	rng := rand.New(rand.NewSource(4))
	vecs := make([][]float32, n)
	for i := range vecs {
		vecs[i] = randUnit(dim, rng)
	}
	db := New()
	c, _ := db.CreateCollection("c", cfg)
	ids, err := c.InsertBatch(vecs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != n || c.Len() != n {
		t.Fatalf("ids=%d len=%d", len(ids), c.Len())
	}
	st := c.GraphStats()
	if st.ReachableFraction != 1.0 {
		t.Fatalf("reachable fraction %v after parallel batch insert", st.ReachableFraction)
	}
	if c.quantizer == nil {
		t.Fatal("PQ must have trained")
	}
	serialCfg := cfg
	serialCfg.Workers = 1
	sdb := New()
	sc, _ := sdb.CreateCollection("c", serialCfg)
	if _, err := sc.InsertBatch(vecs, nil); err != nil {
		t.Fatal(err)
	}
	for slot := range sc.codes {
		if !bytes.Equal(sc.codes[slot], c.codes[slot]) {
			t.Fatalf("codes[%d] depend on worker count", slot)
		}
	}
	res, err := c.Search(vecs[17], 3, 0, nil)
	if err != nil || len(res) == 0 {
		t.Fatalf("search after parallel build: res=%v err=%v", res, err)
	}
}

// TestInsertBatchValidation covers the error paths.
func TestInsertBatchValidation(t *testing.T) {
	db := New()
	c, _ := db.CreateCollection("c", CollectionConfig{Dim: 4})
	if _, err := c.InsertBatch([][]float32{{1, 2}}, nil); err == nil {
		t.Fatal("dim mismatch must fail")
	}
	if _, err := c.InsertBatch([][]float32{{1, 2, 3, 4}}, []map[string]string{{}, {}}); err == nil {
		t.Fatal("payload count mismatch must fail")
	}
	ids, err := c.InsertBatch(nil, nil)
	if err != nil || len(ids) != 0 {
		t.Fatalf("empty batch: %v %v", ids, err)
	}
	// Batch then single insert must compose.
	if _, err := c.InsertBatch([][]float32{{1, 0, 0, 0}, {0, 1, 0, 0}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert([]float32{0, 0, 1, 0}, nil); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 {
		t.Fatalf("len=%d", c.Len())
	}
}
