package corpus

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"semdisco/internal/embed"
	"semdisco/internal/eval"
	"semdisco/internal/table"
	"semdisco/internal/text"
)

// QueryClass is the paper's query-length taxonomy.
type QueryClass int

const (
	// Short queries have at most 3 keywords.
	Short QueryClass = iota
	// Moderate queries have up to 30 keywords.
	Moderate
	// Long queries have more than 30 (up to 300) keywords.
	Long
)

func (c QueryClass) String() string {
	switch c {
	case Short:
		return "short"
	case Moderate:
		return "moderate"
	case Long:
		return "long"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// QuerySubset mirrors the paper's two query provenances: QS-1 (topics
// suggested by web users via Mechanical Turk, per Cafarella et al.) and
// QS-2 (structured-data queries from Google Squared's logs, per Venetis et
// al.). Generated queries alternate between the subsets.
type QuerySubset int

const (
	// QS1 is the web-user subset.
	QS1 QuerySubset = iota
	// QS2 is the query-log subset.
	QS2
)

func (s QuerySubset) String() string {
	if s == QS1 {
		return "QS-1"
	}
	return "QS-2"
}

// Query is one generated keyword query with its ground-truth topic.
type Query struct {
	ID     string
	Text   string
	Class  QueryClass
	Subset QuerySubset
	Topic  int
}

// Corpus bundles a generated federation with its ground truth.
type Corpus struct {
	Profile    Profile
	Federation *table.Federation
	// Lexicon carries the concept structure (synonym sets across source
	// verbalizations); it configures the semantic encoder.
	Lexicon *embed.Lexicon
	Queries []Query
	// Qrels holds every judged query-relation pair; TrainQrels and
	// TestQrels partition it the way the paper splits its 3,117 pairs into
	// 1,918 tuning and 1,199 evaluation pairs.
	Qrels      eval.Qrels
	TrainQrels eval.Qrels
	TestQrels  eval.Qrels
	// PrimaryTopic and SecondaryTopics expose each relation's ground truth.
	PrimaryTopic    map[string]int
	SecondaryTopics map[string][]int

	stats *text.CorpusStats
}

// concept holds all verbalizations of one synonym set.
type concept struct {
	canonical string
	bySource  map[string]string
	query     string
}

var genericColumns = []string{"Name", "Region", "Date", "Code", "Category", "Value", "Status", "Type"}

// Generate builds a corpus from the profile. The result is a pure function
// of the profile (including its Seed).
func Generate(p Profile) *Corpus {
	rng := rand.New(rand.NewSource(p.Seed))
	words := newWordGen(p.Seed ^ 0x77777777)

	// 1. Topic/concept vocabulary with per-source and query verbalizations.
	lex := embed.NewLexicon()
	topics := make([][]concept, p.NumTopics)
	for t := range topics {
		// Each topic is a parent concept; its member concepts embed with a
		// shared topical component, giving the embedding space the
		// neighborhood structure a pretrained encoder would have.
		topicID := lex.NewConcept()
		topics[t] = make([]concept, p.ConceptsPerTopic)
		for ci := range topics[t] {
			c := concept{
				canonical: words.phrase(1 + rng.Intn(2)),
				bySource:  make(map[string]string, len(p.Sources)),
			}
			id := lex.AddSynonyms(c.canonical)
			lex.SetParent(id, topicID)
			verbalize := func() string {
				if rng.Float64() < p.SharedTermProb {
					return c.canonical
				}
				v := words.phrase(1 + rng.Intn(2))
				lex.Add(id, v)
				return v
			}
			for _, s := range p.Sources {
				c.bySource[s] = verbalize()
			}
			c.query = verbalize()
			topics[t][ci] = c
		}
	}

	// 2. Shared filler vocabulary (topic-free noise), OOV to the lexicon.
	filler := make([]string, p.FillerVocabSize)
	for i := range filler {
		filler[i] = words.word()
	}
	fillerPick := func() string { return filler[rng.Intn(len(filler))] }

	cor := &Corpus{
		Profile:         p,
		Federation:      table.NewFederation(),
		Lexicon:         lex,
		Qrels:           eval.Qrels{},
		TrainQrels:      eval.Qrels{},
		TestQrels:       eval.Qrels{},
		PrimaryTopic:    make(map[string]int),
		SecondaryTopics: make(map[string][]int),
	}

	// 3. Relations. Topics are assigned by a shuffled round-robin so every
	// subset prefix (the SD/MD partitions) still covers all topics.
	topicOrder := rng.Perm(p.NumTopics)
	for i := 0; i < p.NumRelations; i++ {
		source := p.Sources[i%len(p.Sources)]
		primary := topicOrder[i%p.NumTopics]
		var secondary []int
		if rng.Float64() < 0.5 {
			secondary = append(secondary, rng.Intn(p.NumTopics))
		}
		if rng.Float64() < 0.2 {
			secondary = append(secondary, rng.Intn(p.NumTopics))
		}
		rel := cor.genRelation(rng, words, topics, fillerPick, i, source, primary, secondary)
		if err := cor.Federation.Add(rel); err != nil {
			panic(fmt.Sprintf("corpus: %v", err)) // ids are generated unique
		}
		cor.PrimaryTopic[rel.ID] = primary
		cor.SecondaryTopics[rel.ID] = secondary
	}

	// 4. Queries, 3 length classes.
	cor.genQueries(rng, topics, fillerPick)

	// 5. Graded judgments and the train/test pair split.
	cor.genQrels(rng)

	// 6. Corpus statistics for IDF weighting in the encoder.
	cor.stats = &text.CorpusStats{}
	for _, r := range cor.Federation.Relations() {
		cor.stats.AddDocument(stemTokens(r.Text()))
	}
	return cor
}

func (cor *Corpus) genRelation(rng *rand.Rand, words *wordGen, topics [][]concept,
	fillerPick func() string, idx int, source string, primary int, secondary []int) *table.Relation {

	p := cor.Profile
	nCols := p.ColsMin + rng.Intn(p.ColsMax-p.ColsMin+1)
	nRows := p.RowsMin + rng.Intn(p.RowsMax-p.RowsMin+1)

	pickTopic := func() int {
		if len(secondary) > 0 && rng.Float64() < 0.3 {
			return secondary[rng.Intn(len(secondary))]
		}
		return primary
	}
	topicalTerm := func(t int) string {
		c := topics[t][rng.Intn(len(topics[t]))]
		return c.bySource[source]
	}

	cols := make([]string, nCols)
	for c := range cols {
		if c < 2 {
			// Lead columns named after the table's subject matter.
			cols[c] = topics[primary][c%len(topics[primary])].bySource[source]
		} else {
			cols[c] = genericColumns[rng.Intn(len(genericColumns))]
		}
	}
	rows := make([][]string, nRows)
	for r := range rows {
		row := make([]string, nCols)
		for c := range row {
			switch {
			case rng.Float64() < p.NumericFraction:
				row[c] = numericCell(rng)
			case rng.Float64() < 0.55:
				row[c] = topicalTerm(pickTopic())
			default:
				row[c] = fillerPick()
				if rng.Float64() < 0.3 {
					row[c] += " " + fillerPick()
				}
			}
		}
		rows[r] = row
	}
	caption := topicalTerm(primary) + " " + fillerPick()
	pageTitle := topicalTerm(primary) + " " + topicalTerm(pickTopic())
	return &table.Relation{
		ID:           fmt.Sprintf("%s-%04d", p.Name, idx),
		Source:       source,
		PageTitle:    pageTitle,
		SectionTitle: fillerPick(),
		Caption:      caption,
		Columns:      cols,
		Rows:         rows,
	}
}

func numericCell(rng *rand.Rand) string {
	switch rng.Intn(3) {
	case 0:
		return fmt.Sprint(1900 + rng.Intn(125)) // year
	case 1:
		return fmt.Sprint(rng.Intn(10000)) // quantity
	default:
		return fmt.Sprintf("%d.%02d", rng.Intn(100), rng.Intn(100)) // measure
	}
}

// genQueries creates QueriesPerClass queries per length class. Queries use
// the query-side verbalization of concepts, which only coincides with a
// table's surface terms when SharedTermProb fired on both sides.
func (cor *Corpus) genQueries(rng *rand.Rand, topics [][]concept, fillerPick func() string) {
	p := cor.Profile
	perm := rng.Perm(p.NumTopics)
	qi := 0
	for _, class := range []QueryClass{Short, Moderate, Long} {
		for q := 0; q < p.QueriesPerClass; q++ {
			topic := perm[qi%p.NumTopics]
			qi++
			cs := topics[topic]
			var terms []string
			switch class {
			case Short:
				// 1-2 concept terms, truncated to at most 3 keywords (a
				// concept term may itself be a two-word phrase).
				n := 1 + rng.Intn(2)
				var kws []string
				for i := 0; i < n; i++ {
					kws = append(kws, strings.Fields(cs[rng.Intn(len(cs))].query)...)
				}
				if len(kws) > 3 {
					kws = kws[:3]
				}
				terms = kws
			case Moderate:
				// All concepts of the topic plus light filler; full-sentence
				// length (≤ 30 keywords).
				for _, c := range cs {
					terms = append(terms, c.query)
				}
				for i := 0; i < 4+rng.Intn(6); i++ {
					terms = append(terms, fillerPick())
				}
			case Long:
				// Full-text query: topic terms repeated in context, heavy
				// filler, and bleed-over from other topics (which is what
				// makes long queries noisier and harder, as in the paper).
				for rep := 0; rep < 2; rep++ {
					for _, c := range cs {
						terms = append(terms, c.query)
					}
				}
				for i := 0; i < 30+rng.Intn(40); i++ {
					terms = append(terms, fillerPick())
				}
				for i := 0; i < 2; i++ {
					other := rng.Intn(p.NumTopics)
					terms = append(terms, topics[other][rng.Intn(len(topics[other]))].query)
				}
			}
			rng.Shuffle(len(terms), func(i, j int) { terms[i], terms[j] = terms[j], terms[i] })
			cor.Queries = append(cor.Queries, Query{
				ID:     fmt.Sprintf("%s-q-%s-%02d", p.Name, class, q),
				Text:   strings.Join(terms, " "),
				Class:  class,
				Subset: QuerySubset(q % 2),
				Topic:  topic,
			})
		}
	}
}

// genQrels grades every (query, relation) pair by topic overlap — 2 when
// the relation's primary topic matches the query, 1 when a secondary topic
// does — and samples irrelevant pairs to reach JudgedPerQuery judgments,
// then splits all pairs into train/test the way the paper does.
func (cor *Corpus) genQrels(rng *rand.Rand) {
	type pair struct {
		query, rel string
		grade      int
	}
	var pairs []pair
	for _, q := range cor.Queries {
		judged := map[string]struct{}{}
		for _, r := range cor.Federation.Relations() {
			grade := 0
			if cor.PrimaryTopic[r.ID] == q.Topic {
				grade = 2
			} else {
				for _, s := range cor.SecondaryTopics[r.ID] {
					if s == q.Topic {
						grade = 1
						break
					}
				}
			}
			if grade > 0 {
				pairs = append(pairs, pair{q.ID, r.ID, grade})
				judged[r.ID] = struct{}{}
			}
		}
		// Pad with explicitly-judged irrelevant pairs.
		rels := cor.Federation.Relations()
		for attempts := 0; len(judged) < cor.Profile.JudgedPerQuery && attempts < 10*cor.Profile.JudgedPerQuery; attempts++ {
			r := rels[rng.Intn(len(rels))]
			if _, dup := judged[r.ID]; dup {
				continue
			}
			judged[r.ID] = struct{}{}
			pairs = append(pairs, pair{q.ID, r.ID, 0})
		}
	}
	for _, pr := range pairs {
		cor.Qrels.Add(pr.query, pr.rel, pr.grade)
	}
	// Deterministic split ≈ 61.5% train / 38.5% test (1,918 : 1,199).
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].query != pairs[j].query {
			return pairs[i].query < pairs[j].query
		}
		return pairs[i].rel < pairs[j].rel
	})
	rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
	cut := len(pairs) * 1918 / 3117
	for i, pr := range pairs {
		if i < cut {
			cor.TrainQrels.Add(pr.query, pr.rel, pr.grade)
		} else {
			cor.TestQrels.Add(pr.query, pr.rel, pr.grade)
		}
	}
}

// QueriesOf returns the queries of one length class.
func (cor *Corpus) QueriesOf(class QueryClass) []Query {
	var out []Query
	for _, q := range cor.Queries {
		if q.Class == class {
			out = append(out, q)
		}
	}
	return out
}

// QueriesOfSubset returns the queries of one provenance subset.
func (cor *Corpus) QueriesOfSubset(subset QuerySubset) []Query {
	var out []Query
	for _, q := range cor.Queries {
		if q.Subset == subset {
			out = append(out, q)
		}
	}
	return out
}

// IDF exposes the corpus inverse document frequency of a raw token, for
// encoder pooling weights.
func (cor *Corpus) IDF(token string) float64 {
	return cor.stats.IDF(text.Stem(token))
}

// NewEncoder builds the semantic encoder configured for this corpus: the
// corpus lexicon supplies concepts and corpus statistics supply IDF
// weights. dim 0 selects the paper's 768.
func (cor *Corpus) NewEncoder(dim int, seed int64) *embed.Model {
	return embed.New(embed.Config{
		Dim:     dim,
		Seed:    seed,
		Lexicon: cor.Lexicon,
		IDF:     cor.IDF,
	})
}

func stemTokens(s string) []string {
	toks := text.Tokenize(s)
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = text.Stem(t)
	}
	return out
}
