// Package corpus synthesizes the evaluation corpora that stand in for
// WikiTables and the European Data Portal, which are not available offline.
//
// The generator reproduces the property of those corpora that the paper's
// evaluation actually exercises: relations are about topics, different
// sources verbalize the same concept with different surface terms
// ("Comirnaty" / "Pfizer-BioNTech" / "mRNA" in the motivating example), and
// user queries verbalize concepts in yet another way. Relevance is defined
// by topic overlap, so methods that match meaning (through the shared
// concept structure the encoder's Lexicon captures) outperform methods that
// match strings — with partial surface overlap retained so that lexical
// baselines stay competitive rather than collapsing.
package corpus

import (
	"math/rand"
	"strings"
)

// wordGen produces deterministic pronounceable pseudo-words, so generated
// vocabularies are stable across runs and readable in debug output.
type wordGen struct {
	rng  *rand.Rand
	used map[string]struct{}
}

var (
	onsets  = []string{"b", "br", "c", "cl", "d", "dr", "f", "fl", "g", "gr", "h", "j", "k", "kr", "l", "m", "n", "p", "pl", "pr", "r", "s", "sk", "sl", "sp", "st", "t", "tr", "v", "w", "z"}
	vowels  = []string{"a", "e", "i", "o", "u", "ae", "ia", "ou"}
	codas   = []string{"", "", "", "n", "r", "s", "l", "m", "x", "nd", "rt", "st"}
	suffixs = []string{"", "", "", "ium", "ex", "on", "ara", "is"}
)

func newWordGen(seed int64) *wordGen {
	return &wordGen{rng: rand.New(rand.NewSource(seed)), used: make(map[string]struct{})}
}

// word returns a fresh pseudo-word of 2-3 syllables never produced before
// by this generator.
func (g *wordGen) word() string {
	for {
		var b strings.Builder
		syllables := 2 + g.rng.Intn(2)
		for s := 0; s < syllables; s++ {
			b.WriteString(onsets[g.rng.Intn(len(onsets))])
			b.WriteString(vowels[g.rng.Intn(len(vowels))])
			if s == syllables-1 {
				b.WriteString(codas[g.rng.Intn(len(codas))])
			}
		}
		b.WriteString(suffixs[g.rng.Intn(len(suffixs))])
		w := b.String()
		if len(w) < 4 {
			continue
		}
		if _, dup := g.used[w]; dup {
			continue
		}
		g.used[w] = struct{}{}
		return w
	}
}

// phrase returns n fresh words joined by a space.
func (g *wordGen) phrase(n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = g.word()
	}
	return strings.Join(parts, " ")
}
