package corpus

// Profile parameterizes corpus generation. The two presets mirror the
// paper's corpora at laptop scale; Scale adjusts relation counts without
// changing the topical structure.
type Profile struct {
	// Name tags relation ids and the corpus.
	Name string
	// NumRelations is the total number of relations at Scale 1.0.
	NumRelations int
	// NumTopics is the number of latent topics relations draw from.
	NumTopics int
	// ConceptsPerTopic is how many synonym sets each topic owns.
	ConceptsPerTopic int
	// Sources are the federation members; each verbalizes concepts its own
	// way.
	Sources []string
	// NumericFraction is the probability a body cell is numeric (the paper
	// reports 26.9% for WikiTables, 55.3% for EDP).
	NumericFraction float64
	// SharedTermProb is the probability a source (or the query vocabulary)
	// uses the concept's canonical surface form instead of its own variant.
	// It controls how much signal purely lexical methods get.
	SharedTermProb float64
	// RowsMin/RowsMax and ColsMin/ColsMax bound table shapes.
	RowsMin, RowsMax int
	ColsMin, ColsMax int
	// FillerVocabSize is the size of the shared non-topical vocabulary that
	// pads cells, captions and long queries.
	FillerVocabSize int
	// QueriesPerClass is the number of queries per length class (short,
	// moderate, long). The paper uses 60 queries total, 20 per class.
	QueriesPerClass int
	// JudgedPerQuery is roughly how many query-relation pairs are judged
	// per query (the paper has 3,117 pairs over 60 queries ≈ 52).
	JudgedPerQuery int
	// Seed drives every random choice.
	Seed int64
}

// WikiTables returns the WikiTables-like profile: many mid-sized textual
// tables with captions and page context.
func WikiTables() Profile {
	return Profile{
		Name:             "wikitables",
		NumRelations:     600,
		NumTopics:        40,
		ConceptsPerTopic: 6,
		Sources:          []string{"wiki-en", "wiki-list", "wiki-info", "wiki-stat"},
		NumericFraction:  0.269,
		SharedTermProb:   0.35,
		RowsMin:          4, RowsMax: 12,
		ColsMin: 3, ColsMax: 5,
		FillerVocabSize: 400,
		QueriesPerClass: 20,
		JudgedPerQuery:  52,
		Seed:            7,
	}
}

// EDP returns the European-Data-Portal-like profile: a smaller corpus of
// numeric-heavy datasets with textual descriptions.
func EDP() Profile {
	return Profile{
		Name:             "edp",
		NumRelations:     240,
		NumTopics:        24,
		ConceptsPerTopic: 5,
		Sources:          []string{"edp-de", "edp-fr", "edp-nl", "edp-it", "edp-es"},
		NumericFraction:  0.553,
		SharedTermProb:   0.35,
		RowsMin:          6, RowsMax: 16,
		ColsMin: 3, ColsMax: 6,
		FillerVocabSize: 250,
		QueriesPerClass: 20,
		JudgedPerQuery:  52,
		Seed:            11,
	}
}

// Scaled returns a copy of p with the relation count multiplied by f
// (≥ 1 relation). The topic count scales along (floor 8) so that
// relevance *density* — relevant relations per query — stays comparable
// across scales; the SD/MD/LD partitions within one corpus then behave
// the way the paper's partitions do.
func (p Profile) Scaled(f float64) Profile {
	n := int(float64(p.NumRelations)*f + 0.5)
	if n < 1 {
		n = 1
	}
	p.NumRelations = n
	if f < 1 {
		t := int(float64(p.NumTopics)*f + 0.5)
		if t < 8 {
			t = 8
		}
		if t < p.NumTopics {
			p.NumTopics = t
		}
	}
	return p
}
