package corpus

import (
	"strings"
	"testing"

	"semdisco/internal/text"
	"semdisco/internal/vec"
)

// tinyProfile keeps generation fast in tests.
func tinyProfile() Profile {
	p := WikiTables()
	p.NumRelations = 80
	p.NumTopics = 8
	p.QueriesPerClass = 4
	p.JudgedPerQuery = 20
	return p
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(tinyProfile())
	b := Generate(tinyProfile())
	if a.Federation.Len() != b.Federation.Len() {
		t.Fatal("relation counts differ")
	}
	ra := a.Federation.Relations()[7]
	rb := b.Federation.Relations()[7]
	if ra.Text() != rb.Text() {
		t.Fatal("same seed produced different relations")
	}
	if a.Queries[3].Text != b.Queries[3].Text {
		t.Fatal("same seed produced different queries")
	}
}

func TestRelationShapes(t *testing.T) {
	p := tinyProfile()
	c := Generate(p)
	if c.Federation.Len() != p.NumRelations {
		t.Fatalf("relations=%d want %d", c.Federation.Len(), p.NumRelations)
	}
	for _, r := range c.Federation.Relations() {
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
		if r.NumCols() < p.ColsMin || r.NumCols() > p.ColsMax {
			t.Fatalf("cols=%d outside [%d,%d]", r.NumCols(), p.ColsMin, p.ColsMax)
		}
		if r.NumRows() < p.RowsMin || r.NumRows() > p.RowsMax {
			t.Fatalf("rows=%d outside bounds", r.NumRows())
		}
		if r.Caption == "" || r.PageTitle == "" {
			t.Fatal("missing context fields")
		}
	}
}

func TestNumericFractionApproximate(t *testing.T) {
	p := tinyProfile()
	p.NumRelations = 200
	c := Generate(p)
	var frac float64
	for _, r := range c.Federation.Relations() {
		frac += r.NumericFraction()
	}
	frac /= float64(c.Federation.Len())
	if frac < p.NumericFraction-0.08 || frac > p.NumericFraction+0.08 {
		t.Fatalf("numeric fraction %.3f, profile %.3f", frac, p.NumericFraction)
	}
}

func TestEDPMoreNumericThanWikiTables(t *testing.T) {
	w := Generate(tinyProfile())
	ep := EDP()
	ep.NumRelations = 80
	ep.QueriesPerClass = 4
	e := Generate(ep)
	numFrac := func(c *Corpus) float64 {
		var f float64
		for _, r := range c.Federation.Relations() {
			f += r.NumericFraction()
		}
		return f / float64(c.Federation.Len())
	}
	if numFrac(e) <= numFrac(w) {
		t.Fatalf("EDP %.3f should be more numeric than WikiTables %.3f", numFrac(e), numFrac(w))
	}
}

func TestQueryClasses(t *testing.T) {
	c := Generate(tinyProfile())
	if len(c.Queries) != 12 {
		t.Fatalf("queries=%d", len(c.Queries))
	}
	for _, q := range c.Queries {
		n := len(text.Tokenize(q.Text))
		switch q.Class {
		case Short:
			if n > 3 {
				t.Fatalf("short query %q has %d keywords", q.Text, n)
			}
		case Moderate:
			if n <= 3 || n > 30 {
				t.Fatalf("moderate query has %d keywords", n)
			}
		case Long:
			if n <= 30 || n > 300 {
				t.Fatalf("long query has %d keywords", n)
			}
		}
	}
	if len(c.QueriesOf(Short)) != 4 || len(c.QueriesOf(Long)) != 4 {
		t.Fatal("QueriesOf miscounts")
	}
}

func TestQrelsStructure(t *testing.T) {
	c := Generate(tinyProfile())
	totalPairs := 0
	for _, q := range c.Queries {
		judged := c.Qrels[q.ID]
		if len(judged) == 0 {
			t.Fatalf("query %s has no judgments", q.ID)
		}
		totalPairs += len(judged)
		relevant := 0
		for relID, grade := range judged {
			if grade < 0 || grade > 2 {
				t.Fatalf("grade %d", grade)
			}
			if grade == 2 && c.PrimaryTopic[relID] != q.Topic {
				t.Fatal("grade-2 relation has wrong primary topic")
			}
			if grade >= 1 {
				relevant++
			}
		}
		if relevant == 0 {
			t.Fatalf("query %s has no relevant relations", q.ID)
		}
	}
	// Train/test split partitions the pairs.
	trainPairs, testPairs := 0, 0
	for _, m := range c.TrainQrels {
		trainPairs += len(m)
	}
	for _, m := range c.TestQrels {
		testPairs += len(m)
	}
	if trainPairs+testPairs != totalPairs {
		t.Fatalf("split loses pairs: %d + %d != %d", trainPairs, testPairs, totalPairs)
	}
	ratio := float64(trainPairs) / float64(totalPairs)
	if ratio < 0.55 || ratio > 0.68 {
		t.Fatalf("train ratio %.3f, want ≈ 0.615", ratio)
	}
}

func TestSemanticsBeatSurface(t *testing.T) {
	// The defining corpus property: a query is semantically close to
	// relations of its topic even when surface overlap is absent, and the
	// encoder (armed with the corpus lexicon) sees it.
	c := Generate(tinyProfile())
	model := c.NewEncoder(128, 1)
	q := c.Queries[0]
	qv := model.Encode(q.Text)

	var onTopic, offTopic []float32
	for _, r := range c.Federation.Relations() {
		sim := vec.Cosine(qv, model.Encode(r.Caption+" "+strings.Join(r.Values()[:8], " ")))
		if c.PrimaryTopic[r.ID] == q.Topic {
			onTopic = append(onTopic, sim)
		} else {
			offTopic = append(offTopic, sim)
		}
	}
	if len(onTopic) == 0 {
		t.Fatal("no on-topic relations")
	}
	mean := func(xs []float32) float64 {
		var s float64
		for _, x := range xs {
			s += float64(x)
		}
		return s / float64(len(xs))
	}
	if mean(onTopic) <= mean(offTopic)+0.02 {
		t.Fatalf("on-topic %.4f not above off-topic %.4f", mean(onTopic), mean(offTopic))
	}
}

func TestLexicalOverlapExistsButPartial(t *testing.T) {
	// SharedTermProb must leave lexical methods some signal: at least one
	// query term should literally appear in some on-topic relation, but
	// not in most of them.
	c := Generate(tinyProfile())
	hits, onTopicRelations := 0, 0
	for _, q := range c.QueriesOf(Moderate) {
		qTokens := map[string]struct{}{}
		for _, tok := range text.Tokenize(q.Text) {
			qTokens[tok] = struct{}{}
		}
		for _, r := range c.Federation.Relations() {
			if c.PrimaryTopic[r.ID] != q.Topic {
				continue
			}
			onTopicRelations++
			overlap := false
			for _, tok := range text.Tokenize(r.Text()) {
				if _, ok := qTokens[tok]; ok {
					overlap = true
					break
				}
			}
			if overlap {
				hits++
			}
		}
	}
	if hits == 0 {
		t.Fatal("no lexical overlap at all: baselines would collapse to zero")
	}
	if hits == onTopicRelations {
		t.Fatal("every on-topic relation overlaps lexically: no room for semantics to win")
	}
}

func TestScaled(t *testing.T) {
	p := WikiTables()
	if got := p.Scaled(0.1).NumRelations; got != 60 {
		t.Fatalf("Scaled(0.1)=%d", got)
	}
	if got := p.Scaled(0.0001).NumRelations; got != 1 {
		t.Fatalf("Scaled floor=%d", got)
	}
}

func TestSourcesCoverAllRelations(t *testing.T) {
	c := Generate(tinyProfile())
	if got := len(c.Federation.Sources()); got != len(tinyProfile().Sources) {
		t.Fatalf("sources=%d", got)
	}
}

func TestWordGen(t *testing.T) {
	g := newWordGen(1)
	seen := map[string]struct{}{}
	for i := 0; i < 500; i++ {
		w := g.word()
		if len(w) < 4 {
			t.Fatalf("word too short: %q", w)
		}
		if _, dup := seen[w]; dup {
			t.Fatalf("duplicate word %q", w)
		}
		seen[w] = struct{}{}
	}
	if p := g.phrase(3); len(strings.Fields(p)) != 3 {
		t.Fatalf("phrase=%q", p)
	}
}
