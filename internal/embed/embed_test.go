package embed

import (
	"math"
	"testing"
	"testing/quick"

	"semdisco/internal/vec"
)

func newTestModel(t testing.TB) *Model {
	t.Helper()
	lex := NewLexicon()
	lex.AddSynonyms("Comirnaty", "Pfizer-BioNTech", "BNT162b2", "tozinameran")
	lex.AddSynonyms("COVID", "coronavirus", "SARS-CoV-2", "covid19")
	lex.AddSynonyms("car", "automobile", "vehicle")
	lex.AddSynonyms("climate", "weather", "meteorological")
	return New(Config{Dim: 128, Seed: 42, Lexicon: lex})
}

func TestEncodeUnitNorm(t *testing.T) {
	m := newTestModel(t)
	for _, s := range []string{"covid vaccine dosage", "a", "", "the of and", "2021-01-01", "日本語"} {
		v := m.Encode(s)
		if len(v) != 128 {
			t.Fatalf("dim=%d", len(v))
		}
		n := vec.Norm(v)
		if math.Abs(float64(n)-1) > 1e-4 {
			t.Fatalf("Encode(%q) norm=%v want 1", s, n)
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a := newTestModel(t)
	b := newTestModel(t)
	s := "Beijing Olympics medal table"
	va, vb := a.Encode(s), b.Encode(s)
	for i := range va {
		if va[i] != vb[i] {
			t.Fatal("two identically-configured models disagree")
		}
	}
}

func TestSeedChangesEmbedding(t *testing.T) {
	a := New(Config{Dim: 64, Seed: 1})
	b := New(Config{Dim: 64, Seed: 2})
	if vec.Cosine(a.Encode("hello world"), b.Encode("hello world")) > 0.5 {
		t.Fatal("different seeds should give unrelated embeddings")
	}
}

func TestSynonymsAreClose(t *testing.T) {
	m := newTestModel(t)
	synonym := vec.Cosine(m.Encode("Comirnaty"), m.Encode("Pfizer-BioNTech"))
	unrelated := vec.Cosine(m.Encode("Comirnaty"), m.Encode("automobile"))
	if synonym < 0.4 {
		t.Fatalf("synonym cosine=%v, want >= 0.4", synonym)
	}
	if unrelated > 0.25 {
		t.Fatalf("unrelated cosine=%v, want <= 0.25", unrelated)
	}
	if synonym <= unrelated+0.2 {
		t.Fatalf("synonym (%v) must clearly dominate unrelated (%v)", synonym, unrelated)
	}
}

func TestInflectionMatches(t *testing.T) {
	m := newTestModel(t)
	got := vec.Cosine(m.Encode("vaccines"), m.Encode("vaccine"))
	if got < 0.9 {
		t.Fatalf("inflected cosine=%v, want >= 0.9", got)
	}
}

func TestSentenceOverlapOrdering(t *testing.T) {
	m := newTestModel(t)
	q := m.Encode("covid vaccine europe")
	near := m.Encode("coronavirus vaccine germany")   // synonym overlap
	far := m.Encode("stadium capacity football club") // none
	if vec.Cosine(q, near) <= vec.Cosine(q, far) {
		t.Fatalf("semantic overlap must beat none: near=%v far=%v",
			vec.Cosine(q, near), vec.Cosine(q, far))
	}
}

func TestNumericGradedSimilarity(t *testing.T) {
	m := newTestModel(t)
	y2020 := m.Encode("2020")
	y2021 := m.Encode("2021")
	y37 := m.Encode("37")
	word := m.Encode("giraffe")
	sameEra := vec.Cosine(y2020, y2021)
	diffMagnitude := vec.Cosine(y2020, y37)
	nonNumeric := vec.Cosine(y2020, word)
	if !(sameEra > diffMagnitude && diffMagnitude > nonNumeric) {
		t.Fatalf("numeric similarity not graded: %v > %v > %v expected",
			sameEra, diffMagnitude, nonNumeric)
	}
	if sameEra < 0.6 {
		t.Fatalf("adjacent years too dissimilar: %v", sameEra)
	}
}

func TestStopwordsIgnored(t *testing.T) {
	m := newTestModel(t)
	a := m.Encode("the covid vaccine")
	b := m.Encode("covid vaccine")
	if got := vec.Cosine(a, b); got < 0.999 {
		t.Fatalf("stopwords changed the embedding: cosine=%v", got)
	}
}

func TestStopwordOnlyInput(t *testing.T) {
	m := newTestModel(t)
	v := m.Encode("the of and")
	if vec.Norm(v) == 0 {
		t.Fatal("stopword-only input produced a zero vector")
	}
}

func TestEmptyNotZero(t *testing.T) {
	m := newTestModel(t)
	if vec.Norm(m.Encode("")) == 0 {
		t.Fatal("empty input produced a zero vector")
	}
}

func TestNoLexiconStillWorks(t *testing.T) {
	m := New(Config{Dim: 64, Seed: 7})
	same := vec.Cosine(m.Encode("vaccination"), m.Encode("vaccinations"))
	diff := vec.Cosine(m.Encode("vaccination"), m.Encode("zebra"))
	if same <= diff {
		t.Fatalf("lexical model ordering broken: same=%v diff=%v", same, diff)
	}
}

func TestEncodeAllMatchesEncode(t *testing.T) {
	m := newTestModel(t)
	ss := []string{"alpha", "beta", "covid vaccine", "", "2020"}
	batch := m.EncodeAll(ss)
	for i, s := range ss {
		single := m.Encode(s)
		for j := range single {
			if batch[i][j] != single[j] {
				t.Fatalf("EncodeAll[%d] != Encode(%q)", i, s)
			}
		}
	}
}

func TestTruncatingEncoder(t *testing.T) {
	m := newTestModel(t)
	long := "covid vaccine europe germany france spain italy dosage manufacturer trade name"
	full := m.Encode(long)
	tr := Truncating{M: m, MaxTokens: 2}
	cut := tr.Encode(long)
	if vec.Cosine(full, cut) > 0.999 {
		t.Fatal("truncation had no effect")
	}
	// Truncated must equal encoding the prefix.
	prefix := m.Encode("covid vaccine")
	if vec.Cosine(cut, prefix) < 0.999 {
		t.Fatal("truncated encoding must equal prefix encoding")
	}
	if tr.Dim() != m.Dim() {
		t.Fatal("Dim mismatch")
	}
}

func TestIDFWeighting(t *testing.T) {
	lex := NewLexicon()
	idf := func(term string) float64 {
		if term == "common" {
			return 0.1
		}
		return 3.0
	}
	m := New(Config{Dim: 64, Seed: 3, Lexicon: lex, IDF: idf})
	withCommon := m.Encode("common giraffe")
	rare := m.Encode("giraffe")
	if got := vec.Cosine(withCommon, rare); got < 0.9 {
		t.Fatalf("low-IDF term dominated the embedding: cosine=%v", got)
	}
}

func TestEncodePropertyUnitNormAndFinite(t *testing.T) {
	m := newTestModel(t)
	f := func(s string) bool {
		v := m.Encode(s)
		var norm float64
		for _, x := range v {
			if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
				return false
			}
			norm += float64(x) * float64(x)
		}
		return math.Abs(norm-1) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLexicon(t *testing.T) {
	lex := NewLexicon()
	id := lex.AddSynonyms("COVID", "coronavirus")
	if got, ok := lex.Concept("covid"); !ok || got != id {
		t.Fatalf("Concept(covid)=%v,%v", got, ok)
	}
	// Stemmed lookup: registered via Add with tokenization+stemming.
	lex.Add(id, "vaccinations")
	if got, ok := lex.Concept("vaccin"); !ok || got != id {
		t.Fatalf("stemmed Concept=%v,%v", got, ok)
	}
	if lex.NumConcepts() != 1 {
		t.Fatalf("NumConcepts=%d", lex.NumConcepts())
	}
	id2 := lex.NewConcept()
	if id2 == id {
		t.Fatal("NewConcept reused an id")
	}
	if lex.Len() == 0 || len(lex.Terms()) != lex.Len() {
		t.Fatal("Terms/Len inconsistent")
	}
}

func BenchmarkEncodeShort(b *testing.B) {
	m := New(Config{Dim: DefaultDim, Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Encode("covid vaccine europe")
	}
}

func BenchmarkEncodeColdToken(b *testing.B) {
	m := New(Config{Dim: DefaultDim, Seed: 1})
	words := make([]string, 1024)
	for i := range words {
		words[i] = "tok" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Encode(words[i%len(words)])
	}
}
