package embed

import "math"

// The encoder derives all of its pseudo-random structure from SplitMix64
// streams seeded by (model seed, string hash). This makes every embedding a
// pure function of the model configuration — no global state, no files — so
// encoders built in different processes agree bit-for-bit.

// splitmix64 advances the state and returns the next 64-bit value.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fnv64a hashes s with FNV-1a.
func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// gaussianVec fills dst with pseudo-Gaussian components drawn from the
// stream keyed by (seed, key) and L2-normalizes it. The Gaussian shape
// matters: normalized Gaussian vectors are uniform on the sphere, so two
// independent keys produce near-orthogonal vectors in high dimension —
// exactly the "unrelated strings are dissimilar" property we need.
func gaussianVec(dst []float32, seed uint64, key string) {
	state := seed ^ (fnv64a(key) * 0x9e3779b97f4a7c15)
	var norm float64
	for i := range dst {
		// Sum of 4 uniforms, centered: cheap near-Gaussian via CLT.
		var s float64
		for j := 0; j < 4; j++ {
			u := splitmix64(&state)
			s += float64(u>>11) / (1 << 53)
		}
		v := s - 2
		dst[i] = float32(v)
		norm += v * v
	}
	if norm == 0 {
		dst[0] = 1
		return
	}
	inv := float32(1 / math.Sqrt(norm))
	for i := range dst {
		dst[i] *= inv
	}
}
