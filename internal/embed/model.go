package embed

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"semdisco/internal/obs"
	"semdisco/internal/text"
	"semdisco/internal/vec"
)

// DefaultDim matches the paper's configuration: all-mpnet-base-v2 produces
// 768-dimensional sentence embeddings.
const DefaultDim = 768

// Encoder is the minimal contract the rest of the system depends on: map a
// string to a fixed-dimension unit vector. Model satisfies it, and so do the
// constrained wrappers used by the baselines.
type Encoder interface {
	// Dim returns the embedding dimensionality.
	Dim() int
	// Encode returns the unit-norm embedding of s. The returned slice is
	// owned by the caller.
	Encode(s string) []float32
}

// Config parameterizes a Model. The zero value of optional fields selects
// documented defaults.
type Config struct {
	// Dim is the embedding dimensionality. Defaults to DefaultDim (768).
	Dim int
	// Seed keys every hash stream; two models with equal Config produce
	// identical embeddings.
	Seed int64
	// Lexicon supplies the concept structure. May be nil, in which case the
	// encoder is purely lexical (hash + char-n-grams), i.e. a model with no
	// semantic pretraining.
	Lexicon *Lexicon
	// ConceptWeight is the mixture weight of the shared concept component of
	// an in-lexicon token. Defaults to 0.72: dominant enough that synonyms
	// have cosine ≈ ConceptWeight² ≈ 0.52 with zero lexical overlap, small
	// enough that a term remains distinguishable from its synonyms.
	ConceptWeight float32
	// NGramN is the character-n-gram order for out-of-lexicon backoff.
	// Defaults to 3.
	NGramN int
	// IDF optionally weights tokens during pooling; unweighted if nil.
	IDF func(term string) float64
}

// Model is the deterministic sentence encoder. It is safe for concurrent
// use; token vectors are memoized internally because table corpora repeat
// values heavily.
type Model struct {
	dim           int
	seed          uint64
	lex           *Lexicon
	conceptWeight float32
	ngramN        int
	idf           func(string) float64

	mu    sync.RWMutex
	cache map[string][]float32 // token -> unit vector

	// Observability hooks, resolved once by SetObserver so the per-token
	// hot path is a single atomic add. Nil hooks are no-ops.
	obsHits   *obs.Counter
	obsMisses *obs.Counter
	obsSize   *obs.Gauge
}

// SetObserver wires the encoder's token-cache instrumentation (hits,
// misses, resident entries) into a metrics registry. A nil registry keeps
// instrumentation off.
func (m *Model) SetObserver(reg *obs.Registry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.obsHits = reg.Counter("semdisco_embed_cache_hits_total")
	m.obsMisses = reg.Counter("semdisco_embed_cache_misses_total")
	m.obsSize = reg.Gauge("semdisco_embed_cache_size")
	m.obsSize.Set(float64(len(m.cache)))
}

// CacheStats reports the token cache's cumulative hits and misses since
// SetObserver (0, 0 when no observer is attached).
func (m *Model) CacheStats() (hits, misses int64) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.obsHits.Value(), m.obsMisses.Value()
}

// New constructs a Model from cfg.
func New(cfg Config) *Model {
	if cfg.Dim == 0 {
		cfg.Dim = DefaultDim
	}
	if cfg.Dim < 8 {
		panic(fmt.Sprintf("embed: dimension %d too small", cfg.Dim))
	}
	if cfg.ConceptWeight == 0 {
		cfg.ConceptWeight = 0.72
	}
	if cfg.NGramN == 0 {
		cfg.NGramN = 3
	}
	return &Model{
		dim:           cfg.Dim,
		seed:          uint64(cfg.Seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d,
		lex:           cfg.Lexicon,
		conceptWeight: cfg.ConceptWeight,
		ngramN:        cfg.NGramN,
		idf:           cfg.IDF,
		cache:         make(map[string][]float32),
	}
}

// Dim returns the embedding dimensionality.
func (m *Model) Dim() int { return m.dim }

// Encode embeds a string: tokenize, embed each token, IDF-weighted mean
// pool, L2 normalize. Stopwords are dropped unless the string consists only
// of stopwords. The empty string embeds to a fixed "null" direction so that
// downstream code never sees a zero vector.
func (m *Model) Encode(s string) []float32 {
	return m.EncodeTokens(text.Tokenize(s))
}

// EncodeTokens is Encode for pre-tokenized input. Used directly by the
// token-budgeted baseline encoders.
func (m *Model) EncodeTokens(toks []string) []float32 {
	content := text.RemoveStopwords(toks)
	if len(content) == 0 {
		content = toks
	}
	out := make([]float32, m.dim)
	if len(content) == 0 {
		gaussianVec(out, m.seed, "\x00empty")
		return out
	}
	for _, tok := range content {
		w := float32(1)
		if m.idf != nil {
			w = float32(m.idf(tok))
		}
		vec.AddScaled(out, w, m.tokenVec(tok))
	}
	vec.Normalize(out)
	return out
}

// TokenVec returns the unit embedding of one token. The returned slice is
// shared with the model's cache and must be treated as read-only; it exists
// for early-fusion scorers that compare token sets pairwise.
func (m *Model) TokenVec(tok string) []float32 { return m.tokenVec(tok) }

// tokenVec returns the memoized unit vector for a single token.
func (m *Model) tokenVec(tok string) []float32 {
	m.mu.RLock()
	v, ok := m.cache[tok]
	hits := m.obsHits
	m.mu.RUnlock()
	if ok {
		hits.Inc()
		return v
	}
	v = m.computeTokenVec(tok)
	m.mu.Lock()
	m.cache[tok] = v
	m.obsMisses.Inc()
	m.obsSize.Set(float64(len(m.cache)))
	m.mu.Unlock()
	return v
}

func (m *Model) computeTokenVec(tok string) []float32 {
	if text.IsNumeric(tok) {
		return m.numericVec(tok)
	}
	stem := text.Stem(tok)
	out := make([]float32, m.dim)
	tmp := make([]float32, m.dim)

	lexicalWeight := float32(1)
	if m.lex != nil {
		if concept, ok := m.lex.Concept(stem); ok {
			// The concept component itself mixes a parent (topic) part and
			// a concept-unique part when a hierarchy is present, so sibling
			// concepts share measurable similarity (≈ 0.3) the way related
			// terms do in a pretrained encoder's space.
			gaussianVec(tmp, m.seed, fmt.Sprintf("\x01concept:%d", concept))
			if parent, hasParent := m.lex.Parent(concept); hasParent {
				const parentWeight = 0.55
				vec.Scale(tmp, sqrt1m(parentWeight))
				par := make([]float32, m.dim)
				gaussianVec(par, m.seed, fmt.Sprintf("\x01concept:%d", parent))
				vec.AddScaled(tmp, parentWeight, par)
				vec.Normalize(tmp)
			}
			vec.AddScaled(out, m.conceptWeight, tmp)
			lexicalWeight = sqrt1m(m.conceptWeight)
		}
	}
	// Term-identity component: keyed by the stem so that inflected forms of
	// one word ("vaccine"/"vaccines") coincide.
	gaussianVec(tmp, m.seed, "\x02term:"+stem)
	vec.AddScaled(out, lexicalWeight*0.8, tmp)
	// Character-n-gram component: spelling variants and OOV morphology land
	// near each other.
	grams := text.CharNGrams(stem, m.ngramN)
	sub := make([]float32, m.dim)
	for _, g := range grams {
		gaussianVec(tmp, m.seed, "\x03gram:"+g)
		vec.Add(sub, tmp)
	}
	vec.Normalize(sub)
	vec.AddScaled(out, lexicalWeight*0.2, sub)
	return vec.Normalize(out)
}

// numericVec embeds a digit string so that cosine similarity degrades
// gracefully with numeric distance: all numbers share a base component,
// numbers with the same digit count share a magnitude component, numbers
// with the same leading digits share a prefix component, and the exact
// value contributes the remainder. "2020" vs "2021" ≈ 0.85; "2020" vs "37"
// ≈ 0.3. This reproduces the paper's observation that the transformer
// "can distinguish the numerical values according to the context".
func (m *Model) numericVec(tok string) []float32 {
	out := make([]float32, m.dim)
	tmp := make([]float32, m.dim)
	gaussianVec(tmp, m.seed, "\x04num")
	vec.AddScaled(out, 0.30, tmp)
	gaussianVec(tmp, m.seed, fmt.Sprintf("\x04len:%d", len(tok)))
	vec.AddScaled(out, 0.30, tmp)
	prefix := tok
	if len(prefix) > 2 {
		prefix = prefix[:2]
	}
	gaussianVec(tmp, m.seed, fmt.Sprintf("\x04prefix:%d:%s", len(tok), prefix))
	vec.AddScaled(out, 0.25, tmp)
	gaussianVec(tmp, m.seed, "\x04exact:"+tok)
	vec.AddScaled(out, 0.15, tmp)
	return vec.Normalize(out)
}

// sqrt1m returns sqrt(1-w²) clamped at 0, the weight that keeps a two-part
// mixture of orthonormal components at unit norm.
func sqrt1m(w float32) float32 {
	r := 1 - w*w
	if r <= 0 {
		return 0
	}
	return float32(math.Sqrt(float64(r)))
}

// EncodeAll embeds every string in ss concurrently and returns the vectors
// in input order. Parallelism defaults to GOMAXPROCS.
func (m *Model) EncodeAll(ss []string) [][]float32 {
	out := make([][]float32, len(ss))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(ss) {
		workers = len(ss)
	}
	if workers <= 1 {
		for i, s := range ss {
			out[i] = m.Encode(s)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int, len(ss))
	for i := range ss {
		next <- i
	}
	close(next)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = m.Encode(ss[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// Truncating wraps a Model with a hard token budget, modelling encoders
// whose input window truncates long content (BERT's 512-token limit in the
// AdH baseline, GPT-style context limits in TML). Tokens beyond MaxTokens
// are silently dropped before encoding — which is precisely the failure
// mode the paper attributes to those baselines.
type Truncating struct {
	M         *Model
	MaxTokens int
}

// Dim returns the wrapped model's dimensionality.
func (t Truncating) Dim() int { return t.M.Dim() }

// Encode embeds at most MaxTokens leading tokens of s.
func (t Truncating) Encode(s string) []float32 {
	toks := text.Tokenize(s)
	if t.MaxTokens > 0 && len(toks) > t.MaxTokens {
		toks = toks[:t.MaxTokens]
	}
	return t.M.EncodeTokens(toks)
}
