package embed

import (
	"bytes"
	"encoding/gob"
)

// lexiconImage is the exported gob shadow of Lexicon.
type lexiconImage struct {
	Concepts map[string]int32
	Parents  map[int32]int32
	Next     int32
}

// GobEncode implements gob.GobEncoder: lexicons persist alongside the
// engines whose encoders they configure.
func (l *Lexicon) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(lexiconImage{
		Concepts: l.concepts,
		Parents:  l.parents,
		Next:     l.next,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (l *Lexicon) GobDecode(data []byte) error {
	var img lexiconImage
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&img); err != nil {
		return err
	}
	l.concepts = img.Concepts
	l.parents = img.Parents
	l.next = img.Next
	if l.concepts == nil {
		l.concepts = make(map[string]int32)
	}
	if l.parents == nil {
		l.parents = make(map[int32]int32)
	}
	return nil
}
