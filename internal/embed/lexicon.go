// Package embed implements the sentence-encoder substrate that stands in for
// the paper's S-BERT "all-mpnet-base-v2" model.
//
// The paper needs three properties from its encoder and nothing else:
//
//  1. every string maps to a fixed-dimension (768) unit vector;
//  2. cosine similarity is high between semantically related strings even
//     with zero lexical overlap ("Comirnaty" vs "Pfizer-BioNTech"), and low
//     between unrelated strings;
//  3. queries and attribute values are encoded by the same model, so the
//     comparison is meaningful.
//
// We provide these deterministically and offline. Semantics come from a
// Lexicon that assigns terms to concepts (synonym sets); each concept owns a
// stable pseudo-random unit vector and each member term embeds as a mixture
// of its concept vector and a term-specific hash vector. Out-of-lexicon
// terms fall back to character-n-gram hashing (fastText style) so that
// spelling variants land near each other. Sentences are IDF-weighted mean
// pooled and L2-normalized, exactly the pooling S-BERT uses.
package embed

import (
	"sort"

	"semdisco/internal/text"
)

// Lexicon maps terms to concept identifiers. Terms that share a concept are
// synonyms or near-synonyms: their embeddings share a dominant component.
// Lexicons are built by whoever knows the domain — in this repo, the corpus
// generator builds one per synthetic federation, playing the role that
// S-BERT's pretraining corpus plays in the paper.
type Lexicon struct {
	concepts map[string]int32 // stemmed term -> concept id
	parents  map[int32]int32  // concept id -> parent concept id
	next     int32
}

// NewLexicon returns an empty lexicon.
func NewLexicon() *Lexicon {
	return &Lexicon{
		concepts: make(map[string]int32),
		parents:  make(map[int32]int32),
	}
}

// NewConcept allocates a fresh concept identifier.
func (l *Lexicon) NewConcept() int32 {
	id := l.next
	l.next++
	return id
}

// Add registers term under the given concept. Terms are normalized through
// the same tokenizer+stemmer pipeline the encoder uses; multi-token terms
// register each token.
func (l *Lexicon) Add(concept int32, term string) {
	if concept >= l.next {
		l.next = concept + 1
	}
	for _, tok := range text.Tokenize(term) {
		l.concepts[text.Stem(tok)] = concept
	}
}

// AddSynonyms allocates a concept and registers all terms under it,
// returning the concept id.
func (l *Lexicon) AddSynonyms(terms ...string) int32 {
	id := l.NewConcept()
	for _, t := range terms {
		l.Add(id, t)
	}
	return id
}

// Concept returns the concept id of an (already stemmed) token.
func (l *Lexicon) Concept(stem string) (int32, bool) {
	id, ok := l.concepts[stem]
	return id, ok
}

// SetParent links a concept under a broader parent concept (a topic or
// domain). Concepts sharing a parent embed with a common component, so
// topically related terms — vaccine names and disease names, say — are
// measurably closer to each other than to unrelated terms, the way a real
// pretrained encoder's space is organized. Parent ids come from NewConcept
// (or any concept id); one level of hierarchy is honored.
func (l *Lexicon) SetParent(concept, parent int32) {
	if parent >= l.next {
		l.next = parent + 1
	}
	if concept >= l.next {
		l.next = concept + 1
	}
	l.parents[concept] = parent
}

// Parent returns the parent of a concept, if any.
func (l *Lexicon) Parent(concept int32) (int32, bool) {
	p, ok := l.parents[concept]
	return p, ok
}

// Len returns the number of registered terms.
func (l *Lexicon) Len() int { return len(l.concepts) }

// NumConcepts returns the number of allocated concepts.
func (l *Lexicon) NumConcepts() int { return int(l.next) }

// Terms returns the registered terms in deterministic order. Intended for
// diagnostics and persistence.
func (l *Lexicon) Terms() []string {
	out := make([]string, 0, len(l.concepts))
	for t := range l.concepts {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
