package pq

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"

	"semdisco/internal/vec"
)

func randomUnitVecs(n, dim int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, dim)
		for d := range v {
			v[d] = float32(rng.NormFloat64())
		}
		out[i] = vec.Normalize(v)
	}
	return out
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, Config{}); err == nil {
		t.Fatal("empty sample must error")
	}
	if _, err := Train([][]float32{{1, 2, 3}}, Config{M: 2}); err == nil {
		t.Fatal("M not dividing dim must error")
	}
	if _, err := Train([][]float32{{1, 2}}, Config{K: 300}); err == nil {
		t.Fatal("K>256 must error")
	}
}

func TestEncodeDecodeRoundTripError(t *testing.T) {
	vs := randomUnitVecs(500, 64, 1)
	q, err := Train(vs, Config{M: 8, K: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if q.CodeLen() != 8 {
		t.Fatalf("CodeLen=%d", q.CodeLen())
	}
	var totalErr float64
	for _, v := range vs {
		rec := q.Decode(q.Encode(v))
		totalErr += float64(vec.L2Sq(v, rec))
	}
	mse := totalErr / float64(len(vs))
	// Random unit vectors have squared norm 1; reconstruction must capture
	// a substantial fraction of the energy.
	if mse > 0.9 {
		t.Fatalf("reconstruction MSE too high: %v", mse)
	}
}

func TestQuantizationIsNearestCentroid(t *testing.T) {
	vs := randomUnitVecs(200, 32, 2)
	q, err := Train(vs, Config{M: 4, K: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	v := vs[7]
	code := q.Encode(v)
	for s := 0; s < q.CodeLen(); s++ {
		lo := s * q.subDim
		subv := v[lo : lo+q.subDim]
		bestD := float32(math.MaxFloat32)
		best := 0
		for c, cent := range q.codebooks[s] {
			if d := vec.L2Sq(subv, cent); d < bestD {
				best, bestD = c, d
			}
		}
		if int(code[s]) != best {
			t.Fatalf("subspace %d: code %d, nearest %d", s, code[s], best)
		}
	}
}

func TestADCMatchesDecodedDistance(t *testing.T) {
	vs := randomUnitVecs(300, 64, 3)
	q, err := Train(vs, Config{M: 8, K: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	query := randomUnitVecs(1, 64, 99)[0]
	table := q.DistTable(query)
	for _, v := range vs[:50] {
		code := q.Encode(v)
		adc := table.Lookup(code)
		exact := vec.L2Sq(query, q.Decode(code))
		if math.Abs(float64(adc-exact)) > 1e-3 {
			t.Fatalf("ADC=%v decoded=%v", adc, exact)
		}
	}
}

func TestDotTableMatchesDecodedDot(t *testing.T) {
	vs := randomUnitVecs(300, 64, 4)
	q, err := Train(vs, Config{M: 8, K: 32, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	query := randomUnitVecs(1, 64, 98)[0]
	table := q.DotTable(query)
	for _, v := range vs[:50] {
		code := q.Encode(v)
		adc := table.Lookup(code)
		exact := vec.Dot(query, q.Decode(code))
		if math.Abs(float64(adc-exact)) > 1e-3 {
			t.Fatalf("DotTable=%v decoded=%v", adc, exact)
		}
	}
}

func TestADCPreservesNeighborRanking(t *testing.T) {
	// Clustered data: PQ must keep near things near. Build three tight
	// clusters and check that ADC ranks same-cluster points first.
	rng := rand.New(rand.NewSource(5))
	var vs [][]float32
	for c := 0; c < 3; c++ {
		center := randomUnitVecs(1, 64, int64(c+10))[0]
		for i := 0; i < 60; i++ {
			v := vec.Clone(center)
			for d := range v {
				v[d] += float32(rng.NormFloat64()) * 0.05
			}
			vs = append(vs, vec.Normalize(v))
		}
	}
	q, err := Train(vs, Config{M: 8, K: 64, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	codes := make([][]byte, len(vs))
	for i, v := range vs {
		codes[i] = q.Encode(v)
	}
	query := vs[0] // belongs to cluster 0 (indices 0..59)
	table := q.DistTable(query)
	type pair struct {
		idx int
		d   float32
	}
	ps := make([]pair, len(vs))
	for i := range vs {
		ps[i] = pair{i, table.Lookup(codes[i])}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].d < ps[j].d })
	inCluster := 0
	for _, p := range ps[:30] {
		if p.idx < 60 {
			inCluster++
		}
	}
	if inCluster < 28 {
		t.Fatalf("only %d/30 of the nearest by ADC are in the true cluster", inCluster)
	}
}

func TestCompressionRatio(t *testing.T) {
	vs := randomUnitVecs(300, 128, 6)
	q, err := Train(vs, Config{M: 16, K: 256, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	raw := 128 * 4
	compressed := q.CodeLen()
	if ratio := float64(raw) / float64(compressed); ratio < 30 {
		t.Fatalf("compression ratio %v too small", ratio)
	}
}

func TestKReducedToSampleSize(t *testing.T) {
	vs := randomUnitVecs(10, 16, 7)
	q, err := Train(vs, Config{M: 2, Seed: 7}) // default K=256 > 10 samples
	if err != nil {
		t.Fatal(err)
	}
	if q.K() != 10 {
		t.Fatalf("K=%d want 10", q.K())
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	vs := randomUnitVecs(200, 32, 8)
	q, err := Train(vs, Config{M: 4, K: 32, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := q.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	q2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	v := vs[3]
	c1, c2 := q.Encode(v), q2.Encode(v)
	if !bytes.Equal(c1, c2) {
		t.Fatal("round-tripped quantizer encodes differently")
	}
	d1, d2 := q.Decode(c1), q2.Decode(c2)
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatal("round-tripped quantizer decodes differently")
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("garbage must not parse")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty must not parse")
	}
}

func TestDefaultM768(t *testing.T) {
	vs := randomUnitVecs(50, 768, 9)
	q, err := Train(vs, Config{K: 16, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if 768%q.CodeLen() != 0 {
		t.Fatalf("default M=%d does not divide 768", q.CodeLen())
	}
}

func BenchmarkEncode768(b *testing.B) {
	vs := randomUnitVecs(300, 768, 10)
	q, err := Train(vs, Config{K: 64, Seed: 10})
	if err != nil {
		b.Fatal(err)
	}
	code := make([]byte, q.CodeLen())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.EncodeTo(vs[i%len(vs)], code)
	}
}

func BenchmarkADCLookup(b *testing.B) {
	vs := randomUnitVecs(300, 768, 11)
	q, err := Train(vs, Config{K: 64, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	codes := make([][]byte, len(vs))
	for i, v := range vs {
		codes[i] = q.Encode(v)
	}
	table := q.DistTable(vs[0])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = table.Lookup(codes[i%len(codes)])
	}
}

func TestSDCMatchesDecodedPairs(t *testing.T) {
	vs := randomUnitVecs(300, 64, 20)
	q, err := Train(vs, Config{M: 8, K: 32, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	sdc := q.SDCTables()
	for i := 0; i < 20; i++ {
		a, b := q.Encode(vs[i]), q.Encode(vs[i+20])
		got := sdc.Dist(a, b)
		want := vec.L2Sq(q.Decode(a), q.Decode(b))
		if math.Abs(float64(got-want)) > 1e-3 {
			t.Fatalf("SDC=%v decoded=%v", got, want)
		}
	}
}

func TestSDCSelfDistanceZero(t *testing.T) {
	vs := randomUnitVecs(100, 32, 21)
	q, err := Train(vs, Config{M: 4, K: 16, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	sdc := q.SDCTables()
	code := q.Encode(vs[0])
	if d := sdc.Dist(code, code); d != 0 {
		t.Fatalf("self distance %v", d)
	}
}

// TestTrainWorkerCountInvariance pins the training determinism contract:
// the M subquantizers use disjoint derived seeds and k-means itself is
// worker-count-invariant, so the codebooks must come out bit-identical no
// matter how training was sharded.
func TestTrainWorkerCountInvariance(t *testing.T) {
	sample := randomUnitVecs(400, 32, 13)
	base, err := Train(sample, Config{M: 4, K: 16, Seed: 13, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		q, err := Train(sample, Config{M: 4, K: 16, Seed: 13, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for s := range base.codebooks {
			for c := range base.codebooks[s] {
				for d := range base.codebooks[s][c] {
					if q.codebooks[s][c][d] != base.codebooks[s][c][d] {
						t.Fatalf("workers=%d: codebook[%d][%d][%d] not bit-identical", workers, s, c, d)
					}
				}
			}
		}
	}
}
