package pq

import (
	"math"
	"sort"

	"semdisco/internal/vec"
)

// Distortion summarizes the reconstruction error of a quantizer over a set
// of vectors: the L2 distance between each vector and its decode(encode(·))
// round trip. Rising distortion after incremental adds means the codebooks
// — trained once on the first TrainSize vectors — no longer fit the data
// distribution, silently degrading ranking quality.
type Distortion struct {
	Samples int     `json:"samples"`
	Mean    float64 `json:"mean"`
	P95     float64 `json:"p95"`
	Max     float64 `json:"max"`
}

// ReconstructionError returns the L2 distance between v and its quantized
// reconstruction.
func (q *Quantizer) ReconstructionError(v []float32) float64 {
	return math.Sqrt(float64(vec.L2Sq(v, q.Decode(q.Encode(v)))))
}

// Distortion measures reconstruction error over the given vectors. The
// caller chooses the sample; cost is one encode+decode per vector.
func (q *Quantizer) Distortion(vectors [][]float32) Distortion {
	d := Distortion{Samples: len(vectors)}
	if len(vectors) == 0 {
		return d
	}
	errs := make([]float64, len(vectors))
	var sum float64
	for i, v := range vectors {
		e := q.ReconstructionError(v)
		errs[i] = e
		sum += e
		if e > d.Max {
			d.Max = e
		}
	}
	d.Mean = sum / float64(len(errs))
	sort.Float64s(errs)
	idx := int(math.Ceil(0.95*float64(len(errs)))) - 1
	if idx < 0 {
		idx = 0
	}
	d.P95 = errs[idx]
	return d
}
