package pq

import (
	"testing"
)

func TestDistortionStats(t *testing.T) {
	vs := randomUnitVecs(400, 64, 2)
	q, err := Train(vs[:256], Config{M: 8, K: 64, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	d := q.Distortion(vs)
	if d.Samples != 400 {
		t.Fatalf("samples=%d", d.Samples)
	}
	if d.Mean <= 0 || d.P95 <= 0 || d.Max <= 0 {
		t.Fatalf("distortion not positive: %+v", d)
	}
	if d.Mean > d.P95 || d.P95 > d.Max {
		t.Fatalf("quantile ordering violated: %+v", d)
	}
	// Unit vectors: error is bounded by 2 (diametrically opposite points).
	if d.Max > 2.01 {
		t.Fatalf("max error %v exceeds unit-sphere diameter", d.Max)
	}

	// Exact reconstruction of a centroid has (near-)zero error: encode a
	// decoded vector and the round trip is a fixed point.
	fixed := q.Decode(q.Encode(vs[0]))
	if e := q.ReconstructionError(fixed); e > 1e-5 {
		t.Fatalf("fixed-point reconstruction error %v", e)
	}

	if empty := q.Distortion(nil); empty.Samples != 0 || empty.Mean != 0 {
		t.Fatalf("empty distortion=%+v", empty)
	}
}
