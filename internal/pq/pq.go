// Package pq implements Product Quantization (Jégou, Douze, Schmid; TPAMI
// 2011) for compressing high-dimensional float32 vectors into short codes
// and for computing approximate distances directly on the codes via
// asymmetric distance computation (ADC) lookup tables.
//
// A d-dimensional vector is split into M contiguous subvectors of d/M
// dimensions; each subspace gets its own k-means codebook of K centroids
// (K ≤ 256 so one code byte per subspace). A vector is stored as M bytes.
package pq

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"semdisco/internal/kmeans"
	"semdisco/internal/par"
	"semdisco/internal/vec"
)

// Quantizer is a trained product quantizer. It is immutable after Train and
// safe for concurrent use.
type Quantizer struct {
	dim    int
	m      int // number of subspaces
	k      int // centroids per subspace (≤ 256)
	subDim int
	// codebooks[s][c] is centroid c of subspace s, laid out as subDim floats.
	codebooks [][][]float32
}

// Config controls training.
type Config struct {
	// M is the number of subspaces; must divide the dimension. Defaults to
	// dim/8 clamped to [1, 96] (96 subspaces of 8 dims for 768-d vectors).
	M int
	// K is the number of centroids per subspace, at most 256. Defaults to
	// 256, reduced automatically when the training set is smaller.
	K int
	// Seed drives codebook training.
	Seed int64
	// MaxIter caps k-means iterations per subspace. Defaults to 15.
	MaxIter int
	// Workers bounds training parallelism. The M subspaces train
	// independently (each with its own derived seed), so training is
	// sharded across them; when there are fewer subspaces than workers the
	// surplus flows into each subspace's k-means. Results are identical
	// for every worker count. 0 or 1 trains serially.
	Workers int
}

// Train builds a quantizer from a sample of vectors. All vectors must share
// one dimension. Training cost is M independent k-means runs.
func Train(sample [][]float32, cfg Config) (*Quantizer, error) {
	if len(sample) == 0 {
		return nil, errors.New("pq: empty training sample")
	}
	dim := len(sample[0])
	if dim == 0 {
		return nil, errors.New("pq: zero-dimensional vectors")
	}
	m := cfg.M
	if m == 0 {
		m = dim / 8
		if m < 1 {
			m = 1
		}
		if m > 96 {
			m = 96
		}
		for dim%m != 0 {
			m--
		}
	}
	if dim%m != 0 {
		return nil, fmt.Errorf("pq: M=%d does not divide dim=%d", m, dim)
	}
	k := cfg.K
	if k == 0 {
		k = 256
	}
	if k > 256 {
		return nil, fmt.Errorf("pq: K=%d exceeds one byte per code", k)
	}
	if k > len(sample) {
		k = len(sample)
	}
	maxIter := cfg.MaxIter
	if maxIter == 0 {
		maxIter = 15
	}
	for i, v := range sample {
		if len(v) != dim {
			return nil, fmt.Errorf("pq: vector %d has dim %d, want %d", i, len(v), dim)
		}
	}
	subDim := dim / m
	q := &Quantizer{dim: dim, m: m, k: k, subDim: subDim,
		codebooks: make([][][]float32, m)}
	workers := par.Workers(cfg.Workers)
	// The M subquantizers are independent k-means problems with disjoint
	// seeds, so they shard across workers directly; leftover parallelism
	// (workers > M) is handed to each subspace's k-means, whose result is
	// worker-count-invariant — either way the codebooks come out identical.
	innerWorkers := 1
	if m < workers {
		innerWorkers = workers
	}
	par.Each(m, workers, func(s int) {
		lo := s * subDim
		sub := make([][]float32, len(sample))
		for i, v := range sample {
			sub[i] = v[lo : lo+subDim]
		}
		res := kmeans.Run(sub, kmeans.Config{
			K: k, Seed: cfg.Seed + int64(s), MaxIter: maxIter, Workers: innerWorkers,
		})
		q.codebooks[s] = res.Centroids
	})
	return q, nil
}

// Dim returns the dimensionality of vectors this quantizer accepts.
func (q *Quantizer) Dim() int { return q.dim }

// CodeLen returns the number of bytes in one encoded vector (= M).
func (q *Quantizer) CodeLen() int { return q.m }

// K returns the number of centroids per subspace.
func (q *Quantizer) K() int { return q.k }

// Encode quantizes v into a fresh M-byte code.
func (q *Quantizer) Encode(v []float32) []byte {
	code := make([]byte, q.m)
	q.EncodeTo(v, code)
	return code
}

// EncodeTo quantizes v into code, which must have length M.
func (q *Quantizer) EncodeTo(v []float32, code []byte) {
	if len(v) != q.dim {
		panic(fmt.Sprintf("pq: encode dim %d, want %d", len(v), q.dim))
	}
	if len(code) != q.m {
		panic(fmt.Sprintf("pq: code len %d, want %d", len(code), q.m))
	}
	for s := 0; s < q.m; s++ {
		lo := s * q.subDim
		subv := v[lo : lo+q.subDim]
		best, bestD := 0, float32(math.MaxFloat32)
		for c, cent := range q.codebooks[s] {
			if d := vec.L2Sq(subv, cent); d < bestD {
				best, bestD = c, d
			}
		}
		code[s] = byte(best)
	}
}

// Decode reconstructs the centroid approximation of a code.
func (q *Quantizer) Decode(code []byte) []float32 {
	if len(code) != q.m {
		panic(fmt.Sprintf("pq: code len %d, want %d", len(code), q.m))
	}
	out := make([]float32, q.dim)
	for s := 0; s < q.m; s++ {
		copy(out[s*q.subDim:], q.codebooks[s][code[s]])
	}
	return out
}

// Table is an ADC lookup table for one query: Table[s][c] is the partial
// squared distance (or negative partial dot product, depending on the
// builder) between the query's s-th subvector and centroid c.
type Table [][]float32

// DistTable precomputes squared-L2 partials for the query so that
// approximate distance to any code is M table lookups.
func (q *Quantizer) DistTable(query []float32) Table {
	if len(query) != q.dim {
		panic(fmt.Sprintf("pq: query dim %d, want %d", len(query), q.dim))
	}
	t := make(Table, q.m)
	for s := 0; s < q.m; s++ {
		lo := s * q.subDim
		subq := query[lo : lo+q.subDim]
		row := make([]float32, len(q.codebooks[s]))
		for c, cent := range q.codebooks[s] {
			row[c] = vec.L2Sq(subq, cent)
		}
		t[s] = row
	}
	return t
}

// DotTable precomputes inner-product partials, used when ranking by cosine
// over unit vectors (higher is better).
func (q *Quantizer) DotTable(query []float32) Table {
	if len(query) != q.dim {
		panic(fmt.Sprintf("pq: query dim %d, want %d", len(query), q.dim))
	}
	t := make(Table, q.m)
	for s := 0; s < q.m; s++ {
		lo := s * q.subDim
		subq := query[lo : lo+q.subDim]
		row := make([]float32, len(q.codebooks[s]))
		for c, cent := range q.codebooks[s] {
			row[c] = vec.Dot(subq, cent)
		}
		t[s] = row
	}
	return t
}

// Lookup sums the table partials for code: approximate squared distance for
// DistTable, approximate dot product for DotTable.
func (t Table) Lookup(code []byte) float32 {
	var s float32
	for i, c := range code {
		s += t[i][c]
	}
	return s
}

// SDC holds the symmetric distance computation tables: precomputed squared
// distances between every pair of centroids within each subspace, allowing
// code-to-code distance estimation without decoding. Used for graph
// construction when raw vectors have been dropped after compression.
type SDC struct {
	k      int
	tables [][]float32 // tables[s][ci*k+cj]
}

// SDCTables precomputes the symmetric tables; cost O(M·K²·subDim), sharded
// across subspaces (each table is independent, so the output is identical
// at any parallelism).
func (q *Quantizer) SDCTables() *SDC {
	s := &SDC{k: q.k, tables: make([][]float32, q.m)}
	par.Each(q.m, par.Workers(0), func(sub int) {
		t := make([]float32, q.k*q.k)
		for i := 0; i < q.k; i++ {
			for j := i + 1; j < q.k; j++ {
				d := vec.L2Sq(q.codebooks[sub][i], q.codebooks[sub][j])
				t[i*q.k+j] = d
				t[j*q.k+i] = d
			}
		}
		s.tables[sub] = t
	})
	return s
}

// Dist estimates the squared Euclidean distance between two codes.
func (s *SDC) Dist(a, b []byte) float32 {
	var d float32
	for i := range a {
		d += s.tables[i][int(a[i])*s.k+int(b[i])]
	}
	return d
}

// WriteTo serializes the quantizer. Format: magic, dims, then codebooks as
// little-endian float32.
func (q *Quantizer) WriteTo(w io.Writer) (int64, error) {
	var n int64
	write := func(v uint32) error {
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], v)
		k, err := w.Write(buf[:])
		n += int64(k)
		return err
	}
	if err := write(pqMagic); err != nil {
		return n, err
	}
	for _, v := range []int{q.dim, q.m, q.k} {
		if err := write(uint32(v)); err != nil {
			return n, err
		}
	}
	for s := 0; s < q.m; s++ {
		for _, cent := range q.codebooks[s] {
			for _, f := range cent {
				if err := write(math.Float32bits(f)); err != nil {
					return n, err
				}
			}
		}
	}
	return n, nil
}

const pqMagic = 0x50511001

// Read deserializes a quantizer written by WriteTo.
func Read(r io.Reader) (*Quantizer, error) {
	read := func() (uint32, error) {
		var buf [4]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(buf[:]), nil
	}
	magic, err := read()
	if err != nil {
		return nil, err
	}
	if magic != pqMagic {
		return nil, errors.New("pq: bad magic")
	}
	var dims [3]uint32
	for i := range dims {
		if dims[i], err = read(); err != nil {
			return nil, err
		}
	}
	dim, m, k := int(dims[0]), int(dims[1]), int(dims[2])
	if dim <= 0 || m <= 0 || k <= 0 || k > 256 || dim%m != 0 {
		return nil, fmt.Errorf("pq: corrupt header dim=%d m=%d k=%d", dim, m, k)
	}
	q := &Quantizer{dim: dim, m: m, k: k, subDim: dim / m,
		codebooks: make([][][]float32, m)}
	for s := 0; s < m; s++ {
		q.codebooks[s] = make([][]float32, k)
		for c := 0; c < k; c++ {
			cent := make([]float32, q.subDim)
			for d := range cent {
				bits, err := read()
				if err != nil {
					return nil, err
				}
				cent[d] = math.Float32frombits(bits)
			}
			q.codebooks[s][c] = cent
		}
	}
	return q, nil
}
