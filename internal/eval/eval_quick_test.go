package eval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomJudgedAndRanking derives a judgment set and a ranking from a seed.
func randomJudgedAndRanking(seed int64) (map[string]int, []string) {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(30)
	judged := make(map[string]int, n)
	var docs []string
	for i := 0; i < n; i++ {
		doc := string(rune('a'+i%26)) + string(rune('0'+i/26))
		judged[doc] = rng.Intn(3)
		docs = append(docs, doc)
	}
	rng.Shuffle(len(docs), func(i, j int) { docs[i], docs[j] = docs[j], docs[i] })
	// Rank a random prefix, possibly with unjudged extras.
	ranking := append([]string{}, docs[:rng.Intn(len(docs)+1)]...)
	for i := 0; i < rng.Intn(5); i++ {
		ranking = append(ranking, "unjudged-"+string(rune('a'+i)))
	}
	return judged, ranking
}

// TestQuickMetricRanges: every metric lies in [0, 1] for arbitrary inputs.
func TestQuickMetricRanges(t *testing.T) {
	f := func(seed int64) bool {
		judged, ranking := randomJudgedAndRanking(seed)
		for _, v := range []float64{
			AveragePrecision(judged, ranking),
			ReciprocalRank(judged, ranking),
			NDCG(judged, ranking, 5),
			NDCG(judged, ranking, 100),
			PrecisionAt(judged, ranking, 10),
			RecallAt(judged, ranking, 10),
		} {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIdealRankingIsPerfect: ranking all relevant docs first by grade
// yields AP = 1 and NDCG = 1.
func TestQuickIdealRankingIsPerfect(t *testing.T) {
	f := func(seed int64) bool {
		judged, _ := randomJudgedAndRanking(seed)
		// Build the ideal ranking: grade 2 first, then 1, then 0.
		var ideal []string
		for g := 2; g >= 0; g-- {
			for doc, grade := range judged {
				if grade == g {
					ideal = append(ideal, doc)
				}
			}
		}
		hasRelevant := false
		for _, g := range judged {
			if g >= 1 {
				hasRelevant = true
			}
		}
		if !hasRelevant {
			return true
		}
		if ap := AveragePrecision(judged, ideal); ap < 0.999 {
			return false
		}
		if nd := NDCG(judged, ideal, len(ideal)); nd < 0.999 {
			return false
		}
		return ReciprocalRank(judged, ideal) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDCGMonotoneInCutoff: DCG never decreases as the cutoff grows.
func TestQuickDCGMonotoneInCutoff(t *testing.T) {
	f := func(seed int64) bool {
		judged, ranking := randomJudgedAndRanking(seed)
		prev := 0.0
		for k := 1; k <= len(ranking)+2; k++ {
			cur := DCG(judged, ranking, k)
			if cur < prev-1e-12 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
