package eval

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestParseQrels(t *testing.T) {
	in := `
# comment
q1 0 docA 2
q1 0 docB 0
q2 0 docA 1
`
	qrels, err := ParseQrels(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if qrels["q1"]["docA"] != 2 || qrels["q1"]["docB"] != 0 || qrels["q2"]["docA"] != 1 {
		t.Fatalf("qrels=%v", qrels)
	}
	if _, err := ParseQrels(strings.NewReader("q1 0 docA notanumber\n")); err == nil {
		t.Fatal("bad grade must fail")
	}
	if _, err := ParseQrels(strings.NewReader("too few\n")); err == nil {
		t.Fatal("short line must fail")
	}
}

func TestParseRunSixAndFourField(t *testing.T) {
	six := `q1 Q0 docB 2 0.5 mytag
q1 Q0 docA 1 0.9 mytag
q2 Q0 docC 1 0.7 mytag`
	run, err := ParseRun(strings.NewReader(six))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(run["q1"], []string{"docA", "docB"}) {
		t.Fatalf("q1=%v", run["q1"])
	}
	four := "q1 docA 1 0.9\nq1 docB 2 0.5\n"
	run4, err := ParseRun(strings.NewReader(four))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(run4["q1"], []string{"docA", "docB"}) {
		t.Fatalf("four-field q1=%v", run4["q1"])
	}
	if _, err := ParseRun(strings.NewReader("a b c\n")); err == nil {
		t.Fatal("bad field count must fail")
	}
	if _, err := ParseRun(strings.NewReader("q1 Q0 d x 0.5 t\n")); err == nil {
		t.Fatal("bad rank must fail")
	}
	if _, err := ParseRun(strings.NewReader("q1 Q0 d 1 zz t\n")); err == nil {
		t.Fatal("bad score must fail")
	}
}

func TestRunRoundTrip(t *testing.T) {
	run := Run{
		"q1": {"a", "b", "c"},
		"q2": {"x"},
	}
	var buf bytes.Buffer
	if err := WriteRun(&buf, run, "tag"); err != nil {
		t.Fatal(err)
	}
	got, err := ParseRun(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, run) {
		t.Fatalf("round trip: %v vs %v", got, run)
	}
}
