package eval

import (
	"fmt"
	"math/rand"
	"testing"
)

// buildRuns creates qrels over nq queries and two runs: runA ranks the
// relevant doc at position posA (1-based), runB at posB.
func buildRuns(nq, posA, posB int) (Qrels, Run, Run) {
	qrels := Qrels{}
	runA, runB := Run{}, Run{}
	mkRanking := func(q string, pos int) []string {
		var r []string
		for i := 1; i <= 10; i++ {
			if i == pos {
				r = append(r, q+"-rel")
			} else {
				r = append(r, fmt.Sprintf("%s-junk-%d", q, i))
			}
		}
		return r
	}
	for i := 0; i < nq; i++ {
		q := fmt.Sprintf("q%02d", i)
		qrels.Add(q, q+"-rel", 2)
		runA[q] = mkRanking(q, posA)
		runB[q] = mkRanking(q, posB)
	}
	return qrels, runA, runB
}

func TestSignificanceDetectsRealDifference(t *testing.T) {
	qrels, runA, runB := buildRuns(30, 1, 5) // A clearly better
	diff, p := Significance(qrels, runA, runB, APMetric, 5000, 1)
	if diff <= 0 {
		t.Fatalf("diff=%v, A should win", diff)
	}
	if p > 0.01 {
		t.Fatalf("p=%v, a consistent 30-query difference must be significant", p)
	}
}

func TestSignificanceIdenticalRunsNotSignificant(t *testing.T) {
	qrels, runA, _ := buildRuns(30, 2, 2)
	diff, p := Significance(qrels, runA, runA, APMetric, 2000, 2)
	if diff != 0 {
		t.Fatalf("identical runs diff=%v", diff)
	}
	if p < 0.99 {
		t.Fatalf("identical runs p=%v, want ≈ 1", p)
	}
}

func TestSignificanceNoisyTieNotSignificant(t *testing.T) {
	// Runs differ per query but with no systematic direction.
	qrels := Qrels{}
	runA, runB := Run{}, Run{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		q := fmt.Sprintf("q%02d", i)
		qrels.Add(q, q+"-rel", 1)
		posA, posB := 1+rng.Intn(8), 1+rng.Intn(8)
		mk := func(pos int) []string {
			var r []string
			for j := 1; j <= 8; j++ {
				if j == pos {
					r = append(r, q+"-rel")
				} else {
					r = append(r, fmt.Sprintf("%s-j%d", q, j))
				}
			}
			return r
		}
		runA[q] = mk(posA)
		runB[q] = mk(posB)
	}
	_, p := Significance(qrels, runA, runB, APMetric, 5000, 4)
	if p < 0.01 {
		t.Fatalf("random per-query noise reported significant: p=%v", p)
	}
}

func TestSignificanceEmptyQrels(t *testing.T) {
	diff, p := Significance(Qrels{}, Run{}, Run{}, APMetric, 100, 5)
	if diff != 0 || p != 1 {
		t.Fatalf("empty qrels: diff=%v p=%v", diff, p)
	}
}

func TestNDCGMetricAdapter(t *testing.T) {
	judged := map[string]int{"a": 2, "b": 0}
	m := NDCGMetric(5)
	if got := m(judged, []string{"a", "b"}); got != 1 {
		t.Fatalf("NDCGMetric=%v", got)
	}
}
