// Package eval implements the retrieval-quality metrics the paper reports:
// Mean Average Precision (MAP), Mean Reciprocal Rank (MRR) and Normalized
// Discounted Cumulative Gain (NDCG) at configurable cut-offs, over graded
// relevance judgments (0 irrelevant / 1 partially relevant / 2 fully
// relevant, the WikiTables scale).
package eval

import (
	"math"
	"sort"
)

// Qrels holds graded relevance judgments: query id → document id → grade.
// Grades ≥ 1 count as relevant for the binary metrics (MAP, MRR).
type Qrels map[string]map[string]int

// Add records one judgment.
func (q Qrels) Add(query, doc string, grade int) {
	m, ok := q[query]
	if !ok {
		m = make(map[string]int)
		q[query] = m
	}
	m[doc] = grade
}

// Queries returns the judged query ids, sorted.
func (q Qrels) Queries() []string {
	out := make([]string, 0, len(q))
	for id := range q {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run maps each query id to its ranked result list (best first).
type Run map[string][]string

// AveragePrecision computes AP of one ranking against binary relevance
// (grade ≥ 1). Returns 0 when the query has no relevant documents.
func AveragePrecision(judged map[string]int, ranking []string) float64 {
	totalRelevant := 0
	for _, g := range judged {
		if g >= 1 {
			totalRelevant++
		}
	}
	if totalRelevant == 0 {
		return 0
	}
	hits, sum := 0, 0.0
	for i, doc := range ranking {
		if judged[doc] >= 1 {
			hits++
			sum += float64(hits) / float64(i+1)
		}
	}
	return sum / float64(totalRelevant)
}

// ReciprocalRank returns 1/rank of the first relevant result, 0 if none.
func ReciprocalRank(judged map[string]int, ranking []string) float64 {
	for i, doc := range ranking {
		if judged[doc] >= 1 {
			return 1 / float64(i+1)
		}
	}
	return 0
}

// DCG computes the discounted cumulative gain at cut-off k with the
// standard gain 2^grade − 1.
func DCG(judged map[string]int, ranking []string, k int) float64 {
	if k > len(ranking) {
		k = len(ranking)
	}
	var dcg float64
	for i := 0; i < k; i++ {
		g := judged[ranking[i]]
		if g > 0 {
			dcg += (math.Pow(2, float64(g)) - 1) / math.Log2(float64(i)+2)
		}
	}
	return dcg
}

// NDCG computes the normalized DCG at cut-off k. Queries with no relevant
// documents score 0.
func NDCG(judged map[string]int, ranking []string, k int) float64 {
	ideal := idealDCG(judged, k)
	if ideal == 0 {
		return 0
	}
	return DCG(judged, ranking, k) / ideal
}

func idealDCG(judged map[string]int, k int) float64 {
	grades := make([]int, 0, len(judged))
	for _, g := range judged {
		if g > 0 {
			grades = append(grades, g)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(grades)))
	if k > len(grades) {
		k = len(grades)
	}
	var dcg float64
	for i := 0; i < k; i++ {
		dcg += (math.Pow(2, float64(grades[i])) - 1) / math.Log2(float64(i)+2)
	}
	return dcg
}

// PrecisionAt returns the fraction of the top-k results that are relevant.
func PrecisionAt(judged map[string]int, ranking []string, k int) float64 {
	if k <= 0 {
		return 0
	}
	n := k
	if n > len(ranking) {
		n = len(ranking)
	}
	hits := 0
	for i := 0; i < n; i++ {
		if judged[ranking[i]] >= 1 {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// RecallAt returns the fraction of relevant documents found in the top k.
func RecallAt(judged map[string]int, ranking []string, k int) float64 {
	totalRelevant := 0
	for _, g := range judged {
		if g >= 1 {
			totalRelevant++
		}
	}
	if totalRelevant == 0 {
		return 0
	}
	if k > len(ranking) {
		k = len(ranking)
	}
	hits := 0
	for i := 0; i < k; i++ {
		if judged[ranking[i]] >= 1 {
			hits++
		}
	}
	return float64(hits) / float64(totalRelevant)
}

// Report aggregates the paper's metric battery over a run.
type Report struct {
	MAP  float64
	MRR  float64
	NDCG map[int]float64 // cut-off → mean NDCG
	// Queries is the number of judged queries the run was scored on.
	Queries int
}

// Cutoffs used throughout the paper's tables.
var Cutoffs = []int{5, 10, 15, 20}

// Evaluate scores a run against qrels, averaging per-query metrics over all
// judged queries (queries missing from the run contribute zeros, as absent
// results are misses, not omissions from the denominator).
func Evaluate(qrels Qrels, run Run) Report {
	rep := Report{NDCG: make(map[int]float64)}
	n := 0
	for _, query := range qrels.Queries() {
		judged := qrels[query]
		ranking := run[query]
		rep.MAP += AveragePrecision(judged, ranking)
		rep.MRR += ReciprocalRank(judged, ranking)
		for _, k := range Cutoffs {
			rep.NDCG[k] += NDCG(judged, ranking, k)
		}
		n++
	}
	if n > 0 {
		rep.MAP /= float64(n)
		rep.MRR /= float64(n)
		for _, k := range Cutoffs {
			rep.NDCG[k] /= float64(n)
		}
	}
	rep.Queries = n
	return rep
}
