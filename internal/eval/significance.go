package eval

import "math/rand"

// PairedMetric is a per-query metric extractor used by the significance
// test, e.g. AveragePrecision or a closure over NDCG at a cut-off.
type PairedMetric func(judged map[string]int, ranking []string) float64

// Significance compares two runs over the same qrels with a paired
// randomization (permutation) test on the mean of the given metric — the
// standard IR significance test (Smucker et al., CIKM 2007). It returns
// the observed mean difference (runA − runB) and the two-sided p-value
// estimated with the given number of permutation rounds.
//
// Queries judged in qrels but missing from a run score 0 for that run,
// consistent with Evaluate.
func Significance(qrels Qrels, runA, runB Run, metric PairedMetric, rounds int, seed int64) (diff, pValue float64) {
	if rounds <= 0 {
		rounds = 10000
	}
	var perQuery [][2]float64
	for _, q := range qrels.Queries() {
		judged := qrels[q]
		a := metric(judged, runA[q])
		b := metric(judged, runB[q])
		perQuery = append(perQuery, [2]float64{a, b})
	}
	n := len(perQuery)
	if n == 0 {
		return 0, 1
	}
	observed := 0.0
	for _, p := range perQuery {
		observed += p[0] - p[1]
	}
	observed /= float64(n)

	rng := rand.New(rand.NewSource(seed))
	extreme := 0
	for r := 0; r < rounds; r++ {
		var sum float64
		for _, p := range perQuery {
			d := p[0] - p[1]
			if rng.Intn(2) == 1 {
				d = -d
			}
			sum += d
		}
		if abs(sum/float64(n)) >= abs(observed)-1e-15 {
			extreme++
		}
	}
	return observed, float64(extreme+1) / float64(rounds+1)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// APMetric adapts AveragePrecision for Significance.
func APMetric(judged map[string]int, ranking []string) float64 {
	return AveragePrecision(judged, ranking)
}

// NDCGMetric returns a PairedMetric computing NDCG at cut-off k.
func NDCGMetric(k int) PairedMetric {
	return func(judged map[string]int, ranking []string) float64 {
		return NDCG(judged, ranking, k)
	}
}
