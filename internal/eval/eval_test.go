package eval

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestAveragePrecision(t *testing.T) {
	judged := map[string]int{"a": 2, "b": 0, "c": 1}
	// Relevant docs: a, c (2 total).
	// Ranking: a (hit, P=1/1), b (miss), c (hit, P=2/3) → AP = (1 + 2/3)/2.
	got := AveragePrecision(judged, []string{"a", "b", "c"})
	if !almost(got, (1.0+2.0/3.0)/2) {
		t.Fatalf("AP=%v", got)
	}
	// Perfect ranking.
	if got := AveragePrecision(judged, []string{"a", "c", "b"}); !almost(got, 1) {
		t.Fatalf("perfect AP=%v", got)
	}
	// No relevant docs at all.
	if got := AveragePrecision(map[string]int{"x": 0}, []string{"x"}); got != 0 {
		t.Fatalf("no-rel AP=%v", got)
	}
	// Relevant docs never retrieved.
	if got := AveragePrecision(judged, []string{"z1", "z2"}); got != 0 {
		t.Fatalf("missed AP=%v", got)
	}
}

func TestReciprocalRank(t *testing.T) {
	judged := map[string]int{"a": 1}
	if got := ReciprocalRank(judged, []string{"x", "y", "a"}); !almost(got, 1.0/3) {
		t.Fatalf("RR=%v", got)
	}
	if got := ReciprocalRank(judged, []string{"a"}); !almost(got, 1) {
		t.Fatalf("RR=%v", got)
	}
	if got := ReciprocalRank(judged, []string{"x"}); got != 0 {
		t.Fatalf("RR=%v", got)
	}
}

func TestNDCGHandExample(t *testing.T) {
	// Grades: d1=2, d2=1, d3=0.
	judged := map[string]int{"d1": 2, "d2": 1, "d3": 0}
	// Ranking d2, d1, d3:
	// DCG = (2^1-1)/log2(2) + (2^2-1)/log2(3) = 1 + 3/1.58496...
	dcg := 1.0 + 3.0/math.Log2(3)
	// IDCG = 3/1 + 1/log2(3)
	idcg := 3.0 + 1.0/math.Log2(3)
	got := NDCG(judged, []string{"d2", "d1", "d3"}, 10)
	if !almost(got, dcg/idcg) {
		t.Fatalf("NDCG=%v want %v", got, dcg/idcg)
	}
	// Ideal ranking gives exactly 1.
	if got := NDCG(judged, []string{"d1", "d2", "d3"}, 10); !almost(got, 1) {
		t.Fatalf("ideal NDCG=%v", got)
	}
}

func TestNDCGCutoff(t *testing.T) {
	judged := map[string]int{"a": 2, "b": 2}
	// With k=1 only the first result counts.
	got := NDCG(judged, []string{"x", "a", "b"}, 1)
	if got != 0 {
		t.Fatalf("NDCG@1=%v want 0", got)
	}
	full := NDCG(judged, []string{"x", "a", "b"}, 3)
	if full <= 0 || full >= 1 {
		t.Fatalf("NDCG@3=%v", full)
	}
}

func TestNDCGNoRelevant(t *testing.T) {
	if got := NDCG(map[string]int{"a": 0}, []string{"a"}, 5); got != 0 {
		t.Fatalf("NDCG=%v", got)
	}
}

func TestPrecisionRecallAt(t *testing.T) {
	judged := map[string]int{"a": 1, "b": 2, "c": 0}
	ranking := []string{"a", "c", "b", "z"}
	if got := PrecisionAt(judged, ranking, 2); !almost(got, 0.5) {
		t.Fatalf("P@2=%v", got)
	}
	if got := RecallAt(judged, ranking, 2); !almost(got, 0.5) {
		t.Fatalf("R@2=%v", got)
	}
	if got := RecallAt(judged, ranking, 4); !almost(got, 1) {
		t.Fatalf("R@4=%v", got)
	}
	if got := PrecisionAt(judged, ranking, 0); got != 0 {
		t.Fatalf("P@0=%v", got)
	}
}

func TestQrels(t *testing.T) {
	q := Qrels{}
	q.Add("q1", "d1", 2)
	q.Add("q1", "d2", 0)
	q.Add("q2", "d1", 1)
	if len(q.Queries()) != 2 || q.Queries()[0] != "q1" {
		t.Fatalf("Queries=%v", q.Queries())
	}
	if q["q1"]["d1"] != 2 {
		t.Fatal("Add lost a grade")
	}
}

func TestEvaluate(t *testing.T) {
	qrels := Qrels{}
	qrels.Add("q1", "a", 2)
	qrels.Add("q1", "b", 1)
	qrels.Add("q2", "c", 1)
	run := Run{
		"q1": {"a", "b"},
		"q2": {"x", "c"},
	}
	rep := Evaluate(qrels, run)
	if rep.Queries != 2 {
		t.Fatalf("Queries=%d", rep.Queries)
	}
	// q1 AP = 1, q2 AP = 0.5 → MAP 0.75.
	if !almost(rep.MAP, 0.75) {
		t.Fatalf("MAP=%v", rep.MAP)
	}
	// q1 RR = 1, q2 RR = 0.5 → MRR 0.75.
	if !almost(rep.MRR, 0.75) {
		t.Fatalf("MRR=%v", rep.MRR)
	}
	for _, k := range Cutoffs {
		if rep.NDCG[k] <= 0 || rep.NDCG[k] > 1 {
			t.Fatalf("NDCG@%d=%v", k, rep.NDCG[k])
		}
	}
}

func TestEvaluateMissingQueryCountsAsZero(t *testing.T) {
	qrels := Qrels{}
	qrels.Add("q1", "a", 1)
	qrels.Add("q2", "b", 1)
	run := Run{"q1": {"a"}} // q2 absent from the run
	rep := Evaluate(qrels, run)
	if !almost(rep.MAP, 0.5) {
		t.Fatalf("MAP=%v want 0.5", rep.MAP)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	rep := Evaluate(Qrels{}, Run{})
	if rep.Queries != 0 || rep.MAP != 0 {
		t.Fatalf("empty Evaluate=%+v", rep)
	}
}

func TestMonotonicityProperty(t *testing.T) {
	// Swapping a relevant result upward must never hurt any metric.
	judged := map[string]int{"r": 2, "x": 0, "y": 0}
	worse := []string{"x", "y", "r"}
	better := []string{"x", "r", "y"}
	if AveragePrecision(judged, better) <= AveragePrecision(judged, worse) {
		t.Fatal("AP not monotone")
	}
	if ReciprocalRank(judged, better) <= ReciprocalRank(judged, worse) {
		t.Fatal("RR not monotone")
	}
	if NDCG(judged, better, 3) <= NDCG(judged, worse, 3) {
		t.Fatal("NDCG not monotone")
	}
}
