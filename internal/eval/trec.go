package eval

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ParseQrels reads judgments in the TREC qrels format:
//
//	<query-id> <ignored> <doc-id> <grade>
//
// Blank lines and lines starting with # are skipped.
func ParseQrels(r io.Reader) (Qrels, error) {
	qrels := Qrels{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("eval: qrels line %d: want 4 fields, got %d", lineNo, len(fields))
		}
		grade, err := strconv.Atoi(fields[3])
		if err != nil {
			return nil, fmt.Errorf("eval: qrels line %d: bad grade %q", lineNo, fields[3])
		}
		qrels.Add(fields[0], fields[2], grade)
	}
	return qrels, sc.Err()
}

// ParseRun reads a ranked run in the TREC format:
//
//	<query-id> Q0 <doc-id> <rank> <score> <tag>
//
// The 4-field variant "<query-id> <doc-id> <rank> <score>" is also
// accepted. Entries are ordered by descending score per query (ties by
// given rank).
func ParseRun(r io.Reader) (Run, error) {
	type entry struct {
		doc   string
		rank  int
		score float64
	}
	perQuery := map[string][]entry{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		var qid, doc, rankStr, scoreStr string
		switch len(fields) {
		case 6:
			qid, doc, rankStr, scoreStr = fields[0], fields[2], fields[3], fields[4]
		case 4:
			qid, doc, rankStr, scoreStr = fields[0], fields[1], fields[2], fields[3]
		default:
			return nil, fmt.Errorf("eval: run line %d: want 4 or 6 fields, got %d", lineNo, len(fields))
		}
		rank, err := strconv.Atoi(rankStr)
		if err != nil {
			return nil, fmt.Errorf("eval: run line %d: bad rank %q", lineNo, rankStr)
		}
		score, err := strconv.ParseFloat(scoreStr, 64)
		if err != nil {
			return nil, fmt.Errorf("eval: run line %d: bad score %q", lineNo, scoreStr)
		}
		perQuery[qid] = append(perQuery[qid], entry{doc, rank, score})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	run := Run{}
	for qid, entries := range perQuery {
		sort.SliceStable(entries, func(i, j int) bool {
			if entries[i].score != entries[j].score {
				return entries[i].score > entries[j].score
			}
			return entries[i].rank < entries[j].rank
		})
		docs := make([]string, len(entries))
		for i, e := range entries {
			docs[i] = e.doc
		}
		run[qid] = docs
	}
	return run, nil
}

// WriteRun emits a run in the 6-field TREC format with the given tag.
func WriteRun(w io.Writer, run Run, tag string) error {
	qids := make([]string, 0, len(run))
	for qid := range run {
		qids = append(qids, qid)
	}
	sort.Strings(qids)
	for _, qid := range qids {
		for rank, doc := range run[qid] {
			// Scores are not retained in a Run; emit a rank-derived score
			// so the file round-trips through ParseRun in order.
			if _, err := fmt.Fprintf(w, "%s Q0 %s %d %d %s\n",
				qid, doc, rank+1, len(run[qid])-rank, tag); err != nil {
				return err
			}
		}
	}
	return nil
}
