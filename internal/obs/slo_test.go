package obs

import (
	"testing"
	"time"
)

// sloStates extracts objective → state from a snapshot.
func sloStates(s SLOSnapshot) map[string]string {
	m := make(map[string]string, len(s.Objectives))
	for _, o := range s.Objectives {
		m[o.Objective] = o.State
	}
	return m
}

// TestSLOBurnStateTransitions drives the multiwindow burn-rate policy
// through its three states with an injected clock: a failure burst pushes
// both short windows past 14.4× (fast_burn); ten minutes of clean traffic
// later the 5m window recovers but the 1h/6h windows still burn ≥ 6×
// (slow_burn); two hours on, the 1h window has aged the burst out (ok).
func TestSLOBurnStateTransitions(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	reg := NewRegistry()
	e := NewSLOEngine(SLOEngineConfig{Now: func() time.Time { return now }}, reg)

	// Clean traffic: everything ok, burn 0.
	for i := 0; i < 10; i++ {
		e.Record(10*time.Millisecond, false)
	}
	if st := sloStates(e.Snapshot()); st["availability"] != "ok" || st["latency"] != "ok" {
		t.Fatalf("baseline states = %v, want ok/ok", st)
	}

	// A burst of slow failures: 50 of 60 requests bad → 5m and 1h bad
	// fraction ~0.83 → burn ~833× (availability) and ~83× (latency), both
	// far past the 14.4 fast threshold on both windows.
	for i := 0; i < 50; i++ {
		e.Record(600*time.Millisecond, true)
	}
	snap := e.Snapshot()
	if st := sloStates(snap); st["availability"] != "fast_burn" || st["latency"] != "fast_burn" {
		t.Fatalf("burst states = %v, want fast_burn/fast_burn", st)
	}
	for _, o := range snap.Objectives {
		if o.Windows[0].Window != "5m" || o.Windows[0].BurnRate < fastBurnThreshold {
			t.Fatalf("%s 5m window = %+v, want burn ≥ %v", o.Objective, o.Windows[0], fastBurnThreshold)
		}
	}
	// Snapshot published the burn gauges.
	g := reg.Snapshot().Gauges[L(MetricSLOBurnRate, "objective", "availability", "window", "5m")]
	if g < fastBurnThreshold {
		t.Fatalf("availability 5m burn gauge = %v, want ≥ %v", g, fastBurnThreshold)
	}

	// Ten minutes later the 5m window sees only clean traffic, but the
	// burst still dominates the 1h and 6h windows: 50 bad of 360 → burn
	// ~139× (availability), ~14× (latency) — a slow burn, not a fast one.
	now = now.Add(10 * time.Minute)
	for i := 0; i < 300; i++ {
		e.Record(10*time.Millisecond, false)
	}
	snap = e.Snapshot()
	if st := sloStates(snap); st["availability"] != "slow_burn" || st["latency"] != "slow_burn" {
		t.Fatalf("post-burst states = %v, want slow_burn/slow_burn", st)
	}
	for _, o := range snap.Objectives {
		if o.Windows[0].BurnRate >= fastBurnThreshold {
			t.Fatalf("%s 5m window still fast: %+v", o.Objective, o.Windows[0])
		}
	}

	// Two hours later the burst has aged out of the 1h window; slow_burn
	// requires 1h AND 6h, so the state returns to ok even though the 6h
	// window still remembers the failures.
	now = now.Add(2 * time.Hour)
	for i := 0; i < 10; i++ {
		e.Record(10*time.Millisecond, false)
	}
	snap = e.Snapshot()
	if st := sloStates(snap); st["availability"] != "ok" || st["latency"] != "ok" {
		t.Fatalf("recovered states = %v, want ok/ok", st)
	}
	for _, o := range snap.Objectives {
		if o.Windows[2].Window != "6h" || o.Windows[2].Bad != 50 {
			t.Fatalf("%s 6h window = %+v, want the 50 bad requests still visible", o.Objective, o.Windows[2])
		}
	}
}

// TestSLOEngineDefaults checks the zero config resolves to the documented
// objectives.
func TestSLOEngineDefaults(t *testing.T) {
	e := NewSLOEngine(SLOEngineConfig{Now: func() time.Time { return time.Unix(1_700_000_000, 0) }}, nil)
	s := e.Snapshot()
	if len(s.Objectives) != 2 {
		t.Fatalf("objectives = %+v", s.Objectives)
	}
	if a := s.Objectives[0]; a.Objective != "availability" || a.Target != 0.999 {
		t.Fatalf("availability objective = %+v", a)
	}
	if l := s.Objectives[1]; l.Objective != "latency" || l.Target != 0.99 || l.ThresholdMS != 500 {
		t.Fatalf("latency objective = %+v", l)
	}
	if got := s.String(); got != "availability=ok latency=ok" {
		t.Fatalf("String() = %q", got)
	}
}

func TestSLOEngineNilNoop(t *testing.T) {
	var e *SLOEngine
	e.Record(time.Second, true)
	if s := e.Snapshot(); len(s.Objectives) != 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}
}
