package obs

import (
	"context"
	"strings"
	"testing"
)

const (
	validTraceHex = "4bf92f3577b34da6a3ce929d0e0e4736"
	validSpanHex  = "00f067aa0ba902b7"
)

func TestParseTraceparentValid(t *testing.T) {
	h := "00-" + validTraceHex + "-" + validSpanHex + "-01"
	sc, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected a valid header", h)
	}
	if got := sc.TraceID.String(); got != validTraceHex {
		t.Errorf("trace ID = %s, want %s", got, validTraceHex)
	}
	if got := sc.SpanID.String(); got != validSpanHex {
		t.Errorf("span ID = %s, want %s", got, validSpanHex)
	}
	if sc.Flags != FlagSampled {
		t.Errorf("flags = %#x, want %#x", sc.Flags, FlagSampled)
	}
	if !sc.Valid() {
		t.Error("parsed span context should be valid")
	}
	// Round trip through the formatter.
	if got := sc.Traceparent(); got != h {
		t.Errorf("Traceparent() = %q, want %q", got, h)
	}
}

func TestParseTraceparentFlagHandling(t *testing.T) {
	for _, flags := range []string{"00", "01", "ff", "7e"} {
		h := "00-" + validTraceHex + "-" + validSpanHex + "-" + flags
		sc, ok := ParseTraceparent(h)
		if !ok {
			t.Errorf("flags %q rejected", flags)
			continue
		}
		want := byte(0)
		for i := 0; i < 2; i++ {
			c := flags[i]
			want <<= 4
			if c >= 'a' {
				want |= c - 'a' + 10
			} else {
				want |= c - '0'
			}
		}
		if sc.Flags != want {
			t.Errorf("flags %q parsed as %#x, want %#x", flags, sc.Flags, want)
		}
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	cases := map[string]string{
		"empty":                 "",
		"truncated":             "00-" + validTraceHex,
		"version ff":            "ff-" + validTraceHex + "-" + validSpanHex + "-01",
		"bad version hex":       "0x-" + validTraceHex + "-" + validSpanHex + "-01",
		"one-digit version":     "0-" + validTraceHex + "-" + validSpanHex + "-01",
		"short trace id":        "00-" + validTraceHex[:31] + "-" + validSpanHex + "-01",
		"long trace id":         "00-" + validTraceHex + "0-" + validSpanHex + "-01",
		"short span id":         "00-" + validTraceHex + "-" + validSpanHex[:15] + "-01",
		"all-zero trace id":     "00-" + strings.Repeat("0", 32) + "-" + validSpanHex + "-01",
		"all-zero span id":      "00-" + validTraceHex + "-" + strings.Repeat("0", 16) + "-01",
		"uppercase trace id":    "00-" + strings.ToUpper(validTraceHex) + "-" + validSpanHex + "-01",
		"uppercase flags":       "00-" + validTraceHex + "-" + validSpanHex + "-0F",
		"non-hex trace id":      "00-" + "zz" + validTraceHex[2:] + "-" + validSpanHex + "-01",
		"one-digit flags":       "00-" + validTraceHex + "-" + validSpanHex + "-1",
		"three-digit flags":     "00-" + validTraceHex + "-" + validSpanHex + "-011",
		"version 00 with extra": "00-" + validTraceHex + "-" + validSpanHex + "-01-extra",
	}
	for name, h := range cases {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("%s: ParseTraceparent(%q) accepted, want reject", name, h)
		}
	}
}

func TestParseTraceparentFutureVersionLenient(t *testing.T) {
	// Per W3C, an unknown (non-ff) version is parsed by its first four
	// fields, ignoring trailing additions.
	h := "42-" + validTraceHex + "-" + validSpanHex + "-01-future-field"
	sc, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("future-version header %q rejected", h)
	}
	if sc.TraceID.String() != validTraceHex || sc.SpanID.String() != validSpanHex {
		t.Errorf("future-version header parsed wrong IDs: %s %s", sc.TraceID, sc.SpanID)
	}
}

func TestTraceparentFormatZeroFlags(t *testing.T) {
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Flags: 0}
	h := sc.Traceparent()
	if len(h) != 55 {
		t.Fatalf("Traceparent length = %d, want 55", len(h))
	}
	if !strings.HasSuffix(h, "-00") {
		t.Errorf("zero flags rendered as %q, want suffix -00", h)
	}
	back, ok := ParseTraceparent(h)
	if !ok || back != sc {
		t.Errorf("round trip failed: %q -> %+v ok=%v", h, back, ok)
	}
}

func TestParseIDValidation(t *testing.T) {
	if _, ok := ParseTraceID(strings.Repeat("0", 32)); ok {
		t.Error("all-zero trace ID accepted")
	}
	if _, ok := ParseSpanID(strings.Repeat("0", 16)); ok {
		t.Error("all-zero span ID accepted")
	}
	if _, ok := ParseTraceID("short"); ok {
		t.Error("short trace ID accepted")
	}
	id := NewTraceID()
	back, ok := ParseTraceID(id.String())
	if !ok || back != id {
		t.Errorf("trace ID round trip failed: %s", id)
	}
	sid := NewSpanID()
	sback, ok := ParseSpanID(sid.String())
	if !ok || sback != sid {
		t.Errorf("span ID round trip failed: %s", sid)
	}
}

func TestContextPropagation(t *testing.T) {
	ctx := context.Background()
	if _, ok := SpanContextFrom(ctx); ok {
		t.Error("empty context should carry no span context")
	}
	if RequestIDFrom(ctx) != "" {
		t.Error("empty context should carry no request ID")
	}
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Flags: FlagSampled}
	ctx = ContextWithSpan(ctx, sc)
	ctx = ContextWithRequestID(ctx, "req-1")
	got, ok := SpanContextFrom(ctx)
	if !ok || got != sc {
		t.Errorf("SpanContextFrom = %+v ok=%v, want %+v", got, ok, sc)
	}
	if RequestIDFrom(ctx) != "req-1" {
		t.Errorf("RequestIDFrom = %q, want req-1", RequestIDFrom(ctx))
	}

	tr := NewTraceFrom(ctx)
	if tr.ID() != sc.TraceID {
		t.Errorf("NewTraceFrom adopted trace ID %s, want %s", tr.ID(), sc.TraceID)
	}
	if tr.Remote() != sc.SpanID {
		t.Errorf("NewTraceFrom remote = %s, want %s", tr.Remote(), sc.SpanID)
	}
	// Without a span context a fresh ID is minted.
	fresh := NewTraceFrom(context.Background())
	if fresh.ID().IsZero() {
		t.Error("NewTraceFrom minted a zero trace ID")
	}
	if fresh.ID() == sc.TraceID {
		t.Error("fresh trace reused the propagated ID")
	}
}
