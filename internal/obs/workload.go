package obs

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// Workload metric names.
const (
	// MetricWorkloadQueries counts queries seen by the workload analyzer.
	MetricWorkloadQueries = "semdisco_workload_queries_total"
	// MetricWorkloadGini is the Gini coefficient of the per-shard load
	// distribution: 0 = perfectly balanced, →1 = one shard takes everything.
	MetricWorkloadGini = "semdisco_workload_shard_load_gini"
)

// WorkloadConfig sizes the workload analyzer. The zero value picks
// defaults: 64 heavy-hitter slots, 32 costliest-query slots, 1 shard.
type WorkloadConfig struct {
	// TopQueries is the space-saving sketch capacity — how many distinct
	// query keys are tracked as heavy-hitter candidates. Default 64.
	TopQueries int
	// Costliest is how many of the costliest queries are retained.
	// Default 32.
	Costliest int
	// Shards is the number of per-shard load accumulators. Default 1 (a
	// single-node engine).
	Shards int
}

// HeavyHitter is one entry of the space-saving sketch: a normalized query
// key, its estimated count, and the maximum overestimation error
// (count - error is a guaranteed lower bound on the true frequency).
type HeavyHitter struct {
	Query string `json:"query"`
	Count int64  `json:"count"`
	Error int64  `json:"error,omitempty"`
}

// CostlyQuery is one retained costliest-query record.
type CostlyQuery struct {
	Query    string        `json:"query"`
	Method   string        `json:"method,omitempty"`
	TraceID  string        `json:"trace_id,omitempty"`
	Cost     CostReport    `json:"cost"`
	Duration time.Duration `json:"duration_ns"`
	When     time.Time     `json:"when"`
}

// WorkloadSnapshot is the analyzer's point-in-time view, shaped for the
// /v1/debug/workload endpoint.
type WorkloadSnapshot struct {
	Queries int64 `json:"queries"`
	// HeavyHitters lists sketch entries sorted by estimated count,
	// descending.
	HeavyHitters []HeavyHitter `json:"heavy_hitters"`
	// ShardLoad is the absolute query count routed to each shard.
	ShardLoad []int64 `json:"shard_load"`
	// LoadGini is the Gini coefficient of ShardLoad: 0 balanced, →1 skewed.
	LoadGini float64 `json:"load_gini"`
	// LoadImbalance is max(ShardLoad)/mean(ShardLoad); 1.0 is perfectly
	// balanced. 0 before any query.
	LoadImbalance float64 `json:"load_imbalance"`
	// Costliest lists retained costliest queries, highest total cost first.
	Costliest []CostlyQuery `json:"costliest"`
}

// Workload is the workload analyzer: a space-saving (Misra-Gries family)
// heavy-hitter sketch over normalized query keys, per-shard load counters
// with a Gini skew gauge, and a top-N costliest-queries board. It is the
// signal source the roadmap's compaction and cache-admission policies key
// off. A nil *Workload is a valid no-op.
type Workload struct {
	mu       sync.Mutex
	queries  int64
	sketch   map[string]*sketchEntry
	capacity int
	shard    []int64
	costly   []CostlyQuery // sorted ascending by Cost.Total(); index 0 is the cheapest
	costlyN  int

	obsQueries *Counter
	obsGini    *Gauge
}

type sketchEntry struct {
	count int64
	err   int64
}

// NewWorkload builds an analyzer. reg, when non-nil, receives the query
// counter and the Gini gauge.
func NewWorkload(cfg WorkloadConfig, reg *Registry) *Workload {
	if cfg.TopQueries <= 0 {
		cfg.TopQueries = 64
	}
	if cfg.Costliest <= 0 {
		cfg.Costliest = 32
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	return &Workload{
		sketch:     make(map[string]*sketchEntry, cfg.TopQueries),
		capacity:   cfg.TopQueries,
		shard:      make([]int64, cfg.Shards),
		costlyN:    cfg.Costliest,
		obsQueries: reg.Counter(MetricWorkloadQueries),
		obsGini:    reg.Gauge(MetricWorkloadGini),
	}
}

// NormalizeQueryKey folds a query into its sketch key: lower-cased, with
// runs of whitespace collapsed to single spaces — so "Average  RENT" and
// "average rent" count as the same workload item.
func NormalizeQueryKey(q string) string {
	return strings.Join(strings.Fields(strings.ToLower(q)), " ")
}

// Record accounts one finished query: its normalized key into the sketch
// and its cost onto the costliest board. Shard routing is recorded
// separately via RecordShard (a scatter-gather query touches many shards).
func (w *Workload) Record(query, method, traceID string, cost CostReport, dur time.Duration, when time.Time) {
	if w == nil {
		return
	}
	key := NormalizeQueryKey(query)
	w.mu.Lock()
	w.queries++
	w.recordSketchLocked(key)
	w.recordCostLocked(CostlyQuery{
		Query: key, Method: method, TraceID: traceID,
		Cost: cost, Duration: dur, When: when,
	})
	w.mu.Unlock()
	w.obsQueries.Inc()
}

// recordSketchLocked is the space-saving update: hits increment; misses
// take over the minimum-count slot, inheriting its count as error bound.
func (w *Workload) recordSketchLocked(key string) {
	if e, ok := w.sketch[key]; ok {
		e.count++
		return
	}
	if len(w.sketch) < w.capacity {
		w.sketch[key] = &sketchEntry{count: 1}
		return
	}
	minKey, minCount := "", int64(-1)
	for k, e := range w.sketch {
		if minCount < 0 || e.count < minCount {
			minKey, minCount = k, e.count
		}
	}
	delete(w.sketch, minKey)
	w.sketch[key] = &sketchEntry{count: minCount + 1, err: minCount}
}

func (w *Workload) recordCostLocked(cq CostlyQuery) {
	total := cq.Cost.Total()
	if len(w.costly) < w.costlyN {
		w.costly = append(w.costly, cq)
		sort.Slice(w.costly, func(i, j int) bool {
			return w.costly[i].Cost.Total() < w.costly[j].Cost.Total()
		})
		return
	}
	if total <= w.costly[0].Cost.Total() {
		return
	}
	w.costly[0] = cq
	// Bubble the replacement up to keep the slice sorted ascending.
	for i := 1; i < len(w.costly) && w.costly[i].Cost.Total() < total; i++ {
		w.costly[i-1], w.costly[i] = w.costly[i], w.costly[i-1]
	}
}

// RecordShard accounts one sub-query routed to shard i and refreshes the
// Gini gauge. Out-of-range shards are ignored.
func (w *Workload) RecordShard(i int) {
	if w == nil {
		return
	}
	w.mu.Lock()
	if i < 0 || i >= len(w.shard) {
		w.mu.Unlock()
		return
	}
	w.shard[i]++
	g := giniLocked(w.shard)
	w.mu.Unlock()
	w.obsGini.Set(g)
}

// giniLocked computes the Gini coefficient of the load vector using the
// sorted-rank formula. Zero for ≤1 shard or no load.
func giniLocked(load []int64) float64 {
	n := len(load)
	if n <= 1 {
		return 0
	}
	sorted := make([]float64, n)
	var sum float64
	for i, v := range load {
		sorted[i] = float64(v)
		sum += float64(v)
	}
	if sum == 0 {
		return 0
	}
	sort.Float64s(sorted)
	var weighted float64
	for i, v := range sorted {
		weighted += float64(i+1) * v
	}
	return (2*weighted)/(float64(n)*sum) - float64(n+1)/float64(n)
}

// Snapshot returns the current analyzer state. Zero-valued on nil.
func (w *Workload) Snapshot() WorkloadSnapshot {
	if w == nil {
		return WorkloadSnapshot{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	s := WorkloadSnapshot{
		Queries:      w.queries,
		HeavyHitters: make([]HeavyHitter, 0, len(w.sketch)),
		ShardLoad:    append([]int64(nil), w.shard...),
		LoadGini:     giniLocked(w.shard),
	}
	for k, e := range w.sketch {
		s.HeavyHitters = append(s.HeavyHitters, HeavyHitter{Query: k, Count: e.count, Error: e.err})
	}
	sort.Slice(s.HeavyHitters, func(i, j int) bool {
		if s.HeavyHitters[i].Count != s.HeavyHitters[j].Count {
			return s.HeavyHitters[i].Count > s.HeavyHitters[j].Count
		}
		return s.HeavyHitters[i].Query < s.HeavyHitters[j].Query
	})
	var total, max int64
	for _, v := range w.shard {
		total += v
		if v > max {
			max = v
		}
	}
	if total > 0 {
		mean := float64(total) / float64(len(w.shard))
		s.LoadImbalance = float64(max) / mean
	}
	s.Costliest = make([]CostlyQuery, len(w.costly))
	// The board is kept ascending; the snapshot reads best-first.
	for i, cq := range w.costly {
		s.Costliest[len(w.costly)-1-i] = cq
	}
	return s
}
