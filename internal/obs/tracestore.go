package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// TraceOutcome is what the serving layer knows about a finished request
// when it offers its trace to the store — the inputs to the tail-based
// retention decision plus the summary fields worth keeping alongside the
// span tree.
type TraceOutcome struct {
	Duration time.Duration
	Query    string
	Method   string
	K        int
	Matches  int
	// RequestID is the HTTP correlation ID, "" for in-process callers.
	RequestID string
	// Err is the failure text; any error makes the trace interesting.
	Err string
	// Degraded reports a scatter-gather answer missing one or more shards.
	Degraded bool
	// Hedged counts hedge attempts launched for the request.
	Hedged int
	// ShardErrors lists per-shard failure texts, ascending by shard.
	ShardErrors []string
}

// StoredSpan is one span of a retained trace, serialization-ready: IDs as
// hex, times as offsets from the trace start.
type StoredSpan struct {
	SpanID        string            `json:"span_id"`
	ParentID      string            `json:"parent_id,omitempty"`
	Name          string            `json:"name"`
	StartOffsetMS float64           `json:"start_offset_ms"`
	DurationMS    float64           `json:"duration_ms"`
	Annotations   map[string]string `json:"annotations,omitempty"`
}

// StoredTrace is one retained trace: why it was kept, the request
// summary, and the complete span records.
type StoredTrace struct {
	TraceID string    `json:"trace_id"`
	Time    time.Time `json:"time"`
	// Kind is the retention reason: "error", "degraded", "hedged", "slow"
	// (tail-based) or "sampled" (1-in-M head sample).
	Kind        string       `json:"kind"`
	Query       string       `json:"query,omitempty"`
	Method      string       `json:"method,omitempty"`
	K           int          `json:"k,omitempty"`
	Matches     int          `json:"matches"`
	DurationMS  float64      `json:"duration_ms"`
	RequestID   string       `json:"request_id,omitempty"`
	Err         string       `json:"error,omitempty"`
	Degraded    bool         `json:"degraded,omitempty"`
	Hedged      int          `json:"hedged,omitempty"`
	ShardErrors []string     `json:"shard_errors,omitempty"`
	Spans       []StoredSpan `json:"spans"`
}

// TraceStoreConfig tunes a TraceStore.
type TraceStoreConfig struct {
	// Capacity is the retained-trace ring size; default 256.
	Capacity int
	// LatencyThreshold marks a trace interesting when the request ran at
	// least this long. 0 disables the latency criterion.
	LatencyThreshold time.Duration
	// HeadSampleEvery additionally keeps 1 in every M uninteresting
	// traces, so the store always holds baseline examples to compare slow
	// outliers against. 0 disables head sampling.
	HeadSampleEvery int
}

// TraceStore is the tail-sampling retention layer: every finished request
// offers its trace, and the store keeps the ones whose outcome makes them
// worth a human's time — errors, degraded or hedged scatter-gathers,
// latency over the threshold — plus a 1-in-M head sample for baseline.
// Eviction is strictly oldest-first. A nil *TraceStore is a valid no-op.
type TraceStore struct {
	cfg     TraceStoreConfig
	sampler *Sampler

	offered atomic.Int64
	kept    atomic.Int64
	evicted atomic.Int64

	mu   sync.Mutex
	buf  []StoredTrace
	byID map[string]int // trace ID -> ring slot
	next int
	n    int
}

// NewTraceStore returns a store retaining up to cfg.Capacity traces.
func NewTraceStore(cfg TraceStoreConfig) *TraceStore {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 256
	}
	return &TraceStore{
		cfg:     cfg,
		sampler: NewSampler(cfg.HeadSampleEvery),
		buf:     make([]StoredTrace, cfg.Capacity),
		byID:    make(map[string]int, cfg.Capacity),
	}
}

// Config reports the store's retention settings; zero on a nil receiver.
func (s *TraceStore) Config() TraceStoreConfig {
	if s == nil {
		return TraceStoreConfig{}
	}
	return s.cfg
}

// kind classifies why a trace is retained; "" means not interesting.
// Severity order: an error outranks degradation outranks hedging outranks
// plain slowness, so the stored Kind names the worst thing that happened.
func (s *TraceStore) kind(o TraceOutcome) string {
	switch {
	case o.Err != "":
		return "error"
	case o.Degraded || len(o.ShardErrors) > 0:
		return "degraded"
	case o.Hedged > 0:
		return "hedged"
	case s.cfg.LatencyThreshold > 0 && o.Duration >= s.cfg.LatencyThreshold:
		return "slow"
	default:
		return ""
	}
}

// Offer submits one finished trace with its outcome. The store keeps it
// when the outcome is interesting or the head sampler fires, and reports
// whether it was kept and under which kind. Safe for concurrent use; a
// nil store or nil trace keeps nothing.
func (s *TraceStore) Offer(tr *Trace, o TraceOutcome) (kept bool, kind string) {
	if s == nil || tr == nil {
		return false, ""
	}
	s.offered.Add(1)
	kind = s.kind(o)
	// The head sampler counts every offer, interesting or not, so its
	// 1-in-M cadence is stable regardless of how noisy the tail is.
	sampled := s.sampler.Sample()
	if kind == "" {
		if !sampled {
			return false, ""
		}
		kind = "sampled"
	}
	st := StoredTrace{
		TraceID:     tr.ID().String(),
		Time:        tr.Start(),
		Kind:        kind,
		Query:       o.Query,
		Method:      o.Method,
		K:           o.K,
		Matches:     o.Matches,
		DurationMS:  float64(o.Duration) / float64(time.Millisecond),
		RequestID:   o.RequestID,
		Err:         o.Err,
		Degraded:    o.Degraded,
		Hedged:      o.Hedged,
		ShardErrors: o.ShardErrors,
		Spans:       storedSpans(tr),
	}
	s.kept.Add(1)
	s.mu.Lock()
	if s.n == len(s.buf) {
		s.evicted.Add(1)
		if old := s.buf[s.next].TraceID; old != "" {
			delete(s.byID, old)
		}
	}
	s.buf[s.next] = st
	s.byID[st.TraceID] = s.next
	s.next = (s.next + 1) % len(s.buf)
	if s.n < len(s.buf) {
		s.n++
	}
	s.mu.Unlock()
	return true, kind
}

// storedSpans converts a trace's span records to the serialization form.
// The root span's parent is the remote span when the trace was propagated
// in — the cross-process link a distributed trace viewer stitches on.
func storedSpans(tr *Trace) []StoredSpan {
	recs := tr.Spans()
	root := tr.RootID()
	remote := tr.Remote()
	start := tr.Start()
	out := make([]StoredSpan, len(recs))
	for i, r := range recs {
		sp := StoredSpan{
			SpanID:        r.SpanID.String(),
			Name:          r.Name,
			StartOffsetMS: float64(r.Start.Sub(start)) / float64(time.Millisecond),
			DurationMS:    float64(r.Duration) / float64(time.Millisecond),
			Annotations:   r.Annotations,
		}
		switch {
		case !r.Parent.IsZero():
			sp.ParentID = r.Parent.String()
		case r.SpanID == root && !remote.IsZero():
			sp.ParentID = remote.String()
		}
		out[i] = sp
	}
	return out
}

// Len returns the number of retained traces.
func (s *TraceStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Offered returns the lifetime count of traces submitted via Offer.
func (s *TraceStore) Offered() int64 {
	if s == nil {
		return 0
	}
	return s.offered.Load()
}

// Kept returns the lifetime count of traces retained.
func (s *TraceStore) Kept() int64 {
	if s == nil {
		return 0
	}
	return s.kept.Load()
}

// Evicted returns how many retained traces were evicted to make room.
func (s *TraceStore) Evicted() int64 {
	if s == nil {
		return 0
	}
	return s.evicted.Load()
}

// Get fetches one retained trace by its hex trace ID.
func (s *TraceStore) Get(id string) (StoredTrace, bool) {
	if s == nil {
		return StoredTrace{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	slot, ok := s.byID[id]
	if !ok {
		return StoredTrace{}, false
	}
	return s.buf[slot], true
}

// List returns up to n retained traces, newest first. n ≤ 0 returns all.
func (s *TraceStore) List(n int) []StoredTrace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StoredTrace, 0, s.n)
	for i := 1; i <= s.n; i++ {
		out = append(out, s.buf[((s.next-i)%len(s.buf)+len(s.buf))%len(s.buf)])
		if n > 0 && len(out) == n {
			break
		}
	}
	return out
}

// WriteJSONL streams every retained trace to w as JSON lines, oldest
// first. Safe on a nil receiver (writes nothing).
func (s *TraceStore) WriteJSONL(w io.Writer) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := make([]StoredTrace, 0, s.n)
	for i := s.n; i >= 1; i-- {
		out = append(out, s.buf[((s.next-i)%len(s.buf)+len(s.buf))%len(s.buf)])
	}
	s.mu.Unlock()
	enc := json.NewEncoder(w)
	for _, st := range out {
		if err := enc.Encode(st); err != nil {
			return err
		}
	}
	return nil
}
