package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// QueryRecord is the retained evidence of one completed query: what was
// asked, how long it took, and the full stage trace — everything needed to
// answer "which queries are slow and why" after the fact.
type QueryRecord struct {
	// Time is when the query completed.
	Time time.Time
	// Query is the raw query text.
	Query string
	// Method is the searcher that served it ("ExS", "ANNS", "CTS").
	Method string
	// K is the requested result count.
	K int
	// Matches is how many results were returned.
	Matches int
	// TopScore is the best match's score; 0 when there were no matches.
	TopScore float32
	// Duration is the end-to-end wall-clock time.
	Duration time.Duration
	// Stages is the per-stage breakdown recorded while the query ran.
	Stages []Stage
	// TraceID is the hex trace ID the query ran under, "" when untraced —
	// the join key into the trace store and the access log.
	TraceID string
	// RequestID is the HTTP correlation ID, "" for in-process callers.
	RequestID string
	// Err is the error text for failed queries, "" on success.
	Err string
}

// SlowLog is a concurrency-safe ring buffer of query records. Records whose
// duration is below the threshold are dropped; with a zero threshold every
// query is retained, so the ring always holds the most recent eligible
// queries and Slowest ranks them. Eviction is strictly oldest-first.
//
// A nil *SlowLog is a valid no-op, so callers never branch on whether the
// slow-query log is enabled.
type SlowLog struct {
	threshold time.Duration
	recorded  atomic.Int64

	mu   sync.Mutex
	buf  []QueryRecord
	next int // ring write cursor
	n    int // filled entries, ≤ len(buf)
}

// NewSlowLog returns a log retaining up to capacity records at or above
// threshold. capacity ≤ 0 selects the default of 128.
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity <= 0 {
		capacity = 128
	}
	return &SlowLog{threshold: threshold, buf: make([]QueryRecord, capacity)}
}

// Threshold reports the minimum duration for a record to be retained;
// 0 on a nil receiver.
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Record retains r if it meets the threshold, evicting the oldest entry
// when the ring is full. Reports whether the record was retained; false on
// a nil receiver.
func (l *SlowLog) Record(r QueryRecord) bool {
	if l == nil || r.Duration < l.threshold {
		return false
	}
	l.recorded.Add(1)
	l.mu.Lock()
	l.buf[l.next] = r
	l.next = (l.next + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.mu.Unlock()
	return true
}

// Len returns the number of retained records.
func (l *SlowLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Recorded returns the lifetime count of retained records, including those
// since evicted.
func (l *SlowLog) Recorded() int64 {
	if l == nil {
		return 0
	}
	return l.recorded.Load()
}

// snapshot copies the retained records, oldest first. Caller must not hold
// the lock.
func (l *SlowLog) snapshot() []QueryRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]QueryRecord, 0, l.n)
	start := l.next - l.n
	if start < 0 {
		start += len(l.buf)
	}
	for i := 0; i < l.n; i++ {
		out = append(out, l.buf[(start+i)%len(l.buf)])
	}
	return out
}

// Slowest returns up to n retained records ordered slowest first (ties
// broken newest first). n ≤ 0 returns every retained record.
func (l *SlowLog) Slowest(n int) []QueryRecord {
	if l == nil {
		return nil
	}
	out := l.snapshot()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Duration != out[j].Duration {
			return out[i].Duration > out[j].Duration
		}
		return out[i].Time.After(out[j].Time)
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Recent returns up to n retained records, newest first. n ≤ 0 returns
// every retained record.
func (l *SlowLog) Recent(n int) []QueryRecord {
	if l == nil {
		return nil
	}
	out := l.snapshot()
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Sampler implements head-based 1-in-M sampling with a single atomic
// counter: the first call samples, then every M-th after it, so the sample
// is deterministic under load rather than probabilistic. A nil *Sampler
// (or M ≤ 0) never samples.
type Sampler struct {
	every int64
	ctr   atomic.Int64
}

// NewSampler returns a sampler firing on 1 of every `every` calls.
// every ≤ 0 disables sampling; every == 1 samples every call.
func NewSampler(every int) *Sampler {
	return &Sampler{every: int64(every)}
}

// Sample reports whether this call is part of the 1-in-M sample.
func (s *Sampler) Sample() bool {
	if s == nil || s.every <= 0 {
		return false
	}
	return (s.ctr.Add(1)-1)%s.every == 0
}

// Seen returns how many times Sample has been called.
func (s *Sampler) Seen() int64 {
	if s == nil {
		return 0
	}
	return s.ctr.Load()
}

// RecentQueries is a small concurrency-safe ring of recent query strings,
// the candidate pool the recall probe replays. A nil receiver is a no-op.
type RecentQueries struct {
	mu   sync.Mutex
	buf  []string
	next int
	n    int
}

// NewRecentQueries returns a ring holding up to capacity query strings.
// capacity ≤ 0 selects the default of 128.
func NewRecentQueries(capacity int) *RecentQueries {
	if capacity <= 0 {
		capacity = 128
	}
	return &RecentQueries{buf: make([]string, capacity)}
}

// Add records one query string.
func (r *RecentQueries) Add(q string) {
	if r == nil || q == "" {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = q
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Items returns up to n distinct queries, newest first. n ≤ 0 returns all.
func (r *RecentQueries) Items(n int) []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[string]struct{}, r.n)
	out := make([]string, 0, r.n)
	for i := 1; i <= r.n; i++ {
		q := r.buf[((r.next-i)%len(r.buf)+len(r.buf))%len(r.buf)]
		if _, dup := seen[q]; dup {
			continue
		}
		seen[q] = struct{}{}
		out = append(out, q)
		if n > 0 && len(out) == n {
			break
		}
	}
	return out
}
