package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func rec(query string, d time.Duration) QueryRecord {
	return QueryRecord{Time: time.Now(), Query: query, Method: "CTS", K: 5, Duration: d}
}

func TestSlowLogThreshold(t *testing.T) {
	l := NewSlowLog(8, 10*time.Millisecond)
	if l.Record(rec("fast", 2*time.Millisecond)) {
		t.Fatal("below-threshold record retained")
	}
	if !l.Record(rec("slow", 20*time.Millisecond)) {
		t.Fatal("above-threshold record dropped")
	}
	if !l.Record(rec("edge", 10*time.Millisecond)) {
		t.Fatal("at-threshold record dropped")
	}
	if l.Len() != 2 || l.Recorded() != 2 {
		t.Fatalf("len=%d recorded=%d, want 2/2", l.Len(), l.Recorded())
	}
}

func TestSlowLogEvictionOrder(t *testing.T) {
	l := NewSlowLog(3, 0)
	for i := 0; i < 5; i++ {
		l.Record(rec(fmt.Sprintf("q%d", i), time.Duration(i)*time.Millisecond))
	}
	// Capacity 3: q0 and q1 evicted (oldest first), q2..q4 retained.
	recent := l.Recent(0)
	if len(recent) != 3 {
		t.Fatalf("len=%d want 3", len(recent))
	}
	for i, want := range []string{"q4", "q3", "q2"} {
		if recent[i].Query != want {
			t.Fatalf("recent[%d]=%q want %q (evicted out of order)", i, recent[i].Query, want)
		}
	}
	if got := l.Recorded(); got != 5 {
		t.Fatalf("recorded=%d want 5", got)
	}
}

func TestSlowLogSlowestRanking(t *testing.T) {
	l := NewSlowLog(8, 0)
	for _, d := range []time.Duration{3, 9, 1, 7, 5} {
		l.Record(rec(fmt.Sprintf("d%d", d), d*time.Millisecond))
	}
	top := l.Slowest(3)
	if len(top) != 3 {
		t.Fatalf("len=%d want 3", len(top))
	}
	for i, want := range []string{"d9", "d7", "d5"} {
		if top[i].Query != want {
			t.Fatalf("slowest[%d]=%q want %q", i, top[i].Query, want)
		}
	}
	if all := l.Slowest(0); len(all) != 5 {
		t.Fatalf("Slowest(0) len=%d want 5", len(all))
	}
}

// TestSlowLogConcurrent hammers the log from many goroutines under -race:
// no record may be lost or duplicated, and readers must observe consistent
// snapshots while writes are in flight.
func TestSlowLogConcurrent(t *testing.T) {
	const (
		writers   = 8
		perWriter = 500
	)
	l := NewSlowLog(64, 5*time.Millisecond)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Even i: below threshold (dropped). Odd i: retained.
				d := 1 * time.Millisecond
				if i%2 == 1 {
					d = time.Duration(10+i%50) * time.Millisecond
				}
				l.Record(rec(fmt.Sprintf("w%d-%d", w, i), d))
			}
		}(w)
	}
	// Concurrent readers.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				_ = l.Slowest(10)
				_ = l.Recent(10)
			}
		}
	}()
	wg.Wait()
	close(done)

	want := int64(writers * perWriter / 2)
	if got := l.Recorded(); got != want {
		t.Fatalf("recorded=%d want %d", got, want)
	}
	if l.Len() != 64 {
		t.Fatalf("len=%d want full ring 64", l.Len())
	}
	for _, r := range l.Slowest(0) {
		if r.Duration < 5*time.Millisecond {
			t.Fatalf("below-threshold record %q retained", r.Query)
		}
	}
}

func TestSamplerRate(t *testing.T) {
	s := NewSampler(3)
	var hits int
	for i := 0; i < 9; i++ {
		if s.Sample() {
			hits++
		}
	}
	if hits != 3 {
		t.Fatalf("1-in-3 over 9 calls: hits=%d want 3", hits)
	}
	if NewSampler(0).Sample() {
		t.Fatal("disabled sampler fired")
	}
	if !NewSampler(1).Sample() {
		t.Fatal("1-in-1 sampler did not fire")
	}
	var nilSampler *Sampler
	if nilSampler.Sample() {
		t.Fatal("nil sampler fired")
	}
}

// TestSamplerConcurrent verifies the 1-in-M invariant holds exactly under
// concurrent callers: the atomic counter hands out sample slots without
// loss or duplication.
func TestSamplerConcurrent(t *testing.T) {
	const (
		workers = 8
		each    = 300
		every   = 4
	)
	s := NewSampler(every)
	var mu sync.Mutex
	total := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := 0
			for i := 0; i < each; i++ {
				if s.Sample() {
					local++
				}
			}
			mu.Lock()
			total += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	if want := workers * each / every; total != want {
		t.Fatalf("sampled=%d want exactly %d", total, want)
	}
	if s.Seen() != workers*each {
		t.Fatalf("seen=%d want %d", s.Seen(), workers*each)
	}
}

func TestJournalRingAndJSONL(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 6; i++ {
		j.Append(Event{Kind: "sampled", Query: fmt.Sprintf("q%d", i), DurationMS: float64(i)})
	}
	if j.Len() != 4 || j.Total() != 6 || j.Dropped() != 2 {
		t.Fatalf("len=%d total=%d dropped=%d", j.Len(), j.Total(), j.Dropped())
	}
	evs := j.Events(0)
	for i, want := range []string{"q2", "q3", "q4", "q5"} {
		if evs[i].Query != want {
			t.Fatalf("events[%d]=%q want %q", i, evs[i].Query, want)
		}
	}
	if newest := j.Events(2); len(newest) != 2 || newest[1].Query != "q5" {
		t.Fatalf("Events(2)=%+v", newest)
	}

	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		lines++
	}
	if lines != 4 {
		t.Fatalf("jsonl lines=%d want 4", lines)
	}
}

func TestJournalConcurrent(t *testing.T) {
	j := NewJournal(32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				j.Append(Event{Kind: "slow", Query: fmt.Sprintf("w%d-%d", w, i)})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				_ = j.Events(8)
			}
		}
	}()
	wg.Wait()
	close(done)
	if j.Total() != 1600 || j.Len() != 32 {
		t.Fatalf("total=%d len=%d", j.Total(), j.Len())
	}
}

func TestEventFromRecord(t *testing.T) {
	r := QueryRecord{
		Query: "covid", Method: "ANNS", K: 10, Matches: 3, TopScore: 0.8,
		Duration: 15 * time.Millisecond,
		Stages: []Stage{
			{Name: "encode", Duration: 5 * time.Millisecond},
			{Name: "retrieve", Duration: 10 * time.Millisecond, Annotations: map[string]string{"hits": "42"}},
		},
	}
	e := EventFromRecord("slow", r)
	if e.Kind != "slow" || e.DurationMS != 15 || len(e.Stages) != 2 {
		t.Fatalf("event=%+v", e)
	}
	if e.Stages[1].Annotations["hits"] != "42" {
		t.Fatalf("annotations lost: %+v", e.Stages[1])
	}
}

func TestRecentQueries(t *testing.T) {
	r := NewRecentQueries(3)
	for _, q := range []string{"a", "b", "a", "c", "d"} {
		r.Add(q)
	}
	// Ring holds [a c d]; Items dedupes, newest first.
	items := r.Items(0)
	if len(items) != 3 || items[0] != "d" || items[1] != "c" || items[2] != "a" {
		t.Fatalf("items=%v", items)
	}
	if got := r.Items(2); len(got) != 2 {
		t.Fatalf("Items(2)=%v", got)
	}
	r.Add("")
	var nilRing *RecentQueries
	nilRing.Add("x")
	if nilRing.Items(1) != nil {
		t.Fatal("nil ring returned items")
	}
}
