package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func finishedTrace(t *testing.T) *Trace {
	t.Helper()
	tr := NewTrace()
	root := tr.StartRoot("search")
	tr.StartSpan("encode").End()
	root.End()
	return tr
}

func TestTraceStoreKindPrecedence(t *testing.T) {
	s := NewTraceStore(TraceStoreConfig{LatencyThreshold: time.Second})
	cases := []struct {
		name string
		o    TraceOutcome
		want string
	}{
		{"error beats degraded", TraceOutcome{Err: "boom", Degraded: true, Hedged: 2, Duration: 2 * time.Second}, "error"},
		{"degraded beats hedged", TraceOutcome{Degraded: true, Hedged: 2, Duration: 2 * time.Second}, "degraded"},
		{"shard errors imply degraded", TraceOutcome{ShardErrors: []string{"shard 1: x"}}, "degraded"},
		{"hedged beats slow", TraceOutcome{Hedged: 1, Duration: 2 * time.Second}, "hedged"},
		{"slow", TraceOutcome{Duration: 2 * time.Second}, "slow"},
	}
	for _, c := range cases {
		kept, kind := s.Offer(finishedTrace(t), c.o)
		if !kept || kind != c.want {
			t.Errorf("%s: kept=%v kind=%q, want kept kind %q", c.name, kept, kind, c.want)
		}
	}
	// Uninteresting outcome with no head sampling: dropped.
	kept, kind := s.Offer(finishedTrace(t), TraceOutcome{Duration: time.Millisecond})
	if kept || kind != "" {
		t.Errorf("uninteresting offer kept=%v kind=%q, want dropped", kept, kind)
	}
}

func TestTraceStoreHeadSample(t *testing.T) {
	s := NewTraceStore(TraceStoreConfig{HeadSampleEvery: 4})
	var sampled int
	for i := 0; i < 16; i++ {
		kept, kind := s.Offer(finishedTrace(t), TraceOutcome{Duration: time.Microsecond})
		if kept {
			if kind != "sampled" {
				t.Errorf("head-sampled trace kind = %q, want sampled", kind)
			}
			sampled++
		}
	}
	if sampled != 4 {
		t.Errorf("sampled %d of 16 at 1-in-4, want 4", sampled)
	}
}

func TestTraceStoreEvictionOrder(t *testing.T) {
	s := NewTraceStore(TraceStoreConfig{Capacity: 4})
	var ids []string
	for i := 0; i < 7; i++ {
		tr := finishedTrace(t)
		ids = append(ids, tr.ID().String())
		if kept, _ := s.Offer(tr, TraceOutcome{Err: fmt.Sprintf("e%d", i)}); !kept {
			t.Fatalf("offer %d not kept", i)
		}
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	if s.Evicted() != 3 {
		t.Errorf("Evicted = %d, want 3", s.Evicted())
	}
	// Oldest three are gone, newest four remain, and byID agrees.
	for i, id := range ids {
		_, ok := s.Get(id)
		if want := i >= 3; ok != want {
			t.Errorf("Get(%s) (offer %d) = %v, want %v", id, i, ok, want)
		}
	}
	// List is newest first.
	list := s.List(0)
	if len(list) != 4 {
		t.Fatalf("List returned %d traces, want 4", len(list))
	}
	for i, st := range list {
		if want := ids[len(ids)-1-i]; st.TraceID != want {
			t.Errorf("List[%d] = %s, want %s", i, st.TraceID, want)
		}
	}
}

func TestTraceStoreSpanTreeParents(t *testing.T) {
	s := NewTraceStore(TraceStoreConfig{})
	tr := NewTrace()
	root := tr.StartRoot("cluster_search")
	tr.StartSpan("encode").End()
	scatter := tr.StartSpan("scatter")
	sh0 := scatter.StartChild("shard").AnnotateInt("shard", 0).Annotate("attempt", "primary")
	sh0.End()
	sh1 := scatter.StartChild("shard").AnnotateInt("shard", 1).Annotate("attempt", "hedge")
	sh1.End()
	scatter.End()
	root.End()
	if kept, _ := s.Offer(tr, TraceOutcome{Hedged: 1}); !kept {
		t.Fatal("hedged trace not kept")
	}
	st, ok := s.Get(tr.ID().String())
	if !ok {
		t.Fatal("stored trace not retrievable by ID")
	}
	if len(st.Spans) != 5 {
		t.Fatalf("stored %d spans, want 5", len(st.Spans))
	}
	parentOf := make(map[string]string)
	nameOf := make(map[string]string)
	for _, sp := range st.Spans {
		parentOf[sp.SpanID] = sp.ParentID
		nameOf[sp.SpanID] = sp.Name
	}
	rootID := root.ID().String()
	if parentOf[rootID] != "" {
		t.Errorf("local root has parent %q, want none", parentOf[rootID])
	}
	if parentOf[scatter.ID().String()] != rootID {
		t.Errorf("scatter parent = %s, want root %s", parentOf[scatter.ID().String()], rootID)
	}
	for _, sh := range []*Span{sh0, sh1} {
		if parentOf[sh.ID().String()] != scatter.ID().String() {
			t.Errorf("shard span parent = %s, want scatter %s",
				parentOf[sh.ID().String()], scatter.ID().String())
		}
	}
}

func TestTraceStoreRemoteParent(t *testing.T) {
	s := NewTraceStore(TraceStoreConfig{})
	remote := NewSpanID()
	tr := NewTraceWith(NewTraceID(), remote, FlagSampled)
	root := tr.StartRoot("search")
	root.End()
	s.Offer(tr, TraceOutcome{Err: "x"})
	st, _ := s.Get(tr.ID().String())
	if len(st.Spans) != 1 {
		t.Fatalf("stored %d spans, want 1", len(st.Spans))
	}
	if st.Spans[0].ParentID != remote.String() {
		t.Errorf("propagated root's parent = %q, want remote %s", st.Spans[0].ParentID, remote)
	}
}

func TestTraceStoreConcurrent(t *testing.T) {
	s := NewTraceStore(TraceStoreConfig{Capacity: 32, HeadSampleEvery: 2})
	const goroutines = 8
	const perG = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tr := NewTrace()
				root := tr.StartRoot("search")
				tr.StartSpan("encode").End()
				root.End()
				o := TraceOutcome{Duration: time.Duration(i) * time.Microsecond}
				if i%3 == 0 {
					o.Err = "boom"
				}
				s.Offer(tr, o)
			}
		}(g)
	}
	wg.Wait()
	if got := s.Offered(); got != goroutines*perG {
		t.Errorf("Offered = %d, want %d", got, goroutines*perG)
	}
	if s.Len() > 32 {
		t.Errorf("Len = %d exceeds capacity 32", s.Len())
	}
	// Every listed trace must be retrievable by its ID — the byID map and
	// the ring must agree after concurrent eviction churn.
	for _, st := range s.List(0) {
		got, ok := s.Get(st.TraceID)
		if !ok {
			t.Errorf("listed trace %s not retrievable by ID", st.TraceID)
		} else if got.TraceID != st.TraceID {
			t.Errorf("Get(%s) returned trace %s", st.TraceID, got.TraceID)
		}
	}
	if kept := s.Kept(); int64(s.Len())+s.Evicted() != kept {
		t.Errorf("Len %d + Evicted %d != Kept %d", s.Len(), s.Evicted(), kept)
	}
}

func TestTraceStoreWriteJSONL(t *testing.T) {
	s := NewTraceStore(TraceStoreConfig{})
	var ids []string
	for i := 0; i < 3; i++ {
		tr := finishedTrace(t)
		ids = append(ids, tr.ID().String())
		s.Offer(tr, TraceOutcome{Err: "x", Query: fmt.Sprintf("q%d", i)})
	}
	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines int
	for sc.Scan() {
		var st StoredTrace
		if err := json.Unmarshal(sc.Bytes(), &st); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if st.TraceID != ids[lines] { // oldest first
			t.Errorf("line %d trace ID = %s, want %s", lines, st.TraceID, ids[lines])
		}
		if len(st.Spans) == 0 {
			t.Errorf("line %d has no spans", lines)
		}
		lines++
	}
	if lines != 3 {
		t.Errorf("wrote %d lines, want 3", lines)
	}
}

func TestTraceStoreNil(t *testing.T) {
	var s *TraceStore
	if kept, kind := s.Offer(NewTrace(), TraceOutcome{Err: "x"}); kept || kind != "" {
		t.Error("nil store kept a trace")
	}
	if s.Len() != 0 || s.Offered() != 0 || s.Kept() != 0 || s.Evicted() != 0 {
		t.Error("nil store reports non-zero counters")
	}
	if _, ok := s.Get("abc"); ok {
		t.Error("nil store returned a trace")
	}
	if s.List(5) != nil {
		t.Error("nil store listed traces")
	}
	if err := s.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Errorf("nil store WriteJSONL: %v", err)
	}
	// Offer with a nil trace keeps nothing either.
	real := NewTraceStore(TraceStoreConfig{})
	if kept, _ := real.Offer(nil, TraceOutcome{Err: errors.New("x").Error()}); kept {
		t.Error("nil trace kept")
	}
}

func TestSpanTreeStructure(t *testing.T) {
	tr := NewTrace()
	if tr.ID().IsZero() {
		t.Fatal("new trace has zero ID")
	}
	root := tr.StartRoot("search")
	if tr.RootID() != root.ID() {
		t.Error("RootID does not match the started root")
	}
	a := tr.StartSpan("encode")
	a.End()
	b := tr.StartSpan("scan")
	child := b.StartChild("chunk")
	child.End()
	b.End()
	root.End()

	recs := tr.Spans()
	if len(recs) != 4 {
		t.Fatalf("recorded %d spans, want 4", len(recs))
	}
	parents := make(map[SpanID]SpanID)
	for _, r := range recs {
		parents[r.SpanID] = r.Parent
	}
	if parents[a.ID()] != root.ID() || parents[b.ID()] != root.ID() {
		t.Error("stage spans not parented under root")
	}
	if parents[child.ID()] != b.ID() {
		t.Error("child span not parented under its parent span")
	}
	if !parents[root.ID()].IsZero() {
		t.Error("root span has a parent")
	}
	// Stages excludes the root so totals don't double-count.
	stages := tr.Stages()
	if len(stages) != 3 {
		t.Fatalf("Stages returned %d, want 3 (root excluded)", len(stages))
	}
	for _, st := range stages {
		if st.Name == "search" {
			t.Error("root span leaked into Stages")
		}
	}
}

func TestSpanNilSafety(t *testing.T) {
	var tr *Trace
	root := tr.StartRoot("search")
	sp := tr.StartSpan("encode")
	child := sp.StartChild("inner").Annotate("k", "v").AnnotateInt("n", 1)
	if child.ID() != (SpanID{}) {
		t.Error("untraced span minted an ID")
	}
	time.Sleep(time.Millisecond)
	if child.End() <= 0 || sp.End() <= 0 || root.End() <= 0 {
		t.Error("nil-trace spans should still measure time")
	}
	if tr.Spans() != nil || tr.Stages() != nil {
		t.Error("nil trace retained spans")
	}
	var nilSpan *Span
	if nilSpan.End() != 0 || nilSpan.Name() != "" {
		t.Error("nil span misbehaved")
	}
	nilSpan.Annotate("k", "v") // must not panic
}
