package obs

import (
	"math"
	"testing"
	"time"
)

func TestNormalizeQueryKey(t *testing.T) {
	cases := map[string]string{
		"Average  RENT":        "average rent",
		"  covid\tvaccines\n ": "covid vaccines",
		"":                     "",
	}
	for in, want := range cases {
		if got := NormalizeQueryKey(in); got != want {
			t.Errorf("NormalizeQueryKey(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWorkloadSketchReplacement exercises the space-saving update: a miss
// against a full sketch evicts the minimum-count entry and inherits its
// count as the error bound, so Count-Error stays a true lower bound.
func TestWorkloadSketchReplacement(t *testing.T) {
	w := NewWorkload(WorkloadConfig{TopQueries: 2}, nil)
	rec := func(q string, n int) {
		for i := 0; i < n; i++ {
			w.Record(q, "ExS", "", CostReport{DistanceComps: 1}, time.Millisecond, time.Time{})
		}
	}
	rec("Alpha  One", 3) // normalizes to "alpha one"
	rec("beta", 1)
	rec("gamma", 1) // sketch full: evicts beta (count 1), inherits error

	s := w.Snapshot()
	if s.Queries != 5 {
		t.Fatalf("Queries = %d, want 5", s.Queries)
	}
	if len(s.HeavyHitters) != 2 {
		t.Fatalf("heavy hitters = %+v, want 2 entries", s.HeavyHitters)
	}
	top := s.HeavyHitters[0]
	if top.Query != "alpha one" || top.Count != 3 || top.Error != 0 {
		t.Fatalf("top hitter = %+v, want {alpha one 3 0}", top)
	}
	second := s.HeavyHitters[1]
	if second.Query != "gamma" || second.Count != 2 || second.Error != 1 {
		t.Fatalf("second hitter = %+v, want {gamma 2 1}", second)
	}
	if second.Count-second.Error != 1 {
		t.Fatalf("lower bound = %d, want 1 (true gamma frequency)", second.Count-second.Error)
	}
}

// TestWorkloadGini pins the shard-skew gauge on two known distributions:
// one shard taking everything on a 4-shard cluster has Gini 0.75 and
// imbalance 4.0; a perfectly balanced load has Gini 0 and imbalance 1.0.
func TestWorkloadGini(t *testing.T) {
	reg := NewRegistry()
	skew := NewWorkload(WorkloadConfig{Shards: 4}, reg)
	for i := 0; i < 30; i++ {
		skew.RecordShard(0)
	}
	skew.RecordShard(99) // out of range: ignored
	s := skew.Snapshot()
	if math.Abs(s.LoadGini-0.75) > 1e-9 {
		t.Fatalf("skewed Gini = %v, want 0.75", s.LoadGini)
	}
	if math.Abs(s.LoadImbalance-4.0) > 1e-9 {
		t.Fatalf("skewed imbalance = %v, want 4.0", s.LoadImbalance)
	}
	if len(s.ShardLoad) != 4 || s.ShardLoad[0] != 30 {
		t.Fatalf("shard load = %v", s.ShardLoad)
	}
	if g := reg.Snapshot().Gauges[MetricWorkloadGini]; math.Abs(g-0.75) > 1e-9 {
		t.Fatalf("gini gauge = %v, want 0.75", g)
	}

	bal := NewWorkload(WorkloadConfig{Shards: 4}, nil)
	for i := 0; i < 20; i++ {
		bal.RecordShard(i % 4)
	}
	s = bal.Snapshot()
	if s.LoadGini != 0 {
		t.Fatalf("balanced Gini = %v, want 0", s.LoadGini)
	}
	if math.Abs(s.LoadImbalance-1.0) > 1e-9 {
		t.Fatalf("balanced imbalance = %v, want 1.0", s.LoadImbalance)
	}
}

// TestWorkloadCostliestBoard checks the top-N board keeps the N costliest
// queries and snapshots them highest-cost first.
func TestWorkloadCostliestBoard(t *testing.T) {
	w := NewWorkload(WorkloadConfig{Costliest: 2}, nil)
	for _, c := range []struct {
		q     string
		comps int64
	}{{"cheap", 10}, {"dear", 30}, {"mid", 20}, {"cheaper", 5}} {
		w.Record(c.q, "ANNS", "t-"+c.q, CostReport{DistanceComps: c.comps}, time.Millisecond, time.Time{})
	}
	s := w.Snapshot()
	if len(s.Costliest) != 2 {
		t.Fatalf("costliest = %+v, want 2 entries", s.Costliest)
	}
	if s.Costliest[0].Query != "dear" || s.Costliest[0].Cost.DistanceComps != 30 {
		t.Fatalf("costliest[0] = %+v, want dear/30", s.Costliest[0])
	}
	if s.Costliest[1].Query != "mid" || s.Costliest[1].TraceID != "t-mid" {
		t.Fatalf("costliest[1] = %+v, want mid", s.Costliest[1])
	}
}

func TestWorkloadNilNoop(t *testing.T) {
	var w *Workload
	w.Record("q", "ExS", "", CostReport{}, time.Millisecond, time.Time{})
	w.RecordShard(0)
	if s := w.Snapshot(); s.Queries != 0 || s.HeavyHitters != nil {
		t.Fatalf("nil workload snapshot = %+v", s)
	}
}
