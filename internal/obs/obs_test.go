package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				reg.Counter("hits_total").Inc()
				reg.Counter(L("typed_total", "kind", "a")).Add(2)
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("hits_total").Value(); got != workers*perWorker {
		t.Fatalf("hits_total = %d, want %d", got, workers*perWorker)
	}
	if got := reg.Counter(L("typed_total", "kind", "a")).Value(); got != 2*workers*perWorker {
		t.Fatalf("typed_total = %d, want %d", got, 2*workers*perWorker)
	}
}

func TestGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("queue_depth")
	g.Set(3.5)
	g.Add(1.5)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %v, want 5", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1000 observations spread uniformly over 1..1000 ms.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	// Exponential buckets bound the estimate by a factor of two of truth.
	checks := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Millisecond},
		{0.95, 950 * time.Millisecond},
		{0.99, 990 * time.Millisecond},
	}
	for _, c := range checks {
		got := s.Quantile(c.q)
		if got < c.want/2 || got > c.want*2 {
			t.Errorf("q%.0f = %v, want within 2x of %v", c.q*100, got, c.want)
		}
	}
	if s.Quantile(1.0) < s.Quantile(0.5) {
		t.Error("quantiles not monotone")
	}
}

func TestHistogramEmptyAndExtremes(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
	h.Observe(-time.Second) // clamped to 0
	h.Observe(500 * time.Hour)
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Buckets[numBuckets-1] != 1 {
		t.Fatalf("overflow bucket = %d", s.Buckets[numBuckets-1])
	}
}

func TestNilSafety(t *testing.T) {
	var reg *Registry
	reg.Counter("a").Inc()
	reg.Gauge("b").Set(1)
	reg.Histogram("c").Observe(time.Millisecond)
	if v := reg.Counter("a").Value(); v != 0 {
		t.Fatalf("nil counter = %d", v)
	}
	snap := reg.Snapshot()
	if len(snap.Counters) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}

	var tr *Trace
	sp := tr.StartSpan("stage")
	sp.Annotate("k", "v").AnnotateInt("n", 3)
	if d := sp.End(); d < 0 {
		t.Fatalf("nil-trace span duration = %v", d)
	}
	if got := tr.Stages(); got != nil {
		t.Fatalf("nil trace stages = %v", got)
	}

	var nilSpan *Span
	nilSpan.Annotate("k", "v")
	if d := nilSpan.End(); d != 0 {
		t.Fatalf("nil span End = %v", d)
	}
}

func TestTraceStages(t *testing.T) {
	tr := NewTrace()
	sp := tr.StartSpan("encode")
	time.Sleep(time.Millisecond)
	sp.AnnotateInt("tokens", 7)
	sp.End()
	tr.StartSpan("rank").End()

	stages := tr.Stages()
	if len(stages) != 2 {
		t.Fatalf("stages = %d", len(stages))
	}
	if stages[0].Name != "encode" || stages[1].Name != "rank" {
		t.Fatalf("stage order: %+v", stages)
	}
	if stages[0].Duration < time.Millisecond {
		t.Fatalf("encode duration = %v", stages[0].Duration)
	}
	if stages[0].Annotations["tokens"] != "7" {
		t.Fatalf("annotations = %v", stages[0].Annotations)
	}
	if tr.Total() < stages[0].Duration {
		t.Fatal("total < first stage")
	}
}

func TestLabelRoundTrip(t *testing.T) {
	series := L("searches_total", "method", "CTS", "stage", "descent")
	want := `searches_total{method="CTS",stage="descent"}`
	if series != want {
		t.Fatalf("L = %q", series)
	}
	base, labels := ParseName(series)
	if base != "searches_total" || labels["method"] != "CTS" || labels["stage"] != "descent" {
		t.Fatalf("ParseName = %q %v", base, labels)
	}
	base, labels = ParseName("plain")
	if base != "plain" || labels != nil {
		t.Fatalf("ParseName plain = %q %v", base, labels)
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(L("searches_total", "method", "CTS")).Add(3)
	reg.Counter(L("searches_total", "method", "ExS")).Add(1)
	reg.Gauge("index_clusters").Set(12)
	reg.Histogram(L("search_seconds", "method", "CTS")).Observe(2 * time.Millisecond)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE searches_total counter",
		`searches_total{method="CTS"} 3`,
		`searches_total{method="ExS"} 1`,
		"# TYPE index_clusters gauge",
		"index_clusters 12",
		"# TYPE search_seconds histogram",
		`search_seconds_bucket{method="CTS",le="+Inf"} 1`,
		`search_seconds_count{method="CTS"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	// TYPE headers must not repeat per label set.
	if strings.Count(out, "# TYPE searches_total counter") != 1 {
		t.Error("duplicated TYPE line")
	}

	var nilReg *Registry
	b.Reset()
	if err := nilReg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "disabled") {
		t.Errorf("nil registry output = %q", b.String())
	}
}
