package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// EventStage is a stage breakdown entry in a journal event, shaped for
// machine ingestion (milliseconds, JSON tags).
type EventStage struct {
	Name        string            `json:"name"`
	DurationMS  float64           `json:"duration_ms"`
	Annotations map[string]string `json:"annotations,omitempty"`
}

// Event is one structured journal entry: a sampled or slow query with its
// exemplar trace. Kind distinguishes why it was journaled.
type Event struct {
	Time       time.Time    `json:"time"`
	Kind       string       `json:"kind"` // "slow" or "sampled"
	Method     string       `json:"method,omitempty"`
	Query      string       `json:"query,omitempty"`
	K          int          `json:"k,omitempty"`
	Matches    int          `json:"matches"`
	DurationMS float64      `json:"duration_ms"`
	Stages     []EventStage `json:"stages,omitempty"`
	TraceID    string       `json:"trace_id,omitempty"`
	RequestID  string       `json:"request_id,omitempty"`
	Err        string       `json:"error,omitempty"`
}

// EventFromRecord converts a slow-log record into a journal event.
func EventFromRecord(kind string, r QueryRecord) Event {
	e := Event{
		Time:       r.Time,
		Kind:       kind,
		Method:     r.Method,
		Query:      r.Query,
		K:          r.K,
		Matches:    r.Matches,
		DurationMS: float64(r.Duration) / float64(time.Millisecond),
		TraceID:    r.TraceID,
		RequestID:  r.RequestID,
		Err:        r.Err,
	}
	if len(r.Stages) > 0 {
		e.Stages = make([]EventStage, len(r.Stages))
		for i, st := range r.Stages {
			e.Stages[i] = EventStage{
				Name:        st.Name,
				DurationMS:  float64(st.Duration) / float64(time.Millisecond),
				Annotations: st.Annotations,
			}
		}
	}
	return e
}

// Journal is a bounded, concurrency-safe ring of structured events,
// exportable as JSON lines. When full, appending evicts the oldest event;
// Dropped counts evictions so consumers can detect gaps. A nil *Journal is
// a valid no-op.
type Journal struct {
	dropped atomic.Int64
	total   atomic.Int64

	mu   sync.Mutex
	buf  []Event
	next int
	n    int
}

// NewJournal returns a journal holding up to capacity events.
// capacity ≤ 0 selects the default of 256.
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = 256
	}
	return &Journal{buf: make([]Event, capacity)}
}

// Append records one event, evicting the oldest when full.
func (j *Journal) Append(e Event) {
	if j == nil {
		return
	}
	j.total.Add(1)
	j.mu.Lock()
	if j.n == len(j.buf) {
		j.dropped.Add(1)
	}
	j.buf[j.next] = e
	j.next = (j.next + 1) % len(j.buf)
	if j.n < len(j.buf) {
		j.n++
	}
	j.mu.Unlock()
}

// Len returns the number of retained events.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Total returns the lifetime count of appended events.
func (j *Journal) Total() int64 {
	if j == nil {
		return 0
	}
	return j.total.Load()
}

// Dropped returns how many events were evicted before being read.
func (j *Journal) Dropped() int64 {
	if j == nil {
		return 0
	}
	return j.dropped.Load()
}

// Events returns up to n retained events in chronological order (oldest
// first). n ≤ 0 returns every retained event.
func (j *Journal) Events(n int) []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	out := make([]Event, 0, j.n)
	start := j.next - j.n
	if start < 0 {
		start += len(j.buf)
	}
	for i := 0; i < j.n; i++ {
		out = append(out, j.buf[(start+i)%len(j.buf)])
	}
	j.mu.Unlock()
	if n > 0 && len(out) > n {
		out = out[len(out)-n:] // keep the newest n, still chronological
	}
	return out
}

// WriteJSONL streams every retained event to w as JSON lines, oldest
// first. Safe on a nil receiver (writes nothing).
func (j *Journal) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range j.Events(0) {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
