package obs

import (
	"strings"
	"testing"
	"time"
)

// TestOpenMetricsExemplarOnlyWhereRecorded checks the exemplar suffix is
// emitted only on the one bucket that has an exemplar: buckets that saw
// observations but never a SetExemplar render as plain bucket lines, and
// the 0.0.4 Prometheus exposition never carries exemplar syntax at all.
func TestOpenMetricsExemplarOnlyWhereRecorded(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("probe_seconds")
	h.Observe(10 * time.Microsecond) // a bucket with counts but no exemplar
	h.Observe(5 * time.Millisecond)
	h.SetExemplar(5*time.Millisecond, "cafe01")

	var b strings.Builder
	if err := reg.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("OpenMetrics output does not end with # EOF:\n%s", out)
	}

	var exemplarLines, bucketLines int
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "probe_seconds_bucket{") {
			continue
		}
		bucketLines++
		if strings.Contains(line, "# {trace_id=") {
			exemplarLines++
			if !strings.Contains(line, `# {trace_id="cafe01"} 0.005 `) {
				t.Fatalf("malformed exemplar suffix: %s", line)
			}
		}
	}
	if bucketLines != numBuckets {
		t.Fatalf("emitted %d bucket lines, want %d", bucketLines, numBuckets)
	}
	if exemplarLines != 1 {
		t.Fatalf("emitted %d exemplar suffixes, want exactly 1:\n%s", exemplarLines, out)
	}

	b.Reset()
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "# {") {
		t.Fatalf("Prometheus 0.0.4 exposition carries exemplar syntax:\n%s", b.String())
	}
	if strings.Contains(b.String(), "# EOF") {
		t.Fatal("Prometheus 0.0.4 exposition carries the OpenMetrics EOF marker")
	}
}

// TestOpenMetricsLabelEscaping round-trips a label value containing every
// character the text format escapes — backslash, double quote, newline —
// through L → exposition → ParseName.
func TestOpenMetricsLabelEscaping(t *testing.T) {
	raw := "say \"hi\"\\there\nnow"
	series := L("q_seconds", "query", raw)

	base, labels := ParseName(series)
	if base != "q_seconds" || labels["query"] != raw {
		t.Fatalf("ParseName round-trip: base=%q labels=%#v", base, labels)
	}

	reg := NewRegistry()
	h := reg.Histogram(series)
	h.Observe(time.Millisecond)
	h.SetExemplar(time.Millisecond, "feed02")

	var b strings.Builder
	if err := reg.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	escaped := `query="say \"hi\"\\there\nnow"`
	if !strings.Contains(out, "q_seconds_bucket{"+escaped+",le=") {
		t.Fatalf("bucket lines do not carry the escaped label:\n%s", out)
	}
	if !strings.Contains(out, "q_seconds_sum{"+escaped+"} ") ||
		!strings.Contains(out, "q_seconds_count{"+escaped+"} 1") {
		t.Fatalf("sum/count lines do not carry the escaped label:\n%s", out)
	}
	if strings.Contains(out, "\nnow") {
		t.Fatalf("a raw newline leaked into the exposition:\n%s", out)
	}
	if !strings.Contains(out, `# {trace_id="feed02"}`) {
		t.Fatalf("exemplar missing on escaped-label series:\n%s", out)
	}

	// Every emitted bucket series must parse back to the original value.
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "q_seconds_bucket{") {
			continue
		}
		name := line[:strings.IndexByte(line, '}')+1]
		if _, l := ParseName(name); l["query"] != raw {
			t.Fatalf("bucket series %q does not round-trip: %#v", name, l)
		}
	}
}
