package obs

import (
	"encoding/binary"
	"encoding/hex"
	"math/rand/v2"
	"time"
)

// TraceID is a 128-bit trace identifier, the W3C Trace Context format.
// The zero value is invalid: the spec reserves all-zero IDs as "absent".
type TraceID [16]byte

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// SpanID is a 64-bit span identifier. All-zero is invalid.
type SpanID [8]byte

// String renders the ID as 16 lowercase hex digits.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// NewTraceID returns a random non-zero trace ID. The generator is
// math/rand/v2's goroutine-safe ChaCha8 stream — cheap enough to mint an
// ID per request.
func NewTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		binary.BigEndian.PutUint64(id[0:8], rand.Uint64())
		binary.BigEndian.PutUint64(id[8:16], rand.Uint64())
	}
	return id
}

// NewSpanID returns a random non-zero span ID.
func NewSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		binary.BigEndian.PutUint64(id[:], rand.Uint64())
	}
	return id
}

// ParseTraceID parses 32 hex digits into a TraceID. ok is false on bad
// length, non-hex input or the all-zero ID.
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 32 {
		return id, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, false
	}
	return id, !id.IsZero()
}

// ParseSpanID parses 16 hex digits into a SpanID. ok is false on bad
// length, non-hex input or the all-zero ID.
func ParseSpanID(s string) (SpanID, bool) {
	var id SpanID
	if len(s) != 16 {
		return id, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return SpanID{}, false
	}
	return id, !id.IsZero()
}

// FlagSampled is the W3C trace-flags bit meaning "the caller recorded
// this trace"; traces this process starts carry it.
const FlagSampled byte = 0x01

// SpanRecord is one completed span of a trace: the stage data plus its
// position in the span tree. Parent is zero for the root span.
type SpanRecord struct {
	SpanID      SpanID
	Parent      SpanID
	Name        string
	Start       time.Time
	Duration    time.Duration
	Annotations map[string]string
}
