package obs

import (
	"context"
	"strings"
)

// SpanContext is the propagatable identity of a trace position: which
// trace a request belongs to and which span is its parent — exactly the
// fields a W3C traceparent header carries. It is what crosses process
// boundaries so the future networked shards join the coordinator's trace.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Flags   byte
}

// Valid reports whether both IDs are non-zero, the W3C well-formedness
// requirement.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Traceparent renders the context as a W3C traceparent header value:
// version 00, lowercase hex, "00-<trace-id>-<parent-id>-<flags>".
func (sc SpanContext) Traceparent() string {
	var b strings.Builder
	b.Grow(55)
	b.WriteString("00-")
	b.WriteString(sc.TraceID.String())
	b.WriteByte('-')
	b.WriteString(sc.SpanID.String())
	b.WriteByte('-')
	const hexdigits = "0123456789abcdef"
	b.WriteByte(hexdigits[sc.Flags>>4])
	b.WriteByte(hexdigits[sc.Flags&0xf])
	return b.String()
}

// ParseTraceparent parses a W3C traceparent header value. Per the spec:
// exactly four hyphen-separated fields for version 00; future versions
// (anything but "ff") are accepted as long as the first four fields parse,
// ignoring any trailing additions; all-zero trace or parent IDs, bad
// lengths and non-hex input are rejected. Hex must be lowercase.
func ParseTraceparent(h string) (SpanContext, bool) {
	var sc SpanContext
	if len(h) < 55 {
		return sc, false
	}
	parts := strings.SplitN(h, "-", 5)
	if len(parts) < 4 {
		return sc, false
	}
	version, ok := parseHexByte(parts[0])
	if !ok || version == 0xff {
		return sc, false
	}
	if version == 0 && (len(parts) != 4 || len(h) != 55) {
		// Version 00 is exactly 55 chars with no fifth field.
		return sc, false
	}
	tid, ok := parseLowerTraceID(parts[1])
	if !ok {
		return sc, false
	}
	sid, ok := parseLowerSpanID(parts[2])
	if !ok {
		return sc, false
	}
	flags, ok := parseHexByte(parts[3])
	if !ok {
		return sc, false
	}
	sc = SpanContext{TraceID: tid, SpanID: sid, Flags: flags}
	return sc, true
}

// parseHexByte parses exactly two lowercase hex digits.
func parseHexByte(s string) (byte, bool) {
	if len(s) != 2 {
		return 0, false
	}
	hi, ok1 := hexVal(s[0])
	lo, ok2 := hexVal(s[1])
	if !ok1 || !ok2 {
		return 0, false
	}
	return hi<<4 | lo, true
}

// hexVal decodes one lowercase hex digit; uppercase is rejected, per the
// traceparent ABNF.
func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	default:
		return 0, false
	}
}

func parseLowerTraceID(s string) (TraceID, bool) {
	if !isLowerHex(s) {
		return TraceID{}, false
	}
	return ParseTraceID(s)
}

func parseLowerSpanID(s string) (SpanID, bool) {
	if !isLowerHex(s) {
		return SpanID{}, false
	}
	return ParseSpanID(s)
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		if _, ok := hexVal(s[i]); !ok {
			return false
		}
	}
	return true
}

type spanContextKey struct{}
type requestIDKey struct{}
type traceKey struct{}

// ContextWithTrace attaches the live *Trace collecting this request's
// spans, so layers that receive only a context (a networked replica group
// deep under the router) can graft remote span records into it.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom extracts the context's live trace; nil when none — and a nil
// *Trace is a valid no-op for Adopt and StartSpan alike.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// ContextWithSpan attaches a propagated span context; searches started
// under the returned context join that trace instead of minting a new ID.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanContextKey{}, sc)
}

// SpanContextFrom extracts a propagated span context, ok=false when none.
func SpanContextFrom(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(spanContextKey{}).(SpanContext)
	return sc, ok
}

// ContextWithRequestID attaches the request correlation ID so the access
// log, slow-query log and journal can be joined on it.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom extracts the request correlation ID, "" when none.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// NewTraceFrom builds a trace for a request under ctx: continuing the
// propagated trace when ctx carries a SpanContext, minting a fresh trace
// ID otherwise.
func NewTraceFrom(ctx context.Context) *Trace {
	if sc, ok := SpanContextFrom(ctx); ok && sc.Valid() {
		return NewTraceWith(sc.TraceID, sc.SpanID, sc.Flags)
	}
	return NewTrace()
}
