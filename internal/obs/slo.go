package obs

import (
	"fmt"
	"sync"
	"time"
)

// SLO metric names.
const (
	// MetricSLOBurnRate is the per-objective, per-window burn-rate gauge:
	// semdisco_slo_burn_rate{objective="availability"|"latency",window="5m"|"1h"|"6h"}.
	MetricSLOBurnRate = "semdisco_slo_burn_rate"
)

// Burn-rate alert thresholds, after the multiwindow policy of the Google
// SRE workbook: a fast burn fires when both the 5m and 1h windows burn
// error budget at ≥ 14.4× the sustainable rate (a 99.9% objective would
// exhaust its 30-day budget in ~2 days); a slow burn fires at ≥ 6× on
// both the 1h and 6h windows. Requiring the short AND long window keeps
// alerts from flapping on a single bad minute.
const (
	fastBurnThreshold = 14.4
	slowBurnThreshold = 6.0
)

// SLO window geometry: 6h of history in 30-second buckets.
const (
	sloBucketSeconds = 30
	sloBuckets       = 6 * 3600 / sloBucketSeconds
)

// SLOEngineConfig sets the objectives. Zero fields take the defaults
// (99.9% availability, 99% of requests under 500ms).
type SLOEngineConfig struct {
	// AvailabilityObjective is the target fraction of non-failing,
	// non-degraded requests, e.g. 0.999.
	AvailabilityObjective float64
	// LatencyObjective is the target fraction of requests completing under
	// LatencyThreshold, e.g. 0.99.
	LatencyObjective float64
	// LatencyThreshold is the latency SLO's cutoff.
	LatencyThreshold time.Duration
	// Now overrides the clock, for tests. Nil uses time.Now.
	Now func() time.Time
}

// SLOWindow is one objective×window burn-rate reading.
type SLOWindow struct {
	Window string `json:"window"`
	// Total and Bad are the request counts inside the window.
	Total int64 `json:"total"`
	Bad   int64 `json:"bad"`
	// BadFraction is Bad/Total (0 when the window is empty).
	BadFraction float64 `json:"bad_fraction"`
	// BurnRate is BadFraction divided by the objective's error budget
	// (1 − objective): 1.0 burns the budget exactly at the sustainable
	// rate, 14.4 exhausts a 30-day budget in ~2 days.
	BurnRate float64 `json:"burn_rate"`
}

// SLOObjectiveStatus is one objective's full reading: its target, the
// three window burn rates and the alert state ("ok", "slow_burn",
// "fast_burn").
type SLOObjectiveStatus struct {
	Objective string  `json:"objective"`
	Target    float64 `json:"target"`
	// ThresholdMS is set for the latency objective only.
	ThresholdMS float64     `json:"threshold_ms,omitempty"`
	State       string      `json:"state"`
	Windows     []SLOWindow `json:"windows"`
}

// SLOSnapshot is the engine's point-in-time view, shaped for the
// /v1/debug/slo endpoint.
type SLOSnapshot struct {
	Objectives []SLOObjectiveStatus `json:"objectives"`
}

// sloBucket accumulates one 30-second slice of traffic. epoch is the
// bucket's absolute index (unix seconds / 30); a ring slot whose epoch is
// stale reads as empty.
type sloBucket struct {
	epoch   int64
	total   int64
	unavail int64
	slow    int64
}

// SLOEngine tracks availability and latency objectives over rolling
// 5m/1h/6h windows and derives multiwindow burn-rate alert states. It is
// fed one Record call per finished request (the engine and cluster search
// paths do this) and costs one mutex acquisition and a couple of adds per
// request; window sums are only walked when a bucket rolls over or a
// snapshot is taken. A nil *SLOEngine is a valid no-op.
type SLOEngine struct {
	cfg SLOEngineConfig
	now func() time.Time

	mu      sync.Mutex
	buckets [sloBuckets]sloBucket

	gauges map[string]*Gauge
}

// NewSLOEngine builds an engine. reg, when non-nil, receives the six
// burn-rate gauges (refreshed on bucket rollover and on Snapshot).
func NewSLOEngine(cfg SLOEngineConfig, reg *Registry) *SLOEngine {
	if cfg.AvailabilityObjective <= 0 || cfg.AvailabilityObjective >= 1 {
		cfg.AvailabilityObjective = 0.999
	}
	if cfg.LatencyObjective <= 0 || cfg.LatencyObjective >= 1 {
		cfg.LatencyObjective = 0.99
	}
	if cfg.LatencyThreshold <= 0 {
		cfg.LatencyThreshold = 500 * time.Millisecond
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	e := &SLOEngine{cfg: cfg, now: now, gauges: make(map[string]*Gauge, 6)}
	for _, obj := range []string{"availability", "latency"} {
		for _, win := range []string{"5m", "1h", "6h"} {
			e.gauges[obj+"/"+win] = reg.Gauge(L(MetricSLOBurnRate, "objective", obj, "window", win))
		}
	}
	return e
}

// Record accounts one finished request: failed marks it bad for the
// availability objective (errors and degraded responses both count —
// a partial answer spends error budget), latency over the threshold marks
// it bad for the latency objective.
func (e *SLOEngine) Record(latency time.Duration, failed bool) {
	if e == nil {
		return
	}
	epoch := e.now().Unix() / sloBucketSeconds
	e.mu.Lock()
	b := &e.buckets[epoch%sloBuckets]
	rolled := b.epoch != epoch
	if rolled {
		*b = sloBucket{epoch: epoch}
	}
	b.total++
	if failed {
		b.unavail++
	}
	if latency > e.cfg.LatencyThreshold {
		b.slow++
	}
	var snap *SLOSnapshot
	if rolled {
		s := e.snapshotLocked(epoch)
		snap = &s
	}
	e.mu.Unlock()
	if snap != nil {
		e.publish(*snap)
	}
}

var sloWindows = []struct {
	name    string
	buckets int64
}{
	{"5m", 5 * 60 / sloBucketSeconds},
	{"1h", 3600 / sloBucketSeconds},
	{"6h", 6 * 3600 / sloBucketSeconds},
}

// Snapshot computes every objective's window burn rates and alert state,
// and refreshes the burn-rate gauges. Zero-valued on nil.
func (e *SLOEngine) Snapshot() SLOSnapshot {
	if e == nil {
		return SLOSnapshot{}
	}
	epoch := e.now().Unix() / sloBucketSeconds
	e.mu.Lock()
	s := e.snapshotLocked(epoch)
	e.mu.Unlock()
	e.publish(s)
	return s
}

func (e *SLOEngine) snapshotLocked(epoch int64) SLOSnapshot {
	avail := SLOObjectiveStatus{Objective: "availability", Target: e.cfg.AvailabilityObjective}
	lat := SLOObjectiveStatus{
		Objective:   "latency",
		Target:      e.cfg.LatencyObjective,
		ThresholdMS: float64(e.cfg.LatencyThreshold) / float64(time.Millisecond),
	}
	for _, w := range sloWindows {
		var total, unavail, slow int64
		min := epoch - w.buckets + 1
		for i := range e.buckets {
			b := &e.buckets[i]
			if b.epoch >= min && b.epoch <= epoch {
				total += b.total
				unavail += b.unavail
				slow += b.slow
			}
		}
		avail.Windows = append(avail.Windows, sloWindow(w.name, total, unavail, e.cfg.AvailabilityObjective))
		lat.Windows = append(lat.Windows, sloWindow(w.name, total, slow, e.cfg.LatencyObjective))
	}
	avail.State = burnState(avail.Windows)
	lat.State = burnState(lat.Windows)
	return SLOSnapshot{Objectives: []SLOObjectiveStatus{avail, lat}}
}

func sloWindow(name string, total, bad int64, objective float64) SLOWindow {
	w := SLOWindow{Window: name, Total: total, Bad: bad}
	if total > 0 {
		w.BadFraction = float64(bad) / float64(total)
		w.BurnRate = w.BadFraction / (1 - objective)
	}
	return w
}

// burnState derives the multiwindow alert state from the [5m, 1h, 6h]
// readings: fast_burn when 5m AND 1h exceed 14.4×, slow_burn when 1h AND
// 6h exceed 6×, ok otherwise.
func burnState(ws []SLOWindow) string {
	if len(ws) != 3 {
		return "ok"
	}
	if ws[0].BurnRate >= fastBurnThreshold && ws[1].BurnRate >= fastBurnThreshold {
		return "fast_burn"
	}
	if ws[1].BurnRate >= slowBurnThreshold && ws[2].BurnRate >= slowBurnThreshold {
		return "slow_burn"
	}
	return "ok"
}

// publish pushes a snapshot's burn rates onto the gauges.
func (e *SLOEngine) publish(s SLOSnapshot) {
	for _, obj := range s.Objectives {
		for _, w := range obj.Windows {
			e.gauges[obj.Objective+"/"+w.Window].Set(w.BurnRate)
		}
	}
}

// String renders the alert states compactly, for logs.
func (s SLOSnapshot) String() string {
	out := ""
	for _, o := range s.Objectives {
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s=%s", o.Objective, o.State)
	}
	return out
}
