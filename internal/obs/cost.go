package obs

import (
	"context"
	"sync/atomic"
)

// Cost accumulates the work one query performed, in hardware-independent
// units: distance computations, HNSW graph hops, Product-Quantization table
// lookups, values and bytes touched by exhaustive scans, candidates
// generated and pruned, and cache hits. It is the observability primitive
// DESSERT-style cost models ask for — time explains *when* a query was
// slow, cost explains *why*.
//
// A *Cost travels down the stack inside a context (ContextWithCost); each
// layer extracts it once per query and flushes plain local counters into it
// at chunk boundaries, so the hot loops never touch an atomic per
// iteration. A nil *Cost is a valid no-op, so instrumented code never
// branches on whether accounting is enabled — a query run without a Cost
// in its context pays only a single context lookup.
type Cost struct {
	distanceComps atomic.Int64
	hnswHops      atomic.Int64
	pqLookups     atomic.Int64
	valuesScanned atomic.Int64
	bytesScanned  atomic.Int64
	candGenerated atomic.Int64
	candPruned    atomic.Int64
	cacheHits     atomic.Int64
}

// AddDistanceComps records n full-precision distance computations.
func (c *Cost) AddDistanceComps(n int64) {
	if c != nil {
		c.distanceComps.Add(n)
	}
}

// AddHNSWHops records n graph hops (greedy-descent moves plus beam
// expansions).
func (c *Cost) AddHNSWHops(n int64) {
	if c != nil {
		c.hnswHops.Add(n)
	}
}

// AddPQLookups records n asymmetric-distance (ADC) table lookups.
func (c *Cost) AddPQLookups(n int64) {
	if c != nil {
		c.pqLookups.Add(n)
	}
}

// AddValuesScanned records n value vectors touched by an exhaustive scan.
func (c *Cost) AddValuesScanned(n int64) {
	if c != nil {
		c.valuesScanned.Add(n)
	}
}

// AddBytesScanned records n bytes of vector data read.
func (c *Cost) AddBytesScanned(n int64) {
	if c != nil {
		c.bytesScanned.Add(n)
	}
}

// AddCandidatesGenerated records n candidates produced before ranking.
func (c *Cost) AddCandidatesGenerated(n int64) {
	if c != nil {
		c.candGenerated.Add(n)
	}
}

// AddCandidatesPruned records n candidates discarded before the final
// answer.
func (c *Cost) AddCandidatesPruned(n int64) {
	if c != nil {
		c.candPruned.Add(n)
	}
}

// AddCacheHits records n cache hits that short-circuited work.
func (c *Cost) AddCacheHits(n int64) {
	if c != nil {
		c.cacheHits.Add(n)
	}
}

// AddReport folds a finished report's counters into the accumulator —
// how an aggregating layer (the cluster router) accounts work its shards
// already summed up.
func (c *Cost) AddReport(r CostReport) {
	if c == nil {
		return
	}
	c.distanceComps.Add(r.DistanceComps)
	c.hnswHops.Add(r.HNSWHops)
	c.pqLookups.Add(r.PQLookups)
	c.valuesScanned.Add(r.ValuesScanned)
	c.bytesScanned.Add(r.BytesScanned)
	c.candGenerated.Add(r.CandidatesGenerated)
	c.candPruned.Add(r.CandidatesPruned)
	c.cacheHits.Add(r.CacheHits)
}

// Report snapshots the accumulated counters. Zero-valued on a nil
// receiver.
func (c *Cost) Report() CostReport {
	if c == nil {
		return CostReport{}
	}
	return CostReport{
		DistanceComps:       c.distanceComps.Load(),
		HNSWHops:            c.hnswHops.Load(),
		PQLookups:           c.pqLookups.Load(),
		ValuesScanned:       c.valuesScanned.Load(),
		BytesScanned:        c.bytesScanned.Load(),
		CandidatesGenerated: c.candGenerated.Load(),
		CandidatesPruned:    c.candPruned.Load(),
		CacheHits:           c.cacheHits.Load(),
	}
}

// CostReport is the plain snapshot of a Cost, shaped for JSON responses
// and trace annotations.
type CostReport struct {
	// DistanceComps counts full-precision vector distance computations —
	// the unit DESSERT-style cost models are stated in.
	DistanceComps int64 `json:"distance_comps"`
	// HNSWHops counts graph hops across every HNSW walk of the query.
	HNSWHops int64 `json:"hnsw_hops,omitempty"`
	// PQLookups counts Product-Quantization ADC table lookups.
	PQLookups int64 `json:"pq_lookups,omitempty"`
	// ValuesScanned counts value vectors touched by exhaustive scans.
	ValuesScanned int64 `json:"values_scanned,omitempty"`
	// BytesScanned counts bytes of vector data read.
	BytesScanned int64 `json:"bytes_scanned,omitempty"`
	// CandidatesGenerated counts candidates produced before ranking.
	CandidatesGenerated int64 `json:"candidates_generated,omitempty"`
	// CandidatesPruned counts candidates discarded before the answer.
	CandidatesPruned int64 `json:"candidates_pruned,omitempty"`
	// CacheHits counts caches that answered instead of the index.
	CacheHits int64 `json:"cache_hits,omitempty"`
}

// Add folds another report into this one (used by the cluster router to
// aggregate per-shard costs).
func (r *CostReport) Add(o CostReport) {
	r.DistanceComps += o.DistanceComps
	r.HNSWHops += o.HNSWHops
	r.PQLookups += o.PQLookups
	r.ValuesScanned += o.ValuesScanned
	r.BytesScanned += o.BytesScanned
	r.CandidatesGenerated += o.CandidatesGenerated
	r.CandidatesPruned += o.CandidatesPruned
	r.CacheHits += o.CacheHits
}

// Total is a single scalar summary of a report — the dominant work terms —
// used to rank "costliest queries". Distance computations and PQ lookups
// are the per-vector work; hops cover graph traversal overhead.
func (r CostReport) Total() int64 {
	return r.DistanceComps + r.PQLookups + r.HNSWHops
}

type costKey struct{}

// ContextWithCost attaches a cost accumulator; searches run under the
// returned context account their work into it.
func ContextWithCost(ctx context.Context, c *Cost) context.Context {
	return context.WithValue(ctx, costKey{}, c)
}

// CostFrom extracts the context's cost accumulator, nil when none — and a
// nil *Cost is a valid no-op everywhere.
func CostFrom(ctx context.Context) *Cost {
	c, _ := ctx.Value(costKey{}).(*Cost)
	return c
}
