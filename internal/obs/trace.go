package obs

import (
	"strconv"
	"sync"
	"time"
)

// Stage is one completed, named step of a traced request.
type Stage struct {
	// Name identifies the step ("encode", "medoid_match", "descent", …).
	Name string
	// Duration is the step's wall-clock time.
	Duration time.Duration
	// Annotations carries key/value detail recorded while the stage ran
	// (vectors scanned, clusters selected, cache hits). Nil when none.
	Annotations map[string]string
}

// Trace collects the stage breakdown of one request. A nil *Trace is the
// off switch: StartSpan still times (so metrics stay correct) but nothing
// is retained, making per-request tracing free unless a caller opts in.
type Trace struct {
	mu     sync.Mutex
	stages []Stage
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// StartSpan begins timing a named stage. Valid on a nil receiver.
func (t *Trace) StartSpan(name string) *Span {
	return &Span{tr: t, name: name, start: time.Now()}
}

func (t *Trace) add(s Stage) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.stages = append(t.stages, s)
	t.mu.Unlock()
}

// Stages returns a copy of the recorded stages in completion order.
func (t *Trace) Stages() []Stage {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Stage, len(t.stages))
	copy(out, t.stages)
	return out
}

// Total sums the recorded stage durations.
func (t *Trace) Total() time.Duration {
	var sum time.Duration
	for _, s := range t.Stages() {
		sum += s.Duration
	}
	return sum
}

// Span is one in-flight stage. It always measures time — End reports the
// duration even when the parent trace is nil — but annotations and the
// recorded stage are dropped unless a trace is attached.
type Span struct {
	tr          *Trace
	name        string
	start       time.Time
	annotations map[string]string
}

// Name returns the span's stage name; "" on a nil span.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Annotate attaches a key/value detail to the span. No-op on a nil span or
// when the parent trace is nil. Returns the span for chaining.
func (s *Span) Annotate(key, value string) *Span {
	if s == nil || s.tr == nil {
		return s
	}
	if s.annotations == nil {
		s.annotations = make(map[string]string)
	}
	s.annotations[key] = value
	return s
}

// AnnotateInt is Annotate for integer values.
func (s *Span) AnnotateInt(key string, v int) *Span {
	if s == nil || s.tr == nil {
		return s
	}
	return s.Annotate(key, strconv.Itoa(v))
}

// End finishes the span, records it on the trace (if any) and returns the
// measured duration. A nil span returns 0.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	if s.tr != nil {
		s.tr.add(Stage{Name: s.name, Duration: d, Annotations: s.annotations})
	}
	return d
}
