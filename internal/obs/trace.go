package obs

import (
	"strconv"
	"sync"
	"time"
)

// Stage is one completed, named step of a traced request — the flat view
// of a span, kept for callers that want the stage breakdown without the
// tree structure.
type Stage struct {
	// Name identifies the step ("encode", "medoid_match", "descent", …).
	Name string
	// Duration is the step's wall-clock time.
	Duration time.Duration
	// Annotations carries key/value detail recorded while the stage ran
	// (vectors scanned, clusters selected, cache hits). Nil when none.
	Annotations map[string]string
}

// Trace collects the span tree of one request: a 128-bit trace ID, an
// optional root span, and the completed spans with parent links. A nil
// *Trace is the off switch: StartSpan still times (so metrics stay
// correct) but nothing is retained, making per-request tracing free
// unless a caller opts in.
type Trace struct {
	id     TraceID
	flags  byte
	remote SpanID // inbound traceparent's span ID; zero for local roots
	start  time.Time

	mu     sync.Mutex
	rootID SpanID
	spans  []SpanRecord
}

// NewTrace returns an empty trace with a fresh random trace ID.
func NewTrace() *Trace {
	return &Trace{id: NewTraceID(), flags: FlagSampled, start: time.Now()}
}

// NewTraceWith returns an empty trace continuing a propagated context:
// the caller's trace ID is adopted and remote becomes the parent of this
// process's root span, so spans from both sides join one tree.
func NewTraceWith(id TraceID, remote SpanID, flags byte) *Trace {
	if id.IsZero() {
		return NewTrace()
	}
	return &Trace{id: id, flags: flags | FlagSampled, remote: remote, start: time.Now()}
}

// ID returns the trace's 128-bit identifier; zero on a nil trace.
func (t *Trace) ID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.id
}

// Flags returns the W3C trace-flags byte; 0 on a nil trace.
func (t *Trace) Flags() byte {
	if t == nil {
		return 0
	}
	return t.flags
}

// Remote returns the inbound parent span ID this trace continues from;
// zero when the trace was started locally.
func (t *Trace) Remote() SpanID {
	if t == nil {
		return SpanID{}
	}
	return t.remote
}

// Start returns when the trace was created.
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// StartRoot begins the trace's root span. Spans later started with
// StartSpan become its children; the root itself is parented to the
// remote span when the trace was propagated in. Valid on a nil receiver.
func (t *Trace) StartRoot(name string) *Span {
	if t == nil {
		return &Span{name: name, start: time.Now()}
	}
	s := &Span{tr: t, id: NewSpanID(), name: name, start: time.Now()}
	t.mu.Lock()
	t.rootID = s.id
	t.mu.Unlock()
	return s
}

// StartSpan begins timing a named stage, parented under the trace's root
// span when one has been started. Valid on a nil receiver.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return &Span{name: name, start: time.Now()}
	}
	t.mu.Lock()
	parent := t.rootID
	t.mu.Unlock()
	return &Span{tr: t, id: NewSpanID(), parent: parent, name: name, start: time.Now()}
}

// RootID returns the root span's ID, zero before StartRoot.
func (t *Trace) RootID() SpanID {
	if t == nil {
		return SpanID{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rootID
}

func (t *Trace) add(rec SpanRecord) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, rec)
	t.mu.Unlock()
}

// Adopt grafts remote span records into the trace — how a coordinator
// folds the shard-side spans a wire response carried into its own tree.
// The records keep their IDs and parent links; because the shard
// continued the coordinator's propagated trace context, its root span is
// already parented under a local span and the trees join. No-op on a nil
// receiver or empty input.
func (t *Trace) Adopt(recs []SpanRecord) {
	if t == nil || len(recs) == 0 {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, recs...)
	t.mu.Unlock()
}

// Spans returns a copy of every completed span in completion order,
// including the root.
func (t *Trace) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	return out
}

// Stages returns the flat stage view of the recorded spans in completion
// order. The root span is excluded: it covers the whole request, and
// including it would double-count every stage in Total.
func (t *Trace) Stages() []Stage {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Stage, 0, len(t.spans))
	for _, rec := range t.spans {
		if rec.SpanID == t.rootID && !t.rootID.IsZero() {
			continue
		}
		out = append(out, Stage{Name: rec.Name, Duration: rec.Duration, Annotations: rec.Annotations})
	}
	return out
}

// Total sums the recorded stage durations (root span excluded).
func (t *Trace) Total() time.Duration {
	var sum time.Duration
	for _, s := range t.Stages() {
		sum += s.Duration
	}
	return sum
}

// Span is one in-flight stage. It always measures time — End reports the
// duration even when the parent trace is nil — but annotations and the
// recorded span are dropped unless a trace is attached.
type Span struct {
	tr          *Trace
	id          SpanID
	parent      SpanID
	name        string
	start       time.Time
	annotations map[string]string
}

// Name returns the span's stage name; "" on a nil span.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// ID returns the span's identifier; zero on a nil span or when the parent
// trace is nil (untraced spans never mint IDs).
func (s *Span) ID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// StartChild begins a new span parented under this one — the fan-out
// primitive: the scatter span starts one child per shard attempt. Valid
// on a nil span or with a nil trace (the child times but records nothing).
func (s *Span) StartChild(name string) *Span {
	if s == nil || s.tr == nil {
		return &Span{name: name, start: time.Now()}
	}
	return &Span{tr: s.tr, id: NewSpanID(), parent: s.id, name: name, start: time.Now()}
}

// Annotate attaches a key/value detail to the span. No-op on a nil span or
// when the parent trace is nil. Returns the span for chaining.
func (s *Span) Annotate(key, value string) *Span {
	if s == nil || s.tr == nil {
		return s
	}
	if s.annotations == nil {
		s.annotations = make(map[string]string)
	}
	s.annotations[key] = value
	return s
}

// AnnotateInt is Annotate for integer values.
func (s *Span) AnnotateInt(key string, v int) *Span {
	if s == nil || s.tr == nil {
		return s
	}
	return s.Annotate(key, strconv.Itoa(v))
}

// End finishes the span, records it on the trace (if any) and returns the
// measured duration. A nil span returns 0.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	if s.tr != nil {
		s.tr.add(SpanRecord{
			SpanID:      s.id,
			Parent:      s.parent,
			Name:        s.name,
			Start:       s.start,
			Duration:    d,
			Annotations: s.annotations,
		})
	}
	return d
}
