// Package obs is the observability substrate of the engine: atomic
// counters, gauges and lock-cheap latency histograms behind a named
// registry, plus a Span/Trace API for per-request stage breakdowns.
//
// Everything is pure stdlib and nil-safe: a nil *Registry hands out nil
// metrics whose methods are no-ops, and a nil *Trace produces spans that
// time but record nothing — so instrumented code never branches on whether
// observability is enabled.
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; 0 on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float64.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(floatBits(v))
}

// Add atomically adds d to the gauge. No-op on a nil receiver.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(bitsFloat(old)+d)) {
			return
		}
	}
}

// Value returns the current value; 0 on a nil receiver.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return bitsFloat(g.bits.Load())
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// numBuckets covers 1µs .. ~67s in powers of two, plus a +Inf overflow
// bucket; bucket i holds observations ≤ 2^i microseconds.
const numBuckets = 28

// Histogram is a fixed-bucket exponential latency histogram. Observe is a
// few atomic adds — cheap enough to leave on for every query in production.
type Histogram struct {
	count     atomic.Int64
	sumNanos  atomic.Int64
	buckets   [numBuckets]atomic.Int64
	exemplars [numBuckets]atomic.Pointer[Exemplar]
}

// bucketBound returns the inclusive upper bound of bucket i in seconds;
// the last bucket is unbounded.
func bucketBound(i int) float64 {
	return float64(uint64(1)<<uint(i)) * 1e-6
}

// bucketIndex returns the bucket a duration falls into.
func bucketIndex(d time.Duration) int {
	if d < 0 {
		d = 0
	}
	us := uint64(d.Microseconds())
	idx := 0
	if us > 1 {
		idx = bits.Len64(us - 1)
	}
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	return idx
}

// Observe records one duration. No-op on a nil receiver.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.buckets[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
}

// Exemplar links one bucket of a histogram to a concrete trace: the most
// recent interesting observation in that latency range, so a p99 spike on
// a dashboard resolves to a stored span tree instead of a mystery.
type Exemplar struct {
	// TraceID is the hex trace ID of the exemplar observation.
	TraceID string `json:"trace_id"`
	// Value is the observed latency in seconds.
	Value float64 `json:"value"`
	// Time is when the observation was recorded.
	Time time.Time `json:"time"`
}

// SetExemplar attaches a trace exemplar to the bucket d falls into,
// without changing any count — callers Observe the duration separately,
// and only attach exemplars for traces that were actually retained so
// every exemplar resolves. No-op on a nil receiver or empty trace ID.
func (h *Histogram) SetExemplar(d time.Duration, traceID string) {
	if h == nil || traceID == "" {
		return
	}
	h.exemplars[bucketIndex(d)].Store(&Exemplar{
		TraceID: traceID,
		Value:   d.Seconds(),
		Time:    time.Now(),
	})
}

// HistSnapshot is a point-in-time copy of a histogram. Exemplars holds
// the latest per-bucket trace exemplar, nil where none was recorded.
type HistSnapshot struct {
	Count     int64
	Sum       time.Duration
	Buckets   [numBuckets]int64
	Exemplars [numBuckets]*Exemplar
}

// Snapshot copies the histogram's current state. The copy is not atomic
// across buckets, which is fine for monitoring: each bucket is internally
// consistent and the drift is at most the observations racing the read.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sumNanos.Load())
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
		s.Exemplars[i] = h.exemplars[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 < q ≤ 1) by linear interpolation
// inside the bucket containing the target rank. Returns 0 when empty.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, b := range s.Buckets {
		if b == 0 {
			continue
		}
		next := cum + float64(b)
		if next >= rank {
			lo := 0.0
			if i > 0 {
				lo = bucketBound(i - 1)
			}
			hi := bucketBound(i)
			if i == numBuckets-1 {
				hi = lo // unbounded overflow bucket: report its lower edge
			}
			frac := (rank - cum) / float64(b)
			return time.Duration((lo + (hi-lo)*frac) * float64(time.Second))
		}
		cum = next
	}
	return time.Duration(bucketBound(numBuckets-2) * float64(time.Second))
}

// SampleQuantile estimates the q-quantile of an ascending-sorted sample
// by linear interpolation between adjacent order statistics — the same
// interpolation HistSnapshot.Quantile applies inside a bucket, shared so
// every quantile this codebase reports (hedge triggers, shard p95s,
// histogram summaries) agrees on the estimator. Returns 0 when empty.
func SampleQuantile(sorted []time.Duration, q float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	pos := q * float64(n-1)
	lo := int(pos)
	if lo >= n-1 {
		return sorted[n-1]
	}
	frac := pos - float64(lo)
	return sorted[lo] + time.Duration(frac*float64(sorted[lo+1]-sorted[lo]))
}

// Registry is a concurrency-safe set of named metrics. Series names may
// carry inline Prometheus-style labels (see L); the full string is the key.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	help       map[string]string // base name -> HELP text
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		help:       make(map[string]string),
	}
}

// SetHelp registers the HELP text emitted for a metric's base name in the
// Prometheus exposition. No-op on a nil registry.
func (r *Registry) SetHelp(base, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[base] = help
	r.mu.Unlock()
}

// SetHelps registers HELP texts in bulk; see SetHelp.
func (r *Registry) SetHelps(m map[string]string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	for base, help := range m {
		r.help[base] = help
	}
	r.mu.Unlock()
}

// helpFor returns the registered HELP text for a base name, "" when none.
func (r *Registry) helpFor(base string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.help[base]
}

// escapeHelp escapes backslash and newline per the text-format spec.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// L formats a series name with label pairs:
// L("searches_total", "method", "CTS") → `searches_total{method="CTS"}`.
// Pairs must come key,value; a trailing odd key is ignored. Label values
// are escaped per the Prometheus text format (backslash, double quote and
// newline), so a value like `say "hi"` produces a series that the
// exposition can emit verbatim and ParseName can round-trip.
func L(name string, pairs ...string) string {
	if len(pairs) < 2 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(pairs[i+1]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes backslash, double quote and newline per the
// Prometheus text-format label-value rules.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// unescapeLabelValue reverses escapeLabelValue.
func unescapeLabelValue(v string) string {
	if !strings.ContainsRune(v, '\\') {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		if v[i] == '\\' && i+1 < len(v) {
			i++
			switch v[i] {
			case 'n':
				b.WriteByte('\n')
			default: // \\ and \" unescape to the literal character
				b.WriteByte(v[i])
			}
			continue
		}
		b.WriteByte(v[i])
	}
	return b.String()
}

// ParseName splits a series name into its base name and label map.
// Labels produced by L round-trip, including escaped quotes, backslashes,
// newlines, and values containing commas; malformed labels come back
// empty.
func ParseName(series string) (base string, labels map[string]string) {
	open := strings.IndexByte(series, '{')
	if open < 0 || !strings.HasSuffix(series, "}") {
		return series, nil
	}
	base = series[:open]
	labels = make(map[string]string)
	inner := series[open+1 : len(series)-1]
	for len(inner) > 0 {
		eq := strings.IndexByte(inner, '=')
		if eq < 0 {
			break
		}
		key := inner[:eq]
		rest := inner[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			// Unquoted value: take up to the next comma (legacy tolerance).
			end := strings.IndexByte(rest, ',')
			if end < 0 {
				labels[key] = rest
				break
			}
			labels[key] = rest[:end]
			inner = rest[end+1:]
			continue
		}
		// Quoted value: scan to the closing quote, honoring escapes.
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			break
		}
		labels[key] = unescapeLabelValue(rest[1:end])
		inner = strings.TrimPrefix(rest[end+1:], ",")
	}
	return base, labels
}

// Counter returns (creating if needed) the named counter; nil on a nil
// registry.
func (r *Registry) Counter(series string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[series]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[series]; ok {
		return c
	}
	c = &Counter{}
	r.counters[series] = c
	return c
}

// Gauge returns (creating if needed) the named gauge; nil on a nil
// registry.
func (r *Registry) Gauge(series string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[series]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[series]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[series] = g
	return g
}

// Histogram returns (creating if needed) the named histogram; nil on a nil
// registry.
func (r *Registry) Histogram(series string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.histograms[series]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[series]; ok {
		return h
	}
	h = &Histogram{}
	r.histograms[series] = h
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistSnapshot
}

// Snapshot copies every metric. Safe on a nil registry (empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4), sorted by series name for stable output, with
// HELP lines for every metric whose help text was registered (SetHelp).
// Histograms render cumulative buckets with seconds-valued le bounds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.writeExposition(w, false)
}

// WriteOpenMetrics renders the same exposition in OpenMetrics style:
// histogram bucket lines carry trace exemplars ("# {trace_id=...} v ts")
// where one was recorded, and the output ends with "# EOF". Serve it when
// the scraper negotiated application/openmetrics-text; the plain text
// format (WritePrometheus) stays exemplar-free because the 0.0.4 parser
// rejects exemplar syntax.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	return r.writeExposition(w, true)
}

func (r *Registry) writeExposition(w io.Writer, exemplars bool) error {
	if r == nil {
		_, err := io.WriteString(w, "# metrics disabled\n")
		return err
	}
	snap := r.Snapshot()
	var b strings.Builder

	emitTyped := func(names []string, typ string, line func(series string)) {
		sort.Strings(names)
		lastBase := ""
		for _, series := range names {
			base, _ := ParseName(series)
			if base != lastBase {
				if help := r.helpFor(base); help != "" {
					fmt.Fprintf(&b, "# HELP %s %s\n", base, escapeHelp(help))
				}
				fmt.Fprintf(&b, "# TYPE %s %s\n", base, typ)
				lastBase = base
			}
			line(series)
		}
	}

	names := make([]string, 0, len(snap.Counters))
	for n := range snap.Counters {
		names = append(names, n)
	}
	emitTyped(names, "counter", func(series string) {
		fmt.Fprintf(&b, "%s %d\n", series, snap.Counters[series])
	})

	names = names[:0]
	for n := range snap.Gauges {
		names = append(names, n)
	}
	emitTyped(names, "gauge", func(series string) {
		fmt.Fprintf(&b, "%s %s\n", series, formatFloat(snap.Gauges[series]))
	})

	names = names[:0]
	for n := range snap.Histograms {
		names = append(names, n)
	}
	emitTyped(names, "histogram", func(series string) {
		base, _ := ParseName(series)
		inner := labelInner(series)
		suffix := ""
		if inner != "" {
			suffix = "{" + strings.TrimSuffix(inner, ",") + "}"
		}
		h := snap.Histograms[series]
		var cum int64
		for i := 0; i < numBuckets; i++ {
			cum += h.Buckets[i]
			le := "+Inf"
			if i < numBuckets-1 {
				le = formatFloat(bucketBound(i))
			}
			fmt.Fprintf(&b, "%s_bucket{%sle=%q} %d", base, inner, le, cum)
			if ex := h.Exemplars[i]; exemplars && ex != nil {
				fmt.Fprintf(&b, " # {trace_id=%q} %s %.3f",
					ex.TraceID, formatFloat(ex.Value), float64(ex.Time.UnixMilli())/1e3)
			}
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%s_sum%s %s\n", base, suffix, formatFloat(h.Sum.Seconds()))
		fmt.Fprintf(&b, "%s_count%s %d\n", base, suffix, h.Count)
	})

	if exemplars {
		b.WriteString("# EOF\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// labelInner returns the inner label string of a series with a trailing
// comma ("method=\"CTS\",") or "" when the series has no labels.
func labelInner(series string) string {
	open := strings.IndexByte(series, '{')
	if open < 0 || !strings.HasSuffix(series, "}") {
		return ""
	}
	inner := series[open+1 : len(series)-1]
	if inner == "" {
		return ""
	}
	return inner + ","
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
