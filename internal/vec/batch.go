package vec

// Batched (GEMM-style) kernels: a block of queries against a block of value
// vectors. The point is memory amortization — every value vector loaded from
// RAM is reused across a register block of 4 queries, turning Q scan passes
// over the corpus into Q/4 — plus instruction-level parallelism: the single-
// query Dot kernel keeps 4 independent accumulator chains in flight, which
// does not saturate the FP units; the 4-query block runs 16.
//
// Bit-identity contract: out[i*len(vs)+j] is bit-identical to
// Dot(qs[i], vs[j]) (resp. L2Sq). The 4-query kernels give each query its
// own 4 accumulators, combined in exactly the order the single-query kernels
// use, and every per-lane expression has the same shape — so the sequence of
// float32 roundings is the same. ExS relies on this to make batched search
// results bit-identical to the per-query scan.

// DotBatch computes the inner product of every query in qs against every
// value in vs: out[i*len(vs)+j] = Dot(qs[i], vs[j]). out must have at least
// len(qs)*len(vs) elements. Queries are processed in register blocks of 4 so
// each value vector is loaded once per block instead of once per query; each
// result is bit-identical to the corresponding Dot call.
func DotBatch(qs, vs [][]float32, out []float32) {
	nv := len(vs)
	if len(out) < len(qs)*nv {
		assertSameLen(len(out), len(qs)*nv)
	}
	i := 0
	for ; i+4 <= len(qs); i += 4 {
		r0 := out[i*nv : i*nv+nv]
		r1 := out[(i+1)*nv : (i+1)*nv+nv]
		r2 := out[(i+2)*nv : (i+2)*nv+nv]
		r3 := out[(i+3)*nv : (i+3)*nv+nv]
		q0, q1, q2, q3 := qs[i], qs[i+1], qs[i+2], qs[i+3]
		for j, v := range vs {
			r0[j], r1[j], r2[j], r3[j] = dot4(q0, q1, q2, q3, v)
		}
	}
	for ; i < len(qs); i++ {
		row := out[i*nv : i*nv+nv]
		for j, v := range vs {
			row[j] = Dot(qs[i], v)
		}
	}
}

// L2SqBatch computes the squared Euclidean distance of every query in qs
// against every value in vs: out[i*len(vs)+j] = L2Sq(qs[i], vs[j]), with the
// same blocking and bit-identity contract as DotBatch.
func L2SqBatch(qs, vs [][]float32, out []float32) {
	nv := len(vs)
	if len(out) < len(qs)*nv {
		assertSameLen(len(out), len(qs)*nv)
	}
	i := 0
	for ; i+4 <= len(qs); i += 4 {
		r0 := out[i*nv : i*nv+nv]
		r1 := out[(i+1)*nv : (i+1)*nv+nv]
		r2 := out[(i+2)*nv : (i+2)*nv+nv]
		r3 := out[(i+3)*nv : (i+3)*nv+nv]
		q0, q1, q2, q3 := qs[i], qs[i+1], qs[i+2], qs[i+3]
		for j, v := range vs {
			r0[j], r1[j], r2[j], r3[j] = l2sq4(q0, q1, q2, q3, v)
		}
	}
	for ; i < len(qs); i++ {
		row := out[i*nv : i*nv+nv]
		for j, v := range vs {
			row[j] = L2Sq(qs[i], v)
		}
	}
}

// dot4 computes the inner product of four queries against one shared value
// vector. Each of v's elements is loaded once for all four queries; each
// query keeps its own four accumulators in the exact shape of Dot, so every
// returned product is bit-identical to the corresponding Dot call. On amd64
// the 8-wide body runs in SSE2 assembly with the four accumulator chains
// mapped onto vector lanes — same operations, same rounding, ~3x throughput.
func dot4(q0, q1, q2, q3, v []float32) (o0, o1, o2, o3 float32) {
	n := len(v)
	assertSameLen(len(q0), n)
	assertSameLen(len(q1), n)
	assertSameLen(len(q2), n)
	assertSameLen(len(q3), n)
	if batchKernelAsm && n >= 8 {
		return dot4Asm(q0, q1, q2, q3, v)
	}
	q0, q1, q2, q3 = q0[:n], q1[:n], q2[:n], q3[:n]
	var a0, a1, a2, a3 float32
	var b0, b1, b2, b3 float32
	var c0, c1, c2, c3 float32
	var d0, d1, d2, d3 float32
	i := 0
	for ; i+8 <= n; i += 8 {
		v0, v1, v2, v3 := v[i], v[i+1], v[i+2], v[i+3]
		v4, v5, v6, v7 := v[i+4], v[i+5], v[i+6], v[i+7]
		a0 += q0[i]*v0 + q0[i+4]*v4
		a1 += q0[i+1]*v1 + q0[i+5]*v5
		a2 += q0[i+2]*v2 + q0[i+6]*v6
		a3 += q0[i+3]*v3 + q0[i+7]*v7
		b0 += q1[i]*v0 + q1[i+4]*v4
		b1 += q1[i+1]*v1 + q1[i+5]*v5
		b2 += q1[i+2]*v2 + q1[i+6]*v6
		b3 += q1[i+3]*v3 + q1[i+7]*v7
		c0 += q2[i]*v0 + q2[i+4]*v4
		c1 += q2[i+1]*v1 + q2[i+5]*v5
		c2 += q2[i+2]*v2 + q2[i+6]*v6
		c3 += q2[i+3]*v3 + q2[i+7]*v7
		d0 += q3[i]*v0 + q3[i+4]*v4
		d1 += q3[i+1]*v1 + q3[i+5]*v5
		d2 += q3[i+2]*v2 + q3[i+6]*v6
		d3 += q3[i+3]*v3 + q3[i+7]*v7
	}
	o0 = (a0 + a1) + (a2 + a3)
	o1 = (b0 + b1) + (b2 + b3)
	o2 = (c0 + c1) + (c2 + c3)
	o3 = (d0 + d1) + (d2 + d3)
	for ; i < n; i++ {
		x := v[i]
		o0 += q0[i] * x
		o1 += q1[i] * x
		o2 += q2[i] * x
		o3 += q3[i] * x
	}
	return o0, o1, o2, o3
}

// l2sq4 is dot4's squared-distance twin, matching L2Sq's expression shape.
func l2sq4(q0, q1, q2, q3, v []float32) (o0, o1, o2, o3 float32) {
	n := len(v)
	assertSameLen(len(q0), n)
	assertSameLen(len(q1), n)
	assertSameLen(len(q2), n)
	assertSameLen(len(q3), n)
	if batchKernelAsm && n >= 8 {
		return l2sq4Asm(q0, q1, q2, q3, v)
	}
	q0, q1, q2, q3 = q0[:n], q1[:n], q2[:n], q3[:n]
	var a0, a1, a2, a3 float32
	var b0, b1, b2, b3 float32
	var c0, c1, c2, c3 float32
	var d0, d1, d2, d3 float32
	i := 0
	for ; i+8 <= n; i += 8 {
		v0, v1, v2, v3 := v[i], v[i+1], v[i+2], v[i+3]
		v4, v5, v6, v7 := v[i+4], v[i+5], v[i+6], v[i+7]
		{
			e0 := q0[i] - v0
			e4 := q0[i+4] - v4
			a0 += e0*e0 + e4*e4
			e1 := q0[i+1] - v1
			e5 := q0[i+5] - v5
			a1 += e1*e1 + e5*e5
			e2 := q0[i+2] - v2
			e6 := q0[i+6] - v6
			a2 += e2*e2 + e6*e6
			e3 := q0[i+3] - v3
			e7 := q0[i+7] - v7
			a3 += e3*e3 + e7*e7
		}
		{
			e0 := q1[i] - v0
			e4 := q1[i+4] - v4
			b0 += e0*e0 + e4*e4
			e1 := q1[i+1] - v1
			e5 := q1[i+5] - v5
			b1 += e1*e1 + e5*e5
			e2 := q1[i+2] - v2
			e6 := q1[i+6] - v6
			b2 += e2*e2 + e6*e6
			e3 := q1[i+3] - v3
			e7 := q1[i+7] - v7
			b3 += e3*e3 + e7*e7
		}
		{
			e0 := q2[i] - v0
			e4 := q2[i+4] - v4
			c0 += e0*e0 + e4*e4
			e1 := q2[i+1] - v1
			e5 := q2[i+5] - v5
			c1 += e1*e1 + e5*e5
			e2 := q2[i+2] - v2
			e6 := q2[i+6] - v6
			c2 += e2*e2 + e6*e6
			e3 := q2[i+3] - v3
			e7 := q2[i+7] - v7
			c3 += e3*e3 + e7*e7
		}
		{
			e0 := q3[i] - v0
			e4 := q3[i+4] - v4
			d0 += e0*e0 + e4*e4
			e1 := q3[i+1] - v1
			e5 := q3[i+5] - v5
			d1 += e1*e1 + e5*e5
			e2 := q3[i+2] - v2
			e6 := q3[i+6] - v6
			d2 += e2*e2 + e6*e6
			e3 := q3[i+3] - v3
			e7 := q3[i+7] - v7
			d3 += e3*e3 + e7*e7
		}
	}
	o0 = (a0 + a1) + (a2 + a3)
	o1 = (b0 + b1) + (b2 + b3)
	o2 = (c0 + c1) + (c2 + c3)
	o3 = (d0 + d1) + (d2 + d3)
	for ; i < n; i++ {
		x := v[i]
		e0 := q0[i] - x
		o0 += e0 * e0
		e1 := q1[i] - x
		o1 += e1 * e1
		e2 := q2[i] - x
		o2 += e2 * e2
		e3 := q3[i] - x
		o3 += e3 * e3
	}
	return o0, o1, o2, o3
}
