//go:build !amd64

package vec

// Non-amd64 builds run the batched kernels through the pure-Go 4-query
// bodies in batch.go, which carry the same bit-identity contract (each
// query's accumulator chains mirror Dot/L2Sq exactly).

const batchKernelAsm = false

// dot4Asm and l2sq4Asm are never called when batchKernelAsm is false; the
// stubs exist so batch.go compiles on every GOARCH.
func dot4Asm(q0, q1, q2, q3, v []float32) (o0, o1, o2, o3 float32) {
	panic("vec: assembly kernel unavailable on this GOARCH")
}

func l2sq4Asm(q0, q1, q2, q3, v []float32) (o0, o1, o2, o3 float32) {
	panic("vec: assembly kernel unavailable on this GOARCH")
}
