// Package vec provides the dense float32 vector primitives shared by the
// embedding, indexing, clustering and reduction packages.
//
// All functions operate on plain []float32 slices. Unless stated otherwise
// they panic if the two operands have different lengths, because a length
// mismatch is always a programming error in this codebase, never a runtime
// condition to recover from.
package vec

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b.
func Dot(a, b []float32) float32 {
	assertSameLen(len(a), len(b))
	// Unrolled by 8 with 4 independent accumulators: the hot loop of the
	// whole system. The Go compiler does not auto-vectorize, and a single
	// accumulator serializes the FP adds on its ~4-cycle latency chain;
	// four independent chains keep the FP units busy. The b = b[:len(a)]
	// hint removes most bounds checks.
	b = b[:len(a)]
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+8 <= len(a); i += 8 {
		s0 += a[i]*b[i] + a[i+4]*b[i+4]
		s1 += a[i+1]*b[i+1] + a[i+5]*b[i+5]
		s2 += a[i+2]*b[i+2] + a[i+6]*b[i+6]
		s3 += a[i+3]*b[i+3] + a[i+7]*b[i+7]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// Norm returns the Euclidean (L2) norm of a.
func Norm(a []float32) float32 {
	return float32(math.Sqrt(float64(Dot(a, a))))
}

// L2Sq returns the squared Euclidean distance between a and b.
func L2Sq(a, b []float32) float32 {
	assertSameLen(len(a), len(b))
	// Same 8-wide / 4-accumulator shape as Dot; see the comment there.
	b = b[:len(a)]
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+8 <= len(a); i += 8 {
		d0 := a[i] - b[i]
		d4 := a[i+4] - b[i+4]
		s0 += d0*d0 + d4*d4
		d1 := a[i+1] - b[i+1]
		d5 := a[i+5] - b[i+5]
		s1 += d1*d1 + d5*d5
		d2 := a[i+2] - b[i+2]
		d6 := a[i+6] - b[i+6]
		s2 += d2*d2 + d6*d6
		d3 := a[i+3] - b[i+3]
		d7 := a[i+7] - b[i+7]
		s3 += d3*d3 + d7*d7
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// L2 returns the Euclidean distance between a and b.
func L2(a, b []float32) float32 {
	return float32(math.Sqrt(float64(L2Sq(a, b))))
}

// Cosine returns the cosine similarity of a and b in [-1, 1].
// If either vector has zero norm the similarity is defined as 0.
func Cosine(a, b []float32) float32 {
	assertSameLen(len(a), len(b))
	var dot, na, nb float32
	b = b[:len(a)]
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / float32(math.Sqrt(float64(na))*math.Sqrt(float64(nb)))
}

// CosineUnit returns the cosine similarity of two vectors that the caller
// guarantees are already L2-normalized; it is just the dot product.
func CosineUnit(a, b []float32) float32 { return Dot(a, b) }

// Normalize scales a in place to unit L2 norm and returns it.
// A zero vector is returned unchanged.
func Normalize(a []float32) []float32 {
	n := Norm(a)
	if n == 0 {
		return a
	}
	inv := 1 / n
	for i := range a {
		a[i] *= inv
	}
	return a
}

// Normalized returns a fresh unit-norm copy of a.
func Normalized(a []float32) []float32 {
	out := make([]float32, len(a))
	copy(out, a)
	return Normalize(out)
}

// Add accumulates b into a in place.
func Add(a, b []float32) {
	assertSameLen(len(a), len(b))
	for i := range a {
		a[i] += b[i]
	}
}

// AddScaled accumulates s*b into a in place.
func AddScaled(a []float32, s float32, b []float32) {
	assertSameLen(len(a), len(b))
	for i := range a {
		a[i] += s * b[i]
	}
}

// Sub stores a-b into dst and returns dst. dst may alias a.
func Sub(dst, a, b []float32) []float32 {
	assertSameLen(len(a), len(b))
	assertSameLen(len(dst), len(a))
	for i := range a {
		dst[i] = a[i] - b[i]
	}
	return dst
}

// Scale multiplies a by s in place.
func Scale(a []float32, s float32) {
	for i := range a {
		a[i] *= s
	}
}

// Mean returns the element-wise mean of the given vectors.
// It panics if vs is empty or the vectors disagree in length.
func Mean(vs [][]float32) []float32 {
	if len(vs) == 0 {
		panic("vec: Mean of zero vectors")
	}
	out := make([]float32, len(vs[0]))
	for _, v := range vs {
		Add(out, v)
	}
	Scale(out, 1/float32(len(vs)))
	return out
}

// Clone returns a copy of a.
func Clone(a []float32) []float32 {
	out := make([]float32, len(a))
	copy(out, a)
	return out
}

// Zeros returns a zero vector of dimension d.
func Zeros(d int) []float32 { return make([]float32, d) }

func assertSameLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("vec: dimension mismatch %d != %d", a, b))
	}
}
