// SSE2 bodies for the batched kernels. See dotbatch_amd64.go for the
// bit-identity argument: lanes 0..3 of each accumulator register are exactly
// the four scalar accumulator chains of Dot/L2Sq, so MULPS/ADDPS perform the
// same individually-rounded float32 operations the scalar kernels do.
//
// SSE2 is part of the amd64 baseline, so no CPUID dispatch is needed.

#include "textflag.h"

// func dot4x8(q0, q1, q2, q3, v *float32, iters int, out *[16]float32)
//
// Processes iters blocks of 8 floats: for each query, lane j of its
// accumulator register receives q[i+j]*v[i+j] + q[i+4+j]*v[i+4+j] per block
// — the scalar kernel's s_j chain. The 16 accumulator lanes (4 queries x 4
// chains) are stored to out for the Go caller to combine and tail.
TEXT ·dot4x8(SB), NOSPLIT, $0-56
	MOVQ q0+0(FP), R8
	MOVQ q1+8(FP), R9
	MOVQ q2+16(FP), R10
	MOVQ q3+24(FP), R11
	MOVQ v+32(FP), R12
	MOVQ iters+40(FP), CX
	MOVQ out+48(FP), DI
	XORPS X0, X0 // q0 chains s0..s3
	XORPS X1, X1 // q1 chains
	XORPS X2, X2 // q2 chains
	XORPS X3, X3 // q3 chains
	TESTQ CX, CX
	JZ    dotdone

dotloop:
	MOVUPS (R12), X4   // v[i..i+3]
	MOVUPS 16(R12), X5 // v[i+4..i+7]

	MOVUPS (R8), X6
	MOVUPS 16(R8), X7
	MULPS  X4, X6 // q0[i+j]*v[i+j]
	MULPS  X5, X7 // q0[i+4+j]*v[i+4+j]
	ADDPS  X7, X6 // lane-wise p1 + p2
	ADDPS  X6, X0 // s_j += (p1 + p2)

	MOVUPS (R9), X6
	MOVUPS 16(R9), X7
	MULPS  X4, X6
	MULPS  X5, X7
	ADDPS  X7, X6
	ADDPS  X6, X1

	MOVUPS (R10), X6
	MOVUPS 16(R10), X7
	MULPS  X4, X6
	MULPS  X5, X7
	ADDPS  X7, X6
	ADDPS  X6, X2

	MOVUPS (R11), X6
	MOVUPS 16(R11), X7
	MULPS  X4, X6
	MULPS  X5, X7
	ADDPS  X7, X6
	ADDPS  X6, X3

	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	ADDQ $32, R12
	DECQ CX
	JNZ  dotloop

dotdone:
	MOVUPS X0, (DI)
	MOVUPS X1, 16(DI)
	MOVUPS X2, 32(DI)
	MOVUPS X3, 48(DI)
	RET

// func l2sq4x8(q0, q1, q2, q3, v *float32, iters int, out *[16]float32)
//
// The squared-distance twin: lane j accumulates d*d + d'*d' with
// d = q[i+j]-v[i+j], d' = q[i+4+j]-v[i+4+j], matching L2Sq's chains.
TEXT ·l2sq4x8(SB), NOSPLIT, $0-56
	MOVQ q0+0(FP), R8
	MOVQ q1+8(FP), R9
	MOVQ q2+16(FP), R10
	MOVQ q3+24(FP), R11
	MOVQ v+32(FP), R12
	MOVQ iters+40(FP), CX
	MOVQ out+48(FP), DI
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	TESTQ CX, CX
	JZ    l2done

l2loop:
	MOVUPS (R12), X4
	MOVUPS 16(R12), X5

	MOVUPS (R8), X6
	MOVUPS 16(R8), X7
	SUBPS  X4, X6 // d_j = q[i+j] - v[i+j]
	SUBPS  X5, X7
	MULPS  X6, X6 // d*d
	MULPS  X7, X7
	ADDPS  X7, X6
	ADDPS  X6, X0

	MOVUPS (R9), X6
	MOVUPS 16(R9), X7
	SUBPS  X4, X6
	SUBPS  X5, X7
	MULPS  X6, X6
	MULPS  X7, X7
	ADDPS  X7, X6
	ADDPS  X6, X1

	MOVUPS (R10), X6
	MOVUPS 16(R10), X7
	SUBPS  X4, X6
	SUBPS  X5, X7
	MULPS  X6, X6
	MULPS  X7, X7
	ADDPS  X7, X6
	ADDPS  X6, X2

	MOVUPS (R11), X6
	MOVUPS 16(R11), X7
	SUBPS  X4, X6
	SUBPS  X5, X7
	MULPS  X6, X6
	MULPS  X7, X7
	ADDPS  X7, X6
	ADDPS  X6, X3

	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	ADDQ $32, R12
	DECQ CX
	JNZ  l2loop

l2done:
	MOVUPS X0, (DI)
	MOVUPS X1, 16(DI)
	MOVUPS X2, 32(DI)
	MOVUPS X3, 48(DI)
	RET
